#!/usr/bin/env python3
"""A realistic application on top of the generated BLAS: blocked Cholesky
factorization and a normal-equations least-squares solve.

This is the workload class the paper's introduction motivates — scientific
computing code whose runtime is dominated by Level-3 BLAS (SYRK, TRSM,
GEMM).  Every flop below the small diagonal factorizations runs through
AUGEM-generated assembly.

Run:  python examples/blas_application.py
"""

import numpy as np

from repro import AugemBLAS


def blocked_cholesky(blas: AugemBLAS, a: np.ndarray, nb: int = 64) -> np.ndarray:
    """Lower Cholesky factor of SPD ``a`` using SYRK/TRSM/GEMM blocks.

    The classic right-looking blocked algorithm: only the tiny nb x nb
    diagonal factorizations use numpy; all panel updates are AUGEM kernels.
    """
    n = a.shape[0]
    l = np.tril(np.array(a, dtype=np.float64))
    for k0 in range(0, n, nb):
        kb = min(nb, n - k0)
        # update the diagonal block: A[k,k] -= L[k,:k0] @ L[k,:k0]^T
        if k0 > 0:
            panel = np.ascontiguousarray(l[k0:k0 + kb, :k0])
            upd = blas.dsyrk(panel)
            l[k0:k0 + kb, k0:k0 + kb] -= np.tril(upd)
        # factor the diagonal block (small, dense -> numpy)
        l[k0:k0 + kb, k0:k0 + kb] = np.linalg.cholesky(
            _symmetrize(l[k0:k0 + kb, k0:k0 + kb])
        )
        if k0 + kb < n:
            # trailing panel: A[rest,k] -= L[rest,:k0] @ L[k,:k0]^T  (GEMM)
            if k0 > 0:
                rest = np.ascontiguousarray(l[k0 + kb:, :k0])
                kpan = np.ascontiguousarray(l[k0:k0 + kb, :k0].T)
                l[k0 + kb:, k0:k0 + kb] -= blas.dgemm(rest, kpan)
            # solve L[rest,k] = A[rest,k] @ L[k,k]^{-T}  -> TRSM shape
            diag = np.ascontiguousarray(l[k0:k0 + kb, k0:k0 + kb])
            block = np.ascontiguousarray(l[k0 + kb:, k0:k0 + kb].T)
            solved = blas.dtrsm(diag, block)
            l[k0 + kb:, k0:k0 + kb] = solved.T
    return np.tril(l)


def _symmetrize(block: np.ndarray) -> np.ndarray:
    return np.tril(block) + np.tril(block, -1).T


def least_squares(blas: AugemBLAS, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve min ||Ax - b|| via normal equations on AUGEM kernels.

    AᵀA and Aᵀb are GEMM/GEMV; the SPD solve is our blocked Cholesky plus
    two TRSM sweeps.
    """
    at = np.ascontiguousarray(a.T)
    gram = blas.dgemm(at, a)  # AᵀA
    rhs = blas.dgemv(a, b, trans=True)  # Aᵀb
    l = blocked_cholesky(blas, gram)
    # forward then backward substitution via TRSM on column vectors
    y = blas.dtrsm(l, rhs.reshape(-1, 1))
    x = blas.dtrsm(np.ascontiguousarray(l.T[::-1, ::-1]),
                   y[::-1]).ravel()[::-1]
    return x


def main() -> None:
    rng = np.random.default_rng(7)
    blas = AugemBLAS()

    # --- Cholesky ---------------------------------------------------------
    n = 384
    g = rng.standard_normal((n, n))
    spd = g @ g.T + n * np.eye(n)
    l = blocked_cholesky(blas, spd)
    err = np.abs(l @ l.T - spd).max() / np.abs(spd).max()
    print(f"blocked Cholesky ({n}x{n}):  rel err = {err:.2e}")
    assert err < 1e-10

    # --- least squares -----------------------------------------------------
    m, k = 600, 120
    a = rng.standard_normal((m, k))
    x_true = rng.standard_normal(k)
    b = a @ x_true + 1e-8 * rng.standard_normal(m)
    x = least_squares(blas, a, b)
    print(f"least squares ({m}x{k}):     max |x - x*| = "
          f"{np.abs(x - x_true).max():.2e}")
    assert np.allclose(x, x_true, atol=1e-5)

    # --- power iteration (GEMV-driven) -------------------------------------
    mat = rng.standard_normal((512, 512))
    u = rng.standard_normal(512)
    u /= np.linalg.norm(u)
    sym = mat + mat.T + 200.0 * np.outer(u, u)  # planted dominant eigenpair
    v = rng.standard_normal(512)
    for _ in range(100):
        v = blas.dgemv(np.ascontiguousarray(sym.T), v, trans=True)
        v /= np.sqrt(blas.ddot(v, v))
    lam = blas.ddot(v, blas.dgemv(np.ascontiguousarray(sym.T), v, trans=True))
    lam_ref = np.linalg.eigvalsh(sym).max()
    print(f"power iteration:            lambda = {lam:.4f} "
          f"(dense eig: {lam_ref:.4f})")
    assert abs(lam - lam_ref) / lam_ref < 1e-6

    print("\nall application results verified against numpy")


if __name__ == "__main__":
    main()
