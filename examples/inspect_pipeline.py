#!/usr/bin/env python3
"""Walk through the four AUGEM pipeline stages on the GEMM kernel —
reproduces the paper's Figs. 12, 13, 14 (qualitatively) and shows the Vdup
vs Shuf vectorization outputs of Figs. 8/9.

Run:  python examples/inspect_pipeline.py
"""

from repro import Augem, OptimizationConfig
from repro.blas.kernels import GEMM_SHUF_SIMPLE_C, GEMM_SIMPLE_C
from repro.core.identifier import identify_templates
from repro.isa.arch import GENERIC_SSE
from repro.poet import to_c
from repro.transforms.pipeline import optimize_c_kernel


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    # ---- paper Fig. 12: the simple-C input --------------------------------
    banner("Stage 0 — simple C kernel (paper Fig. 12)")
    print(GEMM_SIMPLE_C.strip())

    # ---- paper Fig. 13: the Optimized C Kernel Generator output ------------
    cfg = OptimizationConfig(
        unroll_jam=(("j", 2), ("i", 2)),
        prefetch_distance={"A": 64, "B": 64},
    )
    fn = optimize_c_kernel(GEMM_SIMPLE_C, cfg)
    banner("Stage 1 — low-level optimized C "
           "(unroll&jam 2x2 + strength reduction + scalar replacement + "
           "prefetch; paper Fig. 13)")
    print(to_c(fn))

    # ---- paper Fig. 14: the Template Identifier output -----------------------
    fn, regions = identify_templates(fn)
    banner("Stage 2 — template-tagged kernel (paper Fig. 14)")
    print(to_c(fn))
    print("\nIdentified templates:",
          [r.template for r in regions])

    # ---- Figs. 8/9: Vdup vs Shuf vectorization on SSE -----------------------
    aug = Augem(arch=GENERIC_SSE)
    cfg22 = OptimizationConfig(unroll_jam=(("j", 2), ("i", 2)))

    vdup = aug.generate_named("gemm", config=cfg22, strategy="vdup",
                              name="gemm_vdup_demo")
    banner("Stage 3a — Vdup method (paper Fig. 8): "
           "Vld-Vdup-Vmul-Vadd per pair of mmCOMPs")
    _print_inner_loop(vdup.asm_text)

    shuf = aug.generate_named("gemm_shuf", config=cfg22, strategy="shuf",
                              name="gemm_shuf_demo")
    banner("Stage 3b — Shuf method (paper Fig. 9): "
           "Vld-Vld-Vmul-Vadd + Shuf-Vmul-Vadd")
    _print_inner_loop(shuf.asm_text)

    # ---- the complete generated function --------------------------------------
    host = Augem()
    best = host.generate_named("gemm")
    banner(f"Stage 4 — complete assembly kernel for {best.arch} "
           "(Assembly Kernel Generator)")
    print(best.asm_text)


def _print_inner_loop(asm_text: str) -> None:
    """Print the innermost loop body (between the last body/check labels)."""
    lines = asm_text.splitlines()
    body_starts = [i for i, l in enumerate(lines) if "_body" in l and l.endswith(":")]
    check_starts = [i for i, l in enumerate(lines) if "_check" in l and l.endswith(":")]
    if body_starts and check_starts:
        start = body_starts[-1]
        end = next(i for i in check_starts if i > start)
        for line in lines[start:end + 2]:
            print("   ", line)
    else:
        print(asm_text)


if __name__ == "__main__":
    main()
