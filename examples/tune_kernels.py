#!/usr/bin/env python3
"""Empirical tuning (paper §2.1): sweep unrolling / unroll&jam / prefetch
configurations for each kernel, measure each candidate natively, and print
the leaderboard.

Run:  python examples/tune_kernels.py [gemm|gemv|axpy|dot]
"""

import sys

from repro.tuning.search import tune_kernel


def main() -> None:
    kernels = sys.argv[1:] or ["axpy", "dot", "gemv", "gemm"]
    for kernel in kernels:
        result = tune_kernel(kernel, verbose=False)
        print(result.report())
        print(f"\n>>> winner for {kernel}: {result.best.describe()} "
              f"at {result.best_gflops:.2f} GFLOPS\n")


if __name__ == "__main__":
    main()
