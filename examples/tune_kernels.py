#!/usr/bin/env python3
"""Empirical tuning (paper §2.1): sweep unrolling / unroll&jam / prefetch
configurations for each kernel, measure each candidate natively, and print
the leaderboard.

Candidates are generated/assembled on a small worker pool and every
measurement is persisted in the kernel cache ($REPRO_CACHE_DIR), so a
re-run replays instantly; timing itself always runs serialized.

Run:  python examples/tune_kernels.py [gemm|gemv|axpy|dot]
"""

import sys

from repro.backend.cache import get_cache
from repro.tuning.search import tune_kernel


def main() -> None:
    kernels = sys.argv[1:] or ["axpy", "dot", "gemv", "gemm"]
    for kernel in kernels:
        result = tune_kernel(kernel, verbose=False, jobs=4)
        print(result.report())
        print(f"\n>>> winner for {kernel}: {result.best.describe()} "
              f"at {result.best_gflops:.2f} GFLOPS\n")
    print(f"[cache] {get_cache().stats.describe()}")


if __name__ == "__main__":
    main()
