#!/usr/bin/env python3
"""Quickstart: generate a DGEMM assembly kernel and use the BLAS built on it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Augem, AugemBLAS


def main() -> None:
    # --- 1. the framework: simple C in, tuned x86-64 assembly out ---------
    augem = Augem()  # architecture auto-detected from /proc/cpuinfo
    kernel = augem.generate_named("gemm")
    print(f"Generated {kernel.name} for {kernel.arch}")
    print(f"  templates identified: {kernel.template_counts}")
    print(f"  vectorization strategy: "
          f"{ {id(r): kernel.plan.plan_for(r).strategy for r in kernel.regions} }")
    print("\nFirst 25 lines of the generated assembly:")
    for line in kernel.asm_text.splitlines()[:25]:
        print("   ", line)

    # --- 2. the BLAS library built from generated kernels ------------------
    blas = AugemBLAS()
    rng = np.random.default_rng(0)
    a = rng.standard_normal((512, 512))
    b = rng.standard_normal((512, 512))

    c = blas.dgemm(a, b)
    err = np.abs(c - a @ b).max()
    print(f"\nDGEMM 512x512: max |err| vs numpy = {err:.2e}")

    x = rng.standard_normal(512)
    y = blas.dgemv(a, x, trans=True)
    print(f"DGEMV: max |err| = {np.abs(y - a.T @ x).max():.2e}")

    s = blas.ddot(x, x)
    print(f"DDOT:  |err| = {abs(s - x @ x):.2e}")

    blas.daxpy(2.0, x, y)
    print("DAXPY: ok")

    import time

    blas.dgemm(a, b)  # warm
    t0 = time.perf_counter()
    blas.dgemm(a, b)
    dt = time.perf_counter() - t0
    print(f"\nDGEMM rate: {2 * 512**3 / dt / 1e9:.2f} GFLOPS "
          "(single core, generated assembly + Python packing driver)")


if __name__ == "__main__":
    main()
