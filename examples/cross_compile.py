#!/usr/bin/env python3
"""Cross-architecture generation: produce kernels for every modelled CPU —
including AMD Piledriver FMA4 code this machine cannot execute — and
validate each one under the bundled x86-64 emulator.

This demonstrates the paper's portability claim: the same template
machinery retargets Sandy Bridge (AVX), Piledriver (FMA4), Haswell (FMA3)
and plain SSE2 with no per-architecture code.

Run:  python examples/cross_compile.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import ALL_ARCHS, Augem
from repro.emu.run import call_kernel


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("generated_kernels")
    out_dir.mkdir(exist_ok=True)
    rng = np.random.default_rng(3)

    # sizes divisible by every arch's default tile (12 on FMA, 8 on AVX,
    # 4 on SSE)
    mc, nc, kc, ldc = 48, 8, 32, 48
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    ref = np.zeros(ldc * nc)
    am = a.reshape(kc, mc)
    bm = b.reshape(nc, kc)
    for j in range(nc):
        for i in range(mc):
            ref[j * ldc + i] = am[:, i] @ bm[j, :]

    print(f"{'arch':<14} {'SIMD':<8} {'FMA':<6} {'instrs':>7}  "
          f"{'emulated result':<18} file")
    for name, arch in sorted(ALL_ARCHS.items()):
        aug = Augem(arch=arch)
        gk = aug.generate_named("gemm", name=f"dgemm_kernel_{name}")
        path = out_dir / f"dgemm_{name}.S"
        path.write_text(gk.asm_text)

        c = np.zeros(ldc * nc)
        call_kernel(gk, [mc, nc, kc, a, b, c, ldc])
        ok = np.allclose(c, ref)
        n_instr = sum(1 for it in gk.items
                      if type(it).__name__ == "Instr")
        print(f"{name:<14} {arch.simd + str(arch.vector_bytes * 8):<8} "
              f"{arch.fma or '-':<6} {n_instr:>7}  "
              f"{'correct' if ok else 'WRONG':<18} {path}")
        assert ok

    print(f"\nGAS sources written to {out_dir}/ — assemble any of them with "
          "`gcc -c <file>`")


if __name__ == "__main__":
    main()
