"""Paper Fig. 18: DGEMM across libraries (m = n, k = 256).

The paper sweeps m=n from 1024 to 6144 on 20 points; the benchmark suite
uses two representative sizes (the crossover behaviour is size-stable) and
``python -m repro.bench fig18 --paper-sizes`` reproduces the full sweep.
"""

import numpy as np
import pytest

K = 256
SIZES = [256, 512]


@pytest.mark.parametrize("m", SIZES)
def test_dgemm(benchmark, library, rng, m):
    a = rng.standard_normal((m, K))
    b = rng.standard_normal((K, m))
    result = benchmark(library.dgemm, a, b)
    assert np.allclose(result, a @ b)
    benchmark.extra_info["mflops"] = 2.0 * m * m * K / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["library"] = library.name
