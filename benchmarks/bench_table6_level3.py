"""Paper Table 6: higher-level DLA routines (SYMM/SYRK/SYR2K/TRMM/TRSM/GER).

One benchmark per (routine, library) at a representative size; the full
m=n sweep with averaging is ``python -m repro.bench table6``.
"""

import numpy as np
import pytest

M = 512
K = 256
GER_M = 1024


def test_symm(benchmark, library, rng):
    a = rng.standard_normal((M, M))
    b = rng.standard_normal((M, K))
    benchmark(library.dsymm, a, b)
    benchmark.extra_info["mflops"] = 2.0 * M * M * K / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["library"] = library.name


def test_syrk(benchmark, library, rng):
    a = rng.standard_normal((M, K))
    benchmark(library.dsyrk, a)
    benchmark.extra_info["mflops"] = 1.0 * M * M * K / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["library"] = library.name


def test_syr2k(benchmark, library, rng):
    a = rng.standard_normal((M, K))
    b = rng.standard_normal((M, K))
    benchmark(library.dsyr2k, a, b)
    benchmark.extra_info["mflops"] = 2.0 * M * M * K / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["library"] = library.name


def test_trmm(benchmark, library, rng):
    l = np.tril(rng.standard_normal((M, M))) + 4 * np.eye(M)
    b = rng.standard_normal((M, K))
    benchmark(library.dtrmm, l, b)
    benchmark.extra_info["mflops"] = 1.0 * M * M * K / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["library"] = library.name


def test_trsm(benchmark, library, rng):
    l = np.tril(rng.standard_normal((M, M))) + 4 * np.eye(M)
    b = rng.standard_normal((M, K))
    benchmark(library.dtrsm, l, b)
    benchmark.extra_info["mflops"] = 1.0 * M * M * K / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["library"] = library.name


def test_ger(benchmark, library, rng):
    a = np.ascontiguousarray(rng.standard_normal((GER_M, GER_M)))
    x = rng.standard_normal(GER_M)
    y = rng.standard_normal(GER_M)
    benchmark(library.dger, 1.0000001, x, y, a)
    benchmark.extra_info["mflops"] = 2.0 * GER_M * GER_M / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["library"] = library.name
