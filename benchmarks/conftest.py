"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_fig*.py`` file regenerates one figure of the paper's §5 at
benchmark-friendly sizes; ``python -m repro.bench <figure> --paper-sizes``
runs the full-scale sweeps outside pytest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import (
    Library,
    make_atlas_proxy_library,
    make_augem_library,
    make_goto_proxy_library,
    make_vendor_library,
)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2013)  # SC'13


@pytest.fixture(scope="session")
def augem_lib() -> Library:
    return make_augem_library()


@pytest.fixture(scope="session")
def vendor_lib() -> Library:
    return make_vendor_library()


@pytest.fixture(scope="session")
def atlas_lib() -> Library:
    return make_atlas_proxy_library()


@pytest.fixture(scope="session")
def goto_lib() -> Library:
    return make_goto_proxy_library()


def library_params():
    """(fixture name, display id) for the paper's comparison lineup."""
    return [
        ("augem_lib", "AUGEM"),
        ("vendor_lib", "OpenBLAS-vendor-proxy"),
        ("atlas_lib", "ATLAS-proxy"),
        ("goto_lib", "GotoBLAS-proxy-SSE2"),
    ]


@pytest.fixture(params=[p[0] for p in library_params()],
                ids=[p[1] for p in library_params()])
def library(request) -> Library:
    return request.getfixturevalue(request.param)
