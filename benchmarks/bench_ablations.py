"""Ablation benchmarks for the design choices DESIGN.md calls out.

All run the GEMM micro-kernel on an L2-resident packed block (k = 256, the
paper's fixed inner dimension), isolating code-generation effects from
cache blocking:

- **vectorizer strategy**: Vdup vs Shuf (paper §3.4's two methods) vs
  fully scalar;
- **FMA instruction selection**: Table 1 line 3 (FMA3) vs line 2 (separate
  Mul+Add on the same AVX hardware — SandyBridge codegen on this host);
- **unroll factor sweep**: the empirical-tuning axis of §2.1;
- **prefetch on/off**;
- **instruction scheduling on/off**;
- **per-array register queues vs one unified pool** (§3.1's
  false-dependence argument).
"""

import numpy as np
import pytest

from repro.backend.runner import load_kernel
from repro.core.framework import Augem
from repro.isa.arch import GENERIC_SSE, SANDYBRIDGE, detect_host
from repro.transforms.pipeline import OptimizationConfig

#: MC divides every default tile width (12 on FMA hosts, 8 without FMA)
MC, NC, KC = 48, 64, 256
FLOPS = 2.0 * MC * NC * KC

_HOST = detect_host()


def _workload(rng):
    a = rng.standard_normal(KC * MC)
    b = rng.standard_normal(NC * KC)
    c = np.zeros(MC * NC)
    return a, b, c


def _bench_kernel(benchmark, kernel, rng, layout="dup"):
    a, b, c = _workload(rng)
    benchmark(kernel, MC, NC, KC, a, b, c, MC)
    benchmark.extra_info["gflops"] = FLOPS / benchmark.stats["mean"] / 1e9


# -- vectorizer strategy (SSE so Shuf applies) -----------------------------------

@pytest.mark.parametrize("strategy,kernel_name", [
    ("vdup", "gemm"),
    ("shuf", "gemm_shuf"),
    ("scalar", "gemm"),
])
def test_vectorizer_strategy(benchmark, rng, strategy, kernel_name):
    aug = Augem(arch=GENERIC_SSE)
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 2)))
    gk = aug.generate_named(kernel_name, config=cfg, strategy=strategy,
                            name=f"abl_strat_{strategy}")
    kernel = load_kernel(kernel_name, gk)
    _bench_kernel(benchmark, kernel, rng)


# -- FMA on/off (only meaningful on an FMA host) --------------------------------

@pytest.mark.skipif(_HOST.fma != "fma3", reason="host lacks FMA3")
@pytest.mark.parametrize("arch,label", [(_HOST, "fma3"),
                                        (SANDYBRIDGE, "mul+add")])
def test_fma_selection(benchmark, rng, arch, label):
    aug = Augem(arch=arch)
    gk = aug.generate_named("gemm", name=f"abl_fma_{label.replace('+', '_')}")
    kernel = load_kernel("gemm", gk)
    _bench_kernel(benchmark, kernel, rng)
    benchmark.extra_info["selection"] = label


# -- unroll sweep ---------------------------------------------------------------

@pytest.mark.parametrize("nu,mu", [(2, _HOST.doubles_per_vector),
                                   (2, 2 * _HOST.doubles_per_vector),
                                   (4, 2 * _HOST.doubles_per_vector)])
def test_unroll_factors(benchmark, rng, nu, mu):
    aug = Augem(arch=_HOST)
    cfg = OptimizationConfig(unroll_jam=(("j", nu), ("i", mu)))
    gk = aug.generate_named("gemm", config=cfg, name=f"abl_u_{nu}_{mu}")
    kernel = load_kernel("gemm", gk)
    _bench_kernel(benchmark, kernel, rng)


# -- prefetch on/off ---------------------------------------------------------------

@pytest.mark.parametrize("prefetch", [None, 32], ids=["nopf", "pf32"])
def test_prefetch(benchmark, rng, prefetch):
    aug = Augem(arch=_HOST)
    n = _HOST.doubles_per_vector
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 2 * n)),
                             prefetch_distance=prefetch)
    gk = aug.generate_named("gemm", config=cfg,
                            name=f"abl_pf_{prefetch or 0}")
    kernel = load_kernel("gemm", gk)
    _bench_kernel(benchmark, kernel, rng)


# -- scheduling on/off --------------------------------------------------------------

@pytest.mark.parametrize("schedule", [True, False], ids=["sched", "nosched"])
def test_instruction_scheduling(benchmark, rng, schedule):
    aug = Augem(arch=_HOST, schedule=schedule)
    gk = aug.generate_named("gemm", name=f"abl_sched_{int(schedule)}")
    kernel = load_kernel("gemm", gk)
    _bench_kernel(benchmark, kernel, rng)


# -- per-array queues vs unified pool ------------------------------------------------

@pytest.mark.parametrize("unified", [False, True],
                         ids=["per-array-queues", "unified-pool"])
def test_register_queue_strategy(benchmark, rng, unified):
    aug = Augem(arch=_HOST, unified_regalloc=unified)
    gk = aug.generate_named("gemm", name=f"abl_rq_{int(unified)}")
    kernel = load_kernel("gemm", gk)
    a, b, c = _workload(rng)
    # correctness first: the allocation strategy must never change results
    kernel(MC, NC, KC, a, b, c, MC)
    ref = np.zeros(MC * NC)
    am = a.reshape(KC, MC)
    bm = b.reshape(NC, KC)
    for j in range(NC):
        for i in range(MC):
            ref[j * MC + i] = am[:, i] @ bm[j, :]
    assert np.allclose(c, ref)
    _bench_kernel(benchmark, kernel, rng)
