"""Paper Fig. 21: DDOT across libraries (vector sizes 1e5-2e5)."""

import numpy as np
import pytest

SIZES = [100_000, 200_000]


@pytest.mark.parametrize("n", SIZES)
def test_ddot(benchmark, library, rng, n):
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    result = benchmark(library.ddot, x, y)
    assert np.isclose(result, x @ y)
    benchmark.extra_info["mflops"] = 2.0 * n / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["library"] = library.name
