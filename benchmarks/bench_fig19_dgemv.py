"""Paper Fig. 19: DGEMV across libraries (m = n).

Paper sweep: 2048-5120.  The benchmark uses one cache-resident and one
memory-bound size; the full sweep is ``python -m repro.bench fig19``.
"""

import numpy as np
import pytest

SIZES = [1024, 2048]


@pytest.mark.parametrize("m", SIZES)
def test_dgemv(benchmark, library, rng, m):
    a = rng.standard_normal((m, m))
    x = rng.standard_normal(m)
    result = benchmark(library.dgemv_t, a, x)
    assert np.allclose(result, a.T @ x)
    benchmark.extra_info["mflops"] = 2.0 * m * m / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["library"] = library.name
