"""Property-based round trips: random ASTs survive print->parse->print."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poet import cast as C
from repro.poet.parser import parse_expr, parse_stmt
from repro.poet.pattern import ast_equal
from repro.poet.printer import to_c

_NAMES = ["a", "b", "c", "x", "ptr_A0", "tmp0", "res_u0"]


@st.composite
def exprs(draw, depth=0):
    if depth > 4 or draw(st.booleans()):
        kind = draw(st.sampled_from(["id", "int", "float"]))
        if kind == "id":
            return C.Id(draw(st.sampled_from(_NAMES)))
        if kind == "int":
            return C.IntLit(draw(st.integers(0, 10_000)))
        return C.FloatLit(draw(st.sampled_from([0.0, 1.0, 2.5, 0.125])))
    kind = draw(st.sampled_from(["bin", "index", "unary", "call"]))
    if kind == "bin":
        op = draw(st.sampled_from(["+", "-", "*", "/", "%", "<", "<=",
                                   "==", "!="]))
        return C.BinOp(op, draw(exprs(depth=depth + 1)),
                       draw(exprs(depth=depth + 1)))
    if kind == "index":
        return C.Index(C.Id(draw(st.sampled_from(_NAMES))),
                       draw(exprs(depth=depth + 1)))
    if kind == "unary":
        return C.UnaryOp("-", C.Id(draw(st.sampled_from(_NAMES))))
    return C.Call(draw(st.sampled_from(["prefetch_t0", "f"])),
                  [draw(exprs(depth=depth + 1))])


@given(exprs())
@settings(max_examples=200, deadline=None)
def test_expr_print_parse_roundtrip(e):
    text = to_c(e)
    reparsed = parse_expr(text)
    assert ast_equal(e, reparsed), f"{text!r} -> {to_c(reparsed)!r}"


@st.composite
def stmts(draw, depth=0):
    kind = draw(st.sampled_from(
        ["assign", "compound", "decl", "for", "if", "return"]
        if depth < 2 else ["assign", "compound", "decl", "return"]))
    if kind == "assign":
        lhs = draw(st.sampled_from(
            [C.Id("x"), C.Index(C.Id("ptr_A0"), C.IntLit(draw(st.integers(0, 9))))]))
        return C.Assign(lhs, "=", draw(exprs()))
    if kind == "compound":
        op = draw(st.sampled_from(["+=", "-=", "*="]))
        return C.Assign(C.Id(draw(st.sampled_from(_NAMES))), op, draw(exprs()))
    if kind == "decl":
        t = draw(st.sampled_from([C.DOUBLE, C.LONG, C.DOUBLE_P]))
        init = draw(st.one_of(st.none(), exprs()))
        return C.Decl(draw(st.sampled_from(_NAMES)), t, init)
    if kind == "for":
        body = draw(st.lists(stmts(depth=depth + 1), min_size=1, max_size=3))
        return C.For(
            C.Assign(C.Id("i"), "=", C.IntLit(0)),
            C.BinOp("<", C.Id("i"), C.Id("x")),
            C.Assign(C.Id("i"), "+=", C.IntLit(draw(st.integers(1, 4)))),
            C.Block(body),
        )
    if kind == "if":
        then = draw(st.lists(stmts(depth=depth + 1), min_size=1, max_size=2))
        return C.If(C.BinOp("<", C.Id("a"), C.Id("b")), C.Block(then))
    return C.Return(draw(st.one_of(st.none(), exprs())))


@given(stmts())
@settings(max_examples=150, deadline=None)
def test_stmt_print_parse_roundtrip(s):
    text = to_c(s)
    reparsed = parse_stmt(text)
    assert ast_equal(s, reparsed), text
