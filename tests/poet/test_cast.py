"""AST node and helper tests."""

import pytest

from repro.poet import cast as C
from repro.poet.parser import parse_expr, parse_function


# -- CType ------------------------------------------------------------------

def test_ctype_str():
    assert str(C.CType("double", 1)) == "double*"
    assert str(C.LONG) == "long"


def test_ctype_sizeof():
    assert C.DOUBLE.sizeof == 8
    assert C.INT.sizeof == 4
    assert C.CType("float", 2).sizeof == 8  # pointers are 8 bytes


def test_ctype_pointee_and_pointer_to():
    p = C.DOUBLE.pointer_to()
    assert p.is_pointer and p.pointee() == C.DOUBLE


def test_ctype_pointee_of_scalar_raises():
    with pytest.raises(ValueError):
        C.DOUBLE.pointee()


def test_ctype_classification():
    assert C.DOUBLE.is_float and not C.DOUBLE.is_integer
    assert C.LONG.is_integer and not C.LONG.is_float
    assert not C.DOUBLE_P.is_float  # a pointer is not a float scalar


def test_ctype_rejects_unknown_base():
    with pytest.raises(ValueError):
        C.CType("quadruple")


def test_ctype_hashable():
    assert len({C.DOUBLE, C.CType("double"), C.LONG}) == 2


# -- node mechanics -----------------------------------------------------------

def test_children_iterates_direct_nodes():
    e = parse_expr("a + b")
    kids = list(e.children())
    assert len(kids) == 2


def test_walk_preorder_includes_self():
    e = parse_expr("a + b * c")
    nodes = list(e.walk())
    assert nodes[0] is e
    assert sum(isinstance(n, C.Id) for n in nodes) == 3


def test_clone_is_deep():
    e = parse_expr("A[i]")
    c = e.clone()
    c.index.name = "j"
    assert e.index.name == "i"


def test_ident_names():
    fn = parse_function("void f(long n) { n = n + 1; }")
    assert "n" in C.ident_names(fn.body)


# -- const_fold -------------------------------------------------------------

@pytest.mark.parametrize("src,expected", [
    ("2 + 3", 5),
    ("2 * 3 + 1", 7),
    ("10 - 4", 6),
    ("7 / 2", 3),
    ("7 % 2", 1),
    ("1 << 4", 16),
])
def test_const_fold_arithmetic(src, expected):
    assert C.const_fold(parse_expr(src)) == C.IntLit(expected)


def test_const_fold_identities():
    assert C.const_fold(parse_expr("x + 0")) == C.Id("x")
    assert C.const_fold(parse_expr("0 + x")) == C.Id("x")
    assert C.const_fold(parse_expr("x * 1")) == C.Id("x")
    assert C.const_fold(parse_expr("1 * x")) == C.Id("x")
    assert C.const_fold(parse_expr("x * 0")) == C.IntLit(0)


def test_const_fold_no_divide_by_zero():
    e = C.const_fold(parse_expr("5 / 0"))
    assert isinstance(e, C.BinOp)  # left unfolded rather than crashing


def test_const_fold_partial():
    e = C.const_fold(parse_expr("x + 2 * 3"))
    assert isinstance(e, C.BinOp)
    assert e.right == C.IntLit(6)


def test_add_mul_helpers():
    assert C.add(C.IntLit(2), C.IntLit(3)) == C.IntLit(5)
    assert C.mul(C.Id("x"), C.IntLit(1)) == C.Id("x")


def test_tagged_region_holds_statements():
    region = C.TaggedRegion(template="mmSTORE",
                            stmts=[parse_expr("x")])
    assert region.template == "mmSTORE"
    assert region.binding == {}
