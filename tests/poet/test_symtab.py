"""Symbol-table and type-inference tests."""

import pytest

from repro.poet import cast as C
from repro.poet.errors import PoetError
from repro.poet.parser import parse_expr, parse_function
from repro.poet.symtab import SymbolTable


FN = parse_function("""
void f(long n, double alpha, double* x) {
    long i;
    double acc;
    double* p;
    for (i = 0; i < n; i += 1) {
        acc = x[i];
    }
}
""")


@pytest.fixture
def st():
    return SymbolTable.of_function(FN)


def test_params_declared(st):
    assert st.type_of("n") == C.LONG
    assert st.type_of("alpha") == C.DOUBLE
    assert st.type_of("x") == C.DOUBLE_P
    assert st.params == ["n", "alpha", "x"]


def test_locals_declared_including_loop_scope(st):
    assert st.type_of("i") == C.LONG
    assert st.type_of("acc") == C.DOUBLE
    assert st.is_pointer("p")


def test_undeclared_raises(st):
    with pytest.raises(PoetError):
        st.type_of("ghost")
    assert st.get("ghost") is None


def test_conflicting_redeclaration_raises():
    st = SymbolTable()
    st.declare("v", C.LONG)
    with pytest.raises(PoetError):
        st.declare("v", C.DOUBLE)
    st.declare("v", C.LONG)  # identical is tolerated


def test_classification_helpers(st):
    assert st.is_float_scalar("alpha")
    assert not st.is_float_scalar("x")
    assert st.is_integer("n")
    assert sorted(st.pointers()) == ["p", "x"]


def test_fresh_names(st):
    assert st.fresh("brand_new") == "brand_new"
    name = st.fresh("acc")
    assert name != "acc" and name not in st


def test_decls_inside_tagged_regions_found():
    fn = parse_function("void g() { double t; t = 0.0; }")
    region = C.TaggedRegion(template="mmCOMP", stmts=fn.body.stmts)
    fn.body.stmts = [region]
    st = SymbolTable.of_function(fn)
    assert st.type_of("t") == C.DOUBLE


# -- expression typing ----------------------------------------------------------

@pytest.mark.parametrize("expr,expected", [
    ("n", C.LONG),
    ("alpha", C.DOUBLE),
    ("x[i]", C.DOUBLE),
    ("x + 4", C.DOUBLE_P),
    ("i + 1", C.LONG),
    ("alpha * 2.0", C.DOUBLE),
    ("i < n", C.INT),
    ("x[i] * alpha", C.DOUBLE),
])
def test_expr_type(st, expr, expected):
    assert st.expr_type(parse_expr(expr)) == expected


def test_expr_type_deref_and_addressof(st):
    assert st.expr_type(parse_expr("*x")) == C.DOUBLE
    assert st.expr_type(parse_expr("&alpha")) == C.DOUBLE_P


def test_expr_type_cast(st):
    assert st.expr_type(parse_expr("(long)alpha")) == C.LONG
