"""Pretty-printer tests."""

from repro.poet import cast as C
from repro.poet.parser import parse_expr, parse_function, parse_stmt
from repro.poet.printer import to_c


def test_expr_plain():
    assert to_c(parse_expr("a + b * c")) == "a + b * c"


def test_expr_needs_parens():
    assert to_c(parse_expr("(a + b) * c")) == "(a + b) * c"


def test_nested_parens_minimal():
    assert to_c(parse_expr("a * (b + c) * d")) == "a * (b + c) * d"


def test_float_literal_keeps_decimal_point():
    assert to_c(C.FloatLit(0.0)) == "0.0"
    assert to_c(C.FloatLit(2.0)) == "2.0"


def test_index_and_call():
    assert to_c(parse_expr("A[i * M + 1]")) == "A[i * M + 1]"
    assert to_c(parse_expr("f(x, y)")) == "f(x, y)"


def test_cast_rendering():
    assert to_c(parse_expr("(double*)p")) == "(double*)p"


def test_declaration():
    assert to_c(parse_stmt("double* p = A + 4;")) == "double* p = A + 4;"


def test_for_loop_layout():
    out = to_c(parse_stmt("for (i = 0; i < N; i += 1) { x += 1; }"))
    assert out.splitlines()[0] == "for (i = 0; i < N; i += 1) {"
    assert out.splitlines()[1] == "    x += 1;"
    assert out.splitlines()[2] == "}"


def test_if_else_layout():
    out = to_c(parse_stmt("if (a < b) { x = 1; } else { x = 2; }"))
    assert "} else {" in out


def test_tagged_region_prints_as_comment_block():
    inner = [parse_stmt("x = 1.0;")]
    region = C.TaggedRegion(template="mmCOMP", stmts=inner)
    out = to_c(region)
    assert "/* BEGIN mmCOMP */" in out and "/* END mmCOMP */" in out
    assert "x = 1.0;" in out


def test_function_signature():
    fn = parse_function("double f(long n, double* x) { return x[0]; }")
    out = to_c(fn)
    assert out.startswith("double f(long n, double* x) {")
    assert out.endswith("}")


def test_empty_return():
    assert to_c(parse_stmt("return;")) == "return;"
