"""Parser tests: constructs, round trips, and error reporting."""

import pytest

from repro.poet import cast as C
from repro.poet.errors import ParseError
from repro.poet.parser import parse_expr, parse_function, parse_program, parse_stmt
from repro.poet.printer import to_c


# -- expressions ------------------------------------------------------------

def test_precedence_mul_over_add():
    e = parse_expr("a + b * c")
    assert isinstance(e, C.BinOp) and e.op == "+"
    assert isinstance(e.right, C.BinOp) and e.right.op == "*"


def test_left_associativity():
    e = parse_expr("a - b - c")
    assert e.op == "-" and isinstance(e.left, C.BinOp) and e.left.op == "-"


def test_parenthesized_grouping():
    e = parse_expr("(a + b) * c")
    assert e.op == "*" and isinstance(e.left, C.BinOp) and e.left.op == "+"


def test_array_subscript_chain():
    e = parse_expr("A[i][j]")
    assert isinstance(e, C.Index) and isinstance(e.base, C.Index)


def test_unary_minus_folds_literals():
    assert parse_expr("-5") == C.IntLit(-5)
    assert parse_expr("-2.5") == C.FloatLit(-2.5)


def test_unary_minus_on_identifier():
    e = parse_expr("-x")
    assert isinstance(e, C.UnaryOp) and e.op == "-"


def test_cast_expression():
    e = parse_expr("(double*)p")
    assert isinstance(e, C.Cast) and e.ctype == C.CType("double", 1)


def test_call_with_args():
    e = parse_expr("prefetch_t0(p + 64)")
    assert isinstance(e, C.Call) and e.func == "prefetch_t0"
    assert len(e.args) == 1


def test_comparison_operators():
    for op in ("<", "<=", ">", ">=", "==", "!="):
        e = parse_expr(f"a {op} b")
        assert e.op == op


def test_logical_operators_lowest_precedence():
    e = parse_expr("a < b && c > d")
    assert e.op == "&&"


# -- statements ---------------------------------------------------------------

def test_simple_assignment():
    s = parse_stmt("x = 5;")
    assert isinstance(s, C.Assign) and s.op == "="


@pytest.mark.parametrize("op", ["+=", "-=", "*=", "/="])
def test_compound_assignment(op):
    s = parse_stmt(f"x {op} 2;")
    assert isinstance(s, C.Assign) and s.op == op


def test_increment_desugars_to_plus_equals():
    s = parse_stmt("i++;")
    assert isinstance(s, C.Assign) and s.op == "+=" and s.rhs == C.IntLit(1)


def test_declaration_with_initializer():
    s = parse_stmt("double res = 0.0;")
    assert isinstance(s, C.Decl)
    assert s.ctype == C.DOUBLE and s.init == C.FloatLit(0.0)


def test_pointer_declaration():
    s = parse_stmt("double* p = A + 4;")
    assert s.ctype == C.CType("double", 1)


def test_for_loop_canonical():
    s = parse_stmt("for (i = 0; i < N; i += 1) { x = i; }")
    assert isinstance(s, C.For)
    assert isinstance(s.init, C.Assign)
    assert isinstance(s.cond, C.BinOp)
    assert len(s.body.stmts) == 1


def test_for_loop_with_declaration_init():
    s = parse_stmt("for (long i = 0; i < N; i++) { }")
    assert isinstance(s.init, C.Decl)


def test_for_loop_unbraced_body_wrapped():
    s = parse_stmt("for (i = 0; i < N; i += 1) x += 1;")
    assert isinstance(s.body, C.Block) and len(s.body.stmts) == 1


def test_if_else():
    s = parse_stmt("if (a < b) { x = 1; } else { x = 2; }")
    assert isinstance(s, C.If) and s.els is not None


def test_return_with_value():
    s = parse_stmt("return res;")
    assert isinstance(s, C.Return) and isinstance(s.value, C.Id)


def test_call_statement():
    s = parse_stmt("prefetch_t0(p);")
    assert isinstance(s, C.ExprStmt) and isinstance(s.expr, C.Call)


# -- functions / programs -------------------------------------------------------

def test_function_definition():
    fn = parse_function("void f(long n, double* x) { x[0] = 1.0; }")
    assert fn.name == "f"
    assert [p.name for p in fn.params] == ["n", "x"]
    assert fn.params[1].ctype.is_pointer


def test_function_with_return_type():
    fn = parse_function("double g(long n) { return 0.0; }")
    assert fn.ret_type == C.DOUBLE


def test_program_multiple_functions():
    prog = parse_program("void a() { } void b() { }")
    assert [f.name for f in prog.funcs] == ["a", "b"]
    assert prog.func("b").name == "b"


def test_program_unknown_function_lookup():
    prog = parse_program("void a() { }")
    with pytest.raises(KeyError):
        prog.func("missing")


def test_parse_function_rejects_two_functions():
    with pytest.raises(ParseError):
        parse_function("void a() { } void b() { }")


# -- round trips -----------------------------------------------------------

GEMM_SRC = """\
void dgemm_kernel(long Mc, long Nc, long Kc, double* A, double* B, double* C, long LDC) {
    long i;
    for (i = 0; i < Mc; i += 1) {
        double res = 0.0;
        res += A[i] * B[i];
        C[i] += res;
    }
}"""


def test_round_trip_is_stable():
    fn = parse_function(GEMM_SRC)
    once = to_c(fn)
    twice = to_c(parse_function(once))
    assert once == twice


def test_round_trip_preserves_structure():
    from repro.poet.pattern import ast_equal

    fn1 = parse_function(GEMM_SRC)
    fn2 = parse_function(to_c(fn1))
    assert ast_equal(fn1, fn2)


# -- errors -----------------------------------------------------------------

@pytest.mark.parametrize("bad", [
    "void f( { }",
    "void f() { x = ; }",
    "void f() { for (;;; ) {} }",
    "void f() { double 5x; }",
    "void f() { x = 1 }",
])
def test_syntax_errors_raise(bad):
    with pytest.raises(ParseError):
        parse_function(bad)


def test_trailing_garbage_after_expr():
    with pytest.raises(ParseError):
        parse_expr("a + b extra")
