"""Tokenizer tests."""

import pytest

from repro.poet.errors import LexError
from repro.poet.lexer import Token, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


def test_empty_source_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind == "eof"


def test_identifiers_and_keywords():
    toks = tokenize("double foo _bar x1")
    assert [t.kind for t in toks[:-1]] == ["kw", "id", "id", "id"]
    assert [t.text for t in toks[:-1]] == ["double", "foo", "_bar", "x1"]


def test_all_type_keywords_recognized():
    for kw in ("void", "char", "int", "long", "float", "double"):
        assert tokenize(kw)[0].kind == "kw"


def test_integer_literals():
    toks = tokenize("0 42 1024")
    assert all(t.kind == "int" for t in toks[:-1])


def test_hex_literal():
    (tok, _) = tokenize("0xFF")
    assert tok.kind == "int" and tok.text == "0xFF"


def test_float_literals():
    toks = tokenize("0.0 3.14 1e5 2.5e-3 1.0f")
    assert [t.kind for t in toks[:-1]] == ["float"] * 5


def test_integer_not_mistaken_for_float():
    toks = tokenize("12 + 3")
    assert toks[0].kind == "int" and toks[2].kind == "int"


def test_integer_suffix_dropped():
    toks = tokenize("10L")
    assert toks[0].kind == "int" and toks[0].text == "10"


def test_compound_operators_maximal_munch():
    assert texts("+= -= *= == != <= >= << >> ++ --") == [
        "+=", "-=", "*=", "==", "!=", "<=", ">=", "<<", ">>", "++", "--",
    ]


def test_single_char_operators():
    assert texts("+ - * / % < > = !") == list("+-*/%<>=!")


def test_punctuation():
    assert texts("()[]{};,") == list("()[]{};,")


def test_line_comment_skipped():
    assert texts("a // comment here\n b") == ["a", "b"]


def test_block_comment_skipped():
    assert texts("a /* multi\nline */ b") == ["a", "b"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_line_and_column_tracking():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_lex_error_carries_position():
    with pytest.raises(LexError) as exc:
        tokenize("x\n\n  $")
    assert exc.value.line == 3


def test_float_with_exponent_no_dot():
    toks = tokenize("1e9")
    assert toks[0].kind == "float"


def test_dot_followed_by_digits():
    toks = tokenize("x[0] = .5;")
    assert any(t.kind == "float" and t.text == ".5" for t in toks)


def test_kernel_snippet_token_count():
    src = "for (i = 0; i < N; i += 1) { y[i] += x[i] * alpha; }"
    toks = tokenize(src)
    assert toks[-1].kind == "eof"
    assert sum(1 for t in toks if t.kind == "kw") == 1  # 'for'
