"""Visitor/rewriter tests."""

from repro.poet import cast as C
from repro.poet.parser import parse_function, parse_stmt
from repro.poet.pattern import ast_equal
from repro.poet.printer import to_c
from repro.poet.traversal import (
    NodeTransformer,
    NodeVisitor,
    count_nodes,
    replace_ids,
    rewrite,
    stmt_lists,
)


def test_visitor_dispatch():
    seen = []

    class V(NodeVisitor):
        def visit_Id(self, node):
            seen.append(node.name)

    V().visit(parse_stmt("x = y + z;"))
    assert sorted(seen) == ["x", "y", "z"]


def test_transformer_replaces_node():
    class T(NodeTransformer):
        def visit_IntLit(self, node):
            return C.IntLit(node.value * 2)

    out = T().transform(parse_stmt("x = 3 + 4;"))
    assert to_c(out) == "x = 6 + 8;"  # children rewritten bottom-up


def test_transformer_splices_list():
    class T(NodeTransformer):
        def visit_Assign(self, node):
            if isinstance(node.lhs, C.Id) and node.lhs.name == "dup":
                return [node, node.clone()]
            return None

    fn = parse_function("void f() { dup = 1; x = 2; }")
    T().transform(fn)
    assert len(fn.body.stmts) == 3


def test_transformer_deletes_statement():
    class T(NodeTransformer):
        def visit_Assign(self, node):
            if isinstance(node.lhs, C.Id) and node.lhs.name == "kill":
                return NodeTransformer.DELETE
            return None

    fn = parse_function("void f() { kill = 1; keep = 2; }")
    T().transform(fn)
    assert len(fn.body.stmts) == 1


def test_functional_rewrite():
    out = rewrite(parse_stmt("x = a * 2;"),
                  lambda n: C.Id("b") if isinstance(n, C.Id) and n.name == "a" else None)
    assert to_c(out) == "x = b * 2;"


def test_replace_ids_with_strings_and_exprs():
    s = parse_stmt("res = res + A[i];")
    out = replace_ids(s, {"res": "acc", "i": C.BinOp("+", C.Id("i"), C.IntLit(1))})
    assert to_c(out) == "acc = acc + A[i + 1];"


def test_replace_ids_does_not_mutate_original():
    s = parse_stmt("x = y;")
    replace_ids(s, {"y": "z"})
    assert to_c(s) == "x = y;"


def test_stmt_lists_innermost_first():
    fn = parse_function(
        "void f() { for (i = 0; i < 4; i += 1) { for (j = 0; j < 4; j += 1)"
        " { x = 1; } } }"
    )
    lists = list(stmt_lists(fn))
    # innermost (x = 1) list first, outer body last
    assert len(lists[0]) == 1 and isinstance(lists[0][0], C.Assign)
    assert isinstance(lists[-1][0], C.For)


def test_count_nodes():
    fn = parse_function("void f() { x = a + b; }")
    assert count_nodes(fn, C.Id) == 3
