"""Pattern-matching engine tests."""

import pytest

from repro.poet import cast as C
from repro.poet.errors import PatternError
from repro.poet.parser import parse_expr, parse_stmt
from repro.poet.pattern import Bind, ast_equal, find_all, match, matches, subst


LOAD_PAT = C.Assign(Bind("dst", C.Id), "=",
                    C.Index(Bind("arr", C.Id), Bind("idx")))


def test_simple_capture():
    b = match(LOAD_PAT, parse_stmt("tmp0 = ptr_A[4];"))
    assert b is not None
    assert b["dst"].name == "tmp0"
    assert b["arr"].name == "ptr_A"
    assert b["idx"] == C.IntLit(4)


def test_mismatch_returns_none():
    assert match(LOAD_PAT, parse_stmt("tmp0 = a + b;")) is None


def test_wildcard_underscore_not_captured():
    pat = C.Assign(Bind("_"), "=", Bind("_"))
    b = match(pat, parse_stmt("x = y;"))
    assert b == {}


def test_repeated_bind_must_match_equal_subtrees():
    pat = C.Assign(Bind("x", C.Id), "=",
                   C.BinOp("+", Bind("x", C.Id), Bind("inc")))
    assert matches(pat, parse_stmt("res = res + tmp;"))
    assert not matches(pat, parse_stmt("res = other + tmp;"))


def test_class_constraint():
    pat = Bind("v", C.IntLit)
    assert matches(pat, C.IntLit(3))
    assert not matches(pat, C.FloatLit(3.0))


def test_where_predicate():
    pat = Bind("v", C.IntLit, where=lambda n: n.value > 10)
    assert matches(pat, C.IntLit(42))
    assert not matches(pat, C.IntLit(5))


def test_list_pattern_length_must_match():
    pat = [Bind("a"), Bind("b")]
    assert match(pat, [C.IntLit(1), C.IntLit(2)]) is not None
    assert match(pat, [C.IntLit(1)]) is None


def test_operator_field_is_literal_matched():
    pat = C.Assign(Bind("_"), "+=", Bind("_"))
    assert matches(pat, parse_stmt("x += 1;"))
    assert not matches(pat, parse_stmt("x = 1;"))


def test_find_all_yields_every_match():
    expr = parse_expr("A[0] + A[1] + B[2]")
    pat = C.Index(Bind("arr", C.Id), Bind("idx", C.IntLit))
    hits = list(find_all(pat, expr))
    assert len(hits) == 3
    names = sorted(b["arr"].name for _, b in hits)
    assert names == ["A", "A", "B"]


def test_ast_equal_structural():
    a = parse_expr("x + y * 2")
    b = parse_expr("x + y * 2")
    c = parse_expr("x + y * 3")
    assert ast_equal(a, b)
    assert not ast_equal(a, c)


def test_subst_replaces_binds():
    template = C.Assign(Bind("dst"), "=", C.BinOp("*", Bind("a"), Bind("b")))
    out = subst(template, {"dst": C.Id("t"), "a": C.Id("x"), "b": C.IntLit(2)})
    assert ast_equal(out, parse_stmt("t = x * 2;"))


def test_subst_replaces_named_ids():
    template = parse_stmt("res = res + tmp;")
    out = subst(template, {"res": "acc", "tmp": C.Id("t9")})
    assert ast_equal(out, parse_stmt("acc = acc + t9;"))


def test_subst_unbound_raises():
    with pytest.raises(PatternError):
        subst(Bind("missing"), {})


def test_subst_scalar_values():
    template = parse_stmt("x = k;")
    out = subst(template, {"k": 7})
    assert ast_equal(out, parse_stmt("x = 7;"))


def test_match_does_not_mutate_node():
    stmt = parse_stmt("tmp0 = ptr_A[4];")
    from repro.poet.printer import to_c

    text = to_c(stmt)
    match(LOAD_PAT, stmt)
    assert to_c(stmt) == text
