"""Instruction IR tests: operand roles, dependence info, item stream."""

import pytest

from repro.isa.instructions import (
    Comment,
    Directive,
    Instr,
    Label,
    instr,
    instructions_of,
)
from repro.isa.operands import Imm, LabelRef, Mem
from repro.isa.registers import GP, RSP, xmm, ymm

RAX, RBX = GP["rax"], GP["rbx"]


def test_unknown_mnemonic_rejected():
    with pytest.raises(ValueError):
        instr("frobnicate", RAX)


def test_operand_count_checked():
    with pytest.raises(ValueError):
        instr("mov", RAX)  # mov needs two operands


def test_mov_reads_and_writes():
    i = instr("mov", RAX, RBX)
    assert RAX in i.reg_reads()
    assert i.reg_writes() == [RBX]


def test_rmw_destination_is_read_and_written():
    i = instr("add", RAX, RBX)
    assert RBX in i.reg_reads() and RBX in i.reg_writes()


def test_mem_base_index_are_reads():
    m = Mem(base=RAX, index=RBX, scale=8)
    i = instr("vmovupd", m, ymm(0))
    reads = i.reg_reads()
    assert RAX in reads and RBX in reads
    assert i.loads_mem() == [m]


def test_store_detected():
    m = Mem(base=RAX)
    i = instr("vmovupd", ymm(1), m)
    assert i.stores_mem() == [m]
    assert i.loads_mem() == []


def test_prefetch_not_a_memory_load():
    i = instr("prefetcht0", Mem(base=RAX))
    assert i.loads_mem() == []


def test_push_pop_implicit_rsp_and_memory():
    p = instr("push", RBX)
    assert RSP in p.reg_reads() and RSP in p.reg_writes()
    assert p.stores_mem()
    q = instr("pop", RBX)
    assert q.loads_mem() and RSP in q.reg_writes()


def test_avx_three_operand_write_only_dest():
    i = instr("vaddpd", ymm(0), ymm(1), ymm(2))
    assert ymm(2) not in i.reg_reads()
    assert i.reg_writes() == [ymm(2)]


def test_fma_dest_is_read_modify_write():
    i = instr("vfmadd231pd", ymm(0), ymm(1), ymm(2))
    assert ymm(2) in i.reg_reads() and ymm(2) in i.reg_writes()


def test_flags_metadata():
    assert instr("cmp", RAX, RBX).info.writes_flags
    assert instr("jl", LabelRef("x")).info.reads_flags
    assert instr("jl", LabelRef("x")).info.is_branch


def test_instructions_of_filters_stream():
    items = [Label("top"), instr("nop"), Comment("hi"),
             Directive(".text"), instr("ret")]
    assert len(instructions_of(items)) == 2


def test_str_renders_att():
    i = instr("vmovupd", Mem(base=RAX, disp=32), ymm(4))
    assert "vmovupd" in str(i) and "32(%rax)" in str(i) and "%ymm4" in str(i)


def test_comment_in_str():
    i = instr("nop", comment="hello")
    assert "# hello" in str(i)
