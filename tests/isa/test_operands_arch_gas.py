"""Operand rendering, architecture specs, and GAS emission tests."""

import pytest

from repro.isa.arch import (
    ALL_ARCHS,
    GENERIC_SSE,
    HASWELL,
    PILEDRIVER,
    SANDYBRIDGE,
    ArchSpec,
    detect_host,
    get_arch,
)
from repro.isa.gas import emit_function, emit_items
from repro.isa.instructions import Comment, Directive, Label, instr
from repro.isa.operands import Imm, Mem, mem
from repro.isa.registers import GP, RSP

RAX, RBX = GP["rax"], GP["rbx"]


# -- operands --------------------------------------------------------------

def test_imm_rendering():
    assert str(Imm(42)) == "$42"
    assert str(Imm(-8)) == "$-8"


def test_mem_full_form():
    m = Mem(base=RAX, disp=16, index=RBX, scale=8)
    assert str(m) == "16(%rax,%rbx,8)"


def test_mem_base_only():
    assert str(Mem(base=RAX)) == "(%rax)"


def test_mem_requires_base_or_index():
    with pytest.raises(ValueError):
        Mem()


def test_mem_scale_validation():
    with pytest.raises(ValueError):
        Mem(base=RAX, scale=3)


def test_mem_helper():
    assert mem(RAX, 8) == Mem(base=RAX, disp=8)


# -- arch specs -----------------------------------------------------------

def test_paper_platforms_modelled():
    assert SANDYBRIDGE.simd == "avx" and SANDYBRIDGE.fma is None
    assert PILEDRIVER.fma == "fma4"
    assert SANDYBRIDGE.l1d_bytes == 32 * 1024  # paper Table 5
    assert PILEDRIVER.l1d_bytes == 16 * 1024
    assert PILEDRIVER.l2_bytes == 2048 * 1024


def test_doubles_per_vector():
    assert GENERIC_SSE.doubles_per_vector == 2
    assert HASWELL.doubles_per_vector == 4


def test_arch_validation():
    with pytest.raises(ValueError):
        ArchSpec(name="bad", simd="neon")
    with pytest.raises(ValueError):
        ArchSpec(name="bad", simd="sse", vector_bytes=32)
    with pytest.raises(ValueError):
        ArchSpec(name="bad", simd="avx", fma="fma9")


def test_get_arch():
    assert get_arch("haswell") is HASWELL
    with pytest.raises(KeyError):
        get_arch("m68k")
    assert set(ALL_ARCHS) == {"sandybridge", "piledriver", "haswell",
                              "generic_sse"}


def test_detect_host_never_fma4():
    host = detect_host()
    assert host.fma != "fma4"


def test_detect_host_fallback(tmp_path):
    assert detect_host(str(tmp_path / "missing")) is GENERIC_SSE


def test_detect_host_parses_flags(tmp_path):
    p = tmp_path / "cpuinfo"
    p.write_text("processor : 0\nflags : fpu sse2 avx\n")
    assert detect_host(str(p)) is SANDYBRIDGE
    p.write_text("flags : fpu sse2 avx avx2 fma\n")
    assert detect_host(str(p)) is HASWELL


# -- GAS emission ------------------------------------------------------------

def test_emit_items_kinds():
    text = emit_items([
        Label("top"),
        instr("mov", Imm(1), RAX),
        Comment("note"),
        Directive(".align 16"),
    ])
    lines = text.splitlines()
    assert lines[0] == "top:"
    assert lines[1] == "\tmov\t$1, %rax"
    assert lines[2] == "\t# note"
    assert lines[3] == "\t.align 16"


def test_size_suffix_for_imm_to_mem():
    text = emit_items([instr("add", Imm(16), Mem(base=RSP, disp=8))])
    assert "addq\t$16, 8(%rsp)" in text


def test_no_suffix_when_register_present():
    text = emit_items([instr("mov", RAX, Mem(base=RSP))])
    assert "mov\t%rax" in text and "movq" not in text


def test_emit_function_wrapper():
    text = emit_function("my_kernel", [instr("ret")])
    assert ".globl my_kernel" in text
    assert "my_kernel:" in text
    assert '.section .note.GNU-stack' in text
    assert ".size my_kernel" in text
