"""Instruction mapping rule tests — paper Tables 1, 2, 3, 4 row by row."""

import pytest

from repro.isa.arch import GENERIC_SSE, HASWELL, PILEDRIVER, SANDYBRIDGE
from repro.isa.mapping import MappingRules
from repro.isa.operands import Imm, Mem
from repro.isa.registers import GP, xmm

M = Mem(base=GP["rax"], disp=8)
R0, R1, R2, R3 = xmm(0), xmm(1), xmm(2), xmm(3)


def mnems(instrs):
    return [i.mnemonic for i in instrs]


# -- Table 1 line 1: Load ------------------------------------------------------

def test_load_scalar_sse_vs_avx():
    assert mnems(MappingRules(GENERIC_SSE).load_scalar(M, R1)) == ["movsd"]
    assert mnems(MappingRules(SANDYBRIDGE).load_scalar(M, R1)) == ["vmovsd"]


# -- Table 1 lines 2-4: Mul+Add -----------------------------------------------

def test_mul_add_sse_three_instructions():
    out = MappingRules(GENERIC_SSE).mul_add_scalar(R0, R1, R3, tmp=R2)
    assert mnems(out) == ["movapd", "mulsd", "addsd"]  # Mov r1,r2; Mul; Add


def test_mul_add_avx_two_instructions():
    out = MappingRules(SANDYBRIDGE).mul_add_scalar(R0, R1, R3, tmp=R2)
    assert mnems(out) == ["vmulsd", "vaddsd"]


def test_mul_add_fma3_single_instruction():
    out = MappingRules(HASWELL).mul_add_scalar(R0, R1, R3)
    assert mnems(out) == ["vfmadd231sd"]


def test_mul_add_fma4_single_instruction():
    out = MappingRules(PILEDRIVER).mul_add_scalar(R0, R1, R3)
    assert mnems(out) == ["vfmaddsd"]
    assert len(out[0].operands) == 4  # the four-operand AMD form


def test_vmul_add_packed_variants():
    assert mnems(MappingRules(GENERIC_SSE).vmul_add(R0, R1, R3, tmp=R2)) == [
        "movapd", "mulpd", "addpd"]
    assert mnems(MappingRules(SANDYBRIDGE).vmul_add(R0, R1, R3, tmp=R2)) == [
        "vmulpd", "vaddpd"]
    assert mnems(MappingRules(HASWELL).vmul_add(R0, R1, R3)) == ["vfmadd231pd"]
    assert mnems(MappingRules(PILEDRIVER).vmul_add(R0, R1, R3)) == ["vfmaddpd"]


def test_non_fma_requires_temp():
    with pytest.raises(AssertionError):
        MappingRules(GENERIC_SSE).mul_add_scalar(R0, R1, R3)


# -- Table 2: mmSTORE ----------------------------------------------------------

def test_store_scalar():
    assert mnems(MappingRules(GENERIC_SSE).store_scalar(R1, M)) == ["movsd"]
    assert mnems(MappingRules(HASWELL).store_scalar(R1, M)) == ["vmovsd"]


def test_add_scalar_two_vs_three_operand():
    sse = MappingRules(GENERIC_SSE).add_scalar(R1, R2)
    assert mnems(sse) == ["addsd"] and len(sse[0].operands) == 2
    avx = MappingRules(SANDYBRIDGE).add_scalar(R1, R2)
    assert mnems(avx) == ["vaddsd"] and len(avx[0].operands) == 3


# -- Table 4: Vld / Vdup / Shuf ------------------------------------------------

def test_vload_width_follows_arch():
    sse = MappingRules(GENERIC_SSE).vload(M, R1)
    assert sse[0].operands[1].width == 16
    avx = MappingRules(HASWELL).vload(M, R1)
    assert avx[0].operands[1].width == 32


def test_vdup_selection():
    assert mnems(MappingRules(GENERIC_SSE).vdup(M, R1)) == ["movddup"]
    assert mnems(MappingRules(SANDYBRIDGE).vdup(M, R1)) == ["vbroadcastsd"]
    narrow = MappingRules(
        SANDYBRIDGE.__class__(name="avx128", simd="avx", vector_bytes=16))
    assert mnems(narrow.vdup(M, R1)) == ["vmovddup"]


def test_shuf_swap_adjacent():
    sse = MappingRules(GENERIC_SSE).shuf_swap_adjacent(R1, R1)
    assert mnems(sse) == ["shufpd"]
    assert sse[0].operands[0] == Imm(1)
    avx = MappingRules(HASWELL).shuf_swap_adjacent(R1, R2)
    assert mnems(avx) == ["vpermilpd"]
    assert avx[0].operands[0] == Imm(5)  # swap within both 128-bit lanes


def test_shuf_swap_lanes_avx_only():
    out = MappingRules(HASWELL).shuf_swap_lanes(R1, R2)
    assert mnems(out) == ["vperm2f128"]
    with pytest.raises(ValueError):
        MappingRules(GENERIC_SSE).shuf_swap_lanes(R1, R2)


def test_shufpd_combine_sse_copies_when_needed():
    out = MappingRules(GENERIC_SSE).shufpd_combine(2, R1, R2, R3)
    assert mnems(out) == ["movapd", "shufpd"]
    out2 = MappingRules(GENERIC_SSE).shufpd_combine(2, R3, R2, R3)
    assert mnems(out2) == ["shufpd"]  # dst aliases first source


def test_zero_idioms():
    assert mnems(MappingRules(GENERIC_SSE).vzero(R1)) == ["xorpd"]
    assert mnems(MappingRules(HASWELL).vzero(R1)) == ["vxorpd"]


def test_hreduce_shapes():
    sse = MappingRules(GENERIC_SSE).hreduce_to_scalar(R1, R2)
    assert mnems(sse) == ["movapd", "unpckhpd", "addsd"]
    avx = MappingRules(HASWELL).hreduce_to_scalar(R1, R2)
    assert mnems(avx) == ["vextractf128", "vaddpd", "vunpckhpd", "vaddsd"]


def test_vmul_into_sse_avoids_self_copy():
    out = MappingRules(GENERIC_SSE).vmul_into(R1, R2, R1)
    assert mnems(out) == ["mulpd"]
    out2 = MappingRules(GENERIC_SSE).vmul_into(R1, R2, R3)
    assert mnems(out2) == ["movapd", "mulpd"]
