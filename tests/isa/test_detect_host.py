"""Host detection: cpuinfo parsing, $REPRO_FORCE_ARCH, and the memo."""

import pytest

from repro.isa import arch as arch_mod
from repro.isa.arch import (
    ALL_ARCHS,
    FORCE_ARCH_ENV,
    GENERIC_SSE,
    HASWELL,
    SANDYBRIDGE,
    detect_host,
    forced_arch_name,
    reset_host_cache,
)


@pytest.fixture(autouse=True)
def _clean_detection(monkeypatch):
    monkeypatch.delenv(FORCE_ARCH_ENV, raising=False)
    reset_host_cache()
    yield
    reset_host_cache()


def _cpuinfo(tmp_path, text):
    path = tmp_path / "cpuinfo"
    path.write_text(text)
    return str(path)


def test_avx2_fma_flags_select_haswell(tmp_path):
    path = _cpuinfo(tmp_path, "processor : 0\nflags : fpu sse2 avx avx2 fma\n")
    assert detect_host(path) is HASWELL


def test_avx_without_fma_selects_sandybridge(tmp_path):
    path = _cpuinfo(tmp_path, "flags : fpu sse2 avx\n")
    assert detect_host(path) is SANDYBRIDGE


def test_no_flags_line_falls_back_to_sse(tmp_path):
    path = _cpuinfo(tmp_path, "processor : 0\nmodel name : mystery\n")
    assert detect_host(path) is GENERIC_SSE


def test_empty_cpuinfo_falls_back_to_sse(tmp_path):
    assert detect_host(_cpuinfo(tmp_path, "")) is GENERIC_SSE


def test_missing_cpuinfo_falls_back_to_sse(tmp_path):
    assert detect_host(str(tmp_path / "does-not-exist")) is GENERIC_SSE


def test_avx2_without_fma_is_not_haswell(tmp_path):
    # avx2 alone must not select the FMA tier (fma flag is required)
    path = _cpuinfo(tmp_path, "flags : sse2 avx avx2\n")
    assert detect_host(path) is SANDYBRIDGE


def test_explicit_path_is_never_cached(tmp_path):
    path = _cpuinfo(tmp_path, "flags : sse2 avx\n")
    assert detect_host(path) is SANDYBRIDGE
    (tmp_path / "cpuinfo").write_text("flags : sse2 avx avx2 fma\n")
    assert detect_host(path) is HASWELL


def test_default_path_is_memoized():
    arch_mod._HOST_CACHE[arch_mod._DEFAULT_CPUINFO] = SANDYBRIDGE
    assert detect_host() is SANDYBRIDGE
    reset_host_cache()
    fresh = detect_host()
    assert fresh in ALL_ARCHS.values()
    # the re-detection result is memoized for the next call
    assert arch_mod._HOST_CACHE.get(arch_mod._DEFAULT_CPUINFO) is fresh


# -- $REPRO_FORCE_ARCH -----------------------------------------------------

def test_force_arch_overrides_cpuinfo(tmp_path, monkeypatch):
    monkeypatch.setenv(FORCE_ARCH_ENV, "haswell")
    path = _cpuinfo(tmp_path, "flags : sse2\n")  # would detect GENERIC_SSE
    assert detect_host(path) is HASWELL
    assert detect_host() is HASWELL
    assert forced_arch_name() == "haswell"


def test_force_arch_is_case_insensitive(monkeypatch):
    monkeypatch.setenv(FORCE_ARCH_ENV, "  Piledriver ")
    assert forced_arch_name() == "piledriver"
    assert detect_host() is ALL_ARCHS["piledriver"]


@pytest.mark.parametrize("off", ["", "0", "off", "none", "auto"])
def test_force_arch_off_values_mean_no_override(monkeypatch, off):
    monkeypatch.setenv(FORCE_ARCH_ENV, off)
    assert forced_arch_name() is None


def test_force_arch_reference_maps_to_sse_spec(monkeypatch):
    # the dispatch layer pins the chain; detect_host still needs a spec
    monkeypatch.setenv(FORCE_ARCH_ENV, "reference")
    assert forced_arch_name() == "reference"
    assert detect_host() is GENERIC_SSE


def test_force_arch_unknown_value_raises_with_choices(monkeypatch):
    monkeypatch.setenv(FORCE_ARCH_ENV, "itanium")
    with pytest.raises(KeyError, match="reference"):
        forced_arch_name()
    with pytest.raises(KeyError, match="itanium"):
        detect_host()
