"""Register-file and ABI tests."""

import pytest

from repro.isa.registers import (
    ALLOCATABLE_GP,
    GP,
    RSP,
    SCRATCH_GP,
    Register,
    SysVABI,
    vec,
    xmm,
    ymm,
)


def test_register_str_att_syntax():
    assert str(GP["rax"]) == "%rax"
    assert str(xmm(3)) == "%xmm3"


def test_vector_index_shared_between_widths():
    assert xmm(5).index == 5
    assert ymm(5).index == 5
    assert xmm(5).as_width(32) == ymm(5)
    assert ymm(7).xmm == xmm(7)


def test_as_width_rejects_gp():
    with pytest.raises(ValueError):
        GP["rax"].as_width(32)


def test_vec_constructor():
    assert vec(2, 16) == xmm(2)
    assert vec(2, 32) == ymm(2)
    with pytest.raises(ValueError):
        vec(2, 64)


def test_allocatable_excludes_scratch_and_rsp():
    names = {r.name for r in ALLOCATABLE_GP}
    assert "rsp" not in names and "rax" not in names and "r11" not in names
    assert len(ALLOCATABLE_GP) == 13


def test_scratch_registers():
    assert {r.name for r in SCRATCH_GP} == {"rax", "r11"}


def test_callee_saved_classification():
    assert SysVABI.is_callee_saved(GP["rbx"])
    assert SysVABI.is_callee_saved(GP["r12"])
    assert not SysVABI.is_callee_saved(GP["rdi"])
    assert not SysVABI.is_callee_saved(xmm(0))


def test_classify_args_int_order():
    locs = SysVABI.classify_args(["int"] * 6)
    assert [r.name for r in locs] == ["rdi", "rsi", "rdx", "rcx", "r8", "r9"]


def test_classify_args_mixed():
    locs = SysVABI.classify_args(["int", "float", "int"])
    assert locs[0].name == "rdi"
    assert locs[1] == xmm(0)
    assert locs[2].name == "rsi"


def test_classify_args_seventh_int_on_stack():
    locs = SysVABI.classify_args(["int"] * 8)
    assert locs[6] == 8 and locs[7] == 16  # entry-rsp relative offsets


def test_classify_args_float_overflow_to_stack():
    locs = SysVABI.classify_args(["float"] * 9)
    assert locs[8] == 8
