"""Persistent kernel-cache tests: two-level lookup, atomicity, recovery,
stats accounting, and cross-process reuse."""

import ctypes
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.backend import compiler
from repro.backend.cache import CacheStats, cache_root, get_cache, reset_cache
from repro.backend.compiler import build_shared, reset_so_cache

from tests.conftest import needs_cc

pytestmark = needs_cc

SRC = {"f.c": "long forty_one(void) { return 41; }"}


@pytest.fixture
def store(tmp_path, monkeypatch):
    """A fresh persistent store in tmp_path, torn down to hermetic mode."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    reset_cache()
    reset_so_cache()
    yield tmp_path / "store"
    reset_cache()
    reset_so_cache()


def _call41(so) -> int:
    fn = so.symbol("forty_one")
    fn.restype = ctypes.c_long
    return fn()


def test_cache_root_disabled_values(monkeypatch):
    for value in ("off", "OFF", "none", "0", "disabled"):
        monkeypatch.setenv("REPRO_CACHE_DIR", value)
        assert cache_root() is None
    monkeypatch.setenv("REPRO_CACHE_DIR", "/some/where")
    assert cache_root() == Path("/some/where")


def test_disabled_store_builds_in_scratch(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "off")
    reset_cache()
    reset_so_cache()
    try:
        so = build_shared(SRC, tag="nocache")
        assert _call41(so) == 41
        cache = get_cache()
        assert not cache.enabled
        assert cache.lookup_so("deadbeef") is None
        assert cache.stats.misses == 1 and cache.stats.puts == 0
    finally:
        reset_cache()
        reset_so_cache()


def test_unusable_store_degrades_to_scratch_build(tmp_path, monkeypatch):
    # $REPRO_CACHE_DIR nested under a regular file: every store operation
    # raises NotADirectoryError. Builds must still succeed, unpublished.
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "store"))
    reset_cache()
    reset_so_cache()
    try:
        so = build_shared(SRC, tag="degrade")
        assert _call41(so) == 41
        cache = get_cache()
        assert cache.enabled  # configured on, just broken
        assert cache.stats.puts == 0 and cache.stats.errors >= 1
        # tuning persistence degrades the same way instead of raising
        cache.store_tuning("ab" * 12, {"gflops": 1.0})
        assert cache.load_tuning("ab" * 12) is None
    finally:
        reset_cache()
        reset_so_cache()


def test_cold_miss_then_disk_and_mem_hits(store):
    so1 = build_shared(SRC, tag="roundtrip")
    assert _call41(so1) == 41
    stats = get_cache().stats
    assert (stats.misses, stats.puts, stats.hits) == (1, 1, 0)
    # the entry landed in the content-addressed layout, fully published
    metas = list(store.glob("objects/*/*/meta.json"))
    assert len(metas) == 1
    meta = json.loads(metas[0].read_text())
    assert meta["tag"] == "roundtrip" and (metas[0].parent / meta["so"]).exists()

    # same process, same content: in-memory hit, same handle
    so2 = build_shared(SRC, tag="roundtrip")
    assert so2 is so1
    assert get_cache().stats.mem_hits == 1

    # simulated fresh process: disk hit, no toolchain
    reset_so_cache()
    before = get_cache().stats.toolchain_invocations
    so3 = build_shared(SRC, tag="roundtrip")
    assert _call41(so3) == 41
    assert get_cache().stats.disk_hits == 1
    assert get_cache().stats.toolchain_invocations == before


def test_corrupted_entry_triggers_rebuild_not_crash(store):
    build_shared(SRC, tag="corrupt")
    so_path = next(store.glob("objects/*/*/libcorrupt.so"))
    # unlink before writing: the live CDLL mapping is backed by this very
    # inode, and truncating a mapped file SIGBUSes the process at _dl_fini
    so_path.unlink()
    so_path.write_bytes(b"\x7fELFgarbage")  # wrong size AND not loadable
    reset_so_cache()
    so = build_shared(SRC, tag="corrupt")
    assert _call41(so) == 41
    stats = get_cache().stats
    assert stats.errors >= 1 and stats.evictions >= 1
    assert stats.misses == 2  # cold build + rebuild after eviction


def test_truncated_meta_triggers_rebuild(store):
    build_shared(SRC, tag="badmeta")
    meta = next(store.glob("objects/*/*/meta.json"))
    meta.write_text('{"version": 1, "so":')  # truncated JSON
    reset_so_cache()
    assert _call41(build_shared(SRC, tag="badmeta")) == 41
    assert get_cache().stats.errors >= 1


def test_key_covers_flags_and_sources(store):
    build_shared(SRC, tag="a")
    build_shared(SRC, extra_flags=("-DX=1",), tag="a")
    build_shared({"f.c": "long forty_one(void) { return 40+1; }"}, tag="a")
    assert get_cache().stats.misses == 3
    assert len(list(store.glob("objects/*/*/meta.json"))) == 3


def test_force_rebuild_evicts(store):
    build_shared(SRC, tag="forced")
    so = build_shared(SRC, tag="forced", force=True)
    assert _call41(so) == 41
    stats = get_cache().stats
    assert stats.misses == 2 and stats.evictions == 1


def test_stats_counters_match_observed_traffic(store):
    # 2 distinct cold builds, 1 mem hit, 1 disk hit
    build_shared(SRC, tag="s1")
    build_shared({"g.c": "int g(void){return 0;}"}, tag="s2")
    build_shared(SRC, tag="s1")
    reset_so_cache()
    build_shared(SRC, tag="s1")
    stats = get_cache().stats
    assert stats.misses == 2
    assert stats.mem_hits == 1 and stats.disk_hits == 1
    assert stats.hits == 2
    assert stats.puts == 2
    assert stats.toolchain_invocations == 4  # 2 builds x (compile + link)
    assert stats.build_seconds > 0


def test_cumulative_stats_persist_across_resets(store):
    build_shared(SRC, tag="cum")
    reset_cache()  # flushes this process's counters to stats.json
    totals = get_cache().cumulative_stats()
    assert totals.misses >= 1 and totals.puts >= 1


def test_tuning_record_roundtrip_and_corruption(store):
    cache = get_cache()
    cache.store_tuning("k" * 24, {"gflops": 3.5})
    assert cache.load_tuning("k" * 24)["gflops"] == 3.5
    assert cache.stats.tuning_puts == 1 and cache.stats.tuning_hits == 1
    assert cache.load_tuning("m" * 24) is None
    # corrupted record is evicted, not fatal
    path = next(store.glob("tuning/*/*.json"))
    path.write_text("{not json")
    assert cache.load_tuning("k" * 24) is None
    assert cache.stats.errors == 1
    assert not path.exists()


def test_quarantine_roundtrip_and_clear(store):
    cache = get_cache()
    key = "q" * 24
    assert cache.load_quarantine(key) is None
    cache.store_quarantine(key, {"candidate": "u(i)=4", "error": "SIGSEGV",
                                 "category": "crashed"})
    assert cache.stats.quarantine_puts == 1
    rec = cache.load_quarantine(key)
    assert rec["error"] == "SIGSEGV"
    assert cache.stats.quarantine_hits == 1
    assert cache.inventory()["quarantined"] == 1
    # corrupt record fails closed: evicted, not served
    cache._quarantine_path(key).write_text("{nope")
    assert cache.load_quarantine(key) is None
    assert cache.load_quarantine(key) is None  # really gone
    cache.store_quarantine(key, {"error": "SIGILL"})
    assert cache.clear() >= 1
    assert cache.load_quarantine(key) is None
    assert cache.inventory()["quarantined"] == 0


def test_quarantine_noop_when_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "off")
    reset_cache()
    try:
        cache = get_cache()
        cache.store_quarantine("k" * 24, {"error": "x"})
        assert cache.load_quarantine("k" * 24) is None
        assert cache.stats.quarantine_puts == 0
    finally:
        reset_cache()


def test_clear_empties_store(store):
    build_shared(SRC, tag="clr")
    cache = get_cache()
    cache.store_tuning("c" * 24, {"gflops": 1.0})
    removed = cache.clear()
    assert removed == 2
    assert cache.inventory()["entries"] == 0
    assert cache.inventory()["tuning_records"] == 0


def test_merge_ignores_unknown_keys():
    stats = CacheStats()
    stats.merge({"misses": 2, "no_such_counter": 9, "root": "/x"})
    assert stats.misses == 2


_CHILD = r"""
import sys
from repro.backend.compiler import build_shared
from repro.backend.cache import get_cache
build_shared({"f.c": "long forty_one(void) { return 41; }"}, tag="xproc")
print("TOOLCHAIN", get_cache().stats.toolchain_invocations)
"""


def test_warm_hit_across_processes(store, tmp_path):
    """Cold miss in process 1; process 2 must invoke no toolchain at all."""
    env = {"REPRO_CACHE_DIR": str(store), "PYTHONPATH": str(
        Path(__file__).resolve().parents[2] / "src"), "PATH": "/usr/bin:/bin",
        "HOME": str(tmp_path)}
    counts = []
    for _ in range(2):
        proc = subprocess.run([sys.executable, "-c", _CHILD],
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        counts.append(int(proc.stdout.split()[-1]))
    assert counts[0] > 0   # cold: compile + link
    assert counts[1] == 0  # warm: served entirely from the store
