"""Fault-isolation tests: sandboxed trials, fault plans, toolchain retry."""

import os
import signal
import time

import pytest

from repro.backend import faults
from repro.backend.faults import (
    FaultPlan,
    FaultPlanError,
    inject_asm_fault,
    take_fault,
)
from repro.backend.sandbox import (
    SandboxResult,
    fork_supported,
    resolve_isolation,
    run_sandboxed,
    run_trial,
)

from tests.conftest import needs_cc

needs_fork = pytest.mark.skipif(not fork_supported(),
                                reason="os.fork unavailable")


@pytest.fixture(autouse=True)
def _no_leftover_fault_plan():
    faults.clear_fault_plan()
    yield
    faults.clear_fault_plan()


# -- sandbox core -------------------------------------------------------------

@needs_fork
def test_sandbox_returns_value():
    res = run_sandboxed(lambda: {"gflops": 3.5}, timeout=10, tag="t")
    assert res.ok and res.category == "ok"
    assert res.value == {"gflops": 3.5}


@needs_fork
def test_sandbox_converts_exception_to_failed():
    def boom():
        raise RuntimeError("validation failed")

    res = run_sandboxed(boom, timeout=10, tag="t")
    assert res.category == "failed"
    assert res.error == "RuntimeError: validation failed"


@needs_fork
def test_sandbox_survives_fatal_signal():
    def die():
        os.kill(os.getpid(), signal.SIGSEGV)

    res = run_sandboxed(die, timeout=10, tag="victim")
    assert res.category == "crashed"
    assert "SIGSEGV" in res.error and "victim" in res.error


@needs_fork
def test_sandbox_kills_hung_worker():
    t0 = time.monotonic()
    res = run_sandboxed(lambda: time.sleep(60), timeout=0.3, tag="sleepy")
    assert time.monotonic() - t0 < 10
    assert res.category == "timeout"
    assert "sleepy" in res.error


@needs_fork
def test_sandbox_detects_silent_worker_death():
    res = run_sandboxed(lambda: os._exit(3), timeout=10, tag="quitter")
    assert res.category == "crashed"
    assert "without a result" in res.error


def test_run_trial_inline_mode_catches_exceptions():
    res = run_trial(lambda: 1 / 0, isolation="none")
    assert res.category == "failed"
    assert res.error.startswith("ZeroDivisionError")
    assert run_trial(lambda: 7, isolation="none").value == 7


def test_resolve_isolation():
    assert resolve_isolation(None) in ("fork", "none")
    assert resolve_isolation("auto") == resolve_isolation(None)
    assert resolve_isolation("none") == "none"
    with pytest.raises(ValueError):
        resolve_isolation("docker")


# -- fault plans --------------------------------------------------------------

def test_fault_plan_parsing_and_matching():
    plan = FaultPlan.parse("segv@#0; hang@slow_kernel, toolchain@asmtag:2")
    assert plan.take("asm", tag="anything", index=0) == "segv"
    assert plan.take("asm", tag="anything", index=3) is None
    assert plan.take("asm", tag="my_slow_kernel_v2") == "hang"
    # counted spec disarms after two shots
    assert plan.take("toolchain", tag="asmtag") == "toolchain"
    assert plan.take("toolchain", tag="asmtag") == "toolchain"
    assert plan.take("toolchain", tag="asmtag") is None
    # stages never cross
    assert plan.take("toolchain", tag="slow_kernel") is None


@pytest.mark.parametrize("bad", ["segv", "explode@x", "segv@#x",
                                 "segv@", "hang@x:0", "hang@x:lots"])
def test_fault_plan_rejects_malformed_specs(bad):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse(bad)


def test_env_fault_plan_tracks_variable(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    assert take_fault("asm", tag="k") is None
    monkeypatch.setenv("REPRO_FAULT_INJECT", "wrong@k")
    assert take_fault("asm", tag="k") == "wrong"
    monkeypatch.setenv("REPRO_FAULT_INJECT", "")
    assert take_fault("asm", tag="k") is None


def test_installed_plan_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_INJECT", "segv@k")
    faults.install_fault_plan(FaultPlan.parse("hang@k"))
    assert take_fault("asm", tag="k") == "hang"
    faults.install_fault_plan(None)
    assert take_fault("asm", tag="k") == "segv"


def test_inject_asm_fault_rewrites_entry():
    asm = "\t.text\nmy_kernel:\n\tret\n"
    out = inject_asm_fault("ill", asm, "my_kernel")
    lines = out.splitlines()
    assert lines[lines.index("my_kernel:") + 1].lstrip().startswith("ud2")
    with pytest.raises(FaultPlanError):
        inject_asm_fault("ill", asm, "other_symbol")
    with pytest.raises(FaultPlanError):
        inject_asm_fault("nuke", asm, "my_kernel")


# -- injected faults against a real generated kernel --------------------------

@needs_cc
@needs_fork
@pytest.mark.parametrize("kind,category,fragment", [
    ("segv", "crashed", "SIGSEGV"),
    ("ill", "crashed", "SIGILL"),
    ("hang", "timeout", "timeout"),
])
def test_injected_fault_is_contained_by_sandbox(kind, category, fragment):
    """A genuinely crashing/hanging native kernel must not kill us."""
    import numpy as np

    from repro.backend.runner import load_kernel
    from repro.core.framework import Augem
    from repro.isa.arch import detect_host

    gk = Augem(arch=detect_host()).generate_named(
        "axpy", name=f"t_fault_{kind}")
    from dataclasses import replace
    gk = replace(gk, asm_text=inject_asm_fault(kind, gk.asm_text, gk.name))
    native = load_kernel("axpy", gk)
    x = np.ones(64)
    y = np.ones(64)
    res = run_sandboxed(lambda: native(64, 1.5, x, y), timeout=1.0,
                        tag=gk.name)
    assert res.category == category
    assert fragment in res.error


# -- toolchain fault tolerance ------------------------------------------------

@needs_cc
def test_toolchain_transient_fault_retries_and_succeeds():
    from repro.backend.cache import get_cache
    from repro.backend.compiler import build_shared

    faults.install_fault_plan(FaultPlan.parse("toolchain@transient_tag:2"))
    before = get_cache().stats.toolchain_retries
    so = build_shared({"t.c": "long t_transient(void) { return 9; }"},
                      tag="transient_tag")
    assert so.path.exists()
    assert get_cache().stats.toolchain_retries - before >= 2


@needs_cc
def test_toolchain_permanent_fault_fails_with_attempt_count():
    from repro.backend.compiler import ToolchainError, build_shared

    faults.install_fault_plan(FaultPlan.parse("toolchain@permanent_tag"))
    with pytest.raises(ToolchainError) as exc:
        build_shared({"p.c": "long t_permanent(void) { return 9; }"},
                     tag="permanent_tag")
    assert "attempts" in str(exc.value)
    assert "injected" in str(exc.value)


def test_toolchain_unavailable_degrades_cleanly(monkeypatch):
    import shutil

    from repro.backend import compiler

    monkeypatch.delenv("CC", raising=False)
    monkeypatch.setattr(shutil, "which", lambda *a, **k: None)
    with pytest.raises(compiler.ToolchainUnavailable):
        compiler.find_cc()
    # the skip-marker predicate sees the same condition, not a crash
    assert compiler.have_native_toolchain() is False
    # and it is still a ToolchainError for callers catching broadly
    assert issubclass(compiler.ToolchainUnavailable, compiler.ToolchainError)
