"""Native backend tests: toolchain, runners, baselines, timer."""

import ctypes

import numpy as np
import pytest

from repro.backend.baselines import baseline_native, baseline_o2
from repro.backend.compiler import (
    ToolchainError,
    assemble_kernel,
    build_shared,
    find_cc,
)
from repro.backend.runner import load_kernel
from repro.backend.timer import measure
from repro.core.framework import Augem
from repro.isa.arch import detect_host

from tests.conftest import needs_cc

pytestmark = needs_cc


def test_find_cc():
    assert find_cc()


def test_build_shared_compiles_and_loads():
    so = build_shared({"f.c": "long forty_two(void) { return 42; }"},
                      tag="t42")
    fn = so.symbol("forty_two")
    fn.restype = ctypes.c_long
    assert fn() == 42


def test_build_shared_cached_by_content():
    src = {"g.c": "long g(void) { return 7; }"}
    so1 = build_shared(src, tag="cache")
    so2 = build_shared(src, tag="cache")
    assert so1 is so2


def test_build_shared_reports_errors():
    with pytest.raises(ToolchainError) as exc:
        build_shared({"bad.c": "this is not C"}, tag="bad")
    assert "bad.c" in str(exc.value) or "error" in str(exc.value).lower()


def test_assemble_generated_kernel():
    gk = Augem(arch=detect_host()).generate_named("dot", name="t_dot_asm")
    so = assemble_kernel(gk.asm_text, tag="t_dot_asm")
    assert so.symbol("t_dot_asm")


def test_runner_signatures(rng):
    host = detect_host()
    aug = Augem(arch=host)
    k = load_kernel("dot", aug.generate_named("dot", name="t_dot_sig"))
    x = rng.standard_normal(32)
    y = rng.standard_normal(32)
    assert np.isclose(k(32, x, y), x @ y)


# -- baselines ----------------------------------------------------------------

def test_naive_dgemm_matches_numpy(rng):
    lib = baseline_o2()
    a = rng.standard_normal((9, 7))
    b = rng.standard_normal((7, 5))
    c = np.zeros((9, 5))
    lib.naive_dgemm(a, b, c)
    assert np.allclose(c, a @ b)


def test_blocked_dgemm_matches_numpy(rng):
    lib = baseline_native()
    a = rng.standard_normal((70, 300))
    b = rng.standard_normal((300, 65))
    c = np.zeros((70, 65))
    lib.blocked_dgemm(a, b, c)
    assert np.allclose(c, a @ b)


def test_baseline_vector_routines(rng):
    lib = baseline_o2()
    x = rng.standard_normal(101)
    y = rng.standard_normal(101)
    y2 = y.copy()
    lib.daxpy(1.5, x, y2)
    assert np.allclose(y2, y + 1.5 * x)
    assert np.isclose(lib.ddot(x, y), x @ y)
    a = rng.standard_normal((11, 13))
    out = np.zeros(13)
    lib.dgemv_t(a, rng.standard_normal(11), out)  # smoke: no crash
    assert out.shape == (13,)


def test_triangular_diag_routines(rng):
    lib = baseline_o2()
    nb, ncols = 12, 7
    l = np.tril(rng.standard_normal((nb, nb))) + 3 * np.eye(nb)
    b = np.ascontiguousarray(rng.standard_normal((nb, ncols)))
    ref = l @ b
    work = b.copy()
    lib.trmm_diag(np.ascontiguousarray(l), work, ncols)
    assert np.allclose(work, ref)
    work2 = ref.copy()
    lib.trsm_diag(np.ascontiguousarray(l), work2, ncols)
    assert np.allclose(work2, b)


# -- timer ----------------------------------------------------------------------

def test_measure_returns_sane_values():
    calls = []
    m = measure(lambda: calls.append(1), batches=3, calls_per_batch=10)
    assert m.best > 0
    assert m.best <= m.median <= m.worst
    assert len(calls) >= 31  # warmup + 3 batches of 10


def test_measure_autosizes_batch():
    m = measure(lambda: None, batches=2, target_batch_seconds=0.001)
    assert m.calls_per_batch >= 1
    assert m.mflops(1e6) > 0


def test_measure_rejects_degenerate_parameters():
    for kwargs in ({"batches": 0}, {"batches": -3},
                   {"batches": 2, "calls_per_batch": 0},
                   {"batches": 2, "warmup": -1}):
        with pytest.raises(ValueError):
            measure(lambda: None, **kwargs)


def test_measure_runs_warmup_before_timing():
    calls = []
    measure(lambda: calls.append(1), batches=1, calls_per_batch=1, warmup=3)
    assert len(calls) == 4  # 3 warmup + 1 timed


def test_runner_rejects_wrong_dtype_and_strides(rng):
    from repro.backend.runner import _ptr

    with pytest.raises(TypeError):
        _ptr(np.zeros(4, dtype=np.float32))
    with pytest.raises(ValueError):
        _ptr(np.zeros((4, 4))[:, 0])  # strided view
    assert _ptr(np.zeros(4)) is not None
