"""Store-wide scrub tests: clean stores verify with zero false positives,
every corruption class is found, repair evicts deterministically."""

import copy
import json
import os
import time
from pathlib import Path

import pytest

from repro.backend import fsio
from repro.backend.cache import get_cache, reset_cache
from repro.backend.faults import clear_fault_plan
from repro.backend.scrub import EXIT_CORRUPT, render_verdict, scrub_store
from repro.blas.dispatch import VERDICT_STORE_VERSION
from repro.tuning.session import TrialRecord, TuningSession

KEYS = ["aa" * 12, "bb" * 12, "cc" * 12]


@pytest.fixture
def store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    reset_cache()
    fsio.reset_disk_health()
    clear_fault_plan()
    yield tmp_path / "store"
    reset_cache()
    fsio.reset_disk_health()
    clear_fault_plan()


def publish_fake(cache, key, payload=b"\x7fELF not a real object"):
    """Publish a fake entry; scrub/lookup never dlopen, so any bytes do."""
    work = cache._scratch()
    (work / "k.so").write_bytes(payload)
    path = cache.publish_so(key, work, "k.so", meta={"tag": "fake"})
    assert path is not None
    return path


def seed_store(root):
    """A store exercising every artifact class the scrub walks."""
    cache = get_cache()
    for key in KEYS:
        publish_fake(cache, key, payload=bytes.fromhex(key) * 40)
    cache.store_tuning("dd" * 12, {"gflops": 2.5})
    cache.store_quarantine("ee" * 12, {"category": "segv"})
    session = TuningSession.create(
        root / "sessions", "axpy", "ff" * 12, "c", "generic_sse", 3,
        ["cand0", "cand1"], "k" * 24)
    session.record_trial(TrialRecord(index=0, candidate="cand0", gflops=1.0))
    session.finish("complete", winner="cand0")
    (root / "serve_verdicts.json").write_text(json.dumps(
        {"version": VERDICT_STORE_VERSION, "toolchain": "none",
         "verdicts": {}}))
    (root / "stats.json").write_text(json.dumps({"puts": len(KEYS)}))
    return cache


def test_clean_store_scrubs_clean(store):
    cache = seed_store(store)
    verdict = scrub_store(cache)
    assert verdict["ok"]
    assert verdict["corrupt"] == 0 and verdict["problems"] == []
    assert verdict["checked"] == {"objects": 3, "tuning": 1,
                                  "quarantine": 1, "sessions": 1,
                                  "verdicts": 1, "stats": 1}
    assert "store is clean" in render_verdict(verdict)


def test_torn_final_journal_line_is_not_flagged(store):
    """Replay tolerates a torn last journal line by design — flagging it
    would be a false positive on a store that is operationally clean."""
    cache = seed_store(store)
    sdir = next(p for p in (store / "sessions").iterdir() if p.is_dir())
    with open(sdir / "journal.jsonl", "a", encoding="utf-8") as fh:
        fh.write('{"i":1,"candidate":"cand1","gfl')  # no newline
    verdict = scrub_store(cache)
    assert verdict["ok"] and verdict["corrupt"] == 0


def _corrupt_everything(store):
    """One instance of every corruption class the scrub must catch."""
    # entry 0: unparseable meta
    (store / "objects" / KEYS[0][:2] / KEYS[0] / "meta.json").write_text(
        "{torn")
    # entry 1: truncated shared object
    so1 = store / "objects" / KEYS[1][:2] / KEYS[1] / "k.so"
    so1.write_bytes(so1.read_bytes()[:-5])
    # entry 2: silent bit-rot (same size, digest mismatch)
    so2 = store / "objects" / KEYS[2][:2] / KEYS[2] / "k.so"
    rotten = bytearray(so2.read_bytes())
    rotten[len(rotten) // 2] ^= 0x01
    so2.write_bytes(bytes(rotten))
    # tuning / quarantine records that no longer parse
    (store / "tuning" / "dd" / (("dd" * 12) + ".json")).write_text("[1,")
    (store / "quarantine" / "ee" / (("ee" * 12) + ".json")).write_text("x")
    # session with an unreadable manifest
    sdir = next(p for p in (store / "sessions").iterdir() if p.is_dir())
    (sdir / "manifest.json").write_text("not json")
    # torn verdict store and stats ledger
    (store / "serve_verdicts.json").write_text('{"version":')
    (store / "stats.json").write_text("")
    # abandoned publish scratch
    leftover = store / "tmp" / "publish-killed"
    leftover.mkdir(parents=True)
    (leftover / "partial.so").write_bytes(b"\x00" * 64)
    past = time.time() - 10.0
    os.utime(leftover, (past, past))


def test_scrub_finds_every_corruption_class(store):
    cache = seed_store(store)
    _corrupt_everything(store)
    verdict = scrub_store(cache, tmp_age=0.0)
    assert not verdict["ok"]
    kinds = sorted(p["kind"] for p in verdict["problems"])
    assert kinds == sorted(["object", "object", "object", "tuning",
                            "quarantine", "session", "verdicts", "stats",
                            "stray"])
    assert all(p["action"] == "kept" for p in verdict["problems"])
    errors = [p["error"] for p in verdict["problems"]]
    assert any("digest mismatch" in e for e in errors)  # silent bit-rot
    assert any("truncated" in e for e in errors)
    # report-only mode touched nothing
    assert (store / "tmp" / "publish-killed").exists()
    assert (store / "serve_verdicts.json").exists()


def test_scrub_is_deterministic(store):
    cache = seed_store(store)
    _corrupt_everything(store)
    first = scrub_store(cache, tmp_age=0.0)
    second = scrub_store(cache, tmp_age=0.0)
    assert first == second


def test_repair_evicts_and_second_scrub_is_clean(store):
    cache = seed_store(store)
    _corrupt_everything(store)
    verdict = scrub_store(cache, repair=True, tmp_age=0.0)
    assert verdict["corrupt"] == 9
    assert verdict["repaired"] == 9
    assert verdict["ok"]  # nothing *unrepaired* remains
    # every corrupt artifact is gone; the store reads as never-published
    for key in KEYS:
        assert cache.lookup_so(key) is None
    assert cache.load_tuning("dd" * 12) is None
    assert not (store / "serve_verdicts.json").exists()
    assert not (store / "tmp" / "publish-killed").exists()
    again = scrub_store(cache, tmp_age=0.0)
    assert again["ok"] and again["corrupt"] == 0


def test_repair_keeps_healthy_entries(store):
    cache = seed_store(store)
    # corrupt only one of the three entries
    (store / "objects" / KEYS[0][:2] / KEYS[0] / "meta.json").write_text("x")
    verdict = scrub_store(cache, repair=True)
    assert verdict["corrupt"] == 1 and verdict["repaired"] == 1
    assert cache.lookup_so(KEYS[0]) is None
    assert cache.lookup_so(KEYS[1]) is not None
    assert cache.lookup_so(KEYS[2]) is not None


def test_meta_missing_digest_is_flagged(store):
    """A current-version entry without a well-formed digest is rot: the
    publish path always records one, so its absence means the meta itself
    was corrupted (e.g. a bit flip landing in the key name)."""
    cache = seed_store(store)
    meta_path = store / "objects" / KEYS[0][:2] / KEYS[0] / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["so_shq256"] = meta.pop("so_sha256")  # one-bit flip: a -> q
    meta_path.write_text(json.dumps(meta))
    verdict = scrub_store(cache)
    assert verdict["corrupt"] == 1
    assert "digest field invalid" in verdict["problems"][0]["error"]


def test_injected_bitrot_is_caught_by_scrub(store):
    """End to end: a bitrot fault during publish lands in the durable
    meta payload, and the next scrub flags the entry."""
    from repro.backend.faults import FaultPlan, install_fault_plan

    cache = get_cache()
    install_fault_plan(FaultPlan.parse("bitrot@cache.meta:1"))
    publish_fake(cache, KEYS[0])
    clear_fault_plan()
    verdict = scrub_store(cache)
    assert not verdict["ok"]
    assert verdict["problems"][0]["kind"] == "object"
    # and repairing restores a store that verifies clean
    scrub_store(cache, repair=True)
    assert scrub_store(cache)["ok"]


def test_fresh_scratch_is_not_flagged(store):
    """A live publisher's scratch dir (younger than tmp_age) is not rot."""
    cache = seed_store(store)
    live = store / "tmp" / "in-flight"
    live.mkdir(parents=True)
    verdict = scrub_store(cache, tmp_age=3600.0)
    assert verdict["ok"] and verdict["corrupt"] == 0


def test_disabled_store_scrubs_trivially(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "off")
    reset_cache()
    try:
        verdict = scrub_store(get_cache())
        assert verdict["ok"] and verdict["root"] == "(disabled)"
    finally:
        reset_cache()


def test_scrub_cli_exit_codes(store, capsys):
    from repro.__main__ import main

    cache = seed_store(store)
    assert main(["cache", "scrub"]) == 0
    assert "store is clean" in capsys.readouterr().out
    _corrupt_everything(store)
    assert main(["cache", "scrub", "--tmp-age", "0"]) == EXIT_CORRUPT
    capsys.readouterr()
    assert main(["cache", "scrub", "--repair", "--tmp-age", "0",
                 "--json"]) == 0
    verdict = json.loads(capsys.readouterr().out)
    assert verdict["ok"] and verdict["repaired"] == verdict["corrupt"]
    assert main(["cache", "scrub", "--tmp-age", "0"]) == 0
