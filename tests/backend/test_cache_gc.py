"""Quota GC tests: LRU eviction order, access-stamp refresh, quarantine
immunity, budget parsing, and the stats surfacing."""

import os
import time
from pathlib import Path

import pytest

from repro.backend import fsio
from repro.backend.cache import (cache_max_bytes, get_cache, parse_bytes,
                                 reset_cache)
from repro.backend.faults import clear_fault_plan

KEYS = ["aa" * 12, "bb" * 12, "cc" * 12, "dd" * 12]


@pytest.fixture
def store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    reset_cache()
    fsio.reset_disk_health()
    clear_fault_plan()
    yield tmp_path / "store"
    reset_cache()
    fsio.reset_disk_health()
    clear_fault_plan()


def publish_fake(cache, key, size=1024):
    work = cache._scratch()
    (work / "k.so").write_bytes(bytes.fromhex(key[:2]) * size)
    path = cache.publish_so(key, work, "k.so", meta={"tag": "gc"})
    assert path is not None
    return path


def _stamp(store, key, age):
    """Backdate an entry's LRU stamp (meta.json mtime) by ``age`` secs."""
    meta = store / "objects" / key[:2] / key / "meta.json"
    past = time.time() - age
    os.utime(meta, (past, past))


def test_parse_bytes_suffixes():
    assert parse_bytes("1048576") == 1 << 20
    assert parse_bytes("512k") == 512 << 10
    assert parse_bytes("2m") == 2 << 20
    assert parse_bytes("1G") == 1 << 30
    assert parse_bytes("0.5g") == 1 << 29
    assert parse_bytes("1t") == 1 << 40
    assert parse_bytes("") is None
    assert parse_bytes("lots") is None
    assert parse_bytes("-1") is None


def test_cache_max_bytes_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    assert cache_max_bytes() is None
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "64m")
    assert cache_max_bytes() == 64 << 20
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "garbage")
    assert cache_max_bytes() is None  # malformed degrades, never raises


def test_gc_evicts_least_recently_used_first(store):
    cache = get_cache()
    for i, key in enumerate(KEYS):
        publish_fake(cache, key)
        _stamp(store, key, age=1000 - i * 100)  # KEYS[0] is the coldest
    # each entry is ~1k of .so plus its meta; a 2.5-entry budget keeps 2
    report = cache.gc(max_bytes=2560)
    assert report["evicted"] == 2 and report["kept"] == 2
    assert cache.lookup_so(KEYS[0]) is None
    assert cache.lookup_so(KEYS[1]) is None
    assert cache.lookup_so(KEYS[2]) is not None
    assert cache.lookup_so(KEYS[3]) is not None
    assert report["after_bytes"] <= 2560 < report["before_bytes"]
    assert cache.stats.gc_evictions == 2


def test_lookup_refreshes_lru_stamp(store):
    cache = get_cache()
    for key in KEYS[:2]:
        publish_fake(cache, key)
        _stamp(store, key, age=1000)
    # a disk hit promotes KEYS[0] to most-recently-used...
    assert cache.lookup_so(KEYS[0]) is not None
    report = cache.gc(max_bytes=1500)  # room for one entry
    # ...so the GC evicts KEYS[1] instead
    assert report["evicted"] == 1
    assert cache.lookup_so(KEYS[0]) is not None
    assert cache.lookup_so(KEYS[1]) is None


def test_gc_never_touches_quarantine_or_tuning(store):
    cache = get_cache()
    publish_fake(cache, KEYS[0])
    cache.store_tuning("ee" * 12, {"gflops": 2.0})
    cache.store_quarantine("ff" * 12, {"category": "segv"})
    report = cache.gc(max_bytes=0)  # evict every compiled entry
    assert report["evicted"] == 1 and report["after_bytes"] == 0
    assert cache.lookup_so(KEYS[0]) is None
    # a known-crashing candidate must stay known, measurements stay kept
    assert cache.load_quarantine("ff" * 12) is not None
    assert cache.load_tuning("ee" * 12) is not None


def test_gc_without_budget_is_a_no_op(store):
    cache = get_cache()
    publish_fake(cache, KEYS[0])
    report = cache.gc()  # no arg, no env
    assert report["budget_bytes"] is None and report["evicted"] == 0
    assert cache.lookup_so(KEYS[0]) is not None


def test_env_budget_enforced_after_publish(store, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "3k")
    cache = get_cache()
    for key in KEYS:
        publish_fake(cache, key)  # publish_so runs maybe_gc() itself
    info = cache.inventory()
    assert info["bytes"] <= 3 << 10
    assert 0 < info["entries"] < len(KEYS)
    assert cache.stats.gc_evictions >= 1


def test_inventory_reports_budget_headroom(store, monkeypatch):
    cache = get_cache()
    publish_fake(cache, KEYS[0])
    info = cache.inventory()
    assert info["max_bytes"] is None and info["headroom_bytes"] is None
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1m")
    info = cache.inventory()
    assert info["max_bytes"] == 1 << 20
    assert info["headroom_bytes"] == (1 << 20) - info["bytes"]
    assert info["bytes"] > 0 and info["entries"] == 1


def test_evict_failure_is_counted_not_swallowed(store, monkeypatch):
    """Satellite of the durability work: maintenance OSErrors used to be
    silently dropped; now every one lands in ``cache.io_error``."""
    import errno

    from repro.backend import cache as cache_module

    cache = get_cache()
    publish_fake(cache, KEYS[0])

    def denied(path, ignore_errors=False, **kwargs):
        if not ignore_errors:
            raise OSError(errno.EACCES, "permission denied")

    monkeypatch.setattr(cache_module.shutil, "rmtree", denied)
    cache.evict(KEYS[0])
    assert cache.stats.io_errors == 1
    assert "io errors=1" in cache.stats.describe()
    # EACCES is a per-path problem: the disk itself is not degraded
    assert cache.enabled


def test_gc_cli(store, capsys):
    from repro.__main__ import main

    cache = get_cache()
    for key in KEYS[:2]:
        publish_fake(cache, key)
        _stamp(store, key, age=500)
    assert main(["cache", "gc", "--max-bytes", "1500"]) == 0
    out = capsys.readouterr().out
    assert "evicted 1" in out
    # without any budget the command refuses rather than guessing
    assert main(["cache", "gc"]) == 2
