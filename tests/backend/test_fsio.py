"""Durable-write helper tests: atomicity, fsync publish, disk faults,
and process-wide disk-health degradation."""

import errno
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.backend import fsio
from repro.backend.cache import get_cache, reset_cache
from repro.backend.faults import (FaultPlan, clear_fault_plan,
                                  install_fault_plan)


@pytest.fixture(autouse=True)
def clean_disk_state():
    """Every test starts healthy and unarmed, and leaves no fault plan."""
    fsio.reset_disk_health()
    clear_fault_plan()
    yield
    fsio.reset_disk_health()
    clear_fault_plan()


def _arm(spec: str) -> None:
    install_fault_plan(FaultPlan.parse(spec))


# ---------------------------------------------------------------------------
# atomic_write_*
# ---------------------------------------------------------------------------


def test_atomic_write_roundtrip(tmp_path):
    path = tmp_path / "out.json"
    fsio.atomic_write_json(path, {"a": 1}, tag="t")
    assert json.loads(path.read_text()) == {"a": 1}
    fsio.atomic_write_text(path, "replaced", tag="t")
    assert path.read_text() == "replaced"
    fsio.atomic_write_bytes(path, b"\x00\x01", tag="t")
    assert path.read_bytes() == b"\x00\x01"
    # no temp debris left behind by successful publishes
    assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


def test_atomic_write_failure_leaves_no_file(tmp_path):
    target = tmp_path / "missing-dir" / "out.json"
    with pytest.raises(OSError):
        fsio.atomic_write_json(target, {"a": 1}, tag="t")
    assert not target.exists()
    # ENOENT is a per-path problem, not a sick disk
    assert fsio.disk_degraded() is None


def test_atomic_write_replaces_not_appends(tmp_path):
    path = tmp_path / "out.txt"
    fsio.atomic_write_text(path, "x" * 4096, tag="t")
    fsio.atomic_write_text(path, "short", tag="t")
    assert path.read_text() == "short"


# ---------------------------------------------------------------------------
# injected disk faults
# ---------------------------------------------------------------------------


def test_diskfull_fault_raises_enospc_and_degrades(tmp_path, capsys):
    _arm("diskfull@#0")
    with pytest.raises(OSError) as excinfo:
        fsio.atomic_write_text(tmp_path / "f", "data", tag="cache.meta")
    assert excinfo.value.errno == errno.ENOSPC
    assert not (tmp_path / "f").exists()
    assert fsio.disk_degraded() is not None
    assert "ENOSPC" in fsio.disk_degraded()
    # the demotion is logged exactly once
    assert "disk degraded" in capsys.readouterr().err
    fsio.note_disk_error(OSError(errno.ENOSPC, "again"), "elsewhere")
    assert capsys.readouterr().err == ""


def test_diskfull_fault_matches_by_tag(tmp_path):
    _arm("diskfull@cache.meta")
    # non-matching tag sails through
    fsio.atomic_write_text(tmp_path / "ok", "data", tag="journal.append")
    assert (tmp_path / "ok").read_text() == "data"
    with pytest.raises(OSError):
        fsio.atomic_write_text(tmp_path / "bad", "data", tag="cache.meta")


def test_torn_fault_truncates_payload(tmp_path):
    _arm("torn@#0:1")
    payload = b"0123456789" * 10
    fsio.atomic_write_bytes(tmp_path / "torn", payload, tag="t")
    landed = (tmp_path / "torn").read_bytes()
    assert landed == payload[:len(payload) // 2]
    # the tear is in the payload, not the mechanism: next write is whole
    fsio.atomic_write_bytes(tmp_path / "whole", payload, tag="t")
    assert (tmp_path / "whole").read_bytes() == payload


def test_bitrot_fault_flips_one_bit(tmp_path):
    _arm("bitrot@#0:1")
    payload = bytes(range(256))
    fsio.atomic_write_bytes(tmp_path / "rot", payload, tag="t")
    landed = (tmp_path / "rot").read_bytes()
    assert len(landed) == len(payload)
    diffs = [i for i, (a, b) in enumerate(zip(payload, landed)) if a != b]
    assert len(diffs) == 1
    assert landed[diffs[0]] == payload[diffs[0]] ^ 0x10


def test_kill_fault_sigkills_at_checkpoint(tmp_path):
    # run in a subprocess: the fault is a real SIGKILL
    code = (
        "from repro.backend import fsio\n"
        "fsio.atomic_write_text(r'%s', 'data', tag='t')\n"
        "print('SURVIVED')\n" % (tmp_path / "out")
    )
    env = dict(os.environ, REPRO_FAULT_INJECT="kill@#0",
               PYTHONPATH=str(Path(__file__).resolve().parents[2] / "src"))
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env,
        capture_output=True, text=True, timeout=60)
    assert proc.returncode == -9
    assert "SURVIVED" not in proc.stdout
    assert not (tmp_path / "out").exists()


# ---------------------------------------------------------------------------
# disk-health degradation
# ---------------------------------------------------------------------------


def test_note_disk_error_degrades_only_on_sick_disk():
    assert not fsio.note_disk_error(ValueError("nope"), "w")
    assert not fsio.note_disk_error(OSError(errno.EACCES, "denied"), "w")
    assert not fsio.note_disk_error(OSError(errno.ENOTDIR, "layout"), "w")
    assert fsio.disk_degraded() is None
    assert fsio.note_disk_error(OSError(errno.EIO, "dying media"), "meta")
    assert fsio.disk_degraded() is not None
    assert "EIO" in fsio.disk_degraded()


def test_reset_disk_health_restores():
    fsio.note_disk_error(OSError(errno.ENOSPC, "full"), "w")
    assert fsio.disk_degraded() is not None
    fsio.reset_disk_health()
    assert fsio.disk_degraded() is None


def test_degraded_disk_disables_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    reset_cache()
    try:
        cache = get_cache()
        assert cache.enabled
        fsio.note_disk_error(OSError(errno.ENOSPC, "full"), "w")
        assert not cache.enabled
        # every cache operation becomes a silent no-op, never a raise
        assert cache.lookup_so("ab" * 12) is None
        assert cache.publish_so("ab" * 12, tmp_path, "x.so") is None
        cache.store_tuning("cd" * 12, {"gflops": 1.0})
        assert cache.load_tuning("cd" * 12) is None
        cache.flush_stats()
        assert not (tmp_path / "store" / "stats.json").exists()
    finally:
        reset_cache()


def test_publish_under_diskfull_degrades_not_raises(tmp_path, monkeypatch):
    """The ISSUE acceptance path: ENOSPC mid-publish demotes to in-memory
    operation; the caller's build is unharmed and no exception escapes."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    reset_cache()
    try:
        cache = get_cache()
        work = cache._scratch()
        (work / "k.so").write_bytes(b"\x7fELF fake payload")
        _arm("diskfull@cache.meta")
        assert cache.publish_so("ab" * 12, work, "k.so") is None
        assert cache.stats.errors >= 1
        assert fsio.disk_degraded() is not None
        assert not cache.enabled
        # and a second publish short-circuits cleanly
        assert cache.publish_so("cd" * 12, work, "k.so") is None
    finally:
        reset_cache()


def test_lock_file_enospc_degrades_to_unlocked_write(tmp_path, monkeypatch):
    """A disk too full for even the lock file must not crash a store
    mutation: the write proceeds unlocked and the health flag flips."""
    from repro.backend import locks

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    reset_cache()
    try:
        cache = get_cache()

        def no_space(self):
            raise OSError(errno.ENOSPC, "no space for lock file")

        monkeypatch.setattr(locks.FileLock, "acquire", no_space)
        cache.store_tuning("ab" * 12, {"gflops": 1.0})  # must not raise
        assert cache.stats.io_errors == 1
        assert fsio.disk_degraded() is not None
    finally:
        reset_cache()


def test_checkpoints_number_in_execution_order(tmp_path):
    # one atomic write = 3 checkpoints (payload, replace, done):
    # a plan armed at #3 skips the first write entirely
    _arm("diskfull@#3")
    fsio.atomic_write_text(tmp_path / "first", "ok", tag="t")
    assert (tmp_path / "first").read_text() == "ok"
    with pytest.raises(OSError):
        fsio.atomic_write_text(tmp_path / "second", "boom", tag="t")
