"""Kill-during-publish torture harness.

Each child process runs a fixed disk workload — 8 atomic cache publishes,
a durable tuning session with journaled trials, a sealed accounting
ledger — with ``REPRO_FAULT_INJECT=kill@#K`` armed, so it SIGKILLs itself
at durable-write checkpoint ``K``.  The parent then audits the store the
corpse left behind: every compiled entry must be absent or fully valid
(size *and* digest), every session manifest absent or parseable, every
journal replayable, the ledger absent or whole — never a partial
artifact, never a crash in a reader.  ``cache scrub --repair`` must then
remove the leftovers deterministically and leave a clean store.

The workload issues 65 checkpoints (see ``_CHECKPOINTS``); the harness
kills at 50 distinct randomized points across all three write sites,
which is the ISSUE's acceptance floor.
"""

import hashlib
import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.backend import fsio
from repro.backend.cache import KernelCache
from repro.backend.faults import clear_fault_plan
from repro.backend.scrub import scrub_store
from repro.tuning.session import TuningSession

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(autouse=True)
def healthy_parent():
    """The parent process must audit with healthy disk state of its own."""
    fsio.reset_disk_health()
    clear_fault_plan()
    yield
    fsio.reset_disk_health()
    clear_fault_plan()

#: checkpoints the child workload issues: 8 publishes x 5 (meta payload,
#: meta replace, meta done, rename, rename done) + manifest create (3)
#: + 4 trials x (journal append + manifest rewrite (3)) + finish (3)
#: + ledger seal (3)
_CHECKPOINTS = 8 * 5 + 3 + 4 * 4 + 3 + 3  # = 65

#: acceptance floor from the ISSUE: >= 50 randomized kill points
_KILL_POINTS = sorted(random.Random(0x5EED).sample(range(_CHECKPOINTS), 50))

_KEYS = [("%02x" % i) * 12 for i in range(8)]

_CHILD = r"""
import os
from pathlib import Path

from repro.backend.cache import get_cache
from repro.serve.quotas import QuotaBook
from repro.tuning.session import TrialRecord, TuningSession

root = Path(os.environ["REPRO_CACHE_DIR"])
cache = get_cache()
for i in range(8):
    work = cache._scratch()
    (work / "k.so").write_bytes(bytes([i]) * 512)
    cache.publish_so(("%02x" % i) * 12, work, "k.so", meta={"tag": "kill"})
session = TuningSession.create(
    root / "sessions", "axpy", "ab" * 12, "c", "generic_sse", 3,
    ["c0", "c1"], "k" * 24)
for i in range(4):
    session.record_trial(TrialRecord(index=i, candidate="c0", gflops=1.0))
session.finish("complete", winner="c0")
book = QuotaBook()
book.admit("cli:1", 64)
book.release("cli:1", "ok")
book.seal(root / "accounting.json")
print("COMPLETE")
"""


def _spawn(store: Path, plan: str) -> subprocess.Popen:
    env = dict(os.environ, REPRO_CACHE_DIR=str(store),
               REPRO_FAULT_INJECT=plan, PYTHONPATH=str(SRC_DIR))
    env.pop("REPRO_CACHE_MAX_BYTES", None)
    return subprocess.Popen([sys.executable, "-c", _CHILD], env=env,
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)


def _audit_store(store: Path) -> None:
    """The absent-or-fully-valid contract, checked reader by reader."""
    cache = KernelCache(store)
    for key in _KEYS:
        so_path = cache.lookup_so(key)
        if so_path is None:
            continue
        meta = json.loads((so_path.parent / "meta.json").read_text())
        so_bytes = so_path.read_bytes()
        assert len(so_bytes) == meta["so_size"]
        assert hashlib.sha256(so_bytes).hexdigest() == meta["so_sha256"]
    # a kill can only make an entry absent, never partially served
    assert cache.stats.errors == 0 and cache.stats.evictions == 0
    sessions = store / "sessions"
    for sdir in sessions.iterdir() if sessions.exists() else ():
        session = TuningSession.open(sdir)
        if session is not None:  # manifest is atomic: absent or whole
            for record in session.journal_entries():
                assert record.candidate in ("c0", "c1")
    ledger = store / "accounting.json"
    if ledger.exists():
        assert json.loads(ledger.read_text())["totals"]["admitted"] == 1


def _scrub_to_clean(store: Path) -> dict:
    """Scrub twice (determinism), repair, and prove the store clean."""
    cache = KernelCache(store)
    first = scrub_store(cache, tmp_age=0.0)
    second = scrub_store(cache, tmp_age=0.0)
    assert first == second
    # the only tolerated leftovers are publish scratch and a session dir
    # whose manifest never landed — compiled entries may never be flagged
    for problem in first["problems"]:
        assert problem["kind"] in ("stray", "session"), problem
    scrub_store(cache, repair=True, tmp_age=0.0)
    final = scrub_store(cache, tmp_age=0.0)
    assert final["ok"] and final["corrupt"] == 0
    return first


def test_child_workload_completes_unfaulted(tmp_path):
    """Sanity: with no fault armed the workload runs to the end and its
    checkpoint count matches the harness's kill-point universe."""
    store = tmp_path / "store"
    proc = _spawn(store, "")
    out, err = proc.communicate(timeout=120)
    assert proc.returncode == 0, err
    assert "COMPLETE" in out
    cache = KernelCache(store)
    assert all(cache.lookup_so(key) is not None for key in _KEYS)
    verdict = scrub_store(cache, tmp_age=0.0)
    assert verdict["ok"] and verdict["corrupt"] == 0
    # kill@#<last> must still fire inside the workload, or the harness
    # is under-counting checkpoints and missing coverage at the tail
    store2 = tmp_path / "tail"
    proc = _spawn(store2, "kill@#%d" % (_CHECKPOINTS - 1))
    proc.communicate(timeout=120)
    assert proc.returncode == -9


@pytest.mark.parametrize("batch", range(5))
def test_kill_during_publish_store_stays_valid(tmp_path, batch):
    """50 randomized SIGKILL points across publish/journal/ledger writes:
    the store must always read absent-or-fully-valid, and scrub --repair
    must remove the leftovers deterministically."""
    points = _KILL_POINTS[batch * 10:(batch + 1) * 10]
    procs = [(k, _spawn(tmp_path / ("store-%02d" % k), "kill@#%d" % k))
             for k in points]
    for k, proc in procs:
        _, err = proc.communicate(timeout=120)
        assert proc.returncode == -9, (k, err)
    for k, _ in procs:
        store = tmp_path / ("store-%02d" % k)
        _audit_store(store)
        _scrub_to_clean(store)


def test_kill_at_rename_boundary_is_deterministic(tmp_path):
    """The two edges of the publish rename, pinned by tag match: a kill
    armed *before* the rename loses the entry, one armed *after* keeps
    a fully valid entry — and scrub repairs either corpse the same way."""
    before = tmp_path / "before"
    proc = _spawn(before, "kill@cache.publish.rename:1")
    proc.communicate(timeout=120)
    assert proc.returncode == -9
    assert KernelCache(before).lookup_so(_KEYS[0]) is None
    leftovers = _scrub_to_clean(before)
    assert any(p["kind"] == "stray" for p in leftovers["problems"])

    after = tmp_path / "after"
    proc = _spawn(after, "kill@cache.publish.done:1")
    proc.communicate(timeout=120)
    assert proc.returncode == -9
    assert KernelCache(after).lookup_so(_KEYS[0]) is not None
    _audit_store(after)
    _scrub_to_clean(after)
