"""Advisory file-lock tests: mutual exclusion, staleness, degradation."""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.backend.locks import (
    DEFAULT_STALE_AFTER,
    NULL_LOCK,
    FileLock,
    LockTimeout,
    cache_lock,
    pid_alive,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_acquire_creates_and_release_removes(tmp_path):
    lock = FileLock(tmp_path / "a.lock")
    with lock:
        assert lock.path.exists()
        holder = json.loads(lock.path.read_text())
        assert holder["pid"] == os.getpid()
        assert "host" in holder and "time" in holder
    assert not lock.path.exists()


def test_second_waiter_times_out_while_held(tmp_path):
    path = tmp_path / "a.lock"
    with FileLock(path):
        waiter = FileLock(path, timeout=0.2)
        t0 = time.monotonic()
        with pytest.raises(LockTimeout) as err:
            waiter.acquire()
        assert time.monotonic() - t0 >= 0.2
        assert str(os.getpid()) in str(err.value)
    # releasing the holder frees the path for the next acquisition
    with FileLock(path, timeout=0.2):
        pass


def test_release_without_acquire_is_noop(tmp_path):
    FileLock(tmp_path / "a.lock").release()  # must not raise


def test_thread_contention_serializes_read_modify_write(tmp_path):
    """N threads x M increments through the lock lose no update."""
    counter = tmp_path / "counter.json"
    counter.write_text("0")
    path = tmp_path / "c.lock"
    threads, iters = 8, 20

    def worker():
        for _ in range(iters):
            with FileLock(path, timeout=30.0):
                value = int(counter.read_text())
                counter.write_text(str(value + 1))

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert int(counter.read_text()) == threads * iters
    assert not path.exists()


_LOCK_CHILD = r"""
import json, os, sys
sys.path.insert(0, {src!r})
from repro.backend.locks import FileLock
counter, lockpath, iters = sys.argv[1], sys.argv[2], int(sys.argv[3])
for _ in range(iters):
    with FileLock(lockpath, timeout=60.0):
        value = int(open(counter).read())
        tmp = counter + f".{{os.getpid()}}.tmp"
        with open(tmp, "w") as fh:
            fh.write(str(value + 1))
        os.replace(tmp, counter)
print("DONE")
"""


def test_multiprocess_contention_loses_no_update(tmp_path):
    """The acceptance shape: separate *processes* sharing one lock file."""
    counter = tmp_path / "counter.json"
    counter.write_text("0")
    lockpath = tmp_path / "c.lock"
    procs, iters = 4, 10
    child = _LOCK_CHILD.format(src=SRC)
    running = [subprocess.Popen(
        [sys.executable, "-c", child, str(counter), str(lockpath),
         str(iters)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        for _ in range(procs)]
    for proc in running:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        assert "DONE" in out
    assert int(counter.read_text()) == procs * iters
    assert not lockpath.exists()  # no leaked lock


def test_dead_pid_lock_is_broken(tmp_path):
    """A crashed holder on this host must not wedge waiters."""
    proc = subprocess.run([sys.executable, "-c", "import os;print(os.getpid())"],
                          capture_output=True, text=True)
    dead_pid = int(proc.stdout)
    assert pid_alive(dead_pid) is False
    path = tmp_path / "stale.lock"
    import socket

    path.write_text(json.dumps({"pid": dead_pid,
                                "host": socket.gethostname(),
                                "time": time.time()}))
    t0 = time.monotonic()
    with FileLock(path, timeout=5.0):
        pass  # acquired by breaking the stale lock, not by waiting it out
    assert time.monotonic() - t0 < 2.0


def test_foreign_host_lock_broken_only_by_age(tmp_path):
    path = tmp_path / "foreign.lock"
    fresh = {"pid": 1, "host": "some-other-machine", "time": time.time()}
    path.write_text(json.dumps(fresh))
    with pytest.raises(LockTimeout):
        FileLock(path, timeout=0.2).acquire()  # fresh foreign lock: wait
    old = dict(fresh, time=time.time() - 2 * DEFAULT_STALE_AFTER)
    path.write_text(json.dumps(old))
    with FileLock(path, timeout=5.0):
        pass  # aged out -> broken


def test_unreadable_lock_gets_grace_then_breaks(tmp_path):
    path = tmp_path / "garbage.lock"
    path.write_text("not json")
    # age it past the short unreadable-payload grace window
    stale = time.time() - 60
    os.utime(path, (stale, stale))
    with FileLock(path, timeout=5.0):
        pass


def test_live_alive_pid_lock_respected(tmp_path):
    """Our own (live) pid in the lock file means a genuine holder."""
    import socket

    path = tmp_path / "live.lock"
    path.write_text(json.dumps({"pid": os.getpid(),
                                "host": socket.gethostname(),
                                "time": time.time()}))
    with pytest.raises(LockTimeout):
        FileLock(path, timeout=0.3).acquire()


def test_cache_lock_null_when_disabled():
    assert cache_lock(None) is NULL_LOCK
    with NULL_LOCK:
        pass  # usable as a no-op context manager


def test_cache_lock_places_file_under_locks_dir(tmp_path):
    lock = cache_lock(tmp_path, name="tuning")
    with lock:
        assert (tmp_path / "locks" / "tuning.lock").exists()


def test_pid_alive_edge_cases():
    assert pid_alive(os.getpid()) is True
    assert pid_alive(0) is None
    assert pid_alive(-5) is None
