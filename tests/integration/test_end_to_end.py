"""End-to-end integration: every kernel x every architecture, native and
emulated, cross-validated against numpy and against each other."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.runner import load_kernel
from repro.core.framework import Augem
from repro.emu.run import call_kernel
from repro.isa.arch import PILEDRIVER

from tests.conftest import ALL_ARCH_SPECS, needs_cc


def _check_gemm(run, rng, layout="dup", multiples=(1, 1, 1)):
    mu, nu, ku = multiples
    import math

    mc = 2 * math.lcm(mu, 4)
    nc = 2 * math.lcm(nu, 2)
    kc = 2 * math.lcm(ku, 8)
    ldc = mc + 8
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = rng.standard_normal(ldc * nc)
    ref = c.copy()
    am = a.reshape(kc, mc)
    for j in range(nc):
        col = (b.reshape(nc, kc)[j, :] if layout == "dup"
               else b.reshape(kc, nc)[:, j])
        for i in range(mc):
            ref[j * ldc + i] += am[:, i] @ col
    run(mc, nc, kc, a, b, c, ldc)
    np.testing.assert_allclose(c, ref, rtol=1e-12, atol=1e-10)


# -- emulator path: all four arch specs incl. Piledriver FMA4 ----------------

def test_gemm_emulated(any_arch, rng):
    from repro.blas.gemm import kernel_multiples

    gk = Augem(arch=any_arch).generate_named("gemm")
    _check_gemm(lambda *args: call_kernel(gk, list(args)), rng,
                multiples=kernel_multiples(gk))


def test_gemm_shuf_emulated(any_arch, rng):
    from repro.blas.gemm import kernel_multiples

    gk = Augem(arch=any_arch).generate_named("gemm_shuf", strategy="shuf")
    _check_gemm(lambda *args: call_kernel(gk, list(args)), rng,
                layout="shuf", multiples=kernel_multiples(gk))


def test_gemv_emulated(any_arch, rng):
    gk = Augem(arch=any_arch).generate_named("gemv")
    m, n, lda = 16, 4, 20
    a = rng.standard_normal(n * lda)
    x = rng.standard_normal(n)
    y = rng.standard_normal(m)
    ref = y + a.reshape(n, lda)[:, :m].T @ x
    call_kernel(gk, [m, n, a, lda, x, y])
    np.testing.assert_allclose(y, ref, rtol=1e-12, atol=1e-10)


def test_axpy_emulated(any_arch, rng):
    gk = Augem(arch=any_arch).generate_named("axpy")
    n = 32
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    ref = y + 3.5 * x
    call_kernel(gk, [n, 3.5, x, y])
    np.testing.assert_allclose(y, ref, rtol=1e-12, atol=1e-10)


def test_dot_emulated(any_arch, rng):
    gk = Augem(arch=any_arch).generate_named("dot")
    n = 64
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    assert np.isclose(call_kernel(gk, [n, x, y]), x @ y)


# -- native path: every host-runnable arch -------------------------------------

@needs_cc
def test_gemm_native(native_arch, rng):
    from repro.blas.gemm import kernel_multiples

    gk = Augem(arch=native_arch).generate_named(
        "gemm", name=f"e2e_gemm_{native_arch.name}")
    kernel = load_kernel("gemm", gk)
    _check_gemm(kernel, rng, multiples=kernel_multiples(gk))


@needs_cc
def test_all_kernels_native(native_arch, rng):
    aug = Augem(arch=native_arch)
    n = 64
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)

    axpy = load_kernel("axpy", aug.generate_named(
        "axpy", name=f"e2e_axpy_{native_arch.name}"))
    y1 = y.copy()
    axpy(n, 2.0, x, y1)
    assert np.allclose(y1, y + 2.0 * x)

    dot = load_kernel("dot", aug.generate_named(
        "dot", name=f"e2e_dot_{native_arch.name}"))
    assert np.isclose(dot(n, x, y), x @ y)

    gemv = load_kernel("gemv", aug.generate_named(
        "gemv", name=f"e2e_gemv_{native_arch.name}"))
    m, ncols, lda = 32, 8, 40
    a = rng.standard_normal(ncols * lda)
    yv = rng.standard_normal(m)
    xv = rng.standard_normal(ncols)
    ref = yv + a.reshape(ncols, lda)[:, :m].T @ xv
    gemv(m, ncols, a, lda, xv, yv)
    assert np.allclose(yv, ref)


# -- cross-validation: emulator and native agree bit-for-bit -------------------

@needs_cc
def test_emulator_matches_native_exactly(native_arch, rng):
    gk = Augem(arch=native_arch).generate_named(
        "gemm", name=f"xval_{native_arch.name}")
    kernel = load_kernel("gemm", gk)
    mc, nc, kc, ldc = 24, 4, 16, 24
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c_native = np.zeros(ldc * nc)
    c_emu = np.zeros(ldc * nc)
    kernel(mc, nc, kc, a, b, c_native, ldc)
    call_kernel(gk, [mc, nc, kc, a, b, c_emu, ldc])
    # identical instruction streams => identical IEEE results, no tolerance
    np.testing.assert_array_equal(c_native, c_emu)


# -- FMA4 vs FMA3: same kernel semantics across vendor ISAs --------------------

def test_piledriver_fma4_matches_reference(rng):
    from repro.blas.gemm import kernel_multiples

    gk = Augem(arch=PILEDRIVER).generate_named("gemm")
    assert "vfmaddpd" in gk.asm_text  # Table 1 line 4 actually used
    _check_gemm(lambda *args: call_kernel(gk, list(args)), rng,
                multiples=kernel_multiples(gk))


# -- property-based: random sizes through the emulator --------------------------

@given(mc=st.integers(1, 4), nc=st.integers(1, 3), kc=st.integers(1, 12),
       seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_gemm_emulated_random_sizes(mc, nc, kc, seed):
    """Unit blocks (no unrolling constraint) over arbitrary tiny shapes."""
    from repro.transforms.pipeline import OptimizationConfig

    aug = Augem(arch=ALL_ARCH_SPECS[0])  # generic SSE
    gk = aug.generate_named("gemm", config=OptimizationConfig())
    r = np.random.default_rng(seed)
    a = r.standard_normal(kc * mc)
    b = r.standard_normal(nc * kc)
    c = np.zeros(mc * nc)
    call_kernel(gk, [mc, nc, kc, a, b, c, mc])
    am = a.reshape(kc, mc)
    bm = b.reshape(nc, kc)
    for j in range(nc):
        for i in range(mc):
            assert np.isclose(c[j * mc + i], am[:, i] @ bm[j, :])
