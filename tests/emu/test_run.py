"""ABI-level emulator call tests."""

import numpy as np
import pytest

from repro.core.framework import Augem
from repro.emu.run import call_items, call_kernel
from repro.isa.arch import HASWELL, PILEDRIVER
from repro.isa.instructions import Label, instr
from repro.isa.operands import Imm, LabelRef, Mem
from repro.isa.registers import GP, xmm


def test_minimal_function_returns():
    # a function that writes arg0 into xmm0 and returns
    items = [
        instr("push", GP["rbx"]),
        instr("pop", GP["rbx"]),
        instr("ret"),
    ]
    assert call_items(items, []) == 0.0


def test_int_args_in_registers():
    items = [
        instr("mov", GP["rdi"], GP["rax"]),
        instr("add", GP["rsi"], GP["rax"]),
        instr("mov", GP["rax"], Mem(base=GP["rdx"])),
        instr("ret"),
    ]
    out = np.zeros(1)
    call_items(items, [2, 3, out])
    assert out.view(np.int64)[0] == 5


def test_float_arg_in_xmm0():
    items = [
        instr("movsd", xmm(0), Mem(base=GP["rdi"])),
        instr("ret"),
    ]
    out = np.zeros(1)
    call_items(items, [out, 4.25])
    assert out[0] == 4.25


def test_seventh_int_arg_on_stack():
    items = [
        instr("mov", Mem(base=GP["rsp"], disp=8), GP["rax"]),
        instr("mov", GP["rax"], Mem(base=GP["rdi"])),
        instr("ret"),
    ]
    out = np.zeros(1)
    call_items(items, [out, 1, 2, 3, 4, 5, 77])
    assert out.view(np.int64)[0] == 77


def test_array_mutations_synced_back():
    items = [
        instr("movsd", Mem(base=GP["rdi"]), xmm(0)),
        instr("addsd", xmm(0), xmm(0)),
        instr("movsd", xmm(0), Mem(base=GP["rdi"], disp=8)),
        instr("ret"),
    ]
    a = np.array([1.5, 0.0])
    call_items(items, [a])
    assert a[1] == 3.0


def test_bad_array_dtype_rejected():
    with pytest.raises(TypeError):
        call_items([instr("ret")], [np.zeros(4, dtype=np.float32)])


def test_call_kernel_runs_piledriver_fma4_code():
    """The whole point of the emulator: validate code the host can't run."""
    gk = Augem(arch=PILEDRIVER).generate_named("axpy")
    assert "vfmaddpd" in gk.asm_text
    n = 16
    x = np.arange(n, dtype=np.float64)
    y = np.ones(n)
    call_kernel(gk, [n, 2.0, x, y])
    assert np.allclose(y, 1.0 + 2.0 * np.arange(n))
