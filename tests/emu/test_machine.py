"""Per-instruction emulator semantics tests.

Each test builds a short instruction sequence and inspects machine state —
the emulator's semantics must mirror the hardware manual because it is the
oracle for FMA4/Piledriver code the host cannot run.
"""

import numpy as np
import pytest

from repro.emu.machine import EmuError, Machine
from repro.emu.memory import Memory
from repro.isa.instructions import Label, instr
from repro.isa.operands import Imm, LabelRef, Mem
from repro.isa.registers import GP, xmm, ymm

RAX, RBX, RCX = GP["rax"], GP["rbx"], GP["rcx"]


def run(items, setup=None, floats=None, mem_size=1 << 14):
    mem = Memory(mem_size)
    m = Machine(list(items), mem, max_steps=100_000)
    if setup:
        m.state.gp.update(setup)
    if floats is not None:
        for idx, lanes in floats.items():
            m.state.vec[idx][: len(lanes)] = lanes
    pc = 0
    while pc < len(m.items):
        it = m.items[pc]
        if not isinstance(it, type(instr("nop"))):
            pc += 1
            continue
        nxt = m._exec(it, pc)
        if nxt is None:
            break
        pc = nxt
    return m


# -- GP ---------------------------------------------------------------------

def test_mov_imm_and_reg():
    m = run([instr("mov", Imm(7), RAX), instr("mov", RAX, RBX)])
    assert m.state.gp["rbx"] == 7


def test_add_sub_imul():
    m = run([
        instr("mov", Imm(10), RAX),
        instr("add", Imm(5), RAX),
        instr("sub", Imm(3), RAX),
        instr("imul", Imm(4), RAX),
    ])
    assert m.state.gp["rax"] == 48


def test_imul_signed():
    m = run([instr("mov", Imm(-3), RAX), instr("imul", Imm(5), RAX)])
    assert m.state.gp["rax"] == (-15) % 2**64


def test_lea_computes_address():
    m = run([instr("lea", Mem(base=RAX, index=RBX, scale=8, disp=16), RCX)],
            setup={"rax": 100, "rbx": 3})
    assert m.state.gp["rcx"] == 100 + 24 + 16


def test_neg_and_shifts():
    m = run([
        instr("mov", Imm(2), RAX),
        instr("sal", Imm(4), RAX),
        instr("neg", RAX),
    ])
    assert m.state.gp["rax"] == (-32) % 2**64


def test_sar_arithmetic_shift():
    m = run([instr("mov", Imm(-16), RAX), instr("sar", Imm(2), RAX)])
    assert m.state.gp["rax"] == (-4) % 2**64


def test_cmp_jl_signed():
    items = [
        instr("mov", Imm(-5), RAX),
        instr("mov", Imm(3), RBX),
        instr("cmp", RBX, RAX),  # flags of rax - rbx = -8
        instr("jl", LabelRef("less")),
        instr("mov", Imm(0), RCX),
        instr("jmp", LabelRef("end")),
        Label("less"),
        instr("mov", Imm(1), RCX),
        Label("end"),
    ]
    mem = Memory(1 << 12)
    m = Machine(items, mem)
    m.run()
    assert m.state.gp["rcx"] == 1


@pytest.mark.parametrize("mn,a,b,taken", [
    ("je", 4, 4, True), ("je", 4, 5, False),
    ("jne", 4, 5, True),
    ("jle", 4, 4, True), ("jle", 5, 4, False),
    ("jg", 5, 4, True), ("jge", 4, 4, True),
])
def test_conditional_branches(mn, a, b, taken):
    items = [
        instr("mov", Imm(a), RAX),
        instr("mov", Imm(b), RBX),
        instr("cmp", RBX, RAX),
        instr(mn, LabelRef("hit")),
        instr("mov", Imm(0), RCX),
        instr("jmp", LabelRef("end")),
        Label("hit"),
        instr("mov", Imm(1), RCX),
        Label("end"),
    ]
    m = Machine(items, Memory(1 << 12))
    m.run()
    assert m.state.gp["rcx"] == (1 if taken else 0)


def test_push_pop():
    mem = Memory(1 << 12)
    m = Machine([instr("push", RAX), instr("pop", RBX)], mem)
    m.state.gp["rsp"] = mem.alloc(256) + 128
    m.state.gp["rax"] = 42
    m.run()
    assert m.state.gp["rbx"] == 42


def test_ret_requires_sentinel():
    mem = Memory(1 << 12)
    m = Machine([instr("ret")], mem)
    rsp = mem.alloc(64)
    mem.write_u64(rsp, 0x1234)
    m.state.gp["rsp"] = rsp
    with pytest.raises(EmuError):
        m.run()


def test_runaway_loop_detected():
    items = [Label("top"), instr("jmp", LabelRef("top"))]
    m = Machine(items, Memory(1 << 12), max_steps=100)
    with pytest.raises(EmuError):
        m.run()


def test_undefined_label_raises():
    m = Machine([instr("jmp", LabelRef("nowhere"))], Memory(1 << 12))
    with pytest.raises(EmuError):
        m.run()


def test_duplicate_label_rejected():
    with pytest.raises(EmuError):
        Machine([Label("x"), Label("x")], Memory(1 << 12))


# -- SSE scalar/packed ---------------------------------------------------------

def test_movsd_load_zeroes_upper():
    mem = Memory(1 << 12)
    a = np.array([7.0])
    addr = mem.bind(a)
    m = Machine([instr("movsd", Mem(base=RAX), xmm(1))], mem)
    m.state.gp["rax"] = addr
    m.state.vec[1][:] = 9.0
    m.run()
    assert m.state.vec[1][0] == 7.0 and m.state.vec[1][1] == 0.0


def test_movsd_reg_to_reg_merges_low_lane():
    m = run([instr("movsd", xmm(0), xmm(1))],
            floats={0: [5.0, 6.0], 1: [1.0, 2.0]})
    assert list(m.state.vec[1][:2]) == [5.0, 2.0]


def test_addsd_only_low_lane():
    m = run([instr("addsd", xmm(0), xmm(1))],
            floats={0: [1.0, 10.0], 1: [2.0, 20.0]})
    assert list(m.state.vec[1][:2]) == [3.0, 20.0]


def test_packed_sse_ops():
    m = run([
        instr("mulpd", xmm(0), xmm(1)),
        instr("addpd", xmm(0), xmm(2)),
    ], floats={0: [2.0, 3.0], 1: [4.0, 5.0], 2: [1.0, 1.0]})
    assert list(m.state.vec[1][:2]) == [8.0, 15.0]
    assert list(m.state.vec[2][:2]) == [3.0, 4.0]


def test_xorpd_zero_idiom():
    m = run([instr("xorpd", xmm(3), xmm(3))], floats={3: [1.0, 2.0]})
    assert list(m.state.vec[3][:2]) == [0.0, 0.0]


def test_shufpd_swap():
    m = run([instr("shufpd", Imm(1), xmm(0), xmm(0))], floats={0: [1.0, 2.0]})
    assert list(m.state.vec[0][:2]) == [2.0, 1.0]


def test_shufpd_combine_semantics():
    # dst[0] = dst[imm&1], dst[1] = src[(imm>>1)&1]
    m = run([instr("shufpd", Imm(2), xmm(1), xmm(0))],
            floats={0: [10.0, 11.0], 1: [20.0, 21.0]})
    assert list(m.state.vec[0][:2]) == [10.0, 21.0]


def test_unpckhpd():
    m = run([instr("unpckhpd", xmm(1), xmm(0))],
            floats={0: [1.0, 2.0], 1: [3.0, 4.0]})
    assert list(m.state.vec[0][:2]) == [2.0, 4.0]


def test_haddpd():
    m = run([instr("haddpd", xmm(1), xmm(0))],
            floats={0: [1.0, 2.0], 1: [10.0, 20.0]})
    assert list(m.state.vec[0][:2]) == [3.0, 30.0]


def test_movddup_from_memory():
    mem = Memory(1 << 12)
    addr = mem.bind(np.array([6.0]))
    m = Machine([instr("movddup", Mem(base=RAX), xmm(2))], mem)
    m.state.gp["rax"] = addr
    m.run()
    assert list(m.state.vec[2][:2]) == [6.0, 6.0]


# -- AVX ------------------------------------------------------------------------

def test_vex_128_write_zeroes_upper_lanes():
    m = run([instr("vaddsd", xmm(0), xmm(1), xmm(2))],
            floats={0: [1.0], 1: [2.0], 2: [9.0, 9.0, 9.0, 9.0]})
    assert m.state.vec[2][0] == 3.0
    assert list(m.state.vec[2][2:]) == [0.0, 0.0]


def test_legacy_sse_write_preserves_upper_lanes():
    m = run([instr("addsd", xmm(0), xmm(2))],
            floats={0: [1.0], 2: [2.0, 8.0, 8.0, 8.0]})
    assert list(m.state.vec[2]) == [3.0, 8.0, 8.0, 8.0]


def test_vbroadcastsd():
    mem = Memory(1 << 12)
    addr = mem.bind(np.array([2.5]))
    m = Machine([instr("vbroadcastsd", Mem(base=RAX), ymm(3))], mem)
    m.state.gp["rax"] = addr
    m.run()
    assert list(m.state.vec[3]) == [2.5] * 4


def test_vmulpd_vaddpd_256():
    m = run([
        instr("vmulpd", ymm(0), ymm(1), ymm(2)),
        instr("vaddpd", ymm(2), ymm(3), ymm(3)),
    ], floats={0: [1, 2, 3, 4], 1: [5, 6, 7, 8], 3: [1, 1, 1, 1]})
    assert list(m.state.vec[3]) == [6.0, 13.0, 22.0, 33.0]


def test_vfmadd231pd():
    m = run([instr("vfmadd231pd", ymm(0), ymm(1), ymm(2))],
            floats={0: [2, 2, 2, 2], 1: [3, 3, 3, 3], 2: [1, 1, 1, 1]})
    assert list(m.state.vec[2]) == [7.0] * 4


def test_fma4_vfmaddpd():
    # AT&T (src3, src2, src1, dst): dst = src1*src2 + src3
    m = run([instr("vfmaddpd", ymm(2), ymm(1), ymm(0), ymm(3))],
            floats={0: [2, 2, 2, 2], 1: [3, 3, 3, 3], 2: [1, 1, 1, 1]})
    assert list(m.state.vec[3]) == [7.0] * 4


def test_vpermilpd_imm5():
    m = run([instr("vpermilpd", Imm(5), ymm(0), ymm(1))],
            floats={0: [1, 2, 3, 4]})
    assert list(m.state.vec[1]) == [2.0, 1.0, 4.0, 3.0]


def test_vperm2f128_swap_lanes():
    m = run([instr("vperm2f128", Imm(1), ymm(0), ymm(0), ymm(1))],
            floats={0: [1, 2, 3, 4]})
    assert list(m.state.vec[1]) == [3.0, 4.0, 1.0, 2.0]


def test_vextractf128():
    m = run([instr("vextractf128", Imm(1), ymm(0), xmm(1))],
            floats={0: [1, 2, 3, 4]})
    assert list(m.state.vec[1][:2]) == [3.0, 4.0]


def test_vunpckhpd_256():
    m = run([instr("vunpckhpd", ymm(1), ymm(0), ymm(2))],
            floats={0: [1, 2, 3, 4], 1: [5, 6, 7, 8]})
    assert list(m.state.vec[2]) == [2.0, 6.0, 4.0, 8.0]


def test_vshufpd_256():
    m = run([instr("vshufpd", Imm(0b0101), ymm(1), ymm(0), ymm(2))],
            floats={0: [1, 2, 3, 4], 1: [5, 6, 7, 8]})
    # per lane-pair: out[0]=a[imm0], out[1]=b[imm1] etc.
    assert list(m.state.vec[2]) == [2.0, 5.0, 4.0, 7.0]


def test_prefetch_is_noop():
    m = run([instr("prefetcht0", Mem(base=RAX))], setup={"rax": Memory.BASE})
    assert m.state.gp["rax"] == Memory.BASE  # no state change, no fault


def test_divsd():
    m = run([instr("divsd", xmm(0), xmm(1))], floats={0: [4.0], 1: [10.0]})
    assert m.state.vec[1][0] == 2.5


def test_every_known_mnemonic_is_executable_or_control():
    """The emulator must cover the full INSTR_INFO vocabulary — any
    instruction the generator can emit has defined semantics."""
    from repro.isa.instructions import INSTR_INFO

    # all mnemonics are exercised across the kernel test matrix; here we
    # just pin the vocabulary so additions must come with emulator support
    assert len(INSTR_INFO) >= 60
