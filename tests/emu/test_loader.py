"""GAS parser tests: operands, lines, and generator round trips."""

import numpy as np
import pytest

from repro.core.framework import Augem
from repro.emu.loader import (
    AsmParseError,
    parse_gas,
    parse_gas_function,
    parse_line,
    parse_operand,
)
from repro.emu.run import call_items
from repro.isa.arch import GENERIC_SSE, HASWELL, PILEDRIVER, SANDYBRIDGE
from repro.isa.instructions import Comment, Directive, Instr, Label
from repro.isa.operands import Imm, LabelRef, Mem
from repro.isa.registers import GP, xmm, ymm


# -- operands --------------------------------------------------------------

def test_register_operand():
    assert parse_operand("%rax") == GP["rax"]
    assert parse_operand("%ymm7") == ymm(7)
    assert parse_operand("%xmm0") == xmm(0)


def test_immediate_operand():
    assert parse_operand("$42") == Imm(42)
    assert parse_operand("$-8") == Imm(-8)
    assert parse_operand("$0x10") == Imm(16)


def test_memory_operands():
    assert parse_operand("(%rax)") == Mem(base=GP["rax"])
    assert parse_operand("16(%rsp)") == Mem(base=GP["rsp"], disp=16)
    assert parse_operand("-8(%rbp)") == Mem(base=GP["rbp"], disp=-8)
    assert parse_operand("(%rax,%rbx,8)") == Mem(
        base=GP["rax"], index=GP["rbx"], scale=8)
    assert parse_operand("24(%rdi,%rcx,4)") == Mem(
        base=GP["rdi"], index=GP["rcx"], scale=4, disp=24)


def test_label_operand():
    assert parse_operand(".L_f_body1") == LabelRef(".L_f_body1")


def test_bad_operand_raises():
    with pytest.raises(AsmParseError):
        parse_operand("%zmm0")
    with pytest.raises(AsmParseError):
        parse_operand("$xyz")


# -- lines --------------------------------------------------------------------

def test_instruction_line():
    item = parse_line("\tvfmadd231pd\t%ymm0, %ymm4, %ymm8")
    assert isinstance(item, Instr)
    assert item.mnemonic == "vfmadd231pd"
    assert item.operands == (ymm(0), ymm(4), ymm(8))


def test_comment_stripped():
    item = parse_line("\tadd\t$8, %rsi\t# ptr_B0 += 1")
    assert isinstance(item, Instr) and item.operands[0] == Imm(8)


def test_size_suffix_stripped():
    item = parse_line("\taddq\t$16, 8(%rsp)")
    assert item.mnemonic == "add"


def test_label_line():
    assert parse_line(".L_f_check2:") == Label(".L_f_check2")
    assert parse_line("dgemm_kernel:") == Label("dgemm_kernel")


def test_directive_line():
    item = parse_line("\t.globl dgemm_kernel")
    assert isinstance(item, Directive)


def test_blank_and_comment_lines():
    assert parse_line("   ") is None
    assert isinstance(parse_line("\t# just a note"), Comment)


def test_unknown_mnemonic_raises():
    with pytest.raises(AsmParseError):
        parse_line("\tbogus\t%rax")


def test_parse_gas_reports_line_number():
    with pytest.raises(AsmParseError) as exc:
        parse_gas("nop\nnop\nbogus %rax\n")
    assert "line 3" in str(exc.value)


# -- round trips -----------------------------------------------------------------

@pytest.mark.parametrize("arch", [GENERIC_SSE, SANDYBRIDGE, HASWELL,
                                  PILEDRIVER], ids=lambda a: a.name)
@pytest.mark.parametrize("kernel", ["gemm", "dot", "axpy", "gemv"])
def test_emitted_text_reparses_identically(arch, kernel):
    gk = Augem(arch=arch).generate_named(kernel)
    parsed = [i for i in parse_gas_function(gk.asm_text)
              if isinstance(i, Instr)]
    original = [i for i in gk.items if isinstance(i, Instr)]
    assert len(parsed) == len(original)
    for p, o in zip(parsed, original):
        assert p.mnemonic == o.mnemonic
        assert p.operands == o.operands


def test_parsed_text_executes_in_emulator(rng):
    gk = Augem(arch=HASWELL).generate_named("axpy")
    items = parse_gas_function(gk.asm_text)
    n = 32
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    ref = y + 2.0 * x
    call_items(items, [n, 2.0, x, y])
    assert np.allclose(y, ref)
