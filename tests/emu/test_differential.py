"""Differential testing: emulator vs. real silicon, and a tuner-space sweep.

Two layers:

1. **Fuzzing** (needs a toolchain): random straight-line vector-instruction
   sequences are wrapped in a function that loads all vector registers from
   an input buffer and stores them back to an output buffer. The function is
   (a) assembled with gcc and executed natively, (b) interpreted by the
   emulator. The resulting register files must agree **bit for bit** — this
   pins the emulator's semantics for every instruction the generator can
   emit, on whatever subset the host supports.

2. **Tuning-space sweep** (emulator only, runs everywhere — including the
   FMA4 arch no Intel host can execute): the tuner's smallest and largest
   unroll configurations per kernel family are generated for *every* ISA
   mapping and executed under the emulator against the numpy reference, so
   each instruction-selection path of Tables 1-4 (SSE, AVX, FMA3, FMA4,
   Vdup and Shuf, packed stores, reductions) is exercised end to end.
"""

import ctypes
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.compiler import build_shared
from repro.core.framework import Augem
from repro.emu.machine import Machine
from repro.emu.memory import Memory
from repro.emu.run import call_kernel
from repro.isa.arch import detect_host
from repro.isa.gas import emit_function
from repro.isa.instructions import Instr, instr
from repro.isa.operands import Imm, Mem
from repro.isa.registers import GP, xmm, ymm
from repro.tuning.space import candidates_for

from tests.conftest import ALL_ARCH_SPECS, gemm_ref_packed, needs_cc

_HOST = detect_host()
_HAS_AVX = _HOST.simd == "avx"
_HAS_FMA = _HOST.fma == "fma3"

RDI, RSI = GP["rdi"], GP["rsi"]

# (mnemonic, operand shape) — shapes: R=vec reg, I=imm byte
_SSE_OPS = [
    ("addpd", "RR"), ("subpd", "RR"), ("mulpd", "RR"),
    ("movapd", "RR"), ("unpcklpd", "RR"), ("unpckhpd", "RR"),
    ("haddpd", "RR"), ("xorpd", "RR"),
    ("shufpd", "IRR"), ("addsd", "RR"), ("mulsd", "RR"),
    ("subsd", "RR"), ("movsd", "RR"),
]
_AVX_OPS = [
    ("vaddpd", "RRR"), ("vsubpd", "RRR"), ("vmulpd", "RRR"),
    ("vxorpd", "RRR"), ("vunpcklpd", "RRR"), ("vunpckhpd", "RRR"),
    ("vhaddpd", "RRR"), ("vaddsd", "RRR"), ("vmulsd", "RRR"),
    ("vsubsd", "RRR"),
    ("vshufpd", "IRRR"), ("vblendpd", "IRRR"), ("vpermilpd", "IRR"),
    ("vperm2f128", "IRRR"),
    ("vextractf128", "IRR"), ("vinsertf128", "IRRR"),
    ("vmovapd", "RRx"),
]
_FMA_OPS = [("vfmadd231pd", "RRR"), ("vfmadd213pd", "RRR"),
            ("vfmadd132pd", "RRR"), ("vfmadd231sd", "RRR")]

N_REGS = 8  # registers 0..7 participate; fewer collisions, denser deps


def _op_pool():
    pool = list(_SSE_OPS)
    if _HAS_AVX:
        pool += _AVX_OPS
    if _HAS_FMA:
        pool += _FMA_OPS
    return pool


@st.composite
def instruction_sequences(draw):
    pool = _op_pool()
    n = draw(st.integers(min_value=1, max_value=20))
    out = []
    for _ in range(n):
        mnemonic, shape = draw(st.sampled_from(pool))
        wide = mnemonic.startswith("v") and not mnemonic.endswith("sd")
        ops = []
        for s in shape:
            if s == "I":
                ops.append(Imm(draw(st.integers(0, 15))))
            elif s in ("R", "x"):
                idx = draw(st.integers(0, N_REGS - 1))
                if mnemonic == "vextractf128":
                    # imm, ymm src, xmm dst
                    ops.append(ymm(idx) if len(ops) == 1 else xmm(idx))
                elif mnemonic == "vinsertf128":
                    # imm, xmm src2, ymm src1, ymm dst
                    ops.append(xmm(idx) if len(ops) == 1 else ymm(idx))
                elif mnemonic.endswith("sd") and mnemonic.startswith("v"):
                    ops.append(xmm(idx))
                elif mnemonic.startswith("v") and wide:
                    ops.append(ymm(idx))
                else:
                    ops.append(xmm(idx))
        if mnemonic == "vmovapd":  # emitted as 2-operand
            ops = ops[:2]
        out.append(Instr(mnemonic, tuple(ops)))
    return out


def _wrap(seq):
    """Load ymm0..7 from (rdi), run seq, store ymm0..7 to (rsi)."""
    items = []
    mv = "vmovupd" if _HAS_AVX else "movupd"
    width = 32 if _HAS_AVX else 16
    for i in range(N_REGS):
        reg = ymm(i) if _HAS_AVX else xmm(i)
        items.append(instr(mv, Mem(base=RDI, disp=width * i), reg))
    items.extend(seq)
    for i in range(N_REGS):
        reg = ymm(i) if _HAS_AVX else xmm(i)
        items.append(instr(mv, reg, Mem(base=RSI, disp=width * i)))
    if _HAS_AVX:
        items.append(instr("vzeroupper"))
    items.append(instr("ret"))
    return items


_counter = [0]


def _run_native(items, inputs: np.ndarray) -> np.ndarray:
    _counter[0] += 1
    name = f"fuzz{_counter[0]}"
    asm = emit_function(name, items)
    so = build_shared({f"{name}.S": asm}, tag=name)
    fn = so.symbol(name)
    dp = ctypes.POINTER(ctypes.c_double)
    fn.restype = None
    fn.argtypes = [dp, dp]
    out = np.zeros_like(inputs)
    fn(inputs.ctypes.data_as(dp), out.ctypes.data_as(dp))
    return out


def _run_emulated(items, inputs: np.ndarray) -> np.ndarray:
    from repro.emu.run import call_items

    out = np.zeros_like(inputs)
    call_items(items, [inputs, out])
    return out


@needs_cc
@given(seq=instruction_sequences(),
       seed=st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_emulator_matches_silicon_bitwise(seq, seed):
    lanes = 4 if _HAS_AVX else 2
    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal(N_REGS * lanes)
    items = _wrap(seq)
    native = _run_native(items, inputs)
    emulated = _run_emulated(items, inputs)
    np.testing.assert_array_equal(
        native.view(np.uint64), emulated.view(np.uint64),
        err_msg="\n".join(str(i) for i in seq),
    )


@needs_cc
def test_differential_harness_detects_differences():
    """Sanity: the harness itself can tell two sequences apart."""
    lanes = 4 if _HAS_AVX else 2
    inputs = np.arange(N_REGS * lanes, dtype=np.float64) + 1.0
    add = _wrap([instr("addsd", xmm(0), xmm(1))])
    mul = _wrap([instr("mulsd", xmm(0), xmm(1))])
    assert not np.array_equal(_run_native(add, inputs),
                              _run_native(mul, inputs))


# ---------------------------------------------------------------------------
# Tuning-space sweep under the emulator (every ISA, no toolchain needed)
# ---------------------------------------------------------------------------


def _edge_candidates(kernel, arch):
    """The extremes of the tuner's space: smallest and largest unroll shape,
    plus one prefetching variant (the emulator treats prefetch as a nop,
    so its addressing code still executes)."""
    cands = candidates_for(kernel, arch)
    plain = [c for c in cands if c.config.prefetch_distance is None]
    pf = [c for c in cands if c.config.prefetch_distance is not None]
    picked = [plain[0], plain[-1]] + pf[-1:]
    seen, out = set(), []
    for c in picked:
        if c.describe() not in seen:
            seen.add(c.describe())
            out.append(c)
    return out


def _sweep_cases():
    for arch in ALL_ARCH_SPECS:
        for kernel in ("gemm", "gemv", "axpy", "dot"):
            for cand in _edge_candidates(kernel, arch):
                yield pytest.param(
                    arch, kernel, cand,
                    id=f"{arch.name}-{kernel}-{cand.describe()}")
        # the Shuf vectorization method (n x n grid) per ISA
        for cand in candidates_for("gemm", arch, layout="shuf"):
            if cand.strategy == "shuf":
                yield pytest.param(
                    arch, "gemm_shuf", cand,
                    id=f"{arch.name}-gemm_shuf-{cand.describe()}")


def _unroll_factor(config, var):
    for v, f in config.unroll_jam + config.unroll:
        if v == var:
            return f
    return 1


@pytest.mark.parametrize("arch,kernel,cand", list(_sweep_cases()))
def test_tuner_config_sweep_under_emulator(arch, kernel, cand, rng):
    gk = Augem(arch=arch).generate_named(kernel, config=cand.config,
                                         strategy=cand.strategy,
                                         name="sweep_kernel")
    cfg = cand.config
    if kernel in ("gemm", "gemm_shuf"):
        mu = _unroll_factor(cfg, "i")
        nu = _unroll_factor(cfg, "j")
        ku = _unroll_factor(cfg, "l")
        mc, nc, kc = mu, 2 * nu, 2 * math.lcm(ku, 4)
        ldc = mc + 4
        a = rng.standard_normal(kc * mc)
        b = rng.standard_normal(nc * kc)
        c = rng.standard_normal(ldc * nc)
        ref = gemm_ref_packed(a, b, c, mc, nc, kc, ldc,
                              layout="shuf" if kernel == "gemm_shuf"
                              else "dup")
        call_kernel(gk, [mc, nc, kc, a, b, c, ldc])
        np.testing.assert_allclose(c, ref, rtol=1e-12, atol=1e-12)
    elif kernel == "gemv":
        u = _unroll_factor(cfg, "j")
        m, n, lda = 2 * u, 5, 2 * u + 4
        a = rng.standard_normal(n * lda)
        x = rng.standard_normal(n)
        y = rng.standard_normal(m)
        ref = y + a.reshape(n, lda)[:, :m].T @ x
        call_kernel(gk, [m, n, a, lda, x, y])
        np.testing.assert_allclose(y, ref, rtol=1e-12, atol=1e-12)
    elif kernel == "axpy":
        u = _unroll_factor(cfg, "i")
        n = 2 * u
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        ref = y + 1.5 * x
        call_kernel(gk, [n, 1.5, x, y])
        np.testing.assert_allclose(y, ref, rtol=1e-12, atol=1e-12)
    else:  # dot
        u = _unroll_factor(cfg, "i")
        n = 2 * u
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        got = call_kernel(gk, [n, x, y])
        np.testing.assert_allclose(got, x @ y, rtol=1e-10)
