"""Emulated-memory tests."""

import numpy as np
import pytest

from repro.emu.memory import EmuMemoryError, Memory


def test_bind_and_read_back():
    mem = Memory(1 << 14)
    a = np.array([1.5, 2.5, 3.5])
    addr = mem.bind(a)
    assert addr % 64 == 0 or (addr - Memory.BASE) % 64 == 0
    got = mem.read_f64(addr, 3)
    assert np.array_equal(got, a)


def test_sync_back_propagates_mutations():
    mem = Memory(1 << 14)
    a = np.zeros(4)
    addr = mem.bind(a)
    mem.write_f64(addr + 8, np.array([9.0]))
    mem.sync_back()
    assert a[1] == 9.0 and a[0] == 0.0


def test_bind_preserves_distinct_arrays():
    mem = Memory(1 << 14)
    a = np.array([1.0])
    b = np.array([2.0])
    aa, bb = mem.bind(a), mem.bind(b)
    assert aa != bb
    assert mem.read_f64(aa)[0] == 1.0
    assert mem.read_f64(bb)[0] == 2.0


def test_u64_roundtrip_and_wrap():
    mem = Memory(1 << 12)
    addr = mem.alloc(16)
    mem.write_u64(addr, -1)
    assert mem.read_u64(addr) == 2**64 - 1


def test_out_of_range_access_raises():
    mem = Memory(1 << 12)
    with pytest.raises(EmuMemoryError):
        mem.read_u64(Memory.BASE - 4096)
    with pytest.raises(EmuMemoryError):
        mem.read_f64(Memory.BASE + (1 << 12), 1)


def test_arena_exhaustion():
    mem = Memory(1 << 10)
    with pytest.raises(EmuMemoryError):
        mem.bind(np.zeros(1 << 12))


def test_non_contiguous_rejected():
    mem = Memory(1 << 12)
    a = np.zeros((4, 4))[:, ::2]
    with pytest.raises(EmuMemoryError):
        mem.bind(a)


def test_alloc_is_aligned_and_disjoint():
    mem = Memory(1 << 12)
    a = mem.alloc(24)
    b = mem.alloc(24)
    assert b >= a + 24
