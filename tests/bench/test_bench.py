"""Benchmark harness tests (tiny sizes: correctness of the machinery)."""

import json

import numpy as np
import pytest

from repro.bench.figures import fig18_dgemm, fig20_daxpy
from repro.bench.harness import (
    make_atlas_proxy_library,
    make_augem_library,
    make_goto_proxy_library,
    make_naive_library,
    make_vendor_library,
    standard_lineup,
)
from repro.bench.report import FigureResult, Series, TableResult
from repro.bench.tables import table5_platform, table6_level3

from tests.conftest import needs_cc

pytestmark = needs_cc


@pytest.fixture(scope="module")
def libs(rng):
    """Every adapter, validated for correctness on a small problem."""
    lineup = standard_lineup(include_naive=True)
    a = rng.standard_normal((24, 16))
    b = rng.standard_normal((16, 12))
    x = rng.standard_normal(50)
    y = rng.standard_normal(50)
    for lib in lineup:
        assert np.allclose(lib.dgemm(a, b), a @ b), lib.name
        assert np.allclose(lib.dgemv_t(a, rng.standard_normal(24)).shape, (16,))
        assert np.isclose(lib.ddot(x, y), x @ y), lib.name
        yy = y.copy()
        lib.daxpy(2.0, x, yy)
        assert np.allclose(yy, y + 2.0 * x), lib.name
    return lineup


def test_lineup_has_four_libraries(libs):
    names = [lib.name for lib in libs]
    assert len(names) == 5  # incl. the naive floor
    assert names[0] == "AUGEM"


def test_level3_adapters_correct(rng, libs):
    n, k = 20, 12
    a = rng.standard_normal((n, k))
    l = np.tril(rng.standard_normal((n, n))) + 4 * np.eye(n)
    b = rng.standard_normal((n, k))
    for lib in libs:
        if lib.dsyrk is None:
            continue
        got = np.tril(lib.dsyrk(a))
        assert np.allclose(got, np.tril(a @ a.T)), lib.name
        assert np.allclose(lib.dtrmm(l, b), np.tril(l) @ b), lib.name


def test_fig_sweep_produces_all_series(libs):
    result = fig20_daxpy(libraries=libs[:2], sizes=[1000, 2000], batches=1)
    assert result.xs == [1000, 2000]
    assert len(result.series) == 2
    for s in result.series:
        assert set(s.points) == {1000, 2000}
        assert all(v > 0 for v in s.points.values())


def test_fig18_small(libs):
    result = fig18_dgemm(libraries=libs[:2], sizes=[64], batches=1)
    assert result.series[0].points[64] > 0
    text = result.render()
    assert "fig18" in text and "advantage" in text


def test_table5_renders():
    t = table5_platform()
    assert "Platform" in t.title
    text = t.render()
    assert "SIMD" in text


def test_table6_small(libs):
    t = table6_level3(libraries=libs[:2], sizes=[48], ger_sizes=[64],
                      batches=1)
    assert len(t.rows) == 6  # SYMM SYRK SYR2K TRMM TRSM GER
    assert t.rows[0][0] == "SYMM"
    for row in t.rows:
        assert float(row[1]) > 0  # AUGEM column populated


def test_figure_json_round_trip(tmp_path):
    fig = FigureResult("figX", "t", "x", [1, 2],
                       [Series("L", {1: 10.0, 2: 20.0})])
    path = fig.save(tmp_path)
    data = json.loads(path.read_text())
    assert data["series"]["L"]["1"] == 10.0


def test_table_save(tmp_path):
    t = TableResult("tabX", "t", ["a", "b"], [["1", "2"]])
    path = t.save(tmp_path)
    assert json.loads(path.read_text())["rows"] == [["1", "2"]]


def test_series_mean():
    s = Series("L", {1: 10.0, 2: 30.0})
    assert s.mean() == 20.0
    assert Series("E").mean() == 0.0
