"""Micro-kernel comparison harness test (machinery, tiny rounds)."""

import pytest

from repro.bench.microkernel import microkernel_table

from tests.conftest import needs_cc

pytestmark = needs_cc


def test_microkernel_table_structure():
    t = microkernel_table(rounds=2)
    assert t.table_id == "microkernel"
    assert len(t.rows) == 3
    names = [r[0] for r in t.rows]
    assert any("AUGEM" in n for n in names)
    assert any("OpenBLAS" in n for n in names)
    # OpenBLAS's self-ratio is exactly 1
    ob_row = next(r for r in t.rows if "OpenBLAS" in r[0])
    assert float(ob_row[2]) == 1.0
    # every contender produced a positive rate
    assert all(float(r[1]) > 0 for r in t.rows)
