"""AugemBLAS facade tests."""

import numpy as np
import pytest

from repro.blas.api import AugemBLAS, default_blas
from repro.core.framework import default_config
from repro.isa.arch import GENERIC_SSE, detect_host
from repro.transforms.pipeline import OptimizationConfig

from tests.conftest import needs_cc

pytestmark = needs_cc


def test_default_blas_is_singleton():
    assert default_blas() is default_blas()


def test_lazy_kernel_construction():
    blas = AugemBLAS()
    assert blas._gemm is None
    blas.dgemm(np.eye(4), np.eye(4))
    assert blas._gemm is not None
    assert blas._gemv is None  # untouched routines stay ungenerated


def test_custom_config_used(rng):
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 4)), unroll=(("l", 2),))
    blas = AugemBLAS(configs={"gemm": cfg})
    a = rng.standard_normal((20, 20))
    b = rng.standard_normal((20, 20))
    assert np.allclose(blas.dgemm(a, b), a @ b)
    assert blas.gemm_driver.kernel.generated.config == cfg


def test_sse_arch_blas(rng):
    blas = AugemBLAS(arch=GENERIC_SSE)
    a = rng.standard_normal((24, 24))
    b = rng.standard_normal((24, 24))
    assert np.allclose(blas.dgemm(a, b), a @ b)
    x = rng.standard_normal(50)
    y = rng.standard_normal(50)
    assert np.isclose(blas.ddot(x, y), x @ y)


def test_all_routines_exposed(rng):
    blas = AugemBLAS()
    n, k = 20, 12
    a = rng.standard_normal((n, n))
    bk = rng.standard_normal((n, k))
    ak = rng.standard_normal((n, k))
    l = np.tril(rng.standard_normal((n, n))) + 3 * np.eye(n)
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    assert blas.dgemm(a, a).shape == (n, n)
    assert blas.dgemv(a, x, trans=True).shape == (n,)
    assert isinstance(blas.ddot(x, y), float)
    blas.daxpy(1.0, x, y)
    assert blas.dsymm(a, bk).shape == (n, k)
    assert blas.dsyrk(ak).shape == (n, n)
    assert blas.dsyr2k(ak, ak).shape == (n, n)
    assert blas.dtrmm(l, bk).shape == (n, k)
    assert blas.dtrsm(l, bk).shape == (n, k)
    m = np.ascontiguousarray(rng.standard_normal((n, n)))
    blas.dger(1.0, x, y[:n], m)


def test_shuf_layout_blas(rng):
    blas = AugemBLAS(layout="shuf")
    a = rng.standard_normal((16, 16))
    b = rng.standard_normal((16, 16))
    assert np.allclose(blas.dgemm(a, b), a @ b)
