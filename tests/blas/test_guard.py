"""Argument-guard tests: the xerbla layer and the hardened facade's use
of it.  Facade-level tests pin the chain to the reference tier so they
run (and validate the full entry-point paths) without a toolchain."""

import numpy as np
import pytest

from repro.blas.api import AugemBLAS
from repro.blas.dispatch import reset_dispatch_state
from repro.blas.guard import ArgGuard, BlasArgumentError
from repro.blas.reference import ref_gemm, ref_gemv
from repro.isa.arch import FORCE_ARCH_ENV, reset_host_cache


# -- ArgGuard in isolation --------------------------------------------------

def test_bad_nan_policy_rejected_at_construction():
    with pytest.raises(ValueError, match="nan_policy"):
        ArgGuard(nan_policy="ignore")


def test_reject_carries_routine_and_param():
    g = ArgGuard()
    with pytest.raises(BlasArgumentError) as exc:
        g.matrix("dgemm", "a", np.zeros((2, 2, 2)))
    assert exc.value.routine == "dgemm"
    assert exc.value.param == "a"
    assert "dgemm: parameter 'a'" in str(exc.value)
    assert g.stats.rejections == 1


def test_matrix_rejections():
    g = ArgGuard()
    with pytest.raises(BlasArgumentError, match="3-D"):
        g.matrix("dgemm", "a", np.zeros((2, 2, 2)))
    with pytest.raises(BlasArgumentError, match="expected shape"):
        g.matrix("dgemm", "c", np.zeros((2, 3)), shape=(3, 2))
    with pytest.raises(BlasArgumentError, match="non-numeric"):
        g.matrix("dgemm", "a", np.array([["x", "y"]], dtype=object))
    with pytest.raises(BlasArgumentError, match="complex"):
        g.matrix("dgemm", "a", np.zeros((2, 2), dtype=complex))
    with pytest.raises(BlasArgumentError, match="not convertible"):
        g.matrix("dgemm", "a", [[1.0, 2.0], [3.0]])


def test_vector_length_check():
    g = ArgGuard()
    with pytest.raises(BlasArgumentError, match="expected length 4"):
        g.vector("daxpy", "x", np.zeros(3), length=4)


def test_scalar_rejects_non_scalars():
    g = ArgGuard()
    with pytest.raises(BlasArgumentError, match="real scalar"):
        g.scalar("dgemm", "alpha", np.zeros(3))
    assert g.scalar("dgemm", "alpha", 2) == 2.0


def test_coercions_are_counted():
    g = ArgGuard()
    ok = np.zeros((3, 3))
    assert g.matrix("dgemm", "a", ok) is ok  # no copy, no count
    assert g.stats.coercions == 0
    g.matrix("dgemm", "a", np.zeros((3, 3), dtype=np.int64))
    g.matrix("dgemm", "a", np.asfortranarray(np.ones((3, 2))))
    assert g.stats.coercions == 2


def test_inplace_rejects_anything_not_kernel_ready():
    g = ArgGuard()
    with pytest.raises(BlasArgumentError, match="numpy array"):
        g.inplace_vector("daxpy", "y", [1.0, 2.0])
    with pytest.raises(BlasArgumentError, match="C-contiguous float64"):
        g.inplace_vector("daxpy", "y", np.zeros(4, dtype=np.float32))
    with pytest.raises(BlasArgumentError, match="C-contiguous float64"):
        g.inplace_vector("daxpy", "y", np.zeros(8)[::2])
    locked = np.zeros(4)
    locked.flags.writeable = False
    with pytest.raises(BlasArgumentError, match="read-only"):
        g.inplace_vector("daxpy", "y", locked)
    with pytest.raises(BlasArgumentError, match="2-D"):
        g.inplace_matrix("dger", "a", np.zeros(4))
    assert g.stats.coercions == 0  # in-place operands are never copied


def test_unalias_copies_overlapping_reads():
    g = ArgGuard()
    a = np.arange(16.0).reshape(4, 4)
    row = a[1]
    copied = g.unalias("dger", out=a, read=row)
    assert copied is not row and np.array_equal(copied, row)
    assert g.stats.alias_copies == 1
    disjoint = np.zeros(4)
    assert g.unalias("dger", out=a, read=disjoint) is disjoint
    # identical object: elementwise routines are self-alias safe
    assert g.unalias("daxpy", out=row, read=row) is row
    assert g.stats.alias_copies == 1


def test_nan_policy_raise_rejects_nonfinite():
    g = ArgGuard(nan_policy="raise")
    with pytest.raises(BlasArgumentError, match="NaN/Inf"):
        g.matrix("dgemm", "a", np.array([[1.0, np.nan]]))
    with pytest.raises(BlasArgumentError, match="non-finite"):
        g.scalar("dgemm", "alpha", np.inf)
    # default policy propagates
    propagating = ArgGuard()
    arr = np.array([np.inf, np.nan])
    assert propagating.vector("daxpy", "x", arr) is arr


# -- through the hardened facade (reference tier: no toolchain needed) ------

@pytest.fixture
def ref_blas(monkeypatch):
    monkeypatch.setenv(FORCE_ARCH_ENV, "reference")
    reset_host_cache()
    reset_dispatch_state()
    yield AugemBLAS()
    reset_host_cache()
    reset_dispatch_state()


def test_facade_rejects_bad_arguments(ref_blas):
    with pytest.raises(BlasArgumentError, match="inner dimensions"):
        ref_blas.dgemm(np.zeros((2, 3)), np.zeros((4, 2)))
    with pytest.raises(BlasArgumentError, match="daxpy"):
        ref_blas.daxpy(1.0, np.zeros(4), [0.0] * 4)
    with pytest.raises(BlasArgumentError, match="must be square"):
        ref_blas.dtrsm(np.zeros((3, 2)), np.zeros((3, 2)))
    assert ref_blas.guard.stats.rejections == 3


def test_facade_zero_dim_calls_short_circuit(ref_blas):
    c = np.arange(6.0).reshape(2, 3)
    out = ref_blas.dgemm(np.zeros((2, 0)), np.zeros((0, 3)), c, beta=2.0)
    assert np.array_equal(out, 2.0 * c)  # k == 0 is still beta*C
    assert ref_blas.dgemm(np.zeros((0, 4)), np.zeros((4, 3))).shape == (0, 3)
    assert ref_blas.ddot(np.zeros(0), np.zeros(0)) == 0.0
    y = np.zeros(0)
    assert ref_blas.daxpy(2.0, np.zeros(0), y) is y
    assert ref_blas.guard.stats.zero_dim_returns == 4


def test_facade_self_aliased_axpy(ref_blas):
    x = np.arange(1.0, 9.0)
    got = ref_blas.daxpy(2.0, x, x)
    assert np.allclose(got, 3.0 * np.arange(1.0, 9.0))


def test_facade_dger_with_row_of_output(ref_blas):
    a = np.arange(9.0).reshape(3, 3).copy()
    x = a[1]  # aliases the updated matrix
    y = np.array([1.0, 2.0, 3.0])
    expected = a + 0.5 * np.outer(a[1].copy(), y)
    ref_blas.dger(0.5, x, y, a)
    assert np.allclose(a, expected)
    assert ref_blas.guard.stats.alias_copies == 1


def test_facade_coerces_noncontiguous_inputs(ref_blas):
    rng = np.random.default_rng(7)
    a = np.asfortranarray(rng.standard_normal((6, 5)))
    b = rng.standard_normal((10, 4))[::2]  # strided view
    assert np.allclose(ref_blas.dgemm(a, b), ref_gemm(a, b))
    x = rng.standard_normal(10)[::2]
    assert np.allclose(ref_blas.dgemv(a, x), ref_gemv(a, x))
    assert ref_blas.guard.stats.coercions >= 2


def test_facade_nan_policy_raise(monkeypatch):
    monkeypatch.setenv(FORCE_ARCH_ENV, "reference")
    reset_host_cache()
    reset_dispatch_state()
    try:
        blas = AugemBLAS(nan_policy="raise")
        a = np.ones((3, 3))
        a[1, 1] = np.nan
        with pytest.raises(BlasArgumentError, match="nan_policy"):
            blas.dgemm(a, np.ones((3, 3)))
    finally:
        reset_host_cache()
        reset_dispatch_state()
