"""GEMV / AXPY / DOT / GER driver tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.gemv import make_gemv
from repro.blas.ger import make_ger
from repro.blas.level1 import make_axpy, make_dot

from tests.conftest import needs_cc

pytestmark = needs_cc


@pytest.fixture(scope="module")
def axpy():
    return make_axpy()


@pytest.fixture(scope="module")
def dot():
    return make_dot()


@pytest.fixture(scope="module")
def gemv():
    return make_gemv()


# -- AXPY ------------------------------------------------------------------

@pytest.mark.parametrize("n", [1, 3, 16, 17, 100, 1000])
def test_axpy_lengths(axpy, rng, n):
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    ref = y + 2.5 * x
    axpy(2.5, x, y)
    assert np.allclose(y, ref)


def test_axpy_negative_alpha(axpy, rng):
    x = rng.standard_normal(33)
    y = rng.standard_normal(33)
    ref = y - 1.25 * x
    axpy(-1.25, x, y)
    assert np.allclose(y, ref)


def test_axpy_mismatched_lengths(axpy):
    with pytest.raises(ValueError):
        axpy(1.0, np.zeros(4), np.zeros(5))


def test_axpy_requires_contiguous_y(axpy):
    y = np.zeros((4, 4))[:, 0]
    with pytest.raises(ValueError):
        axpy(1.0, np.zeros(4), y)


# -- DOT -----------------------------------------------------------------------

@pytest.mark.parametrize("n", [1, 2, 15, 16, 64, 999])
def test_dot_lengths(dot, rng, n):
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    assert np.isclose(dot(x, y), x @ y)


def test_dot_empty(dot):
    assert dot(np.zeros(0), np.zeros(0)) == 0.0


def test_dot_accepts_non_contiguous_via_copy(dot, rng):
    big = rng.standard_normal(64)
    x = big[::2]
    y = rng.standard_normal(32)
    assert np.isclose(dot(x, y), x @ y)


# -- GEMV ----------------------------------------------------------------------

@pytest.mark.parametrize("m,n", [(8, 8), (33, 17), (64, 128), (5, 1), (1, 5)])
def test_gemv_trans(gemv, rng, m, n):
    a = rng.standard_normal((m, n))
    x = rng.standard_normal(m)
    assert np.allclose(gemv(a, x, trans=True), a.T @ x)


def test_gemv_no_trans(gemv, rng):
    a = rng.standard_normal((20, 12))
    x = rng.standard_normal(12)
    assert np.allclose(gemv(a, x, trans=False), a @ x)


def test_gemv_alpha_beta(gemv, rng):
    a = rng.standard_normal((16, 16))
    x = rng.standard_normal(16)
    y = rng.standard_normal(16)
    got = gemv(a, x, y, alpha=2.0, beta=0.5, trans=True)
    assert np.allclose(got, 2.0 * a.T @ x + 0.5 * y)


def test_gemv_length_mismatch(gemv):
    with pytest.raises(ValueError):
        gemv(np.zeros((4, 5)), np.zeros(9), trans=True)


# -- GER ------------------------------------------------------------------------

def test_ger_matches_outer(rng):
    ger = make_ger()
    a = np.ascontiguousarray(rng.standard_normal((13, 9)))
    a0 = a.copy()
    x = rng.standard_normal(13)
    y = rng.standard_normal(9)
    ger(1.75, x, y, a)
    assert np.allclose(a, a0 + 1.75 * np.outer(x, y))


def test_ger_zero_coefficient_rows_skipped(rng):
    ger = make_ger()
    a = np.zeros((3, 4))
    x = np.array([0.0, 1.0, 0.0])
    y = np.ones(4)
    ger(1.0, x, y, a)
    assert np.allclose(a[0], 0) and np.allclose(a[1], 1) and np.allclose(a[2], 0)


def test_ger_shape_validation(rng):
    ger = make_ger()
    with pytest.raises(ValueError):
        ger(1.0, np.zeros(3), np.zeros(4), np.zeros((4, 4)))


# -- property: drivers agree with numpy on random input ----------------------------

@given(n=st.integers(1, 200), seed=st.integers(0, 2**31), alpha=st.floats(
    min_value=-10, max_value=10, allow_nan=False))
@settings(max_examples=25, deadline=None)
def test_axpy_property(n, seed, alpha):
    axpy = make_axpy()
    r = np.random.default_rng(seed)
    x = r.standard_normal(n)
    y = r.standard_normal(n)
    ref = y + alpha * x
    axpy(alpha, x, y)
    assert np.allclose(y, ref)
