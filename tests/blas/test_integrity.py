"""ABFT integrity layer: checksum math, containment ladder, quarantine.

Four layers of proof:

- **checksum math** (hypothesis) — :func:`verify_gemm_tile` never flags
  an exactly-consistent tile (no false positives, any dtype/layout) and
  always flags a perturbation comfortably above its tolerance;
- **clean-path conformance** — the emulated GEMM driver under
  ``integrity="full"`` returns bit-correct results with zero mismatches
  at every thread count (verification must be invisible when nothing is
  wrong);
- **containment ladder** — an injected ``corrupt`` fault is detected,
  retried (transient faults heal), reference-recomputed (persistent
  faults are contained), and the caller always receives correct bits;
- **strike accounting** — repeated corruption verdicts quarantine the
  kernel by body hash in the persistent store, demote its tier for the
  process, and fire the facade's rebuild callback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.cache import get_cache, reset_cache
from repro.backend.faults import (FaultPlan, clear_fault_plan, corrupt_tile,
                                  install_fault_plan)
from repro.blas import dispatch
from repro.blas.integrity import (DEFAULT_SAMPLE_PERIOD, IntegrityChecker,
                                  IntegrityReport, STATS,
                                  emulated_gemm_driver, resolve_integrity,
                                  reset_integrity_state, strike_counts,
                                  verify_gemm_tile, wrap_driver)
from repro.core.framework import quarantine_key


@pytest.fixture(autouse=True)
def _clean_integrity_state():
    reset_integrity_state()
    clear_fault_plan()
    yield
    reset_integrity_state()
    clear_fault_plan()


# -- mode resolution ---------------------------------------------------------


def test_resolve_defaults_off():
    assert resolve_integrity(environ={}) == ("off", DEFAULT_SAMPLE_PERIOD)


def test_resolve_env_and_explicit():
    env = {"REPRO_INTEGRITY": "sample:8"}
    assert resolve_integrity(environ=env) == ("sample", 8)
    # explicit beats env
    assert resolve_integrity("full", environ=env)[0] == "full"
    assert resolve_integrity("off", environ=env)[0] == "off"


def test_resolve_malformed_env_degrades_silently():
    for raw in ("bogus", "sample:0", "sample:x", "full:2"):
        assert resolve_integrity(
            environ={"REPRO_INTEGRITY": raw})[0] == "off"


def test_resolve_malformed_explicit_raises():
    for raw in ("bogus", "sample:0", "full:2"):
        with pytest.raises(ValueError):
            resolve_integrity(raw)


def test_sampling_is_deterministic():
    checker = IntegrityChecker(mode="sample", sample_period=4)
    pattern = [checker.decide() for _ in range(8)]
    assert pattern == [True, False, False, False, True, False, False, False]
    # per-request override ignores the configured mode
    assert checker.decide("full") is True
    assert checker.decide("off") is False


# -- checksum math (property-based) ------------------------------------------

_DIMS = st.integers(min_value=1, max_value=7)


def _tile_problem(rng, im, jn, k, dtype, order):
    a_sub = rng.standard_normal((im, k)).astype(dtype)
    b_sub = rng.standard_normal((k, jn)).astype(dtype)
    alpha = float(rng.uniform(-2.0, 2.0)) or 1.0
    tile = np.asarray((alpha * (a_sub.astype(np.float64)
                                @ b_sub.astype(np.float64))).T,
                      dtype=dtype, order=order)
    return tile, a_sub, b_sub, alpha


@settings(max_examples=60, deadline=None)
@given(im=_DIMS, jn=_DIMS, k=_DIMS,
       dtype=st.sampled_from([np.float64, np.float32]),
       order=st.sampled_from(["C", "F"]),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_no_false_positive_on_exact_tile(im, jn, k, dtype, order, seed):
    rng = np.random.default_rng(seed)
    tile, a_sub, b_sub, alpha = _tile_problem(rng, im, jn, k, dtype, order)
    assert verify_gemm_tile(tile, a_sub, b_sub, alpha=alpha)


@settings(max_examples=60, deadline=None)
@given(im=_DIMS, jn=_DIMS, k=_DIMS,
       dtype=st.sampled_from([np.float64, np.float32]),
       order=st.sampled_from(["C", "F"]),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_detects_injected_perturbation(im, jn, k, dtype, order, seed):
    rng = np.random.default_rng(seed)
    tile, a_sub, b_sub, alpha = _tile_problem(rng, im, jn, k, dtype, order)
    # a perturbation far above any float32/float64 checksum tolerance
    j = int(rng.integers(jn))
    i = int(rng.integers(im))
    tile[j, i] += dtype(1.0 + float(np.abs(tile).max()))
    assert not verify_gemm_tile(tile, a_sub, b_sub, alpha=alpha)


def test_nonfinite_inputs_are_unverifiable_not_corrupt():
    a_sub = np.array([[np.nan, 1.0]])
    b_sub = np.ones((2, 3))
    tile = (a_sub @ b_sub).T
    assert verify_gemm_tile(tile, a_sub, b_sub)


def test_corrupt_tile_flip_is_silent_and_finite():
    for value in (0.0, 0.5, 1.0, 1.5, 1.999, 2.0, -3.7, 1e300, 1e-300):
        buf = np.full(4, value)
        corrupt_tile(buf)
        assert np.isfinite(buf[0])          # silent corruption, never NaN
        assert buf[0] != value or value == 0.0


# -- clean driver: verification is invisible --------------------------------


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_clean_emulated_gemm_no_false_positives(threads, rng):
    driver = emulated_gemm_driver(threads=threads)
    for m, n, k in [(1, 1, 1), (13, 7, 9), (16, 16, 16), (5, 17, 4)]:
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        report = IntegrityReport()
        got = driver(a, b, integrity_report=report)
        assert np.allclose(got, a @ b, rtol=1e-12, atol=1e-12), (m, n, k)
        assert report.checked
        assert report.tiles_checked > 0
        assert report.mismatches == 0, (m, n, k, threads)
    assert STATS.snapshot()["mismatches"] == 0
    assert not strike_counts()


def test_integrity_off_skips_checks(rng):
    driver = emulated_gemm_driver(threads=1, integrity="off")
    report = IntegrityReport()
    got = driver(rng.standard_normal((8, 8)), rng.standard_normal((8, 8)),
                 integrity_report=report)
    assert got.shape == (8, 8)
    assert not report.checked
    assert report.tiles_checked == 0


# -- containment ladder under injected corruption ----------------------------


@pytest.mark.parametrize("threads", [1, 2])
def test_transient_corruption_heals_on_retry(threads, rng):
    install_fault_plan(FaultPlan.parse("corrupt@#0:1"))
    driver = emulated_gemm_driver(threads=threads)
    a = rng.standard_normal((12, 8))
    b = rng.standard_normal((8, 12))
    report = IntegrityReport()
    got = driver(a, b, integrity_report=report)
    assert np.allclose(got, a @ b, rtol=1e-12, atol=1e-12)
    assert report.mismatches == 1
    assert report.retries == 1
    assert report.reference_recomputes == 0   # the retry healed it
    assert not strike_counts()                # no corruption verdict


@pytest.mark.parametrize("threads", [1, 2])
def test_persistent_corruption_contained_by_reference(threads, rng):
    install_fault_plan(FaultPlan.parse("corrupt@#0"))
    driver = emulated_gemm_driver(threads=threads)
    a = rng.standard_normal((12, 8))
    b = rng.standard_normal((8, 12))
    report = IntegrityReport()
    got = driver(a, b, integrity_report=report)
    # the caller still gets correct bits
    assert np.allclose(got, a @ b, rtol=1e-12, atol=1e-12)
    assert report.mismatches == 1
    assert report.retries == 1
    assert report.reference_recomputes == 1
    assert list(strike_counts().values()) == [1]


def test_corruption_without_integrity_goes_unnoticed(rng):
    # negative control: the fault model corrupts silently, so with
    # verification off the wrong bits reach the caller
    install_fault_plan(FaultPlan.parse("corrupt@#0"))
    driver = emulated_gemm_driver(threads=1, integrity="off")
    a = rng.standard_normal((12, 8))
    b = rng.standard_normal((8, 12))
    got = driver(a, b)
    assert not np.allclose(got, a @ b, rtol=1e-12, atol=1e-12)


# -- strikes -> quarantine -> demotion ---------------------------------------


def test_strikes_quarantine_and_demote(tmp_path, monkeypatch, rng):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    reset_cache()
    dispatch.reset_dispatch_state()
    rebuilt = []
    try:
        checker = IntegrityChecker(
            mode="full", strike_limit=2,
            on_quarantine=lambda family, verdict: rebuilt.append(
                (family, verdict)))
        driver = emulated_gemm_driver(threads=1, integrity=checker)
        install_fault_plan(FaultPlan.parse("corrupt@#0"))
        a = rng.standard_normal((12, 8))
        b = rng.standard_normal((8, 12))

        revision_before = dispatch.verdicts_revision()
        report = IntegrityReport()
        assert np.allclose(driver(a, b, integrity_report=report), a @ b)
        assert not report.quarantined          # strike 1 of 2

        report = IntegrityReport()
        assert np.allclose(driver(a, b, integrity_report=report), a @ b)
        gk = driver.kernel.generated
        assert report.quarantined == [gk.body_hash]

        # persistent quarantine record, keyed like the tuner's
        qkey = quarantine_key("gemm", gk.arch, gk)
        record = get_cache().load_quarantine(qkey)
        assert record is not None
        assert record["category"] == "integrity"

        # the tier is demoted and the verdict revision moved (so a serve
        # worker persists it for warm restarts)
        assert dispatch._TIER_VERDICTS[gk.arch.name][0] is False
        assert dispatch.verdicts_revision() > revision_before
        assert rebuilt and rebuilt[0][0] == "gemm"
        assert STATS.snapshot()["quarantines"] == 1

        # demotion survives a save/load round trip on the same toolchain
        store = tmp_path / "verdicts.json"
        assert dispatch.save_tier_verdicts(store) >= 1
        dispatch.reset_dispatch_state()
        assert dispatch.load_tier_verdicts(store) >= 1
        assert dispatch._TIER_VERDICTS[gk.arch.name][0] is False
    finally:
        dispatch.reset_dispatch_state()
        reset_cache()


def test_verdict_store_rejects_other_toolchain(tmp_path):
    dispatch.reset_dispatch_state()
    try:
        assert dispatch.demote_tier("generic_sse", "integrity: test")
        store = tmp_path / "verdicts.json"
        assert dispatch.save_tier_verdicts(store) == 1
        # tamper the toolchain fingerprint: the store must be ignored
        import json
        record = json.loads(store.read_text())
        record["toolchain"] = "cc-from-another-machine"
        store.write_text(json.dumps(record))
        dispatch.reset_dispatch_state()
        assert dispatch.load_tier_verdicts(store) == 0
        assert "generic_sse" not in dispatch._TIER_VERDICTS
    finally:
        dispatch.reset_dispatch_state()


# -- level-2/1 wrappers ------------------------------------------------------


class _FlakyGemv:
    """Wrong answer for the first ``bad`` calls, correct afterwards."""

    tier = "native"

    def __init__(self, bad: int) -> None:
        self.bad = bad
        self.calls = 0

    def __call__(self, a, x, y=None, alpha=1.0, beta=0.0, trans=False):
        self.calls += 1
        out = alpha * (np.asarray(a).T if trans else np.asarray(a)) @ x
        if y is not None and beta != 0.0:
            out = out + beta * np.asarray(y)
        if self.calls <= self.bad:
            out = out + 1000.0
        return out


def test_gemv_wrapper_retry_heals(rng):
    checker = IntegrityChecker(mode="full")
    driver = wrap_driver("gemv", _FlakyGemv(bad=1), checker)
    a = rng.standard_normal((9, 5))
    x = rng.standard_normal(5)
    report = IntegrityReport()
    got = driver(a, x, integrity_report=report)
    assert np.allclose(got, a @ x)
    assert report.mismatches == 1 and report.reference_recomputes == 0


def test_gemv_wrapper_reference_recompute(rng):
    checker = IntegrityChecker(mode="full")
    driver = wrap_driver("gemv", _FlakyGemv(bad=100), checker)
    a = rng.standard_normal((9, 5))
    x = rng.standard_normal(5)
    report = IntegrityReport()
    got = driver(a, x, integrity_report=report)
    assert np.allclose(got, a @ x)
    assert report.reference_recomputes == 1


def test_wrap_driver_skips_reference_and_gemm():
    checker = IntegrityChecker(mode="full")
    from repro.blas import reference as ref

    ref_driver = ref.ReferenceGemvDriver()
    assert wrap_driver("gemv", ref_driver, checker) is ref_driver
    gemm = emulated_gemm_driver(threads=1)
    assert wrap_driver("gemm", gemm, checker) is gemm


def test_wrapped_clean_driver_no_false_positives(rng):
    checker = IntegrityChecker(mode="full")
    driver = wrap_driver("gemv", _FlakyGemv(bad=0), checker)
    for _ in range(16):
        a = rng.standard_normal((7, 4))
        x = rng.standard_normal(4)
        assert np.allclose(driver(a, x), a @ x)
    assert STATS.snapshot()["mismatches"] == 0


# -- pool drain (serve shutdown hygiene) -------------------------------------


def test_reset_pools_drains_buffer_spares():
    from repro.blas.threading import PackBufferPool, reset_pools

    pool = PackBufferPool()
    buf = pool.acquire(64)
    pool.release(buf)                      # one 64-element spare cached
    assert reset_pools() >= 64 * 8
    assert pool.stats()["outstanding"] == 0
    # second drain finds nothing left
    assert reset_pools() == 0
