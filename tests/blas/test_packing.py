"""Panel-packing tests including hypothesis round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.packing import (
    pack_a,
    pack_b_dup,
    pack_b_shuf,
    unpack_a,
    unpack_b_dup,
    unpack_b_shuf,
)


def test_pack_a_layout():
    block = np.arange(6.0).reshape(2, 3)  # 2 rows x 3 k
    packed = pack_a(block, 2, 3)
    # A[l*mc + i] == block[i, l]
    for l in range(3):
        for i in range(2):
            assert packed[l * 2 + i] == block[i, l]


def test_pack_b_dup_layout():
    block = np.arange(6.0).reshape(3, 2)  # 3 k x 2 cols
    packed = pack_b_dup(block, 3, 2)
    for j in range(2):
        for l in range(3):
            assert packed[j * 3 + l] == block[l, j]


def test_pack_b_shuf_layout():
    block = np.arange(6.0).reshape(3, 2)
    packed = pack_b_shuf(block, 3, 2)
    for l in range(3):
        for j in range(2):
            assert packed[l * 2 + j] == block[l, j]


def test_zero_padding():
    block = np.ones((2, 2))
    packed = pack_a(block, 4, 3)
    assert packed.shape == (12,)
    assert packed.sum() == 4.0  # only the real elements are non-zero


def test_oversize_block_rejected():
    with pytest.raises(ValueError):
        pack_a(np.ones((5, 2)), 4, 4)
    with pytest.raises(ValueError):
        pack_b_dup(np.ones((5, 2)), 4, 4)
    with pytest.raises(ValueError):
        pack_b_shuf(np.ones((2, 5)), 4, 4)


def test_non_contiguous_input_accepted():
    big = np.arange(48.0).reshape(6, 8)
    view = big[::2, ::2]  # non-contiguous
    packed = pack_a(view, 3, 4)
    assert np.array_equal(unpack_a(packed, 3, 4), view)


def test_pack_a_alpha_folded():
    block = np.arange(6.0).reshape(2, 3)
    assert np.array_equal(pack_a(block, 2, 3, alpha=2.5),
                          2.5 * pack_a(block, 2, 3))
    # alpha scales only the data; padding stays exactly zero
    padded = pack_a(block, 4, 5, alpha=-3.0)
    assert np.array_equal(unpack_a(padded, 4, 5)[:2, :3], -3.0 * block)
    assert padded.sum() == -3.0 * block.sum()


def test_pack_into_dirty_buffer_rezeroes_padding():
    block = np.arange(4.0).reshape(2, 2) + 1.0
    for packer, (r, c) in ((pack_a, (4, 3)), (pack_b_dup, (4, 3)),
                           (pack_b_shuf, (4, 3))):
        dirty = np.full(12, 7.7)
        fresh = packer(block, r, c)
        reused = packer(block, r, c, out=dirty)
        assert reused is dirty  # in place, no allocation
        assert np.array_equal(reused, fresh)


def test_pack_a_out_and_alpha_combine():
    rng = np.random.default_rng(3)
    block = rng.standard_normal((3, 5))
    dirty = rng.standard_normal(6 * 4)  # (mc=4) x (kc=6) panel, dirty
    got = pack_a(block, 4, 6, out=dirty, alpha=1.25)
    assert np.array_equal(got, pack_a(block, 4, 6, alpha=1.25))


def test_pack_out_buffer_validated():
    block = np.ones((2, 2))
    with pytest.raises(ValueError):
        pack_a(block, 4, 3, out=np.zeros(11))  # wrong element count
    with pytest.raises(ValueError):
        pack_b_dup(block, 4, 3, out=np.zeros(12, dtype=np.float32))


@st.composite
def block_and_panel(draw):
    rows = draw(st.integers(1, 6))
    cols = draw(st.integers(1, 6))
    pad_r = draw(st.integers(0, 3))
    pad_c = draw(st.integers(0, 3))
    data = draw(st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=rows * cols, max_size=rows * cols))
    return (np.array(data).reshape(rows, cols), rows + pad_r, cols + pad_c)


@given(block_and_panel())
@settings(max_examples=50, deadline=None)
def test_pack_a_round_trip(args):
    block, mc, kc = args
    packed = pack_a(block, mc, kc)
    restored = unpack_a(packed, mc, kc)
    assert np.array_equal(restored[: block.shape[0], : block.shape[1]], block)


@given(block_and_panel())
@settings(max_examples=50, deadline=None)
def test_pack_b_round_trips(args):
    block, kc, nc = args
    assert np.array_equal(
        unpack_b_dup(pack_b_dup(block, kc, nc), kc, nc)[: block.shape[0],
                                                        : block.shape[1]],
        block)
    assert np.array_equal(
        unpack_b_shuf(pack_b_shuf(block, kc, nc), kc, nc)[: block.shape[0],
                                                          : block.shape[1]],
        block)
