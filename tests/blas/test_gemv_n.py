"""Dot-form GEMV kernel (gemv_n) tests."""

import numpy as np
import pytest

from repro.backend.runner import load_kernel
from repro.core.framework import Augem
from repro.emu.run import call_kernel
from repro.isa.arch import PILEDRIVER

from tests.conftest import needs_cc


def test_gemv_n_templates(any_arch):
    gk = Augem(arch=any_arch).generate_named("gemv_n")
    counts = gk.template_counts
    # the DOT machinery per row plus the scalar Y update
    assert counts.get("mmUnrolledCOMP") == 1
    assert counts.get("sumREDUCE") == 1
    assert counts.get("mmSTORE") == 1


def test_gemv_n_emulated(any_arch, rng):
    gk = Augem(arch=any_arch).generate_named("gemv_n")
    m, n, lda = 6, 32, 40
    a = rng.standard_normal(m * lda)
    x = rng.standard_normal(n)
    y = rng.standard_normal(m)
    ref = y + a.reshape(m, lda)[:, :n] @ x
    call_kernel(gk, [m, n, a, lda, x, y])
    np.testing.assert_allclose(y, ref, rtol=1e-12, atol=1e-10)


def test_gemv_n_fma4_emulated(rng):
    gk = Augem(arch=PILEDRIVER).generate_named("gemv_n")
    assert "vfmaddpd" in gk.asm_text
    m, n, lda = 4, 16, 16
    a = rng.standard_normal(m * lda)
    x = rng.standard_normal(n)
    y = np.zeros(m)
    call_kernel(gk, [m, n, a, lda, x, y])
    assert np.allclose(y, a.reshape(m, lda)[:, :n] @ x)


@needs_cc
def test_gemv_n_native(native_arch, rng):
    gk = Augem(arch=native_arch).generate_named(
        "gemv_n", name=f"gvn_{native_arch.name}")
    k = load_kernel("gemv_n", gk)
    m, n, lda = 10, 64, 64
    a = rng.standard_normal(m * lda)
    x = rng.standard_normal(n)
    y = rng.standard_normal(m)
    ref = y + a.reshape(m, lda)[:, :n] @ x
    k(m, n, a, lda, x, y)
    assert np.allclose(y, ref)


@needs_cc
@pytest.mark.parametrize("m,n", [(1, 64), (7, 33), (50, 7), (64, 64)])
def test_driver_no_trans_uses_dot_form(rng, m, n):
    from repro.blas.gemv import make_gemv

    g = make_gemv()
    a = rng.standard_normal((m, n))
    x = rng.standard_normal(n)
    y = rng.standard_normal(m)
    got = g(a, x, y, alpha=1.5, beta=0.5, trans=False)
    assert np.allclose(got, 1.5 * a @ x + 0.5 * y)


@needs_cc
def test_driver_non_contiguous_falls_back(rng):
    from repro.blas.gemv import make_gemv

    g = make_gemv()
    big = rng.standard_normal((40, 40))
    a = big[::2, ::2]  # non-contiguous view
    x = rng.standard_normal(20)
    assert np.allclose(g(a, x, trans=False), a @ x)
