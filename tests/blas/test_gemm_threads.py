"""Thread-safety proof for the parallel GEBP driver.

Covers the multithreading contract end to end:

- **determinism** — the threaded result is *bit-identical* to the
  single-threaded result at every thread count, for edge shapes and both
  packed-B layouts, through the emulator (no specific hardware needed);
- **race stress** — one shared :class:`GemmDriver` hammered from 8
  caller threads returns uncorrupted results and never aliases pooled
  packing buffers between workers;
- **pool reuse** — steady-state calls are served from the buffer pool
  (hit counter grows, allocation counter plateaus);
- **fault injection** — a ``worker_die`` fault mid-tile fails the whole
  call cleanly: the caller's C is untouched, every pooled buffer is
  returned, and the next call succeeds;
- **alpha folding** — no ``a_block * alpha`` temporary is materialized
  per tile (allocation tracing).
"""

from __future__ import annotations

import threading
import tracemalloc
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.faults import (FaultPlan, InjectedWorkerFault,
                                  clear_fault_plan, install_fault_plan)
from repro.blas.gemm import BlockSizes, GemmDriver, split_for_threads
from repro.blas.threading import (PackBufferPool, PoolAliasError, WorkerPool,
                                  resolve_threads)
from repro.core.framework import Augem
from repro.emu.run import call_items
from repro.isa.arch import GENERIC_SSE

TINY_BLOCKS = BlockSizes(mc=8, kc=8, nc=8)

#: M, N, K: non-multiples of mu/nu/ku, tall-skinny, wide, 1x1, zero-dim
EDGE_SHAPES = [(1, 1, 1), (13, 7, 9), (33, 5, 17), (5, 33, 4),
               (16, 16, 16), (0, 5, 3), (5, 0, 3), (5, 3, 0)]

THREAD_COUNTS = [1, 2, 4, 8]


class _EmuKernel:
    """Duck-types a loaded native kernel via the bundled emulator."""

    def __init__(self, gk):
        self.generated = gk

    def __call__(self, *args):
        return call_items(self.generated.items, list(args))


_GENERATED = {}


def _emu_kernel(family):
    if family not in _GENERATED:
        _GENERATED[family] = _EmuKernel(
            Augem(arch=GENERIC_SSE).generate_named(family))
    return _GENERATED[family]


class _PyKernel:
    """Pure-numpy packed micro-kernel stand-in (dup layout) — fast enough
    for stress loops, same call signature and packed-panel semantics."""

    generated = SimpleNamespace(
        config=SimpleNamespace(unroll_jam=(), unroll=()))

    def __call__(self, mc, nc, kc, a, b, c, ldc):
        am = a.reshape(kc, mc)
        bm = b.reshape(nc, kc)
        c.reshape(nc, ldc)[:, :mc] += bm @ am


@pytest.fixture(autouse=True)
def _no_leftover_fault_plan():
    yield
    clear_fault_plan()


# -- determinism across thread counts (emulated; both layouts) --------------


@pytest.mark.parametrize("layout,family",
                         [("dup", "gemm"), ("shuf", "gemm_shuf")])
def test_threaded_result_bit_identical(layout, family, rng):
    kernel = _emu_kernel(family)
    base_driver = GemmDriver(kernel, layout=layout, blocks=TINY_BLOCKS,
                             threads=1)
    for m, n, k in EDGE_SHAPES:
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = rng.standard_normal((m, n))
        base = np.asarray(base_driver(a, b, c, alpha=1.25, beta=-0.5))
        assert np.allclose(base, 1.25 * (a @ b) - 0.5 * c), (m, n, k)
        for threads in THREAD_COUNTS[1:]:
            driver = GemmDriver(kernel, layout=layout, blocks=TINY_BLOCKS,
                                threads=threads)
            got = np.asarray(driver(a, b, c, alpha=1.25, beta=-0.5))
            assert got.tobytes() == base.tobytes(), (m, n, k, threads)
            assert driver.pack_pool.outstanding == 0


def test_per_call_thread_override_stays_bit_identical(rng):
    driver = GemmDriver(_emu_kernel("gemm"), blocks=TINY_BLOCKS, threads=1)
    a = rng.standard_normal((19, 11))
    b = rng.standard_normal((11, 14))
    base = np.asarray(driver(a, b)).tobytes()
    for threads in THREAD_COUNTS:
        assert np.asarray(driver(a, b, threads=threads)).tobytes() == base


def test_env_threads_do_not_change_results(rng, monkeypatch):
    a = rng.standard_normal((17, 13))
    b = rng.standard_normal((13, 9))
    monkeypatch.delenv("REPRO_THREADS", raising=False)
    base = np.asarray(GemmDriver(_emu_kernel("gemm"),
                                 blocks=TINY_BLOCKS)(a, b))
    monkeypatch.setenv("REPRO_THREADS", "4")
    driver = GemmDriver(_emu_kernel("gemm"), blocks=TINY_BLOCKS)
    assert driver.threads == 4
    assert np.asarray(driver(a, b)).tobytes() == base.tobytes()


# -- race stress: one shared driver, many caller threads --------------------


@given(shapes=st.lists(
    st.tuples(st.integers(1, 40), st.integers(1, 40), st.integers(1, 24)),
    min_size=1, max_size=3))
@settings(max_examples=10, deadline=None)
def test_race_stress_shared_driver(shapes):
    driver = GemmDriver(_PyKernel(), blocks=TINY_BLOCKS, threads=2)
    rng = np.random.default_rng(99)
    problems = []
    for m, n, k in shapes:
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        expect = np.asarray(driver(a, b)).tobytes()
        problems.append((a, b, expect))
    errors = []

    def hammer():
        try:
            for _ in range(3):
                for a, b, expect in problems:
                    got = np.asarray(driver(a, b))
                    if got.tobytes() != expect:
                        raise AssertionError("corrupted threaded result")
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    callers = [threading.Thread(target=hammer) for _ in range(8)]
    for t in callers:
        t.start()
    for t in callers:
        t.join(timeout=120)
    assert not errors, errors
    assert driver.pack_pool.outstanding == 0


# -- pool reuse: hits grow, allocations plateau -----------------------------


def test_pack_pool_buffers_reused_across_calls(rng):
    driver = GemmDriver(_PyKernel(), blocks=TINY_BLOCKS, threads=1)
    a = rng.standard_normal((32, 32))
    b = rng.standard_normal((32, 32))
    driver(a, b)
    pool = driver.pack_pool
    allocations_after_warmup = pool.allocations
    hits_after_warmup = pool.hits
    for _ in range(5):
        driver(a, b)
    assert pool.allocations == allocations_after_warmup, \
        "steady-state calls must not allocate fresh panels"
    assert pool.hits > hits_after_warmup
    assert pool.outstanding == 0


def test_pack_pool_alias_guards():
    pool = PackBufferPool()
    buf = pool.acquire(16)
    pool.release(buf)
    with pytest.raises(PoolAliasError):
        pool.release(buf)  # double release
    with pytest.raises(PoolAliasError):
        pool.release(np.zeros(16))  # never lent
    stats = pool.stats()
    assert stats["outstanding"] == 0
    assert stats["allocations"] == 1


def test_pack_pool_bounds_free_list():
    pool = PackBufferPool(max_free_per_size=2)
    bufs = [pool.acquire(8) for _ in range(5)]
    for b in bufs:
        pool.release(b)
    assert len(pool._free[8]) == 2  # spares beyond the cap are dropped
    assert pool.allocations == 5


# -- worker_die fault injection ---------------------------------------------


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_worker_die_fails_whole_call_cleanly(threads, rng):
    driver = GemmDriver(_PyKernel(), blocks=TINY_BLOCKS, threads=threads)
    a = rng.standard_normal((24, 16))
    b = rng.standard_normal((16, 24))
    c = rng.standard_normal((24, 24))
    c_before = c.copy()
    expect = np.asarray(driver(a, b, c, alpha=2.0, beta=0.5)).tobytes()

    install_fault_plan(FaultPlan.parse("worker_die@#2"))
    with pytest.raises(InjectedWorkerFault):
        driver(a, b, c, alpha=2.0, beta=0.5)
    # no partial writes reached the caller, and the pool is consistent
    assert np.array_equal(c, c_before)
    assert driver.pack_pool.outstanding == 0

    install_fault_plan(None)
    got = np.asarray(driver(a, b, c, alpha=2.0, beta=0.5))
    assert got.tobytes() == expect


def test_worker_die_matches_by_family_tag(rng):
    driver = GemmDriver(_PyKernel(), blocks=TINY_BLOCKS, threads=2)
    a = rng.standard_normal((9, 9))
    b = rng.standard_normal((9, 9))
    install_fault_plan(FaultPlan.parse("worker_die@gemm:1"))
    with pytest.raises(InjectedWorkerFault):
        driver(a, b)
    # count=1: the plan disarms after one shot, the next call runs
    assert np.allclose(driver(a, b), a @ b)
    assert driver.pack_pool.outstanding == 0


def test_worker_die_deterministic_lowest_index_wins(rng):
    # two tiles fault concurrently; the raised error must be the
    # lowest-indexed one regardless of scheduling
    driver = GemmDriver(_PyKernel(), blocks=TINY_BLOCKS, threads=4)
    a = np.ones((32, 8))
    b = np.ones((8, 32))
    for _ in range(3):
        install_fault_plan(FaultPlan.parse("worker_die@#1,worker_die@#3"))
        with pytest.raises(InjectedWorkerFault, match="#1"):
            driver(a, b)
        assert driver.pack_pool.outstanding == 0


# -- alpha folding: no scaled A copy per tile -------------------------------


def test_alpha_fold_allocates_no_extra_temporaries(rng):
    driver = GemmDriver(_PyKernel(),
                        blocks=BlockSizes(mc=48, kc=48, nc=48), threads=1)
    a = rng.standard_normal((48, 48))
    b = rng.standard_normal((48, 48))
    driver(a, b, alpha=1.0)   # warm pool + numpy internals
    driver(a, b, alpha=2.5)

    tracemalloc.start()
    driver(a, b, alpha=1.0)
    _, peak_unit = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    driver(a, b, alpha=2.5)
    _, peak_scaled = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # a per-tile `a_block * alpha` copy would add mc*kc*8 = 18432 bytes
    # to the alpha != 1 path; folding into pack_a keeps the peaks equal
    assert peak_scaled < peak_unit + 9000, (peak_unit, peak_scaled)
    got = driver(a, b, alpha=2.5)
    assert np.allclose(got, 2.5 * (a @ b))


# -- threading plumbing units ----------------------------------------------


def test_resolve_threads_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_THREADS", raising=False)
    assert resolve_threads() == 1
    assert resolve_threads(3) == 3
    monkeypatch.setenv("REPRO_THREADS", "6")
    assert resolve_threads() == 6
    assert resolve_threads(2) == 2  # explicit beats env
    monkeypatch.setenv("REPRO_THREADS", "bogus")
    assert resolve_threads() == 1   # malformed env degrades, never crashes
    monkeypatch.setenv("REPRO_THREADS", "-4")
    assert resolve_threads() == 1
    monkeypatch.setenv("REPRO_THREADS", "auto")
    assert resolve_threads() >= 1
    with pytest.raises(ValueError):
        resolve_threads(0)


def test_worker_pool_runs_all_tasks_and_reports_busy():
    pool = WorkerPool(3)
    done = []
    lock = threading.Lock()

    def task(i):
        with lock:
            done.append(i)

    busy = pool.run([lambda i=i: task(i) for i in range(20)])
    assert sorted(done) == list(range(20))
    assert busy and all(v >= 0.0 for v in busy.values())


def test_worker_pool_raises_lowest_index_error():
    pool = WorkerPool(2)

    def boom(i):
        raise RuntimeError(f"task-{i}")

    tasks = [lambda: None, lambda: boom(1), lambda: boom(2), lambda: None]
    for _ in range(3):
        with pytest.raises(RuntimeError, match="task-1"):
            pool.run(tasks)


def test_worker_pool_reusable_after_failure():
    pool = WorkerPool(2)
    with pytest.raises(ValueError):
        pool.run([lambda: (_ for _ in ()).throw(ValueError("x"))])
    out = []
    pool.run([lambda: out.append(1), lambda: out.append(2)])
    assert sorted(out) == [1, 2]


def test_split_for_threads_properties():
    # enough tiles for the thread count, multiples preserved
    mc, nc = split_for_threads(m=128, n=512, mc=128, nc=512,
                               mu=4, nu=4, threads=8)
    assert mc % 4 == 0 and nc % 4 == 0
    assert (-(-128 // mc)) * (-(-512 // nc)) >= 8
    # a tiny problem cannot split below (mu, nu): it just stops
    mc, nc = split_for_threads(m=4, n=4, mc=4, nc=4, mu=4, nu=4, threads=16)
    assert (mc, nc) == (4, 4)
