"""Blocked GEMM driver tests (native execution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.gemm import BlockSizes, GemmDriver, kernel_multiples, make_gemm
from repro.transforms.pipeline import OptimizationConfig

from tests.conftest import needs_cc

pytestmark = needs_cc


@pytest.fixture(scope="module")
def gemm():
    return make_gemm()


def test_kernel_multiples_derived_from_config(gemm):
    mu, nu, ku = kernel_multiples(gemm.kernel.generated)
    assert mu >= 1 and nu >= 1 and ku >= 1
    cfg = gemm.kernel.generated.config
    assert ("i", mu) in cfg.unroll_jam


def test_square_matches_numpy(gemm, rng):
    a = rng.standard_normal((96, 96))
    b = rng.standard_normal((96, 96))
    assert np.allclose(gemm(a, b), a @ b)


@pytest.mark.parametrize("m,k,n", [
    (1, 1, 1), (2, 3, 4), (7, 11, 13), (64, 256, 64),
    (65, 257, 63), (100, 1, 100), (1, 100, 1), (33, 500, 29),
])
def test_arbitrary_shapes(gemm, rng, m, k, n):
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    assert np.allclose(gemm(a, b), a @ b)


def test_alpha_beta(gemm, rng):
    a = rng.standard_normal((20, 30))
    b = rng.standard_normal((30, 10))
    c = rng.standard_normal((20, 10))
    got = gemm(a, b, c, alpha=2.5, beta=-0.5)
    assert np.allclose(got, 2.5 * (a @ b) - 0.5 * c)


def test_beta_one_accumulates(gemm, rng):
    a = rng.standard_normal((8, 8))
    b = rng.standard_normal((8, 8))
    c = rng.standard_normal((8, 8))
    got = gemm(a, b, c, beta=1.0)
    assert np.allclose(got, a @ b + c)


def test_alpha_zero_short_circuits(gemm, rng):
    a = rng.standard_normal((8, 8))
    b = rng.standard_normal((8, 8))
    c = rng.standard_normal((8, 8))
    assert np.allclose(gemm(a, b, c, alpha=0.0, beta=2.0), 2.0 * c)


def test_k_zero(gemm, rng):
    a = np.zeros((4, 0))
    b = np.zeros((0, 5))
    assert np.allclose(gemm(a, b), np.zeros((4, 5)))


def test_input_matrices_not_mutated(gemm, rng):
    a = rng.standard_normal((16, 16))
    b = rng.standard_normal((16, 16))
    a0, b0 = a.copy(), b.copy()
    gemm(a, b, alpha=3.0)
    assert np.array_equal(a, a0) and np.array_equal(b, b0)


def test_c_argument_not_mutated(gemm, rng):
    c = rng.standard_normal((8, 8))
    c0 = c.copy()
    gemm(rng.standard_normal((8, 8)), rng.standard_normal((8, 8)),
         c=c, beta=1.0)
    assert np.array_equal(c, c0)  # driver works on a copy


def test_shape_mismatch_raises(gemm, rng):
    with pytest.raises(ValueError):
        gemm(np.zeros((3, 4)), np.zeros((5, 6)))
    with pytest.raises(ValueError):
        gemm(np.zeros((3, 4)), np.zeros((4, 6)), c=np.zeros((2, 2)))


def test_custom_block_sizes(rng):
    gemm_small = make_gemm(blocks=BlockSizes(mc=16, kc=32, nc=32))
    a = rng.standard_normal((50, 70))
    b = rng.standard_normal((70, 40))
    assert np.allclose(gemm_small(a, b), a @ b)


def test_shuf_layout_driver(rng):
    gemm_shuf = make_gemm(layout="shuf")
    a = rng.standard_normal((40, 60))
    b = rng.standard_normal((60, 30))
    assert np.allclose(gemm_shuf(a, b), a @ b)


def test_fortran_ordered_inputs(gemm, rng):
    a = np.asfortranarray(rng.standard_normal((24, 32)))
    b = np.asfortranarray(rng.standard_normal((32, 16)))
    assert np.allclose(gemm(a, b), a @ b)


@given(m=st.integers(1, 40), k=st.integers(1, 40), n=st.integers(1, 40),
       seed=st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_property_random_shapes(m, k, n, seed):
    gemm = make_gemm()  # cached shared object: cheap after first call
    r = np.random.default_rng(seed)
    a = r.standard_normal((m, k))
    b = r.standard_normal((k, n))
    assert np.allclose(gemm(a, b), a @ b)
