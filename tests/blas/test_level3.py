"""Level-3 routine tests (SYMM/SYRK/SYR2K/TRMM/TRSM on GEMM)."""

import numpy as np
import pytest

from repro.blas import reference as R
from repro.blas.api import AugemBLAS

from tests.conftest import needs_cc

pytestmark = needs_cc


@pytest.fixture(scope="module")
def blas():
    return AugemBLAS()


@pytest.mark.parametrize("n,k", [(8, 4), (64, 64), (70, 40), (130, 33)])
def test_symm(blas, rng, n, k):
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, k))
    assert np.allclose(blas.dsymm(a, b), R.ref_symm(a, b))


def test_symm_only_lower_triangle_read(blas, rng):
    n = 24
    a = rng.standard_normal((n, n))
    poisoned = a.copy()
    poisoned[np.triu_indices(n, 1)] = 1e300  # garbage above the diagonal
    b = rng.standard_normal((n, 8))
    assert np.allclose(blas.dsymm(poisoned, b), R.ref_symm(a, b))


def test_symm_alpha_beta(blas, rng):
    a = rng.standard_normal((16, 16))
    b = rng.standard_normal((16, 8))
    c = rng.standard_normal((16, 8))
    got = blas.dsymm(a, b, c, alpha=1.5, beta=2.0)
    assert np.allclose(got, R.ref_symm(a, b, c, 1.5, 2.0))


@pytest.mark.parametrize("n,k", [(16, 8), (64, 64), (65, 130), (100, 30)])
def test_syrk(blas, rng, n, k):
    a = rng.standard_normal((n, k))
    got = blas.dsyrk(a)
    ref = R.ref_syrk(a)
    assert np.allclose(np.tril(got), np.tril(ref))


def test_syrk_beta(blas, rng):
    a = rng.standard_normal((20, 10))
    c = rng.standard_normal((20, 20))
    got = blas.dsyrk(a, c, alpha=0.5, beta=2.0)
    ref = R.ref_syrk(a, c, 0.5, 2.0)
    assert np.allclose(np.tril(got), np.tril(ref))


@pytest.mark.parametrize("n,k", [(16, 8), (70, 40), (96, 96)])
def test_syr2k(blas, rng, n, k):
    a = rng.standard_normal((n, k))
    b = rng.standard_normal((n, k))
    got = blas.dsyr2k(a, b)
    ref = R.ref_syr2k(a, b)
    assert np.allclose(np.tril(got), np.tril(ref))


@pytest.mark.parametrize("n,k", [(8, 4), (64, 16), (70, 40), (129, 65)])
def test_trmm(blas, rng, n, k):
    l = np.tril(rng.standard_normal((n, n))) + 4 * np.eye(n)
    b = rng.standard_normal((n, k))
    assert np.allclose(blas.dtrmm(l, b), R.ref_trmm(l, b))


def test_trmm_does_not_mutate_input(blas, rng):
    l = np.tril(rng.standard_normal((8, 8))) + np.eye(8)
    b = rng.standard_normal((8, 4))
    b0 = b.copy()
    blas.dtrmm(l, b)
    assert np.array_equal(b, b0)


@pytest.mark.parametrize("n,k", [(8, 4), (64, 16), (70, 40), (129, 65)])
def test_trsm(blas, rng, n, k):
    l = np.tril(rng.standard_normal((n, n))) + 4 * np.eye(n)
    b = rng.standard_normal((n, k))
    got = blas.dtrsm(l, b)
    assert np.allclose(got, R.ref_trsm(l, b))


def test_trsm_trmm_inverse_relationship(blas, rng):
    n, k = 48, 12
    l = np.tril(rng.standard_normal((n, n))) + 5 * np.eye(n)
    b = rng.standard_normal((n, k))
    assert np.allclose(blas.dtrsm(l, blas.dtrmm(l, b)), b)


def test_trmm_alpha(blas, rng):
    l = np.tril(rng.standard_normal((10, 10))) + np.eye(10)
    b = rng.standard_normal((10, 3))
    assert np.allclose(blas.dtrmm(l, b, alpha=2.0), 2.0 * R.ref_trmm(l, b))


def test_trsm_alpha(blas, rng):
    l = np.tril(rng.standard_normal((10, 10))) + 5 * np.eye(10)
    b = rng.standard_normal((10, 3))
    assert np.allclose(blas.dtrsm(l, b, alpha=3.0), 3.0 * R.ref_trsm(l, b))
