"""Edge-shape conformance against the reference oracle.

Two layers:

- **driver conformance across every ISA** — the generated kernels run in
  the x86-64 emulator (so FMA4/Piledriver code is covered on any host),
  wrapped by the real blocked drivers, on the shapes that exercise the
  padding/tail machinery: 1x1, zero-dim, and non-multiple-of-unroll;
- **facade conformance** — a hardened :class:`AugemBLAS` must match
  :mod:`repro.blas.reference` for aliased outputs, Fortran-ordered and
  strided inputs, and NaN/Inf propagation, *whatever tier ends up
  serving* (these tests also pass under ``REPRO_FAULT_INJECT`` — CI runs
  this file with ``segv@#0`` to prove graceful degradation).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.blas import reference as ref
from repro.blas.api import AugemBLAS
from repro.blas.gemm import GemmDriver
from repro.blas.gemv import GemvDriver
from repro.blas.level1 import AxpyDriver, DotDriver, ScalDriver
from repro.core.framework import Augem
from repro.emu.run import call_items


class _EmuKernel:
    """Duck-types a loaded native kernel: executes the generated
    instruction stream in the emulator instead of through ctypes."""

    def __init__(self, gk):
        self.generated = gk

    def __call__(self, *args):
        return call_items(self.generated.items, list(args))


_GENERATED = {}  # (arch name, family) -> _EmuKernel, shared across tests


def _emu_kernel(arch, family):
    key = (arch.name, family)
    if key not in _GENERATED:
        _GENERATED[key] = _EmuKernel(Augem(arch=arch).generate_named(family))
    return _GENERATED[key]


# -- driver conformance on every ISA (emulated) -----------------------------

GEMM_SHAPES = [(1, 1, 1), (2, 3, 5), (5, 3, 2), (13, 7, 9)]


def test_gemm_driver_edge_shapes(any_arch, rng):
    driver = GemmDriver(_emu_kernel(any_arch, "gemm"))
    for m, n, k in GEMM_SHAPES:
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = rng.standard_normal((m, n))
        got = driver(a, b, c, alpha=1.25, beta=-0.5)
        assert np.allclose(got, ref.ref_gemm(a, b, c, 1.25, -0.5)), (m, n, k)
        assert np.allclose(driver(a, b), a @ b), (m, n, k)


def test_gemm_driver_zero_k(any_arch, rng):
    driver = GemmDriver(_emu_kernel(any_arch, "gemm"))
    c = rng.standard_normal((3, 4))
    got = driver(np.zeros((3, 0)), np.zeros((0, 4)), c, beta=2.0)
    assert np.allclose(got, 2.0 * c)


def test_gemv_driver_edge_shapes(any_arch, rng):
    driver = GemvDriver(_emu_kernel(any_arch, "gemv"),
                        _emu_kernel(any_arch, "gemv_n"))
    for m, n in [(1, 1), (3, 5), (13, 7)]:
        a = rng.standard_normal((m, n))
        x, xt = rng.standard_normal(n), rng.standard_normal(m)
        y = rng.standard_normal(m)
        got = driver(a, x, y, alpha=1.5, beta=0.5)
        assert np.allclose(got, ref.ref_gemv(a, x, y, 1.5, 0.5)), (m, n)
        got_t = driver(a, xt, alpha=-2.0, trans=True)
        assert np.allclose(got_t, ref.ref_gemv(a, xt, alpha=-2.0,
                                               trans=True)), (m, n)


def test_level1_driver_tails(any_arch, rng):
    axpy = AxpyDriver(_emu_kernel(any_arch, "axpy"))
    dot = DotDriver(_emu_kernel(any_arch, "dot"))
    scal = ScalDriver(_emu_kernel(any_arch, "scal"))
    # below-unroll lengths run the pure-tail path; 17 exercises the split
    for n in sorted({1, 2, axpy.unroll + 1, 17}):
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        y2 = y.copy()
        axpy(2.5, x, y2)
        assert np.allclose(y2, ref.ref_axpy(2.5, x, y)), n
        assert np.isclose(dot(x, y), ref.ref_dot(x, y)), n
        x2 = x.copy()
        scal(-0.75, x2)
        assert np.allclose(x2, -0.75 * x), n


# -- facade conformance (any serving tier must match reference) -------------

@pytest.fixture(scope="module")
def blas():
    return AugemBLAS()


def test_facade_zero_dim_shapes(blas, rng):
    assert blas.dgemm(np.zeros((0, 4)), np.zeros((4, 3))).shape == (0, 3)
    c = rng.standard_normal((3, 4))
    assert np.allclose(
        blas.dgemm(np.zeros((3, 0)), np.zeros((0, 4)), c, beta=2.0), 2.0 * c)
    assert blas.dgemv(np.zeros((0, 5)), np.zeros(5)).shape == (0,)
    assert blas.ddot(np.zeros(0), np.zeros(0)) == 0.0
    y = np.zeros(0)
    assert blas.daxpy(3.0, np.zeros(0), y) is y
    assert blas.dsyrk(np.zeros((0, 0))).shape == (0, 0)


def test_facade_aliased_outputs(blas, rng):
    a = rng.standard_normal((9, 9))
    b = rng.standard_normal((9, 9))
    expected = ref.ref_gemm(a, b, a.copy(), 1.0, 0.5)
    assert np.allclose(blas.dgemm(a, b, c=a, beta=0.5), expected)
    x = rng.standard_normal(21)
    x0 = x.copy()
    assert np.allclose(blas.daxpy(2.0, x, x), 3.0 * x0)


def test_facade_fortran_and_strided_inputs(blas, rng):
    a = np.asfortranarray(rng.standard_normal((11, 6)))
    b = rng.standard_normal((12, 7))[::2]  # stride-2 row view
    assert np.allclose(blas.dgemm(a, b), ref.ref_gemm(a, b))
    x = rng.standard_normal(12)[::2]
    assert np.allclose(blas.dgemv(a, x), ref.ref_gemv(a, x))
    xt = rng.standard_normal(22)[::2]
    assert np.allclose(blas.dgemv(a, xt, trans=True),
                       ref.ref_gemv(a, xt, trans=True))


def test_facade_nan_propagation(blas, rng):
    a = np.abs(rng.standard_normal((12, 9))) + 0.5
    b = np.abs(rng.standard_normal((9, 7))) + 0.5
    a[3, 4] = np.nan
    with np.errstate(invalid="ignore"):
        got, expected = blas.dgemm(a, b), ref.ref_gemm(a, b)
    assert np.array_equal(np.isnan(got), np.isnan(expected))
    finite = ~np.isnan(expected)
    assert np.allclose(got[finite], expected[finite])


def test_facade_inf_propagation(blas, rng):
    a = np.abs(rng.standard_normal((8, 6))) + 0.5
    b = np.abs(rng.standard_normal((6, 5))) + 0.5
    a[2, 1] = np.inf
    with np.errstate(invalid="ignore"):
        got, expected = blas.dgemm(a, b), ref.ref_gemm(a, b)
    assert np.array_equal(np.isinf(got), np.isinf(expected))
    finite = np.isfinite(expected)
    assert np.allclose(got[finite], expected[finite])
    x = rng.standard_normal(19)
    x[5], x[7] = np.inf, np.nan
    y = rng.standard_normal(19)
    y2 = y.copy()
    blas.daxpy(1.5, x, y2)
    expected = ref.ref_axpy(1.5, x, y)
    assert np.array_equal(np.isnan(y2), np.isnan(expected))
    assert np.array_equal(np.isinf(y2), np.isinf(expected))
    mask = np.isfinite(expected)
    assert np.allclose(y2[mask], expected[mask])


# -- the acceptance scenario: injected SIGSEGV, graceful degradation --------

_SEGV_SCRIPT = """
import numpy as np
from repro.blas.api import AugemBLAS

rng = np.random.default_rng(0)
blas = AugemBLAS()
a = rng.standard_normal((17, 13)); b = rng.standard_normal((13, 11))
assert np.allclose(blas.dgemm(a, b), a @ b)
x = rng.standard_normal(33); y = rng.standard_normal(33)
assert np.isclose(blas.ddot(x, y), float(x @ y))
y2 = y.copy(); blas.daxpy(2.0, x, y2)
assert np.allclose(y2, y + 2.0 * x)
demoted = [r for r, d in blas.dispatch_report().items() if d.demoted]
assert demoted, "injected fault must demote at least one routine"
print("DEGRADED-OK")
"""


def test_graceful_degradation_under_injected_segv(tmp_path):
    trace = tmp_path / "trace.jsonl"
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env.pop("REPRO_FORCE_ARCH", None)  # hermetic: probe the real chain
    env.update(
        PYTHONPATH=os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                          else [])),
        REPRO_CACHE_DIR="off",
        REPRO_FAULT_INJECT="segv@#0",
        REPRO_TRACE=str(trace),
    )
    proc = subprocess.run([sys.executable, "-c", _SEGV_SCRIPT], env=env,
                          capture_output=True, text=True, timeout=240)
    assert proc.returncode == 0, proc.stderr
    assert "DEGRADED-OK" in proc.stdout
    records = [json.loads(line)
               for line in trace.read_text().splitlines() if line.strip()]
    demotions = [r for r in records if r.get("name") == "dispatch.demotion"]
    assert demotions, "trace must record the demotion"
