"""Dispatch-chain tests: capability ordering, ISA-probe demotion,
admission rejection, and the quarantine consult."""

import numpy as np
import pytest

from repro.backend.cache import get_cache, reset_cache
from repro.backend.faults import FaultPlan, clear_fault_plan, install_fault_plan
from repro.blas.dispatch import (
    REFERENCE_TIER,
    DispatchChain,
    KernelRejected,
    capability_chain,
    default_chain,
    reset_dispatch_state,
    tier_verdict,
    ulp_error,
)
from repro.blas.level1 import make_axpy
from repro.blas.reference import ReferenceAxpyDriver
from repro.core.framework import Augem, quarantine_key
from repro.isa.arch import (
    FORCE_ARCH_ENV,
    GENERIC_SSE,
    HASWELL,
    PILEDRIVER,
    SANDYBRIDGE,
    detect_host,
    reset_host_cache,
)

from tests.conftest import needs_cc


@pytest.fixture(autouse=True)
def _clean_dispatch():
    clear_fault_plan()
    reset_dispatch_state()
    reset_host_cache()
    yield
    clear_fault_plan()
    reset_dispatch_state()
    reset_host_cache()
    reset_cache()


def _axpy_builder(tier, loader):
    return make_axpy(arch=tier.arch, loader=loader)


def _check_axpy(driver):
    x = np.arange(1.0, 20.0)
    y = np.full(19, 2.0)
    driver(1.5, x, y)
    assert np.allclose(y, 2.0 + 1.5 * x)


# -- chain shape ------------------------------------------------------------

@pytest.mark.parametrize("top,names", [
    (HASWELL, ["haswell", "sandybridge", "generic_sse", "reference"]),
    (PILEDRIVER, ["piledriver", "sandybridge", "generic_sse", "reference"]),
    (SANDYBRIDGE, ["sandybridge", "generic_sse", "reference"]),
    (GENERIC_SSE, ["generic_sse", "reference"]),
], ids=lambda v: v.name if hasattr(v, "name") else "")
def test_capability_chain_orders_by_rank(top, names):
    chain = capability_chain(top)
    assert [t.name for t in chain] == names
    assert chain[-1] is REFERENCE_TIER
    assert chain[-1].is_reference and chain[-1].arch is None
    assert all(not t.is_reference for t in chain[:-1])


def test_default_chain_tracks_host():
    chain = default_chain()
    assert chain[0].arch is detect_host()
    assert chain[-1] is REFERENCE_TIER


def test_default_chain_forced_to_reference(monkeypatch):
    monkeypatch.setenv(FORCE_ARCH_ENV, "reference")
    reset_host_cache()
    assert default_chain() == [REFERENCE_TIER]


def test_tier_describe_mentions_the_isa():
    assert "numpy" in REFERENCE_TIER.describe()
    assert "AVX" in capability_chain(SANDYBRIDGE)[0].describe()


def test_reference_tier_verdict_is_always_ok():
    ok, _ = tier_verdict(REFERENCE_TIER)
    assert ok


# -- verdict memoization under concurrency ----------------------------------

def test_probe_verdict_memoized_under_concurrent_threads(monkeypatch):
    """Threads racing the first ``verify_tier`` run the sandboxed probe
    exactly once; everyone observes the winner's memoized verdict."""
    import threading

    calls = []
    release = threading.Event()

    def fake_probe(self, tier):
        calls.append(tier.arch.name)
        # hold the verdict lock long enough that every racer is queued
        # behind it before the verdict lands
        release.wait(timeout=5.0)
        return True, "ok"

    monkeypatch.setattr(DispatchChain, "_probe_tier", fake_probe)
    chain = DispatchChain(top=GENERIC_SSE)
    tier = chain.tiers[0]
    assert not tier.is_reference

    n = 8
    gate = threading.Barrier(n)
    results = [None] * n

    def racer(i):
        gate.wait(timeout=5.0)
        if i == 0:
            # let the pack pile onto the lock, then let the probe finish
            threading.Timer(0.05, release.set).start()
        results[i] = chain.verify_tier(tier)

    threads = [threading.Thread(target=racer, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert not any(t.is_alive() for t in threads), "verify_tier deadlocked"

    assert calls == ["generic_sse"], "probe must execute exactly once"
    assert results == [True] * n
    ok, detail = tier_verdict(tier)
    assert ok and detail == "ok"
    # later callers hit the memo without touching the probe path
    assert chain.verify_tier(tier)
    assert len(calls) == 1


def test_concurrent_probes_of_distinct_tiers_each_run_once(monkeypatch):
    import threading

    calls = []

    def fake_probe(self, tier):
        calls.append(tier.arch.name)
        return True, "ok"

    monkeypatch.setattr(DispatchChain, "_probe_tier", fake_probe)
    chain = DispatchChain(top=SANDYBRIDGE)
    native = [t for t in chain.tiers if not t.is_reference]
    assert len(native) >= 2

    n = 12
    gate = threading.Barrier(n)

    def racer(i):
        gate.wait(timeout=5.0)
        assert chain.verify_tier(native[i % len(native)])

    threads = [threading.Thread(target=racer, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert sorted(calls) == sorted(t.arch.name for t in native)


# -- ulp_error --------------------------------------------------------------

def test_ulp_error_basics():
    a = np.array([1.0, 2.0, 3.0])
    assert ulp_error(a, a) == 0.0
    assert ulp_error(a, np.array([1.0, 2.0])) == np.inf
    assert ulp_error(np.zeros(0), np.zeros(0)) == 0.0
    bumped = a.copy()
    bumped[1] = np.nextafter(bumped[1], np.inf)
    assert 0.0 < ulp_error(bumped, a) <= 1.0


# -- building down the chain ------------------------------------------------

def test_reference_only_chain_needs_no_toolchain(monkeypatch):
    monkeypatch.setenv(FORCE_ARCH_ENV, "reference")
    reset_host_cache()
    chain = DispatchChain()
    assert chain.tiers == [REFERENCE_TIER]

    def exploding_builder(tier, loader):
        raise AssertionError("native builder must not run on reference")

    driver, info = chain.build_routine("axpy", exploding_builder)
    assert isinstance(driver, ReferenceAxpyDriver)
    assert info.tier == "reference" and not info.demoted
    assert "axpy" in info.describe()
    _check_axpy(driver)


@needs_cc
def test_native_tier_admits_and_serves():
    chain = DispatchChain()
    driver, info = chain.build_routine("axpy", _axpy_builder)
    assert info.tier == chain.top.name
    assert not info.demoted and info.attempts == []
    ok, detail = tier_verdict(chain.top)
    assert ok and detail == "ok"
    _check_axpy(driver)


@needs_cc
def test_isa_probe_crash_demotes_to_reference():
    # every probe kernel is named isa_probe_<arch>, so this faults the
    # probe of every native tier and the chain must land on reference
    install_fault_plan(FaultPlan.parse("segv@isa_probe"))
    chain = DispatchChain()
    driver, info = chain.build_routine("axpy", _axpy_builder)
    assert info.tier == "reference" and info.demoted
    assert len(info.attempts) == len(chain.tiers) - 1
    assert all("ISA probe failed" in a for a in info.attempts)
    ok, _ = tier_verdict(chain.top)
    assert not ok
    _check_axpy(driver)


@needs_cc
def test_admission_failure_demotes_one_tier():
    # fault only the first routine kernel (the probe kernels have a
    # different symbol); an early-ret axpy computes nothing, so the
    # admission probe sees garbage and must reject the top tier
    install_fault_plan(FaultPlan.parse("wrong@daxpy_kernel:1"))
    chain = DispatchChain()
    driver, info = chain.build_routine("axpy", _axpy_builder)
    assert info.demoted
    assert info.tier == chain.tiers[1].name
    assert len(info.attempts) == 1
    assert "failed admission" in info.attempts[0]
    _check_axpy(driver)


@needs_cc
def test_quarantined_kernel_is_never_loaded(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_cache()
    top = detect_host()
    gk = Augem(arch=top).generate_named("axpy")
    get_cache().store_quarantine(
        quarantine_key("axpy", top, gk),
        {"kernel": "axpy", "arch": top.name, "error": "synthetic quarantine"})
    chain = DispatchChain()
    driver, info = chain.build_routine("axpy", _axpy_builder)
    assert info.demoted
    assert info.tier == chain.tiers[1].name
    assert "quarantined" in info.attempts[0]
    _check_axpy(driver)
