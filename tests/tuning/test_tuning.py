"""Tuning space and search tests."""

import pytest

from repro.isa.arch import GENERIC_SSE, HASWELL
from repro.transforms.pipeline import OptimizationConfig
from repro.tuning.space import (
    Candidate,
    axpy_candidates,
    candidates_for,
    dot_candidates,
    gemm_candidates,
    gemv_candidates,
)
from repro.tuning.search import tune_kernel

from tests.conftest import needs_cc


def test_gemm_space_nonempty_and_valid():
    cands = gemm_candidates(HASWELL)
    assert len(cands) >= 10
    for c in cands:
        assert isinstance(c.config, OptimizationConfig)
        nu = dict(c.config.unroll_jam).get("j", 1)
        mu = dict(c.config.unroll_jam).get("i", 1)
        # the space pre-filters register-impossible shapes
        assert nu * (mu // 4) + mu // 4 + 1 <= 16


def test_gemm_space_shuf_candidates_on_shuf_layout():
    # both 2-lane (SSE) and 4-lane (AVX) Shuf methods are in the space
    assert any(c.strategy == "shuf"
               for c in gemm_candidates(GENERIC_SSE, layout="shuf"))
    assert any(c.strategy == "shuf"
               for c in gemm_candidates(HASWELL, layout="shuf"))
    # ...but never on the dup layout (B lanes are not contiguous there)
    assert not any(c.strategy == "shuf"
                   for c in gemm_candidates(HASWELL, layout="dup"))


def test_vector_spaces_scale_with_lanes():
    for maker in (gemv_candidates, axpy_candidates, dot_candidates):
        sse = maker(GENERIC_SSE)
        avx = maker(HASWELL)
        assert sse and avx


def test_dot_candidates_always_split():
    for c in dot_candidates(HASWELL):
        assert c.config.split, "DOT must split its accumulator"
        (var, acc, ways) = c.config.split[0]
        assert ways == dict(c.config.unroll)["i"]


def test_candidates_for_dispatch():
    assert candidates_for("axpy", HASWELL)
    with pytest.raises(KeyError):
        candidates_for("cholesky", HASWELL)


def test_candidate_describe():
    c = Candidate(OptimizationConfig(unroll=(("i", 8),)), "auto")
    assert "u(i)=8" in c.describe()


@needs_cc
def test_tune_kernel_picks_a_valid_winner():
    # tiny candidate list keeps this fast
    cands = [
        Candidate(OptimizationConfig(unroll=(("i", 4),))),
        Candidate(OptimizationConfig(unroll=(("i", 8),))),
    ]
    result = tune_kernel("axpy", candidates=cands, batches=2)
    assert result.best in cands
    assert result.best_gflops > 0
    assert len(result.trials) == 2
    assert "tuning axpy" in result.report()


@needs_cc
def test_tune_kernel_records_failures_and_survives():
    # an over-aggressive unroll that blows the register file must be
    # recorded as a failed trial, not crash the search
    cands = [
        Candidate(OptimizationConfig(unroll_jam=(("j", 8), ("i", 16)))),
        Candidate(OptimizationConfig(unroll_jam=(("j", 2), ("i", 8)))),
    ]
    result = tune_kernel("gemm", candidates=cands, batches=2)
    assert result.best is cands[1]
    failed = [t for t in result.trials if t.gflops < 0]
    assert len(failed) == 1 and failed[0].error
