"""Tuning space and search tests."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.isa.arch import GENERIC_SSE, HASWELL
from repro.transforms.pipeline import OptimizationConfig
from repro.tuning.space import (
    Candidate,
    axpy_candidates,
    candidates_for,
    dot_candidates,
    gemm_candidates,
    gemv_candidates,
)
from repro.tuning.search import tune_kernel

from tests.conftest import needs_cc


def test_gemm_space_nonempty_and_valid():
    cands = gemm_candidates(HASWELL)
    assert len(cands) >= 10
    for c in cands:
        assert isinstance(c.config, OptimizationConfig)
        nu = dict(c.config.unroll_jam).get("j", 1)
        mu = dict(c.config.unroll_jam).get("i", 1)
        # the space pre-filters register-impossible shapes
        assert nu * (mu // 4) + mu // 4 + 1 <= 16


def test_gemm_space_shuf_candidates_on_shuf_layout():
    # both 2-lane (SSE) and 4-lane (AVX) Shuf methods are in the space
    assert any(c.strategy == "shuf"
               for c in gemm_candidates(GENERIC_SSE, layout="shuf"))
    assert any(c.strategy == "shuf"
               for c in gemm_candidates(HASWELL, layout="shuf"))
    # ...but never on the dup layout (B lanes are not contiguous there)
    assert not any(c.strategy == "shuf"
                   for c in gemm_candidates(HASWELL, layout="dup"))


def test_vector_spaces_scale_with_lanes():
    for maker in (gemv_candidates, axpy_candidates, dot_candidates):
        sse = maker(GENERIC_SSE)
        avx = maker(HASWELL)
        assert sse and avx


def test_dot_candidates_always_split():
    for c in dot_candidates(HASWELL):
        assert c.config.split, "DOT must split its accumulator"
        (var, acc, ways) = c.config.split[0]
        assert ways == dict(c.config.unroll)["i"]


def test_candidates_for_dispatch():
    assert candidates_for("axpy", HASWELL)
    with pytest.raises(KeyError):
        candidates_for("cholesky", HASWELL)


def test_candidate_describe():
    c = Candidate(OptimizationConfig(unroll=(("i", 8),)), "auto")
    assert "u(i)=8" in c.describe()


@needs_cc
def test_tune_kernel_picks_a_valid_winner():
    # tiny candidate list keeps this fast
    cands = [
        Candidate(OptimizationConfig(unroll=(("i", 4),))),
        Candidate(OptimizationConfig(unroll=(("i", 8),))),
    ]
    result = tune_kernel("axpy", candidates=cands, batches=2)
    assert result.best in cands
    assert result.best_gflops > 0
    assert len(result.trials) == 2
    assert "tuning axpy" in result.report()


@pytest.fixture
def tuning_store(tmp_path, monkeypatch):
    """A fresh persistent store so tuning tests exercise reuse."""
    from repro.backend.cache import reset_cache
    from repro.backend.compiler import reset_so_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    reset_cache()
    reset_so_cache()
    yield tmp_path / "store"
    reset_cache()
    reset_so_cache()


@needs_cc
def test_parallel_tuning_matches_serial_winner(tuning_store):
    """jobs>1 must pick the same best candidate as the serial search."""
    from repro.backend.cache import get_cache

    cands = [
        Candidate(OptimizationConfig(unroll=(("i", 4),))),
        Candidate(OptimizationConfig(unroll=(("i", 8),))),
        Candidate(OptimizationConfig(unroll_jam=(("j", 8), ("i", 16)))),  # fails
    ]
    serial = tune_kernel("axpy", candidates=cands, batches=2)
    parallel = tune_kernel("axpy", candidates=cands, batches=2, jobs=2)
    assert parallel.best is serial.best
    assert parallel.best_gflops == serial.best_gflops
    # the second search replayed every persisted measurement (the failing
    # candidate fails again instead of being replayed)
    ok = [t for t in parallel.trials if t.gflops >= 0]
    assert ok and all(t.cached for t in ok)
    assert [t.candidate for t in parallel.trials] == cands  # order kept
    assert get_cache().stats.tuning_hits == len(ok)


@needs_cc
def test_warm_retune_invokes_no_toolchain(tuning_store):
    """Re-tuning with a warm store must rebuild and re-time nothing."""
    from repro.backend.cache import get_cache
    from repro.backend.compiler import reset_so_cache

    cands = [Candidate(OptimizationConfig(unroll=(("i", 4),)))]
    tune_kernel("axpy", candidates=cands, batches=2)
    reset_so_cache()  # simulate a fresh process
    before = get_cache().stats.toolchain_invocations
    result = tune_kernel("axpy", candidates=cands, batches=2)
    assert get_cache().stats.toolchain_invocations == before
    assert result.trials[0].cached


@needs_cc
def test_retune_without_reuse_retimes(tuning_store):
    cands = [Candidate(OptimizationConfig(unroll=(("i", 4),)))]
    tune_kernel("axpy", candidates=cands, batches=2)
    result = tune_kernel("axpy", candidates=cands, batches=2, reuse=False)
    assert not result.trials[0].cached
    assert result.best_gflops > 0


@needs_cc
def test_timed_axpy_uses_scratch_not_shared_y(tuning_store, monkeypatch):
    """The timing loop must never mutate the shared validation vector.

    Historically ``measure`` was handed ``lambda: native(n, 1.5, x, y)``
    with the *shared* ``y``, so thousands of timed calls accumulated
    ``1.5*x`` into the vector every later candidate validates against.
    Capture the timed closures for two candidates: they must share exactly
    one vector-length array (the read-only ``x``) — the accumulated-into
    target has to be a fresh per-candidate scratch.
    """
    import numpy as np

    from repro.backend.timer import measure as real_measure

    captured = []
    held = []  # keep the arrays alive so a freed scratch buffer cannot
               # be reallocated at the same address (id reuse would make
               # the per-candidate sets spuriously intersect)

    def spy_measure(fn, batches=5, **kw):
        # snapshot at call time: the closure cells are shared across loop
        # iterations, so inspecting later would see the last binding
        arrays = [c.cell_contents for c in fn.__closure__ or ()
                  if isinstance(c.cell_contents, np.ndarray)
                  and c.cell_contents.size == 1 << 16]
        held.extend(arrays)
        captured.append({id(a) for a in arrays})
        return real_measure(fn, batches=1, calls_per_batch=1)

    monkeypatch.setattr("repro.tuning.search.measure", spy_measure)
    cand = Candidate(OptimizationConfig(unroll=(("i", 4),)))
    result = tune_kernel("axpy", candidates=[cand, cand], batches=3,
                         reuse=False)
    assert all(t.gflops > 0 for t in result.trials), [
        t.error for t in result.trials]
    assert len(captured) == 2
    assert len(captured[0] & captured[1]) == 1


_TUNE_CHILD = r"""
from repro.tuning.search import tune_kernel
from repro.tuning.space import Candidate
from repro.transforms.pipeline import OptimizationConfig
from repro.backend.cache import get_cache
cands = [Candidate(OptimizationConfig(unroll=(("i", 4),))),
         Candidate(OptimizationConfig(unroll=(("i", 8),)))]
r = tune_kernel("axpy", candidates=cands, batches=2, jobs=2)
print("RESULT", get_cache().stats.toolchain_invocations, r.best.describe())
"""


@needs_cc
def test_fresh_process_retune_reuses_on_disk_artifacts(tmp_path):
    """Acceptance: a second tune run in a fresh process is zero-toolchain."""
    env = {"REPRO_CACHE_DIR": str(tmp_path / "store"),
           "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
           "PATH": "/usr/bin:/bin", "HOME": str(tmp_path)}
    outs = []
    for _ in range(2):
        proc = subprocess.run([sys.executable, "-c", _TUNE_CHILD],
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        outs.append(proc.stdout.strip().splitlines()[-1].split(maxsplit=2))
    assert int(outs[0][1]) > 0    # cold run drove the toolchain
    assert int(outs[1][1]) == 0   # warm run: zero toolchain invocations
    assert outs[0][2] == outs[1][2]  # and the same winner


@needs_cc
def test_tune_kernel_records_failures_and_survives():
    # an over-aggressive unroll that blows the register file must be
    # recorded as a failed trial, not crash the search
    cands = [
        Candidate(OptimizationConfig(unroll_jam=(("j", 8), ("i", 16)))),
        Candidate(OptimizationConfig(unroll_jam=(("j", 2), ("i", 8)))),
    ]
    result = tune_kernel("gemm", candidates=cands, batches=2)
    assert result.best is cands[1]
    failed = [t for t in result.trials if t.gflops < 0]
    assert len(failed) == 1 and failed[0].error
    # the exception class survives into the error string (crash triage)
    assert ": " in failed[0].error
    assert failed[0].category == "failed"


# -- fault isolation ----------------------------------------------------------


@pytest.fixture
def fault_env(monkeypatch):
    """Set a fault plan via the env (what the CLI / bench harness use)."""
    from repro.backend import faults

    faults.clear_fault_plan()

    def arm(spec):
        monkeypatch.setenv("REPRO_FAULT_INJECT", spec)

    yield arm
    faults.clear_fault_plan()


_AXPY_CANDS = [Candidate(OptimizationConfig(unroll=(("i", n),)))
               for n in (2, 4, 8, 16)]


@needs_cc
def test_isolated_tuning_survives_crash_hang_and_toolchain_fault(
        tuning_store, fault_env):
    """Acceptance: SIGSEGV + hang + toolchain failure in three distinct
    candidates; the search still returns a valid winner with all three
    recorded as categorized failed trials."""
    # index matches (#N) are seen by asm-stage faults only — address the
    # third candidate's *build* by its deterministic symbol name instead
    from repro.core.framework import stable_kernel_name
    from repro.isa.arch import detect_host

    name2 = stable_kernel_name("axpy", detect_host(),
                               _AXPY_CANDS[2].config,
                               _AXPY_CANDS[2].strategy)
    fault_env(f"segv@#0;hang@#1;toolchain@{name2}")

    result = tune_kernel("axpy", candidates=_AXPY_CANDS, batches=2,
                         isolation="fork", trial_timeout=1.0)
    assert result.best is _AXPY_CANDS[3]
    assert result.best_gflops > 0
    cats = [t.category for t in result.trials]
    assert cats[0] == "crashed" and "SIG" in result.trials[0].error
    assert cats[1] == "timeout"
    assert cats[2] == "failed" and "ToolchainError" in result.trials[2].error
    assert cats[3] == "ok"
    counts = result.failure_counts()
    assert counts == {"failed": 1, "crashed": 1, "timeout": 1,
                      "quarantined": 0}
    # every category is surfaced in the human report
    rep = result.report()
    assert "crashed=1" in rep and "timeout=1" in rep and "failed=1" in rep


@needs_cc
def test_quarantine_skips_crashers_on_retune(tuning_store, fault_env):
    """Acceptance: a second run must not re-execute known crashers."""
    from repro.backend.cache import get_cache

    fault_env("segv@#0;hang@#1")
    first = tune_kernel("axpy", candidates=_AXPY_CANDS, batches=2,
                        isolation="fork", trial_timeout=1.0)
    assert [t.category for t in first.trials[:2]] == ["crashed", "timeout"]
    assert get_cache().stats.quarantine_puts == 2

    import time

    t0 = time.monotonic()
    second = tune_kernel("axpy", candidates=_AXPY_CANDS, batches=2,
                         isolation="fork", trial_timeout=30.0)
    elapsed = time.monotonic() - t0
    cats = [t.category for t in second.trials]
    assert cats[:2] == ["quarantined", "quarantined"]
    assert second.trials[0].error.startswith("quarantined:")
    assert second.best in _AXPY_CANDS[2:] and second.best_gflops > 0
    # the hang candidate was *skipped*, not re-run: with a 30s trial
    # budget, re-executing it would have taken >= 30s
    assert elapsed < 25
    assert get_cache().stats.quarantine_hits == 2
    # cache clear releases the quarantine: the crasher executes (and
    # crashes) again instead of being skipped
    get_cache().clear()
    fault_env("segv@#0")
    third = tune_kernel("axpy", candidates=_AXPY_CANDS[:1] + _AXPY_CANDS[3:],
                        batches=2, isolation="fork", trial_timeout=1.0)
    assert third.trials[0].category == "crashed"
    assert third.trials[1].category == "ok"


@needs_cc
def test_wrong_result_fault_fails_validation_not_process(tuning_store,
                                                         fault_env):
    """An injected early-ret kernel computes nothing: validation must
    reject it in both isolation modes, with identical classification."""
    for iso in ("fork", "none"):
        fault_env("wrong@#0")
        result = tune_kernel("axpy", candidates=_AXPY_CANDS[:2], batches=2,
                             isolation=iso, reuse=False)
        assert result.trials[0].category == "failed"
        assert "validation failed" in result.trials[0].error
        assert result.best is _AXPY_CANDS[1]


@needs_cc
def test_isolation_none_matches_fork_winner(tuning_store, monkeypatch):
    # script the timings: the invariant under test is that the isolation
    # mode does not change the search outcome, not that two wall-clock
    # measurements of near-identical unrolls agree under load
    script = []

    class _Scripted:
        def __init__(self, gf):
            self._gf = gf

        def gflops(self, flops):
            return self._gf

    monkeypatch.setattr(
        "repro.tuning.search.measure",
        lambda fn, batches=5, **kw: _Scripted(script.pop(0)))
    script[:] = [1.0, 2.0]
    forked = tune_kernel("axpy", candidates=_AXPY_CANDS[:2], batches=2,
                         isolation="fork", reuse=False)
    script[:] = [1.0, 2.0]
    inline = tune_kernel("axpy", candidates=_AXPY_CANDS[:2], batches=2,
                         isolation="none", reuse=False)
    assert forked.best is inline.best
    assert forked.best is _AXPY_CANDS[1]
    assert all(t.category == "ok" for t in forked.trials + inline.trials)


def test_report_includes_category_summary_line():
    from repro.isa.arch import HASWELL
    from repro.tuning.search import TrialResult, TuningResult

    c = Candidate(OptimizationConfig(unroll=(("i", 4),)))
    r = TuningResult(kernel="axpy", arch=HASWELL, best=c, best_gflops=2.0,
                     trials=[
                         TrialResult(c, 2.0),
                         TrialResult(c, -1.0, error="SIGSEGV in candidate x",
                                     category="crashed"),
                         TrialResult(c, -1.0, error="quarantined: earlier",
                                     category="quarantined"),
                     ])
    rep = r.report()
    assert "3 trials: ok=1 failed=0 crashed=1 timeout=0 quarantined=1" in rep
    assert "crashed: SIGSEGV in candidate x" in rep


@needs_cc
def test_tune_kernel_never_writes_stdout(capsys):
    """stdout belongs to machine-readable output; quiet tuning must emit
    nothing there, and verbose narration goes to stderr (via obs.progress),
    never stdout."""
    cands = [Candidate(OptimizationConfig(unroll=(("i", n),)))
             for n in (2, 4)]
    tune_kernel("axpy", candidates=cands, batches=1, reuse=False,
                verbose=False)
    captured = capsys.readouterr()
    assert captured.out == ""

    tune_kernel("axpy", candidates=cands, batches=1, reuse=False,
                verbose=True)
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "u(i)=2" in captured.err  # narration still reaches the user
