"""Tuning space and search tests."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.isa.arch import GENERIC_SSE, HASWELL
from repro.transforms.pipeline import OptimizationConfig
from repro.tuning.space import (
    Candidate,
    axpy_candidates,
    candidates_for,
    dot_candidates,
    gemm_candidates,
    gemv_candidates,
)
from repro.tuning.search import tune_kernel

from tests.conftest import needs_cc


def test_gemm_space_nonempty_and_valid():
    cands = gemm_candidates(HASWELL)
    assert len(cands) >= 10
    for c in cands:
        assert isinstance(c.config, OptimizationConfig)
        nu = dict(c.config.unroll_jam).get("j", 1)
        mu = dict(c.config.unroll_jam).get("i", 1)
        # the space pre-filters register-impossible shapes
        assert nu * (mu // 4) + mu // 4 + 1 <= 16


def test_gemm_space_shuf_candidates_on_shuf_layout():
    # both 2-lane (SSE) and 4-lane (AVX) Shuf methods are in the space
    assert any(c.strategy == "shuf"
               for c in gemm_candidates(GENERIC_SSE, layout="shuf"))
    assert any(c.strategy == "shuf"
               for c in gemm_candidates(HASWELL, layout="shuf"))
    # ...but never on the dup layout (B lanes are not contiguous there)
    assert not any(c.strategy == "shuf"
                   for c in gemm_candidates(HASWELL, layout="dup"))


def test_vector_spaces_scale_with_lanes():
    for maker in (gemv_candidates, axpy_candidates, dot_candidates):
        sse = maker(GENERIC_SSE)
        avx = maker(HASWELL)
        assert sse and avx


def test_dot_candidates_always_split():
    for c in dot_candidates(HASWELL):
        assert c.config.split, "DOT must split its accumulator"
        (var, acc, ways) = c.config.split[0]
        assert ways == dict(c.config.unroll)["i"]


def test_candidates_for_dispatch():
    assert candidates_for("axpy", HASWELL)
    with pytest.raises(KeyError):
        candidates_for("cholesky", HASWELL)


def test_candidate_describe():
    c = Candidate(OptimizationConfig(unroll=(("i", 8),)), "auto")
    assert "u(i)=8" in c.describe()


@needs_cc
def test_tune_kernel_picks_a_valid_winner():
    # tiny candidate list keeps this fast
    cands = [
        Candidate(OptimizationConfig(unroll=(("i", 4),))),
        Candidate(OptimizationConfig(unroll=(("i", 8),))),
    ]
    result = tune_kernel("axpy", candidates=cands, batches=2)
    assert result.best in cands
    assert result.best_gflops > 0
    assert len(result.trials) == 2
    assert "tuning axpy" in result.report()


@pytest.fixture
def tuning_store(tmp_path, monkeypatch):
    """A fresh persistent store so tuning tests exercise reuse."""
    from repro.backend.cache import reset_cache
    from repro.backend.compiler import reset_so_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    reset_cache()
    reset_so_cache()
    yield tmp_path / "store"
    reset_cache()
    reset_so_cache()


@needs_cc
def test_parallel_tuning_matches_serial_winner(tuning_store):
    """jobs>1 must pick the same best candidate as the serial search."""
    from repro.backend.cache import get_cache

    cands = [
        Candidate(OptimizationConfig(unroll=(("i", 4),))),
        Candidate(OptimizationConfig(unroll=(("i", 8),))),
        Candidate(OptimizationConfig(unroll_jam=(("j", 8), ("i", 16)))),  # fails
    ]
    serial = tune_kernel("axpy", candidates=cands, batches=2)
    parallel = tune_kernel("axpy", candidates=cands, batches=2, jobs=2)
    assert parallel.best is serial.best
    assert parallel.best_gflops == serial.best_gflops
    # the second search replayed every persisted measurement (the failing
    # candidate fails again instead of being replayed)
    ok = [t for t in parallel.trials if t.gflops >= 0]
    assert ok and all(t.cached for t in ok)
    assert [t.candidate for t in parallel.trials] == cands  # order kept
    assert get_cache().stats.tuning_hits == len(ok)


@needs_cc
def test_warm_retune_invokes_no_toolchain(tuning_store):
    """Re-tuning with a warm store must rebuild and re-time nothing."""
    from repro.backend.cache import get_cache
    from repro.backend.compiler import reset_so_cache

    cands = [Candidate(OptimizationConfig(unroll=(("i", 4),)))]
    tune_kernel("axpy", candidates=cands, batches=2)
    reset_so_cache()  # simulate a fresh process
    before = get_cache().stats.toolchain_invocations
    result = tune_kernel("axpy", candidates=cands, batches=2)
    assert get_cache().stats.toolchain_invocations == before
    assert result.trials[0].cached


@needs_cc
def test_retune_without_reuse_retimes(tuning_store):
    cands = [Candidate(OptimizationConfig(unroll=(("i", 4),)))]
    tune_kernel("axpy", candidates=cands, batches=2)
    result = tune_kernel("axpy", candidates=cands, batches=2, reuse=False)
    assert not result.trials[0].cached
    assert result.best_gflops > 0


@needs_cc
def test_timed_axpy_uses_scratch_not_shared_y(tuning_store, monkeypatch):
    """The timing loop must never mutate the shared validation vector.

    Historically ``measure`` was handed ``lambda: native(n, 1.5, x, y)``
    with the *shared* ``y``, so thousands of timed calls accumulated
    ``1.5*x`` into the vector every later candidate validates against.
    Capture the timed closures for two candidates: they must share exactly
    one vector-length array (the read-only ``x``) — the accumulated-into
    target has to be a fresh per-candidate scratch.
    """
    import numpy as np

    from repro.backend.timer import measure as real_measure

    captured = []

    def spy_measure(fn, batches=5, **kw):
        # snapshot at call time: the closure cells are shared across loop
        # iterations, so inspecting later would see the last binding
        captured.append({id(c.cell_contents) for c in fn.__closure__ or ()
                         if isinstance(c.cell_contents, np.ndarray)
                         and c.cell_contents.size == 1 << 16})
        return real_measure(fn, batches=1, calls_per_batch=1)

    monkeypatch.setattr("repro.tuning.search.measure", spy_measure)
    cand = Candidate(OptimizationConfig(unroll=(("i", 4),)))
    result = tune_kernel("axpy", candidates=[cand, cand], batches=3,
                         reuse=False)
    assert all(t.gflops > 0 for t in result.trials), [
        t.error for t in result.trials]
    assert len(captured) == 2
    assert len(captured[0] & captured[1]) == 1


_TUNE_CHILD = r"""
from repro.tuning.search import tune_kernel
from repro.tuning.space import Candidate
from repro.transforms.pipeline import OptimizationConfig
from repro.backend.cache import get_cache
cands = [Candidate(OptimizationConfig(unroll=(("i", 4),))),
         Candidate(OptimizationConfig(unroll=(("i", 8),)))]
r = tune_kernel("axpy", candidates=cands, batches=2, jobs=2)
print("RESULT", get_cache().stats.toolchain_invocations, r.best.describe())
"""


@needs_cc
def test_fresh_process_retune_reuses_on_disk_artifacts(tmp_path):
    """Acceptance: a second tune run in a fresh process is zero-toolchain."""
    env = {"REPRO_CACHE_DIR": str(tmp_path / "store"),
           "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
           "PATH": "/usr/bin:/bin", "HOME": str(tmp_path)}
    outs = []
    for _ in range(2):
        proc = subprocess.run([sys.executable, "-c", _TUNE_CHILD],
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        outs.append(proc.stdout.strip().splitlines()[-1].split(maxsplit=2))
    assert int(outs[0][1]) > 0    # cold run drove the toolchain
    assert int(outs[1][1]) == 0   # warm run: zero toolchain invocations
    assert outs[0][2] == outs[1][2]  # and the same winner


@needs_cc
def test_tune_kernel_records_failures_and_survives():
    # an over-aggressive unroll that blows the register file must be
    # recorded as a failed trial, not crash the search
    cands = [
        Candidate(OptimizationConfig(unroll_jam=(("j", 8), ("i", 16)))),
        Candidate(OptimizationConfig(unroll_jam=(("j", 2), ("i", 8)))),
    ]
    result = tune_kernel("gemm", candidates=cands, batches=2)
    assert result.best is cands[1]
    failed = [t for t in result.trials if t.gflops < 0]
    assert len(failed) == 1 and failed[0].error
