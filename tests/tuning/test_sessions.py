"""Durable tuning sessions: journal, interrupt, resume, concurrency, gc."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.transforms.pipeline import OptimizationConfig
from repro.tuning import session as sessions
from repro.tuning.search import (
    EXIT_INTERRUPTED,
    TuningInterrupted,
    tune_kernel,
)
from repro.tuning.space import Candidate

from tests.conftest import needs_cc

SRC = str(Path(__file__).resolve().parents[2] / "src")

_CANDS = [Candidate(OptimizationConfig(unroll=(("i", n),)))
          for n in (2, 4, 8)]


@pytest.fixture
def session_store(tmp_path, monkeypatch):
    """A fresh persistent store (sessions need the cache enabled)."""
    from repro.backend.cache import reset_cache
    from repro.backend.compiler import reset_so_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    reset_cache()
    reset_so_cache()
    yield tmp_path / "store"
    reset_cache()
    reset_so_cache()


@pytest.fixture
def fault_env(monkeypatch):
    from repro.backend import faults

    faults.clear_fault_plan()

    def arm(spec):
        monkeypatch.setenv("REPRO_FAULT_INJECT", spec)

    yield arm
    faults.clear_fault_plan()


# -- session primitives -------------------------------------------------------


def test_session_roundtrip_and_journal(tmp_path):
    sess = sessions.TuningSession.create(
        tmp_path, "axpy", "axpy", "dup", "haswell", 2,
        ["c0", "c1"], "feedface")
    assert sess.status == sessions.RUNNING
    assert sess.is_live()
    sess.record_trial(sessions.TrialRecord(0, "c0", 2.5))
    sess.record_trial(sessions.TrialRecord(1, "c1", -1.0,
                                           category="failed",
                                           error="RuntimeError: boom"))
    reopened = sessions.TuningSession.open(sess.path)
    assert reopened is not None
    assert reopened.manifest["trials_done"] == 2
    entries = reopened.journal_entries()
    assert [e.index for e in entries] == [0, 1]
    assert entries[0].gflops == 2.5 and entries[0].category == "ok"
    assert entries[1].error == "RuntimeError: boom"
    sess.finish(sessions.COMPLETE, best="c0")
    assert sessions.TuningSession.open(sess.path).status == sessions.COMPLETE


def test_torn_final_journal_line_is_dropped(tmp_path):
    sess = sessions.TuningSession.create(
        tmp_path, "axpy", "axpy", "dup", "haswell", 2, ["c0"], "cafe")
    sess.record_trial(sessions.TrialRecord(0, "c0", 1.0))
    sess.finish(sessions.INTERRUPTED)
    # simulate a SIGKILL mid-append: a torn, unparseable trailing line
    with open(sess.journal_path, "a") as fh:
        fh.write('{"i": 1, "candidate": "c1", "gfl')
    entries = sessions.TuningSession.open(sess.path).journal_entries()
    assert [e.index for e in entries] == [0]


def test_search_key_sensitivity():
    base = sessions.search_key("axpy", "haswell", 2, ["a", "b"], 1)
    assert base == sessions.search_key("axpy", "haswell", 2, ["a", "b"], 1)
    assert base != sessions.search_key("axpy", "haswell", 3, ["a", "b"], 1)
    assert base != sessions.search_key("axpy", "haswell", 2, ["a"], 1)
    assert base != sessions.search_key("axpy", "generic_sse", 2,
                                       ["a", "b"], 1)
    assert base != sessions.search_key("axpy", "haswell", 2, ["a", "b"], 2)


def test_running_session_with_dead_pid_is_resumable(tmp_path):
    sess = sessions.TuningSession.create(
        tmp_path, "axpy", "axpy", "dup", "haswell", 2, ["c0"], "dead")
    assert not sess.is_resumable()  # our own live pid
    proc = subprocess.run(
        [sys.executable, "-c", "import os;print(os.getpid())"],
        capture_output=True, text=True)
    sess.manifest["pid"] = int(proc.stdout)  # a pid that no longer exists
    sess._write_manifest()
    reopened = sessions.TuningSession.open(sess.path)
    assert not reopened.is_live()
    assert reopened.is_resumable()


# -- interrupt + resume -------------------------------------------------------


@needs_cc
def test_injected_interrupt_seals_session_with_journal(session_store,
                                                       fault_env):
    fault_env("interrupt@#2")
    with pytest.raises(TuningInterrupted) as err:
        tune_kernel("axpy", candidates=_CANDS, batches=1, reuse=False)
    assert err.value.done == 2 and err.value.total == 3
    assert "--resume" in str(err.value)
    found = sessions.list_sessions()
    assert len(found) == 1
    sess = found[0]
    assert sess.status == sessions.INTERRUPTED
    assert sess.id == err.value.session_id
    entries = sess.journal_entries()
    assert [e.index for e in entries] == [0, 1]
    assert all(e.gflops > 0 for e in entries)


@needs_cc
def test_resume_replays_journal_without_retiming(session_store, fault_env,
                                                monkeypatch):
    """Acceptance: --resume skips journaled trials, re-times nothing
    already measured, and converges to the uninterrupted winner."""
    # candidate order is deterministic, so scripting one measurement per
    # timing call makes the winner exact instead of wall-clock-noisy
    script = []
    timed = []

    class _Scripted:
        def __init__(self, gf):
            self._gf = gf

        def gflops(self, flops):
            return self._gf

    def fake_measure(fn, batches=5, **kw):
        timed.append(1)
        return _Scripted(script.pop(0))

    monkeypatch.setattr("repro.tuning.search.measure", fake_measure)

    # the ground truth: an uninterrupted search over the same candidates
    script[:] = [1.0, 3.0, 2.0]
    reference = tune_kernel("axpy", candidates=_CANDS, batches=1,
                            reuse=False)
    assert reference.best is _CANDS[1]
    from repro.backend.cache import get_cache

    get_cache().clear()

    fault_env("interrupt@#2")
    script[:] = [1.0, 3.0]
    with pytest.raises(TuningInterrupted):
        tune_kernel("axpy", candidates=_CANDS, batches=1, reuse=False)
    monkeypatch.delenv("REPRO_FAULT_INJECT")
    from repro.backend import faults

    faults.clear_fault_plan()

    timed.clear()
    script[:] = [2.0]
    result = tune_kernel("axpy", candidates=_CANDS, batches=1,
                         reuse=False, resume=True)
    # only the one unjournaled candidate was ever timed
    assert len(timed) == 1
    assert [t.resumed for t in result.trials] == [True, True, False]
    assert result.best is reference.best
    # the journal replay carried the recorded numbers through verbatim
    assert result.trials[1].gflops == 3.0
    assert result.best_gflops == 3.0
    # and the session sealed complete with the full journal
    sess = sessions.list_sessions()[0]
    assert sess.status == sessions.COMPLETE
    assert len(sess.journal_entries()) == 3


@needs_cc
def test_resume_without_prior_session_starts_fresh(session_store):
    result = tune_kernel("axpy", candidates=_CANDS[:2], batches=1,
                         reuse=False, resume=True)
    assert not any(t.resumed for t in result.trials)
    assert result.best_gflops > 0


@needs_cc
def test_sigint_finishes_inflight_trial_then_stops(session_store,
                                                   monkeypatch):
    """A real SIGINT mid-measurement finishes that trial, journals it,
    and stops before the next candidate."""
    from repro.backend.timer import measure as real_measure

    fired = []

    def interrupting_measure(fn, batches=5, **kw):
        if not fired:
            fired.append(1)
            os.kill(os.getpid(), signal.SIGINT)  # handler just sets a flag
        return real_measure(fn, batches=batches, **kw)

    monkeypatch.setattr("repro.tuning.search.measure",
                        interrupting_measure)
    with pytest.raises(TuningInterrupted) as err:
        tune_kernel("axpy", candidates=_CANDS, batches=1, reuse=False)
    assert err.value.reason == "SIGINT"
    assert err.value.done == 1  # the in-flight trial completed + journaled
    sess = sessions.list_sessions()[0]
    assert sess.status == sessions.INTERRUPTED
    entries = sess.journal_entries()
    assert len(entries) == 1 and entries[0].gflops > 0
    # the search restored the previous SIGINT disposition on the way out
    assert signal.getsignal(signal.SIGINT) is not None


@needs_cc
def test_cache_disabled_interrupt_has_no_session(fault_env, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "off")
    from repro.backend.cache import reset_cache

    reset_cache()
    fault_env("interrupt@#1")
    with pytest.raises(TuningInterrupted) as err:
        tune_kernel("axpy", candidates=_CANDS[:2], batches=1, reuse=False)
    assert err.value.session_id is None
    assert "cache disabled" in str(err.value)
    reset_cache()


# -- CLI ---------------------------------------------------------------------


@needs_cc
def test_cli_interrupt_exit_code_and_resume(session_store, fault_env,
                                            capsys):
    from repro.__main__ import main

    fault_env("interrupt@#1")
    assert main(["tune", "axpy"]) == EXIT_INTERRUPTED
    err = capsys.readouterr().err
    assert "interrupted:" in err and "--resume" in err

    from repro.backend import faults

    faults.clear_fault_plan()
    os.environ.pop("REPRO_FAULT_INJECT", None)

    assert main(["tune", "sessions", "list"]) == 0
    out = capsys.readouterr().out
    assert "interrupted" in out
    sid = out.split()[0]

    assert main(["tune", "sessions", "show", sid]) == 0
    out = capsys.readouterr().out
    assert '"status": "interrupted"' in out and "journal:" in out

    assert main(["tune", "sessions", "resume", sid]) == 0
    out = capsys.readouterr().out
    assert "(resumed)" in out and "<== best" in out

    # a completed session is not resumable a second time
    assert main(["tune", "sessions", "resume", sid]) == 2


def test_cli_sessions_unavailable_when_cache_off(capsys, monkeypatch):
    from repro.__main__ import main

    monkeypatch.setenv("REPRO_CACHE_DIR", "off")
    assert main(["tune", "sessions", "list"]) == 2
    assert "sessions unavailable" in capsys.readouterr().err


def test_cli_sessions_gc_and_unknown_id(session_store, capsys):
    from repro.__main__ import main

    assert main(["tune", "sessions", "gc"]) == 0
    assert "removed 0 sessions" in capsys.readouterr().out
    assert main(["tune", "sessions", "show", "nope"]) == 2
    assert "no session" in capsys.readouterr().err


# -- concurrency --------------------------------------------------------------


_CONCURRENT_CHILD = r"""
import sys
sys.path.insert(0, {src!r})
import repro.tuning.search as search
from repro.tuning.search import tune_kernel
from repro.tuning.space import Candidate
from repro.transforms.pipeline import OptimizationConfig

# scripted timings (candidate order, reuse=False forces both to be
# timed): the race under test is over the shared store, not the clock
script = [1.0, 2.0]


class _M:
    def __init__(self, gf):
        self.gf = gf

    def gflops(self, flops):
        return self.gf


search.measure = lambda fn, batches=5, **kw: _M(script.pop(0))
cands = [Candidate(OptimizationConfig(unroll=(("i", n),))) for n in (2, 4)]
r = tune_kernel("axpy", candidates=cands, batches=1, reuse=False)
print("WINNER", r.best.describe())
"""


@needs_cc
def test_two_concurrent_tuners_one_store_no_corruption(tmp_path):
    """Acceptance: two processes tuning the same kernel against one
    REPRO_CACHE_DIR finish cleanly with valid JSON and no leaked locks."""
    store = tmp_path / "store"
    env = {"REPRO_CACHE_DIR": str(store),
           "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
           "HOME": str(tmp_path)}
    child = _CONCURRENT_CHILD.format(src=SRC)
    procs = [subprocess.Popen([sys.executable, "-c", child],
                              stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE, text=True, env=env)
             for _ in range(2)]
    winners = []
    for proc in procs:
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err
        winners.append(out.strip().splitlines()[-1])
    assert winners[0] == winners[1]
    # every JSON record in the store parses (nothing half-written)
    checked = 0
    for path in store.rglob("*.json"):
        json.loads(path.read_text())
        checked += 1
    assert checked > 0
    # both sessions sealed complete; no lock files left behind
    listed = sessions.list_sessions(store)
    assert len(listed) == 2
    assert all(s.status == sessions.COMPLETE for s in listed)
    if (store / "locks").exists():
        assert list((store / "locks").glob("*.lock")) == []


# -- gc ----------------------------------------------------------------------


def test_gc_prunes_finished_and_abandoned_keeps_live_and_resumable(
        tmp_path):
    cache_root = tmp_path / "cacheroot"
    sroot = cache_root / "sessions"
    sroot.mkdir(parents=True)

    def make(status, sid, age=0.0):
        sess = sessions.TuningSession.create(
            sroot, "axpy", "axpy", "dup", "haswell", 1, ["c"], sid)
        sess.manifest["status"] = status
        if age:
            sess.manifest["updated"] = time.time() - age
        sess._write_manifest()
        return sess

    done = make(sessions.COMPLETE, "d1d1d1d1")
    failed = make(sessions.FAILED, "f1f1f1f1")
    interrupted = make(sessions.INTERRUPTED, "i1i1i1i1")
    live = make(sessions.RUNNING, "l1l1l1l1")  # our pid: live
    ancient = make(sessions.INTERRUPTED, "a1a1a1a1",
                   age=2 * sessions.DEFAULT_GC_AGE)

    result = sessions.gc_sessions(root=cache_root)
    assert sorted(result.removed) == sorted(
        [done.id, failed.id, ancient.id])
    assert sorted(result.kept) == sorted([interrupted.id, live.id])

    # --all prunes the resumable one too, never the live one
    result = sessions.gc_sessions(root=cache_root,
                                  include_resumable=True)
    assert result.removed == [interrupted.id]
    assert result.kept == [live.id]

    # gc over a missing root is a harmless no-op
    empty = sessions.gc_sessions(root=tmp_path / "nothing")
    assert empty.removed == [] and empty.kept == []
