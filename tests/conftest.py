"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
import threading

import numpy as np
import pytest

# Hermetic by default: unless the invoker points REPRO_CACHE_DIR somewhere
# explicitly, the persistent kernel cache is disabled for the whole suite
# so test runs neither read nor pollute ~/.cache/repro-augem. Cache tests
# opt back in with monkeypatch.setenv + reset_cache() against a tmp_path.
os.environ.setdefault("REPRO_CACHE_DIR", "off")

from repro.backend.compiler import have_native_toolchain
from repro.isa.arch import GENERIC_SSE, HASWELL, PILEDRIVER, SANDYBRIDGE, detect_host

HAVE_CC = have_native_toolchain()

needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler available")


# ---------------------------------------------------------------------------
# Fallback per-test timeout watchdog
#
# The suite executes generated native kernels; a kernel that hangs holds
# the GIL inside a ctypes call, so no Python-level alarm can interrupt it.
# pytest-timeout (dev extra) handles this when installed; this fallback
# reproduces its thread-method behavior — a watchdog thread that hard-exits
# the process when the ``timeout`` ini limit elapses — so the tier-1 suite
# can never wedge even on a bare environment.
# ---------------------------------------------------------------------------

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None


def pytest_addoption(parser, pluginmanager):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden assembly snapshots under tests/golden/ "
             "instead of diffing against them")
    if not _HAVE_PYTEST_TIMEOUT and not pluginmanager.hasplugin("timeout"):
        parser.addini("timeout", "per-test timeout in seconds "
                      "(fallback watchdog; pytest-timeout not installed)",
                      default="0")
        parser.addini("timeout_method", "accepted for pytest-timeout "
                      "compatibility; the fallback always hard-exits",
                      default="thread")


@pytest.hookimpl(wrapper=True)
def pytest_runtest_protocol(item, nextitem):
    if _HAVE_PYTEST_TIMEOUT:
        return (yield)
    try:
        limit = float(item.config.getini("timeout") or 0)
    except (ValueError, KeyError):
        limit = 0.0
    if limit <= 0:
        return (yield)
    finished = threading.Event()

    def watchdog():
        if not finished.wait(limit):
            sys.stderr.write(
                f"\n[conftest watchdog] test exceeded {limit:g}s: "
                f"{item.nodeid} — killing the process (a hung native "
                f"kernel cannot be interrupted in-process)\n")
            sys.stderr.flush()
            os._exit(70)

    guard = threading.Thread(target=watchdog, daemon=True,
                             name=f"timeout-watchdog[{item.nodeid}]")
    guard.start()
    try:
        return (yield)
    finally:
        finished.set()


def host_runnable_archs():
    """Arch specs whose generated code the host CPU can execute natively."""
    host = detect_host()
    out = [GENERIC_SSE]
    if host.simd == "avx":
        out.append(SANDYBRIDGE)
    if host.fma == "fma3":
        out.append(HASWELL)
    return out


ALL_ARCH_SPECS = [GENERIC_SSE, SANDYBRIDGE, PILEDRIVER, HASWELL]


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=ALL_ARCH_SPECS, ids=lambda a: a.name)
def any_arch(request):
    return request.param


@pytest.fixture(params=host_runnable_archs(), ids=lambda a: a.name)
def native_arch(request):
    return request.param


# ---------------------------------------------------------------------------
# GEMM reference helpers shared across tests (packed-panel layouts)
# ---------------------------------------------------------------------------


def gemm_ref_packed(a_packed, b_packed, c, mc, nc, kc, ldc, layout="dup"):
    """Reference semantics of the packed micro-kernel on flat buffers."""
    am = a_packed.reshape(kc, mc)  # A[l, i]
    out = c.copy()
    for j in range(nc):
        if layout == "dup":
            col = b_packed.reshape(nc, kc)[j, :]
        else:
            col = b_packed.reshape(kc, nc)[:, j]
        for i in range(mc):
            out[j * ldc + i] += am[:, i] @ col
    return out


def random_gemm_problem(rng, mc=16, nc=8, kc=32, ldc=None, layout="dup"):
    ldc = ldc or mc
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = rng.standard_normal(ldc * nc)
    return a, b, c, (mc, nc, kc, ldc)
