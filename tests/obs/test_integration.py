"""Acceptance: a traced tuning run produces a complete, renderable trace."""

from __future__ import annotations

import json

import pytest

from repro.obs import trace
from repro.obs.report import render_report
from repro.tuning.space import candidates_for
from repro.isa.arch import detect_host

from tests.conftest import needs_cc


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    trace.stop_trace()
    yield
    trace.stop_trace()


@needs_cc
def test_traced_tune_kernel_emits_full_pipeline(tmp_path):
    from repro.tuning.search import tune_kernel

    arch = detect_host()
    candidates = candidates_for("axpy", arch)[:2]
    path = tmp_path / "tune.jsonl"
    trace.start_trace(str(path))
    result = tune_kernel("axpy", arch=arch, candidates=candidates,
                         batches=1, reuse=False)
    trace.stop_trace()
    assert result.best is not None

    records = [json.loads(line) for line in open(path)]
    span_names = {r["name"] for r in records if r["ev"] == "span"}
    # all four pipeline stages plus the tuner's own spans
    for name in ("pipeline.c_opt", "pipeline.identify", "pipeline.plan",
                 "pipeline.asmgen", "tune.kernel", "tune.prepare",
                 "sandbox.trial"):
        assert name in span_names, f"span {name} missing from trace"

    trials = [r for r in records
              if r["ev"] == "event" and r["name"] == "tune.trial"]
    assert len(trials) == len(candidates)
    for t in trials:
        attrs = t["attrs"]
        assert attrs["kernel"] == "axpy"
        assert attrs["category"] in ("ok", "failed", "crashed", "timeout",
                                     "quarantined")
        assert "cached" in attrs
        if attrs["category"] == "ok":
            assert attrs["gflops"] > 0

    # the tune.kernel span carries the summary
    tune_spans = [r for r in records
                  if r["ev"] == "span" and r["name"] == "tune.kernel"]
    assert tune_spans[0]["attrs"]["trials"] == len(candidates)
    assert tune_spans[0]["attrs"]["best_gflops"] > 0

    out = render_report(records)
    assert "axpy" in out and "pipeline.asmgen" in out
