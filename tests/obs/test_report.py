"""Tests for trace loading and report rendering, incl. the CLI path."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.obs import trace
from repro.obs.report import TraceError, load_trace, render_report


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    trace.stop_trace()
    yield
    trace.stop_trace()


def _write_trace(path, records):
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")


SAMPLE = [
    {"ev": "start", "version": 1, "pid": 1, "unix_time": 0.0},
    {"ev": "span", "name": "pipeline.generate", "id": 1, "t0": 0.0,
     "dur": 0.25},
    {"ev": "span", "name": "pipeline.c_opt", "id": 2, "parent": 1,
     "t0": 0.0, "dur": 0.1},
    {"ev": "event", "name": "tune.trial", "t": 0.2,
     "attrs": {"kernel": "axpy", "category": "ok", "cached": False,
               "gflops": 5.5, "candidate": "u(i)=4"}},
    {"ev": "event", "name": "tune.trial", "t": 0.3,
     "attrs": {"kernel": "axpy", "category": "failed", "cached": False}},
    {"ev": "event", "name": "tune.trial", "t": 0.4,
     "attrs": {"kernel": "axpy", "category": "ok", "cached": True,
               "gflops": 4.0, "candidate": "u(i)=8"}},
    {"ev": "counter", "name": "cache.miss", "value": 3},
    {"ev": "end", "t": 1.0},
]


def test_load_trace_roundtrip(tmp_path):
    path = tmp_path / "t.jsonl"
    _write_trace(path, SAMPLE)
    records = load_trace(path)
    assert len(records) == len(SAMPLE)
    assert records[0]["ev"] == "start"


def test_load_trace_rejects_bad_json(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"ev": "start"}\nnot json at all\n')
    with pytest.raises(TraceError, match=":2"):
        load_trace(path)


def test_load_trace_rejects_non_trace_records(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"hello": "world"}\n')
    with pytest.raises(TraceError, match="missing 'ev'"):
        load_trace(path)


def test_load_trace_rejects_empty(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("\n\n")
    with pytest.raises(TraceError, match="empty"):
        load_trace(path)


def test_render_report_sections():
    out = render_report(SAMPLE)
    assert "-- per-stage timing --" in out
    assert "pipeline.generate" in out and "pipeline.c_opt" in out
    assert "-- per-kernel trials --" in out
    assert "axpy: 3 trials" in out
    assert "failed=1" in out and "ok=2" in out
    assert "1 cached" in out
    assert "best 5.50 GFLOPS" in out and "u(i)=4" in out
    assert "-- counters --" in out
    assert "cache.miss" in out


def test_render_report_empty_sections():
    out = render_report([{"ev": "start", "version": 1}])
    assert "(no spans recorded)" in out
    assert "(no tuning trials recorded)" in out


def test_cli_trace_report(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    _write_trace(path, SAMPLE)
    assert main(["trace", "report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "per-stage timing" in out


def test_cli_trace_report_bad_file(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    path.write_text("garbage\n")
    assert main(["trace", "report", str(path)]) == 2
    assert "bad trace" in capsys.readouterr().err


def test_cli_records_trace_of_generate(tmp_path, capsys):
    """python -m repro --trace X generate ... leaves a renderable trace
    containing every pipeline stage."""
    path = tmp_path / "gen.jsonl"
    assert main(["--trace", str(path), "generate", "axpy",
                 "--arch", "generic_sse"]) == 0
    trace.stop_trace()
    capsys.readouterr()
    records = load_trace(path)
    names = {r["name"] for r in records if r["ev"] == "span"}
    for stage in ("pipeline.generate", "pipeline.c_opt",
                  "pipeline.identify", "pipeline.plan", "pipeline.asmgen"):
        assert stage in names
    assert "pipeline.c_opt" in render_report(records)


DISPATCH_SAMPLE = [
    {"ev": "start", "version": 1},
    {"ev": "span", "name": "dispatch.probe", "id": 1, "t0": 0.0, "dur": 0.1,
     "attrs": {"tier": "haswell", "verdict": "crashed", "error": "SIGSEGV"}},
    {"ev": "span", "name": "dispatch.probe", "id": 2, "t0": 0.2, "dur": 0.1,
     "attrs": {"tier": "sandybridge", "verdict": "ok"}},
    {"ev": "span", "name": "dispatch.admit", "id": 3, "t0": 0.4, "dur": 0.1,
     "attrs": {"family": "gemm", "tier": "sandybridge", "verdict": "ok",
               "ulp": 1.5}},
    {"ev": "event", "name": "dispatch.demotion", "t": 0.1,
     "attrs": {"tier": "haswell", "stage": "probe"}},
    {"ev": "counter", "name": "dispatch.demotion", "value": 1},
    {"ev": "counter", "name": "dispatch.admission", "value": 4},
]


def test_render_report_dispatch_section():
    out = render_report(DISPATCH_SAMPLE)
    assert "-- dispatch --" in out
    assert "probe haswell: crashed=1" in out
    assert "probe sandybridge: ok=1" in out
    assert "admit gemm@sandybridge: ok=1" in out
    assert "counters: admission=4 demotion=1" in out


def test_render_report_omits_dispatch_section_when_absent():
    assert "-- dispatch --" not in render_report(SAMPLE)


SERVE_SAMPLE = [
    {"ev": "start", "version": 1},
    {"ev": "span", "name": "serve.request", "id": 1, "t0": 0.0, "dur": 0.02,
     "attrs": {"routine": "gemm", "client": "h:1", "index": 0,
               "queue_depth": 3, "status": "ok"}},
    {"ev": "span", "name": "serve.request", "id": 2, "t0": 0.1, "dur": 0.01,
     "attrs": {"routine": "gemm", "client": "h:1", "index": 1,
               "queue_depth": 1, "status": "deadline"}},
    {"ev": "span", "name": "serve.request", "id": 3, "t0": 0.2, "dur": 0.01,
     "attrs": {"routine": "dot", "client": "h:2", "index": 2,
               "queue_depth": 0, "status": "ok"}},
    {"ev": "counter", "name": "serve.request", "value": 3},
    {"ev": "counter", "name": "serve.drain", "value": 1},
    {"ev": "counter", "name": "client.fallback", "value": 2},
]


def test_render_report_serve_section():
    out = render_report(SERVE_SAMPLE)
    assert "-- serve --" in out
    assert "request gemm: deadline=1 ok=1" in out
    assert "request dot: ok=1" in out
    assert "queue depth peak: 3" in out
    assert "client.fallback=2" in out
    assert "serve.drain=1" in out


def test_render_report_omits_serve_section_when_absent():
    assert "-- serve --" not in render_report(SAMPLE)
