"""Unit tests for the structured tracer (spans, events, counters)."""

from __future__ import annotations

import json
import sys
import threading

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    """Every test starts and ends with tracing disabled."""
    trace.stop_trace()
    yield
    trace.stop_trace()


def read_records(path):
    return [json.loads(line) for line in open(path)]


def test_disabled_by_default_and_noop():
    assert not trace.enabled()
    assert trace.current_tracer() is None
    # the disabled call-site API must be callable and inert
    with trace.span("anything", attr=1) as sp:
        sp.set(more=2)
    trace.event("anything", x=1)
    trace.incr("anything")


def test_start_stop_produces_valid_jsonl(tmp_path):
    path = tmp_path / "t.jsonl"
    trace.start_trace(str(path))
    assert trace.enabled()
    with trace.span("outer", a=1):
        with trace.span("inner"):
            trace.event("ping", n=7)
    trace.incr("widgets", 3)
    trace.incr("widgets", 2)
    trace.stop_trace()
    assert not trace.enabled()

    records = read_records(path)
    assert records[0]["ev"] == "start"
    assert records[0]["version"] == trace.TRACE_VERSION
    assert records[-1]["ev"] == "end"

    spans = {r["name"]: r for r in records if r["ev"] == "span"}
    assert set(spans) == {"outer", "inner"}
    # inner closes first and points at outer
    assert spans["inner"]["parent"] == spans["outer"]["id"]
    assert "parent" not in spans["outer"]
    assert spans["outer"]["attrs"] == {"a": 1}
    assert spans["outer"]["dur"] >= spans["inner"]["dur"] >= 0

    events = [r for r in records if r["ev"] == "event"]
    assert events[0]["name"] == "ping"
    assert events[0]["attrs"] == {"n": 7}
    assert events[0]["span"] == spans["inner"]["id"]

    counters = {r["name"]: r["value"] for r in records
                if r["ev"] == "counter"}
    assert counters == {"widgets": 5}


def test_span_attrs_are_json_safe(tmp_path):
    path = tmp_path / "t.jsonl"
    trace.start_trace(str(path))
    with trace.span("s", none_dropped=None, obj=object(), ok="x"):
        pass
    trace.stop_trace()
    attrs = [r for r in read_records(path) if r["ev"] == "span"][0]["attrs"]
    assert "none_dropped" not in attrs
    assert attrs["ok"] == "x"
    assert isinstance(attrs["obj"], str)


def test_span_records_error_and_propagates(tmp_path):
    path = tmp_path / "t.jsonl"
    trace.start_trace(str(path))
    with pytest.raises(ValueError):
        with trace.span("boom"):
            raise ValueError("bad")
    trace.stop_trace()
    span = [r for r in read_records(path) if r["ev"] == "span"][0]
    assert "ValueError" in span["attrs"]["error"]


def test_init_from_env_honors_off_values(tmp_path):
    for off in ("", "0", "off", "none", "FALSE", "disabled"):
        assert trace.init_from_env({"REPRO_TRACE": off}) is None
    assert trace.init_from_env({}) is None
    path = tmp_path / "env.jsonl"
    tracer = trace.init_from_env({"REPRO_TRACE": str(path)})
    assert tracer is not None and trace.enabled()
    trace.stop_trace()
    assert read_records(path)[0]["ev"] == "start"


def test_start_trace_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "er" / "t.jsonl"
    trace.start_trace(str(path))
    trace.stop_trace()
    assert path.exists()


def test_progress_writes_stderr_not_stdout(tmp_path, capsys):
    trace.progress("working...")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "working..." in captured.err

    path = tmp_path / "t.jsonl"
    trace.start_trace(str(path))
    trace.progress("mirrored")
    trace.stop_trace()
    capsys.readouterr()
    events = [r for r in read_records(path) if r["ev"] == "event"]
    assert events and events[0]["attrs"]["message"] == "mirrored"


def test_threaded_spans_keep_independent_stacks(tmp_path):
    path = tmp_path / "t.jsonl"
    trace.start_trace(str(path))

    def worker(tag):
        with trace.span(f"thread.{tag}"):
            trace.event("tick", tag=tag)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    with trace.span("main"):
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    trace.stop_trace()
    records = read_records(path)
    spans = {r["name"]: r for r in records if r["ev"] == "span"}
    # worker spans never nest under "main" (different threads)
    for i in range(4):
        assert "parent" not in spans[f"thread.{i}"]
    # every line is valid standalone JSON (no interleaving corruption)
    assert all(r["ev"] in ("start", "span", "event", "counter", "end")
               for r in records)


def test_stderr_sink_is_not_closed(capsys):
    trace.start_trace("-")
    trace.event("e")
    trace.stop_trace()
    assert not sys.stderr.closed
    err = capsys.readouterr().err
    assert '"ev":"start"' in err and '"ev":"end"' in err
