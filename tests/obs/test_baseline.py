"""Tests for the GFLOPS baseline gate (record / check / CLI exit codes)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.__main__ import main
from repro.backend import timer
from repro.obs import baseline
from repro.obs.baseline import (
    BaselineError,
    CheckRow,
    EXIT_REGRESSION,
    WORKLOAD_VERSION,
    load_baseline,
    render_check,
)

from tests.conftest import needs_cc


def test_render_check_flags_regressions():
    rows = [
        CheckRow("gemm", 30.0, 29.0, regressed=False),
        CheckRow("axpy", 4.0, 2.0, regressed=True),
        CheckRow("new", None, 5.0, regressed=False),
    ]
    out = render_check(rows, threshold=0.15)
    assert "REGRESSED" in out
    assert "regression (> 15% GFLOPS loss): axpy" in out
    assert "-50.0%" in out
    # a kernel absent from the baseline renders without a delta
    assert any(line.startswith("new") and " - " in f" {line} "
               for line in out.splitlines()) or "-" in out


def test_render_check_all_ok():
    rows = [CheckRow("gemm", 30.0, 31.0, regressed=False)]
    out = render_check(rows, threshold=0.15)
    assert "REGRESSED" not in out
    assert "within 15%" in out


def test_load_baseline_missing(tmp_path):
    with pytest.raises(BaselineError, match="no baseline"):
        load_baseline(tmp_path / "absent.json")


def test_load_baseline_unreadable(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(BaselineError, match="unreadable"):
        load_baseline(path)


def test_load_baseline_workload_version_mismatch(tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"workload_version": WORKLOAD_VERSION + 1,
                                "kernels": {}}))
    with pytest.raises(BaselineError) as excinfo:
        load_baseline(path)
    # the message names the axis and both sides of the mismatch
    message = str(excinfo.value)
    assert "axis mismatch: workload_version" in message
    assert f"recorded {WORKLOAD_VERSION + 1}" in message
    assert f"found {WORKLOAD_VERSION}" in message


def test_cli_check_without_baseline_exits_2(tmp_path, capsys):
    rc = main(["bench", "baseline", "check",
               "--path", str(tmp_path / "none.json")])
    assert rc == 2
    assert "no baseline" in capsys.readouterr().err


@needs_cc
def test_record_then_check_roundtrip_via_cli(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    rc = main(["bench", "baseline", "record", "--path", str(path),
               "--kernels", "axpy", "--batches", "1"])
    assert rc == 0
    record = json.loads(path.read_text())
    assert record["workload_version"] == WORKLOAD_VERSION
    assert "axpy" in record["kernels"]
    assert record["kernels"]["axpy"]["gflops"] > 0

    # wide threshold: this asserts the round-trip plumbing, not that the
    # CI box is quiet enough to repeat a measurement within 15%
    rc = main(["bench", "baseline", "check", "--path", str(path),
               "--kernels", "axpy", "--batches", "1",
               "--threshold", "0.9"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "axpy" in out and "REGRESSED" not in out


@needs_cc
def test_synthetic_slowdown_exits_3(tmp_path, capsys, monkeypatch):
    path = tmp_path / "baseline.json"
    assert main(["bench", "baseline", "record", "--path", str(path),
                 "--kernels", "axpy", "--batches", "1"]) == 0

    def slowed(fn, **kw):
        m = timer.measure(fn, **kw)
        return dataclasses.replace(m, best=m.best * 4.0)

    monkeypatch.setattr(baseline, "measure", slowed)
    # a 4x synthetic slowdown must trip even a generous 50% threshold,
    # and machine noise alone cannot mask it
    rc = main(["bench", "baseline", "check", "--path", str(path),
               "--kernels", "axpy", "--batches", "1",
               "--threshold", "0.5"])
    assert rc == EXIT_REGRESSION
    assert "REGRESSED" in capsys.readouterr().out


@needs_cc
def test_check_rejects_other_arch(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    assert main(["bench", "baseline", "record", "--path", str(path),
                 "--kernels", "axpy", "--batches", "1"]) == 0
    record = json.loads(path.read_text())
    record["arch"] = "some_other_arch"
    path.write_text(json.dumps(record))
    rc = main(["bench", "baseline", "check", "--path", str(path)])
    assert rc == 2
    assert "re-record" in capsys.readouterr().err


# -- the threads axis --------------------------------------------------------


@needs_cc
def test_record_with_threads_stamps_axis_and_checks(tmp_path, capsys):
    path = tmp_path / "b2.json"
    rc = main(["bench", "baseline", "record", "--path", str(path),
               "--kernels", "gemm", "--batches", "1", "--threads", "2"])
    assert rc == 0
    record = json.loads(path.read_text())
    assert record["threads"] == 2
    assert record["kernels"]["gemm"]["gflops"] > 0
    assert "threads=2" in capsys.readouterr().out

    # a matching-threads check runs; generous threshold — only the
    # plumbing is under test, not the CI box's noise floor
    rc = main(["bench", "baseline", "check", "--path", str(path),
               "--batches", "1", "--threshold", "0.95", "--threads", "2"])
    assert rc == 0


@needs_cc
def test_check_rejects_thread_axis_mismatch(tmp_path, capsys):
    path = tmp_path / "b1.json"
    assert main(["bench", "baseline", "record", "--path", str(path),
                 "--kernels", "axpy", "--batches", "1"]) == 0
    rc = main(["bench", "baseline", "check", "--path", str(path),
               "--threads", "4"])
    assert rc == 2
    assert "threads" in capsys.readouterr().err


def test_check_threads_mismatch_synthetic(tmp_path):
    # no toolchain needed: the axis is validated before any measurement
    from repro.isa.arch import detect_host

    path = tmp_path / "b4.json"
    path.write_text(json.dumps({
        "version": 1, "workload_version": WORKLOAD_VERSION,
        "arch": detect_host().name, "threads": 4,
        "kernels": {"gemm": {"gflops": 1.0}}}))
    with pytest.raises(BaselineError) as excinfo:
        baseline.check_baseline(path=path, threads=1)
    message = str(excinfo.value)
    assert "axis mismatch: threads" in message
    assert "recorded 4" in message and "found 1" in message
