"""End-to-end ABFT containment through the serve daemon.

The acceptance demo for the integrity layer: a ``corrupt@#0`` fault in a
*threaded* serve worker must never reach a client — every flagged
request returns bit-correct results plus a verdict recording the
detection; repeated corruption quarantines the kernel by body hash and
demotes its tier; and a drain persists the demotion so a restarted
worker starts on the safe tier.

The worker runs in-thread (like ``test_server.py``) with the gemm route
pinned to the emulator-backed driver, so no toolchain is needed and the
corrupt fault fires inside real pool worker threads.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.backend.cache import get_cache, reset_cache
from repro.backend.faults import FaultPlan, clear_fault_plan, install_fault_plan
from repro.blas import dispatch
from repro.blas.integrity import (emulated_gemm_driver,
                                  reset_integrity_state)
from repro.core.framework import quarantine_key
from repro.serve.protocol import (ERR_BAD_REQUEST, PROTOCOL_VERSION,
                                  call_header, charged_bytes)
from repro.serve.server import ServeConfig, ServeWorker
from repro.serve.shm import SegmentSet
from repro.serve.supervisor import rpc


@pytest.fixture
def serve_env(tmp_path, monkeypatch):
    """An in-thread worker whose gemm route is the emulated ABFT driver."""
    monkeypatch.setenv("REPRO_FORCE_ARCH", "reference")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    reset_cache()
    dispatch.reset_dispatch_state()
    reset_integrity_state()
    clear_fault_plan()
    runtime = Path(tempfile.mkdtemp(prefix="rsi", dir="/tmp"))
    config = ServeConfig(runtime_dir=runtime, warmup=(),
                         compute_threads=1, queue_capacity=4,
                         max_inflight_per_client=4, retry_after_ms=10,
                         drain_grace=10.0)
    worker = ServeWorker(config)
    # gemm runs through the emulator at 2 threads: the corrupt fault and
    # its verification both happen on real pool worker threads
    gemm = emulated_gemm_driver(threads=2, integrity="off")
    original = worker._driver_for
    worker._driver_for = (lambda routine: gemm if routine == "gemm"
                          else original(routine))
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    while not config.socket_path.exists() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert config.socket_path.exists(), "worker never bound its socket"
    yield worker, config, gemm
    clear_fault_plan()
    worker.drain(timeout=5)
    thread.join(timeout=10)
    shutil.rmtree(runtime, ignore_errors=True)
    dispatch.reset_dispatch_state()
    reset_integrity_state()
    reset_cache()


def _gemm_call(config, a, b, integrity=None, client="ti"):
    """One gemm round trip; returns (reply, result array)."""
    with SegmentSet(prefix="rit") as segments:
        _va, ra = segments.add(a.shape, fill=a)
        _vb, rb = segments.add(b.shape, fill=b)
        out_view, out_ref = segments.add((a.shape[0], b.shape[1]))
        header = call_header("gemm", client, 15000,
                             {"a": ra, "b": rb},
                             {"alpha": 1.0, "beta": 0.0}, {}, out_ref,
                             integrity=integrity)
        reply = rpc(config.socket_path, header, timeout=20.0)
        assert reply is not None, "worker dropped the connection"
        result = np.array(out_view, copy=True)
    return reply, result


def test_charged_bytes_surcharge():
    assert charged_bytes(800, None) == 800
    assert charged_bytes(800, "off") == 800
    assert charged_bytes(800, "full") == 900
    assert charged_bytes(800, "sample") == 900


def test_bad_integrity_mode_is_rejected(serve_env, rng):
    _worker, config, _gemm = serve_env
    a = rng.standard_normal((4, 4))
    reply, _ = _gemm_call(config, a, a, integrity="bogus")
    assert reply["error"]["code"] == ERR_BAD_REQUEST


def test_clean_full_verification_reports_zero_mismatches(serve_env, rng):
    _worker, config, _gemm = serve_env
    a = rng.standard_normal((12, 8))
    b = rng.standard_normal((8, 12))
    reply, result = _gemm_call(config, a, b, integrity="full")
    assert reply["ok"], reply
    assert np.allclose(result, a @ b, rtol=1e-12, atol=1e-12)
    verdict = reply["integrity"]
    assert verdict["checked"] is True
    assert verdict["tiles_checked"] > 0
    assert verdict["mismatches"] == 0


def test_unflagged_request_carries_no_verdict(serve_env, rng):
    _worker, config, _gemm = serve_env
    a = rng.standard_normal((8, 8))
    reply, result = _gemm_call(config, a, a)
    assert reply["ok"]
    assert "integrity" not in reply
    assert np.allclose(result, a @ a)


def test_corrupt_worker_contained_quarantined_and_persisted(serve_env, rng):
    worker, config, gemm = serve_env
    install_fault_plan(FaultPlan.parse("corrupt@#0"))
    a = rng.standard_normal((12, 8))
    b = rng.standard_normal((8, 12))
    gk = gemm.kernel.generated

    strikes_needed = gemm.integrity.strike_limit
    for call in range(strikes_needed):
        reply, result = _gemm_call(config, a, b, integrity="full")
        assert reply["ok"], reply
        # bit-correct results despite the injected bit flip, every call
        assert np.allclose(result, a @ b, rtol=1e-12, atol=1e-12), call
        verdict = reply["integrity"]
        assert verdict["mismatches"] >= 1
        assert verdict["reference_recomputes"] >= 1

    # the final strike quarantined the kernel by body hash...
    assert verdict["quarantined"] == [gk.body_hash]
    record = get_cache().load_quarantine(
        quarantine_key("gemm", gk.arch, gk))
    assert record is not None and record["category"] == "integrity"

    # ...demoted its tier, and the worker persisted the verdict store
    assert dispatch._TIER_VERDICTS[gk.arch.name][0] is False
    status = rpc(config.socket_path,
                 {"op": "status", "v": PROTOCOL_VERSION})
    counters = status["status"]["integrity"]
    assert counters["mismatches"] >= strikes_needed
    assert counters["quarantines"] == 1

    clear_fault_plan()
    worker.drain(timeout=5)
    # a restarted worker (fresh dispatch state) inherits the demotion
    dispatch.reset_dispatch_state()
    assert dispatch.load_tier_verdicts(config.verdict_path) >= 1
    tier_ok, reason = dispatch._TIER_VERDICTS[gk.arch.name]
    assert tier_ok is False
    assert "integrity" in reason


def test_status_reports_integrity_mode(serve_env):
    _worker, config, _gemm = serve_env
    status = rpc(config.socket_path,
                 {"op": "status", "v": PROTOCOL_VERSION})
    integrity = status["status"]["integrity"]
    assert integrity["mode"] == "off"       # config default
    assert "checks" in integrity
