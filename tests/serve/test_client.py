"""ServedBLAS degradation-chain tests: remote, retry, breaker, fallback.

Runs the worker in-thread on the reference tier; the client facade is
exercised both against a live daemon and against nothing at all.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.backend.faults import FaultPlan, clear_fault_plan, install_fault_plan
from repro.blas.client import CircuitBreaker, ServedBLAS
from repro.blas.reference import (ref_gemm, ref_gemv, ref_syr2k, ref_syrk)
from repro.serve.server import ServeConfig, ServeWorker


@pytest.fixture
def live_service(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_ARCH", "reference")
    clear_fault_plan()
    runtime = Path(tempfile.mkdtemp(prefix="rsv", dir="/tmp"))
    config = ServeConfig(runtime_dir=runtime, warmup=(),
                         compute_threads=2, queue_capacity=8,
                         retry_after_ms=5)
    worker = ServeWorker(config)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    while not config.socket_path.exists() and time.monotonic() < deadline:
        time.sleep(0.01)
    yield worker, config
    clear_fault_plan()
    worker.drain(timeout=5)
    thread.join(timeout=10)
    shutil.rmtree(runtime, ignore_errors=True)


def _client(config_or_dir, **kwargs) -> ServedBLAS:
    runtime = (config_or_dir.runtime_dir
               if hasattr(config_or_dir, "runtime_dir") else config_or_dir)
    kwargs.setdefault("hardened", False)
    return ServedBLAS(runtime_dir=runtime, **kwargs)


class TestRemoteServing:
    def test_all_families_match_reference(self, live_service):
        worker, config = live_service
        blas = _client(config)
        rng = np.random.default_rng(7)
        a = rng.standard_normal((13, 6))
        b = rng.standard_normal((6, 9))
        c = rng.standard_normal((13, 9))
        assert np.allclose(blas.dgemm(a, b, c, alpha=1.5, beta=0.5),
                           ref_gemm(a, b, c, 1.5, 0.5))
        x6 = rng.standard_normal(6)
        x13 = rng.standard_normal(13)
        assert np.allclose(blas.dgemv(a, x6), ref_gemv(a, x6))
        assert np.allclose(blas.dgemv(a, x13, trans=True),
                           ref_gemv(a, x13, trans=True))
        x = rng.standard_normal(17)
        y = rng.standard_normal(17)
        expect = y + 2.5 * x
        got = blas.daxpy(2.5, x, y.copy())
        assert np.allclose(got, expect)
        assert np.isclose(blas.ddot(x, y), float(x @ y))
        scaled = blas.dscal(3.0, x.copy())
        assert np.allclose(scaled, 3.0 * x)
        assert blas.stats.remote_ok >= 6
        assert blas.stats.fallbacks == 0
        assert worker.quotas.totals()["completed"] >= 6

    def test_composed_level3_rides_the_service(self, live_service):
        _worker, config = live_service
        blas = _client(config)
        rng = np.random.default_rng(8)
        sym = rng.standard_normal((5, 5))
        sym = sym + sym.T
        a = rng.standard_normal((5, 4))
        assert np.allclose(blas.dsyrk(a), ref_syrk(a))
        assert np.allclose(blas.dsyr2k(a, a + 1.0), ref_syr2k(a, a + 1.0))
        assert np.allclose(blas.dsymm(sym, a), ref_gemm(sym, a))
        lower = np.tril(rng.standard_normal((4, 4))) + 4.0 * np.eye(4)
        rhs = rng.standard_normal((4, 3))
        assert np.allclose(blas.dtrmm(lower, rhs), lower @ rhs)
        assert np.allclose(lower @ blas.dtrsm(lower, rhs), rhs)
        # every one of those was served remotely, not locally
        assert blas.stats.fallbacks == 0
        assert blas.stats.remote_ok > 0

    def test_dger_rides_remote_axpy(self, live_service):
        _worker, config = live_service
        blas = _client(config)
        rng = np.random.default_rng(9)
        a = rng.standard_normal((6, 5))
        x = rng.standard_normal(6)
        y = rng.standard_normal(5)
        expect = a + 0.5 * np.outer(x, y)
        got = blas.dger(0.5, x, y, a.copy())
        assert np.allclose(got, expect)
        assert blas.stats.fallbacks == 0

    def test_retry_after_injected_reject(self, live_service):
        _worker, config = live_service
        install_fault_plan(FaultPlan.parse("serve_reject@#0"))
        blas = _client(config, retries=2)
        rng = np.random.default_rng(10)
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((3, 2))
        assert np.allclose(blas.dgemm(a, b), ref_gemm(a, b))
        assert blas.stats.rejected == 1
        assert blas.stats.retries == 1
        assert blas.stats.remote_ok == 1
        assert blas.stats.fallbacks == 0

    def test_stall_degrades_to_fallback(self, live_service):
        _worker, config = live_service
        install_fault_plan(FaultPlan.parse("serve_stall@gemm"))
        blas = _client(config, deadline_ms=150, retries=0)
        rng = np.random.default_rng(11)
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((3, 2))
        assert np.allclose(blas.dgemm(a, b), ref_gemm(a, b))
        assert blas.stats.deadline_hits == 1
        assert blas.stats.fallbacks == 1

    def test_draining_service_degrades_to_fallback(self, live_service):
        worker, config = live_service
        worker._draining.set()
        blas = _client(config)
        rng = np.random.default_rng(12)
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((3, 2))
        assert np.allclose(blas.dgemm(a, b), ref_gemm(a, b))
        assert blas.stats.draining_hits == 1
        assert blas.stats.fallbacks == 1
        worker._draining.clear()


class TestNoService:
    def test_fallback_without_daemon(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_ARCH", "reference")
        runtime = Path(tempfile.mkdtemp(prefix="rsx", dir="/tmp"))
        try:
            blas = _client(runtime, retries=0)
            assert not blas.service_alive()
            rng = np.random.default_rng(13)
            a = rng.standard_normal((5, 4))
            b = rng.standard_normal((4, 6))
            assert np.allclose(blas.dgemm(a, b), ref_gemm(a, b))
            assert blas.stats.fallbacks == 1
            assert blas.stats.remote_ok == 0
        finally:
            shutil.rmtree(runtime, ignore_errors=True)

    def test_inplace_operand_untouched_before_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_ARCH", "reference")
        runtime = Path(tempfile.mkdtemp(prefix="rsx", dir="/tmp"))
        try:
            blas = _client(runtime, retries=0)
            rng = np.random.default_rng(14)
            x = rng.standard_normal(9)
            y = rng.standard_normal(9)
            expect = y + 2.0 * x
            got = blas.daxpy(2.0, x, y)
            # exactly one application of the update — the failed remote
            # attempt must not have partially mutated y first
            assert np.allclose(got, expect)
        finally:
            shutil.rmtree(runtime, ignore_errors=True)

    def test_breaker_opens_and_short_circuits(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_ARCH", "reference")
        runtime = Path(tempfile.mkdtemp(prefix="rsx", dir="/tmp"))
        try:
            blas = _client(runtime, retries=0, breaker_threshold=2,
                           breaker_cooldown=30.0)
            rng = np.random.default_rng(15)
            x = rng.standard_normal(5)
            for _ in range(4):
                blas.ddot(x, x)
            assert blas.stats.breaker_opens == 1
            assert blas.breaker.state == "open"
            # later calls skipped the socket entirely
            assert blas.stats.breaker_short_circuits >= 1
            assert blas.stats.fallbacks == 4
        finally:
            shutil.rmtree(runtime, ignore_errors=True)


class TestCircuitBreaker:
    def test_threshold_and_recovery(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=0.05)
        assert breaker.state == "closed"
        assert not breaker.record_failure()
        assert breaker.record_failure()   # opens now
        assert breaker.state == "open"
        assert not breaker.allow()
        time.sleep(0.08)
        assert breaker.state == "half-open"
        assert breaker.allow()            # the probe slot
        assert not breaker.allow()        # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=0.05)
        breaker.record_failure()
        time.sleep(0.08)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
