"""End-to-end service resilience: real supervisor + worker processes.

These are the acceptance scenarios from the service arc:

- **kill-the-daemon**: with ``serve_crash`` injected mid-request, the
  client's ``dgemm`` still returns the correct product (in-process
  fallback), the supervisor restarts the worker against the warm
  on-disk cache *without re-running ISA probes*, and the next call is
  served by the daemon again;
- **graceful drain**: SIGTERM to the supervisor finishes all in-flight
  requests, seals the accounting ledger, and the whole tree exits 0.

Socket paths are capped near 107 bytes, so runtime dirs live in a short
``/tmp`` prefix rather than pytest's deep ``tmp_path``.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.blas.reference import ref_gemm
from tests.conftest import HAVE_CC

pytestmark = pytest.mark.integration


#: a native tier exercises the probe-verdict warm cache; without a
#: toolchain the reference tier still proves crash/restart/drain
SERVICE_ARCH = "generic_sse" if HAVE_CC else "reference"


@pytest.fixture
def service_dirs():
    base = Path(tempfile.mkdtemp(prefix="rsi", dir="/tmp"))
    (base / "rt").mkdir()
    (base / "cache").mkdir()
    yield base / "rt", base / "cache"
    shutil.rmtree(base, ignore_errors=True)


def _service_env(runtime_dir: Path, cache_dir: Path, **extra: str) -> dict:
    env = dict(os.environ)
    env.update({
        "REPRO_SERVE_DIR": str(runtime_dir),
        "REPRO_CACHE_DIR": str(cache_dir),
        "REPRO_FORCE_ARCH": SERVICE_ARCH,
        "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
    })
    env.pop("REPRO_FAULT_INJECT", None)
    env.pop("REPRO_TRACE", None)
    env.update(extra)
    return env


def _serve_cli(env: dict, *args: str, timeout: float = 180.0):
    return subprocess.run(
        [sys.executable, "-m", "repro", "serve", *args],
        env=env, capture_output=True, text=True, timeout=timeout)


def _client(runtime_dir: Path, **kwargs):
    from repro.blas.client import ServedBLAS

    kwargs.setdefault("hardened", False)
    return ServedBLAS(runtime_dir=runtime_dir, **kwargs)


def _stop_service(env: dict) -> None:
    try:
        _serve_cli(env, "stop", timeout=60)
    except subprocess.TimeoutExpired:
        pass


class TestKillTheDaemon:
    def test_crash_falls_back_then_warm_restart(self, service_dirs,
                                                monkeypatch):
        runtime_dir, cache_dir = service_dirs
        # worker request #1 dies mid-request with os._exit
        env = _service_env(runtime_dir, cache_dir,
                           REPRO_FAULT_INJECT="serve_crash@#1")
        monkeypatch.setenv("REPRO_FORCE_ARCH", SERVICE_ARCH)
        started = _serve_cli(env, "start", "--warmup", "gemm")
        assert started.returncode == 0, started.stderr
        try:
            from repro.serve.supervisor import read_state, rpc, wait_ready

            blas = _client(runtime_dir, retries=1, breaker_cooldown=0.5)
            rng = np.random.default_rng(21)
            a = rng.standard_normal((16, 9))
            b = rng.standard_normal((9, 11))
            expect = ref_gemm(a, b)

            # request #0: served by the daemon
            assert np.allclose(blas.dgemm(a, b), expect)
            assert blas.stats.remote_ok == 1

            # request #1: the worker dies mid-request -> correct result
            # anyway, via the in-process fallback
            assert np.allclose(blas.dgemm(a, b), expect)
            assert blas.stats.fallbacks == 1

            # the supervisor restarts the worker against the warm cache
            status = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                state = read_state(runtime_dir)
                if state and state.get("restarts", 0) >= 1 \
                        and wait_ready(blas.socket_path, timeout=1.0):
                    status = rpc(blas.socket_path, {"op": "status", "v": 1})
                    if status and status.get("ok"):
                        break
                time.sleep(0.1)
            assert status and status["ok"], "worker never restarted"
            worker_status = status["status"]
            # the restart must NOT re-run sandboxed ISA probes: verdicts
            # were persisted by the first worker and preloaded
            assert worker_status["probes_run"] == 0
            if HAVE_CC:
                assert worker_status["verdicts_preloaded"] >= 1

            # service is live again: the very next call is served
            # remotely (request #0 of the new worker — its own injected
            # plan re-arms at #1, so only issue one)
            assert np.allclose(blas.dgemm(a, b), expect)
            assert blas.stats.remote_ok == 2
        finally:
            _stop_service(env)

    def test_restart_budget_gives_up(self, service_dirs):
        runtime_dir, cache_dir = service_dirs
        # every request crashes the worker; the supervisor must not
        # thrash forever — but staying alive between crashes is fine
        env = _service_env(runtime_dir, cache_dir,
                           REPRO_FAULT_INJECT="serve_crash@#0")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "supervise",
             "--warmup", "none"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            from repro.serve.supervisor import wait_ready

            socket_path = runtime_dir / "serve.sock"
            assert wait_ready(socket_path, timeout=60)
            blas = _client(runtime_dir, retries=0, breaker_threshold=100)
            rng = np.random.default_rng(22)
            x = rng.standard_normal(8)
            deadline = time.monotonic() + 120
            while proc.poll() is None and time.monotonic() < deadline:
                blas.ddot(x, x)  # each served request kills the worker
                time.sleep(0.05)
            assert proc.poll() is not None, "supervisor never gave up"
            assert proc.returncode == 1
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestThreadedWorker:
    """A worker running GEMM at threads>1 must be indistinguishable —
    identical results, and drain semantics unchanged."""

    def test_threaded_worker_matches_in_process(self, service_dirs,
                                                monkeypatch):
        runtime_dir, cache_dir = service_dirs
        env = _service_env(runtime_dir, cache_dir)
        monkeypatch.setenv("REPRO_FORCE_ARCH", SERVICE_ARCH)
        started = _serve_cli(env, "start", "--warmup", "gemm",
                             "--gemm-threads", "2")
        assert started.returncode == 0, started.stderr
        try:
            from repro.serve.supervisor import rpc

            blas = _client(runtime_dir, retries=1)
            status = rpc(blas.socket_path, {"op": "status", "v": 1})
            assert status and status["ok"]
            assert status["status"]["gemm_threads"] == 2

            rng = np.random.default_rng(31)
            a = rng.standard_normal((37, 19))
            b = rng.standard_normal((19, 23))
            c = rng.standard_normal((37, 23))
            got = blas.dgemm(a, b, c, alpha=1.25, beta=0.5)
            assert blas.stats.remote_ok == 1, "must be served remotely"
            if HAVE_CC:
                # same generated kernel, and the parallel driver is
                # bit-identical to single-threaded: byte-for-byte equal
                from repro.blas.api import AugemBLAS

                local = AugemBLAS(hardened=False, threads=1)
                expect = local.dgemm(a, b, c, alpha=1.25, beta=0.5)
                assert np.asarray(got).tobytes() == \
                    np.asarray(expect).tobytes()
            else:
                assert np.allclose(got, ref_gemm(a, b, c, 1.25, 0.5))
        finally:
            _stop_service(env)

    def test_sigterm_drains_inflight_threaded_gemms(self, service_dirs):
        runtime_dir, cache_dir = service_dirs
        env = _service_env(runtime_dir, cache_dir)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "supervise",
             "--warmup", "gemm", "--gemm-threads", "2"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            from repro.serve.supervisor import wait_ready

            socket_path = runtime_dir / "serve.sock"
            assert wait_ready(socket_path, timeout=120)

            rng = np.random.default_rng(32)
            a = rng.standard_normal((64, 48))
            b = rng.standard_normal((48, 56))
            expect = ref_gemm(a, b)
            results, errors = [], []

            def caller():
                blas = _client(runtime_dir, retries=1)
                try:
                    for _ in range(4):
                        results.append(blas.dgemm(a, b))
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=caller) for _ in range(3)]
            for t in threads:
                t.start()
            time.sleep(0.3)  # let threaded gemms be in flight
            proc.send_signal(signal.SIGTERM)
            for t in threads:
                t.join(timeout=120)
            rc = proc.wait(timeout=120)

            assert rc == 0, "drain must exit 0"
            assert not errors, f"client raised during drain: {errors}"
            assert len(results) == 12
            for got in results:
                assert np.allclose(got, expect)
            ledger = json.loads(
                (runtime_dir / "accounting.json").read_text())
            assert ledger["sealed_at"] is not None
            assert ledger["totals"]["inflight"] == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestGracefulDrain:
    def test_sigterm_finishes_inflight_and_exits_zero(self, service_dirs):
        runtime_dir, cache_dir = service_dirs
        env = _service_env(runtime_dir, cache_dir)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "supervise",
             "--warmup", "gemm"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            from repro.serve.supervisor import wait_ready

            socket_path = runtime_dir / "serve.sock"
            assert wait_ready(socket_path, timeout=120)

            rng = np.random.default_rng(23)
            a = rng.standard_normal((48, 32))
            b = rng.standard_normal((32, 40))
            expect = ref_gemm(a, b)
            results, errors = [], []

            def caller():
                blas = _client(runtime_dir, retries=1)
                try:
                    for _ in range(6):
                        results.append(blas.dgemm(a, b))
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=caller) for _ in range(3)]
            for t in threads:
                t.start()
            time.sleep(0.3)  # let requests be in flight
            proc.send_signal(signal.SIGTERM)
            for t in threads:
                t.join(timeout=120)
            rc = proc.wait(timeout=120)

            assert rc == 0, "drain must exit 0"
            assert not errors, f"client raised during drain: {errors}"
            assert len(results) == 18
            for got in results:
                assert np.allclose(got, expect)
            ledger = json.loads(
                (runtime_dir / "accounting.json").read_text())
            assert ledger["sealed_at"] is not None
            totals = ledger["totals"]
            # everything admitted was settled — nothing left in flight
            assert totals["inflight"] == 0
            assert totals["admitted"] == (totals["completed"]
                                          + totals["failed"]
                                          + totals["deadline_expired"])
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_drain_cli_roundtrip(self, service_dirs):
        runtime_dir, cache_dir = service_dirs
        env = _service_env(runtime_dir, cache_dir)
        started = _serve_cli(env, "start", "--warmup", "none")
        assert started.returncode == 0, started.stderr
        status = _serve_cli(env, "status")
        assert status.returncode == 0
        assert "accepting" in status.stdout
        drained = _serve_cli(env, "drain")
        assert drained.returncode == 0, drained.stderr
        assert "drained" in drained.stdout
        # after the drain the service reports down
        status = _serve_cli(env, "status")
        assert status.returncode == 2
        assert "unreachable" in status.stdout
