"""In-thread worker tests: admission, backpressure, deadlines, drain.

The worker runs as a daemon thread inside the test process (reference
tier, no toolchain needed), talking over a real unix socket in a short
``/tmp`` path (socket paths are limited to ~107 bytes, so pytest's deep
``tmp_path`` cannot host them).
"""

from __future__ import annotations

import json
import shutil
import socket
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.backend.faults import FaultPlan, clear_fault_plan, install_fault_plan
from repro.serve.protocol import (ERR_BAD_REQUEST, ERR_BUSY, ERR_DEADLINE,
                                  ERR_DRAINING, ERR_QUOTA, PROTOCOL_VERSION,
                                  call_header, ok_response, recv_frame,
                                  send_frame)
from repro.serve.server import ServeConfig, ServeWorker
from repro.serve.shm import SegmentSet
from repro.serve.supervisor import rpc


@pytest.fixture
def serve_env(monkeypatch):
    """A running in-thread worker on the reference tier."""
    monkeypatch.setenv("REPRO_FORCE_ARCH", "reference")
    clear_fault_plan()
    runtime = Path(tempfile.mkdtemp(prefix="rsv", dir="/tmp"))
    config = ServeConfig(runtime_dir=runtime, warmup=(),
                         compute_threads=1, queue_capacity=1,
                         max_inflight_per_client=4, retry_after_ms=10,
                         drain_grace=10.0)
    worker = ServeWorker(config)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    while not config.socket_path.exists() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert config.socket_path.exists(), "worker never bound its socket"
    yield worker, config
    clear_fault_plan()
    worker.drain(timeout=5)
    thread.join(timeout=10)
    shutil.rmtree(runtime, ignore_errors=True)


def _open_call(config, header):
    """Send one call frame and return the socket (reply read later)."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(15)
    sock.connect(str(config.socket_path))
    send_frame(sock, header)
    return sock


def _scal_header(ref, client="t", deadline_ms=5000):
    return call_header("scal", client, deadline_ms, {"x": ref},
                       {"alpha": 1.0}, {}, None)


class TestAdmission:
    def test_ping_and_status(self, serve_env):
        _worker, config = serve_env
        reply = rpc(config.socket_path, {"op": "ping",
                                         "v": PROTOCOL_VERSION})
        assert reply and reply["ok"]
        status = rpc(config.socket_path, {"op": "status",
                                          "v": PROTOCOL_VERSION})
        assert status["ok"]
        assert status["status"]["queue"]["capacity"] == 1
        assert status["status"]["draining"] is False

    def test_unknown_op(self, serve_env):
        _worker, config = serve_env
        reply = rpc(config.socket_path, {"op": "mystery",
                                         "v": PROTOCOL_VERSION})
        assert reply["error"]["code"] == ERR_BAD_REQUEST

    def test_version_mismatch(self, serve_env):
        _worker, config = serve_env
        reply = rpc(config.socket_path,
                    {"op": "call", "v": 999, "routine": "dot"})
        assert reply["error"]["code"] == ERR_BAD_REQUEST
        assert "version" in reply["error"]["message"]

    def test_unknown_routine(self, serve_env):
        _worker, config = serve_env
        reply = rpc(config.socket_path,
                    {"op": "call", "v": PROTOCOL_VERSION,
                     "routine": "trsv"})
        assert reply["error"]["code"] == ERR_BAD_REQUEST

    def test_missing_operand(self, serve_env):
        _worker, config = serve_env
        reply = rpc(config.socket_path,
                    {"op": "call", "v": PROTOCOL_VERSION, "routine": "dot",
                     "client": "t", "deadline_ms": 2000, "arrays": {}})
        assert reply["error"]["code"] == ERR_BAD_REQUEST

    def test_queue_full_answers_busy_with_retry_after(self, serve_env):
        worker, config = serve_env
        # pin the single compute thread so the 1-slot queue backs up
        worker._execute = lambda request: (time.sleep(0.6),
                                           ok_response(result="x"))[1]
        with SegmentSet() as segments:
            _view, ref = segments.add((4,), fill=np.ones(4))
            first = _open_call(config, _scal_header(ref, client="c1"))
            time.sleep(0.15)   # compute thread picks it up
            second = _open_call(config, _scal_header(ref, client="c2"))
            time.sleep(0.15)   # parks in the only queue slot
            third = _open_call(config, _scal_header(ref, client="c3"))
            rejected = recv_frame(third)
            assert rejected["error"]["code"] == ERR_BUSY
            assert rejected["error"]["retry_after_ms"] == 10
            assert recv_frame(first)["ok"]
            assert recv_frame(second)["ok"]
            for sock in (first, second, third):
                sock.close()
        totals = worker.quotas.totals()
        assert totals["rejected_busy"] == 1
        assert totals["completed"] == 2

    def test_per_client_quota(self, serve_env):
        worker, config = serve_env
        worker.quotas.max_inflight_per_client = 1
        worker._execute = lambda request: (time.sleep(0.5),
                                           ok_response(result="x"))[1]
        with SegmentSet() as segments:
            _view, ref = segments.add((4,), fill=np.ones(4))
            first = _open_call(config, _scal_header(ref, client="greedy"))
            time.sleep(0.15)
            second = _open_call(config, _scal_header(ref, client="greedy"))
            rejected = recv_frame(second)
            assert rejected["error"]["code"] == ERR_QUOTA
            assert rejected["error"]["retry_after_ms"] == 10
            assert recv_frame(first)["ok"]
            first.close()
            second.close()
        assert worker.quotas.snapshot()["greedy"]["rejected_quota"] == 1

    def test_oversized_request_bytes(self, serve_env):
        worker, config = serve_env
        worker.quotas.max_request_bytes = 64
        with SegmentSet() as segments:
            _view, ref = segments.add((64,), fill=np.zeros(64))  # 512 B
            reply = rpc(config.socket_path, _scal_header(ref))
            assert reply["error"]["code"] == ERR_QUOTA


class TestDeadlines:
    def test_slow_compute_answers_deadline(self, serve_env):
        worker, config = serve_env
        worker._execute = lambda request: (time.sleep(0.8),
                                           ok_response(result="x"))[1]
        with SegmentSet() as segments:
            _view, ref = segments.add((4,), fill=np.ones(4))
            t0 = time.monotonic()
            reply = rpc(config.socket_path,
                        _scal_header(ref, deadline_ms=100), timeout=15)
            elapsed = time.monotonic() - t0
        assert reply["error"]["code"] == ERR_DEADLINE
        assert elapsed < 0.7  # answered at deadline+grace, not compute end
        assert worker.quotas.totals()["deadline_expired"] == 1

    def test_expired_while_queued_is_cancelled(self, serve_env):
        worker, config = serve_env
        executed = []
        real_execute = worker._execute

        def tracking_execute(request):
            executed.append(request.header.get("client"))
            time.sleep(0.5)
            return ok_response(result="x")

        worker._execute = tracking_execute
        with SegmentSet() as segments:
            _view, ref = segments.add((4,), fill=np.ones(4))
            first = _open_call(config, _scal_header(ref, client="slowpoke"))
            time.sleep(0.15)
            # parks in the queue with a deadline it cannot make
            second = _open_call(
                config, _scal_header(ref, client="victim", deadline_ms=100))
            rejected = recv_frame(second)
            assert rejected["error"]["code"] == ERR_DEADLINE
            assert recv_frame(first)["ok"]
            first.close()
            second.close()
        time.sleep(0.2)  # let the compute loop drain the abandoned entry
        assert executed == ["slowpoke"]  # the victim never ran
        worker._execute = real_execute


class TestInjectedFaults:
    def test_serve_reject_fires_by_index(self, serve_env):
        _worker, config = serve_env
        install_fault_plan(FaultPlan.parse("serve_reject@#0"))
        with SegmentSet() as segments:
            _view, ref = segments.add((4,), fill=np.ones(4))
            first = rpc(config.socket_path, _scal_header(ref))
            second = rpc(config.socket_path, _scal_header(ref))
        assert first["error"]["code"] == ERR_BUSY
        assert "injected" in first["error"]["message"]
        assert second["ok"]

    def test_serve_stall_outlives_deadline(self, serve_env):
        _worker, config = serve_env
        install_fault_plan(FaultPlan.parse("serve_stall@scal"))
        with SegmentSet() as segments:
            _view, ref = segments.add((4,), fill=np.ones(4))
            reply = rpc(config.socket_path,
                        _scal_header(ref, deadline_ms=100), timeout=15)
        assert reply["error"]["code"] == ERR_DEADLINE


class TestDrain:
    def test_drain_op_seals_accounting_and_exits_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_ARCH", "reference")
        clear_fault_plan()
        runtime = Path(tempfile.mkdtemp(prefix="rsv", dir="/tmp"))
        config = ServeConfig(runtime_dir=runtime, warmup=(),
                             compute_threads=1, drain_grace=10.0)
        worker = ServeWorker(config)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while not config.socket_path.exists() \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        try:
            with SegmentSet() as segments:
                _view, ref = segments.add((4,), fill=np.ones(4))
                assert rpc(config.socket_path, _scal_header(ref))["ok"]
            reply = rpc(config.socket_path,
                        {"op": "drain", "v": PROTOCOL_VERSION}, timeout=15)
            assert reply["ok"] and reply["drained"]
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert worker.exit_code == 0
            ledger = json.loads(config.accounting_path.read_text())
            assert ledger["totals"]["completed"] == 1
            # the socket file is gone — nothing half-alive left behind
            assert not config.socket_path.exists()
        finally:
            shutil.rmtree(runtime, ignore_errors=True)

    def test_draining_worker_rejects_new_work(self, serve_env):
        worker, config = serve_env
        worker._draining.set()
        with SegmentSet() as segments:
            _view, ref = segments.add((4,), fill=np.ones(4))
            reply = rpc(config.socket_path, _scal_header(ref))
        assert reply["error"]["code"] == ERR_DRAINING
        worker._draining.clear()
