"""Wire-protocol unit tests: framing, descriptors, the routine table."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.serve.protocol import (MAX_FRAME, PROTOCOL_VERSION, ROUTINES,
                                  ArrayRef, PeerGone, ProtocolError,
                                  call_header, error_response, ok_response,
                                  recv_frame, send_frame)


def _pair():
    return socket.socketpair()


class TestFraming:
    def test_roundtrip(self):
        a, b = _pair()
        try:
            send_frame(a, {"op": "ping", "n": 3})
            assert recv_frame(b) == {"op": "ping", "n": 3}
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = _pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_oversized_send_rejected(self):
        a, b = _pair()
        try:
            with pytest.raises(ProtocolError):
                send_frame(a, {"blob": "x" * (MAX_FRAME + 1)})
        finally:
            a.close()
            b.close()

    def test_oversized_claim_rejected(self):
        import struct

        a, b = _pair()
        try:
            a.sendall(struct.pack("!I", MAX_FRAME + 1))
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_mid_frame_hangup_is_peer_gone(self):
        import struct

        a, b = _pair()
        try:
            a.sendall(struct.pack("!I", 100) + b"{")
            a.close()
            with pytest.raises(PeerGone):
                recv_frame(b)
        finally:
            b.close()

    def test_undecodable_payload(self):
        import struct

        a, b = _pair()
        try:
            payload = b"\xff\xfe not json"
            a.sendall(struct.pack("!I", len(payload)) + payload)
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_interleaved_frames_on_one_socket(self):
        a, b = _pair()
        received = []

        def reader():
            while True:
                frame = recv_frame(b)
                if frame is None:
                    return
                received.append(frame)

        t = threading.Thread(target=reader)
        t.start()
        try:
            for i in range(50):
                send_frame(a, {"i": i})
        finally:
            a.close()
        t.join(timeout=5)
        b.close()
        assert [f["i"] for f in received] == list(range(50))


class TestArrayRef:
    def test_roundtrip(self):
        ref = ArrayRef(shm="seg_x", shape=(3, 4))
        again = ArrayRef.from_json(ref.to_json())
        assert again == ref
        assert again.nbytes == 3 * 4 * 8

    def test_negative_dimension_rejected(self):
        with pytest.raises(ProtocolError):
            ArrayRef.from_json({"shm": "s", "shape": [3, -1]})

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            ArrayRef.from_json("nope")
        with pytest.raises(ProtocolError):
            ArrayRef.from_json({"shape": [2]})


class TestRoutineTable:
    def test_families_cover_served_blas(self):
        assert set(ROUTINES) == {"gemm", "gemv", "axpy", "dot", "scal"}

    def test_gemm_shape(self):
        spec = ROUTINES["gemm"]
        assert spec.result_shape({"a": (5, 3), "b": (3, 7)}, {}) == (5, 7)

    def test_gemv_shape_honors_trans(self):
        spec = ROUTINES["gemv"]
        assert spec.result_shape({"a": (5, 3), "x": (3,)},
                                 {"trans": False}) == (5,)
        assert spec.result_shape({"a": (5, 3), "x": (5,)},
                                 {"trans": True}) == (3,)

    def test_inplace_and_scalar_outputs(self):
        assert ROUTINES["axpy"].output == "y"
        assert ROUTINES["scal"].output == "x"
        assert ROUTINES["dot"].output == "scalar"

    def test_call_header_is_versioned(self):
        ref = ArrayRef(shm="s", shape=(2,))
        header = call_header("axpy", "me", 500, {"x": ref, "y": ref},
                             {"alpha": 2.0}, {}, None)
        assert header["v"] == PROTOCOL_VERSION
        assert header["routine"] == "axpy"
        assert "out" not in header

    def test_response_constructors(self):
        assert ok_response(value=1.5) == {"ok": True, "value": 1.5}
        err = error_response("busy", "full", retry_after_ms=40)
        assert err["error"]["code"] == "busy"
        assert err["error"]["retry_after_ms"] == 40
