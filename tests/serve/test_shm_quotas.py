"""Shared-memory segment and quota/accounting unit tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve.protocol import ERR_QUOTA, ArrayRef, ProtocolError
from repro.serve.quotas import QuotaBook, QuotaRejected
from repro.serve.shm import (AttachedSet, SegmentSet, attach_array,
                             create_array)


class TestSharedMemory:
    def test_create_attach_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((6, 5))
        seg, view, ref = create_array(data.shape, fill=data)
        try:
            other, remote = attach_array(ref)
            try:
                assert np.array_equal(remote, data)
                remote[2, 3] = 42.0  # server-side write is visible
                assert view[2, 3] == 42.0
            finally:
                other.close()
        finally:
            seg.close()
            seg.unlink()

    def test_zero_size_array(self):
        seg, view, ref = create_array((0,))
        try:
            assert view.shape == (0,)
            assert ref.nbytes == 0
        finally:
            seg.close()
            seg.unlink()

    def test_overclaiming_descriptor_rejected(self):
        seg, _view, ref = create_array((4,))
        try:
            lie = ArrayRef(shm=ref.shm, shape=(4000,))
            with pytest.raises(ProtocolError):
                attach_array(lie)
        finally:
            seg.close()
            seg.unlink()

    def test_vanished_segment_raises(self):
        with pytest.raises(FileNotFoundError):
            attach_array(ArrayRef(shm="rblas_does_not_exist", shape=(2,)))

    def test_segment_set_cleans_up(self):
        with SegmentSet() as segments:
            _view, ref = segments.add((8,), fill=np.ones(8))
        # after release the segment must be gone
        with pytest.raises(FileNotFoundError):
            attach_array(ref)

    def test_attached_set_never_unlinks(self):
        seg, _view, ref = create_array((3,), fill=np.zeros(3))
        try:
            with AttachedSet() as attached:
                attached.attach(ref)
            # creator's segment survives the server detach
            again, view = attach_array(ref)
            again.close()
        finally:
            seg.close()
            seg.unlink()


class TestQuotaBook:
    def test_admit_and_release(self):
        book = QuotaBook(max_inflight_per_client=2)
        book.admit("alice", 100)
        book.admit("alice", 100)
        with pytest.raises(QuotaRejected) as excinfo:
            book.admit("alice", 100)
        assert excinfo.value.code == ERR_QUOTA
        book.release("alice", "ok")
        book.admit("alice", 50)  # slot freed
        snap = book.snapshot()["alice"]
        assert snap["admitted"] == 3
        assert snap["rejected_quota"] == 1
        assert snap["inflight_peak"] == 2

    def test_byte_limit(self):
        book = QuotaBook(max_request_bytes=1000)
        with pytest.raises(QuotaRejected):
            book.admit("bob", 1001)
        book.admit("bob", 1000)

    def test_unadmit_rolls_back(self):
        book = QuotaBook()
        book.admit("carol", 64)
        book.unadmit("carol", 64)
        snap = book.snapshot()["carol"]
        assert snap["admitted"] == 0
        assert snap["inflight"] == 0
        assert snap["bytes_in"] == 0

    def test_isolation_between_clients(self):
        book = QuotaBook(max_inflight_per_client=1)
        book.admit("a", 1)
        book.admit("b", 1)  # b unaffected by a's inflight
        with pytest.raises(QuotaRejected):
            book.admit("a", 1)

    def test_outcomes_ledger(self):
        book = QuotaBook()
        for outcome in ("ok", "failed", "deadline"):
            book.admit("d", 1)
            book.release("d", outcome)
        snap = book.snapshot()["d"]
        assert snap["completed"] == 1
        assert snap["failed"] == 1
        assert snap["deadline_expired"] == 1
        assert snap["inflight"] == 0

    def test_seal_writes_ledger(self, tmp_path):
        book = QuotaBook()
        book.admit("erin", 8)
        book.release("erin", "ok")
        path = tmp_path / "accounting.json"
        book.seal(path)
        record = json.loads(path.read_text())
        assert record["totals"]["completed"] == 1
        assert "erin" in record["clients"]
        assert record["sealed_at"] is not None
