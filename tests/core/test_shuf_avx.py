"""AVX 256-bit Shuf method tests (4-lane XOR-permutation structure)."""

import numpy as np
import pytest

from repro.backend.runner import load_kernel
from repro.core.framework import Augem
from repro.core.identifier import identify_templates
from repro.core.vectorize import plan_vectorization
from repro.emu.run import call_kernel
from repro.isa.arch import HASWELL, PILEDRIVER, SANDYBRIDGE
from repro.blas.kernels import GEMM_SHUF_SIMPLE_C
from repro.transforms.pipeline import OptimizationConfig, optimize_c_kernel

from tests.conftest import needs_cc

CFG_4X4 = OptimizationConfig(unroll_jam=(("j", 4), ("i", 4)))


def _shuf_ref(rng, mc, nc, kc, ldc):
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(kc * nc)  # shuf layout: B[l*Nc + j]
    c = rng.standard_normal(ldc * nc)
    ref = c.copy()
    am = a.reshape(kc, mc)
    bm = b.reshape(kc, nc)
    for j in range(nc):
        for i in range(mc):
            ref[j * ldc + i] += am[:, i] @ bm[:, j]
    return a, b, c, ref


def test_planner_builds_xor_packs():
    fn = optimize_c_kernel(GEMM_SHUF_SIMPLE_C, CFG_4X4)
    fn, regions = identify_templates(fn)
    plan = plan_vectorization(regions, HASWELL, strategy="shuf")
    comp = next(r for r in regions if r.template == "mmUnrolledCOMP")
    assert plan.plan_for(comp).strategy == "shuf"
    packs = list({id(p): p for p in plan.pack_of.values()}.values())
    assert len(packs) == 4
    assert all(p.layout == "shuf" and len(p.members) == 4 for p in packs)


def test_shuf_asm_uses_permutes_and_blends():
    gk = Augem(arch=HASWELL).generate_named("gemm_shuf", config=CFG_4X4,
                                            strategy="shuf")
    asm = gk.asm_text
    assert "vpermilpd" in asm  # in-pair swap (p=1, p=3)
    assert "vperm2f128" in asm  # half swap (p=2) + store reassembly
    assert "vblendpd" in asm  # store un-permutation
    assert "vbroadcastsd" not in asm  # no Vdup on this path


@pytest.mark.parametrize("arch", [HASWELL, SANDYBRIDGE, PILEDRIVER],
                         ids=lambda a: a.name)
def test_shuf4_emulated_correct(arch, rng):
    gk = Augem(arch=arch).generate_named("gemm_shuf", config=CFG_4X4,
                                         strategy="shuf",
                                         name=f"shuf4e_{arch.name}")
    a, b, c, ref = _shuf_ref(rng, 8, 8, 16, 12)
    call_kernel(gk, [8, 8, 16, a, b, c, 12])
    np.testing.assert_allclose(c, ref, rtol=1e-12, atol=1e-10)


@needs_cc
def test_shuf4_native_correct(rng):
    from repro.isa.arch import detect_host

    host = detect_host()
    if host.simd != "avx":
        pytest.skip("host lacks AVX")
    gk = Augem(arch=host).generate_named("gemm_shuf", config=CFG_4X4,
                                         strategy="shuf", name="shuf4_nat")
    kernel = load_kernel("gemm_shuf", gk)
    a, b, c, ref = _shuf_ref(rng, 16, 8, 32, 20)
    kernel(16, 8, 32, a, b, c, 20)
    np.testing.assert_allclose(c, ref, rtol=1e-12, atol=1e-10)


@needs_cc
def test_shuf4_with_l_unroll(rng):
    from repro.isa.arch import detect_host

    host = detect_host()
    if host.simd != "avx":
        pytest.skip("host lacks AVX")
    cfg = OptimizationConfig(unroll_jam=(("j", 4), ("i", 4)),
                             unroll=(("l", 2),))
    gk = Augem(arch=host).generate_named("gemm_shuf", config=cfg,
                                         strategy="shuf", name="shuf4_ku2")
    kernel = load_kernel("gemm_shuf", gk)
    a, b, c, ref = _shuf_ref(rng, 8, 8, 32, 8)
    kernel(8, 8, 32, a, b, c, 8)
    np.testing.assert_allclose(c, ref, rtol=1e-12, atol=1e-10)


def test_shuf_driver_end_to_end(rng):
    """Full blocked DGEMM through the 4-lane Shuf kernel."""
    from repro.blas.gemm import make_gemm

    gemm = make_gemm(layout="shuf", config=CFG_4X4, strategy="shuf")
    a = rng.standard_normal((52, 70))
    b = rng.standard_normal((70, 36))
    assert np.allclose(gemm(a, b), a @ b)
