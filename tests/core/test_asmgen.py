"""Assembly Kernel Generator tests — small C-subset functions are generated
and executed under the emulator, comparing against Python-evaluated
references.  This exercises loop translation, GP allocation + spilling,
pointer arithmetic, prologue/epilogue, and float glue code."""

import numpy as np
import pytest

from repro.core.asmgen import CodegenError, KernelCodeGen, generate_assembly_items
from repro.core.identifier import identify_templates
from repro.core.vectorize import plan_vectorization
from repro.emu.run import call_items
from repro.isa.arch import GENERIC_SSE, HASWELL
from repro.isa.instructions import Instr
from repro.poet.parser import parse_function
from repro.transforms.pipeline import OptimizationConfig, optimize_c_kernel


def gen(src, arch=HASWELL, cfg=None, strategy="auto"):
    fn = optimize_c_kernel(src, cfg or OptimizationConfig())
    fn, regions = identify_templates(fn)
    plan = plan_vectorization(regions, arch, strategy)
    return generate_assembly_items(fn, arch, plan)


def test_counted_loop_executes_correct_trip_count():
    items = gen("""
    void f(long n, double* out) {
        long i;
        for (i = 0; i < n; i += 1) {
            out[0] += 1.0;
        }
    }
    """)
    out = np.zeros(1)
    call_items(items, [17, out])
    assert out[0] == 17.0


def test_zero_trip_loop_skipped():
    items = gen("""
    void f(long n, double* out) {
        long i;
        for (i = 0; i < n; i += 1) {
            out[0] += 1.0;
        }
    }
    """)
    out = np.zeros(1)
    call_items(items, [0, out])
    assert out[0] == 0.0


def test_nested_loops_and_pointer_arithmetic():
    items = gen("""
    void f(long m, long n, double* a) {
        long i;
        long j;
        double* p;
        for (i = 0; i < m; i += 1) {
            p = a + i * n;
            for (j = 0; j < n; j += 1) {
                p[j] = p[j] + 1.0;
            }
        }
    }
    """)
    a = np.zeros(12)
    call_items(items, [3, 4, a])
    assert np.all(a == 1.0)


def test_seventh_argument_from_stack():
    items = gen("""
    void f(long a, long b, long c, long d, long e, long g, long h, double* out) {
        out[0] = 0.0;
        long s;
        s = a + b + c + d + e + g + h;
        for (a = 0; a < s; a += 1) {
            out[0] += 1.0;
        }
    }
    """)
    out = np.zeros(1)
    call_items(items, [1, 2, 3, 4, 5, 6, 7, out])
    assert out[0] == 28.0


def test_float_param_passed_in_xmm():
    items = gen("""
    void f(double alpha, double* out) {
        out[0] = alpha;
    }
    """)
    out = np.zeros(1)
    call_items(items, [2.5, out])
    assert out[0] == 2.5


def test_double_return_value():
    items = gen("""
    double f(double* x) {
        double a;
        a = x[0];
        return a;
    }
    """)
    assert call_items(items, [np.array([3.25])]) == 3.25


def test_if_branch_taken_and_not():
    src = """
    void f(long n, double* out) {
        if (n < 10) {
            out[0] = 1.0;
        } else {
            out[0] = out[1];
        }
    }
    """
    items = gen(src)
    out = np.array([0.0, 7.0])
    call_items(items, [5, out])
    assert out[0] == 1.0
    out = np.array([0.0, 7.0])
    call_items(items, [50, out])
    assert out[0] == 7.0


def test_spilled_variables_roundtrip():
    # 20 integer locals force spilling beyond the 13 allocatable registers
    decls = "".join(f"long v{k};" for k in range(20))
    inits = "".join(f"v{k} = {k};" for k in range(20))
    total = " + ".join(f"v{k}" for k in range(20))
    items = gen(f"""
    void f(double* out) {{
        {decls}
        {inits}
        long s;
        s = {total};
        out[0] = 0.0;
        for (v0 = 0; v0 < s; v0 += 1) {{
            out[0] += 1.0;
        }}
    }}
    """)
    out = np.zeros(1)
    call_items(items, [out])
    assert out[0] == sum(range(20))


def test_callee_saved_registers_restored():
    items = gen("void f(double* x) { x[0] = 1.0; }")
    pushes = [i for i in items if isinstance(i, Instr) and i.mnemonic == "push"]
    pops = [i for i in items if isinstance(i, Instr) and i.mnemonic == "pop"]
    assert len(pushes) == len(pops)
    assert [p.operands[0] for p in pushes] == [
        p.operands[0] for p in reversed(pops)]


def test_avx_epilogue_has_vzeroupper():
    items = gen("void f(double* x) { x[0] = 0.0; }", arch=HASWELL)
    mnems = [i.mnemonic for i in items if isinstance(i, Instr)]
    assert "vzeroupper" in mnems
    items_sse = gen("void f(double* x) { x[0] = 0.0; }", arch=GENERIC_SSE)
    mnems_sse = [i.mnemonic for i in items_sse if isinstance(i, Instr)]
    assert "vzeroupper" not in mnems_sse


def test_prefetch_translated():
    cfg = OptimizationConfig(prefetch_distance=16)
    items = gen("""
    void f(long n, double* x, double* y) {
        long i;
        for (i = 0; i < n; i += 1) {
            y[i] += x[i] * 2.0;
        }
    }
    """, cfg=cfg)
    mnems = [i.mnemonic for i in items if isinstance(i, Instr)]
    assert "prefetcht0" in mnems


def test_nonzero_float_literal_materialized():
    items = gen("void f(double* x) { x[0] = 3.5; }")
    out = np.zeros(1)
    call_items(items, [out])
    assert out[0] == 3.5


def test_float_literal_in_expression():
    items = gen("double f(double* x) { double a; a = x[0]; return a * 2.0 + 0.25; }")
    assert call_items(items, [np.array([3.0])]) == 6.25


def test_general_float_expression_glue():
    items = gen("""
    double f(double* x) {
        double a;
        double b;
        a = x[0];
        b = x[1];
        return a * b + a;
    }
    """)
    got = call_items(items, [np.array([2.0, 3.0])])
    assert got == 2.0 * 3.0 + 2.0


def test_non_canonical_downward_loop_still_translates():
    # the transforms skip non-canonical loops, but the Assembly Kernel
    # Generator must still translate them faithfully
    items = gen("""
    void f(long n, double* out) {
        long i;
        out[0] = 0.0;
        for (i = n; i != 0; i -= 1) {
            out[0] += 1.0;
        }
    }
    """)
    out = np.zeros(1)
    call_items(items, [9, out])
    assert out[0] == 9.0
