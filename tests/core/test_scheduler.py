"""Instruction-scheduler tests, including an emulator-backed property test:
any schedule the pass produces must leave machine state unchanged."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import schedule_block, schedule_items
from repro.emu.machine import Machine
from repro.emu.memory import Memory
from repro.isa.instructions import Instr, Label, instr
from repro.isa.operands import Imm, LabelRef, Mem
from repro.isa.registers import GP, xmm

RAX, RBX, RCX = GP["rax"], GP["rbx"], GP["rcx"]


def test_true_dependence_preserved():
    block = [
        instr("mov", Imm(1), RAX),
        instr("add", RAX, RBX),
    ]
    out = schedule_block(block)
    assert out.index(block[0]) < out.index(block[1])


def test_independent_loads_float_above_arithmetic():
    load = instr("vmovupd", Mem(base=RAX), xmm(1).ymm)
    arith = instr("vaddpd", xmm(2).ymm, xmm(3).ymm, xmm(4).ymm)
    dep = instr("vmulpd", xmm(1).ymm, xmm(1).ymm, xmm(5).ymm)
    out = schedule_block([arith, load, dep])
    # the load feeds a multiply: its critical path is longer, so it leads
    assert out[0] is load


def test_stores_keep_program_order():
    s1 = instr("vmovupd", xmm(0).ymm, Mem(base=RAX))
    s2 = instr("vmovupd", xmm(1).ymm, Mem(base=RBX))
    out = schedule_block([s1, s2])
    assert out == [s1, s2]


def test_load_never_crosses_store():
    store = instr("vmovupd", xmm(0).ymm, Mem(base=RAX))
    load = instr("vmovupd", Mem(base=RBX), xmm(1).ymm)
    out = schedule_block([store, load])
    assert out == [store, load]


def test_anti_dependence_preserved():
    use = instr("add", RAX, RBX)  # reads rax
    redef = instr("mov", Imm(9), RAX)  # writes rax
    out = schedule_block([use, redef])
    assert out == [use, redef]


def test_flag_chain_preserved():
    c = instr("cmp", RAX, RBX)
    a = instr("add", Imm(1), RCX)  # writes flags
    out = schedule_block([a, c])
    assert out.index(a) < out.index(c)


def test_branches_block_scheduling():
    items = [instr("cmp", RAX, RBX), instr("jl", LabelRef("t"))]
    assert schedule_block(items) == items


def test_schedule_items_respects_labels():
    items = [
        instr("mov", Imm(1), RAX),
        Label("L"),
        instr("mov", Imm(2), RBX),
    ]
    out = schedule_items(items)
    assert isinstance(out[1], Label)


# -- property test: scheduling never changes observable semantics --------------

_REG_NAMES = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8"]


@st.composite
def straight_line_block(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    block = []
    for _ in range(n):
        kind = draw(st.sampled_from(["mov_imm", "mov", "add", "sub", "imul"]))
        dst = GP[draw(st.sampled_from(_REG_NAMES))]
        if kind == "mov_imm":
            block.append(instr("mov", Imm(draw(st.integers(-100, 100))), dst))
        else:
            src = GP[draw(st.sampled_from(_REG_NAMES))]
            block.append(instr(kind if kind != "mov" else "mov", src, dst))
    return block


@given(straight_line_block())
@settings(max_examples=60, deadline=None)
def test_scheduled_block_is_semantically_equal(block):
    def final_state(instrs):
        mem = Memory(1 << 12)
        m = Machine(list(instrs) + [], mem, max_steps=10_000)
        for i, name in enumerate(_REG_NAMES):
            m.state.gp[name] = i + 1
        pc = 0
        while pc < len(m.items):
            it = m.items[pc]
            pc = m._exec(it, pc)
        return {r: m.state.gp.get(r, 0) for r in _REG_NAMES}

    assert final_state(schedule_block(block)) == final_state(block)


def test_scheduler_never_drops_instructions():
    block = [instr("mov", Imm(k), RAX) for k in range(10)]
    assert len(schedule_block(block)) == 10
