"""mvSCALE extension-template tests — demonstrates the paper's §7 claim
that new templates can be added for additional routines."""

import numpy as np
import pytest

from repro.backend.runner import load_kernel
from repro.core.framework import Augem
from repro.core.identifier import identify_templates
from repro.core.templates import match_mv_scale
from repro.core.vectorize import plan_vectorization
from repro.emu.run import call_kernel
from repro.isa.arch import HASWELL, PILEDRIVER
from repro.blas.kernels import SCAL_SIMPLE_C
from repro.poet.parser import parse_function
from repro.transforms.pipeline import OptimizationConfig, optimize_c_kernel

from tests.conftest import needs_cc


def stmts_of(body):
    return parse_function("void f() { " + body + " }").body.stmts


def test_matcher_accepts_canonical_shape():
    m = match_mv_scale(stmts_of("""
        tmp0 = ptr_X[2];
        tmp0 = tmp0 * alpha;
        ptr_X[2] = tmp0;
    """), 0)
    assert m is not None
    assert (m.x_ptr, m.x_off, m.scal, m.tmp) == ("ptr_X", 2, "alpha", "tmp0")


def test_matcher_rejects_store_elsewhere():
    assert match_mv_scale(stmts_of("""
        tmp0 = ptr_X[2];
        tmp0 = tmp0 * alpha;
        ptr_X[3] = tmp0;
    """), 0) is None


def test_scalar_replacement_produces_shape():
    fn = optimize_c_kernel(SCAL_SIMPLE_C, OptimizationConfig())
    fn, regions = identify_templates(fn)
    assert [r.template for r in regions] == ["mvSCALE"]


def test_unrolled_scale_region_and_plan():
    cfg = OptimizationConfig(unroll=(("i", 8),))
    fn = optimize_c_kernel(SCAL_SIMPLE_C, cfg)
    fn, regions = identify_templates(fn)
    assert [r.template for r in regions] == ["mvUnrolledSCALE"]
    plan = plan_vectorization(regions, HASWELL, "auto")
    assert plan.plan_for(regions[0]).strategy == "scale"
    assert "alpha" in plan.broadcast_vars


def test_non_multiple_unroll_falls_scalar():
    cfg = OptimizationConfig(unroll=(("i", 3),))
    fn = optimize_c_kernel(SCAL_SIMPLE_C, cfg)
    fn, regions = identify_templates(fn)
    plan = plan_vectorization(regions, HASWELL, "auto")
    assert plan.plan_for(regions[0]).strategy == "scalar"


@pytest.mark.parametrize("strategy", ["auto", "scalar"])
def test_scal_emulated_all_arches(any_arch, rng, strategy):
    gk = Augem(arch=any_arch).generate_named("scal", strategy=strategy)
    n = 32
    x = rng.standard_normal(n)
    ref = -2.25 * x
    call_kernel(gk, [n, -2.25, x])
    np.testing.assert_allclose(x, ref, rtol=1e-15)


def test_scal_fma4_arch_emulated(rng):
    gk = Augem(arch=PILEDRIVER).generate_named("scal")
    n = 64
    x = rng.standard_normal(n)
    ref = 0.5 * x
    call_kernel(gk, [n, 0.5, x])
    assert np.allclose(x, ref)


@needs_cc
def test_scal_native(native_arch, rng):
    gk = Augem(arch=native_arch).generate_named(
        "scal", name=f"scal_t_{native_arch.name}")
    k = load_kernel("scal", gk)
    n = 160
    x = rng.standard_normal(n)
    ref = 3.0 * x
    k(n, 3.0, x)
    assert np.allclose(x, ref)


@needs_cc
@pytest.mark.parametrize("n", [1, 7, 16, 17, 100])
def test_dscal_driver_tails(rng, n):
    from repro.blas.level1 import make_scal

    scal = make_scal()
    x = rng.standard_normal(n)
    ref = 1.75 * x
    scal(1.75, x)
    assert np.allclose(x, ref)


@needs_cc
def test_dscal_blas_api(rng):
    from repro.blas import AugemBLAS

    blas = AugemBLAS()
    x = rng.standard_normal(50)
    ref = -0.5 * x
    blas.dscal(-0.5, x)
    assert np.allclose(x, ref)
