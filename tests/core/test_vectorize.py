"""Vectorization planning tests (paper §3.4-§3.6 strategies)."""

import pytest

from repro.blas.kernels import (
    AXPY_SIMPLE_C,
    DOT_SIMPLE_C,
    GEMM_SHUF_SIMPLE_C,
    GEMM_SIMPLE_C,
    GEMV_SIMPLE_C,
)
from repro.core.identifier import identify_templates
from repro.core.vectorize import plan_vectorization
from repro.isa.arch import GENERIC_SSE, HASWELL
from repro.transforms.pipeline import OptimizationConfig, optimize_c_kernel


def plan_for(src, cfg, arch, strategy="auto"):
    fn = optimize_c_kernel(src, cfg)
    fn, regions = identify_templates(fn)
    return plan_vectorization(regions, arch, strategy), regions


def strategies(plan, regions):
    return {r.template: plan.plan_for(r).strategy for r in regions}


def test_gemm_avx_uses_vdup():
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 8)))
    plan, regions = plan_for(GEMM_SIMPLE_C, cfg, HASWELL)
    s = strategies(plan, regions)
    assert s["mmUnrolledCOMP"] == "vdup"
    assert s["mmUnrolledSTORE"] == "vstore"


def test_gemm_accumulator_packs_by_column():
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 8)))
    plan, regions = plan_for(GEMM_SIMPLE_C, cfg, HASWELL)
    packs = {id(p): p for p in plan.pack_of.values()}.values()
    assert len(packs) == 4  # 2 B lanes x (8/4) A chunks
    for p in packs:
        assert len(p.members) == 4
        assert p.cls == "C"  # accumulators correlate to C (paper §3.1)


def test_gemm_insufficient_unroll_stays_scalar():
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 2)))
    plan, regions = plan_for(GEMM_SIMPLE_C, cfg, HASWELL)  # 2 < 4 lanes
    s = strategies(plan, regions)
    assert s["mmUnrolledCOMP"] == "scalar"
    assert s["mmUnrolledSTORE"] == "scalar"
    assert plan.pack_of == {}


def test_shuf_method_planned_on_sse_shuf_layout():
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 2)))
    plan, regions = plan_for(GEMM_SHUF_SIMPLE_C, cfg, GENERIC_SSE,
                             strategy="shuf")
    s = strategies(plan, regions)
    assert s["mmUnrolledCOMP"] == "shuf"
    layouts = {p.layout for p in plan.pack_of.values()}
    assert layouts == {"shuf"}
    assert s["mmUnrolledSTORE"] == "vstore"


def test_shuf_not_chosen_under_auto():
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 2)))
    plan, regions = plan_for(GEMM_SHUF_SIMPLE_C, cfg, GENERIC_SSE, "auto")
    s = strategies(plan, regions)
    assert s["mmUnrolledCOMP"] == "vdup"


def test_scalar_strategy_disables_everything():
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 8)))
    plan, regions = plan_for(GEMM_SIMPLE_C, cfg, HASWELL, "scalar")
    assert plan.region_plans == {}


def test_dot_paired_plan():
    cfg = OptimizationConfig(unroll=(("i", 8),), split=(("i", "res", 8),))
    plan, regions = plan_for(DOT_SIMPLE_C, cfg, HASWELL)
    s = strategies(plan, regions)
    assert s["mmUnrolledCOMP"] == "paired"
    assert s["sumREDUCE"] == "hreduce"
    assert len({id(p) for p in plan.pack_of.values()}) == 2  # 8 parts / 4 lanes


def test_dot_partial_split_blocks_hreduce():
    # splitting 2-ways on a 4-lane machine cannot form full packs
    cfg = OptimizationConfig(unroll=(("i", 2),), split=(("i", "res", 2),))
    plan, regions = plan_for(DOT_SIMPLE_C, cfg, HASWELL)
    s = strategies(plan, regions)
    assert s["sumREDUCE"] == "scalar"


def test_axpy_mv_plan_broadcasts_alpha():
    cfg = OptimizationConfig(unroll=(("i", 8),))
    plan, regions = plan_for(AXPY_SIMPLE_C, cfg, HASWELL)
    s = strategies(plan, regions)
    assert s["mvUnrolledCOMP"] == "mv"
    assert "alpha" in plan.broadcast_vars


def test_gemv_mv_plan_broadcasts_scal():
    cfg = OptimizationConfig(unroll=(("j", 8),))
    plan, regions = plan_for(GEMV_SIMPLE_C, cfg, HASWELL)
    assert "scal" in plan.broadcast_vars


def test_mv_non_multiple_unroll_stays_scalar():
    cfg = OptimizationConfig(unroll=(("i", 3),))
    plan, regions = plan_for(AXPY_SIMPLE_C, cfg, HASWELL)
    s = strategies(plan, regions)
    assert s.get("mvUnrolledCOMP", "scalar") == "scalar"


def test_repair_pass_consistency_after_l_unroll():
    """Both l-copy grids must agree: either both vectorize or neither."""
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 8)),
                             unroll=(("l", 2),))
    plan, regions = plan_for(GEMM_SIMPLE_C, cfg, HASWELL)
    comp_strategies = {plan.plan_for(r).strategy for r in regions
                       if r.template == "mmUnrolledCOMP"}
    assert len(comp_strategies) == 1
