"""Framework facade tests."""

import pytest

from repro.core.framework import Augem, default_config, stable_kernel_name
from repro.isa.arch import GENERIC_SSE, HASWELL, PILEDRIVER, SANDYBRIDGE
from repro.isa.instructions import Instr
from repro.transforms.pipeline import OptimizationConfig


def test_content_hash_stable_and_content_addressed():
    cfg = OptimizationConfig(unroll=(("i", 4),))
    gk1 = Augem(arch=HASWELL).generate_named("axpy", config=cfg, name="k")
    gk2 = Augem(arch=HASWELL).generate_named("axpy", config=cfg, name="k")
    assert gk1.content_hash == gk2.content_hash
    # different config, symbol name, or arch => different address
    other_cfg = Augem(arch=HASWELL).generate_named(
        "axpy", config=OptimizationConfig(unroll=(("i", 8),)), name="k")
    other_name = Augem(arch=HASWELL).generate_named("axpy", config=cfg,
                                                    name="k2")
    other_arch = Augem(arch=GENERIC_SSE).generate_named("axpy", config=cfg,
                                                        name="k")
    assert len({gk1.content_hash, other_cfg.content_hash,
                other_name.content_hash, other_arch.content_hash}) == 4


def test_stable_kernel_name_deterministic_and_distinct():
    cfg_a = OptimizationConfig(unroll=(("i", 4),))
    cfg_b = OptimizationConfig(unroll=(("i", 8),))
    name = stable_kernel_name("axpy", HASWELL, cfg_a)
    assert name == stable_kernel_name("axpy", HASWELL, cfg_a)
    assert name.isidentifier()  # must be a legal exported symbol
    assert name != stable_kernel_name("axpy", HASWELL, cfg_b)
    assert name != stable_kernel_name("axpy", GENERIC_SSE, cfg_a)
    assert name != stable_kernel_name("axpy", HASWELL, cfg_a, "shuf")


@pytest.mark.parametrize("kernel", ["gemm", "gemm_shuf", "gemv", "axpy", "dot"])
def test_generate_named_all_kernels(kernel, any_arch):
    gk = Augem(arch=any_arch).generate_named(kernel)
    assert gk.asm_text.strip().endswith(f".size {gk.name}, .-{gk.name}")
    assert any(isinstance(i, Instr) for i in gk.items)
    assert gk.low_level_c


def test_fma_used_only_when_available():
    for arch, expect in ((HASWELL, True), (SANDYBRIDGE, False)):
        gk = Augem(arch=arch).generate_named("gemm")
        has_fma = "vfmadd" in gk.asm_text
        assert has_fma == expect


def test_piledriver_uses_fma4():
    gk = Augem(arch=PILEDRIVER).generate_named("gemm")
    assert "vfmaddpd" in gk.asm_text


def test_sse_kernel_has_no_avx():
    gk = Augem(arch=GENERIC_SSE).generate_named("gemm")
    for line in gk.asm_text.splitlines():
        assert "\tv" not in line, f"AVX instruction on SSE target: {line}"


def test_template_counts_exposed():
    gk = Augem(arch=HASWELL).generate_named("gemm")
    counts = gk.template_counts
    assert counts.get("mmUnrolledCOMP", 0) >= 1
    assert counts.get("mmUnrolledSTORE", 0) >= 1


def test_describe_mentions_config_and_strategy():
    gk = Augem(arch=HASWELL).generate_named("dot")
    text = gk.describe()
    assert "dot" in gk.name or "ddot" in gk.name
    assert "strategy" in text and "templates" in text


def test_custom_symbol_name():
    gk = Augem(arch=HASWELL).generate_named("axpy", name="my_axpy")
    assert gk.name == "my_axpy"
    assert ".globl my_axpy" in gk.asm_text


def test_default_config_covers_all_kernels():
    for kernel in ("gemm", "gemm_shuf", "gemv", "axpy", "dot"):
        for arch in (HASWELL, GENERIC_SSE):
            cfg = default_config(kernel, arch)
            assert cfg is not None
    with pytest.raises(KeyError):
        default_config("lu", HASWELL)


def test_schedule_flag_changes_order_not_content():
    gk_sched = Augem(arch=HASWELL, schedule=True).generate_named("gemm")
    gk_plain = Augem(arch=HASWELL, schedule=False).generate_named("gemm")
    def mnem_bag(gk):
        return sorted(i.mnemonic for i in gk.items if isinstance(i, Instr))
    assert mnem_bag(gk_sched) == mnem_bag(gk_plain)


def test_generate_accepts_custom_source():
    src = """
    void my_copy(long n, double* x, double* y) {
        long i;
        for (i = 0; i < n; i += 1) {
            y[i] += x[i] * 1.0;
        }
    }
    """
    from repro.transforms.pipeline import OptimizationConfig

    gk = Augem(arch=HASWELL).generate(src, OptimizationConfig())
    assert gk.name == "my_copy"
