"""Template Identifier tests (paper §2.2, §4.1.2)."""

import pytest

from repro.blas.kernels import (
    AXPY_SIMPLE_C,
    DOT_SIMPLE_C,
    GEMM_SIMPLE_C,
    GEMV_SIMPLE_C,
)
from repro.core.identifier import identify_templates, match_sum_reduce
from repro.poet import cast as C
from repro.poet.parser import parse_function, parse_stmt
from repro.transforms.pipeline import OptimizationConfig, optimize_c_kernel


def tagged(src, cfg):
    fn = optimize_c_kernel(src, cfg)
    return identify_templates(fn)


def counts(regions):
    out = {}
    for r in regions:
        out[r.template] = out.get(r.template, 0) + 1
    return out


def test_gemm_2x2_matches_paper_fig14():
    """Paper §4.1.2: four mmCOMPs merged into one mmUnrolledCOMP; four
    mmSTOREs divided into two mmUnrolledSTOREs (one per C pointer)."""
    fn, regions = tagged(GEMM_SIMPLE_C,
                         OptimizationConfig(unroll_jam=(("j", 2), ("i", 2))))
    c = counts(regions)
    assert c == {"mmUnrolledCOMP": 1, "mmUnrolledSTORE": 2}
    comp = next(r for r in regions if r.template == "mmUnrolledCOMP")
    payload = comp.binding["payload"]
    assert payload.kind == "grid"
    assert (payload.n1, payload.n2) == (2, 2)
    assert payload.a_contiguous  # A offsets 0,1 of one pointer
    assert not payload.b_contiguous  # B lanes are two distinct pointers


def test_gemm_unrolled_l_produces_one_grid_per_copy():
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 2)),
                             unroll=(("l", 2),))
    fn, regions = tagged(GEMM_SIMPLE_C, cfg)
    c = counts(regions)
    assert c["mmUnrolledCOMP"] == 2  # accumulators repeat per l copy


def test_gemm_no_unroll_single_mm_comp():
    fn, regions = tagged(GEMM_SIMPLE_C, OptimizationConfig())
    c = counts(regions)
    assert c.get("mmCOMP") == 1
    assert c.get("mmSTORE") == 1


def test_store_groups_sorted_by_offset():
    fn, regions = tagged(GEMM_SIMPLE_C,
                         OptimizationConfig(unroll_jam=(("j", 2), ("i", 4))))
    for r in regions:
        if r.template == "mmUnrolledSTORE":
            offs = [s.c_off for s in r.binding["payload"].stores]
            assert offs == sorted(offs)
            assert offs == list(range(offs[0], offs[0] + len(offs)))


def test_gemv_unrolled_mv_comp():
    fn, regions = tagged(GEMV_SIMPLE_C, OptimizationConfig(unroll=(("j", 4),)))
    c = counts(regions)
    assert c == {"mvUnrolledCOMP": 1}
    payload = next(iter(regions)).binding["payload"]
    assert len(payload.comps) == 4
    assert payload.scal == "scal"


def test_gemv_single_mv_comp():
    fn, regions = tagged(GEMV_SIMPLE_C, OptimizationConfig())
    assert counts(regions) == {"mvCOMP": 1}


def test_axpy_same_templates_as_gemv():
    """Paper §4.3: AXPY is driven by the same templates as GEMV."""
    fn, regions = tagged(AXPY_SIMPLE_C, OptimizationConfig(unroll=(("i", 4),)))
    assert counts(regions) == {"mvUnrolledCOMP": 1}


def test_dot_paired_structure_and_reduce():
    """Paper §4.4: DOT is driven by the same templates as GEMM."""
    cfg = OptimizationConfig(unroll=(("i", 4),), split=(("i", "res", 4),))
    fn, regions = tagged(DOT_SIMPLE_C, cfg)
    c = counts(regions)
    assert c["mmUnrolledCOMP"] == 1
    assert c["sumREDUCE"] == 1
    payload = next(r for r in regions
                   if r.template == "mmUnrolledCOMP").binding["payload"]
    assert payload.kind == "paired"
    assert payload.a_contiguous and payload.b_contiguous


def test_regions_replace_statements_in_tree():
    fn, regions = tagged(GEMM_SIMPLE_C,
                         OptimizationConfig(unroll_jam=(("j", 2), ("i", 2))))
    region_nodes = [n for n in fn.body.walk() if isinstance(n, C.TaggedRegion)]
    assert len(region_nodes) == len(regions)


def test_non_template_code_untouched():
    fn, regions = tagged(GEMM_SIMPLE_C,
                         OptimizationConfig(unroll_jam=(("j", 2), ("i", 2))))
    # pointer updates must survive as ordinary statements in the l loop
    loops = [n for n in fn.body.walk() if isinstance(n, C.For)]
    l_loop = loops[-1]
    incs = [s for s in l_loop.body.stmts
            if isinstance(s, C.Assign) and s.op == "+="]
    assert incs, "pointer increments were swallowed by a region"


def test_sum_reduce_matcher():
    assert match_sum_reduce(parse_stmt("res += a + b + c;")) is not None
    assert match_sum_reduce(parse_stmt("res += a;")) is None
    assert match_sum_reduce(parse_stmt("res = a + b;")) is None
    assert match_sum_reduce(parse_stmt("res += a * b;")) is None
    m = match_sum_reduce(parse_stmt("res += p0 + p1 + p2 + p3;"))
    assert m.dst == "res" and m.parts == ["p0", "p1", "p2", "p3"]
