"""Register-allocation tests (paper §3.1 strategy)."""

import pytest

from repro.core.regalloc import (
    OutOfRegistersError,
    Pack,
    VectorAllocator,
    array_root,
)
from repro.isa.arch import GENERIC_SSE, HASWELL


def test_array_root_parsing():
    assert array_root("ptr_A0") == "A"
    assert array_root("ptr_B12") == "B"
    assert array_root("ptr_X0") == "X"
    assert array_root("alpha") == "alpha"  # non-pointer names pass through
    assert array_root("ptr_my_arr3") == "my_arr"


def test_queues_partition_register_file():
    alloc = VectorAllocator(HASWELL, ["A", "B", "C"])
    total = sum(len(q) for q in alloc.queues.values())
    assert total == 16
    assert set(alloc.queues) == {"A", "B", "C", "tmp"}
    assert len(alloc.queues["A"]) == 4  # R/m with m=4 classes


def test_residue_goes_to_temp_queue():
    alloc = VectorAllocator(HASWELL, ["X", "Y"])  # 3 classes, 16/3 = 5 each
    assert len(alloc.queues["tmp"]) == 6


def test_different_arrays_get_different_registers():
    alloc = VectorAllocator(HASWELL, ["A", "B", "C"])
    ra = alloc.alloc("tmp0", "A").reg
    rb = alloc.alloc("tmp1", "B").reg
    assert ra.index != rb.index


def test_alloc_is_idempotent_per_variable():
    alloc = VectorAllocator(HASWELL, ["A"])
    assert alloc.alloc("v", "A").reg == alloc.alloc("v", "A").reg


def test_reg_table_records_assignments():
    alloc = VectorAllocator(HASWELL, ["A"])
    alloc.alloc("v", "A")
    assert "v" in alloc.reg_table


def test_release_returns_register_to_pool():
    alloc = VectorAllocator(HASWELL, ["A"])
    before = len(alloc.queues["A"])
    loc = alloc.alloc("v", "A")
    alloc.release_var("v")
    assert len(alloc.queues["A"]) == before
    assert "v" not in alloc.reg_table


def test_overflow_steals_from_other_queues():
    alloc = VectorAllocator(HASWELL, ["A", "B", "C"])
    # exhaust A's 4 registers, then keep allocating A-class variables
    for k in range(8):
        alloc.alloc(f"a{k}", "A")
    assert alloc.in_use() == 8


def test_exhaustion_raises():
    alloc = VectorAllocator(HASWELL, ["A"])
    for k in range(16):
        alloc.alloc(f"v{k}", "A")
    with pytest.raises(OutOfRegistersError):
        alloc.alloc("one_too_many", "A")


def test_pack_allocation_and_lanes():
    alloc = VectorAllocator(HASWELL, ["C"])
    pack = alloc.alloc_pack(["r0", "r1", "r2", "r3"], "C")
    assert pack.lane_of("r2") == 2
    for k in range(4):
        loc = alloc.loc(f"r{k}")
        assert loc.reg == pack.reg and loc.lane == k and loc.is_lane


def test_pack_rejects_already_allocated_member():
    alloc = VectorAllocator(HASWELL, ["C"])
    alloc.alloc("r0", "C")
    with pytest.raises(OutOfRegistersError):
        alloc.alloc_pack(["r0", "r1"], "C")


def test_pack_released_only_when_all_members_dead():
    alloc = VectorAllocator(HASWELL, ["C"])
    before = alloc.in_use()
    pack = alloc.alloc_pack(["r0", "r1"], "C")
    alloc.release_var("r0")
    assert alloc.in_use() == before + 1  # r1 still holds the register
    alloc.release_var("r1")
    assert alloc.in_use() == before


def test_temp_reg_cycle():
    alloc = VectorAllocator(GENERIC_SSE, ["A"])
    r = alloc.alloc_temp_reg()
    used = alloc.in_use()
    alloc.free_reg(r)
    assert alloc.in_use() == used - 1


def test_release_unknown_var_is_noop():
    alloc = VectorAllocator(HASWELL, ["A"])
    alloc.release_var("ghost")


def test_too_many_classes_raises():
    with pytest.raises(OutOfRegistersError):
        VectorAllocator(HASWELL, [f"arr{k}" for k in range(20)])


def test_dump_lists_assignments():
    alloc = VectorAllocator(HASWELL, ["A"])
    alloc.alloc("v", "A")
    alloc.alloc_pack(["p0", "p1"], "A")
    text = alloc.dump()
    assert "v:" in text and "lane 1" in text
