"""Property-based tests for the vector register allocator (paper §3.1).

Drives :class:`repro.core.regalloc.VectorAllocator` with randomized
live-range event sequences (allocate a scalar, allocate a pack, release)
and checks the invariants the Template Optimizer silently relies on:

- two simultaneously-live variables never share a physical register
  unless they are lanes of the same pack;
- the ``reg_table`` answer for a live variable never changes between its
  allocation and its release (decisions must stay consistent across
  template regions — Fig. 2);
- allocated + free register counts always conserve the register file;
- exhaustion surfaces as :class:`OutOfRegistersError`, never as silent
  double-assignment.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.regalloc import OutOfRegistersError, VectorAllocator
from repro.isa.arch import GENERIC_SSE, HASWELL

ARRAY_CLASSES = ("A", "B", "C")
VARS = [f"v{i}" for i in range(24)]

# an event is ("alloc", var, cls) | ("pack", (members...), cls) | ("release", var)
_alloc = st.tuples(st.just("alloc"), st.sampled_from(VARS),
                   st.sampled_from(ARRAY_CLASSES + ("tmp",)))
_pack = st.tuples(st.just("pack"),
                  st.lists(st.sampled_from(VARS), min_size=2, max_size=4,
                           unique=True).map(tuple),
                  st.sampled_from(ARRAY_CLASSES))
_release = st.tuples(st.just("release"), st.sampled_from(VARS),
                     st.just(None))
EVENTS = st.lists(st.one_of(_alloc, _pack, _release), max_size=60)


def _check_invariants(alloc: VectorAllocator, total_regs: int) -> None:
    # no two live variables share a register unless they share the pack
    by_index = {}
    for var, loc in alloc.reg_table.items():
        other = by_index.get(loc.reg.index)
        if other is not None:
            o_loc = alloc.reg_table[other]
            assert loc.pack is not None and o_loc.pack is loc.pack, (
                f"{var} and {other} both live in reg {loc.reg.index} "
                f"without sharing a pack")
        by_index[loc.reg.index] = var
    # the register file is conserved: every register is either in some
    # free queue or accounted to an owner class
    free = sum(len(q) for q in alloc.queues.values())
    assert free + alloc.in_use() == total_regs
    # a pack is live while any member is; its register must not be free
    free_indices = {r.index for q in alloc.queues.values() for r in q}
    for var, loc in alloc.reg_table.items():
        assert loc.reg.index not in free_indices, (
            f"{var} is live in reg {loc.reg.index} which is also free")


@pytest.mark.parametrize("arch", [GENERIC_SSE, HASWELL],
                         ids=lambda a: a.name)
@pytest.mark.parametrize("unified", [False, True],
                         ids=["per-array", "unified"])
@given(events=EVENTS)
@settings(max_examples=60, deadline=None)
def test_no_live_aliasing_under_random_live_ranges(arch, unified, events):
    alloc = VectorAllocator(arch, ARRAY_CLASSES, unified=unified)
    total = arch.n_vector_regs
    stable = {}  # var -> reg index observed at allocation
    for kind, payload, cls in events:
        try:
            if kind == "alloc":
                loc = alloc.alloc(payload, cls)
                stable.setdefault(payload, loc.reg.index)
            elif kind == "pack":
                if any(m in alloc.reg_table for m in payload):
                    with pytest.raises(OutOfRegistersError):
                        alloc.alloc_pack(payload, cls)
                    continue
                pack = alloc.alloc_pack(payload, cls)
                for m in payload:
                    stable.setdefault(m, pack.reg.index)
            else:
                alloc.release_var(payload)
                stable.pop(payload, None)
        except OutOfRegistersError:
            # exhaustion is a legal outcome of a hostile sequence; the
            # allocator must still be in a consistent state afterwards
            _check_invariants(alloc, total)
            return
        # reg_table answers stay put for the whole live range
        for var, idx in stable.items():
            if var in alloc.reg_table:
                assert alloc.reg_table[var].reg.index == idx, (
                    f"{var} moved from reg {idx} to "
                    f"{alloc.reg_table[var].reg.index} while live")
        _check_invariants(alloc, total)


@given(events=EVENTS)
@settings(max_examples=40, deadline=None)
def test_reg_table_consistent_across_regions(events):
    """Replaying the same event prefix in a second 'region' of the same
    allocator is idempotent: alloc() on an already-live variable returns
    the recorded location instead of a fresh register."""
    alloc = VectorAllocator(HASWELL, ARRAY_CLASSES)
    live = {}
    for kind, payload, cls in events:
        try:
            if kind == "alloc":
                live[payload] = alloc.alloc(payload, cls).reg.index
            elif kind == "pack":
                if any(m in alloc.reg_table for m in payload):
                    continue
                pack = alloc.alloc_pack(payload, cls)
                for m in payload:
                    live[m] = pack.reg.index
            else:
                alloc.release_var(payload)
                live.pop(payload, None)
        except OutOfRegistersError:
            break
    # second region: re-request every live variable
    for var, idx in live.items():
        again = alloc.alloc(var, "tmp")  # class hint must not matter now
        assert again.reg.index == idx
    in_use_before = alloc.in_use()
    for var in list(live):
        alloc.alloc(var)
    assert alloc.in_use() == in_use_before  # no duplicate allocations
