"""Live-range analysis tests."""

from repro.core.liveness import Liveness
from repro.poet import cast as C
from repro.poet.parser import parse_function


def test_straight_line_ranges():
    fn = parse_function("""
    void f(double* x) {
        double a;
        double b;
        a = x[0];
        b = a * a;
        x[1] = b;
    }
    """)
    lv = Liveness(fn)
    assert lv.first_use("a") < lv.last_use("a")
    assert lv.last_use("a") < lv.last_use("b")


def test_dead_after_last_use():
    fn = parse_function("""
    void f(double* x) {
        double a;
        a = x[0];
        x[1] = a;
        x[2] = 0.0;
    }
    """)
    lv = Liveness(fn)
    last_stmt = fn.body.stmts[-1]
    assert lv.dead_after("a", lv.position_of(last_stmt))


def test_loop_extends_ranges_to_loop_end():
    fn = parse_function("""
    void f(long n, double* x) {
        long i;
        double acc;
        acc = 0.0;
        for (i = 0; i < n; i += 1) {
            acc = acc + x[i];
        }
        x[0] = acc;
    }
    """)
    lv = Liveness(fn)
    loop = fn.body.stmts[3]
    inner = loop.body.stmts[0]
    # acc used inside the loop: not dead at the inner statement
    assert not lv.dead_after("acc", lv.position_of(inner))
    # but dead after the final store
    assert lv.dead_after("acc", lv.position_of(fn.body.stmts[-1]))


def test_params_live_from_entry():
    fn = parse_function("void f(long n) { n = n + 1; }")
    lv = Liveness(fn)
    assert lv.first_use("n") == 0


def test_live_out_of_statement():
    fn = parse_function("""
    void f(double* x) {
        double a;
        a = x[0];
        x[1] = a;
    }
    """)
    lv = Liveness(fn)
    first = fn.body.stmts[1]  # a = x[0]
    assert "a" in lv.live_out(first)
    assert "a" not in lv.live_out(fn.body.stmts[-1])


def test_tagged_region_mentions_counted():
    fn = parse_function("""
    void f(double* x) {
        double t;
        t = x[0];
        x[1] = t;
    }
    """)
    region = C.TaggedRegion(template="mmSTORE", stmts=fn.body.stmts[1:])
    fn.body.stmts = [fn.body.stmts[0], region]
    lv = Liveness(fn)
    assert lv.last_use("t") == lv.position_of(region)


def test_unknown_var_defaults():
    fn = parse_function("void f() { }")
    lv = Liveness(fn)
    assert lv.last_use("ghost") == -1
    assert lv.dead_after("ghost", 100)
