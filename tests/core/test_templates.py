"""Base-template match tests (paper Fig. 3 shapes)."""

from repro.core.templates import match_mm_comp, match_mm_store, match_mv_comp
from repro.poet.parser import parse_function


def stmts_of(body_src: str):
    fn = parse_function("void f() { " + body_src + " }")
    return fn.body.stmts


MM_COMP = """
tmp0 = ptr_A[0];
tmp1 = ptr_B[0];
tmp2 = tmp0 * tmp1;
res0 = res0 + tmp2;
"""

MM_STORE = """
tmp0 = ptr_C[1];
res0 = res0 + tmp0;
ptr_C[1] = res0;
"""

MV_COMP = """
tmp0 = ptr_A[0];
tmp1 = ptr_B[0];
tmp0 = tmp0 * scal;
tmp1 = tmp1 + tmp0;
ptr_B[0] = tmp1;
"""


def test_mm_comp_matches():
    m = match_mm_comp(stmts_of(MM_COMP), 0)
    assert m is not None
    assert (m.a_ptr, m.a_off) == ("ptr_A", 0)
    assert (m.b_ptr, m.b_off) == ("ptr_B", 0)
    assert m.res == "res0"
    assert m.tmps == ("tmp0", "tmp1", "tmp2")


def test_mm_comp_rejects_reused_product_temp():
    # product written into one of the load temps is the mvCOMP shape
    src = """
    tmp0 = ptr_A[0];
    tmp1 = ptr_B[0];
    tmp0 = tmp0 * tmp1;
    res0 = res0 + tmp0;
    """
    assert match_mm_comp(stmts_of(src), 0) is None


def test_mm_comp_rejects_wrong_accumulate():
    src = """
    tmp0 = ptr_A[0];
    tmp1 = ptr_B[0];
    tmp2 = tmp0 * tmp1;
    res0 = other + tmp2;
    """
    assert match_mm_comp(stmts_of(src), 0) is None


def test_mm_comp_symbolic_index_allowed():
    src = MM_COMP.replace("ptr_A[0]", "A[i * M + 1]")
    m = match_mm_comp(stmts_of(src), 0)
    assert m is not None and m.a_off is None and m.a_idx is not None


def test_mm_comp_short_window():
    assert match_mm_comp(stmts_of("x = 1.0;"), 0) is None


def test_mm_store_matches():
    m = match_mm_store(stmts_of(MM_STORE), 0)
    assert m is not None
    assert (m.c_ptr, m.c_off, m.res, m.tmp) == ("ptr_C", 1, "res0", "tmp0")


def test_mm_store_requires_same_index_on_store():
    src = """
    tmp0 = ptr_C[1];
    res0 = res0 + tmp0;
    ptr_C[2] = res0;
    """
    assert match_mm_store(stmts_of(src), 0) is None


def test_mm_store_rejects_degenerate_same_names():
    src = """
    res0 = ptr_C[1];
    res0 = res0 + res0;
    ptr_C[1] = res0;
    """
    assert match_mm_store(stmts_of(src), 0) is None


def test_mv_comp_matches():
    m = match_mv_comp(stmts_of(MV_COMP), 0)
    assert m is not None
    assert (m.a_ptr, m.a_off) == ("ptr_A", 0)
    assert (m.b_ptr, m.b_off) == ("ptr_B", 0)
    assert m.scal == "scal"
    assert m.tmps == ("tmp0", "tmp1")


def test_mv_comp_store_must_round_trip_same_element():
    src = MV_COMP.replace("ptr_B[0] = tmp1;", "ptr_B[1] = tmp1;")
    assert match_mv_comp(stmts_of(src), 0) is None


def test_mv_comp_scal_must_differ_from_temps():
    src = """
    tmp0 = ptr_A[0];
    tmp1 = ptr_B[0];
    tmp0 = tmp0 * tmp1;
    tmp1 = tmp1 + tmp0;
    ptr_B[0] = tmp1;
    """
    assert match_mv_comp(stmts_of(src), 0) is None


def test_match_at_nonzero_position():
    src = "x = 1.0;" + MM_COMP
    stmts = stmts_of(src)
    assert match_mm_comp(stmts, 0) is None
    assert match_mm_comp(stmts, 1) is not None
