	.section .note.GNU-stack,"",@progbits
	.text
	.globl golden_gemm_u
	.type golden_gemm_u, @function
	.p2align 4
golden_gemm_u:
	push	%r12
	push	%r13
	push	%r14
	push	%r15
	push	%rbp
	push	%rbx
	sub	$96, %rsp
	mov	%rdi, (%rsp)	# arg Mc
	mov	%rsi, 8(%rsp)	# arg Nc
	mov	%rdx, 16(%rsp)	# arg Kc
	mov	%rcx, 24(%rsp)	# arg A
	mov	%r8, 32(%rsp)	# arg B
	mov	%r9, 40(%rsp)	# arg C
	mov	152(%rsp), %rax	# stack arg LDC
	mov	%rax, 48(%rsp)
	mov	(%rsp), %rbx	# home Mc
	mov	16(%rsp), %r10	# home Kc
	mov	24(%rsp), %r14	# home A
	mov	32(%rsp), %r13	# home B
	mov	48(%rsp), %r15	# home LDC
	mov	$0, %r12
	jmp	.LBL0
.LBL1:
	mov	%r12, %rax
	imul	%r15, %rax
	mov	40(%rsp), %r8
	lea	(%r8,%rax,8), %r8
	mov	%r12, %rax
	imul	%r15, %rax
	mov	40(%rsp), %r9
	add	%r15, %rax
	lea	(%r9,%rax,8), %r9
	mov	$0, %rbp
	jmp	.LBL2
.LBL3:
	mov	%r14, %rdi
	mov	%rbp, %rax
	lea	(%rdi,%rax,8), %rdi
	mov	%r12, %rax
	imul	%r10, %rax
	mov	%r13, %rsi
	lea	(%rsi,%rax,8), %rsi
	mov	%r12, %rax
	imul	%r10, %rax
	mov	%r13, %rdx
	add	%r10, %rax
	xorpd	%xmm8, %xmm8
	xorpd	%xmm9, %xmm9
	xorpd	%xmm10, %xmm10
	xorpd	%xmm11, %xmm11
	lea	(%rdx,%rax,8), %rdx
	mov	$0, %rcx
	jmp	.LBL4
.LBL5:
	# --- mmUnrolledCOMP ---
	movupd	(%rdi), %xmm0	# Vld ptr_A0[0..1]
	movupd	16(%rdi), %xmm1	# Vld ptr_A0[2..3]
	movddup	(%rsi), %xmm4	# Vdup ptr_B0[0]
	movapd	%xmm0, %xmm12	# acc(res_u0_u0..) += A*ptr_B0[0]
	movapd	%xmm1, %xmm13	# acc(res_u0_u2..) += A*ptr_B0[0]
	movddup	(%rdx), %xmm5	# Vdup ptr_B1[0]
	movapd	%xmm0, %xmm14	# acc(res_u1_u0..) += A*ptr_B1[0]
	movapd	%xmm1, %xmm15	# acc(res_u1_u2..) += A*ptr_B1[0]
	mulpd	%xmm4, %xmm12
	mulpd	%xmm4, %xmm13
	mulpd	%xmm5, %xmm14
	mulpd	%xmm5, %xmm15
	addpd	%xmm12, %xmm8
	addpd	%xmm13, %xmm9
	addpd	%xmm14, %xmm10
	addpd	%xmm15, %xmm11
	add	$8, %rsi	# ptr_B0 += 1
	mov	%rbx, %rax
	add	$8, %rdx	# ptr_B1 += 1
	lea	(%rdi,%rax,8), %rdi	# ptr_A0 += ...
	add	$1, %rcx
.LBL4:
	cmp	%r10, %rcx
	jl	.LBL5
	# --- mmUnrolledSTORE ---
	movupd	(%r8), %xmm12	# Vld ptr_C0[0..1]
	addpd	%xmm8, %xmm12
	movupd	%xmm12, (%r8)	# Vst ptr_C0[0..1]
	movupd	16(%r8), %xmm13	# Vld ptr_C0[2..3]
	addpd	%xmm9, %xmm13
	movupd	%xmm13, 16(%r8)	# Vst ptr_C0[2..3]
	# --- mmUnrolledSTORE ---
	movupd	(%r9), %xmm14	# Vld ptr_C1[0..1]
	addpd	%xmm10, %xmm14
	movupd	%xmm14, (%r9)	# Vst ptr_C1[0..1]
	movupd	16(%r9), %xmm15	# Vld ptr_C1[2..3]
	addpd	%xmm11, %xmm15
	movupd	%xmm15, 16(%r9)	# Vst ptr_C1[2..3]
	add	$32, %r8	# ptr_C0 += 4
	add	$32, %r9	# ptr_C1 += 4
	add	$4, %rbp
.LBL2:
	cmp	%rbx, %rbp
	jl	.LBL3
	add	$2, %r12
.LBL0:
	mov	8(%rsp), %rax
	cmp	%rax, %r12
	jl	.LBL1
	add	$96, %rsp
	pop	%rbx
	pop	%rbp
	pop	%r15
	pop	%r14
	pop	%r13
	pop	%r12
	ret
	.size golden_gemm_u, .-golden_gemm_u
