	.section .note.GNU-stack,"",@progbits
	.text
	.globl golden_gemv
	.type golden_gemv, @function
	.p2align 4
golden_gemv:
	push	%r12
	push	%r13
	push	%rbp
	push	%rbx
	sub	$96, %rsp
	mov	%rdi, (%rsp)	# arg M
	mov	%rsi, 8(%rsp)	# arg N
	mov	%rdx, 16(%rsp)	# arg A
	mov	%rcx, 24(%rsp)	# arg LDA
	mov	%r8, 32(%rsp)	# arg X
	mov	%r9, 40(%rsp)	# arg Y
	mov	32(%rsp), %r13	# home X
	mov	(%rsp), %rcx	# home M
	mov	8(%rsp), %r10	# home N
	mov	16(%rsp), %rbx	# home A
	mov	24(%rsp), %rbp	# home LDA
	mov	40(%rsp), %r12	# home Y
	mov	%r13, %r9
	mov	$0, %r8
	jmp	.LBL0
.LBL1:
	mov	%r8, %rax
	imul	%rbp, %rax
	movsd	(%r9), %xmm4	# scal = ptr_X0[0]
	mov	%rbx, %rdx
	mov	%r12, %rdi
	lea	(%rdx,%rax,8), %rdx
	mov	$0, %rsi
	jmp	.LBL2
.LBL3:
	# --- mvCOMP ---
	movsd	(%rdx), %xmm0	# tmp0 = ptr_A0[0]
	mulsd	%xmm4, %xmm0
	movsd	(%rdi), %xmm8	# tmp1 = ptr_Y0[0]
	addsd	%xmm0, %xmm8
	movsd	%xmm8, (%rdi)	# ptr_Y0[0] = tmp1
	add	$8, %rdi	# ptr_Y0 += 1
	add	$8, %rdx	# ptr_A0 += 1
	add	$1, %rsi
.LBL2:
	cmp	%rcx, %rsi
	jl	.LBL3
	add	$8, %r9	# ptr_X0 += 1
	add	$1, %r8
.LBL0:
	cmp	%r10, %r8
	jl	.LBL1
	add	$96, %rsp
	pop	%rbx
	pop	%rbp
	pop	%r13
	pop	%r12
	ret
	.size golden_gemv, .-golden_gemv
