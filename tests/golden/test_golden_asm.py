"""Golden-assembly snapshot tests.

Every template of the paper (mmCOMP, mmSTORE, mvCOMP plus their unrolled
variants) is generated under each of the four ISA mappings (SSE, AVX,
FMA3, FMA4) and diffed against a committed snapshot, so any change to
instruction selection, register allocation, or scheduling shows up as a
reviewable assembly diff instead of a silent behavior change.

Snapshots live beside this file as ``<scenario>__<arch>.s``.  After an
*intentional* generator change, refresh them with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

and commit the diff.  Local label names are normalized before comparison
(they encode allocation order, not semantics); everything else — mnemonics,
operands, register choices, instruction order — must match exactly.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.core.framework import Augem
from repro.transforms.pipeline import OptimizationConfig

from tests.conftest import ALL_ARCH_SPECS

GOLDEN_DIR = Path(__file__).parent

#: scenario -> (kernel family, config, exported symbol, templates it covers)
SCENARIOS = {
    "gemm_baseline": (
        "gemm", OptimizationConfig(), "golden_gemm",
        {"mmCOMP", "mmSTORE"}),
    "gemm_unrolled": (
        "gemm", OptimizationConfig(unroll_jam=(("j", 2), ("i", 4))),
        "golden_gemm_u",
        {"mmUnrolledCOMP", "mmUnrolledSTORE"}),
    "gemv_baseline": (
        "gemv", OptimizationConfig(), "golden_gemv", {"mvCOMP"}),
    "axpy_unrolled": (
        "axpy", OptimizationConfig(unroll=(("i", 4),)), "golden_axpy_u",
        {"mvUnrolledCOMP"}),
}

_LABEL = re.compile(r"\.L[A-Za-z0-9_$.]*")


def normalize_asm(text: str) -> str:
    """Rename local labels to appearance order; strip trailing blanks.

    Label *names* encode generation-order counters; the control-flow
    structure they induce is preserved because every occurrence of one
    name maps to the same placeholder.
    """
    mapping: dict = {}

    def rename(match: re.Match) -> str:
        name = match.group(0)
        if name not in mapping:
            mapping[name] = f".LBL{len(mapping)}"
        return mapping[name]

    lines = [_LABEL.sub(rename, line).rstrip()
             for line in text.splitlines()]
    return "\n".join(lines).rstrip() + "\n"


def _snapshot_path(scenario: str, arch_name: str) -> Path:
    return GOLDEN_DIR / f"{scenario}__{arch_name}.s"


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("arch", ALL_ARCH_SPECS, ids=lambda a: a.name)
def test_golden_asm(scenario, arch, request):
    kernel, config, symbol, expected_templates = SCENARIOS[scenario]
    gk = Augem(arch=arch).generate_named(kernel, config=config, name=symbol)

    # the scenario must actually exercise the templates it claims to cover
    missing = expected_templates - set(gk.template_counts)
    assert not missing, (
        f"{scenario} no longer instantiates template(s) {sorted(missing)}; "
        f"got {gk.template_counts}")

    got = normalize_asm(gk.asm_text)
    path = _snapshot_path(scenario, arch.name)
    if request.config.getoption("--update-golden"):
        path.write_text(got)
        return
    assert path.exists(), (
        f"missing golden snapshot {path.name}; run pytest with "
        f"--update-golden to create it")
    want = path.read_text()
    assert got == want, (
        f"generated assembly for {scenario} on {arch.name} deviates from "
        f"{path.name}; if the change is intentional, rerun with "
        f"--update-golden and review the snapshot diff")


def test_normalize_asm_is_structure_preserving():
    a = ".L_top:\n jmp .L_top\n jne .L_done\n.L_done:\n"
    b = ".L_x:\n jmp .L_x\n jne .L_y\n.L_y:\n"
    c = ".L_x:\n jmp .L_y\n jne .L_y\n.L_y:\n"  # different flow
    assert normalize_asm(a) == normalize_asm(b)
    assert normalize_asm(a) != normalize_asm(c)


def test_generation_is_deterministic():
    kernel, config, symbol, _ = SCENARIOS["gemm_baseline"]
    first = Augem(arch=ALL_ARCH_SPECS[0]).generate_named(
        kernel, config=config, name=symbol).asm_text
    second = Augem(arch=ALL_ARCH_SPECS[0]).generate_named(
        kernel, config=config, name=symbol).asm_text
    assert first == second
