	.section .note.GNU-stack,"",@progbits
	.text
	.globl golden_gemm_u
	.type golden_gemm_u, @function
	.p2align 4
golden_gemm_u:
	push	%r12
	push	%r13
	push	%r14
	push	%r15
	push	%rbp
	push	%rbx
	sub	$96, %rsp
	mov	%rdi, (%rsp)	# arg Mc
	mov	%rsi, 8(%rsp)	# arg Nc
	mov	%rdx, 16(%rsp)	# arg Kc
	mov	%rcx, 24(%rsp)	# arg A
	mov	%r8, 32(%rsp)	# arg B
	mov	%r9, 40(%rsp)	# arg C
	mov	152(%rsp), %rax	# stack arg LDC
	mov	%rax, 48(%rsp)
	mov	(%rsp), %rbx	# home Mc
	mov	16(%rsp), %r10	# home Kc
	mov	24(%rsp), %r14	# home A
	mov	32(%rsp), %r13	# home B
	mov	48(%rsp), %r15	# home LDC
	mov	$0, %r12
	jmp	.LBL0
.LBL1:
	mov	%r12, %rax
	imul	%r15, %rax
	mov	40(%rsp), %r8
	lea	(%r8,%rax,8), %r8
	mov	%r12, %rax
	imul	%r15, %rax
	mov	40(%rsp), %r9
	add	%r15, %rax
	lea	(%r9,%rax,8), %r9
	mov	$0, %rbp
	jmp	.LBL2
.LBL3:
	mov	%r14, %rdi
	mov	%rbp, %rax
	lea	(%rdi,%rax,8), %rdi
	mov	%r12, %rax
	imul	%r10, %rax
	mov	%r13, %rsi
	lea	(%rsi,%rax,8), %rsi
	mov	%r12, %rax
	imul	%r10, %rax
	mov	%r13, %rdx
	add	%r10, %rax
	vxorpd	%ymm8, %ymm8, %ymm8
	vxorpd	%ymm9, %ymm9, %ymm9
	lea	(%rdx,%rax,8), %rdx
	mov	$0, %rcx
	jmp	.LBL4
.LBL5:
	# --- mmUnrolledCOMP ---
	vmovupd	(%rdi), %ymm0	# Vld ptr_A0[0..3]
	vbroadcastsd	(%rsi), %ymm4	# Vdup ptr_B0[0]
	vbroadcastsd	(%rdx), %ymm5	# Vdup ptr_B1[0]
	vmulpd	%ymm0, %ymm4, %ymm12	# acc(res_u0_u0..) += A*ptr_B0[0]
	vmulpd	%ymm0, %ymm5, %ymm13	# acc(res_u1_u0..) += A*ptr_B1[0]
	vaddpd	%ymm12, %ymm8, %ymm8
	vaddpd	%ymm13, %ymm9, %ymm9
	add	$8, %rsi	# ptr_B0 += 1
	mov	%rbx, %rax
	add	$8, %rdx	# ptr_B1 += 1
	lea	(%rdi,%rax,8), %rdi	# ptr_A0 += ...
	add	$1, %rcx
.LBL4:
	cmp	%r10, %rcx
	jl	.LBL5
	# --- mmUnrolledSTORE ---
	vmovupd	(%r8), %ymm10	# Vld ptr_C0[0..3]
	vaddpd	%ymm8, %ymm10, %ymm10
	vmovupd	%ymm10, (%r8)	# Vst ptr_C0[0..3]
	# --- mmUnrolledSTORE ---
	vmovupd	(%r9), %ymm11	# Vld ptr_C1[0..3]
	vaddpd	%ymm9, %ymm11, %ymm11
	vmovupd	%ymm11, (%r9)	# Vst ptr_C1[0..3]
	add	$32, %r8	# ptr_C0 += 4
	add	$32, %r9	# ptr_C1 += 4
	add	$4, %rbp
.LBL2:
	cmp	%rbx, %rbp
	jl	.LBL3
	add	$2, %r12
.LBL0:
	mov	8(%rsp), %rax
	cmp	%rax, %r12
	jl	.LBL1
	add	$96, %rsp
	pop	%rbx
	pop	%rbp
	pop	%r15
	pop	%r14
	pop	%r13
	vzeroupper
	pop	%r12
	ret
	.size golden_gemm_u, .-golden_gemm_u
