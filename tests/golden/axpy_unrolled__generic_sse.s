	.section .note.GNU-stack,"",@progbits
	.text
	.globl golden_axpy_u
	.type golden_axpy_u, @function
	.p2align 4
golden_axpy_u:
	sub	$80, %rsp
	mov	%rdi, (%rsp)	# arg N
	movsd	%xmm0, 8(%rsp)	# arg alpha
	mov	%rsi, 16(%rsp)	# arg X
	mov	%rdx, 24(%rsp)	# arg Y
	mov	16(%rsp), %r8	# home X
	mov	24(%rsp), %r9	# home Y
	mov	(%rsp), %rcx	# home N
	mov	%r9, %rdi
	mov	%r8, %rsi
	mov	$0, %rdx
	jmp	.LBL0
.LBL1:
	# --- mvUnrolledCOMP ---
	movupd	(%rsi), %xmm0	# Vld ptr_X0[0..1]
	movddup	8(%rsp), %xmm10	# broadcast param alpha
	movapd	%xmm0, %xmm11	# B += A*alpha
	mulpd	%xmm10, %xmm11
	movupd	(%rdi), %xmm5	# Vld ptr_Y0[0..1]
	addpd	%xmm11, %xmm5
	movupd	%xmm5, (%rdi)	# Vst ptr_Y0[0..1]
	movupd	16(%rsi), %xmm1	# Vld ptr_X0[2..3]
	movapd	%xmm1, %xmm12	# B += A*alpha
	mulpd	%xmm10, %xmm12
	movupd	16(%rdi), %xmm6	# Vld ptr_Y0[2..3]
	addpd	%xmm12, %xmm6
	movupd	%xmm6, 16(%rdi)	# Vst ptr_Y0[2..3]
	add	$32, %rdi	# ptr_Y0 += 4
	add	$32, %rsi	# ptr_X0 += 4
	add	$4, %rdx
.LBL0:
	cmp	%rcx, %rdx
	jl	.LBL1
	add	$80, %rsp
	ret
	.size golden_axpy_u, .-golden_axpy_u
