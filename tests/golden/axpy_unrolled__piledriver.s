	.section .note.GNU-stack,"",@progbits
	.text
	.globl golden_axpy_u
	.type golden_axpy_u, @function
	.p2align 4
golden_axpy_u:
	sub	$80, %rsp
	mov	%rdi, (%rsp)	# arg N
	vmovsd	%xmm0, 8(%rsp)	# arg alpha
	mov	%rsi, 16(%rsp)	# arg X
	mov	%rdx, 24(%rsp)	# arg Y
	mov	16(%rsp), %r8	# home X
	mov	24(%rsp), %r9	# home Y
	mov	(%rsp), %rcx	# home N
	mov	%r9, %rdi
	mov	%r8, %rsi
	mov	$0, %rdx
	jmp	.LBL0
.LBL1:
	# --- mvUnrolledCOMP ---
	vbroadcastsd	8(%rsp), %ymm10	# broadcast param alpha
	vmovupd	(%rsi), %ymm0	# Vld ptr_X0[0..3]
	vmovupd	(%rdi), %ymm5	# Vld ptr_Y0[0..3]
	vfmaddpd	%ymm5, %ymm10, %ymm0, %ymm5	# B += A*alpha
	vmovupd	%ymm5, (%rdi)	# Vst ptr_Y0[0..3]
	add	$32, %rdi	# ptr_Y0 += 4
	add	$32, %rsi	# ptr_X0 += 4
	add	$4, %rdx
.LBL0:
	cmp	%rcx, %rdx
	jl	.LBL1
	vzeroupper
	add	$80, %rsp
	ret
	.size golden_axpy_u, .-golden_axpy_u
