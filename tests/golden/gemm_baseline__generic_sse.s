	.section .note.GNU-stack,"",@progbits
	.text
	.globl golden_gemm
	.type golden_gemm, @function
	.p2align 4
golden_gemm:
	push	%r12
	push	%r13
	push	%r14
	push	%r15
	push	%rbp
	push	%rbx
	sub	$96, %rsp
	mov	%rdi, (%rsp)	# arg Mc
	mov	%rsi, 8(%rsp)	# arg Nc
	mov	%rdx, 16(%rsp)	# arg Kc
	mov	%rcx, 24(%rsp)	# arg A
	mov	%r8, 32(%rsp)	# arg B
	mov	%r9, 40(%rsp)	# arg C
	mov	152(%rsp), %rax	# stack arg LDC
	mov	%rax, 48(%rsp)
	mov	(%rsp), %rcx	# home Mc
	mov	8(%rsp), %r13	# home Nc
	mov	16(%rsp), %r8	# home Kc
	mov	24(%rsp), %rbp	# home A
	mov	32(%rsp), %r12	# home B
	mov	40(%rsp), %r14	# home C
	mov	48(%rsp), %r15	# home LDC
	mov	$0, %rbx
	jmp	.LBL0
.LBL1:
	mov	%rbx, %rax
	imul	%r15, %rax
	mov	%r14, %r10
	lea	(%r10,%rax,8), %r10
	mov	$0, %r9
	jmp	.LBL2
.LBL3:
	mov	%rbp, %rsi
	mov	%r9, %rax
	lea	(%rsi,%rax,8), %rsi
	mov	%rbx, %rax
	imul	%r8, %rax
	mov	%r12, %rdx
	xorpd	%xmm12, %xmm12
	lea	(%rdx,%rax,8), %rdx
	mov	$0, %rdi
	jmp	.LBL4
.LBL5:
	# --- mmCOMP ---
	movsd	(%rsi), %xmm0	# tmp0 = ptr_A0[0]
	movsd	(%rdx), %xmm4	# tmp1 = ptr_B0[0]
	movapd	%xmm0, %xmm13	# res += tmp0*tmp1
	mulsd	%xmm4, %xmm13
	addsd	%xmm13, %xmm12
	mov	%rcx, %rax
	add	$8, %rdx	# ptr_B0 += 1
	lea	(%rsi,%rax,8), %rsi	# ptr_A0 += ...
	add	$1, %rdi
.LBL4:
	cmp	%r8, %rdi
	jl	.LBL5
	# --- mmSTORE ---
	movsd	(%r10), %xmm8	# tmp3 = ptr_C0[0]
	addsd	%xmm8, %xmm12
	movsd	%xmm12, (%r10)	# ptr_C0[0] = res
	add	$8, %r10	# ptr_C0 += 1
	add	$1, %r9
.LBL2:
	cmp	%rcx, %r9
	jl	.LBL3
	add	$1, %rbx
.LBL0:
	cmp	%r13, %rbx
	jl	.LBL1
	add	$96, %rsp
	pop	%rbx
	pop	%rbp
	pop	%r15
	pop	%r14
	pop	%r13
	pop	%r12
	ret
	.size golden_gemm, .-golden_gemm
