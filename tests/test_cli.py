"""Top-level CLI tests (python -m repro ...)."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.__main__ import main


def test_list_archs(capsys):
    assert main(["list-archs"]) == 0
    out = capsys.readouterr().out
    for name in ("generic_sse", "haswell", "piledriver", "sandybridge"):
        assert name in out
    assert "<- host" in out


def test_generate_to_stdout(capsys):
    assert main(["generate", "axpy", "--arch", "generic_sse"]) == 0
    out = capsys.readouterr().out
    assert ".globl daxpy_kernel" in out
    assert "movddup" in out or "movupd" in out


def test_generate_to_file_and_validate(tmp_path):
    path = tmp_path / "k.S"
    assert main(["generate", "gemm", "--arch", "piledriver",
                 "-o", str(path)]) == 0
    assert "vfmaddpd" in path.read_text()
    assert main(["validate", str(path), "--kernel", "gemm"]) == 0


def test_generate_custom_config(tmp_path):
    path = tmp_path / "dot.S"
    assert main(["generate", "dot", "--unroll", "i=8", "--split", "res=8",
                 "--arch", "generic_sse", "-o", str(path)]) == 0
    assert main(["validate", str(path), "--kernel", "dot"]) == 0


def test_generate_unroll_jam_args(tmp_path):
    path = tmp_path / "g.S"
    assert main(["generate", "gemm", "--unroll-jam", "j=2",
                 "--unroll-jam", "i=4", "--arch", "generic_sse",
                 "-o", str(path)]) == 0
    assert main(["validate", str(path), "--kernel", "gemm",
                 "--m", "8"]) == 0


def test_validate_detects_wrong_kernel(tmp_path, capsys):
    path = tmp_path / "a.S"
    main(["generate", "axpy", "--arch", "generic_sse", "-o", str(path)])
    # validating an AXPY kernel as DOT must fail (different semantics)
    rc = main(["validate", str(path), "--kernel", "dot"])
    assert rc == 1


def test_bad_split_syntax():
    with pytest.raises(SystemExit):
        main(["generate", "dot", "--split", "res:8"])


def test_verbose_prints_low_level_c(tmp_path, capsys):
    main(["generate", "axpy", "--arch", "generic_sse", "-v",
          "-o", str(tmp_path / "x.S")])
    err = capsys.readouterr().err
    assert "low-level C" in err


def test_cache_stats_exits_zero_when_disabled(capsys, monkeypatch):
    from repro.backend.cache import reset_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", "off")
    reset_cache()
    try:
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "(disabled)" in out
        assert main(["cache", "clear"]) == 0
    finally:
        reset_cache()


def test_cache_stats_and_clear_on_real_store(capsys, tmp_path, monkeypatch):
    from repro.backend.cache import get_cache, reset_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    reset_cache()
    try:
        get_cache().store_tuning("a" * 24, {"gflops": 1.0})
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "tuning records:   1" in out
        assert main(["cache", "clear"]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "tuning records:   0" in capsys.readouterr().out
    finally:
        reset_cache()


def test_cache_stats_smoke_real_invocation():
    """CI smoke check: the real command exits 0 with the cache disabled."""
    env = dict(os.environ, REPRO_CACHE_DIR="off",
               PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
    proc = subprocess.run([sys.executable, "-m", "repro", "cache", "stats"],
                          capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    assert "cache root" in proc.stdout


def test_cache_stats_reports_budget_and_disk_health(capsys, tmp_path,
                                                    monkeypatch):
    from repro.backend import fsio
    from repro.backend.cache import reset_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1m")
    reset_cache()
    fsio.reset_disk_health()
    try:
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "bytes on disk" in out
        assert "size budget:      1048576 bytes (headroom 1048576)" in out
        assert "disk health:      ok" in out
        assert "io errors=0" in out
    finally:
        reset_cache()
        fsio.reset_disk_health()


def test_cache_scrub_and_gc_on_disabled_store(capsys, monkeypatch):
    from repro.backend.cache import reset_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", "off")
    reset_cache()
    try:
        assert main(["cache", "scrub"]) == 0
        assert "store is clean" in capsys.readouterr().out
        assert main(["cache", "gc", "--max-bytes", "1m"]) == 0
        assert "evicted 0" in capsys.readouterr().out
        # gc with no budget anywhere is a usage error, not a guess
        assert main(["cache", "gc"]) == 2
    finally:
        reset_cache()


def test_dispatch_show_lists_chain(capsys):
    from repro.blas.dispatch import reset_dispatch_state

    reset_dispatch_state()
    assert main(["dispatch", "show", "--arch", "generic_sse"]) == 0
    out = capsys.readouterr().out
    assert "generic_sse" in out and "reference" in out
    assert "unprobed" in out  # 'show' must not execute probes


def test_serve_status_reports_down_without_daemon(capsys, tmp_path,
                                                  monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_DIR", str(tmp_path / "rt"))
    assert main(["serve", "status"]) == 2
    out = capsys.readouterr().out
    assert "unreachable" in out
    assert str(tmp_path / "rt") in out


def test_serve_stop_without_daemon(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_DIR", str(tmp_path / "rt"))
    assert main(["serve", "stop"]) == 2
    assert "not running" in capsys.readouterr().out


def test_serve_smoke_real_invocation(tmp_path):
    """CI smoke check: `serve status` against a dead runtime dir exits 2
    without tracebacks; the full lifecycle lives in tests/serve."""
    env = dict(os.environ, REPRO_SERVE_DIR=str(tmp_path / "rt"),
               REPRO_CACHE_DIR="off",
               PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
    proc = subprocess.run([sys.executable, "-m", "repro", "serve", "status"],
                          capture_output=True, text=True, env=env)
    assert proc.returncode == 2, proc.stderr
    assert "unreachable" in proc.stdout
    assert "Traceback" not in proc.stderr


def test_dispatch_probe_reports_serving_tier(capsys):
    from repro.blas.dispatch import reset_dispatch_state

    reset_dispatch_state()
    assert main(["dispatch", "probe", "--arch", "generic_sse"]) == 0
    out = capsys.readouterr().out
    assert "serving tier:" in out
    # either the native tier verified or it was demoted to reference —
    # both are valid outcomes (a toolchain-free host demotes)
    assert "VERIFIED" in out or "DEMOTED" in out
    reset_dispatch_state()
