"""Optimized C Kernel Generator pipeline tests."""

import numpy as np
import pytest

from repro.blas.kernels import DOT_SIMPLE_C, GEMM_SIMPLE_C
from repro.poet import cast as C
from repro.poet.parser import parse_function
from repro.poet.printer import to_c
from repro.transforms.pipeline import (
    OptimizationConfig,
    build_pipeline,
    optimize_c_kernel,
)

from tests.conftest import needs_cc
from tests.transforms.helpers import run_c_function


def test_build_pipeline_order():
    cfg = OptimizationConfig(
        unroll_jam=(("j", 2),),
        unroll=(("l", 2),),
        split=(("i", "res", 4),),
        prefetch_distance=64,
    )
    names = [t.name for t in build_pipeline(cfg)]
    assert names == [
        "unroll_jam", "unroll", "split_accumulator",
        "strength_reduction", "scalar_replacement", "hoist_decls",
        "prefetch",
    ]


def test_no_prefetch_when_distance_none():
    names = [t.name for t in build_pipeline(OptimizationConfig())]
    assert "prefetch" not in names


def test_optimize_does_not_mutate_input_function():
    fn = parse_function(GEMM_SIMPLE_C)
    before = to_c(fn)
    optimize_c_kernel(fn, OptimizationConfig(unroll_jam=(("j", 2),)))
    assert to_c(fn) == before


def test_optimize_accepts_source_text():
    out = optimize_c_kernel(GEMM_SIMPLE_C, OptimizationConfig())
    assert out.name == "dgemm_kernel"


def test_config_describe_and_with():
    cfg = OptimizationConfig(unroll_jam=(("j", 4),))
    assert "uj(j)=4" in cfg.describe()
    cfg2 = cfg.with_(prefetch_distance=32)
    assert cfg2.prefetch_distance == 32 and cfg.prefetch_distance is None
    assert OptimizationConfig().describe() == "baseline"


def test_full_gemm_pipeline_matches_paper_fig13_shape():
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 2)),
                             prefetch_distance={"A": 64, "B": 64})
    fn = optimize_c_kernel(GEMM_SIMPLE_C, cfg)
    text = to_c(fn)
    # the landmark artifacts of paper Fig. 13:
    assert "ptr_A" in text and "ptr_B" in text and "ptr_C" in text
    assert "prefetch_t0" in text
    assert text.count("tmp") > 10  # scalar replacement temps
    loops = [n for n in fn.body.walk() if isinstance(n, C.For)]
    assert len(loops) == 3


@needs_cc
def test_full_pipeline_preserves_gemm_semantics():
    rng = np.random.default_rng(8)
    mc, nc, kc, ldc = 8, 4, 16, 8
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = np.zeros(ldc * nc)
    cfg = OptimizationConfig(unroll_jam=(("j", 2), ("i", 4)),
                             unroll=(("l", 2),),
                             prefetch_distance=16)
    fn = optimize_c_kernel(GEMM_SIMPLE_C, cfg)
    run_c_function(fn, [mc, nc, kc, a, b, c, ldc])
    am = a.reshape(kc, mc)
    bm = b.reshape(nc, kc)
    for j in range(nc):
        for i in range(mc):
            assert np.isclose(c[j * ldc + i], am[:, i] @ bm[j, :])


@needs_cc
def test_full_pipeline_preserves_dot_semantics():
    rng = np.random.default_rng(9)
    n = 32
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    cfg = OptimizationConfig(unroll=(("i", 8),), split=(("i", "res", 8),))
    fn = optimize_c_kernel(DOT_SIMPLE_C, cfg)
    assert np.isclose(run_c_function(fn, [n, x, y]), x @ y)
