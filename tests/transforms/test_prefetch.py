"""Prefetch insertion tests."""

import pytest

from repro.blas.kernels import GEMM_SIMPLE_C
from repro.poet import cast as C
from repro.poet.parser import parse_function
from repro.poet.printer import to_c
from repro.transforms.prefetch import InsertPrefetch
from repro.transforms.strength_reduction import StrengthReduce
from repro.poet.errors import TransformError


def _reduced_gemm():
    return StrengthReduce().apply(parse_function(GEMM_SIMPLE_C))


def _prefetch_calls(fn):
    return [n for n in fn.body.walk()
            if isinstance(n, C.Call) and n.func.startswith("prefetch")]


def test_prefetch_inserted_for_advanced_pointers():
    fn = InsertPrefetch(distance=64).apply(_reduced_gemm())
    calls = _prefetch_calls(fn)
    assert calls, "no prefetches inserted"


def test_prefetch_at_loop_top():
    fn = InsertPrefetch(distance=64).apply(_reduced_gemm())
    inner = [n for n in fn.body.walk() if isinstance(n, C.For)][-1]
    first = inner.body.stmts[0]
    assert isinstance(first, C.ExprStmt) and isinstance(first.expr, C.Call)


def test_prefetch_distance_dict_by_array():
    fn = InsertPrefetch(distance={"A": 128}).apply(_reduced_gemm())
    calls = _prefetch_calls(fn)
    # only the A pointer gets one; distance appears in the address expr
    assert len(calls) == 1
    assert "128" in to_c(calls[0])


def test_prefetch_level_selects_mnemonic():
    fn = InsertPrefetch(distance=8, level="nta").apply(_reduced_gemm())
    assert all(c.func == "prefetch_nta" for c in _prefetch_calls(fn))


def test_prefetch_bad_level_raises():
    with pytest.raises(TransformError):
        InsertPrefetch(level=7)


def test_prefetch_loop_filter():
    fn = InsertPrefetch(loops=["i"], distance=16).apply(_reduced_gemm())
    inner = [n for n in fn.body.walk() if isinstance(n, C.For)][-1]
    assert not any(isinstance(s, C.ExprStmt) for s in inner.body.stmts)


def test_no_pointers_no_prefetch():
    src = "void f(long n) { long i; for (i = 0; i < n; i += 1) { i = i; } }"
    fn = InsertPrefetch(distance=8).apply(parse_function(src))
    assert _prefetch_calls(fn) == []
