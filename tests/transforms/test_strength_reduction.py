"""Strength reduction and affine decomposition tests."""

import numpy as np
import pytest

from repro.blas.kernels import GEMM_SIMPLE_C
from repro.poet import cast as C
from repro.poet.parser import parse_expr, parse_function
from repro.poet.printer import to_c
from repro.transforms.strength_reduction import StrengthReduce, decompose_affine
from repro.transforms.unroll_jam import UnrollJam

from tests.conftest import needs_cc
from tests.transforms.helpers import run_c_function


# -- decompose_affine ----------------------------------------------------------

def test_affine_plain_var():
    form = decompose_affine(parse_expr("l"), "l")
    assert form.coeff == C.IntLit(1) and form.base is None and form.const == 0


def test_affine_coeff_and_base():
    form = decompose_affine(parse_expr("l * Mc + i"), "l")
    assert form.coeff == C.Id("Mc")
    assert form.base == C.Id("i")
    assert form.const == 0


def test_affine_constant_offset():
    form = decompose_affine(parse_expr("l * Mc + i + 3"), "l")
    assert form.const == 3


def test_affine_var_absent():
    form = decompose_affine(parse_expr("j * Kc"), "l")
    assert form.coeff is None


def test_affine_distributes_products():
    # (l + 1) * Mc must decompose as coeff=Mc, base=Mc
    form = decompose_affine(parse_expr("(l + 1) * Mc + i"), "l")
    assert form.coeff == C.Id("Mc")
    assert to_c(form.base) in ("Mc + i", "i + Mc")


def test_affine_subtraction():
    form = decompose_affine(parse_expr("n - l"), "l")
    assert form.coeff == C.IntLit(-1)


def test_affine_nonlinear_returns_none():
    assert decompose_affine(parse_expr("l * l"), "l") is None


def test_affine_numeric_coeff():
    form = decompose_affine(parse_expr("2 * l + 5"), "l")
    assert form.coeff == C.IntLit(2) and form.const == 5


# -- StrengthReduce on kernels ---------------------------------------------------

def _gemm_reduced():
    fn = parse_function(GEMM_SIMPLE_C)
    fn = UnrollJam("j", 2).apply(fn)
    fn = UnrollJam("i", 2).apply(fn)
    return StrengthReduce().apply(fn)


def test_gemm_pointers_introduced():
    text = to_c(_gemm_reduced())
    assert "ptr_A" in text and "ptr_B" in text and "ptr_C" in text


def test_gemm_b_gets_pointer_per_j_copy():
    fn = _gemm_reduced()
    ptrs = {n.name for n in fn.body.walk()
            if isinstance(n, C.Decl) and n.name.startswith("ptr_B")}
    assert len(ptrs) == 2  # one per unrolled j value


def test_inner_refs_become_constant_offsets():
    fn = _gemm_reduced()
    inner = [n for n in fn.body.walk() if isinstance(n, C.For)][-1]
    for ref in inner.body.walk():
        if isinstance(ref, C.Index):
            assert isinstance(ref.index, C.IntLit)


def test_pointer_increment_appended_to_loop():
    text = to_c(_gemm_reduced())
    assert "ptr_A0 += Mc" in text.replace("  ", " ")
    assert "+= 1;" in text  # the B pointers advance by one element


def test_invariant_refs_untouched():
    src = """
    void f(long n, double* x, double* y) {
        long i;
        for (i = 0; i < n; i += 1) {
            y[i] += x[0];
        }
    }
    """
    fn = StrengthReduce().apply(parse_function(src))
    text = to_c(fn)
    assert "x[0]" in text  # loop-invariant ref left alone
    assert "ptr_y" in text


def test_loops_filter_restricts_processing():
    fn = parse_function(GEMM_SIMPLE_C)
    fn = StrengthReduce(loops=["l"]).apply(fn)
    text = to_c(fn)
    assert "ptr_A" in text  # l-loop processed
    assert "ptr_C" not in text  # i-loop untouched (C refs are i-indexed)


@needs_cc
def test_strength_reduction_preserves_gemm_semantics():
    rng = np.random.default_rng(9)
    mc, nc, kc, ldc = 8, 6, 12, 10
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = rng.standard_normal(ldc * nc)
    ref = c.copy()
    am = a.reshape(kc, mc)
    bm = b.reshape(nc, kc)
    for j in range(nc):
        for i in range(mc):
            ref[j * ldc + i] += am[:, i] @ bm[j, :]
    fn = parse_function(GEMM_SIMPLE_C)
    fn = UnrollJam("j", 2).apply(fn)
    fn = UnrollJam("i", 2).apply(fn)
    fn = StrengthReduce().apply(fn)
    run_c_function(fn, [mc, nc, kc, a, b, c, ldc])
    assert np.allclose(c, ref)


@needs_cc
def test_strength_reduction_after_l_unroll_semantics():
    from repro.transforms.unroll import Unroll

    rng = np.random.default_rng(10)
    mc, nc, kc, ldc = 4, 4, 16, 4
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = np.zeros(ldc * nc)
    fn = parse_function(GEMM_SIMPLE_C)
    fn = UnrollJam("j", 2).apply(fn)
    fn = UnrollJam("i", 2).apply(fn)
    fn = Unroll("l", 2).apply(fn)
    fn = StrengthReduce().apply(fn)
    run_c_function(fn, [mc, nc, kc, a, b, c, ldc])
    am = a.reshape(kc, mc)
    bm = b.reshape(nc, kc)
    for j in range(nc):
        for i in range(mc):
            assert np.isclose(c[j * ldc + i], am[:, i] @ bm[j, :])
