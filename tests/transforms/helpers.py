"""Helpers: execute C-subset kernels natively to verify transforms preserve
semantics (transform correctness = same outputs as the original program)."""

from __future__ import annotations

import ctypes

import numpy as np

from repro.backend.compiler import build_shared
from repro.poet import cast as C
from repro.poet.printer import to_c

_DP = ctypes.POINTER(ctypes.c_double)

_PREFETCH_SHIM = """
#define prefetch_t0(p) (void)(p)
#define prefetch_t1(p) (void)(p)
#define prefetch_t2(p) (void)(p)
#define prefetch_nta(p) (void)(p)
"""

_counter = [0]


def run_c_function(fn: C.FuncDef, args):
    """Compile a (transformed) C-subset function and call it via ctypes.

    numpy float64 arrays pass by pointer (mutated in place); ints/floats by
    value.  Returns the function's return value (or None for void).
    """
    _counter[0] += 1
    name = f"probe{_counter[0]}"
    src = _PREFETCH_SHIM + to_c(fn).replace(f" {fn.name}(", f" {name}(", 1)
    so = build_shared({f"{name}.c": src}, extra_flags=("-O1",), tag=name)
    cfun = so.symbol(name)
    argtypes = []
    cargs = []
    for a in args:
        if isinstance(a, np.ndarray):
            argtypes.append(_DP)
            cargs.append(a.ctypes.data_as(_DP))
        elif isinstance(a, float):
            argtypes.append(ctypes.c_double)
            cargs.append(a)
        else:
            argtypes.append(ctypes.c_long)
            cargs.append(int(a))
    cfun.argtypes = argtypes
    cfun.restype = (ctypes.c_double if fn.ret_type == C.DOUBLE else None)
    return cfun(*cargs)
