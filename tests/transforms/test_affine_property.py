"""Property-based tests for the affine decomposition used by strength
reduction: decompose then recompose must equal the original expression for
every valuation of the free variables."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poet import cast as C
from repro.poet.parser import parse_expr
from repro.transforms.strength_reduction import decompose_affine

VARS = ["l", "i", "j", "Mc", "Nc", "Kc"]


@st.composite
def affine_exprs(draw, depth=0):
    """Random integer expressions over VARS using + - * and literals."""
    if depth > 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return C.Id(draw(st.sampled_from(VARS)))
        return C.IntLit(draw(st.integers(-8, 8)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(affine_exprs(depth=depth + 1))
    right = draw(affine_exprs(depth=depth + 1))
    return C.BinOp(op, left, right)


def evaluate(e: C.Node, env: dict) -> int:
    if isinstance(e, C.IntLit):
        return e.value
    if isinstance(e, C.Id):
        return env[e.name]
    if isinstance(e, C.UnaryOp) and e.op == "-":
        return -evaluate(e.operand, env)
    if isinstance(e, C.BinOp):
        a, b = evaluate(e.left, env), evaluate(e.right, env)
        return {"+": a + b, "-": a - b, "*": a * b}[e.op]
    raise TypeError(type(e))


@given(expr=affine_exprs(),
       env_vals=st.lists(st.integers(-5, 5), min_size=len(VARS),
                         max_size=len(VARS)))
@settings(max_examples=200, deadline=None)
def test_decompose_recompose_identity(expr, env_vals):
    env = dict(zip(VARS, env_vals))
    form = decompose_affine(expr, "l")
    if form is None:
        return  # legitimately non-affine in l (e.g. l*l)
    recomposed = env["l"] * (evaluate(form.coeff, env) if form.coeff else 0)
    recomposed += evaluate(form.base, env) if form.base is not None else 0
    recomposed += form.const
    assert recomposed == evaluate(expr, env)


@given(expr=affine_exprs())
@settings(max_examples=100, deadline=None)
def test_coeff_and_base_are_var_free(expr):
    form = decompose_affine(expr, "l")
    if form is None:
        return
    for piece in (form.coeff, form.base):
        if piece is not None:
            assert "l" not in {n.name for n in piece.walk()
                               if isinstance(n, C.Id)}


def test_known_paper_expressions():
    """The exact subscripts the GEMM pipeline produces must decompose."""
    for src, var in [
        ("l * Mc + i", "l"),
        ("(l + 1) * Mc + i + 3", "l"),
        ("j * Kc + l", "l"),
        ("(j + 1) * Kc + l", "l"),
        ("i * LDA + j", "j"),
    ]:
        form = decompose_affine(parse_expr(src), var)
        assert form is not None and form.coeff is not None, src
