"""Unroll&jam tests."""

import numpy as np
import pytest

from repro.blas.kernels import GEMM_SIMPLE_C
from repro.poet import cast as C
from repro.poet.errors import TransformError
from repro.poet.parser import parse_function
from repro.transforms.base import find_loop, loop_info
from repro.transforms.unroll_jam import UnrollJam, jam

from tests.conftest import needs_cc
from tests.transforms.helpers import run_c_function


def _loops(fn):
    return [n for n in fn.body.walk() if isinstance(n, C.For)]


def test_jam_fuses_identical_loops():
    fn = UnrollJam("j", 2).apply(parse_function(GEMM_SIMPLE_C))
    # still exactly three loops: j, i, l — the two i copies were fused
    assert len(_loops(fn)) == 3


def test_jam_outer_step_updated():
    fn = UnrollJam("j", 2).apply(parse_function(GEMM_SIMPLE_C))
    info = loop_info(find_loop(fn.body, "j"))
    assert info.step == 2


def test_double_unroll_jam_gemm_shape():
    fn = parse_function(GEMM_SIMPLE_C)
    fn = UnrollJam("j", 2).apply(fn)
    fn = UnrollJam("i", 2).apply(fn)
    inner = find_loop(fn.body, "l")
    # 4 accumulator updates jammed into the innermost loop
    updates = [s for s in inner.body.stmts if isinstance(s, C.Assign)]
    assert len(updates) == 4


def test_jam_renames_accumulators_distinctly():
    fn = parse_function(GEMM_SIMPLE_C)
    fn = UnrollJam("j", 2).apply(fn)
    fn = UnrollJam("i", 2).apply(fn)
    decls = {n.name for n in fn.body.walk()
             if isinstance(n, C.Decl) and n.ctype == C.DOUBLE}
    assert len(decls) == 4


def test_jam_function_merges_loop_slots():
    loop_a = parse_function(
        "void f() { for (l = 0; l < 8; l += 1) { x += 1; } }"
    ).body.stmts[0]
    loop_b = loop_a.clone()
    merged = jam([[loop_a], [loop_b]])
    assert len(merged) == 1
    assert len(merged[0].body.stmts) == 2


def test_jam_rejects_different_headers():
    loop_a = parse_function(
        "void f() { for (l = 0; l < 8; l += 1) { x += 1; } }"
    ).body.stmts[0]
    loop_b = parse_function(
        "void f() { for (l = 0; l < 9; l += 1) { x += 1; } }"
    ).body.stmts[0]
    with pytest.raises(TransformError):
        jam([[loop_a], [loop_b]])


def test_jam_shape_mismatch_raises():
    with pytest.raises(TransformError):
        jam([[C.Return()], []])


@needs_cc
@pytest.mark.parametrize("nu,mu", [(2, 2), (2, 4), (4, 2)])
def test_unroll_jam_preserves_gemm_semantics(nu, mu):
    rng = np.random.default_rng(nu * 10 + mu)
    mc, nc, kc, ldc = 8, 8, 16, 8
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = np.zeros(ldc * nc)
    fn = parse_function(GEMM_SIMPLE_C)
    fn = UnrollJam("j", nu).apply(fn)
    fn = UnrollJam("i", mu).apply(fn)
    run_c_function(fn, [mc, nc, kc, a, b, c, ldc])
    am = a.reshape(kc, mc)
    bm = b.reshape(nc, kc)
    ref = np.zeros(ldc * nc)
    for j in range(nc):
        for i in range(mc):
            ref[j * ldc + i] = am[:, i] @ bm[j, :]
    assert np.allclose(c, ref)
