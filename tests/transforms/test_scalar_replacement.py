"""Scalar replacement (three-address lowering) and decl hoisting tests."""

import numpy as np
import pytest

from repro.blas.kernels import AXPY_SIMPLE_C, DOT_SIMPLE_C, GEMM_SIMPLE_C
from repro.core.templates import match_mm_comp, match_mm_store, match_mv_comp
from repro.poet import cast as C
from repro.poet.parser import parse_function
from repro.poet.printer import to_c
from repro.transforms.scalar_replacement import HoistDecls, ScalarReplace
from repro.transforms.strength_reduction import StrengthReduce

from tests.conftest import needs_cc
from tests.transforms.helpers import run_c_function


def _lowered(src):
    fn = parse_function(src)
    fn = StrengthReduce().apply(fn)
    fn = ScalarReplace().apply(fn)
    return HoistDecls().apply(fn)


def _inner_loop_stmts(fn):
    loops = [n for n in fn.body.walk() if isinstance(n, C.For)]
    return loops[-1].body.stmts


def test_gemm_inner_loop_is_mm_comp_shape():
    fn = _lowered(GEMM_SIMPLE_C)
    stmts = _inner_loop_stmts(fn)
    assert match_mm_comp(stmts, 0) is not None


def test_gemm_store_is_mm_store_shape():
    fn = _lowered(GEMM_SIMPLE_C)
    loops = [n for n in fn.body.walk() if isinstance(n, C.For)]
    i_loop = loops[1]
    after_l = [s for s in i_loop.body.stmts if not isinstance(s, C.For)]
    # find three consecutive statements matching mmSTORE
    found = any(match_mm_store(after_l, k) for k in range(len(after_l)))
    assert found


def test_axpy_inner_loop_is_mv_comp_shape():
    fn = _lowered(AXPY_SIMPLE_C)
    stmts = _inner_loop_stmts(fn)
    assert match_mv_comp(stmts, 0) is not None


def test_dot_inner_loop_is_mm_comp_shape():
    fn = _lowered(DOT_SIMPLE_C)
    stmts = _inner_loop_stmts(fn)
    assert match_mm_comp(stmts, 0) is not None


def test_temps_declared_at_top():
    fn = _lowered(GEMM_SIMPLE_C)
    # every Decl must sit directly in the function body, before other stmts
    seen_non_decl = False
    for s in fn.body.stmts:
        if isinstance(s, C.Decl):
            assert not seen_non_decl, "decl after executable statement"
        else:
            seen_non_decl = True
    inner_decls = [
        n for loop in fn.body.walk() if isinstance(loop, C.For)
        for n in loop.body.stmts if isinstance(n, C.Decl)
    ]
    assert inner_decls == []


def test_hoist_preserves_initializer_as_assignment():
    src = "void f(double* x) { double t = 1.0; x[0] = t; }"
    fn = HoistDecls().apply(parse_function(src))
    assert isinstance(fn.body.stmts[0], C.Decl)
    assert fn.body.stmts[0].init is None
    assign = fn.body.stmts[1]
    assert isinstance(assign, C.Assign) and assign.rhs == C.FloatLit(1.0)


def test_hoist_for_loop_decl_init():
    src = "void f(long n) { for (long i = 0; i < n; i += 1) { } }"
    fn = HoistDecls().apply(parse_function(src))
    assert isinstance(fn.body.stmts[0], C.Decl)
    loop = fn.body.stmts[1]
    assert isinstance(loop.init, C.Assign)


def test_integer_statements_not_lowered():
    src = "void f(long n, double* x) { long i; i = n * 2; x[0] += x[1] * 2.0; }"
    fn = ScalarReplace().apply(parse_function(src))
    text = to_c(fn)
    assert "i = n * 2;" in text


def test_each_load_gets_fresh_temp():
    fn = _lowered(GEMM_SIMPLE_C)
    stmts = _inner_loop_stmts(fn)
    comp = match_mm_comp(stmts, 0)
    assert len(set(comp.tmps)) == 3


@needs_cc
@pytest.mark.parametrize("src,builder", [
    (AXPY_SIMPLE_C, "axpy"),
    (DOT_SIMPLE_C, "dot"),
])
def test_lowering_preserves_semantics(src, builder):
    rng = np.random.default_rng(3)
    n = 24
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    fn = _lowered(src)
    if builder == "axpy":
        y2 = y.copy()
        run_c_function(fn, [n, 2.0, x, y2])
        assert np.allclose(y2, y + 2.0 * x)
    else:
        got = run_c_function(fn, [n, x, y])
        assert np.isclose(got, x @ y)


@needs_cc
def test_gemm_lowering_preserves_semantics():
    rng = np.random.default_rng(4)
    mc, nc, kc, ldc = 4, 3, 8, 5
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = np.zeros(ldc * nc)
    fn = _lowered(GEMM_SIMPLE_C)
    run_c_function(fn, [mc, nc, kc, a, b, c, ldc])
    am = a.reshape(kc, mc)
    bm = b.reshape(nc, kc)
    for j in range(nc):
        for i in range(mc):
            assert np.isclose(c[j * ldc + i], am[:, i] @ bm[j, :])
