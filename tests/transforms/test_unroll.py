"""Loop unrolling and accumulator splitting tests."""

import numpy as np
import pytest

from repro.poet import cast as C
from repro.poet.errors import TransformError
from repro.poet.parser import parse_function
from repro.poet.printer import to_c
from repro.transforms.base import find_loop, loop_info
from repro.transforms.unroll import SplitAccumulator, Unroll

from tests.conftest import needs_cc
from tests.transforms.helpers import run_c_function

AXPY = """
void axpy(long n, double alpha, double* x, double* y) {
    long i;
    for (i = 0; i < n; i += 1) {
        y[i] += x[i] * alpha;
    }
}
"""

DOT = """
double dot(long n, double* x, double* y) {
    long i;
    double res = 0.0;
    for (i = 0; i < n; i += 1) {
        res += x[i] * y[i];
    }
    return res;
}
"""


def test_unroll_replicates_body():
    fn = Unroll("i", 4).apply(parse_function(AXPY))
    loop = find_loop(fn.body, "i")
    assert len(loop.body.stmts) == 4


def test_unroll_adjusts_step():
    fn = Unroll("i", 4).apply(parse_function(AXPY))
    info = loop_info(find_loop(fn.body, "i"))
    assert info.step == 4


def test_unroll_shifts_indices():
    fn = Unroll("i", 2).apply(parse_function(AXPY))
    text = to_c(fn)
    assert "x[i + 1]" in text and "y[i + 1]" in text


def test_unroll_factor_one_is_identity():
    fn = parse_function(AXPY)
    before = to_c(fn)
    assert to_c(Unroll("i", 1).apply(fn)) == before


def test_unroll_renames_declared_locals():
    src = """
    void f(long n, double* x) {
        long i;
        for (i = 0; i < n; i += 1) {
            double t = x[i];
            x[i] = t * t;
        }
    }
    """
    fn = Unroll("i", 2).apply(parse_function(src))
    names = {n.name for n in fn.body.walk() if isinstance(n, C.Decl)}
    locals_ = names - {"i"}
    assert len(locals_) == 2  # two distinct renamed copies of t


def test_unroll_missing_loop_raises():
    with pytest.raises(TransformError):
        Unroll("z", 2).apply(parse_function(AXPY))


def test_unroll_invalid_factor_raises():
    with pytest.raises(TransformError):
        Unroll("i", 0)


def test_unroll_with_remainder_emits_cleanup_loop():
    fn = Unroll("i", 4, assume_divisible=False).apply(parse_function(AXPY))
    loops = [n for n in fn.body.walk() if isinstance(n, C.For)]
    assert len(loops) == 2
    assert loops[1].init is None  # remainder continues from current i


@needs_cc
def test_unroll_preserves_semantics_divisible():
    rng = np.random.default_rng(0)
    n = 32
    x = rng.standard_normal(n)
    y0 = rng.standard_normal(n)
    y_ref = y0 + 2.5 * x
    fn = Unroll("i", 4).apply(parse_function(AXPY))
    y = y0.copy()
    run_c_function(fn, [n, 2.5, x, y])
    assert np.allclose(y, y_ref)


@needs_cc
@pytest.mark.parametrize("n", [1, 5, 31, 32, 33])
def test_unroll_remainder_preserves_semantics(n):
    rng = np.random.default_rng(n)
    x = rng.standard_normal(n)
    y0 = rng.standard_normal(n)
    fn = Unroll("i", 4, assume_divisible=False).apply(parse_function(AXPY))
    y = y0.copy()
    run_c_function(fn, [n, -1.5, x, y])
    assert np.allclose(y, y0 - 1.5 * x)


# -- accumulator splitting ----------------------------------------------------

def test_split_accumulator_renames_updates():
    fn = Unroll("i", 4).apply(parse_function(DOT))
    fn = SplitAccumulator("i", "res", 4).apply(fn)
    text = to_c(fn)
    assert "res_s0" in text and "res_s3" in text
    assert "res += res_s0 + res_s1 + res_s2 + res_s3;" in text


def test_split_accumulator_declares_parts_zeroed():
    fn = Unroll("i", 2).apply(parse_function(DOT))
    fn = SplitAccumulator("i", "res", 2).apply(fn)
    decls = [s for s in fn.body.walk()
             if isinstance(s, C.Decl) and s.name.startswith("res_s")]
    assert len(decls) == 2
    assert all(d.init == C.FloatLit(0.0) for d in decls)


def test_split_requires_updates_in_loop():
    with pytest.raises(TransformError):
        SplitAccumulator("i", "nosuch", 2).apply(parse_function(DOT))


def test_split_ways_one_is_identity():
    fn = parse_function(DOT)
    before = to_c(fn)
    assert to_c(SplitAccumulator("i", "res", 1).apply(fn)) == before


@needs_cc
def test_split_preserves_semantics():
    rng = np.random.default_rng(1)
    n = 64
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    fn = Unroll("i", 8).apply(parse_function(DOT))
    fn = SplitAccumulator("i", "res", 8).apply(fn)
    got = run_c_function(fn, [n, x, y])
    assert np.isclose(got, x @ y)
