"""BLAS-style argument validation — the library's ``xerbla`` layer.

Reference BLAS funnels every bad argument through ``xerbla`` with the
routine name and parameter index; ctypes kernels are far less forgiving —
a strided view or an int array handed to generated assembly corrupts
memory instead of raising.  :class:`ArgGuard` sits between the public
``AugemBLAS`` entry points and the drivers so invalid input can never
reach assembly:

- **coercion**: array-likes are converted to C-contiguous float64 (the
  only layout the kernels accept); every copy/cast made on the way in is
  counted (``dispatch.guard_coercion``) so callers can see conversion
  overhead in a trace;
- **rejection**: wrong rank, mismatched shapes, non-numeric dtypes, and
  non-coercible *in-place* operands raise :class:`BlasArgumentError`
  with the routine and parameter named (``dispatch.guard_rejection``);
- **aliasing**: read operands that share memory with an in-place output
  are defensively copied, so ``daxpy(a, x, x)`` and ``dger`` with a row
  of the updated matrix behave like their reference semantics;
- **NaN/Inf policy**: ``"propagate"`` (default, IEEE semantics flow
  through) or ``"raise"`` (reject non-finite input up front).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..obs import incr

#: accepted ``nan_policy`` values
NAN_POLICIES = ("propagate", "raise")


class BlasArgumentError(ValueError):
    """Invalid argument to a BLAS entry point (the ``xerbla`` analogue)."""

    def __init__(self, routine: str, param: str, message: str) -> None:
        self.routine = routine
        self.param = param
        super().__init__(f"{routine}: parameter '{param}': {message}")


@dataclass
class GuardStats:
    """Per-instance tallies (process-wide totals go to ``dispatch.*``)."""

    coercions: int = 0       # dtype/contiguity copies made on the way in
    rejections: int = 0      # BlasArgumentError raised
    alias_copies: int = 0    # defensive copies for aliased in-place outputs
    zero_dim_returns: int = 0  # calls short-circuited before any kernel


class ArgGuard:
    """Validates and coerces arguments for one :class:`AugemBLAS`."""

    def __init__(self, nan_policy: str = "propagate") -> None:
        if nan_policy not in NAN_POLICIES:
            raise ValueError(f"nan_policy must be one of {NAN_POLICIES}, "
                             f"got {nan_policy!r}")
        self.nan_policy = nan_policy
        self.stats = GuardStats()

    # -- outcomes ---------------------------------------------------------
    def reject(self, routine: str, param: str, message: str,
               value=None) -> None:
        """Raise :class:`BlasArgumentError`, naming the offending operand's
        dtype and shape when an array (or array-like) is in hand — the
        difference between "b: expected shape (4, 4)" and an error the
        caller can act on without a debugger."""
        self.stats.rejections += 1
        incr("dispatch.guard_rejection")
        if value is not None:
            described = value if isinstance(value, np.ndarray) else None
            if described is None:
                try:
                    described = np.asarray(value)
                except Exception:
                    described = None
            if described is not None and described.dtype != object:
                message = (f"{message} [offending operand: "
                           f"dtype={described.dtype}, "
                           f"shape={described.shape}]")
        raise BlasArgumentError(routine, param, message)

    def note_zero_dim(self) -> None:
        self.stats.zero_dim_returns += 1
        incr("dispatch.guard_zero_dim")

    # -- coercion ---------------------------------------------------------
    def _coerce(self, routine: str, param: str, value,
                ndim: int) -> np.ndarray:
        try:
            arr = np.asarray(value)
        except Exception:
            self.reject(routine, param, "not convertible to an array")
        if arr.dtype == object or not np.issubdtype(arr.dtype, np.number):
            self.reject(routine, param,
                        f"non-numeric dtype {arr.dtype}")
        if np.iscomplexobj(arr):
            self.reject(routine, param, "complex input is not supported "
                                        "(double-precision real BLAS)",
                        value=arr)
        if arr.ndim != ndim:
            self.reject(routine, param,
                        f"expected a {ndim}-D array, got {arr.ndim}-D "
                        f"shape {arr.shape}", value=arr)
        out = np.ascontiguousarray(arr, dtype=np.float64)
        if out is not arr:
            self.stats.coercions += 1
            incr("dispatch.guard_coercion")
        self._check_finite(routine, param, out)
        return out

    def matrix(self, routine: str, param: str, value,
               shape: Optional[Tuple[int, int]] = None) -> np.ndarray:
        """A C-contiguous float64 2-D array (copied/cast as needed)."""
        arr = self._coerce(routine, param, value, ndim=2)
        if shape is not None and arr.shape != shape:
            self.reject(routine, param,
                        f"expected shape {shape}, got {arr.shape}",
                        value=arr)
        return arr

    def vector(self, routine: str, param: str, value,
               length: Optional[int] = None) -> np.ndarray:
        """A C-contiguous float64 1-D array (copied/cast as needed)."""
        arr = self._coerce(routine, param, value, ndim=1)
        if length is not None and arr.shape[0] != length:
            self.reject(routine, param,
                        f"expected length {length}, got {arr.shape[0]}",
                        value=arr)
        return arr

    def scalar(self, routine: str, param: str, value) -> float:
        try:
            out = float(value)
        except (TypeError, ValueError):
            self.reject(routine, param,
                        f"expected a real scalar, got {type(value).__name__}")
        if self.nan_policy == "raise" and not np.isfinite(out):
            self.reject(routine, param,
                        f"non-finite value {out!r} (nan_policy='raise')")
        return out

    # -- in-place outputs -------------------------------------------------
    def _inplace(self, routine: str, param: str, value,
                 ndim: int) -> np.ndarray:
        """An operand the routine mutates: must already be kernel-ready.

        Coercing would silently update a copy the caller never sees, so
        anything that is not a C-contiguous float64 array of the right
        rank is rejected rather than converted.
        """
        if not isinstance(value, np.ndarray):
            self.reject(routine, param,
                        "updated in place; pass a numpy array, not "
                        f"{type(value).__name__}")
        if value.ndim != ndim:
            self.reject(routine, param,
                        f"expected a {ndim}-D array, got {value.ndim}-D",
                        value=value)
        if value.dtype != np.float64 or not value.flags.c_contiguous:
            self.reject(routine, param,
                        "updated in place; must be C-contiguous float64 "
                        "(pass np.ascontiguousarray(..., dtype=np.float64) "
                        "yourself to keep the reference)", value=value)
        if not value.flags.writeable:
            self.reject(routine, param, "updated in place; array is "
                                        "read-only", value=value)
        self._check_finite(routine, param, value)
        return value

    def inplace_vector(self, routine: str, param: str, value,
                       length: Optional[int] = None) -> np.ndarray:
        arr = self._inplace(routine, param, value, ndim=1)
        if length is not None and arr.shape[0] != length:
            self.reject(routine, param,
                        f"expected length {length}, got {arr.shape[0]}",
                        value=arr)
        return arr

    def inplace_matrix(self, routine: str, param: str, value,
                       shape: Optional[Tuple[int, int]] = None) -> np.ndarray:
        arr = self._inplace(routine, param, value, ndim=2)
        if shape is not None and arr.shape != shape:
            self.reject(routine, param,
                        f"expected shape {shape}, got {arr.shape}",
                        value=arr)
        return arr

    # -- aliasing ---------------------------------------------------------
    def unalias(self, routine: str, out: np.ndarray,
                read: np.ndarray) -> np.ndarray:
        """Defensive copy of ``read`` when it overlaps the in-place ``out``."""
        if read is not out and np.may_share_memory(read, out):
            self.stats.alias_copies += 1
            incr("dispatch.guard_alias_copy")
            return read.copy()
        return read

    # -- NaN/Inf policy ---------------------------------------------------
    def _check_finite(self, routine: str, param: str,
                      arr: np.ndarray) -> None:
        if self.nan_policy == "raise" and arr.size \
                and not np.all(np.isfinite(arr)):
            self.reject(routine, param,
                        "contains NaN/Inf (nan_policy='raise')", value=arr)
