"""Algorithm-based fault tolerance (ABFT) for the BLAS facade.

Huang–Abraham checksums give O(n²) verification of O(n³) GEMM: if
``C = alpha * A @ B`` then ``C @ e == alpha * A @ (B @ e)`` and
``eᵀ @ C == alpha * (eᵀ @ A) @ B`` for the all-ones vector ``e``.  The
driver (:mod:`repro.blas.gemm`) applies both duals **per macro-tile**,
so a mismatch localizes to the (j0, i0) tile — and the worker thread —
that produced it, at the same blocked granularity the last-mile
literature uses for per-region correctness contracts.

On a detected mismatch the containment ladder is:

1. **retry** the tile once on freshly zeroed pooled buffers with
   privately packed panels (a bit-flip in a pooled buffer or a race on
   a dirty scratch slice does not repeat);
2. **recompute** the tile via numpy reference semantics if the retry
   still mismatches, so the caller always receives correct bits;
3. **record** a corruption verdict against the kernel's
   :attr:`~repro.core.framework.GeneratedKernel.body_hash` — after
   :data:`STRIKE_LIMIT` strikes the kernel is quarantined in the
   persistent store (the same record the tuner and dispatch chain
   consult) and its tier is demoted for the remainder of the process.

The verification *mode* is ``off`` (default), ``sample`` (deterministic
1-in-K call sampling, K from ``sample:K``), or ``full``; resolved from
an explicit argument or ``$REPRO_INTEGRITY`` (see
:func:`resolve_integrity`).  Level-2/1 routines get cheaper sum-identity
checks through the ``Integrity*Driver`` wrappers installed by
:class:`~repro.blas.api.AugemBLAS`.

Everything observable lands in ``integrity.*`` counters/events (checks,
mismatches, retries, reference_recomputes, quarantines, overhead_ns)
plus the process-wide :data:`STATS` snapshot that the
``python -m repro integrity show`` CLI renders.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..backend.cache import get_cache
from ..core.framework import quarantine_key
from ..obs import event, incr
from . import reference as ref

#: environment variable naming the default integrity mode
INTEGRITY_ENV = "REPRO_INTEGRITY"

#: recognized integrity modes
MODES = ("off", "sample", "full")

#: default 1-in-K sampling period for ``sample`` mode
DEFAULT_SAMPLE_PERIOD = 16

#: corruption strikes before a kernel is quarantined and its tier demoted
STRIKE_LIMIT = 3

#: tolerance growth factor on top of the dtype/shape-derived error bound
#: (generous: blocked summation reorders freely, and a checksum must
#: never flag a healthy kernel)
TOL_GROWTH = 64.0


def resolve_integrity(mode: Optional[str] = None,
                      environ=os.environ) -> Tuple[str, int]:
    """The effective ``(mode, sample_period)``: explicit > env > off.

    An explicit malformed mode raises; a malformed environment value
    degrades to ``off`` (an env typo must never crash a library call).
    ``sample`` accepts an optional period suffix: ``sample:8`` checks
    one call in eight (deterministically, by call counter).
    """
    explicit = mode is not None
    raw = mode if explicit else environ.get(INTEGRITY_ENV, "")
    raw = str(raw).strip().lower()
    if not raw:
        return "off", DEFAULT_SAMPLE_PERIOD
    name, _, suffix = raw.partition(":")
    period = DEFAULT_SAMPLE_PERIOD
    ok = name in MODES
    if ok and suffix:
        if name == "sample" and suffix.isdigit() and int(suffix) >= 1:
            period = int(suffix)
        else:
            ok = False
    if not ok:
        if explicit:
            raise ValueError(
                f"integrity mode must be one of {MODES} (optionally "
                f"'sample:K'), got {mode!r}")
        return "off", DEFAULT_SAMPLE_PERIOD
    return name, period


# ---------------------------------------------------------------------------
# process-wide stats + strike/quarantine state
# ---------------------------------------------------------------------------

class IntegrityStats:
    """Thread-safe process-wide ABFT counters (``integrity show``)."""

    FIELDS = ("checks", "mismatches", "retries", "reference_recomputes",
              "quarantines", "overhead_ns")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, int] = {f: 0 for f in self.FIELDS}

    def add(self, field: str, n: int = 1) -> None:
        with self._lock:
            self._values[field] += int(n)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._values)

    def reset(self) -> None:
        with self._lock:
            for f in self.FIELDS:
                self._values[f] = 0


#: the process-wide stats singleton
STATS = IntegrityStats()

_STATE_LOCK = threading.Lock()
_STRIKES: Dict[str, int] = {}       # body_hash -> corruption strikes
_QUARANTINED: set = set()           # body_hashes quarantined this process


def reset_integrity_state() -> None:
    """Forget strikes, quarantines, and stats (tests)."""
    with _STATE_LOCK:
        _STRIKES.clear()
        _QUARANTINED.clear()
    STATS.reset()


def strike_counts() -> Dict[str, int]:
    """A snapshot of per-kernel corruption strikes, by body hash."""
    with _STATE_LOCK:
        return dict(_STRIKES)


# ---------------------------------------------------------------------------
# checksum math
# ---------------------------------------------------------------------------

def _tol(eps: float, n_terms: int, magnitude: np.ndarray) -> np.ndarray:
    """Elementwise tolerance for a checksum over ``n_terms`` additions."""
    return TOL_GROWTH * eps * max(int(n_terms), 1) * magnitude \
        + TOL_GROWTH * np.finfo(np.float64).tiny


def verify_gemm_tile(tile: np.ndarray, a_sub: np.ndarray,
                     b_sub: np.ndarray, alpha: float = 1.0) -> bool:
    """Both checksum duals for one macro-tile; True = consistent.

    ``tile`` is the computed ``(jn, im)`` slice in ``[j, i]`` layout
    (the transpose of ``alpha * a_sub @ b_sub``), ``a_sub`` the
    ``(im, k)`` A rows and ``b_sub`` the ``(k, jn)`` B columns that
    produced it.  Both checks cost O(k·(im+jn)) against the tile's
    O(k·im·jn) compute.  Non-finite expected checksums (NaN/Inf inputs
    propagate legitimately) make the tile unverifiable and count as
    consistent — ABFT must never flag healthy IEEE semantics.
    """
    tile = np.asarray(tile)
    a_sub = np.asarray(a_sub, dtype=tile.dtype)
    b_sub = np.asarray(b_sub, dtype=tile.dtype)
    im, k = a_sub.shape
    jn = b_sub.shape[1]
    eps = float(np.finfo(tile.dtype).eps) if tile.dtype.kind == "f" \
        else float(np.finfo(np.float64).eps)
    n_terms = k + im + jn

    # column dual: sum over i of tile[j, i] vs alpha * (1ᵀA) @ B
    got_col = tile.sum(axis=1)
    exp_col = alpha * (a_sub.sum(axis=0) @ b_sub)
    mag_col = abs(alpha) * (np.abs(a_sub).sum(axis=0) @ np.abs(b_sub))
    # row dual: sum over j of tile[j, i] vs alpha * A @ (B·1)
    got_row = tile.sum(axis=0)
    exp_row = alpha * (a_sub @ b_sub.sum(axis=1))
    mag_row = abs(alpha) * (np.abs(a_sub) @ np.abs(b_sub).sum(axis=1))

    if not (np.isfinite(exp_col).all() and np.isfinite(exp_row).all()
            and np.isfinite(mag_col).all() and np.isfinite(mag_row).all()):
        return True  # unverifiable, not corrupt
    return bool(
        np.all(np.abs(got_col - exp_col) <= _tol(eps, n_terms, mag_col))
        and np.all(np.abs(got_row - exp_row) <= _tol(eps, n_terms, mag_row)))


def _sum_close(got: float, expected: float, magnitude: float,
               n_terms: int) -> bool:
    """Scalar sum-identity check used by the level-2/1 wrappers."""
    if not (np.isfinite(expected) and np.isfinite(magnitude)):
        return True
    eps = float(np.finfo(np.float64).eps)
    tol = float(_tol(eps, n_terms, np.float64(abs(magnitude))))
    return abs(got - expected) <= tol


# ---------------------------------------------------------------------------
# per-call report + the checker
# ---------------------------------------------------------------------------

class IntegrityReport:
    """Mutable per-call verification record (serialized by serve)."""

    def __init__(self) -> None:
        self.mode = "off"
        self.checked = False
        self.tiles_checked = 0
        self.mismatches = 0
        self.retries = 0
        self.reference_recomputes = 0
        self.quarantined: List[str] = []
        self.overhead_ns = 0
        self._lock = threading.Lock()

    def note(self, field: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + int(n))

    def quarantine(self, body_hash: str) -> None:
        with self._lock:
            if body_hash not in self.quarantined:
                self.quarantined.append(body_hash)

    @property
    def clean(self) -> bool:
        return self.mismatches == 0

    def to_json(self) -> Dict[str, object]:
        with self._lock:
            return {
                "mode": self.mode,
                "checked": self.checked,
                "tiles_checked": self.tiles_checked,
                "mismatches": self.mismatches,
                "retries": self.retries,
                "reference_recomputes": self.reference_recomputes,
                "quarantined": list(self.quarantined),
                "overhead_ns": self.overhead_ns,
            }


class IntegrityChecker:
    """Mode resolution, deterministic sampling, and strike accounting.

    One checker is shared by every driver a facade builds, so the
    sampling counter covers the facade's whole call stream and strike
    state aggregates across routines (module-global, by body hash).
    """

    def __init__(self, mode: Optional[str] = None,
                 sample_period: Optional[int] = None,
                 strike_limit: int = STRIKE_LIMIT,
                 on_quarantine: Optional[Callable] = None) -> None:
        self.mode, self.sample_period = resolve_integrity(mode)
        if sample_period is not None:
            if int(sample_period) < 1:
                raise ValueError("sample_period must be >= 1")
            self.sample_period = int(sample_period)
        self.strike_limit = max(1, int(strike_limit))
        self.on_quarantine = on_quarantine
        self._lock = threading.Lock()
        self._calls = 0

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def decide(self, override: Optional[str] = None) -> bool:
        """Whether *this* call gets verified (deterministic sampling).

        ``override`` is a per-call mode string (the serve per-request
        flag); ``None`` uses the checker's configured mode.
        """
        if override is None:
            mode, period = self.mode, self.sample_period
        else:
            mode, period = resolve_integrity(override)
        if mode == "off":
            return False
        if mode == "full":
            return True
        with self._lock:
            n = self._calls
            self._calls += 1
        return n % period == 0

    def describe(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "sample_period": self.sample_period,
            "strike_limit": self.strike_limit,
        }

    def record_corruption(self, family: str, kernel,
                          detail: str = "") -> Dict[str, object]:
        """One confirmed corruption strike against ``kernel``.

        ``kernel`` is a loaded native/emulated kernel carrying a
        ``generated`` :class:`~repro.core.framework.GeneratedKernel`.
        At :attr:`strike_limit` strikes the kernel is quarantined by
        body hash in the persistent store and its arch tier is demoted
        for the remainder of the process.  Returns the verdict dict.
        """
        gk = getattr(kernel, "generated", None)
        body_hash = getattr(gk, "body_hash", None) if gk is not None \
            else None
        if body_hash is None:
            return {"family": family, "strikes": 0, "quarantined": False,
                    "demoted": False}
        with _STATE_LOCK:
            strikes = _STRIKES.get(body_hash, 0) + 1
            _STRIKES[body_hash] = strikes
            already = body_hash in _QUARANTINED
            quarantine_now = strikes >= self.strike_limit and not already
            if quarantine_now:
                _QUARANTINED.add(body_hash)
        incr("integrity.strikes")
        event("integrity.corruption", family=family, kernel=gk.name,
              body_hash=body_hash, strikes=strikes, detail=detail[:200])
        verdict: Dict[str, object] = {
            "family": family,
            "kernel": gk.name,
            "body_hash": body_hash,
            "strikes": strikes,
            "quarantined": quarantine_now or already,
            "demoted": False,
        }
        if not quarantine_now:
            return verdict
        reason = (f"integrity: {family} kernel produced corrupt results "
                  f"({strikes} strikes; {detail})")[:300]
        arch = getattr(gk, "arch", None)
        if arch is not None:
            qkey = quarantine_key(family, arch, gk)
            get_cache().store_quarantine(qkey, {
                "kernel": family,
                "arch": arch.name,
                "candidate": gk.name,
                "category": "integrity",
                "error": reason,
            })
            # demote the whole tier: a kernel that corrupts data after
            # passing admission means the tier cannot be trusted
            from . import dispatch
            dispatch.demote_tier(arch.name, reason)
            verdict["demoted"] = True
        STATS.add("quarantines")
        incr("integrity.quarantines")
        event("integrity.quarantine", family=family, kernel=gk.name,
              body_hash=body_hash, strikes=strikes)
        if self.on_quarantine is not None:
            try:
                self.on_quarantine(family, verdict)
            except Exception:  # noqa: BLE001 - callback must not break calls
                pass
        return verdict


# ---------------------------------------------------------------------------
# level-2/1 wrappers (sum-identity checks around the native drivers)
# ---------------------------------------------------------------------------

class _IntegrityWrapper:
    """Shared plumbing: delegate everything to the wrapped driver."""

    supports_integrity = True
    family = ""

    def __init__(self, inner, checker: IntegrityChecker) -> None:
        self._inner = inner
        self.integrity = checker

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def _kernel(self):
        inner = self._inner
        return getattr(inner, "kernel", None) \
            or getattr(inner, "kernel_t", None)

    def _verified(self, report: Optional[IntegrityReport], t0: int,
                  mismatched: bool, corrected: bool) -> None:
        overhead = time.perf_counter_ns() - t0
        STATS.add("checks")
        STATS.add("overhead_ns", overhead)
        incr("integrity.checks")
        if report is not None:
            report.checked = True
            report.note("overhead_ns", overhead)
        if mismatched:
            STATS.add("mismatches")
            STATS.add("retries")
            incr("integrity.mismatches")
            incr("integrity.retries")
            if report is not None:
                report.note("mismatches")
                report.note("retries")
        if corrected:
            STATS.add("reference_recomputes")
            incr("integrity.reference_recomputes")
            if report is not None:
                report.note("reference_recomputes")

    def _corrupt(self, detail: str,
                 report: Optional[IntegrityReport]) -> None:
        event("integrity.mismatch", family=self.family, detail=detail[:200])
        kernel = self._kernel()
        if kernel is None:
            return
        verdict = self.integrity.record_corruption(self.family, kernel,
                                                   detail=detail)
        if report is not None and verdict.get("quarantined"):
            report.quarantine(str(verdict.get("body_hash")))


class IntegrityGemvDriver(_IntegrityWrapper):
    """Sum-identity ABFT around :class:`~repro.blas.gemv.GemvDriver`."""

    family = "gemv"

    def __call__(self, a, x, y=None, alpha: float = 1.0, beta: float = 0.0,
                 trans: bool = False, integrity: Optional[str] = None,
                 integrity_report: Optional[IntegrityReport] = None):
        check = self.integrity.decide(integrity)
        if not check:
            return self._inner(a, x, y, alpha=alpha, beta=beta, trans=trans)
        t0 = time.perf_counter_ns()
        a64 = np.asarray(a, dtype=np.float64)
        x64 = np.asarray(x, dtype=np.float64)
        op = a64.T if trans else a64
        expected = alpha * float(op.sum(axis=0) @ x64)
        magnitude = abs(alpha) * float(np.abs(op).sum(axis=0) @ np.abs(x64))
        if y is not None and beta != 0.0:
            y64 = np.asarray(y, dtype=np.float64)
            expected += beta * float(y64.sum())
            magnitude += abs(beta) * float(np.abs(y64).sum())
        n_terms = op.shape[0] + op.shape[1]

        out = self._inner(a, x, y, alpha=alpha, beta=beta, trans=trans)
        if _sum_close(float(np.asarray(out).sum()), expected, magnitude,
                      n_terms):
            self._verified(integrity_report, t0, False, False)
            return out
        out = self._inner(a, x, y, alpha=alpha, beta=beta, trans=trans)
        if _sum_close(float(np.asarray(out).sum()), expected, magnitude,
                      n_terms):
            self._verified(integrity_report, t0, True, False)
            return out
        self._corrupt("gemv sum identity violated twice", integrity_report)
        out = ref.ref_gemv(a, x, y, alpha, beta, trans)
        self._verified(integrity_report, t0, True, True)
        return out


class IntegrityAxpyDriver(_IntegrityWrapper):
    """Sum-identity ABFT around :class:`~repro.blas.level1.AxpyDriver`."""

    family = "axpy"

    def __call__(self, alpha: float, x, y,
                 integrity: Optional[str] = None,
                 integrity_report: Optional[IntegrityReport] = None):
        check = self.integrity.decide(integrity)
        if not check:
            return self._inner(alpha, x, y)
        t0 = time.perf_counter_ns()
        y0 = np.array(y, dtype=np.float64)
        x64 = np.asarray(x, dtype=np.float64)
        expected = float(y0.sum()) + alpha * float(x64.sum())
        magnitude = float(np.abs(y0).sum()) \
            + abs(alpha) * float(np.abs(x64).sum())

        out = self._inner(alpha, x, y)
        if _sum_close(float(np.asarray(out).sum()), expected, magnitude,
                      2 * x64.size):
            self._verified(integrity_report, t0, False, False)
            return out
        y[:] = y0
        out = self._inner(alpha, x, y)
        if _sum_close(float(np.asarray(out).sum()), expected, magnitude,
                      2 * x64.size):
            self._verified(integrity_report, t0, True, False)
            return out
        self._corrupt("axpy sum identity violated twice", integrity_report)
        y[:] = ref.ref_axpy(alpha, x64, y0)
        self._verified(integrity_report, t0, True, True)
        return y


class IntegrityDotDriver(_IntegrityWrapper):
    """Reference-compare ABFT around :class:`~repro.blas.level1.DotDriver`."""

    family = "dot"

    def __call__(self, x, y, integrity: Optional[str] = None,
                 integrity_report: Optional[IntegrityReport] = None):
        check = self.integrity.decide(integrity)
        if not check:
            return self._inner(x, y)
        t0 = time.perf_counter_ns()
        x64 = np.asarray(x, dtype=np.float64)
        y64 = np.asarray(y, dtype=np.float64)
        expected = float(x64 @ y64)
        magnitude = float(np.abs(x64) @ np.abs(y64))

        got = self._inner(x, y)
        if _sum_close(float(got), expected, magnitude, x64.size):
            self._verified(integrity_report, t0, False, False)
            return got
        got = self._inner(x, y)
        if _sum_close(float(got), expected, magnitude, x64.size):
            self._verified(integrity_report, t0, True, False)
            return got
        self._corrupt("dot product disagrees with reference twice",
                      integrity_report)
        self._verified(integrity_report, t0, True, True)
        return expected


class IntegrityScalDriver(_IntegrityWrapper):
    """Sum-identity ABFT around :class:`~repro.blas.level1.ScalDriver`."""

    family = "scal"

    def __call__(self, alpha: float, x,
                 integrity: Optional[str] = None,
                 integrity_report: Optional[IntegrityReport] = None):
        check = self.integrity.decide(integrity)
        if not check:
            return self._inner(alpha, x)
        t0 = time.perf_counter_ns()
        x0 = np.array(x, dtype=np.float64)
        expected = alpha * float(x0.sum())
        magnitude = abs(alpha) * float(np.abs(x0).sum())

        out = self._inner(alpha, x)
        if _sum_close(float(np.asarray(out).sum()), expected, magnitude,
                      x0.size):
            self._verified(integrity_report, t0, False, False)
            return out
        x[:] = x0
        out = self._inner(alpha, x)
        if _sum_close(float(np.asarray(out).sum()), expected, magnitude,
                      x0.size):
            self._verified(integrity_report, t0, True, False)
            return out
        self._corrupt("scal sum identity violated twice", integrity_report)
        x[:] = alpha * x0
        self._verified(integrity_report, t0, True, True)
        return x


_WRAPPERS = {
    "gemv": IntegrityGemvDriver,
    "axpy": IntegrityAxpyDriver,
    "dot": IntegrityDotDriver,
    "scal": IntegrityScalDriver,
}


def wrap_driver(family: str, driver, checker: IntegrityChecker):
    """Wrap a built driver with its ABFT check, where one exists.

    Reference-tier drivers are the oracle itself — wrapping them would
    only double the work — and drivers that verify internally
    (``supports_integrity``, i.e. the GEMM driver) pass through.
    """
    if getattr(driver, "tier", "") == "reference":
        return driver
    if getattr(driver, "supports_integrity", False):
        return driver
    cls = _WRAPPERS.get(family)
    return cls(driver, checker) if cls is not None else driver


# ---------------------------------------------------------------------------
# toolchain-free self-test plumbing (CLI + tests)
# ---------------------------------------------------------------------------

def emulated_gemm_driver(threads: int = 1, integrity: str = "full",
                         blocks=None):
    """An emulator-backed :class:`~repro.blas.gemm.GemmDriver`.

    Runs the generated SSE kernel through the bundled emulator — no
    toolchain required — with per-tile ABFT in the requested mode.
    Used by ``python -m repro integrity check`` and the test suite.
    """
    from ..core.framework import Augem
    from ..emu.run import call_items
    from ..isa.arch import GENERIC_SSE
    from .gemm import BlockSizes, GemmDriver

    gk = Augem(arch=GENERIC_SSE).generate_named("gemm")

    class _EmuKernel:
        generated = gk

        def __call__(self, *args):
            return call_items(gk.items, list(args))

    return GemmDriver(_EmuKernel(), blocks=blocks or BlockSizes(mc=8, kc=8,
                                                                nc=8),
                      threads=threads, integrity=integrity)
