"""Level-1 drivers: DAXPY and DDOT around the generated kernels.

The generated kernels run remainder-free over the largest prefix whose
length is a multiple of the unroll factor; the short tail (< unroll
elements) is finished in numpy — the same split a hand-written BLAS does
with its scalar cleanup loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend.runner import AxpyKernel, DotKernel
from ..core.framework import GeneratedKernel


def unroll_of(generated: GeneratedKernel, var: str = "i") -> int:
    for v, factor in generated.config.unroll:
        if v == var:
            return factor
    for v, factor in generated.config.unroll_jam:
        if v == var:
            return factor
    return 1


class AxpyDriver:
    """``y += alpha * x`` (unit stride, float64)."""

    def __init__(self, kernel: AxpyKernel) -> None:
        self.kernel = kernel
        self.unroll = unroll_of(kernel.generated)

    def __call__(self, alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.ascontiguousarray(x, dtype=np.float64)
        if y.dtype != np.float64 or not y.flags.c_contiguous:
            raise ValueError("y must be a contiguous float64 array")
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("x and y must be 1-D arrays of equal length")
        n = len(x)
        main = n - n % self.unroll
        if main:
            self.kernel(main, float(alpha), x, y)
        if main < n:
            y[main:] += alpha * x[main:]
        return y


class DotDriver:
    """``x . y`` (unit stride, float64)."""

    def __init__(self, kernel: DotKernel) -> None:
        self.kernel = kernel
        self.unroll = unroll_of(kernel.generated)

    def __call__(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.ascontiguousarray(x, dtype=np.float64)
        y = np.ascontiguousarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("x and y must be 1-D arrays of equal length")
        n = len(x)
        main = n - n % self.unroll
        total = self.kernel(main, x, y) if main else 0.0
        if main < n:
            total += float(x[main:] @ y[main:])
        return total


class ScalDriver:
    """``x *= alpha`` (unit stride, float64) — extension routine built on
    the mvSCALE template (demonstrates the paper's §7 extensibility)."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.unroll = unroll_of(kernel.generated)

    def __call__(self, alpha: float, x: np.ndarray) -> np.ndarray:
        if x.dtype != np.float64 or not x.flags.c_contiguous:
            raise ValueError("x must be a contiguous float64 array")
        if x.ndim != 1:
            raise ValueError("x must be 1-D")
        n = len(x)
        main = n - n % self.unroll
        if main:
            self.kernel(main, float(alpha), x)
        if main < n:
            x[main:] *= alpha
        return x


def make_scal(arch=None, config=None, schedule: bool = True,
              loader=None) -> ScalDriver:
    from ..backend.runner import load_kernel
    from ..core.framework import Augem

    load = loader or load_kernel
    aug = Augem(arch=arch, schedule=schedule)
    gk = aug.generate_named("scal", config=config)
    return ScalDriver(load("scal", gk))


def make_axpy(arch=None, config=None, schedule: bool = True,
              loader=None) -> AxpyDriver:
    from ..backend.runner import load_kernel
    from ..core.framework import Augem

    load = loader or load_kernel
    aug = Augem(arch=arch, schedule=schedule)
    gk = aug.generate_named("axpy", config=config)
    return AxpyDriver(load("axpy", gk))


def make_dot(arch=None, config=None, schedule: bool = True,
              loader=None) -> DotDriver:
    from ..backend.runner import load_kernel
    from ..core.framework import Augem

    load = loader or load_kernel
    aug = Augem(arch=arch, schedule=schedule)
    gk = aug.generate_named("dot", config=config)
    return DotDriver(load("dot", gk))
