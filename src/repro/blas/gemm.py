"""Blocked DGEMM driver — Goto's GEBP algorithm around the generated
micro-kernel (paper §4.1: "Our GEMM kernel is based on a general
block-partitioned algorithm originally developed by Goto").

The driver:

1. partitions C into Mc x Nc macro-tiles and K into Kc slices (Kc = 256
   in the paper's evaluation), shrinking Mc/Nc when needed so there are
   at least as many tiles as compute threads;
2. packs the A block (alpha folded in during the pack — no scaled copy
   is ever materialized) and the B panel into the layouts the generated
   kernel expects, all through a reusable
   :class:`~repro.blas.threading.PackBufferPool`;
3. runs the remainder-free micro-kernel over every macro-tile — on one
   thread, or partitioned across the persistent
   :class:`~repro.blas.threading.WorkerPool` (BLIS-style jc/ic loop
   parallelism; the ctypes kernel call releases the GIL) — then adds
   each finished tile into the result workspace.

Parallel execution is **bit-identical** to single-threaded execution at
any thread count: each (jc, ic) macro-tile is owned by exactly one task,
its kc-slices run sequentially inside that task, every C element is
accumulated in strictly ascending k order by the kernel, and tiles land
in disjoint regions of the workspace — so no floating-point operation
ever reorders, whatever the scheduling.  B panels are packed once per
(jc, kc) slice by the first task to need them and shared read-only;
A-block packing is per-task into pooled buffers.

``alpha`` scales the packed A block; ``beta`` pre-scales C — the kernel
itself computes pure ``C += A*B`` exactly as in paper Fig. 12.  The
thread count comes from the constructor, a per-call override, or
``$REPRO_THREADS`` (see :func:`~repro.blas.threading.resolve_threads`).
"""

from __future__ import annotations

import threading as _threading
import time as _time
from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

import numpy as np

from ..backend.faults import (InjectedWorkerFault, corrupt_tile,
                              take_fault)
from ..backend.runner import GemmKernel
from ..core.framework import GeneratedKernel
from ..obs import event, incr, span
from ..obs import trace as _trace
from .integrity import STATS as _ISTATS
from .integrity import (IntegrityChecker, IntegrityReport,
                        resolve_integrity, verify_gemm_tile)
from .packing import pack_a, pack_b_dup, pack_b_shuf
from .threading import PackBufferPool, get_pool, resolve_threads


def kernel_multiples(generated: GeneratedKernel) -> tuple:
    """(mu, nu, ku): trip-count multiples the generated kernel requires."""
    mu = nu = ku = 1
    for var, factor in generated.config.unroll_jam:
        if var == "i":
            mu = factor
        elif var == "j":
            nu = factor
    for var, factor in generated.config.unroll:
        if var == "l":
            ku = factor
        elif var == "i":
            mu = max(mu, factor)
        elif var == "j":
            nu = max(nu, factor)
    return mu, nu, ku


def _round_up(x: int, mult: int) -> int:
    return ((x + mult - 1) // mult) * mult


@dataclass
class BlockSizes:
    """Cache-blocking parameters (paper Table 5 guides the defaults;
    empirically re-tuned for the Python-driver overhead profile)."""

    mc: int = 128
    kc: int = 256
    nc: int = 512


def split_for_threads(m: int, n: int, mc: int, nc: int, mu: int, nu: int,
                      threads: int) -> Tuple[int, int]:
    """Shrink (mc, nc) until the (jc, ic) grid has >= ``threads`` tiles.

    Halves the larger blocking dimension first (keeping every size a
    multiple of the kernel's mu/nu), and stops at (mu, nu) — a problem
    smaller than the thread count simply runs on fewer tiles.
    """

    def ntiles(mc_: int, nc_: int) -> int:
        return -(-m // mc_) * -(-n // nc_)

    while ntiles(mc, nc) < threads:
        if nc > nu and (nc >= mc or mc <= mu):
            nc = max(nu, _round_up(nc // 2, nu))
        elif mc > mu:
            mc = max(mu, _round_up(mc // 2, mu))
        else:
            break
    return mc, nc


class _PanelSlot:
    """Once-per-(jc, kc) B panel: first claimant packs, the rest wait."""

    __slots__ = ("event", "buf", "error")

    def __init__(self) -> None:
        self.event = _threading.Event()
        self.buf: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None


class GemmDriver:
    """Reusable DGEMM entry point around one loaded micro-kernel.

    One driver instance is safe to call from many threads concurrently:
    the packing-buffer pool is lock-protected, worker pools are shared
    process-wide, and every call works on private tile buffers.
    """

    #: the serve worker keys per-request ABFT on this marker
    supports_integrity = True

    def __init__(self, kernel: GemmKernel, layout: str = "dup",
                 blocks: Optional[BlockSizes] = None,
                 threads: Optional[int] = None,
                 pack_pool: Optional[PackBufferPool] = None,
                 integrity=None) -> None:
        if layout not in ("dup", "shuf"):
            raise ValueError("layout must be 'dup' or 'shuf'")
        self.kernel = kernel
        self.layout = layout
        self.blocks = blocks or BlockSizes()
        self.threads = resolve_threads(threads)
        self.pack_pool = pack_pool or PackBufferPool()
        self.mu, self.nu, self.ku = kernel_multiples(kernel.generated)
        if isinstance(integrity, IntegrityChecker):
            self.integrity = integrity
        else:
            self.integrity = IntegrityChecker(mode=integrity)

    def __call__(self, a: np.ndarray, b: np.ndarray,
                 c: Optional[np.ndarray] = None,
                 alpha: float = 1.0, beta: float = 0.0,
                 threads: Optional[int] = None,
                 integrity: Optional[str] = None,
                 integrity_report: Optional[IntegrityReport] = None
                 ) -> np.ndarray:
        """``C = alpha * A @ B + beta * C`` for row-major 2-D float64 arrays.

        ``integrity`` overrides the driver's ABFT mode for this call
        (the serve per-request flag); ``integrity_report`` collects the
        per-call verification record.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
        m, k = a.shape
        _, n = b.shape
        out: Optional[np.ndarray] = None
        if c is not None:
            out = np.array(c, dtype=np.float64)
            if out.shape != (m, n):
                raise ValueError(f"C has shape {out.shape}, expected {(m, n)}")
            if beta == 0.0:
                out[:] = 0.0
            elif beta != 1.0:
                out *= beta
        report = integrity_report
        check = self.integrity.decide(integrity)
        if report is not None:
            report.mode = self.integrity.mode if integrity is None \
                else resolve_integrity(integrity)[0]
            report.checked = report.checked or check
        if alpha == 0.0 or k == 0:
            return out if out is not None else np.zeros((m, n))

        nthreads = self.threads if threads is None \
            else resolve_threads(threads)
        bs = self.blocks
        mc = max(_round_up(min(bs.mc, m), self.mu), self.mu)
        nc = max(_round_up(min(bs.nc, n), self.nu), self.nu)
        kc = max(_round_up(min(bs.kc, k), self.ku), self.ku)
        if nthreads > 1:
            mc, nc = split_for_threads(m, n, mc, nc, self.mu, self.nu,
                                       nthreads)

        # exact-size column-major workspace: index (i, j) at j*m + i.
        # Every macro-tile computes into a private pooled scratch and is
        # added into its disjoint workspace slice — parallel tasks never
        # share a written byte, and the sum order per element is fixed.
        work = np.zeros(m * n)
        work_rows = work.reshape(n, m)  # [j, i]

        tiles = []
        for j0 in range(0, n, nc):
            jn = min(nc, n - j0)
            for i0 in range(0, m, mc):
                im = min(mc, m - i0)
                tiles.append((j0, jn, _round_up(jn, self.nu),
                              i0, im, _round_up(im, self.mu)))
        if tiles:
            self._run_tiles(tiles, a, b, work_rows, alpha, k, kc,
                            min(nthreads, len(tiles)), check=check,
                            report=report)

        result = work_rows.T  # (m, n) view, F-contiguous
        if out is None:
            return result
        out += result
        return out

    # -- tile execution ----------------------------------------------------

    def _run_tiles(self, tiles, a, b, work_rows, alpha, k, kc,
                   nthreads, check: bool = False,
                   report: Optional[IntegrityReport] = None) -> None:
        pool = self.pack_pool
        pack_b = pack_b_dup if self.layout == "dup" else pack_b_shuf
        family = "gemm" if self.layout == "dup" else "gemm_shuf"
        panels: Dict[Tuple[int, int], _PanelSlot] = {}
        panel_lock = _threading.Lock()
        # tiles remaining per j-column: when a column drains, its B
        # panels go back to the pool instead of living to call end
        j_remaining: Dict[int, int] = {}
        for tile in tiles:
            j_remaining[tile[0]] = j_remaining.get(tile[0], 0) + 1

        def retire_column(j0: int) -> None:
            to_release = []
            with panel_lock:
                j_remaining[j0] -= 1
                if j_remaining[j0] == 0:
                    for (pj, _pl), slot in panels.items():
                        if pj == j0 and slot.buf is not None:
                            to_release.append(slot.buf)
                            slot.buf = None
            for buf in to_release:
                pool.release(buf)

        def ensure_panel(j0: int, jn: int, jn_pad: int, l0: int, ln: int,
                         ln_pad: int) -> np.ndarray:
            """The shared read-only B panel for (j0, l0); packed once."""
            key = (j0, l0)
            with panel_lock:
                slot = panels.get(key)
                owner = slot is None
                if owner:
                    slot = panels[key] = _PanelSlot()
            if owner:
                try:
                    buf = pool.acquire(ln_pad * jn_pad)
                    try:
                        pack_b(b[l0:l0 + ln, j0:j0 + jn], ln_pad, jn_pad,
                               out=buf)
                    except BaseException:
                        pool.release(buf)
                        raise
                    slot.buf = buf
                except BaseException as exc:  # noqa: BLE001 - rethrown
                    slot.error = exc
                    raise
                finally:
                    slot.event.set()
            else:
                slot.event.wait()
                if slot.error is not None:
                    raise RuntimeError(
                        f"B panel ({j0}, {l0}) packing failed: "
                        f"{slot.error}") from slot.error
            return slot.buf

        checker = self.integrity

        def note(field: str, n: int = 1) -> None:
            _ISTATS.add(field, n)
            incr(f"integrity.{field}", n)
            # the per-call report counts tiles_checked, not raw checks
            if report is not None and field != "checks":
                report.note(field, n)

        def note_overhead(t0: int) -> None:
            dt = _time.perf_counter_ns() - t0
            _ISTATS.add("overhead_ns", dt)
            if report is not None:
                report.note("overhead_ns", dt)

        def compute_tile(j0: int, jn: int, jn_pad: int, i0: int, im: int,
                         im_pad: int, corrupt: bool,
                         shared_panels: bool) -> np.ndarray:
            """Pack and multiply one macro-tile into a pooled buffer.

            The caller owns (and must release) the returned buffer.
            ``shared_panels=False`` repacks B privately — the ABFT
            retry must not reuse a possibly-corrupt shared panel.
            """
            c_buf = pool.acquire(im_pad * jn_pad)
            try:
                c_buf[:] = 0.0
                for l0 in range(0, k, kc):
                    ln = min(kc, k - l0)
                    ln_pad = _round_up(ln, self.ku)
                    b_private: Optional[np.ndarray] = None
                    if shared_panels:
                        b_panel = ensure_panel(j0, jn, jn_pad, l0, ln,
                                               ln_pad)
                    else:
                        b_panel = b_private = pool.acquire(ln_pad * jn_pad)
                    a_buf = pool.acquire(im_pad * ln_pad)
                    try:
                        if b_private is not None:
                            pack_b(b[l0:l0 + ln, j0:j0 + jn], ln_pad,
                                   jn_pad, out=b_private)
                        pack_a(a[i0:i0 + im, l0:l0 + ln], im_pad, ln_pad,
                               out=a_buf, alpha=alpha)
                        self.kernel(im_pad, jn_pad, ln_pad,
                                    a_buf, b_panel, c_buf, im_pad)
                    finally:
                        pool.release(a_buf)
                        if b_private is not None:
                            pool.release(b_private)
                if corrupt:
                    corrupt_tile(c_buf)
                return c_buf
            except BaseException:
                pool.release(c_buf)
                raise

        def resolve_tile(c_buf: np.ndarray, index: int, j0: int, jn: int,
                         jn_pad: int, i0: int, im: int,
                         im_pad: int) -> np.ndarray:
            """The verified (jn, im) tile to add into the workspace.

            Clean tiles return the view into ``c_buf`` (added before
            the caller releases it); the mismatch ladder returns a
            private copy safe to read after any pooled buffer goes
            back.
            """
            t0 = _time.perf_counter_ns()
            a_sub = a[i0:i0 + im, :]
            b_sub = b[:, j0:j0 + jn]
            tile = c_buf.reshape(jn_pad, im_pad)[:jn, :im]
            note("checks")
            if report is not None:
                report.note("tiles_checked")
            if verify_gemm_tile(tile, a_sub, b_sub, alpha):
                note_overhead(t0)
                return tile
            worker = _threading.current_thread().name
            note("mismatches")
            event("integrity.mismatch", family=family, tile=index,
                  j0=j0, i0=i0, worker=worker)
            # rung 1: retry once on freshly zeroed pooled buffers with
            # privately packed panels (heals transient bit-flips and
            # dirty-scratch races; the fault plan is re-consulted so a
            # persistent `corrupt` spec corrupts the retry too)
            note("retries")
            refault = take_fault("thread", tag=family, index=index)
            buf2 = compute_tile(j0, jn, jn_pad, i0, im, im_pad,
                                refault == "corrupt", shared_panels=False)
            try:
                tile2 = buf2.reshape(jn_pad, im_pad)[:jn, :im]
                if verify_gemm_tile(tile2, a_sub, b_sub, alpha):
                    event("integrity.retry_ok", family=family, tile=index,
                          j0=j0, i0=i0)
                    tile2 = np.array(tile2)
                    note_overhead(t0)
                    return tile2
                tile2 = None
            finally:
                pool.release(buf2)
            # rung 2: reference recompute — the caller always receives
            # correct bits, whatever the kernel did
            note("reference_recomputes")
            ref_tile = np.ascontiguousarray((alpha * (a_sub @ b_sub)).T)
            # rung 3: strike the kernel; quarantine + demote at the limit
            verdict = checker.record_corruption(
                family, self.kernel,
                detail=f"tile ({j0},{i0}) mismatched twice on {worker}")
            if report is not None and verdict.get("quarantined"):
                report.quarantine(str(verdict.get("body_hash")))
            note_overhead(t0)
            return ref_tile

        def run_tile(index: int, j0: int, jn: int, jn_pad: int, i0: int,
                     im: int, im_pad: int) -> None:
            fault = take_fault("thread", tag=family, index=index)
            if fault == "worker_die":
                raise InjectedWorkerFault(
                    f"injected worker_die at {family} tile #{index}")
            c_buf = compute_tile(j0, jn, jn_pad, i0, im, im_pad,
                                 fault == "corrupt", shared_panels=True)
            try:
                if check:
                    tile = resolve_tile(c_buf, index, j0, jn, jn_pad,
                                        i0, im, im_pad)
                else:
                    tile = c_buf.reshape(jn_pad, im_pad)[:jn, :im]
                # disjoint slice per tile: concurrent adds never overlap
                work_rows[j0:j0 + jn, i0:i0 + im] += tile
            finally:
                pool.release(c_buf)
            retire_column(j0)

        tasks = [partial(run_tile, idx, *tile)
                 for idx, tile in enumerate(tiles)]
        try:
            if nthreads > 1:
                with span("gemm.parallel", layout=self.layout,
                          threads=nthreads, tiles=len(tiles), k=k) as sp:
                    busy = get_pool(nthreads).run(tasks)
                    if _trace.enabled():
                        sp.set(busy_s=round(sum(busy.values()), 6))
                        incr("gemm.parallel.calls")
                        incr("gemm.parallel.tasks", len(tiles))
                        incr("gemm.parallel.worker_busy",
                             sum(busy.values()))
                        for worker, seconds in sorted(busy.items()):
                            event("gemm.parallel.worker", worker=worker,
                                  busy_s=round(seconds, 6))
            else:
                for task in tasks:
                    task()
        finally:
            # failure path: columns that never drained still hold panels
            with panel_lock:
                leftover = [slot for slot in panels.values()
                            if slot.buf is not None]
                for slot in leftover:
                    buf, slot.buf = slot.buf, None
                    pool.release(buf)


def make_gemm(arch=None, config=None, strategy: str = "auto",
              layout: str = "dup", blocks: Optional[BlockSizes] = None,
              schedule: bool = True, loader=None,
              threads: Optional[int] = None,
              integrity=None) -> GemmDriver:
    """Generate, assemble and wrap a DGEMM for the given (or host) arch.

    ``loader`` replaces :func:`~repro.backend.runner.load_kernel` — the
    dispatch layer passes a quarantine-aware, fault-instrumented loader.
    ``threads`` pins the driver's thread count (default:
    ``$REPRO_THREADS``, else 1); ``integrity`` the ABFT mode or a shared
    :class:`~repro.blas.integrity.IntegrityChecker` (default:
    ``$REPRO_INTEGRITY``, else off).
    """
    from ..backend.runner import load_kernel
    from ..core.framework import Augem

    load = loader or load_kernel
    aug = Augem(arch=arch, schedule=schedule)
    kernel_name = "gemm" if layout == "dup" else "gemm_shuf"
    gk = aug.generate_named(kernel_name, config=config, strategy=strategy)
    native = load(kernel_name, gk)
    return GemmDriver(native, layout=layout, blocks=blocks, threads=threads,
                      integrity=integrity)
