"""Blocked DGEMM driver — Goto's GEBP algorithm around the generated
micro-kernel (paper §4.1: "Our GEMM kernel is based on a general
block-partitioned algorithm originally developed by Goto").

The driver:

1. partitions C into Mc x Nc tiles, K into Kc slices (Kc = 256 in the
   paper's evaluation);
2. packs the A block (alpha folded in) and the B panel into the layouts
   the generated kernel expects;
3. calls the remainder-free micro-kernel on a zero-padded column-major C
   workspace, then adds the result into the caller's matrix.

``alpha`` scales the packed A block; ``beta`` pre-scales C — the kernel
itself computes pure ``C += A*B`` exactly as in paper Fig. 12.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backend.runner import GemmKernel
from ..core.framework import GeneratedKernel
from .packing import pack_a, pack_b_dup, pack_b_shuf


def kernel_multiples(generated: GeneratedKernel) -> tuple:
    """(mu, nu, ku): trip-count multiples the generated kernel requires."""
    mu = nu = ku = 1
    for var, factor in generated.config.unroll_jam:
        if var == "i":
            mu = factor
        elif var == "j":
            nu = factor
    for var, factor in generated.config.unroll:
        if var == "l":
            ku = factor
        elif var == "i":
            mu = max(mu, factor)
        elif var == "j":
            nu = max(nu, factor)
    return mu, nu, ku


def _round_up(x: int, mult: int) -> int:
    return ((x + mult - 1) // mult) * mult


@dataclass
class BlockSizes:
    """Cache-blocking parameters (paper Table 5 guides the defaults;
    empirically re-tuned for the Python-driver overhead profile)."""

    mc: int = 128
    kc: int = 256
    nc: int = 512


class GemmDriver:
    """Reusable DGEMM entry point around one loaded micro-kernel."""

    def __init__(self, kernel: GemmKernel, layout: str = "dup",
                 blocks: Optional[BlockSizes] = None) -> None:
        if layout not in ("dup", "shuf"):
            raise ValueError("layout must be 'dup' or 'shuf'")
        self.kernel = kernel
        self.layout = layout
        self.blocks = blocks or BlockSizes()
        self.mu, self.nu, self.ku = kernel_multiples(kernel.generated)

    def __call__(self, a: np.ndarray, b: np.ndarray,
                 c: Optional[np.ndarray] = None,
                 alpha: float = 1.0, beta: float = 0.0) -> np.ndarray:
        """``C = alpha * A @ B + beta * C`` for row-major 2-D float64 arrays."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
        m, k = a.shape
        _, n = b.shape
        out: Optional[np.ndarray] = None
        if c is not None:
            out = np.array(c, dtype=np.float64)
            if out.shape != (m, n):
                raise ValueError(f"C has shape {out.shape}, expected {(m, n)}")
            if beta == 0.0:
                out[:] = 0.0
            elif beta != 1.0:
                out *= beta
        if alpha == 0.0 or k == 0:
            return out if out is not None else np.zeros((m, n))

        bs = self.blocks
        mc = max(_round_up(min(bs.mc, m), self.mu), self.mu)
        nc = max(_round_up(min(bs.nc, n), self.nu), self.nu)
        kc = max(_round_up(min(bs.kc, k), self.ku), self.ku)

        # exact-size column-major workspace: index (i, j) at j*m + i.
        # Interior tiles are written directly by the kernel; only edge tiles
        # (where a trip count needs padding) go through a small scratch.
        work = np.zeros(m * n)
        work_rows = work.reshape(n, m)  # [j, i]

        pack_b = pack_b_dup if self.layout == "dup" else pack_b_shuf
        for j0 in range(0, n, nc):
            jn = min(nc, n - j0)
            jn_pad = _round_up(jn, self.nu)
            b_cache = {}
            for i0 in range(0, m, mc):
                im = min(mc, m - i0)
                im_pad = _round_up(im, self.mu)
                edge = (im_pad != im) or (jn_pad != jn)
                if edge:
                    tile = np.zeros(im_pad * jn_pad)
                    target, ldc = tile, im_pad
                else:
                    target, ldc = work[j0 * m + i0:], m
                for l0 in range(0, k, kc):
                    ln = min(kc, k - l0)
                    ln_pad = _round_up(ln, self.ku)
                    b_panel = b_cache.get(l0)
                    if b_panel is None:
                        b_panel = pack_b(b[l0:l0 + ln, j0:j0 + jn],
                                         ln_pad, jn_pad)
                        b_cache[l0] = b_panel
                    a_block = a[i0:i0 + im, l0:l0 + ln]
                    if alpha != 1.0:
                        a_block = a_block * alpha
                    a_panel = pack_a(a_block, im_pad, ln_pad)
                    self.kernel(im_pad, jn_pad, ln_pad,
                                a_panel, b_panel, target, ldc)
                if edge:
                    work_rows[j0:j0 + jn, i0:i0 + im] += (
                        tile.reshape(jn_pad, im_pad)[:jn, :im]
                    )
        result = work_rows.T  # (m, n) view, F-contiguous
        if out is None:
            return result
        out += result
        return out


def make_gemm(arch=None, config=None, strategy: str = "auto",
              layout: str = "dup", blocks: Optional[BlockSizes] = None,
              schedule: bool = True, loader=None) -> GemmDriver:
    """Generate, assemble and wrap a DGEMM for the given (or host) arch.

    ``loader`` replaces :func:`~repro.backend.runner.load_kernel` — the
    dispatch layer passes a quarantine-aware, fault-instrumented loader.
    """
    from ..backend.runner import load_kernel
    from ..core.framework import Augem

    load = loader or load_kernel
    aug = Augem(arch=arch, schedule=schedule)
    kernel_name = "gemm" if layout == "dup" else "gemm_shuf"
    gk = aug.generate_named(kernel_name, config=config, strategy=strategy)
    native = load(kernel_name, gk)
    return GemmDriver(native, layout=layout, blocks=blocks)
