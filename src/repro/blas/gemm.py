"""Blocked DGEMM driver — Goto's GEBP algorithm around the generated
micro-kernel (paper §4.1: "Our GEMM kernel is based on a general
block-partitioned algorithm originally developed by Goto").

The driver:

1. partitions C into Mc x Nc macro-tiles and K into Kc slices (Kc = 256
   in the paper's evaluation), shrinking Mc/Nc when needed so there are
   at least as many tiles as compute threads;
2. packs the A block (alpha folded in during the pack — no scaled copy
   is ever materialized) and the B panel into the layouts the generated
   kernel expects, all through a reusable
   :class:`~repro.blas.threading.PackBufferPool`;
3. runs the remainder-free micro-kernel over every macro-tile — on one
   thread, or partitioned across the persistent
   :class:`~repro.blas.threading.WorkerPool` (BLIS-style jc/ic loop
   parallelism; the ctypes kernel call releases the GIL) — then adds
   each finished tile into the result workspace.

Parallel execution is **bit-identical** to single-threaded execution at
any thread count: each (jc, ic) macro-tile is owned by exactly one task,
its kc-slices run sequentially inside that task, every C element is
accumulated in strictly ascending k order by the kernel, and tiles land
in disjoint regions of the workspace — so no floating-point operation
ever reorders, whatever the scheduling.  B panels are packed once per
(jc, kc) slice by the first task to need them and shared read-only;
A-block packing is per-task into pooled buffers.

``alpha`` scales the packed A block; ``beta`` pre-scales C — the kernel
itself computes pure ``C += A*B`` exactly as in paper Fig. 12.  The
thread count comes from the constructor, a per-call override, or
``$REPRO_THREADS`` (see :func:`~repro.blas.threading.resolve_threads`).
"""

from __future__ import annotations

import threading as _threading
from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

import numpy as np

from ..backend.faults import InjectedWorkerFault, take_fault
from ..backend.runner import GemmKernel
from ..core.framework import GeneratedKernel
from ..obs import event, incr, span
from ..obs import trace as _trace
from .packing import pack_a, pack_b_dup, pack_b_shuf
from .threading import PackBufferPool, get_pool, resolve_threads


def kernel_multiples(generated: GeneratedKernel) -> tuple:
    """(mu, nu, ku): trip-count multiples the generated kernel requires."""
    mu = nu = ku = 1
    for var, factor in generated.config.unroll_jam:
        if var == "i":
            mu = factor
        elif var == "j":
            nu = factor
    for var, factor in generated.config.unroll:
        if var == "l":
            ku = factor
        elif var == "i":
            mu = max(mu, factor)
        elif var == "j":
            nu = max(nu, factor)
    return mu, nu, ku


def _round_up(x: int, mult: int) -> int:
    return ((x + mult - 1) // mult) * mult


@dataclass
class BlockSizes:
    """Cache-blocking parameters (paper Table 5 guides the defaults;
    empirically re-tuned for the Python-driver overhead profile)."""

    mc: int = 128
    kc: int = 256
    nc: int = 512


def split_for_threads(m: int, n: int, mc: int, nc: int, mu: int, nu: int,
                      threads: int) -> Tuple[int, int]:
    """Shrink (mc, nc) until the (jc, ic) grid has >= ``threads`` tiles.

    Halves the larger blocking dimension first (keeping every size a
    multiple of the kernel's mu/nu), and stops at (mu, nu) — a problem
    smaller than the thread count simply runs on fewer tiles.
    """

    def ntiles(mc_: int, nc_: int) -> int:
        return -(-m // mc_) * -(-n // nc_)

    while ntiles(mc, nc) < threads:
        if nc > nu and (nc >= mc or mc <= mu):
            nc = max(nu, _round_up(nc // 2, nu))
        elif mc > mu:
            mc = max(mu, _round_up(mc // 2, mu))
        else:
            break
    return mc, nc


class _PanelSlot:
    """Once-per-(jc, kc) B panel: first claimant packs, the rest wait."""

    __slots__ = ("event", "buf", "error")

    def __init__(self) -> None:
        self.event = _threading.Event()
        self.buf: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None


class GemmDriver:
    """Reusable DGEMM entry point around one loaded micro-kernel.

    One driver instance is safe to call from many threads concurrently:
    the packing-buffer pool is lock-protected, worker pools are shared
    process-wide, and every call works on private tile buffers.
    """

    def __init__(self, kernel: GemmKernel, layout: str = "dup",
                 blocks: Optional[BlockSizes] = None,
                 threads: Optional[int] = None,
                 pack_pool: Optional[PackBufferPool] = None) -> None:
        if layout not in ("dup", "shuf"):
            raise ValueError("layout must be 'dup' or 'shuf'")
        self.kernel = kernel
        self.layout = layout
        self.blocks = blocks or BlockSizes()
        self.threads = resolve_threads(threads)
        self.pack_pool = pack_pool or PackBufferPool()
        self.mu, self.nu, self.ku = kernel_multiples(kernel.generated)

    def __call__(self, a: np.ndarray, b: np.ndarray,
                 c: Optional[np.ndarray] = None,
                 alpha: float = 1.0, beta: float = 0.0,
                 threads: Optional[int] = None) -> np.ndarray:
        """``C = alpha * A @ B + beta * C`` for row-major 2-D float64 arrays."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
        m, k = a.shape
        _, n = b.shape
        out: Optional[np.ndarray] = None
        if c is not None:
            out = np.array(c, dtype=np.float64)
            if out.shape != (m, n):
                raise ValueError(f"C has shape {out.shape}, expected {(m, n)}")
            if beta == 0.0:
                out[:] = 0.0
            elif beta != 1.0:
                out *= beta
        if alpha == 0.0 or k == 0:
            return out if out is not None else np.zeros((m, n))

        nthreads = self.threads if threads is None \
            else resolve_threads(threads)
        bs = self.blocks
        mc = max(_round_up(min(bs.mc, m), self.mu), self.mu)
        nc = max(_round_up(min(bs.nc, n), self.nu), self.nu)
        kc = max(_round_up(min(bs.kc, k), self.ku), self.ku)
        if nthreads > 1:
            mc, nc = split_for_threads(m, n, mc, nc, self.mu, self.nu,
                                       nthreads)

        # exact-size column-major workspace: index (i, j) at j*m + i.
        # Every macro-tile computes into a private pooled scratch and is
        # added into its disjoint workspace slice — parallel tasks never
        # share a written byte, and the sum order per element is fixed.
        work = np.zeros(m * n)
        work_rows = work.reshape(n, m)  # [j, i]

        tiles = []
        for j0 in range(0, n, nc):
            jn = min(nc, n - j0)
            for i0 in range(0, m, mc):
                im = min(mc, m - i0)
                tiles.append((j0, jn, _round_up(jn, self.nu),
                              i0, im, _round_up(im, self.mu)))
        if tiles:
            self._run_tiles(tiles, a, b, work_rows, alpha, k, kc,
                            min(nthreads, len(tiles)))

        result = work_rows.T  # (m, n) view, F-contiguous
        if out is None:
            return result
        out += result
        return out

    # -- tile execution ----------------------------------------------------

    def _run_tiles(self, tiles, a, b, work_rows, alpha, k, kc,
                   nthreads) -> None:
        pool = self.pack_pool
        pack_b = pack_b_dup if self.layout == "dup" else pack_b_shuf
        family = "gemm" if self.layout == "dup" else "gemm_shuf"
        panels: Dict[Tuple[int, int], _PanelSlot] = {}
        panel_lock = _threading.Lock()
        # tiles remaining per j-column: when a column drains, its B
        # panels go back to the pool instead of living to call end
        j_remaining: Dict[int, int] = {}
        for tile in tiles:
            j_remaining[tile[0]] = j_remaining.get(tile[0], 0) + 1

        def retire_column(j0: int) -> None:
            to_release = []
            with panel_lock:
                j_remaining[j0] -= 1
                if j_remaining[j0] == 0:
                    for (pj, _pl), slot in panels.items():
                        if pj == j0 and slot.buf is not None:
                            to_release.append(slot.buf)
                            slot.buf = None
            for buf in to_release:
                pool.release(buf)

        def ensure_panel(j0: int, jn: int, jn_pad: int, l0: int, ln: int,
                         ln_pad: int) -> np.ndarray:
            """The shared read-only B panel for (j0, l0); packed once."""
            key = (j0, l0)
            with panel_lock:
                slot = panels.get(key)
                owner = slot is None
                if owner:
                    slot = panels[key] = _PanelSlot()
            if owner:
                try:
                    buf = pool.acquire(ln_pad * jn_pad)
                    try:
                        pack_b(b[l0:l0 + ln, j0:j0 + jn], ln_pad, jn_pad,
                               out=buf)
                    except BaseException:
                        pool.release(buf)
                        raise
                    slot.buf = buf
                except BaseException as exc:  # noqa: BLE001 - rethrown
                    slot.error = exc
                    raise
                finally:
                    slot.event.set()
            else:
                slot.event.wait()
                if slot.error is not None:
                    raise RuntimeError(
                        f"B panel ({j0}, {l0}) packing failed: "
                        f"{slot.error}") from slot.error
            return slot.buf

        def run_tile(index: int, j0: int, jn: int, jn_pad: int, i0: int,
                     im: int, im_pad: int) -> None:
            if take_fault("thread", tag=family, index=index) == "worker_die":
                raise InjectedWorkerFault(
                    f"injected worker_die at {family} tile #{index}")
            c_buf = pool.acquire(im_pad * jn_pad)
            try:
                c_buf[:] = 0.0
                for l0 in range(0, k, kc):
                    ln = min(kc, k - l0)
                    ln_pad = _round_up(ln, self.ku)
                    b_panel = ensure_panel(j0, jn, jn_pad, l0, ln, ln_pad)
                    a_buf = pool.acquire(im_pad * ln_pad)
                    try:
                        pack_a(a[i0:i0 + im, l0:l0 + ln], im_pad, ln_pad,
                               out=a_buf, alpha=alpha)
                        self.kernel(im_pad, jn_pad, ln_pad,
                                    a_buf, b_panel, c_buf, im_pad)
                    finally:
                        pool.release(a_buf)
                # disjoint slice per tile: concurrent adds never overlap
                work_rows[j0:j0 + jn, i0:i0 + im] += (
                    c_buf.reshape(jn_pad, im_pad)[:jn, :im])
            finally:
                pool.release(c_buf)
            retire_column(j0)

        tasks = [partial(run_tile, idx, *tile)
                 for idx, tile in enumerate(tiles)]
        try:
            if nthreads > 1:
                with span("gemm.parallel", layout=self.layout,
                          threads=nthreads, tiles=len(tiles), k=k) as sp:
                    busy = get_pool(nthreads).run(tasks)
                    if _trace.enabled():
                        sp.set(busy_s=round(sum(busy.values()), 6))
                        incr("gemm.parallel.calls")
                        incr("gemm.parallel.tasks", len(tiles))
                        incr("gemm.parallel.worker_busy",
                             sum(busy.values()))
                        for worker, seconds in sorted(busy.items()):
                            event("gemm.parallel.worker", worker=worker,
                                  busy_s=round(seconds, 6))
            else:
                for task in tasks:
                    task()
        finally:
            # failure path: columns that never drained still hold panels
            with panel_lock:
                leftover = [slot for slot in panels.values()
                            if slot.buf is not None]
                for slot in leftover:
                    buf, slot.buf = slot.buf, None
                    pool.release(buf)


def make_gemm(arch=None, config=None, strategy: str = "auto",
              layout: str = "dup", blocks: Optional[BlockSizes] = None,
              schedule: bool = True, loader=None,
              threads: Optional[int] = None) -> GemmDriver:
    """Generate, assemble and wrap a DGEMM for the given (or host) arch.

    ``loader`` replaces :func:`~repro.backend.runner.load_kernel` — the
    dispatch layer passes a quarantine-aware, fault-instrumented loader.
    ``threads`` pins the driver's thread count (default:
    ``$REPRO_THREADS``, else 1).
    """
    from ..backend.runner import load_kernel
    from ..core.framework import Augem

    load = loader or load_kernel
    aug = Augem(arch=arch, schedule=schedule)
    kernel_name = "gemm" if layout == "dup" else "gemm_shuf"
    gk = aug.generate_named(kernel_name, config=config, strategy=strategy)
    native = load(kernel_name, gk)
    return GemmDriver(native, layout=layout, blocks=blocks, threads=threads)
