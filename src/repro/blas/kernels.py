"""Simple-C kernel sources — the *inputs* to the AUGEM pipeline.

These are the paper's Figs. 12 (GEMM), 15 (GEMV), 16 (AXPY), 17 (DOT),
written in the C subset the mini-POET parser accepts.  The blocking drivers
in :mod:`repro.blas` call the *generated* kernels on packed panels, so the
index expressions here describe packed-panel layouts:

- ``gemm`` (paper Fig. 12 layout, drives the *Vdup* vectorization method):
  A packed Kc x Mc with ``A[l*Mc + i]`` (row of Mc contiguous per l),
  B packed Nc x Kc with ``B[j*Kc + l]`` (column per j), C row chunk with
  leading dimension LDC.
- ``gemm_shuf`` (B packed j-fastest, drives the *Shuf* method): B packed
  Kc x Nc with ``B[l*Nc + j]`` so consecutive j elements are contiguous
  and can be loaded with a single vector load then shuffled.
- ``gemv`` (column-sweep, y += A(:,i) * x[i]): A column-major with leading
  dimension LDA.
- ``axpy`` / ``dot``: classic Level-1 loops.

All kernels use unit increments and double precision (the paper evaluates
DGEMM/DGEMV/DAXPY/DDOT); alpha/beta handling lives in the drivers.
"""

from __future__ import annotations

GEMM_SIMPLE_C = """
void dgemm_kernel(long Mc, long Nc, long Kc, double* A, double* B, double* C, long LDC) {
    long i;
    long j;
    long l;
    for (j = 0; j < Nc; j += 1) {
        for (i = 0; i < Mc; i += 1) {
            double res = 0.0;
            for (l = 0; l < Kc; l += 1) {
                res += A[l * Mc + i] * B[j * Kc + l];
            }
            C[j * LDC + i] += res;
        }
    }
}
"""

GEMM_SHUF_SIMPLE_C = """
void dgemm_kernel(long Mc, long Nc, long Kc, double* A, double* B, double* C, long LDC) {
    long i;
    long j;
    long l;
    for (j = 0; j < Nc; j += 1) {
        for (i = 0; i < Mc; i += 1) {
            double res = 0.0;
            for (l = 0; l < Kc; l += 1) {
                res += A[l * Mc + i] * B[l * Nc + j];
            }
            C[j * LDC + i] += res;
        }
    }
}
"""

GEMV_SIMPLE_C = """
void dgemv_kernel(long M, long N, double* A, long LDA, double* X, double* Y) {
    long i;
    long j;
    for (i = 0; i < N; i += 1) {
        double scal = X[i];
        for (j = 0; j < M; j += 1) {
            Y[j] += A[i * LDA + j] * scal;
        }
    }
}
"""

#: dot-form GEMV (y[i] += row_i . x): the non-transposed variant for
#: row-major matrices — each row reduction uses the DOT machinery
#: (paired mmUnrolledCOMP + sumREDUCE), the update is an mmSTORE.
GEMV_N_SIMPLE_C = """
void dgemv_n_kernel(long M, long N, double* A, long LDA, double* X, double* Y) {
    long i;
    long j;
    for (i = 0; i < M; i += 1) {
        double res = 0.0;
        for (j = 0; j < N; j += 1) {
            res += A[i * LDA + j] * X[j];
        }
        Y[i] += res;
    }
}
"""

AXPY_SIMPLE_C = """
void daxpy_kernel(long N, double alpha, double* X, double* Y) {
    long i;
    for (i = 0; i < N; i += 1) {
        Y[i] += X[i] * alpha;
    }
}
"""

#: DSCAL — not one of the paper's four kernels; included to demonstrate
#: §7's "extending our template-based approach": the mvSCALE template
#: (Load-Mul-Store) was added exactly the way the paper prescribes.
SCAL_SIMPLE_C = """
void dscal_kernel(long N, double alpha, double* X) {
    long i;
    for (i = 0; i < N; i += 1) {
        X[i] = X[i] * alpha;
    }
}
"""

DOT_SIMPLE_C = """
double ddot_kernel(long N, double* X, double* Y) {
    long i;
    double res = 0.0;
    for (i = 0; i < N; i += 1) {
        res += X[i] * Y[i];
    }
    return res;
}
"""

#: kernel name -> (source, entry function name)
KERNEL_SOURCES = {
    "gemm": (GEMM_SIMPLE_C, "dgemm_kernel"),
    "gemm_shuf": (GEMM_SHUF_SIMPLE_C, "dgemm_kernel"),
    "gemv": (GEMV_SIMPLE_C, "dgemv_kernel"),
    "gemv_n": (GEMV_N_SIMPLE_C, "dgemv_n_kernel"),
    "axpy": (AXPY_SIMPLE_C, "daxpy_kernel"),
    "dot": (DOT_SIMPLE_C, "ddot_kernel"),
    "scal": (SCAL_SIMPLE_C, "dscal_kernel"),
}
