"""Pure-numpy reference semantics for every routine — the test oracle."""

from __future__ import annotations

import numpy as np


def ref_gemm(a, b, c=None, alpha=1.0, beta=0.0):
    out = alpha * (np.asarray(a) @ np.asarray(b))
    if c is not None and beta != 0.0:
        out = out + beta * np.asarray(c)
    return out


def ref_gemv(a, x, y=None, alpha=1.0, beta=0.0, trans=False):
    a = np.asarray(a)
    op = a.T if trans else a
    out = alpha * (op @ np.asarray(x))
    if y is not None and beta != 0.0:
        out = out + beta * np.asarray(y)
    return out


def ref_axpy(alpha, x, y):
    return np.asarray(y) + alpha * np.asarray(x)


def ref_dot(x, y):
    return float(np.asarray(x) @ np.asarray(y))


def ref_symm(a, b, c=None, alpha=1.0, beta=0.0):
    a = np.asarray(a)
    full = np.tril(a) + np.tril(a, -1).T
    return ref_gemm(full, b, c, alpha, beta)


def ref_syrk(a, c=None, alpha=1.0, beta=0.0):
    a = np.asarray(a)
    full = alpha * (a @ a.T)
    n = a.shape[0]
    out = np.zeros((n, n)) if c is None else np.array(c, dtype=np.float64)
    mask = np.tril(np.ones((n, n), dtype=bool))
    base = out[mask] * beta if beta != 0.0 else 0.0
    out[mask] = base + full[mask]
    return out


def ref_syr2k(a, b, c=None, alpha=1.0, beta=0.0):
    a = np.asarray(a)
    b = np.asarray(b)
    full = alpha * (a @ b.T + b @ a.T)
    n = a.shape[0]
    out = np.zeros((n, n)) if c is None else np.array(c, dtype=np.float64)
    mask = np.tril(np.ones((n, n), dtype=bool))
    base = out[mask] * beta if beta != 0.0 else 0.0
    out[mask] = base + full[mask]
    return out


def ref_trmm(l, b, alpha=1.0):
    return alpha * (np.tril(np.asarray(l)) @ np.asarray(b))


def ref_trsm(l, b, alpha=1.0):
    import numpy.linalg as la

    lo = np.tril(np.asarray(l))
    return alpha * la.solve(lo, np.asarray(b))


def ref_ger(alpha, x, y, a):
    return np.asarray(a) + alpha * np.outer(x, y)
