"""Pure-numpy reference semantics for every routine — the test oracle.

Besides the plain ``ref_*`` oracle functions, this module provides
**driver-shaped wrappers** (``Reference*Driver``) that mirror the calling
conventions and mutation semantics of the native drivers in
:mod:`repro.blas.gemm` / :mod:`repro.blas.gemv` /
:mod:`repro.blas.level1`, so the dispatch layer can install them as the
terminal tier of the fallback chain and :class:`~repro.blas.level3.Level3`
/ :class:`~repro.blas.ger.GerDriver` compose on top transparently.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def ref_gemm(a, b, c=None, alpha=1.0, beta=0.0):
    out = alpha * (np.asarray(a) @ np.asarray(b))
    if c is not None and beta != 0.0:
        out = out + beta * np.asarray(c)
    return out


def ref_gemv(a, x, y=None, alpha=1.0, beta=0.0, trans=False):
    a = np.asarray(a)
    op = a.T if trans else a
    out = alpha * (op @ np.asarray(x))
    if y is not None and beta != 0.0:
        out = out + beta * np.asarray(y)
    return out


def ref_axpy(alpha, x, y):
    return np.asarray(y) + alpha * np.asarray(x)


def ref_dot(x, y):
    return float(np.asarray(x) @ np.asarray(y))


def ref_symm(a, b, c=None, alpha=1.0, beta=0.0):
    a = np.asarray(a)
    full = np.tril(a) + np.tril(a, -1).T
    return ref_gemm(full, b, c, alpha, beta)


def ref_syrk(a, c=None, alpha=1.0, beta=0.0):
    a = np.asarray(a)
    full = alpha * (a @ a.T)
    n = a.shape[0]
    out = np.zeros((n, n)) if c is None else np.array(c, dtype=np.float64)
    mask = np.tril(np.ones((n, n), dtype=bool))
    base = out[mask] * beta if beta != 0.0 else 0.0
    out[mask] = base + full[mask]
    return out


def ref_syr2k(a, b, c=None, alpha=1.0, beta=0.0):
    a = np.asarray(a)
    b = np.asarray(b)
    full = alpha * (a @ b.T + b @ a.T)
    n = a.shape[0]
    out = np.zeros((n, n)) if c is None else np.array(c, dtype=np.float64)
    mask = np.tril(np.ones((n, n), dtype=bool))
    base = out[mask] * beta if beta != 0.0 else 0.0
    out[mask] = base + full[mask]
    return out


def ref_trmm(l, b, alpha=1.0):
    return alpha * (np.tril(np.asarray(l)) @ np.asarray(b))


def ref_trsm(l, b, alpha=1.0):
    import numpy.linalg as la

    lo = np.tril(np.asarray(l))
    return alpha * la.solve(lo, np.asarray(b))


def ref_ger(alpha, x, y, a):
    return np.asarray(a) + alpha * np.outer(x, y)


# ---------------------------------------------------------------------------
# Driver-shaped wrappers (the dispatch chain's reference tier)
# ---------------------------------------------------------------------------

class ReferenceGemmDriver:
    """Drop-in for :class:`~repro.blas.gemm.GemmDriver` backed by numpy."""

    tier = "reference"

    def __call__(self, a, b, c=None, alpha: float = 1.0,
                 beta: float = 0.0) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
        out = alpha * (a @ b)
        if c is not None:
            c = np.asarray(c, dtype=np.float64)
            if c.shape != out.shape:
                raise ValueError(f"C has shape {c.shape}, "
                                 f"expected {out.shape}")
            if beta != 0.0:
                out = out + beta * c
        return out


class ReferenceGemvDriver:
    """Drop-in for :class:`~repro.blas.gemv.GemvDriver` backed by numpy."""

    tier = "reference"

    def __call__(self, a, x, y=None, alpha: float = 1.0, beta: float = 0.0,
                 trans: bool = False) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        if a.ndim != 2 or x.ndim != 1:
            raise ValueError("A must be 2-D and x 1-D")
        op = a.T if trans else a
        if x.shape[0] != op.shape[1]:
            raise ValueError("x length does not match A")
        out = alpha * (op @ x)
        if y is not None and beta != 0.0:
            out = out + beta * np.asarray(y, dtype=np.float64)
        return out


class ReferenceAxpyDriver:
    """Drop-in for :class:`~repro.blas.level1.AxpyDriver` (mutates y)."""

    tier = "reference"

    def __call__(self, alpha: float, x: np.ndarray,
                 y: np.ndarray) -> np.ndarray:
        x = np.ascontiguousarray(x, dtype=np.float64)
        if y.dtype != np.float64 or not y.flags.c_contiguous:
            raise ValueError("y must be a contiguous float64 array")
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("x and y must be 1-D arrays of equal length")
        y += alpha * x
        return y


class ReferenceDotDriver:
    """Drop-in for :class:`~repro.blas.level1.DotDriver`."""

    tier = "reference"

    def __call__(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.ascontiguousarray(x, dtype=np.float64)
        y = np.ascontiguousarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("x and y must be 1-D arrays of equal length")
        return float(x @ y)


class ReferenceScalDriver:
    """Drop-in for :class:`~repro.blas.level1.ScalDriver` (mutates x)."""

    tier = "reference"

    def __call__(self, alpha: float, x: np.ndarray) -> np.ndarray:
        if x.dtype != np.float64 or not x.flags.c_contiguous:
            raise ValueError("x must be a contiguous float64 array")
        if x.ndim != 1:
            raise ValueError("x must be 1-D")
        x *= alpha
        return x
