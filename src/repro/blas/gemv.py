"""DGEMV driver around the generated kernels.

Two generated kernels cover both orientations for row-major matrices:

- **column-sweep kernel** (paper Fig. 15): ``Y[j] += A[i*LDA+j] * X[i]``
  — on a row-major buffer this computes ``y += Aᵀ x`` (``trans=True``);
- **dot-form kernel** (``gemv_n``): ``Y[i] += row_i · X`` — rows are
  contiguous, so this is the native ``y += A x`` path (``trans=False``);
  each row reduction reuses the DOT machinery (paired mmUnrolledCOMP +
  sumREDUCE) and the update is an mmSTORE.

Edge handling: each kernel requires its *inner* trip count to be a
multiple of the unroll factor; the driver runs the aligned prefix through
the kernel and finishes the tail in numpy — the scalar cleanup loop of a
hand-written BLAS.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend.runner import GemvKernel
from .level1 import unroll_of


class GemvDriver:
    """``y = beta*y + alpha * op(A) @ x``."""

    def __init__(self, kernel_t: GemvKernel,
                 kernel_n: Optional[GemvKernel] = None) -> None:
        self.kernel_t = kernel_t
        self.kernel_n = kernel_n
        self.unroll_t = unroll_of(kernel_t.generated, "j")
        self.unroll_n = (unroll_of(kernel_n.generated, "j")
                         if kernel_n is not None else 1)

    def __call__(self, a: np.ndarray, x: np.ndarray,
                 y: Optional[np.ndarray] = None, alpha: float = 1.0,
                 beta: float = 0.0, trans: bool = False) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        x = np.ascontiguousarray(x, dtype=np.float64)
        if a.ndim != 2 or x.ndim != 1:
            raise ValueError("A must be 2-D and x 1-D")
        m, n = a.shape
        out_len = n if trans else m
        if len(x) != (m if trans else n):
            raise ValueError("x length does not match A")
        out = np.zeros(out_len) if y is None else np.array(y, dtype=np.float64)
        if beta == 0.0:
            out[:] = 0.0
        elif beta != 1.0:
            out *= beta

        if trans:
            self._gemv_t(a, x, out, alpha)
        elif self.kernel_n is not None and a.flags.c_contiguous:
            self._gemv_n(a, x, out, alpha)
        else:  # fall back through the transposed buffer
            self._gemv_t(np.ascontiguousarray(a.T), x, out, alpha)
        return out

    def _gemv_t(self, buf: np.ndarray, x: np.ndarray, out: np.ndarray,
                alpha: float) -> None:
        """column-sweep: out[j] += sum_i buf[i, j] * x[i]."""
        sweep, out_len = buf.shape
        lda = buf.shape[1]
        xs = x if alpha == 1.0 else alpha * x
        main = out_len - out_len % self.unroll_t
        if main:
            self.kernel_t(main, sweep, buf, lda, xs, out)
        if main < out_len:
            out[main:] += buf[:, main:].T @ xs

    def _gemv_n(self, a: np.ndarray, x: np.ndarray, out: np.ndarray,
                alpha: float) -> None:
        """dot-form: out[i] += row_i . x."""
        m, n = a.shape
        xs = x if alpha == 1.0 else alpha * x
        main = n - n % self.unroll_n
        if main:
            self.kernel_n(m, main, a, n, xs, out)
        if main < n:
            out += a[:, main:] @ xs[main:]


def make_gemv(arch=None, config=None, config_n=None,
              schedule: bool = True, loader=None) -> GemvDriver:
    from ..backend.runner import load_kernel
    from ..core.framework import Augem

    load = loader or load_kernel
    aug = Augem(arch=arch, schedule=schedule)
    gk_t = aug.generate_named("gemv", config=config)
    gk_n = aug.generate_named("gemv_n", config=config_n)
    return GemvDriver(load("gemv", gk_t), load("gemv_n", gk_n))
