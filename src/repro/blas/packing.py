"""Panel packing for the blocked GEMM driver (Goto's GEBP decomposition).

The generated micro-kernel (paper Fig. 12) indexes *packed* panels:

- ``A[l*Mc + i]`` — the A block transposed so each l-slice holds Mc
  contiguous elements (i fastest);
- ``B[j*Kc + l]`` — the "dup" layout: one contiguous Kc column per j;
- ``B[l*Nc + j]`` — the "shuf" layout: one contiguous Nc row per l.

All packers accept arbitrary (even non-contiguous) float64 2-D inputs and
zero-pad to the requested panel dimensions, so the driver can run the
remainder-free micro-kernel over every edge block.

Every packer takes an optional ``out`` — a flat float64 buffer of exactly
the panel's element count (typically lent by
:class:`~repro.blas.threading.PackBufferPool`) — and writes in place
without allocating; padding regions are re-zeroed explicitly, so a dirty
reused buffer is safe.  ``pack_a`` additionally folds ``alpha`` into the
panel (``np.multiply`` straight into the destination view), which is how
the driver applies ``alpha * A @ B`` without materializing a scaled copy
of the A block per tile.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _panel(out: Optional[np.ndarray], rows: int, cols: int) -> np.ndarray:
    """A (rows, cols) float64 view over ``out`` (or a fresh zero panel)."""
    if out is None:
        return np.zeros((rows, cols))
    if out.dtype != np.float64 or out.size != rows * cols:
        raise ValueError(
            f"out buffer has {out.size} x {out.dtype} elements; panel "
            f"needs {rows * cols} x float64")
    return out.reshape(rows, cols)


def pack_a(block: np.ndarray, mc: int, kc: int,
           out: Optional[np.ndarray] = None,
           alpha: float = 1.0) -> np.ndarray:
    """Pack an A block (rows x k) into ``A[l*mc + i]``, zero-padded,
    with ``alpha`` folded in."""
    rows, k = block.shape
    if rows > mc or k > kc:
        raise ValueError(f"block {block.shape} exceeds panel ({mc}, {kc})")
    panel = _panel(out, kc, mc)
    if out is not None:
        panel[k:, :] = 0.0
        panel[:k, rows:] = 0.0
    if alpha == 1.0:
        panel[:k, :rows] = block.T
    else:
        np.multiply(block.T, alpha, out=panel[:k, :rows])
    return panel.ravel() if out is None else out


def pack_b_dup(block: np.ndarray, kc: int, nc: int,
               out: Optional[np.ndarray] = None) -> np.ndarray:
    """Pack a B block (k x cols) into ``B[j*kc + l]`` (column-per-j)."""
    k, cols = block.shape
    if k > kc or cols > nc:
        raise ValueError(f"block {block.shape} exceeds panel ({kc}, {nc})")
    panel = _panel(out, nc, kc)
    if out is not None:
        panel[cols:, :] = 0.0
        panel[:cols, k:] = 0.0
    panel[:cols, :k] = block.T
    return panel.ravel() if out is None else out


def pack_b_shuf(block: np.ndarray, kc: int, nc: int,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """Pack a B block (k x cols) into ``B[l*nc + j]`` (row-per-l)."""
    k, cols = block.shape
    if k > kc or cols > nc:
        raise ValueError(f"block {block.shape} exceeds panel ({kc}, {nc})")
    panel = _panel(out, kc, nc)
    if out is not None:
        panel[k:, :] = 0.0
        panel[:k, cols:] = 0.0
    panel[:k, :cols] = block
    return panel.ravel() if out is None else out


def unpack_a(packed: np.ndarray, mc: int, kc: int) -> np.ndarray:
    """Inverse of :func:`pack_a` (testing helper): returns (mc, kc)."""
    return packed.reshape(kc, mc).T.copy()


def unpack_b_dup(packed: np.ndarray, kc: int, nc: int) -> np.ndarray:
    """Inverse of :func:`pack_b_dup`: returns (kc, nc)."""
    return packed.reshape(nc, kc).T.copy()


def unpack_b_shuf(packed: np.ndarray, kc: int, nc: int) -> np.ndarray:
    """Inverse of :func:`pack_b_shuf`: returns (kc, nc)."""
    return packed.reshape(kc, nc).copy()
