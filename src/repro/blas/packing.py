"""Panel packing for the blocked GEMM driver (Goto's GEBP decomposition).

The generated micro-kernel (paper Fig. 12) indexes *packed* panels:

- ``A[l*Mc + i]`` — the A block transposed so each l-slice holds Mc
  contiguous elements (i fastest);
- ``B[j*Kc + l]`` — the "dup" layout: one contiguous Kc column per j;
- ``B[l*Nc + j]`` — the "shuf" layout: one contiguous Nc row per l.

All packers accept arbitrary (even non-contiguous) float64 2-D inputs and
zero-pad to the requested panel dimensions, so the driver can run the
remainder-free micro-kernel over every edge block.
"""

from __future__ import annotations

import numpy as np


def pack_a(block: np.ndarray, mc: int, kc: int) -> np.ndarray:
    """Pack an A block (rows x k) into ``A[l*mc + i]`` with zero padding."""
    rows, k = block.shape
    if rows > mc or k > kc:
        raise ValueError(f"block {block.shape} exceeds panel ({mc}, {kc})")
    out = np.zeros((kc, mc))
    out[:k, :rows] = block.T
    return out.ravel()


def pack_b_dup(block: np.ndarray, kc: int, nc: int) -> np.ndarray:
    """Pack a B block (k x cols) into ``B[j*kc + l]`` (column-per-j)."""
    k, cols = block.shape
    if k > kc or cols > nc:
        raise ValueError(f"block {block.shape} exceeds panel ({kc}, {nc})")
    out = np.zeros((nc, kc))
    out[:cols, :k] = block.T
    return out.ravel()


def pack_b_shuf(block: np.ndarray, kc: int, nc: int) -> np.ndarray:
    """Pack a B block (k x cols) into ``B[l*nc + j]`` (row-per-l)."""
    k, cols = block.shape
    if k > kc or cols > nc:
        raise ValueError(f"block {block.shape} exceeds panel ({kc}, {nc})")
    out = np.zeros((kc, nc))
    out[:k, :cols] = block
    return out.ravel()


def unpack_a(packed: np.ndarray, mc: int, kc: int) -> np.ndarray:
    """Inverse of :func:`pack_a` (testing helper): returns (mc, kc)."""
    return packed.reshape(kc, mc).T.copy()


def unpack_b_dup(packed: np.ndarray, kc: int, nc: int) -> np.ndarray:
    """Inverse of :func:`pack_b_dup`: returns (kc, nc)."""
    return packed.reshape(nc, kc).T.copy()


def unpack_b_shuf(packed: np.ndarray, kc: int, nc: int) -> np.ndarray:
    """Inverse of :func:`pack_b_shuf`: returns (kc, nc)."""
    return packed.reshape(kc, nc).copy()
