"""Verified ISA dispatch and kernel admission — the hardened runtime.

The paper's end product is a *library*; serving one safely requires the
last-mile guarantees BLIS-style stacks give their users.  This module
implements them as an ordered **capability chain**

    FMA3 (haswell) → AVX (sandybridge) → SSE (generic_sse) → reference

with two verification gates in front of every installed routine:

1. **ISA probe** — before a native tier may serve anything, a tiny
   generated AXPY kernel for that arch is assembled and *executed* in the
   fork-isolated sandbox (:mod:`repro.backend.sandbox`).  A cpuinfo lie
   (SIGILL), a broken toolchain (:class:`ToolchainError`), or a garbage
   result demotes the whole tier instead of crashing the caller.  Probe
   verdicts are memoized per process.

2. **Admission check** — every routine built for a verified tier runs a
   small differential conformance probe against
   :mod:`repro.blas.reference` (sandboxed, ULP-bounded, traced as
   ``dispatch.admit`` spans) before the driver is installed.  Failures
   demote the routine to the next tier and record the kernel in the
   persistent quarantine store under the same content-addressed key the
   tuner uses (:func:`repro.core.framework.quarantine_key`), so a
   crasher is never re-executed on a later run — and a candidate
   quarantined during *tuning* is never silently loaded by the facade.

The terminal reference tier is pure numpy and always admissible, so a
hardened :class:`~repro.blas.api.AugemBLAS` can always serve a
numerically correct answer — degraded, never wrong.

``$REPRO_FORCE_ARCH`` pins the top of the chain; the special value
``reference`` collapses the chain to the numpy tier alone.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..backend import fsio
from ..backend.cache import get_cache
from ..backend.compiler import ToolchainError
from ..backend.faults import inject_asm_fault, take_fault
from ..backend.runner import NativeKernel, load_kernel
from ..backend.sandbox import resolve_isolation, run_trial
from ..core.framework import Augem, quarantine_key
from ..isa.arch import (ALL_ARCHS, GENERIC_SSE, SANDYBRIDGE, ArchSpec,
                        detect_host, forced_arch_name)
from ..obs import event, incr, span
from . import reference as ref
from .level1 import unroll_of

#: max acceptable elementwise error, in units of the reference result's
#: ULP, for an admission probe (generous: blocked summation reorders)
ADMIT_ULP_BOUND = 512.0

#: wall-clock budget for one sandboxed probe/admission run
PROBE_TIMEOUT = 30.0

REFERENCE_TIER_NAME = "reference"


@dataclass(frozen=True)
class Tier:
    """One rung of the capability ladder (``arch=None`` ⇒ pure numpy)."""

    name: str
    arch: Optional[ArchSpec]

    @property
    def is_reference(self) -> bool:
        return self.arch is None

    def describe(self) -> str:
        if self.is_reference:
            return "pure-numpy reference semantics (always available)"
        return self.arch.description or str(self.arch)


REFERENCE_TIER = Tier(REFERENCE_TIER_NAME, None)


def _rank(arch: ArchSpec) -> int:
    """Capability rank: FMA > AVX > SSE."""
    if arch.has_fma:
        return 3
    if arch.simd == "avx":
        return 2
    return 1


def capability_chain(top: Optional[ArchSpec] = None) -> List[Tier]:
    """The ordered fallback chain starting at (and including) ``top``.

    Standard lower tiers (sandybridge, generic_sse) with strictly lower
    capability rank follow the top spec; the chain always terminates in
    the reference tier.
    """
    top = top or detect_host()
    specs = [top] + [a for a in (SANDYBRIDGE, GENERIC_SSE)
                     if _rank(a) < _rank(top)]
    return [Tier(a.name, a) for a in specs] + [REFERENCE_TIER]


def default_chain() -> List[Tier]:
    """Chain for the detected host, honoring ``$REPRO_FORCE_ARCH``."""
    if forced_arch_name() == REFERENCE_TIER_NAME:
        return [REFERENCE_TIER]
    return capability_chain(detect_host())


class KernelRejected(RuntimeError):
    """A kernel failed its admission check or is quarantined."""


@dataclass
class RoutineDispatch:
    """How one routine ended up being served."""

    family: str
    tier: str
    demoted: bool = False
    attempts: List[str] = field(default_factory=list)

    def describe(self) -> str:
        trail = f" (after: {'; '.join(self.attempts)})" if self.attempts \
            else ""
        return f"{self.family}: served by {self.tier}{trail}"


# Process-wide memos.  ISA probe verdicts hold for the machine, not one
# chain instance; admission verdicts are keyed by kernel content so a
# second AugemBLAS does not re-fork for identical code.  Both dicts are
# guarded by one lock: two threads racing the first probe must not fork
# the sandbox twice (and the winner's verdict must be visible to the
# loser), so the probe itself executes under the lock.
_TIER_VERDICTS: Dict[str, Tuple[bool, str]] = {}
_ADMITTED: Dict[str, float] = {}
_VERDICT_LOCK = threading.RLock()
_PROBES_RUN = 0
_VERDICTS_REVISION = 0

#: on-disk verdict store schema version (see save/load_tier_verdicts);
#: v2 added the toolchain fingerprint key
VERDICT_STORE_VERSION = 2


def reset_dispatch_state() -> None:
    """Forget memoized probe/admission verdicts (tests)."""
    global _PROBES_RUN, _VERDICTS_REVISION
    with _VERDICT_LOCK:
        _TIER_VERDICTS.clear()
        _ADMITTED.clear()
        _PROBES_RUN = 0
        _VERDICTS_REVISION = 0


def probes_executed() -> int:
    """How many sandboxed ISA probes this process has actually run."""
    return _PROBES_RUN


def verdicts_revision() -> int:
    """Bumped on every tier-verdict write (probe or runtime demotion).

    The serve worker persists the store whenever this moves, so an
    integrity demotion survives a supervisor restart just like a probe
    verdict does.
    """
    return _VERDICTS_REVISION


def _bump_revision() -> None:
    global _VERDICTS_REVISION
    _VERDICTS_REVISION += 1


def demote_tier(arch_name: str, reason: str) -> bool:
    """Force-fail a tier's verdict for the remainder of the process.

    The integrity layer (:mod:`repro.blas.integrity`) calls this when a
    kernel on the tier keeps producing corrupt results after passing
    admission: trust in the whole tier is gone, so every *future*
    routine build walks past it.  Returns True if the verdict changed.
    """
    if arch_name not in ALL_ARCHS:
        return False
    with _VERDICT_LOCK:
        current = _TIER_VERDICTS.get(arch_name)
        if current is not None and not current[0]:
            return False  # already demoted
        _TIER_VERDICTS[arch_name] = (False, str(reason)[:300])
        _bump_revision()
    incr("dispatch.demotion")
    event("dispatch.demotion", tier=arch_name, stage="integrity",
          error=str(reason)[:200])
    return True


def _toolchain_fingerprint() -> str:
    """The verdict store's toolchain key (``none`` without a compiler).

    Probe and admission verdicts embed toolchain behavior — a compiler
    upgrade must invalidate them rather than silently reuse them.
    """
    from ..backend.compiler import ToolchainError, cc_fingerprint, find_cc
    try:
        return cc_fingerprint(find_cc())
    except ToolchainError:
        return "none"


def save_tier_verdicts(path: Union[str, Path]) -> int:
    """Persist this process's probe verdicts for warm restarts.

    The serve worker (:mod:`repro.serve.server`) calls this so a
    supervisor-restarted worker inherits the machine's probe outcomes
    from disk instead of re-forking sandboxed probes.  Returns how many
    verdicts were written; failures degrade silently (the store is an
    optimization, never a correctness dependency).
    """
    with _VERDICT_LOCK:
        verdicts = {name: list(v) for name, v in _TIER_VERDICTS.items()}
    if not verdicts:
        return 0
    path = Path(path)
    if fsio.disk_degraded() is not None:
        return 0  # in-memory-only mode: verdicts stay memoized in-process
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fsio.atomic_write_json(path, {"version": VERDICT_STORE_VERSION,
                                      "toolchain": _toolchain_fingerprint(),
                                      "verdicts": verdicts},
                               tag="dispatch.verdicts")
    except OSError:
        return 0
    return len(verdicts)


def load_tier_verdicts(path: Union[str, Path]) -> int:
    """Preload persisted probe verdicts (absent entries only).

    Returns how many verdicts were adopted.  A live probe this process
    already ran always wins over the disk record, and a store written
    under a different toolchain (or schema version) is ignored
    wholesale — stale verdicts must be re-proved, not trusted.
    """
    try:
        record = json.loads(Path(path).read_text())
        if record.get("version") != VERDICT_STORE_VERSION:
            return 0
        if record.get("toolchain") != _toolchain_fingerprint():
            return 0
        verdicts = record["verdicts"]
    except (OSError, ValueError, KeyError, TypeError):
        return 0
    adopted = 0
    with _VERDICT_LOCK:
        for name, verdict in verdicts.items():
            try:
                ok, detail = bool(verdict[0]), str(verdict[1])
            except (TypeError, IndexError):
                continue
            if name in ALL_ARCHS and name not in _TIER_VERDICTS:
                _TIER_VERDICTS[name] = (ok, detail)
                adopted += 1
        if adopted:
            _bump_revision()
    return adopted


def tier_verdict(tier: Tier) -> Optional[Tuple[bool, str]]:
    """The memoized probe verdict for ``tier``, if one exists."""
    if tier.is_reference:
        return (True, "always available")
    return _TIER_VERDICTS.get(tier.arch.name)


# ---------------------------------------------------------------------------
# deterministic probe data (no RNG: probes must be reproducible)
# ---------------------------------------------------------------------------

def _probe_matrix(m: int, n: int) -> np.ndarray:
    return np.sin(0.7 * np.arange(m * n, dtype=np.float64) + 1.0) \
        .reshape(m, n)


def _probe_vector(n: int) -> np.ndarray:
    return np.cos(0.3 * np.arange(n, dtype=np.float64) - 0.5)


def ulp_error(got: np.ndarray, expected: np.ndarray) -> float:
    """Max elementwise error in units of the expected value's ULP."""
    got = np.asarray(got, dtype=np.float64).ravel()
    expected = np.asarray(expected, dtype=np.float64).ravel()
    if got.shape != expected.shape:
        return float("inf")
    if got.size == 0:
        return 0.0
    scale = np.spacing(np.maximum(np.abs(expected), 1.0))
    return float(np.max(np.abs(got - expected) / scale))


def _routine_probe(family: str, driver) -> Callable[[], float]:
    """A closure exercising ``driver`` end-to-end on awkward shapes and
    returning its ULP error against the reference oracle."""
    if family in ("gemm", "gemm_shuf"):
        a, b, c = _probe_matrix(17, 23), _probe_matrix(23, 13), \
            _probe_matrix(17, 13)

        def probe() -> float:
            got = driver(a, b, c, alpha=1.25, beta=0.5)
            return ulp_error(got, ref.ref_gemm(a, b, c, 1.25, 0.5))
    elif family == "gemv":
        a, x_n, x_t, y = _probe_matrix(13, 9), _probe_vector(9), \
            _probe_vector(13), _probe_vector(13)

        def probe() -> float:
            got_n = driver(a, x_n, y, alpha=1.25, beta=0.5, trans=False)
            got_t = driver(a, x_t, alpha=-0.75, trans=True)
            return max(
                ulp_error(got_n, ref.ref_gemv(a, x_n, y, 1.25, 0.5)),
                ulp_error(got_t, ref.ref_gemv(a, x_t, alpha=-0.75,
                                              trans=True)))
    elif family == "axpy":
        x, y0 = _probe_vector(131), _probe_vector(131) + 2.0

        def probe() -> float:
            y = y0.copy()
            driver(1.5, x, y)
            return ulp_error(y, ref.ref_axpy(1.5, x, y0))
    elif family == "dot":
        x, y = _probe_vector(131), _probe_vector(131) + 1.0

        def probe() -> float:
            return ulp_error(np.array([driver(x, y)]),
                             np.array([ref.ref_dot(x, y)]))
    elif family == "scal":
        x0 = _probe_vector(131)

        def probe() -> float:
            x = x0.copy()
            driver(-2.25, x)
            return ulp_error(x, -2.25 * x0)
    else:
        raise KeyError(f"no admission probe for kernel family {family!r}")
    return probe


#: reference drivers installed for the terminal tier, per family
_REFERENCE_FACTORIES = {
    "gemm": ref.ReferenceGemmDriver,
    "gemm_shuf": ref.ReferenceGemmDriver,
    "gemv": ref.ReferenceGemvDriver,
    "axpy": ref.ReferenceAxpyDriver,
    "dot": ref.ReferenceDotDriver,
    "scal": ref.ReferenceScalDriver,
}


class DispatchChain:
    """Builds verified, admitted drivers down a capability chain."""

    def __init__(self, top: Optional[ArchSpec] = None,
                 isolation: Optional[str] = None,
                 probe_timeout: float = PROBE_TIMEOUT,
                 ulp_bound: float = ADMIT_ULP_BOUND) -> None:
        if top is None:
            self.tiers = default_chain()
        else:
            self.tiers = capability_chain(top)
        self.isolation = resolve_isolation(isolation)
        self.probe_timeout = probe_timeout
        self.ulp_bound = ulp_bound
        # monotonically increasing index for take_fault("asm", index=...):
        # the n-th kernel this chain builds, mirroring the tuner's
        # candidate-index semantics so REPRO_FAULT_INJECT='segv@#0'
        # faults exactly the first build (the ISA probe)
        self._build_index = 0

    @property
    def top(self) -> Tier:
        return self.tiers[0]

    # -- kernel loading (fault hook + quarantine consult) -----------------
    def _instrument(self, gk):
        index = self._build_index
        self._build_index += 1
        fault = take_fault("asm", tag=gk.name, index=index)
        if fault is not None:
            gk = replace(gk, asm_text=inject_asm_fault(fault, gk.asm_text,
                                                       gk.name))
        return gk

    def _loader_for(self, tier: Tier):
        """A ``load_kernel`` replacement that consults the quarantine
        store before dlopen and collects what it loads for admission."""
        built: List[NativeKernel] = []

        def loader(family: str, gk) -> NativeKernel:
            gk = self._instrument(gk)
            qkey = quarantine_key(family, tier.arch, gk)
            qrec = get_cache().load_quarantine(qkey)
            if qrec is not None:
                why = qrec.get("error") or "known-crashing kernel"
                incr("dispatch.quarantine_hit")
                raise KernelRejected(
                    f"kernel {gk.name} ({family}, {tier.name}) is "
                    f"quarantined: {why}"[:300])
            native = load_kernel(family, gk)
            native.dispatch_qkey = qkey
            built.append(native)
            return native

        return loader, built

    # -- gate 1: ISA probe -------------------------------------------------
    def verify_tier(self, tier: Tier) -> bool:
        """Whether ``tier`` may serve (memoized probe execution).

        Thread-safe: concurrent first callers serialize on the verdict
        lock, exactly one executes the sandboxed probe, and the rest
        observe its memoized verdict.
        """
        if tier.is_reference:
            return True
        cached = _TIER_VERDICTS.get(tier.arch.name)
        if cached is not None:
            return cached[0]
        with _VERDICT_LOCK:
            cached = _TIER_VERDICTS.get(tier.arch.name)
            if cached is not None:
                return cached[0]
            ok, detail = self._probe_tier(tier)
            _TIER_VERDICTS[tier.arch.name] = (ok, detail)
            _bump_revision()
        if not ok:
            incr("dispatch.demotion")
            event("dispatch.demotion", tier=tier.name, stage="probe",
                  error=detail[:200])
        return ok

    def _probe_tier(self, tier: Tier) -> Tuple[bool, str]:
        """Generate, assemble, and *execute* a tiny AXPY for the tier."""
        global _PROBES_RUN
        _PROBES_RUN += 1
        with span("dispatch.probe", tier=tier.name) as sp:
            try:
                aug = Augem(arch=tier.arch)
                gk = aug.generate_named(
                    "axpy", name=f"isa_probe_{tier.arch.name}")
                gk = self._instrument(gk)
                native = load_kernel("axpy", gk)
            except ToolchainError as exc:
                detail = f"toolchain: {exc}"[:300]
                sp.set(verdict="toolchain", error=detail)
                return False, detail
            except Exception as exc:  # noqa: BLE001 - any failure demotes
                detail = f"{type(exc).__name__}: {exc}"[:300]
                sp.set(verdict="failed", error=detail)
                return False, detail

            n = 8 * unroll_of(gk)
            x = np.arange(1.0, n + 1.0)
            y0 = np.full(n, 2.0)

            def run_probe() -> bool:
                y = y0.copy()
                native(n, 1.5, x, y)
                err = ulp_error(y, y0 + 1.5 * x)
                if err > 4.0:
                    raise RuntimeError(
                        f"probe result wrong ({err:.1f} ULPs)")
                return True

            res = run_trial(run_probe, isolation=self.isolation,
                            timeout=self.probe_timeout,
                            tag=f"isa-probe-{tier.name}")
            if res.ok:
                sp.set(verdict="ok")
                incr("dispatch.probe_ok")
                return True, "ok"
            detail = f"{res.category}: {res.error}"[:300]
            sp.set(verdict=res.category, error=res.error)
            return False, detail

    # -- gate 2: admission -------------------------------------------------
    def admit(self, family: str, tier: Tier, driver,
              kernels: List[NativeKernel]) -> None:
        """Differential conformance of the built routine vs reference.

        Raises :class:`KernelRejected` (after quarantining the offending
        kernels) when the sandboxed probe crashes, hangs, or exceeds the
        ULP bound.
        """
        hashes = sorted(k.generated.content_hash for k in kernels)
        memo_key = "\x1f".join([family, tier.name] + hashes)
        with _VERDICT_LOCK:
            if memo_key in _ADMITTED:
                return
        probe = _routine_probe(family, driver)
        with span("dispatch.admit", family=family, tier=tier.name) as sp:
            res = run_trial(probe, isolation=self.isolation,
                            timeout=self.probe_timeout,
                            tag=f"admit-{family}-{tier.name}")
            if res.ok:
                ulp = float(res.value)
                if ulp <= self.ulp_bound:
                    sp.set(verdict="ok", ulp=round(ulp, 2))
                    with _VERDICT_LOCK:
                        _ADMITTED[memo_key] = ulp
                    incr("dispatch.admission")
                    return
                verdict = "rejected"
                error = (f"ULP error {ulp:.1f} exceeds admission bound "
                         f"{self.ulp_bound:g}")
            else:
                verdict, error = res.category, res.error or res.category
            sp.set(verdict=verdict, error=error)
        cache = get_cache()
        for kernel in kernels:
            qkey = getattr(kernel, "dispatch_qkey", None)
            if qkey:
                cache.store_quarantine(qkey, {
                    "kernel": family,
                    "arch": tier.name,
                    "candidate": kernel.generated.name,
                    "category": verdict,
                    "error": str(error)[:300],
                })
        raise KernelRejected(
            f"{family} failed admission on tier {tier.name}: {error}")

    # -- routine construction ---------------------------------------------
    def build_routine(self, family: str,
                      builder: Callable[[Tier, Callable], object],
                      reference_factory: Optional[Callable] = None):
        """Walk the chain top-down until a tier serves ``family``.

        ``builder(tier, loader)`` must construct the driver using
        ``loader`` for every kernel it loads.  Returns
        ``(driver, RoutineDispatch)``; the terminal reference tier cannot
        fail, so this always returns.
        """
        if reference_factory is None:
            reference_factory = _REFERENCE_FACTORIES[family]
        attempts: List[str] = []
        for i, tier in enumerate(self.tiers):
            if tier.is_reference:
                driver = reference_factory()
                if i > 0:
                    incr("dispatch.reference_install")
                return driver, RoutineDispatch(family, tier.name,
                                               demoted=i > 0,
                                               attempts=attempts)
            if not self.verify_tier(tier):
                _, detail = _TIER_VERDICTS[tier.arch.name]
                attempts.append(f"{tier.name}: ISA probe failed ({detail})")
                continue
            loader, built = self._loader_for(tier)
            try:
                with span("dispatch.build", family=family, tier=tier.name):
                    driver = builder(tier, loader)
                self.admit(family, tier, driver, built)
            except (KernelRejected, ToolchainError) as exc:
                attempts.append(f"{tier.name}: {exc}"[:300])
                incr("dispatch.demotion")
                event("dispatch.demotion", family=family, tier=tier.name,
                      stage="admit", error=str(exc)[:200])
                continue
            except Exception as exc:  # noqa: BLE001 - generation failure
                attempts.append(
                    f"{tier.name}: {type(exc).__name__}: {exc}"[:300])
                incr("dispatch.demotion")
                event("dispatch.demotion", family=family, tier=tier.name,
                      stage="build", error=str(exc)[:200])
                continue
            return driver, RoutineDispatch(family, tier.name,
                                           demoted=i > 0,
                                           attempts=attempts)
        raise RuntimeError(  # unreachable: chain ends in reference
            f"no tier could serve {family!r}: {'; '.join(attempts)}")
