"""Thread-pool plumbing for the parallel GEBP driver.

Two pieces, both process-wide and deliberately boring:

- :class:`WorkerPool` — a persistent pool of daemon threads executing
  macro-tile tasks.  Python threads are enough here because the hot work
  (the generated micro-kernel behind a ctypes call, and numpy packing
  ufuncs) releases the GIL; the interpreter only serializes the thin
  driver logic between kernel calls.  Pools are keyed by size and reused
  across GEMM calls (:func:`get_pool`), so steady-state calls never pay
  thread start-up.

- :class:`PackBufferPool` — reusable packing buffers keyed by element
  count.  Packing cost is the known remaining distance to library-grade
  GEMM ("Automating the Last-Mile"), and a large part of that cost in a
  Python driver is allocator churn: without pooling every macro-tile
  allocates fresh A/B/C panels.  The pool lends flat float64 buffers,
  guards against handing one buffer to two concurrent borrowers (an
  aliasing bug here silently corrupts results), and keeps hit/miss/
  allocation counters that tests and traces can watch plateau.

``REPRO_THREADS`` selects the default thread count for every driver that
does not pin one explicitly (``auto`` = one per CPU); see
:func:`resolve_threads`.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..obs import incr

#: environment variable naming the default GEMM thread count
THREADS_ENV = "REPRO_THREADS"


def resolve_threads(threads: Optional[int] = None,
                    environ=os.environ) -> int:
    """The effective thread count: explicit > ``$REPRO_THREADS`` > 1.

    An explicit non-positive or non-integer value raises; a malformed
    environment value degrades to single-threaded (an env typo must
    never change results — and cannot, by design — nor crash a library
    call).  ``REPRO_THREADS=auto`` means one thread per CPU.
    """
    if threads is not None:
        n = int(threads)
        if n < 1:
            raise ValueError(f"threads must be >= 1, got {threads!r}")
        return n
    raw = environ.get(THREADS_ENV, "").strip().lower()
    if not raw:
        return 1
    if raw == "auto":
        return max(1, os.cpu_count() or 1)
    try:
        n = int(raw)
    except ValueError:
        return 1
    return max(1, n)


class PoolAliasError(RuntimeError):
    """The buffer pool was asked to lend one buffer twice concurrently."""


class PackBufferPool:
    """Reusable flat float64 buffers for packed panels, keyed by size.

    ``acquire`` returns a C-contiguous 1-D array of exactly ``size``
    elements (contents unspecified — packers overwrite every element,
    padding included); ``release`` returns it for reuse.  The pool keeps
    at most ``max_free_per_size`` spares per size so pathological shape
    churn cannot hoard memory, and it tracks every outstanding buffer by
    identity: double-lending or double-releasing raises
    :class:`PoolAliasError` instead of corrupting a concurrent caller.
    """

    def __init__(self, max_free_per_size: int = 32) -> None:
        self.max_free_per_size = max_free_per_size
        self._lock = threading.Lock()
        self._free: Dict[int, List[np.ndarray]] = {}
        self._outstanding: Dict[int, int] = {}  # id(buf) -> size
        self.hits = 0
        self.misses = 0
        self.allocations = 0
        self.allocated_bytes = 0
        with _POOLS_LOCK:
            _BUFFER_POOLS.add(self)

    @property
    def outstanding(self) -> int:
        """Buffers currently lent out (0 = every borrower cleaned up)."""
        with self._lock:
            return len(self._outstanding)

    def acquire(self, size: int) -> np.ndarray:
        size = int(size)
        with self._lock:
            free = self._free.get(size)
            if free:
                buf = free.pop()
                self.hits += 1
                incr("gemm.pack_pool.hit")
            else:
                buf = None
                self.misses += 1
                self.allocations += 1
                self.allocated_bytes += size * 8
                incr("gemm.pack_pool.miss")
            if buf is not None and id(buf) in self._outstanding:
                raise PoolAliasError(
                    f"buffer of size {size} lent twice concurrently")
            if buf is None:
                buf = np.empty(size)
            self._outstanding[id(buf)] = size
        return buf

    def release(self, buf: np.ndarray) -> None:
        with self._lock:
            size = self._outstanding.pop(id(buf), None)
            if size is None:
                raise PoolAliasError(
                    "released a buffer the pool did not lend (or released "
                    "it twice)")
            free = self._free.setdefault(size, [])
            if len(free) < self.max_free_per_size:
                free.append(buf)

    def drain_free(self) -> int:
        """Drop every cached spare buffer; returns bytes released.

        Outstanding (lent) buffers are untouched — borrowers still
        release them normally, they just won't be pooled afterwards
        until re-acquired.  Called on serve worker drain/shutdown so
        packing scratch does not leak across supervisor restarts.
        """
        with self._lock:
            released = sum(buf.size * 8 for bufs in self._free.values()
                           for buf in bufs)
            self._free.clear()
        return released

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "allocations": self.allocations,
                "allocated_bytes": self.allocated_bytes,
                "outstanding": len(self._outstanding),
            }


class _Batch:
    """One GEMM call's worth of tasks moving through a shared pool."""

    __slots__ = ("tasks", "lock", "done", "next_index", "finished",
                 "errors", "cancelled", "busy")

    def __init__(self, tasks: Sequence[Callable[[], None]]) -> None:
        self.tasks = list(tasks)
        self.lock = threading.Lock()
        self.done = threading.Event()
        self.next_index = 0
        self.finished = 0
        self.errors: Dict[int, BaseException] = {}
        self.cancelled = False
        self.busy: Dict[str, float] = {}

    def claim(self) -> int:
        """Next unclaimed task index, or -1 when none remain."""
        with self.lock:
            if self.cancelled or self.next_index >= len(self.tasks):
                return -1
            index = self.next_index
            self.next_index += 1
            return index

    def complete(self, index: int, worker: str, elapsed: float,
                 error: Optional[BaseException]) -> None:
        with self.lock:
            self.finished += 1
            self.busy[worker] = self.busy.get(worker, 0.0) + elapsed
            if error is not None:
                self.errors[index] = error
                self.cancelled = True
            remaining = len(self.tasks) - self.finished
            # cancelled batches finish when every *claimed* task has
            # reported; unclaimed ones are counted as finished here
            if self.cancelled:
                unclaimed = len(self.tasks) - self.next_index
                self.finished += unclaimed
                self.next_index = len(self.tasks)
                remaining = len(self.tasks) - self.finished
            if remaining <= 0:
                self.done.set()

    def first_error(self) -> Optional[BaseException]:
        with self.lock:
            if not self.errors:
                return None
            return self.errors[min(self.errors)]


class WorkerPool:
    """``workers`` persistent daemon threads draining macro-tile batches.

    Threads are started lazily on the first :meth:`run` and live for the
    process.  The *calling* thread also works the batch, so a pool of
    size N applies N+0 compute threads when idle callers submit (the
    caller is one of the N; see :func:`get_pool`, which sizes pools at
    ``threads - 1``).
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(0, int(workers))
        self._queue: "List[_Batch]" = []
        self._cv = threading.Condition()
        self._started = False

    def _ensure_started(self) -> None:
        if self._started:
            return
        with self._cv:
            if self._started:
                return
            for i in range(self.workers):
                t = threading.Thread(target=self._worker_loop,
                                     args=(f"gemm-worker-{i}",),
                                     name=f"gemm-worker-{i}", daemon=True)
                t.start()
            self._started = True

    def _worker_loop(self, name: str) -> None:
        while True:
            with self._cv:
                while not self._queue:
                    self._cv.wait()
                batch = self._queue[0]
                index = batch.claim()
                if index < 0:
                    # batch drained (or cancelled): retire it if still
                    # at the head, then look again
                    if self._queue and self._queue[0] is batch:
                        self._queue.pop(0)
                    continue
            self._run_one(batch, index, name)

    @staticmethod
    def _run_one(batch: _Batch, index: int, worker: str) -> None:
        t0 = time.perf_counter()
        error: Optional[BaseException] = None
        try:
            batch.tasks[index]()
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            error = exc
        batch.complete(index, worker, time.perf_counter() - t0, error)

    def run(self, tasks: Sequence[Callable[[], None]]) -> Dict[str, float]:
        """Execute every task; the caller participates as a worker.

        Returns per-worker busy seconds.  If any task raises, the
        remaining unclaimed tasks are skipped, every claimed task is
        awaited, and the error of the lowest-indexed failing task is
        re-raised (deterministic regardless of scheduling).
        """
        if not tasks:
            return {}
        self._ensure_started()
        batch = _Batch(tasks)
        with self._cv:
            self._queue.append(batch)
            self._cv.notify_all()
        caller = threading.current_thread().name
        while True:
            with self._cv:
                index = batch.claim()
            if index < 0:
                break
            self._run_one(batch, index, caller)
        batch.done.wait()
        with self._cv:
            if batch in self._queue:
                self._queue.remove(batch)
        error = batch.first_error()
        if error is not None:
            raise error
        return dict(batch.busy)


_POOLS: Dict[int, WorkerPool] = {}
_POOLS_LOCK = threading.Lock()
#: every live PackBufferPool, so reset_pools() can drain their spares
_BUFFER_POOLS: "weakref.WeakSet[PackBufferPool]" = weakref.WeakSet()


def get_pool(threads: int) -> WorkerPool:
    """The shared process-wide pool serving ``threads``-way GEMM calls.

    The pool holds ``threads - 1`` threads because the calling thread
    works the batch too.  Pools persist for the process and are shared
    by every driver asking for the same thread count.
    """
    workers = max(0, int(threads) - 1)
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = _POOLS[workers] = WorkerPool(workers)
        return pool


def reset_pools() -> int:
    """Forget the shared worker pools and drain every buffer pool.

    Existing worker threads die idle.  Every live
    :class:`PackBufferPool` drops its cached spare buffers (packing and
    integrity scratch), so a draining serve worker releases the memory
    instead of leaking it across supervisor restarts.  Returns the
    number of buffer bytes released.
    """
    with _POOLS_LOCK:
        _POOLS.clear()
        pools = list(_BUFFER_POOLS)
    return sum(pool.drain_free() for pool in pools)
