"""DGER (rank-1 update) cast on the generated AXPY kernel.

``A += alpha * x yᵀ`` for a row-major A: row i receives ``(alpha*x[i]) *
y`` — one AXPY per row, exactly how the paper's higher-level routines
"invoke optimized Level-1 kernels ... to obtain high performance" (§4.4).
"""

from __future__ import annotations

import numpy as np

from .level1 import AxpyDriver


class GerDriver:
    """``A = A + alpha * outer(x, y)``."""

    def __init__(self, axpy: AxpyDriver) -> None:
        self.axpy = axpy

    def __call__(self, alpha: float, x: np.ndarray, y: np.ndarray,
                 a: np.ndarray) -> np.ndarray:
        if a.dtype != np.float64 or not a.flags.c_contiguous:
            raise ValueError("A must be a contiguous float64 matrix")
        m, n = a.shape
        if len(x) != m or len(y) != n:
            raise ValueError("vector lengths do not match A")
        y = np.ascontiguousarray(y, dtype=np.float64)
        for i in range(m):
            coeff = alpha * float(x[i])
            if coeff != 0.0:
                self.axpy(coeff, y, a[i])
        return a


def make_ger(arch=None, schedule: bool = True) -> GerDriver:
    from .level1 import make_axpy

    return GerDriver(make_axpy(arch=arch, schedule=schedule))
