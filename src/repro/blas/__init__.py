"""BLAS routines built on AUGEM-generated kernels (paper §4-§5)."""

from .api import AugemBLAS, default_blas
from .client import CircuitBreaker, ClientStats, ServedBLAS
from .dispatch import (DispatchChain, KernelRejected, RoutineDispatch, Tier,
                       capability_chain, default_chain, reset_dispatch_state)
from .gemm import (BlockSizes, GemmDriver, kernel_multiples, make_gemm,
                   split_for_threads)
from .gemv import GemvDriver, make_gemv
from .ger import GerDriver, make_ger
from .guard import ArgGuard, BlasArgumentError
from .integrity import (IntegrityChecker, IntegrityReport, IntegrityStats,
                        resolve_integrity, reset_integrity_state,
                        verify_gemm_tile, wrap_driver)
from .kernels import KERNEL_SOURCES
from .level1 import AxpyDriver, DotDriver, ScalDriver, make_axpy, make_dot, make_scal
from .level3 import Level3
from .threading import (PackBufferPool, PoolAliasError, WorkerPool, get_pool,
                        reset_pools, resolve_threads)
from . import packing, reference

__all__ = [
    "AugemBLAS",
    "default_blas",
    "ServedBLAS",
    "ClientStats",
    "CircuitBreaker",
    "DispatchChain",
    "KernelRejected",
    "RoutineDispatch",
    "Tier",
    "capability_chain",
    "default_chain",
    "reset_dispatch_state",
    "ArgGuard",
    "BlasArgumentError",
    "IntegrityChecker",
    "IntegrityReport",
    "IntegrityStats",
    "resolve_integrity",
    "reset_integrity_state",
    "verify_gemm_tile",
    "wrap_driver",
    "GemmDriver",
    "BlockSizes",
    "make_gemm",
    "kernel_multiples",
    "split_for_threads",
    "PackBufferPool",
    "PoolAliasError",
    "WorkerPool",
    "get_pool",
    "reset_pools",
    "resolve_threads",
    "GemvDriver",
    "make_gemv",
    "AxpyDriver",
    "DotDriver",
    "make_axpy",
    "make_dot",
    "ScalDriver",
    "make_scal",
    "GerDriver",
    "make_ger",
    "Level3",
    "KERNEL_SOURCES",
    "packing",
    "reference",
]
