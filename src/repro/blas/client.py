"""ServedBLAS — a drop-in BLAS facade backed by the serve daemon.

``ServedBLAS`` subclasses :class:`~repro.blas.api.AugemBLAS` and swaps
only the five driver properties for remote proxies, so every entry point
— including the composed Level-3 routines (``dsymm``/``dsyrk``/... ride
on the gemm driver) and ``dger`` (rides on axpy) — transparently runs on
the daemon while keeping the full in-process argument-guard layer.

Every remote call walks a degradation chain; the caller never sees a
service failure, only (at worst) in-process latency:

1. **deadline-bounded call** — operands go into client-owned shared
   memory, one header frame crosses the socket, the daemon answers
   within the request deadline or not at all;
2. **retry with jittered backoff** — explicit backpressure (``busy``,
   ``quota``) and transport drops are retried a bounded number of
   times, honoring the server's ``retry_after_ms`` hint plus jitter;
3. **circuit breaker** — consecutive transport failures open the
   breaker; while open, calls skip the socket entirely (no connect
   latency on a dead daemon) until a cooldown lets one probe through;
4. **in-process fallback** — anything still unserved is computed by the
   locally-built hardened driver (lazily constructed on first need).
   In-place operands are only written after a remote success, so the
   fallback always starts from unmodified inputs.

The chain is observable: ``client.request`` / ``client.remote_ok`` /
``client.retry`` / ``client.fallback`` / ``client.breaker_open`` /
``client.rejected`` / ``client.deadline`` counters (``trace report``
renders them) and a :class:`ClientStats` mirror for trace-off tests.

When the facade is built with ``integrity="sample"`` (or ``"full"``),
the client samples requests with the shared
:class:`~repro.blas.integrity.IntegrityChecker` counter, flags them for
server-side ABFT verification, and folds the returned verdict into
``client.integrity_checked`` / ``client.integrity_corrected``.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from ..obs import event, incr
from ..serve.protocol import (ERR_DEADLINE, ERR_DRAINING, PROTOCOL_VERSION,
                              RETRYABLE_CODES, ROUTINES, PeerGone,
                              ProtocolError, call_header, recv_frame,
                              send_frame)
from ..serve.shm import SegmentSet
from .api import AugemBLAS


class ServiceUnavailable(RuntimeError):
    """Internal signal: this request will not be served remotely."""


@dataclass
class ClientStats:
    """Mirror of the client.* counters (usable with tracing off)."""

    requests: int = 0
    remote_ok: int = 0
    retries: int = 0
    fallbacks: int = 0
    rejected: int = 0
    deadline_hits: int = 0
    draining_hits: int = 0
    breaker_opens: int = 0
    breaker_short_circuits: int = 0
    integrity_checked: int = 0
    integrity_corrected: int = 0


class CircuitBreaker:
    """Classic three-state breaker over the daemon transport.

    ``failure_threshold`` consecutive transport failures open it; while
    open every call short-circuits straight to fallback (no connect
    timeout paid on a dead daemon).  After ``cooldown`` seconds one
    half-open probe is let through — success closes the breaker, failure
    re-opens it for another cooldown.
    """

    def __init__(self, failure_threshold: int = 3,
                 cooldown: float = 2.0) -> None:
        self.failure_threshold = max(1, failure_threshold)
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if time.monotonic() - self._opened_at >= self.cooldown:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """May this call try the socket?  (claims the half-open probe)"""
        with self._lock:
            if self._opened_at is None:
                return True
            if time.monotonic() - self._opened_at < self.cooldown:
                return False
            if self._probing:
                return False  # someone else holds the half-open slot
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> bool:
        """Count one transport failure; True when this opens the breaker."""
        with self._lock:
            self._failures += 1
            self._probing = False
            newly_open = (self._opened_at is None
                          and self._failures >= self.failure_threshold)
            if self._failures >= self.failure_threshold:
                self._opened_at = time.monotonic()
            return newly_open


class _RemoteDriver:
    """Proxy with the exact call signature of one local driver family."""

    def __init__(self, owner: "ServedBLAS", routine: str) -> None:
        self._owner = owner
        self._routine = routine

    # each signature mirrors the in-process driver it may fall back to

    def __call__(self, *args: Any, **kwargs: Any):
        return getattr(self, f"_{self._routine}")(*args, **kwargs)

    def _gemm(self, a, b, c=None, alpha: float = 1.0, beta: float = 0.0):
        owner = self._owner
        try:
            return owner._remote_call(
                "gemm",
                arrays={"a": a, "b": b, **({"c": c} if c is not None
                                           else {})},
                scalars={"alpha": alpha, "beta": beta}, flags={},
                inplace={})
        except ServiceUnavailable as exc:
            return owner._fallback("gemm", exc)(a, b, c, alpha=alpha,
                                                beta=beta)

    def _gemv(self, a, x, y=None, alpha: float = 1.0, beta: float = 0.0,
              trans: bool = False):
        owner = self._owner
        try:
            return owner._remote_call(
                "gemv",
                arrays={"a": a, "x": x, **({"y": y} if y is not None
                                           else {})},
                scalars={"alpha": alpha, "beta": beta},
                flags={"trans": bool(trans)}, inplace={})
        except ServiceUnavailable as exc:
            return owner._fallback("gemv", exc)(a, x, y, alpha=alpha,
                                                beta=beta, trans=trans)

    def _axpy(self, alpha: float, x, y):
        owner = self._owner
        try:
            return owner._remote_call(
                "axpy", arrays={"x": x, "y": y},
                scalars={"alpha": alpha}, flags={}, inplace={"y": y})
        except ServiceUnavailable as exc:
            return owner._fallback("axpy", exc)(alpha, x, y)

    def _dot(self, x, y) -> float:
        owner = self._owner
        try:
            return owner._remote_call("dot", arrays={"x": x, "y": y},
                                      scalars={}, flags={}, inplace={})
        except ServiceUnavailable as exc:
            return owner._fallback("dot", exc)(x, y)

    def _scal(self, alpha: float, x):
        owner = self._owner
        try:
            return owner._remote_call("scal", arrays={"x": x},
                                      scalars={"alpha": alpha}, flags={},
                                      inplace={"x": x})
        except ServiceUnavailable as exc:
            return owner._fallback("scal", exc)(alpha, x)


class ServedBLAS(AugemBLAS):
    """AugemBLAS whose kernels run on the serve daemon when it is up.

    A drop-in replacement: same constructor keywords as
    :class:`AugemBLAS` plus service tuning, same entry points, same
    results — verified by falling back to the identical in-process
    drivers whenever the daemon cannot serve.
    """

    def __init__(self,
                 socket_path: Optional[Path] = None,
                 runtime_dir: Optional[Path] = None,
                 deadline_ms: int = 2000,
                 retries: int = 2,
                 retry_base: float = 0.025,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 2.0,
                 client_id: Optional[str] = None,
                 **blas_kwargs: Any) -> None:
        super().__init__(**blas_kwargs)
        if socket_path is None:
            # deferred import: repro.serve.server imports repro.blas.api,
            # so a top-level import here would be circular
            from ..serve.server import default_runtime_dir

            base = Path(runtime_dir) if runtime_dir is not None \
                else default_runtime_dir()
            socket_path = base / "serve.sock"
        self.socket_path = Path(socket_path)
        self.deadline_ms = int(deadline_ms)
        self.retries = max(0, int(retries))
        self.retry_base = retry_base
        self.breaker = CircuitBreaker(failure_threshold=breaker_threshold,
                                      cooldown=breaker_cooldown)
        self.client_id = client_id or f"{socket.gethostname()}:{os.getpid()}"
        self.stats = ClientStats()
        self._remote: Dict[str, _RemoteDriver] = {}

    # -- the five driver properties become remote proxies ------------------

    def _remote_driver(self, routine: str) -> _RemoteDriver:
        driver = self._remote.get(routine)
        if driver is None:
            driver = self._remote[routine] = _RemoteDriver(self, routine)
        return driver

    @property
    def gemm_driver(self) -> _RemoteDriver:  # type: ignore[override]
        return self._remote_driver("gemm")

    @property
    def gemv_driver(self) -> _RemoteDriver:  # type: ignore[override]
        return self._remote_driver("gemv")

    @property
    def axpy_driver(self) -> _RemoteDriver:  # type: ignore[override]
        return self._remote_driver("axpy")

    @property
    def dot_driver(self) -> _RemoteDriver:  # type: ignore[override]
        return self._remote_driver("dot")

    @property
    def scal_driver(self) -> _RemoteDriver:  # type: ignore[override]
        return self._remote_driver("scal")

    def local_driver(self, routine: str):
        """The in-process hardened driver (lazily built on first need)."""
        prop = getattr(AugemBLAS, f"{routine}_driver")
        return prop.fget(self)

    # -- degradation chain --------------------------------------------------

    def _fallback(self, routine: str, reason: ServiceUnavailable):
        self.stats.fallbacks += 1
        incr("client.fallback")
        event("client.fallback", routine=routine, reason=str(reason)[:200])
        return self.local_driver(routine)

    def _remote_call(self, routine: str, arrays: Dict[str, Any],
                     scalars: Dict[str, float], flags: Dict[str, bool],
                     inplace: Dict[str, np.ndarray]):
        """One full remote attempt: shm staging + retry/breaker loop.

        Returns the routine result; raises :class:`ServiceUnavailable`
        when the service chain is exhausted and the caller must fall
        back.  In-place targets are written only after a remote success.
        """
        self.stats.requests += 1
        incr("client.request")
        if not self.breaker.allow():
            self.stats.breaker_short_circuits += 1
            incr("client.breaker_short_circuit")
            raise ServiceUnavailable("circuit breaker open")

        spec = ROUTINES[routine]
        staged = {name: np.ascontiguousarray(arr, dtype=np.float64)
                  for name, arr in arrays.items()}
        with SegmentSet(prefix="rblc") as segments:
            refs, views = {}, {}
            for name, arr in staged.items():
                view, ref = segments.add(arr.shape, fill=arr)
                refs[name] = ref
                views[name] = view
            out_ref = out_view = None
            if spec.output == "new":
                shapes = {name: arr.shape for name, arr in staged.items()}
                out_view, out_ref = segments.add(
                    spec.result_shape(shapes, flags))
            # client-side sampling: the checker's deterministic 1-in-K
            # counter decides which requests ride with ABFT verification;
            # sampled requests ask the server for a *full* check so the
            # verdict covers every tile of that call
            verify = self.integrity_checker.decide()
            header = call_header(routine, self.client_id, self.deadline_ms,
                                 refs, scalars, flags, out_ref,
                                 integrity="full" if verify else None)
            reply = self._exchange(header)
            self._note_verdict(routine, reply.get("integrity"))
            if spec.output == "scalar":
                return float(reply.get("value", 0.0))
            if spec.output == "new":
                return np.array(out_view, copy=True)
            target = inplace[spec.output]
            target[...] = views[spec.output]
            return target

    def _note_verdict(self, routine: str,
                      verdict: Optional[Dict[str, Any]]) -> None:
        """Fold a response's ABFT verdict into the client stats."""
        if not isinstance(verdict, dict) or not verdict.get("checked"):
            return
        self.stats.integrity_checked += 1
        incr("client.integrity_checked")
        corrections = (int(verdict.get("mismatches", 0))
                       + int(verdict.get("reference_recomputes", 0)))
        if corrections or verdict.get("quarantined"):
            self.stats.integrity_corrected += 1
            incr("client.integrity_corrected")
            event("client.integrity_corrected", routine=routine,
                  mismatches=int(verdict.get("mismatches", 0)),
                  reference_recomputes=int(
                      verdict.get("reference_recomputes", 0)),
                  quarantined=",".join(
                      str(q) for q in verdict.get("quarantined") or ()))

    def _exchange(self, header: Dict[str, Any]) -> Dict[str, Any]:
        """Retry/breaker loop around one request; returns the ok reply."""
        last = "unknown"
        for attempt in range(self.retries + 1):
            try:
                reply = self._roundtrip(header)
            except (ConnectionError, PeerGone, ProtocolError,
                    FileNotFoundError, TimeoutError, OSError) as exc:
                last = f"{type(exc).__name__}: {exc}"
                if self.breaker.record_failure():
                    self.stats.breaker_opens += 1
                    incr("client.breaker_open")
                    event("client.breaker_open", reason=last[:200])
                if attempt < self.retries:
                    self._nap(attempt, None)
                    continue
                raise ServiceUnavailable(f"transport: {last}") from None
            if reply.get("ok"):
                self.breaker.record_success()
                self.stats.remote_ok += 1
                incr("client.remote_ok")
                return reply
            error = reply.get("error", {})
            code = error.get("code", "unknown")
            last = f"{code}: {error.get('message', '')}"
            # the daemon answered — transport is healthy, so the breaker
            # stays closed; only the retry/fallback tiers apply
            self.breaker.record_success()
            if code in RETRYABLE_CODES:
                self.stats.rejected += 1
                incr("client.rejected")
                if attempt < self.retries:
                    self._nap(attempt, error.get("retry_after_ms"))
                    continue
            elif code == ERR_DEADLINE:
                self.stats.deadline_hits += 1
                incr("client.deadline")
            elif code == ERR_DRAINING:
                self.stats.draining_hits += 1
                incr("client.draining")
            raise ServiceUnavailable(last)
        raise ServiceUnavailable(last)

    def _nap(self, attempt: int, retry_after_ms: Optional[Any]) -> None:
        self.stats.retries += 1
        incr("client.retry")
        base = (float(retry_after_ms) / 1000.0
                if retry_after_ms else self.retry_base)
        delay = base * (2 ** attempt)
        time.sleep(min(delay * (1.0 + random.random() * 0.5), 1.0))

    def _roundtrip(self, header: Dict[str, Any]) -> Dict[str, Any]:
        timeout = self.deadline_ms / 1000.0 + 1.0
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout)
            sock.connect(str(self.socket_path))
            send_frame(sock, header)
            reply = recv_frame(sock)
        if reply is None:
            raise PeerGone("worker closed the connection mid-request")
        return reply

    # -- service health -----------------------------------------------------

    def service_alive(self) -> bool:
        """Cheap ping; True when a worker answers on the socket."""
        try:
            reply = self._roundtrip({"op": "ping", "v": PROTOCOL_VERSION})
        except (ConnectionError, PeerGone, ProtocolError, TimeoutError,
                FileNotFoundError, OSError):
            return False
        return bool(reply.get("ok"))
