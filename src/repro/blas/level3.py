"""Level-3 routines cast on the generated GEMM kernel (paper §4, Table 6).

"Most BLAS Level-3 routines, such as SYMM, SYRK, SYR2K, TRMM, and TRSM,
can be implemented by casting the bulk of computation in terms of the GEMM
kernel" — exactly what these drivers do.  Triangular diagonal blocks
(TRMM/TRSM) use naive compiled C (:mod:`repro.backend.baselines`), so only
self-contained code is on the measured path; for TRSM this reproduces the
paper's finding that the substitution step "is translated into low-level C
code in a straightforward fashion (without special optimizations)" and
therefore trails the vendor library.

Conventions: all matrices are row-major float64; SY* routines use the
lower triangle ('L'), TR* routines take a lower-triangular, non-unit L on
the left (``side='L'``) — the variants the paper's Table 6 exercises.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend.baselines import baseline_o2
from ..backend.compiler import ToolchainError
from .gemm import GemmDriver


def _symmetrize_lower(a: np.ndarray) -> np.ndarray:
    """Full matrix from the lower triangle of ``a``."""
    lower = np.tril(a)
    return lower + np.tril(a, -1).T


class _NumpyTri:
    """Pure-numpy triangular diagonal blocks — used when the compiled-C
    baseline is unavailable (no toolchain, or the dispatch chain is
    serving from the reference tier)."""

    def trmm_diag(self, l_block: np.ndarray, b_rows: np.ndarray,
                  ldb: int) -> None:
        b_rows[:] = np.tril(l_block) @ b_rows

    def trsm_diag(self, l_block: np.ndarray, b_rows: np.ndarray,
                  ldb: int) -> None:
        b_rows[:] = np.linalg.solve(np.tril(l_block), b_rows)


class Level3:
    """SYMM / SYRK / SYR2K / TRMM / TRSM on top of one GEMM driver."""

    def __init__(self, gemm: GemmDriver, diag_block: int = 64) -> None:
        self.gemm = gemm
        self.diag_block = diag_block
        try:
            self._tri = baseline_o2()
        except ToolchainError:
            self._tri = _NumpyTri()

    # -- SYMM ----------------------------------------------------------------
    def symm(self, a: np.ndarray, b: np.ndarray,
             c: Optional[np.ndarray] = None, alpha: float = 1.0,
             beta: float = 0.0) -> np.ndarray:
        """``C = alpha * sym(A) @ B + beta * C`` (A's lower triangle)."""
        full = _symmetrize_lower(np.asarray(a, dtype=np.float64))
        return self.gemm(full, b, c, alpha=alpha, beta=beta)

    # -- SYRK ----------------------------------------------------------------
    def syrk(self, a: np.ndarray, c: Optional[np.ndarray] = None,
             alpha: float = 1.0, beta: float = 0.0) -> np.ndarray:
        """``C = alpha * A @ Aᵀ + beta * C``, lower triangle updated.

        Blocked: only the diagonal-and-below tiles are computed, each via
        GEMM on ``A_i @ A_jᵀ`` — roughly half the flops of a full GEMM.
        """
        a = np.asarray(a, dtype=np.float64)
        n, k = a.shape
        nb = self.diag_block
        out = np.zeros((n, n)) if c is None else np.array(c, dtype=np.float64)
        scale = beta if beta != 0.0 else 0.0
        tril_mask = np.tril(np.ones((n, n), dtype=bool))
        if beta == 0.0:
            out[tril_mask] = 0.0
        elif beta != 1.0:
            out[tril_mask] *= scale
        for i0 in range(0, n, nb):
            ih = min(nb, n - i0)
            for j0 in range(0, i0 + ih, nb):
                jh = min(nb, n - j0)
                block = self.gemm(
                    a[i0:i0 + ih], np.ascontiguousarray(a[j0:j0 + jh].T),
                    alpha=alpha,
                )
                if j0 < i0:
                    out[i0:i0 + ih, j0:j0 + jh] += block
                else:  # diagonal tile: keep the lower part only
                    ih2, jh2 = block.shape
                    out[i0:i0 + ih, j0:j0 + jh] += np.tril(block[:ih, :jh])
        return out

    # -- SYR2K ------------------------------------------------------------
    def syr2k(self, a: np.ndarray, b: np.ndarray,
              c: Optional[np.ndarray] = None, alpha: float = 1.0,
              beta: float = 0.0) -> np.ndarray:
        """``C = alpha*(A Bᵀ + B Aᵀ) + beta*C``, lower triangle updated."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        n, k = a.shape
        nb = self.diag_block
        out = np.zeros((n, n)) if c is None else np.array(c, dtype=np.float64)
        tril_mask = np.tril(np.ones((n, n), dtype=bool))
        if beta == 0.0:
            out[tril_mask] = 0.0
        elif beta != 1.0:
            out[tril_mask] *= beta
        for i0 in range(0, n, nb):
            ih = min(nb, n - i0)
            for j0 in range(0, i0 + ih, nb):
                jh = min(nb, n - j0)
                block = self.gemm(
                    a[i0:i0 + ih], np.ascontiguousarray(b[j0:j0 + jh].T),
                    alpha=alpha,
                )
                block = self.gemm(
                    b[i0:i0 + ih], np.ascontiguousarray(a[j0:j0 + jh].T),
                    c=block, alpha=alpha, beta=1.0,
                )
                if j0 < i0:
                    out[i0:i0 + ih, j0:j0 + jh] += block
                else:
                    out[i0:i0 + ih, j0:j0 + jh] += np.tril(block[:ih, :jh])
        return out

    # -- TRMM -----------------------------------------------------------------
    def trmm(self, l: np.ndarray, b: np.ndarray,
             alpha: float = 1.0) -> np.ndarray:
        """``B = alpha * L @ B`` (L lower triangular, left side), blocked.

        Row-block i of the result is ``L_ii @ B_i + sum_{j<i} L_ij @ B_j``;
        the off-diagonal part is GEMM, the diagonal part naive C.
        """
        l = np.asarray(l, dtype=np.float64)
        b = np.array(b, dtype=np.float64)  # computed out-of-place, returned
        m, ncols = b.shape
        nb = self.diag_block
        # top-down is safe when reading B's original rows: keep a copy
        src = b.copy()
        for i0 in range(0, m, nb):
            ih = min(nb, m - i0)
            rows = src[i0:i0 + ih].copy()  # src must stay pristine
            l_diag = np.ascontiguousarray(l[i0:i0 + ih, i0:i0 + ih])
            self._tri.trmm_diag(l_diag, rows, ncols)
            if i0 > 0:
                rows = self.gemm(
                    np.ascontiguousarray(l[i0:i0 + ih, :i0]), src[:i0],
                    c=rows, beta=1.0,
                )
            b[i0:i0 + ih] = rows
        if alpha != 1.0:
            b *= alpha
        return b

    # -- TRSM ---------------------------------------------------------------
    def trsm(self, l: np.ndarray, b: np.ndarray,
             alpha: float = 1.0) -> np.ndarray:
        """``B = alpha * L⁻¹ @ B`` — the paper's two-step decomposition:
        1) ``B_1 = L11⁻¹ B_1`` (straightforward substitution, not
        template-optimized — hence TRSM's deficit in Table 6);
        2) ``B_2 = B_2 - L21 @ B_1`` (GEMM).
        """
        l = np.asarray(l, dtype=np.float64)
        b = np.array(b, dtype=np.float64)
        m, ncols = b.shape
        nb = self.diag_block
        if alpha != 1.0:
            b *= alpha
        for i0 in range(0, m, nb):
            ih = min(nb, m - i0)
            rows = np.ascontiguousarray(b[i0:i0 + ih])
            if i0 > 0:
                # B_i -= L[i, :i] @ X[:i]
                rows = self.gemm(
                    np.ascontiguousarray(l[i0:i0 + ih, :i0]), b[:i0],
                    c=rows, alpha=-1.0, beta=1.0,
                )
                rows = np.ascontiguousarray(rows)
            l_diag = np.ascontiguousarray(l[i0:i0 + ih, i0:i0 + ih])
            self._tri.trsm_diag(l_diag, rows, ncols)
            b[i0:i0 + ih] = rows
        return b
