"""AugemBLAS — the user-facing library facade.

Generates, assembles and caches every kernel for one architecture, then
exposes the BLAS routines of the paper's evaluation:

>>> from repro import AugemBLAS
>>> blas = AugemBLAS()                 # host-detected arch
>>> c = blas.dgemm(a, b)               # alpha*A@B + beta*C
>>> y = blas.dgemv(a, x, trans=True)
>>> blas.daxpy(2.0, x, y); s = blas.ddot(x, y)
>>> c = blas.dsymm(a, b); c = blas.dsyrk(a); c = blas.dsyr2k(a, b)
>>> b2 = blas.dtrmm(l, b); b3 = blas.dtrsm(l, b); blas.dger(1.0, x, y, a)

Kernel generation happens lazily on first use of each routine; pass
``configs`` to override the default/tuned optimization configurations.

By default the facade is **hardened** (see :mod:`repro.blas.dispatch` and
docs/robustness.md): every routine is built down a verified capability
chain — the target ISA is confirmed by executing a probe kernel in the
fork-isolated sandbox, each built kernel passes a differential admission
check against :mod:`repro.blas.reference`, quarantined kernels are never
loaded, and a routine that cannot be served natively demotes tier by tier
until the pure-numpy reference serves it.  Arguments pass through a
BLAS-style validation layer (:mod:`repro.blas.guard`) that coerces
dtype/contiguity, short-circuits zero-dimension calls, copies aliased
in-place operands, and raises :class:`~repro.blas.guard.BlasArgumentError`
for input that must never reach assembly.  ``hardened=False`` restores
the direct trust-everything construction path.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..isa.arch import ArchSpec, detect_host
from ..obs import incr
from ..transforms.pipeline import OptimizationConfig
from .dispatch import DispatchChain, RoutineDispatch
from .gemm import BlockSizes, GemmDriver, make_gemm
from .gemv import GemvDriver, make_gemv
from .ger import GerDriver
from .guard import ArgGuard, BlasArgumentError
from .integrity import IntegrityChecker, wrap_driver
from .level1 import AxpyDriver, DotDriver, ScalDriver, make_axpy, make_dot, make_scal
from .level3 import Level3
from .reference import ref_gemm, ref_gemv, ref_syr2k, ref_syrk


class AugemBLAS:
    """A BLAS built entirely from AUGEM-generated assembly kernels."""

    def __init__(self, arch: Optional[ArchSpec] = None,
                 configs: Optional[Dict[str, OptimizationConfig]] = None,
                 layout: str = "dup",
                 blocks: Optional[BlockSizes] = None,
                 schedule: bool = True,
                 hardened: bool = True,
                 nan_policy: str = "propagate",
                 isolation: Optional[str] = None,
                 threads: Optional[int] = None,
                 integrity=None) -> None:
        self.arch = arch or detect_host()
        self.configs = configs or {}
        self.layout = layout
        self.blocks = blocks
        self.schedule = schedule
        self.threads = threads
        self.guard = ArgGuard(nan_policy=nan_policy)
        # one checker for the whole facade: the sampling counter covers
        # the full call stream, and a quarantine rebuilds the affected
        # routine down the (now demoted) chain
        if isinstance(integrity, IntegrityChecker):
            self.integrity_checker = integrity
        else:
            self.integrity_checker = IntegrityChecker(mode=integrity)
        if self.integrity_checker.on_quarantine is None:
            self.integrity_checker.on_quarantine = self._on_quarantine
        self.chain: Optional[DispatchChain] = (
            DispatchChain(top=arch, isolation=isolation) if hardened
            else None)
        self._gemm: Optional[GemmDriver] = None
        self._gemv: Optional[GemvDriver] = None
        self._axpy: Optional[AxpyDriver] = None
        self._dot: Optional[DotDriver] = None
        self._scal: Optional[ScalDriver] = None
        self._level3: Optional[Level3] = None
        self._ger: Optional[GerDriver] = None
        self._dispatch: Dict[str, RoutineDispatch] = {}

    # -- dispatch plumbing -------------------------------------------------
    def _build(self, routine: str, family: str, builder, direct):
        """Build one routine's driver — down the chain when hardened."""
        if self.chain is None:
            driver = direct()
            self._dispatch[routine] = RoutineDispatch(family, self.arch.name)
            return driver
        driver, info = self.chain.build_routine(family, builder)
        self._dispatch[routine] = info
        return driver

    def _on_quarantine(self, family: str, verdict) -> None:
        """Drop cached drivers after an integrity quarantine.

        The tier is already demoted in the dispatch layer, so the next
        use of the routine rebuilds down the chain — self-healing
        without crashing the in-flight call (which already returned
        reference-recomputed bits).
        """
        incr("integrity.facade_rebuild")
        if family in ("gemm", "gemm_shuf"):
            self._gemm = None
            self._level3 = None
            self._dispatch.pop("gemm", None)
        elif family == "gemv":
            self._gemv = None
            self._dispatch.pop("gemv", None)
        elif family == "axpy":
            self._axpy = None
            self._ger = None
            self._dispatch.pop("axpy", None)
        elif family == "dot":
            self._dot = None
            self._dispatch.pop("dot", None)
        elif family == "scal":
            self._scal = None
            self._dispatch.pop("scal", None)

    def _note_serve(self, routine: str) -> None:
        info = self._dispatch.get(routine)
        if info is not None and info.demoted:
            incr("dispatch.fallback_serve")

    def dispatch_report(self) -> Dict[str, RoutineDispatch]:
        """How each routine built so far is being served."""
        return dict(self._dispatch)

    # -- lazy kernel construction ------------------------------------------
    @property
    def gemm_driver(self) -> GemmDriver:
        if self._gemm is None:
            family = "gemm" if self.layout == "dup" else "gemm_shuf"
            self._gemm = self._build(
                "gemm", family,
                builder=lambda tier, loader: make_gemm(
                    arch=tier.arch, config=self.configs.get("gemm"),
                    layout=self.layout, blocks=self.blocks,
                    schedule=self.schedule, loader=loader,
                    threads=self.threads,
                    integrity=self.integrity_checker),
                direct=lambda: make_gemm(
                    arch=self.arch, config=self.configs.get("gemm"),
                    layout=self.layout, blocks=self.blocks,
                    schedule=self.schedule, threads=self.threads,
                    integrity=self.integrity_checker))
        return self._gemm

    @property
    def gemv_driver(self) -> GemvDriver:
        if self._gemv is None:
            self._gemv = self._build(
                "gemv", "gemv",
                builder=lambda tier, loader: make_gemv(
                    arch=tier.arch, config=self.configs.get("gemv"),
                    config_n=self.configs.get("gemv_n"),
                    schedule=self.schedule, loader=loader),
                direct=lambda: make_gemv(
                    arch=self.arch, config=self.configs.get("gemv"),
                    config_n=self.configs.get("gemv_n"),
                    schedule=self.schedule))
            self._gemv = wrap_driver("gemv", self._gemv,
                                     self.integrity_checker)
        return self._gemv

    @property
    def axpy_driver(self) -> AxpyDriver:
        if self._axpy is None:
            self._axpy = self._build(
                "axpy", "axpy",
                builder=lambda tier, loader: make_axpy(
                    arch=tier.arch, config=self.configs.get("axpy"),
                    schedule=self.schedule, loader=loader),
                direct=lambda: make_axpy(
                    arch=self.arch, config=self.configs.get("axpy"),
                    schedule=self.schedule))
            self._axpy = wrap_driver("axpy", self._axpy,
                                     self.integrity_checker)
        return self._axpy

    @property
    def dot_driver(self) -> DotDriver:
        if self._dot is None:
            self._dot = self._build(
                "dot", "dot",
                builder=lambda tier, loader: make_dot(
                    arch=tier.arch, config=self.configs.get("dot"),
                    schedule=self.schedule, loader=loader),
                direct=lambda: make_dot(
                    arch=self.arch, config=self.configs.get("dot"),
                    schedule=self.schedule))
            self._dot = wrap_driver("dot", self._dot,
                                    self.integrity_checker)
        return self._dot

    @property
    def scal_driver(self) -> ScalDriver:
        if self._scal is None:
            self._scal = self._build(
                "scal", "scal",
                builder=lambda tier, loader: make_scal(
                    arch=tier.arch, config=self.configs.get("scal"),
                    schedule=self.schedule, loader=loader),
                direct=lambda: make_scal(
                    arch=self.arch, config=self.configs.get("scal"),
                    schedule=self.schedule))
            self._scal = wrap_driver("scal", self._scal,
                                     self.integrity_checker)
        return self._scal

    @property
    def level3(self) -> Level3:
        if self._level3 is None:
            self._level3 = Level3(self.gemm_driver)
        return self._level3

    @property
    def ger_driver(self) -> GerDriver:
        if self._ger is None:
            self._ger = GerDriver(self.axpy_driver)
        return self._ger

    # -- BLAS entry points -----------------------------------------------
    def dgemm(self, a, b, c=None, alpha: float = 1.0,
              beta: float = 0.0) -> np.ndarray:
        g = self.guard
        alpha = g.scalar("dgemm", "alpha", alpha)
        beta = g.scalar("dgemm", "beta", beta)
        a = g.matrix("dgemm", "a", a)
        b = g.matrix("dgemm", "b", b)
        if a.shape[1] != b.shape[0]:
            g.reject("dgemm", "b", f"inner dimensions differ: "
                                   f"A is {a.shape}, B is {b.shape}",
                     value=b)
        m, n = a.shape[0], b.shape[1]
        if c is not None:
            c = g.matrix("dgemm", "c", c, shape=(m, n))
        if m == 0 or n == 0 or a.shape[1] == 0:
            g.note_zero_dim()
            return np.zeros((m, n)) + ref_gemm(a, b, c, alpha, beta)
        driver = self.gemm_driver
        self._note_serve("gemm")
        return driver(a, b, c, alpha=alpha, beta=beta)

    def dgemv(self, a, x, y=None, alpha: float = 1.0, beta: float = 0.0,
              trans: bool = False) -> np.ndarray:
        g = self.guard
        alpha = g.scalar("dgemv", "alpha", alpha)
        beta = g.scalar("dgemv", "beta", beta)
        a = g.matrix("dgemv", "a", a)
        m, n = a.shape
        in_len, out_len = (m, n) if trans else (n, m)
        x = g.vector("dgemv", "x", x, length=in_len)
        if y is not None:
            y = g.vector("dgemv", "y", y, length=out_len)
        if in_len == 0 or out_len == 0:
            g.note_zero_dim()
            return np.zeros(out_len) + ref_gemv(a, x, y, alpha, beta, trans)
        driver = self.gemv_driver
        self._note_serve("gemv")
        return driver(a, x, y, alpha=alpha, beta=beta, trans=trans)

    def daxpy(self, alpha: float, x, y) -> np.ndarray:
        g = self.guard
        alpha = g.scalar("daxpy", "alpha", alpha)
        y = g.inplace_vector("daxpy", "y", y)
        x = g.vector("daxpy", "x", x, length=y.shape[0])
        x = g.unalias("daxpy", out=y, read=x)
        if y.shape[0] == 0:
            g.note_zero_dim()
            return y
        driver = self.axpy_driver
        self._note_serve("axpy")
        return driver(alpha, x, y)

    def ddot(self, x, y) -> float:
        g = self.guard
        x = g.vector("ddot", "x", x)
        y = g.vector("ddot", "y", y, length=x.shape[0])
        if x.shape[0] == 0:
            g.note_zero_dim()
            return 0.0
        driver = self.dot_driver
        self._note_serve("dot")
        return driver(x, y)

    def dscal(self, alpha: float, x) -> np.ndarray:
        g = self.guard
        alpha = g.scalar("dscal", "alpha", alpha)
        x = g.inplace_vector("dscal", "x", x)
        if x.shape[0] == 0:
            g.note_zero_dim()
            return x
        driver = self.scal_driver
        self._note_serve("scal")
        return driver(alpha, x)

    def dsymm(self, a, b, c=None, alpha: float = 1.0,
              beta: float = 0.0) -> np.ndarray:
        g = self.guard
        alpha = g.scalar("dsymm", "alpha", alpha)
        beta = g.scalar("dsymm", "beta", beta)
        a = g.matrix("dsymm", "a", a)
        if a.shape[0] != a.shape[1]:
            g.reject("dsymm", "a", f"must be square, got {a.shape}", value=a)
        b = g.matrix("dsymm", "b", b)
        if b.shape[0] != a.shape[0]:
            g.reject("dsymm", "b", f"row count {b.shape[0]} does not "
                                   f"match A ({a.shape[0]})", value=b)
        n, k = b.shape
        if c is not None:
            c = g.matrix("dsymm", "c", c, shape=(n, k))
        if n == 0 or k == 0:
            g.note_zero_dim()
            return np.zeros((n, k))
        level3 = self.level3
        self._note_serve("gemm")
        return level3.symm(a, b, c, alpha=alpha, beta=beta)

    def dsyrk(self, a, c=None, alpha: float = 1.0,
              beta: float = 0.0) -> np.ndarray:
        g = self.guard
        alpha = g.scalar("dsyrk", "alpha", alpha)
        beta = g.scalar("dsyrk", "beta", beta)
        a = g.matrix("dsyrk", "a", a)
        n, k = a.shape
        if c is not None:
            c = g.matrix("dsyrk", "c", c, shape=(n, n))
        if n == 0 or k == 0:
            g.note_zero_dim()
            return np.zeros((n, n)) + ref_syrk(a, c, alpha, beta)
        level3 = self.level3
        self._note_serve("gemm")
        return level3.syrk(a, c, alpha=alpha, beta=beta)

    def dsyr2k(self, a, b, c=None, alpha: float = 1.0,
               beta: float = 0.0) -> np.ndarray:
        g = self.guard
        alpha = g.scalar("dsyr2k", "alpha", alpha)
        beta = g.scalar("dsyr2k", "beta", beta)
        a = g.matrix("dsyr2k", "a", a)
        b = g.matrix("dsyr2k", "b", b, shape=a.shape)
        n, k = a.shape
        if c is not None:
            c = g.matrix("dsyr2k", "c", c, shape=(n, n))
        if n == 0 or k == 0:
            g.note_zero_dim()
            return np.zeros((n, n)) + ref_syr2k(a, b, c, alpha, beta)
        level3 = self.level3
        self._note_serve("gemm")
        return level3.syr2k(a, b, c, alpha=alpha, beta=beta)

    def dtrmm(self, l, b, alpha: float = 1.0) -> np.ndarray:
        g = self.guard
        alpha = g.scalar("dtrmm", "alpha", alpha)
        l = g.matrix("dtrmm", "l", l)
        if l.shape[0] != l.shape[1]:
            g.reject("dtrmm", "l", f"must be square, got {l.shape}", value=l)
        b = g.matrix("dtrmm", "b", b)
        if b.shape[0] != l.shape[0]:
            g.reject("dtrmm", "b", f"row count {b.shape[0]} does not "
                                   f"match L ({l.shape[0]})", value=b)
        if b.shape[0] == 0 or b.shape[1] == 0:
            g.note_zero_dim()
            return np.zeros(b.shape)
        level3 = self.level3
        self._note_serve("gemm")
        return level3.trmm(l, b, alpha=alpha)

    def dtrsm(self, l, b, alpha: float = 1.0) -> np.ndarray:
        g = self.guard
        alpha = g.scalar("dtrsm", "alpha", alpha)
        l = g.matrix("dtrsm", "l", l)
        if l.shape[0] != l.shape[1]:
            g.reject("dtrsm", "l", f"must be square, got {l.shape}", value=l)
        b = g.matrix("dtrsm", "b", b)
        if b.shape[0] != l.shape[0]:
            g.reject("dtrsm", "b", f"row count {b.shape[0]} does not "
                                   f"match L ({l.shape[0]})", value=b)
        if b.shape[0] == 0 or b.shape[1] == 0:
            g.note_zero_dim()
            return np.zeros(b.shape)
        level3 = self.level3
        self._note_serve("gemm")
        return level3.trsm(l, b, alpha=alpha)

    def dger(self, alpha: float, x, y, a) -> np.ndarray:
        g = self.guard
        alpha = g.scalar("dger", "alpha", alpha)
        a = g.inplace_matrix("dger", "a", a)
        m, n = a.shape
        x = g.vector("dger", "x", x, length=m)
        y = g.vector("dger", "y", y, length=n)
        x = g.unalias("dger", out=a, read=x)
        y = g.unalias("dger", out=a, read=y)
        if m == 0 or n == 0:
            g.note_zero_dim()
            return a
        driver = self.ger_driver
        self._note_serve("axpy")
        return driver(alpha, x, y, a)


_default: Optional[AugemBLAS] = None


def default_blas() -> AugemBLAS:
    """Process-wide AugemBLAS for the host architecture."""
    global _default
    if _default is None:
        _default = AugemBLAS()
    return _default
