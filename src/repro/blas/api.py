"""AugemBLAS — the user-facing library facade.

Generates, assembles and caches every kernel for one architecture, then
exposes the BLAS routines of the paper's evaluation:

>>> from repro import AugemBLAS
>>> blas = AugemBLAS()                 # host-detected arch
>>> c = blas.dgemm(a, b)               # alpha*A@B + beta*C
>>> y = blas.dgemv(a, x, trans=True)
>>> blas.daxpy(2.0, x, y); s = blas.ddot(x, y)
>>> c = blas.dsymm(a, b); c = blas.dsyrk(a); c = blas.dsyr2k(a, b)
>>> b2 = blas.dtrmm(l, b); b3 = blas.dtrsm(l, b); blas.dger(1.0, x, y, a)

Kernel generation happens lazily on first use of each routine; pass
``configs`` to override the default/tuned optimization configurations.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.framework import Augem, default_config
from ..isa.arch import ArchSpec, detect_host
from ..transforms.pipeline import OptimizationConfig
from .gemm import BlockSizes, GemmDriver, make_gemm
from .gemv import GemvDriver, make_gemv
from .ger import GerDriver
from .level1 import AxpyDriver, DotDriver, ScalDriver, make_axpy, make_dot, make_scal
from .level3 import Level3


class AugemBLAS:
    """A BLAS built entirely from AUGEM-generated assembly kernels."""

    def __init__(self, arch: Optional[ArchSpec] = None,
                 configs: Optional[Dict[str, OptimizationConfig]] = None,
                 layout: str = "dup",
                 blocks: Optional[BlockSizes] = None,
                 schedule: bool = True) -> None:
        self.arch = arch or detect_host()
        self.configs = configs or {}
        self.layout = layout
        self.blocks = blocks
        self.schedule = schedule
        self._gemm: Optional[GemmDriver] = None
        self._gemv: Optional[GemvDriver] = None
        self._axpy: Optional[AxpyDriver] = None
        self._dot: Optional[DotDriver] = None
        self._scal: Optional[ScalDriver] = None
        self._level3: Optional[Level3] = None
        self._ger: Optional[GerDriver] = None

    # -- lazy kernel construction ------------------------------------------
    @property
    def gemm_driver(self) -> GemmDriver:
        if self._gemm is None:
            self._gemm = make_gemm(
                arch=self.arch,
                config=self.configs.get("gemm"),
                layout=self.layout,
                blocks=self.blocks,
                schedule=self.schedule,
            )
        return self._gemm

    @property
    def gemv_driver(self) -> GemvDriver:
        if self._gemv is None:
            self._gemv = make_gemv(arch=self.arch,
                                   config=self.configs.get("gemv"),
                                   config_n=self.configs.get("gemv_n"),
                                   schedule=self.schedule)
        return self._gemv

    @property
    def axpy_driver(self) -> AxpyDriver:
        if self._axpy is None:
            self._axpy = make_axpy(arch=self.arch,
                                   config=self.configs.get("axpy"),
                                   schedule=self.schedule)
        return self._axpy

    @property
    def dot_driver(self) -> DotDriver:
        if self._dot is None:
            self._dot = make_dot(arch=self.arch,
                                 config=self.configs.get("dot"),
                                 schedule=self.schedule)
        return self._dot

    @property
    def scal_driver(self) -> ScalDriver:
        if self._scal is None:
            self._scal = make_scal(arch=self.arch,
                                   config=self.configs.get("scal"),
                                   schedule=self.schedule)
        return self._scal

    @property
    def level3(self) -> Level3:
        if self._level3 is None:
            self._level3 = Level3(self.gemm_driver)
        return self._level3

    @property
    def ger_driver(self) -> GerDriver:
        if self._ger is None:
            self._ger = GerDriver(self.axpy_driver)
        return self._ger

    # -- BLAS entry points -----------------------------------------------
    def dgemm(self, a, b, c=None, alpha: float = 1.0,
              beta: float = 0.0) -> np.ndarray:
        return self.gemm_driver(a, b, c, alpha=alpha, beta=beta)

    def dgemv(self, a, x, y=None, alpha: float = 1.0, beta: float = 0.0,
              trans: bool = False) -> np.ndarray:
        return self.gemv_driver(a, x, y, alpha=alpha, beta=beta, trans=trans)

    def daxpy(self, alpha: float, x, y) -> np.ndarray:
        return self.axpy_driver(alpha, x, y)

    def ddot(self, x, y) -> float:
        return self.dot_driver(x, y)

    def dscal(self, alpha: float, x) -> np.ndarray:
        return self.scal_driver(alpha, x)

    def dsymm(self, a, b, c=None, alpha: float = 1.0,
              beta: float = 0.0) -> np.ndarray:
        return self.level3.symm(a, b, c, alpha=alpha, beta=beta)

    def dsyrk(self, a, c=None, alpha: float = 1.0,
              beta: float = 0.0) -> np.ndarray:
        return self.level3.syrk(a, c, alpha=alpha, beta=beta)

    def dsyr2k(self, a, b, c=None, alpha: float = 1.0,
               beta: float = 0.0) -> np.ndarray:
        return self.level3.syr2k(a, b, c, alpha=alpha, beta=beta)

    def dtrmm(self, l, b, alpha: float = 1.0) -> np.ndarray:
        return self.level3.trmm(l, b, alpha=alpha)

    def dtrsm(self, l, b, alpha: float = 1.0) -> np.ndarray:
        return self.level3.trsm(l, b, alpha=alpha)

    def dger(self, alpha: float, x, y, a) -> np.ndarray:
        return self.ger_driver(alpha, x, y, a)


_default: Optional[AugemBLAS] = None


def default_blas() -> AugemBLAS:
    """Process-wide AugemBLAS for the host architecture."""
    global _default
    if _default is None:
        _default = AugemBLAS()
    return _default
