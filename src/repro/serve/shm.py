"""Shared-memory operand segments for the BLAS service.

Ownership discipline (see :mod:`repro.serve.protocol`): the **client**
creates every segment and is the only side that ever unlinks one; the
**server** attaches read/write and merely closes its mapping.  That makes
segment lifetime crash-safe in both directions — a SIGKILLed worker holds
no client memory, and a vanished client leaves only segments its own
process (or the OS at reboot) reclaims.

CPython < 3.13 wrinkle: attaching to an existing segment *registers* it
with the ``multiprocessing.resource_tracker``, which then "helpfully"
unlinks it when the attaching process exits — destroying memory it does
not own (bpo-39959).  :func:`attach_array` unregisters the attachment so
the creator stays the sole owner; on 3.13+ it uses ``track=False``.
"""

from __future__ import annotations

import secrets
from multiprocessing import shared_memory
from typing import Iterable, Optional, Tuple

import numpy as np

from .protocol import ArrayRef, ProtocolError

#: refuse to attach anything larger than this (malformed/hostile headers)
MAX_SEGMENT_BYTES = 1 << 31

_SUPPORTS_TRACK: Optional[bool] = None

#: segment names created by THIS process; an in-process attach (the
#: in-thread test worker) must not unregister them — the creator's
#: resource_tracker registration has to survive until its unlink
_CREATED_HERE = set()


def _supports_track() -> bool:
    import inspect

    global _SUPPORTS_TRACK
    if _SUPPORTS_TRACK is None:
        params = inspect.signature(
            shared_memory.SharedMemory.__init__).parameters
        _SUPPORTS_TRACK = "track" in params
    return _SUPPORTS_TRACK


def create_array(shape: Tuple[int, ...],
                 dtype: str = "float64",
                 fill: Optional[np.ndarray] = None,
                 prefix: str = "rblas") -> Tuple[shared_memory.SharedMemory,
                                                 np.ndarray, ArrayRef]:
    """Create a client-owned segment sized for ``shape`` and map it.

    Returns ``(segment, array_view, descriptor)``.  The caller must
    eventually ``close()`` **and** ``unlink()`` the segment (use
    :class:`SegmentSet`).
    """
    dt = np.dtype(dtype)
    nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dt.itemsize)
    name = f"{prefix}_{secrets.token_hex(6)}"
    seg = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    _CREATED_HERE.add(seg._name)
    view = np.ndarray(shape, dtype=dt, buffer=seg.buf)
    if fill is not None:
        view[...] = fill
    return seg, view, ArrayRef(shm=seg.name, shape=tuple(shape),
                               dtype=dt.name)


def attach_array(ref: ArrayRef) -> Tuple[shared_memory.SharedMemory,
                                         np.ndarray]:
    """Attach to a client-owned segment without adopting ownership."""
    dt = np.dtype(ref.dtype)
    nbytes = int(np.prod(ref.shape, dtype=np.int64)) * dt.itemsize
    if nbytes > MAX_SEGMENT_BYTES:
        raise ProtocolError(f"operand {ref.shm} claims {nbytes} bytes "
                            f"(max {MAX_SEGMENT_BYTES})")
    if _supports_track():
        seg = shared_memory.SharedMemory(name=ref.shm, track=False)
    else:
        seg = shared_memory.SharedMemory(name=ref.shm)
        if seg._name not in _CREATED_HERE:
            try:  # undo the attach-side resource_tracker registration
                from multiprocessing import resource_tracker

                resource_tracker.unregister(seg._name, "shared_memory")
            except Exception:
                pass
    if seg.size < nbytes:
        seg.close()
        raise ProtocolError(
            f"operand {ref.shm}: segment holds {seg.size} bytes but the "
            f"descriptor claims shape {ref.shape} ({nbytes} bytes)")
    view = np.ndarray(ref.shape, dtype=dt, buffer=seg.buf)
    return seg, view


class SegmentSet:
    """Context manager owning a batch of client-side segments.

    Guarantees close+unlink of everything allocated through it, even when
    the request fails mid-flight.
    """

    def __init__(self, prefix: str = "rblas") -> None:
        self.prefix = prefix
        self._segments = []

    def add(self, shape: Tuple[int, ...], dtype: str = "float64",
            fill: Optional[np.ndarray] = None
            ) -> Tuple[np.ndarray, ArrayRef]:
        seg, view, ref = create_array(shape, dtype=dtype, fill=fill,
                                      prefix=self.prefix)
        self._segments.append(seg)
        return view, ref

    def release(self) -> None:
        segments, self._segments = self._segments, []
        for seg in segments:
            try:
                seg.close()
            except OSError:
                pass
            try:
                seg.unlink()
            except (OSError, FileNotFoundError):
                pass
            _CREATED_HERE.discard(seg._name)

    def __enter__(self) -> "SegmentSet":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


class AttachedSet:
    """Server-side batch of attached (never-owned) segments."""

    def __init__(self) -> None:
        self._segments = []

    def attach(self, ref: ArrayRef) -> np.ndarray:
        seg, view = attach_array(ref)
        self._segments.append(seg)
        return view

    def close(self) -> None:
        segments, self._segments = self._segments, []
        for seg in segments:
            try:
                seg.close()
            except OSError:
                pass

    def __enter__(self) -> "AttachedSet":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def total_bytes(refs: Iterable[ArrayRef]) -> int:
    return sum(ref.nbytes for ref in refs)
