"""Wire protocol for the BLAS service — header-only frames over a unix
socket, operands in ``multiprocessing.shared_memory``.

Matrices never travel over the socket and are never pickled.  A request
is one JSON *header* frame naming the routine, inline scalars/flags, and
an :class:`ArrayRef` (shared-memory segment name + dtype + shape) for
every operand; the response is another JSON frame.  Every segment is
created, owned, and unlinked by the **client** — the server only ever
attaches, so a crashed worker can never leak client memory and a crashed
client never strands server allocations.

Framing is ``!I`` length prefix + UTF-8 JSON, bounded by
:data:`MAX_FRAME` (headers are tiny; anything bigger is an attack or a
bug).  The routine table :data:`ROUTINES` is shared by the client facade
and the worker so both sides agree on operand names, output semantics
(new array / in-place mutation / inline scalar), and result shapes.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

#: protocol version; a mismatch is a BAD_REQUEST, never a crash
PROTOCOL_VERSION = 1

#: hard bound on one header frame (headers carry no matrix data)
MAX_FRAME = 1 << 20

_LEN = struct.Struct("!I")

# -- error codes (response {"ok": false, "error": {"code": ...}}) -----------
#: queue full — retry after ``retry_after_ms`` (explicit backpressure)
ERR_BUSY = "busy"
#: per-client quota exceeded — retry after ``retry_after_ms``
ERR_QUOTA = "quota"
#: worker is draining; no new work is admitted
ERR_DRAINING = "draining"
#: the request's deadline expired (queued too long or compute too slow)
ERR_DEADLINE = "deadline"
#: malformed header / unknown routine / shape mismatch
ERR_BAD_REQUEST = "bad_request"
#: the routine raised on the worker
ERR_INTERNAL = "internal"

#: codes the client may retry against the same worker
RETRYABLE_CODES = frozenset({ERR_BUSY, ERR_QUOTA})


class ProtocolError(RuntimeError):
    """A malformed or oversized frame (either direction)."""


class PeerGone(ConnectionError):
    """The other end closed the socket mid-conversation."""


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def send_frame(sock: socket.socket, obj: Dict[str, Any]) -> None:
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds "
                            f"MAX_FRAME ({MAX_FRAME})")
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        data = sock.recv(min(n, 1 << 16))
        if not data:
            raise PeerGone("peer closed the connection")
        chunks.append(data)
        n -= len(data)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """One frame, or ``None`` on a clean EOF at a frame boundary."""
    try:
        head = sock.recv(_LEN.size, socket.MSG_WAITALL)
    except OSError:
        raise
    if not head:
        return None
    if len(head) < _LEN.size:
        head += _recv_exact(sock, _LEN.size - len(head))
    (length,) = _LEN.unpack(head)
    if length > MAX_FRAME:
        raise ProtocolError(f"incoming frame claims {length} bytes "
                            f"(max {MAX_FRAME})")
    payload = _recv_exact(sock, length)
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("frame is not a JSON object")
    return obj


# ---------------------------------------------------------------------------
# operand descriptors
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArrayRef:
    """A shared-memory operand: segment name + dtype + shape."""

    shm: str
    shape: Tuple[int, ...]
    dtype: str = "float64"

    @property
    def nbytes(self) -> int:
        n = 8 if self.dtype == "float64" else 8
        for dim in self.shape:
            n *= dim
        return n

    def to_json(self) -> Dict[str, Any]:
        return {"shm": self.shm, "shape": list(self.shape),
                "dtype": self.dtype}

    @classmethod
    def from_json(cls, rec: Any) -> "ArrayRef":
        try:
            shape = tuple(int(d) for d in rec["shape"])
            if any(d < 0 for d in shape):
                raise ValueError("negative dimension")
            return cls(shm=str(rec["shm"]), shape=shape,
                       dtype=str(rec.get("dtype", "float64")))
        except (TypeError, KeyError, ValueError) as exc:
            raise ProtocolError(f"bad array descriptor {rec!r}: {exc}") \
                from None


# ---------------------------------------------------------------------------
# routine table (shared client/server contract)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RoutineSpec:
    """One servable routine family, as the drivers see it.

    ``output`` is ``"new"`` (client sends an ``out`` segment the server
    fills), ``"scalar"`` (result inline in the response), or the name of
    the operand the server mutates in place.
    """

    family: str
    arrays: Tuple[str, ...]                 # required operand names
    optional: Tuple[str, ...] = ()          # operands that may be absent
    scalars: Tuple[str, ...] = ()           # float parameters
    flags: Tuple[str, ...] = ()             # boolean parameters
    output: str = "new"
    #: result shape from operand shapes + flags (``"new"`` outputs only)
    shape_fn: Optional[Callable[[Dict[str, Tuple[int, ...]],
                                 Dict[str, bool]], Tuple[int, ...]]] = None

    def result_shape(self, shapes: Dict[str, Tuple[int, ...]],
                     flags: Dict[str, bool]) -> Tuple[int, ...]:
        assert self.output == "new" and self.shape_fn is not None
        return self.shape_fn(shapes, flags)


ROUTINES: Dict[str, RoutineSpec] = {
    "gemm": RoutineSpec(
        family="gemm", arrays=("a", "b"), optional=("c",),
        scalars=("alpha", "beta"), output="new",
        shape_fn=lambda s, f: (s["a"][0], s["b"][1])),
    "gemv": RoutineSpec(
        family="gemv", arrays=("a", "x"), optional=("y",),
        scalars=("alpha", "beta"), flags=("trans",), output="new",
        shape_fn=lambda s, f: ((s["a"][1],) if f.get("trans")
                               else (s["a"][0],))),
    "axpy": RoutineSpec(
        family="axpy", arrays=("x", "y"), scalars=("alpha",), output="y"),
    "dot": RoutineSpec(
        family="dot", arrays=("x", "y"), output="scalar"),
    "scal": RoutineSpec(
        family="scal", arrays=("x",), scalars=("alpha",), output="x"),
}


# ---------------------------------------------------------------------------
# request / response constructors (keep both sides symmetrical)
# ---------------------------------------------------------------------------

#: quota surcharge divisor for verified requests: ABFT adds O(n²)
#: checksum work on top of the O(n³) routine, so an integrity-flagged
#: request is charged an extra 1/8 of its operand bytes against the
#: per-client byte quota (both sides compute it via charged_bytes())
INTEGRITY_SURCHARGE_SHIFT = 3


def charged_bytes(nbytes: int, integrity: Optional[str]) -> int:
    """Quota bytes for a request: operands + the ABFT verification tax."""
    if integrity and integrity != "off":
        return nbytes + (nbytes >> INTEGRITY_SURCHARGE_SHIFT)
    return nbytes


def call_header(routine: str, client: str, deadline_ms: int,
                arrays: Dict[str, ArrayRef],
                scalars: Dict[str, float], flags: Dict[str, bool],
                out: Optional[ArrayRef],
                integrity: Optional[str] = None) -> Dict[str, Any]:
    header: Dict[str, Any] = {
        "op": "call", "v": PROTOCOL_VERSION, "routine": routine,
        "client": client, "deadline_ms": int(deadline_ms),
        "arrays": {k: v.to_json() for k, v in arrays.items()},
        "scalars": scalars, "flags": flags,
    }
    if out is not None:
        header["out"] = out.to_json()
    if integrity is not None:
        header["integrity"] = str(integrity)
    return header


def ok_response(**extra: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {"ok": True}
    out.update(extra)
    return out


def error_response(code: str, message: str,
                   retry_after_ms: Optional[int] = None) -> Dict[str, Any]:
    err: Dict[str, Any] = {"code": code, "message": str(message)[:300]}
    if retry_after_ms is not None:
        err["retry_after_ms"] = int(retry_after_ms)
    return {"ok": False, "error": err}
