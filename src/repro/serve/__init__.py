"""BLAS-as-a-service: a supervised daemon owning the verified dispatch
chain and hot kernel cache, serving routine calls over a unix socket
with shared-memory operands.

Layers:

- :mod:`repro.serve.protocol` — header-only wire protocol + routine table
- :mod:`repro.serve.shm` — client-owned shared-memory operand segments
- :mod:`repro.serve.quotas` — per-client admission limits + accounting
- :mod:`repro.serve.server` — the worker: bounded queue, deadlines,
  backpressure, graceful drain
- :mod:`repro.serve.supervisor` — crash supervision, restart budget, CLI

The matching client facade lives in :mod:`repro.blas.client`
(``ServedBLAS``): deadline-bounded remote calls with retry, circuit
breaker, and transparent fallback to in-process ``AugemBLAS``.
"""

from .protocol import (ERR_BAD_REQUEST, ERR_BUSY, ERR_DEADLINE,
                       ERR_DRAINING, ERR_INTERNAL, ERR_QUOTA,
                       PROTOCOL_VERSION, ROUTINES, ArrayRef, PeerGone,
                       ProtocolError)
from .quotas import ClientAccount, QuotaBook, QuotaRejected
from .server import ServeConfig, ServeWorker, default_runtime_dir
from .supervisor import ping, read_state, rpc, supervise, wait_ready

__all__ = [
    "ArrayRef", "ClientAccount", "ERR_BAD_REQUEST", "ERR_BUSY",
    "ERR_DEADLINE", "ERR_DRAINING", "ERR_INTERNAL", "ERR_QUOTA",
    "PROTOCOL_VERSION", "PeerGone", "ProtocolError", "QuotaBook",
    "QuotaRejected", "ROUTINES", "ServeConfig", "ServeWorker",
    "default_runtime_dir", "ping", "read_state", "rpc", "supervise",
    "wait_ready",
]
