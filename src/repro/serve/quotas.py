"""Per-client quotas and accounting for the BLAS service.

Every request names a ``client`` identity (the facade sends
``host:pid``).  The :class:`QuotaBook` enforces two admission limits —
concurrent in-flight requests per client and bytes of operand memory per
request — and keeps a full per-client ledger (admitted / completed /
rejections by cause / bytes moved) that the worker reports over the
``status`` op and *seals* to ``accounting.json`` during graceful drain,
so an operator can always answer "who was using this daemon, and how
hard" even after it exits.

Thread-safe: connection threads admit, compute threads release.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from ..backend import fsio
from .protocol import ERR_QUOTA

#: defaults, overridable per-worker via ServeConfig
DEFAULT_MAX_INFLIGHT_PER_CLIENT = 8
DEFAULT_MAX_REQUEST_BYTES = 256 * 1024 * 1024


@dataclass
class ClientAccount:
    """The ledger for one client identity."""

    admitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_quota: int = 0
    rejected_busy: int = 0
    deadline_expired: int = 0
    bytes_in: int = 0
    inflight: int = 0
    inflight_peak: int = 0
    first_seen: float = field(default_factory=time.time)
    last_seen: float = field(default_factory=time.time)


class QuotaRejected(Exception):
    """Admission denied; carries the protocol error code."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


class QuotaBook:
    """Admission limits + per-client accounting for one worker."""

    def __init__(self,
                 max_inflight_per_client: int =
                 DEFAULT_MAX_INFLIGHT_PER_CLIENT,
                 max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES) -> None:
        self.max_inflight_per_client = max_inflight_per_client
        self.max_request_bytes = max_request_bytes
        self._lock = threading.Lock()
        self._clients: Dict[str, ClientAccount] = {}
        self.sealed_at: Optional[float] = None

    def _account(self, client: str) -> ClientAccount:
        account = self._clients.get(client)
        if account is None:
            account = self._clients[client] = ClientAccount()
        account.last_seen = time.time()
        return account

    # -- admission ---------------------------------------------------------

    def admit(self, client: str, request_bytes: int) -> None:
        """Admit one request or raise :class:`QuotaRejected`."""
        with self._lock:
            account = self._account(client)
            if request_bytes > self.max_request_bytes:
                account.rejected_quota += 1
                raise QuotaRejected(
                    ERR_QUOTA,
                    f"request carries {request_bytes} operand bytes "
                    f"(per-request limit {self.max_request_bytes})")
            if account.inflight >= self.max_inflight_per_client:
                account.rejected_quota += 1
                raise QuotaRejected(
                    ERR_QUOTA,
                    f"client {client!r} already has {account.inflight} "
                    f"requests in flight "
                    f"(limit {self.max_inflight_per_client})")
            account.admitted += 1
            account.bytes_in += request_bytes
            account.inflight += 1
            account.inflight_peak = max(account.inflight_peak,
                                        account.inflight)

    def unadmit(self, client: str, request_bytes: int) -> None:
        """Roll back an :meth:`admit` whose request never entered the
        queue (queue-full race); the ledger reads as if it never was."""
        with self._lock:
            account = self._account(client)
            account.admitted = max(0, account.admitted - 1)
            account.bytes_in = max(0, account.bytes_in - request_bytes)
            account.inflight = max(0, account.inflight - 1)

    def note_busy(self, client: str) -> None:
        """Record a queue-full rejection (admission never started)."""
        with self._lock:
            self._account(client).rejected_busy += 1

    def release(self, client: str, outcome: str) -> None:
        """Settle one admitted request: ``ok``/``failed``/``deadline``."""
        with self._lock:
            account = self._account(client)
            account.inflight = max(0, account.inflight - 1)
            if outcome == "ok":
                account.completed += 1
            elif outcome == "deadline":
                account.deadline_expired += 1
            else:
                account.failed += 1

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {client: asdict(account)
                    for client, account in sorted(self._clients.items())}

    def totals(self) -> Dict[str, int]:
        with self._lock:
            keys = ("admitted", "completed", "failed", "rejected_quota",
                    "rejected_busy", "deadline_expired", "inflight")
            out = {k: 0 for k in keys}
            for account in self._clients.values():
                for k in keys:
                    out[k] += getattr(account, k)
            return out

    def seal(self, path: Path) -> None:
        """Write the final ledger atomically (graceful-drain epilogue)."""
        self.sealed_at = time.time()
        record = {"sealed_at": self.sealed_at, "pid": os.getpid(),
                  "clients": self.snapshot(), "totals": self.totals()}
        path = Path(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fsio.atomic_write_json(path, record, tag="serve.accounting")
        except OSError:
            pass  # accounting is best-effort; never block the drain
