"""Supervision for the BLAS service worker.

The daemon is two processes.  The **supervisor** owns the lifecycle:
it spawns the worker (``python -m repro serve worker``), watches it, and
applies one rule relentlessly —

- worker exits **0**: that was a graceful drain; the service is done,
  the supervisor exits 0 too;
- worker exits any other way (crash, SIGKILL, injected ``serve_crash``):
  restart it, up to a budget of restarts per window, with a short
  backoff.  The restarted worker binds the same socket and warms up from
  the on-disk kernel cache and the persisted ISA-probe verdicts, so a
  restart costs milliseconds, not a re-tune.

SIGTERM to the supervisor is forwarded to the worker, which drains
(finishes in-flight work, seals accounting) and exits 0; the supervisor
then exits 0.  If the worker ignores the drain past its grace period it
is SIGKILLed — shutdown always terminates.

``state.json`` in the runtime directory records supervisor/worker pids,
phase, and restart count; ``serve status`` and the test suite read it.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..backend import fsio

from ..obs import event, incr
from .protocol import PROTOCOL_VERSION, recv_frame, send_frame
from .server import ServeConfig

#: restart budget: more than MAX_RESTARTS crashes inside RESTART_WINDOW
#: seconds means the worker is hopeless — give up with exit 1
MAX_RESTARTS = 5
RESTART_WINDOW = 60.0


# ---------------------------------------------------------------------------
# runtime-dir state
# ---------------------------------------------------------------------------

def state_path(runtime_dir: Path) -> Path:
    return Path(runtime_dir) / "state.json"


def read_state(runtime_dir: Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(state_path(runtime_dir).read_text())
    except (OSError, ValueError):
        return None


def _write_state(runtime_dir: Path, **fields: Any) -> None:
    path = state_path(runtime_dir)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fsio.atomic_write_json(path, fields, tag="serve.state")
    except OSError:
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


# ---------------------------------------------------------------------------
# socket RPC helper (CLI + tests)
# ---------------------------------------------------------------------------

def rpc(socket_path: Path, header: Dict[str, Any],
        timeout: float = 5.0) -> Optional[Dict[str, Any]]:
    """One request/response round-trip; None when the worker is gone."""
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout)
            sock.connect(str(socket_path))
            send_frame(sock, header)
            return recv_frame(sock)
    except (OSError, ValueError):
        return None


def ping(socket_path: Path, timeout: float = 2.0) -> bool:
    reply = rpc(socket_path, {"op": "ping", "v": PROTOCOL_VERSION},
                timeout=timeout)
    return bool(reply and reply.get("ok"))


def wait_ready(socket_path: Path, timeout: float = 20.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if ping(socket_path, timeout=1.0):
            return True
        time.sleep(0.05)
    return False


# ---------------------------------------------------------------------------
# the supervisor loop
# ---------------------------------------------------------------------------

def _child_env(role: str) -> Dict[str, str]:
    """The environment for a spawned serve process, with ``REPRO_TRACE``
    re-pointed to a per-role file.

    Every process truncates its trace path on init, so the CLI, the
    supervisor, and each worker sharing one ``REPRO_TRACE`` would write
    three interleaved truncations — a corrupt trace.  Each spawn derives
    a role-suffixed path from its parent's (``serve start`` with
    ``REPRO_TRACE=run.jsonl`` yields ``run.supervisor.jsonl`` and
    ``run.supervisor.worker0.jsonl``), keeping every file a valid JSONL
    stream — and a restarted worker gets a fresh suffix instead of
    clobbering the crashed one's evidence.
    """
    env = dict(os.environ)
    raw = (env.get("REPRO_TRACE") or "").strip()
    if not raw or raw == "-" or raw.lower() in _TRACE_OFF_VALUES:
        return env
    path = Path(raw)
    suffix = path.suffix or ".jsonl"
    env["REPRO_TRACE"] = str(path.with_name(f"{path.stem}.{role}{suffix}"))
    return env


#: mirrors obs.trace._OFF_VALUES (private there; the set is stable)
_TRACE_OFF_VALUES = {"", "0", "off", "none", "false", "disabled"}


def _worker_argv(config: ServeConfig) -> List[str]:
    argv = [
        sys.executable, "-m", "repro", "serve", "worker",
        "--runtime-dir", str(config.runtime_dir),
        "--socket", str(config.socket_path),
        "--threads", str(config.compute_threads),
        "--queue-capacity", str(config.queue_capacity),
        "--max-inflight", str(config.max_inflight_per_client),
        "--drain-grace", str(config.drain_grace),
        "--warmup", ",".join(config.warmup) or "none",
    ]
    if config.gemm_threads is not None:
        argv += ["--gemm-threads", str(config.gemm_threads)]
    if config.integrity is not None:
        argv += ["--integrity", str(config.integrity)]
    return argv


def supervise(config: ServeConfig) -> int:
    """Run the supervisor loop in the foreground; returns its exit code."""
    runtime_dir = config.runtime_dir
    runtime_dir.mkdir(parents=True, exist_ok=True)
    stopping = {"flag": False}
    worker: Dict[str, Optional[subprocess.Popen]] = {"proc": None}
    restart_times: List[float] = []
    restarts = 0

    def on_sigterm(signum, _frame) -> None:
        stopping["flag"] = True
        proc = worker["proc"]
        if proc is not None and proc.poll() is None:
            try:
                proc.send_signal(signal.SIGTERM)
            except OSError:
                pass

    signal.signal(signal.SIGTERM, on_sigterm)
    signal.signal(signal.SIGINT, on_sigterm)

    def spawn() -> subprocess.Popen:
        proc = subprocess.Popen(_worker_argv(config),
                                env=_child_env(f"worker{restarts}"))
        worker["proc"] = proc
        _write_state(runtime_dir, supervisor_pid=os.getpid(),
                     worker_pid=proc.pid, restarts=restarts,
                     phase="running", started=time.time(),
                     socket=str(config.socket_path))
        return proc

    proc = spawn()
    exit_code = 0
    try:
        while True:
            if stopping["flag"]:
                _write_state(runtime_dir, supervisor_pid=os.getpid(),
                             worker_pid=proc.pid, restarts=restarts,
                             phase="stopping", socket=str(config.socket_path))
                try:
                    proc.wait(timeout=config.drain_grace + 5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
                exit_code = 0
                break
            try:
                status = proc.wait(timeout=0.2)
            except subprocess.TimeoutExpired:
                continue
            if stopping["flag"] or status == 0:
                # graceful drain (signal raced the wait, or drain op)
                exit_code = 0
                break
            # crash path: prune the restart window, check the budget
            now = time.monotonic()
            restart_times.append(now)
            while restart_times and now - restart_times[0] > RESTART_WINDOW:
                restart_times.pop(0)
            incr("serve.worker_restart")
            event("serve.worker_restart", exit_status=status,
                  restarts=restarts + 1)
            if len(restart_times) > MAX_RESTARTS:
                _write_state(runtime_dir, supervisor_pid=os.getpid(),
                             worker_pid=None, restarts=restarts,
                             phase="gave_up", socket=str(config.socket_path))
                return 1
            restarts += 1
            time.sleep(min(0.1 * (2 ** min(len(restart_times), 5)), 2.0))
            proc = spawn()
    finally:
        _write_state(runtime_dir, supervisor_pid=os.getpid(),
                     worker_pid=None, restarts=restarts, phase="exited",
                     socket=str(config.socket_path))
    return exit_code


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------

def start(config: ServeConfig, foreground: bool = False) -> int:
    """Start the supervised daemon; background by default."""
    state = read_state(config.runtime_dir)
    if state and state.get("phase") in ("running", "stopping"):
        pid = state.get("supervisor_pid")
        if pid and _pid_alive(int(pid)) and ping(config.socket_path):
            print(f"already serving on {config.socket_path} "
                  f"(supervisor pid {pid})")
            return 0
    if foreground:
        return supervise(config)
    config.runtime_dir.mkdir(parents=True, exist_ok=True)
    log_path = config.runtime_dir / "serve.log"
    argv = [sys.executable, "-m", "repro", "serve", "supervise",
            "--runtime-dir", str(config.runtime_dir),
            "--socket", str(config.socket_path),
            "--threads", str(config.compute_threads),
            "--queue-capacity", str(config.queue_capacity),
            "--max-inflight", str(config.max_inflight_per_client),
            "--drain-grace", str(config.drain_grace),
            "--warmup", ",".join(config.warmup) or "none"]
    if config.gemm_threads is not None:
        argv += ["--gemm-threads", str(config.gemm_threads)]
    if config.integrity is not None:
        argv += ["--integrity", str(config.integrity)]
    with open(log_path, "ab") as log:
        proc = subprocess.Popen(argv, stdout=log, stderr=log,
                                start_new_session=True,
                                env=_child_env("supervisor"))
    if not wait_ready(config.socket_path, timeout=30.0):
        print(f"worker did not come up; see {log_path}", file=sys.stderr)
        try:
            proc.send_signal(signal.SIGTERM)
        except OSError:
            pass
        return 1
    print(f"serving on {config.socket_path} (supervisor pid {proc.pid})")
    return 0


def stop(runtime_dir: Path, timeout: float = 35.0) -> int:
    """SIGTERM the supervisor (graceful drain) and wait for it to exit."""
    state = read_state(runtime_dir)
    pid = state.get("supervisor_pid") if state else None
    if not pid or not _pid_alive(int(pid)):
        print("not running")
        return 2
    try:
        os.kill(int(pid), signal.SIGTERM)
    except OSError as exc:
        print(f"signal failed: {exc}", file=sys.stderr)
        return 1
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not _pid_alive(int(pid)):
            print("stopped (drained)")
            return 0
        time.sleep(0.05)
    print(f"supervisor {pid} did not exit within {timeout}s",
          file=sys.stderr)
    return 1


def drain(config: ServeConfig, timeout: float = 35.0) -> int:
    """Ask the worker to drain over the socket; fall back to SIGTERM."""
    reply = rpc(config.socket_path,
                {"op": "drain", "v": PROTOCOL_VERSION,
                 "timeout": config.drain_grace},
                timeout=timeout)
    if reply and reply.get("ok"):
        print(f"drained; accounting sealed to "
              f"{reply.get('accounting', '?')}")
        state = read_state(config.runtime_dir)
        pid = state.get("supervisor_pid") if state else None
        if pid:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and _pid_alive(int(pid)):
                time.sleep(0.05)
        return 0
    return stop(config.runtime_dir, timeout=timeout)


def status(config: ServeConfig) -> int:
    """Print supervisor + worker health; exit 0 healthy, 2 down."""
    state = read_state(config.runtime_dir) or {}
    sup_pid = state.get("supervisor_pid")
    sup_alive = bool(sup_pid and _pid_alive(int(sup_pid)))
    reply = rpc(config.socket_path,
                {"op": "status", "v": PROTOCOL_VERSION}, timeout=3.0)
    print(f"runtime dir : {config.runtime_dir}")
    print(f"socket      : {config.socket_path}")
    print(f"supervisor  : pid {sup_pid or '-'} "
          f"({'alive' if sup_alive else 'dead'}), "
          f"phase {state.get('phase', '?')}, "
          f"restarts {state.get('restarts', 0)}")
    if not (reply and reply.get("ok")):
        print("worker      : unreachable")
        return 2
    ws = reply.get("status", {})
    queue_info = ws.get("queue", {})
    totals = ws.get("requests", {})
    print(f"worker      : pid {ws.get('pid')}, "
          f"up {ws.get('uptime_s', 0):.1f}s, "
          f"{'draining' if ws.get('draining') else 'accepting'}")
    print(f"queue       : {queue_info.get('depth', 0)}/"
          f"{queue_info.get('capacity', 0)} "
          f"(peak {queue_info.get('peak', 0)})")
    print(f"requests    : admitted {totals.get('admitted', 0)}, "
          f"completed {totals.get('completed', 0)}, "
          f"failed {totals.get('failed', 0)}, "
          f"deadline {totals.get('deadline_expired', 0)}, "
          f"rejected busy/quota {totals.get('rejected_busy', 0)}/"
          f"{totals.get('rejected_quota', 0)}")
    print(f"dispatch    : probes_run {ws.get('probes_run', 0)}, "
          f"verdicts_preloaded {ws.get('verdicts_preloaded', 0)}")
    if ws.get("disk_degraded"):
        print(f"disk        : DEGRADED ({ws['disk_degraded']}) — "
              f"serving with in-memory caching only")
    integ = ws.get("integrity")
    if integ:
        print(f"integrity   : mode {integ.get('mode', 'off')}, "
              f"checks {integ.get('checks', 0)}, "
              f"mismatches {integ.get('mismatches', 0)}, "
              f"quarantines {integ.get('quarantines', 0)}")
    for routine, tier in sorted(ws.get("routines", {}).items()):
        print(f"  {routine:<10} -> {tier}")
    return 0
