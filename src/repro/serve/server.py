"""The BLAS service worker: a failure-first request engine.

One worker process owns a hardened :class:`~repro.blas.api.AugemBLAS`
(verified dispatch chain, hot kernel cache) and serves routine calls over
a unix-domain socket using the header-only protocol of
:mod:`repro.serve.protocol`.  It is engineered for the ways a shared
service dies, in order of likelihood:

- **overload** — admission runs through a *bounded* queue; when it is
  full the worker answers ``busy`` with a ``retry_after_ms`` hint instead
  of buffering without bound (explicit backpressure);
- **monopolization** — per-client in-flight and per-request byte quotas
  (:mod:`repro.serve.quotas`) keep one greedy client from starving the
  rest, with full accounting;
- **slow requests** — every request carries a deadline; a request that
  expires while queued is cancelled without running, and one that
  expires mid-compute is answered ``deadline`` (the client has already
  fallen back — the result is discarded);
- **worker death** — the supervisor (:mod:`repro.serve.supervisor`)
  restarts a crashed worker, which warms up from the on-disk kernel
  cache *and* the persisted ISA-probe verdicts
  (:func:`repro.blas.dispatch.load_tier_verdicts`), so a restart never
  re-runs sandboxed probes;
- **shutdown** — SIGTERM (or the ``drain`` op) triggers graceful drain:
  stop admitting, finish everything in flight, seal the accounting
  ledger to ``accounting.json``, exit 0.

Deterministic chaos: ``REPRO_FAULT_INJECT=serve_crash@#N`` /
``serve_stall@#N`` / ``serve_reject@#N`` fire at the worker's N-th call,
so every one of those edges is testable on demand.
"""

from __future__ import annotations

import os
import queue
import select
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..backend import fsio
from ..backend.cache import cache_root
from ..backend.faults import take_fault
from ..blas import dispatch
from ..blas.api import AugemBLAS
from ..blas.integrity import STATS as integrity_stats
from ..blas.integrity import IntegrityReport, resolve_integrity
from ..blas.threading import reset_pools
from ..obs import event, incr, span
from . import protocol
from .protocol import (ERR_BAD_REQUEST, ERR_BUSY, ERR_DEADLINE, ERR_DRAINING,
                       ERR_INTERNAL, ArrayRef, PeerGone, ProtocolError,
                       ROUTINES, error_response, ok_response, recv_frame,
                       send_frame)
from .quotas import (DEFAULT_MAX_INFLIGHT_PER_CLIENT,
                     DEFAULT_MAX_REQUEST_BYTES, QuotaBook, QuotaRejected)
from .shm import AttachedSet

#: worker exit codes (the supervisor keys restart decisions off these)
EXIT_DRAINED = 0          # graceful drain completed; do not restart
EXIT_FAULT_CRASH = 86     # injected serve_crash (looks like any crash)

#: cap on an injected stall, so a faulted worker always recovers
STALL_CAP = 10.0


def default_runtime_dir() -> Path:
    """``$REPRO_SERVE_DIR`` > ``<cache root>/serve`` > per-uid tmp dir."""
    raw = os.environ.get("REPRO_SERVE_DIR")
    if raw:
        return Path(raw).expanduser()
    croot = cache_root()
    if croot is not None:
        return Path(croot) / "serve"
    return Path(f"/tmp/repro-serve-{os.getuid()}")


@dataclass
class ServeConfig:
    """Everything a worker (and its supervisor) needs to run."""

    runtime_dir: Path = field(default_factory=default_runtime_dir)
    socket_path: Optional[Path] = None
    compute_threads: int = 2
    gemm_threads: Optional[int] = None  # per-call GEMM parallelism
    integrity: Optional[str] = None     # worker ABFT mode (off/sample/full)
    queue_capacity: int = 32
    max_inflight_per_client: int = DEFAULT_MAX_INFLIGHT_PER_CLIENT
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES
    retry_after_ms: int = 50
    drain_grace: float = 30.0
    warmup: Tuple[str, ...] = ("gemm",)

    def __post_init__(self) -> None:
        self.runtime_dir = Path(self.runtime_dir)
        if self.socket_path is None:
            self.socket_path = self.runtime_dir / "serve.sock"
        self.socket_path = Path(self.socket_path)

    @property
    def accounting_path(self) -> Path:
        return self.runtime_dir / "accounting.json"

    @property
    def verdict_path(self) -> Path:
        """Where ISA-probe verdicts persist across worker restarts."""
        croot = cache_root()
        if croot is not None:
            return Path(croot) / "serve_verdicts.json"
        return self.runtime_dir / "verdicts.json"


class _Request:
    """One admitted call moving from a connection thread to compute."""

    __slots__ = ("header", "client", "routine", "deadline", "done",
                 "response", "abandoned", "index", "nbytes")

    def __init__(self, header: Dict[str, Any], client: str, routine: str,
                 deadline: float, index: int, nbytes: int) -> None:
        self.header = header
        self.client = client
        self.routine = routine
        self.deadline = deadline
        self.index = index
        self.nbytes = nbytes
        self.done = threading.Event()
        self.response: Optional[Dict[str, Any]] = None
        self.abandoned = False


_SENTINEL = object()


class ServeWorker:
    """The long-lived request engine behind one unix socket."""

    def __init__(self, config: ServeConfig,
                 install_signal_handlers: bool = False) -> None:
        self.config = config
        self.quotas = QuotaBook(
            max_inflight_per_client=config.max_inflight_per_client,
            max_request_bytes=config.max_request_bytes)
        self.queue: "queue.Queue" = queue.Queue(
            maxsize=max(1, config.queue_capacity))
        self._install_signals = install_signal_handlers
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._drain_started = threading.Lock()
        self._state_lock = threading.Lock()
        self._blas: Optional[AugemBLAS] = None
        self._call_index = 0          # per-worker; drives serve faults
        self._queue_peak = 0
        self._started_at = time.time()
        self.verdicts_preloaded = 0
        self._persisted_state = (-1, -1)
        self.exit_code = EXIT_DRAINED

    # -- lazy BLAS (the expensive startup work the daemon amortizes) -------

    @property
    def blas(self) -> AugemBLAS:
        if self._blas is None:
            with self._state_lock:
                if self._blas is None:
                    self._blas = AugemBLAS(
                        threads=self.config.gemm_threads,
                        integrity=self.config.integrity)
        return self._blas

    def _driver_for(self, routine: str):
        return {
            "gemm": lambda: self.blas.gemm_driver,
            "gemv": lambda: self.blas.gemv_driver,
            "axpy": lambda: self.blas.axpy_driver,
            "dot": lambda: self.blas.dot_driver,
            "scal": lambda: self.blas.scal_driver,
        }[routine]()

    def _warmup(self) -> None:
        """Build the configured routine families before accepting work."""
        for routine in self.config.warmup:
            if routine in ROUTINES:
                try:
                    with span("serve.warmup", routine=routine):
                        self._driver_for(routine)
                except Exception:  # noqa: BLE001 - served lazily later
                    pass
        self._persist_verdicts()

    def _persist_verdicts(self) -> None:
        """Save fresh tier verdicts so a restart starts warm.

        Keyed on the verdict *revision*, not just the probe count — an
        integrity demotion (no new probe) must survive a supervisor
        restart exactly like a probe failure does.
        """
        with self._state_lock:
            state = (dispatch.probes_executed(),
                     dispatch.verdicts_revision())
            if state == self._persisted_state:
                return
            dispatch.save_tier_verdicts(self.config.verdict_path)
            self._persisted_state = state

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> int:
        """Serve until drained; returns the worker exit code."""
        cfg = self.config
        cfg.runtime_dir.mkdir(parents=True, exist_ok=True)
        self.verdicts_preloaded = dispatch.load_tier_verdicts(
            cfg.verdict_path)
        if self._install_signals:
            signal.signal(signal.SIGTERM, self._on_signal)
            signal.signal(signal.SIGINT, self._on_signal)

        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            cfg.socket_path.unlink()
        except OSError:
            pass
        listener.bind(str(cfg.socket_path))
        listener.listen(64)
        listener.setblocking(False)
        self._listener = listener

        workers = [threading.Thread(target=self._compute_loop, daemon=True,
                                    name=f"serve-compute-{i}")
                   for i in range(max(1, cfg.compute_threads))]
        for t in workers:
            t.start()
        self._warmup()
        event("serve.ready", socket=str(cfg.socket_path), pid=os.getpid())

        try:
            while not self._stop.is_set():
                try:
                    ready, _, _ = select.select([listener], [], [], 0.2)
                except OSError:
                    break
                if not ready:
                    continue
                try:
                    conn, _ = listener.accept()
                except OSError:
                    continue
                threading.Thread(target=self._serve_conn, args=(conn,),
                                 daemon=True).start()
        finally:
            try:
                listener.close()
            except OSError:
                pass
            for _ in workers:
                self.queue.put(_SENTINEL)
            for t in workers:
                t.join(timeout=2.0)
            reset_pools()
            try:
                cfg.socket_path.unlink()
            except OSError:
                pass
        return self.exit_code

    def _on_signal(self, signum, _frame) -> None:
        threading.Thread(target=self.drain, daemon=True,
                         name="serve-drain").start()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: admit nothing, finish in-flight, seal, stop."""
        if not self._drain_started.acquire(blocking=False):
            return  # a drain is already running
        timeout = self.config.drain_grace if timeout is None else timeout
        with span("serve.drain"):
            self._draining.set()
            incr("serve.drain")
            event("serve.drain", phase="begin",
                  inflight=self.quotas.totals()["inflight"],
                  queued=self.queue.qsize())
            deadline = time.monotonic() + max(0.0, timeout)
            while time.monotonic() < deadline:
                if self.queue.qsize() == 0 \
                        and self.quotas.totals()["inflight"] == 0:
                    break
                time.sleep(0.02)
            self.quotas.seal(self.config.accounting_path)
            self._persist_verdicts()
            # release pooled packing/integrity scratch: a drained worker
            # must not hold buffer memory across supervisor restarts
            released = reset_pools()
            event("serve.drain", phase="sealed",
                  pool_bytes_released=released)
        self._stop.set()

    # -- connection handling -----------------------------------------------

    def _serve_conn(self, conn: socket.socket) -> None:
        conn.settimeout(0.5)
        try:
            while not self._stop.is_set():
                try:
                    header = recv_frame(conn)
                except (TimeoutError, socket.timeout):
                    continue
                except (PeerGone, ProtocolError, OSError):
                    break
                if header is None:
                    break
                try:
                    if not self._dispatch_op(conn, header):
                        break
                except (BrokenPipeError, ConnectionError, OSError):
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch_op(self, conn: socket.socket,
                     header: Dict[str, Any]) -> bool:
        """Handle one frame; returns False to close the connection."""
        op = header.get("op")
        if op == "ping":
            send_frame(conn, ok_response(pid=os.getpid()))
            return True
        if op == "status":
            send_frame(conn, ok_response(status=self.status()))
            return True
        if op == "drain":
            # drain synchronously so the requester learns completion;
            # the accept loop exits right after we reply
            self.drain(timeout=float(header.get("timeout",
                                                self.config.drain_grace)))
            send_frame(conn, ok_response(drained=True,
                                         accounting=str(
                                             self.config.accounting_path)))
            return False
        if op == "call":
            self._handle_call(conn, header)
            return True
        send_frame(conn, error_response(ERR_BAD_REQUEST,
                                        f"unknown op {op!r}"))
        return True

    # -- admission ---------------------------------------------------------

    def _handle_call(self, conn: socket.socket,
                     header: Dict[str, Any]) -> None:
        cfg = self.config
        routine = str(header.get("routine", ""))
        client = str(header.get("client", "anonymous"))[:120]
        if header.get("v") != protocol.PROTOCOL_VERSION:
            send_frame(conn, error_response(
                ERR_BAD_REQUEST,
                f"protocol version {header.get('v')!r}, "
                f"want {protocol.PROTOCOL_VERSION}"))
            return
        if routine not in ROUTINES:
            send_frame(conn, error_response(ERR_BAD_REQUEST,
                                            f"unknown routine {routine!r}"))
            return
        with self._state_lock:
            index = self._call_index
            self._call_index += 1

        fault = take_fault("serve", tag=routine, index=index)
        if fault == "serve_crash":
            # die exactly like a rogue kernel would: no goodbye frame,
            # no atexit, mid-request from the client's point of view
            os._exit(EXIT_FAULT_CRASH)
        if fault == "serve_reject":
            incr("serve.rejected_busy")
            self.quotas.note_busy(client)
            send_frame(conn, error_response(
                ERR_BUSY, "injected backpressure (serve_reject)",
                retry_after_ms=cfg.retry_after_ms))
            return
        if fault == "serve_stall":
            # outlive the deadline but stay inside the client's socket
            # timeout (deadline + 1s) so the deadline answer is seen
            deadline_ms = int(header.get("deadline_ms", 1000))
            time.sleep(min(deadline_ms / 1000.0 + 0.4, STALL_CAP))
            incr("serve.deadline_expired")
            send_frame(conn, error_response(
                ERR_DEADLINE, "injected stall outlived the deadline"))
            return

        if self._draining.is_set():
            incr("serve.rejected_draining")
            send_frame(conn, error_response(
                ERR_DRAINING, "worker is draining; no new work admitted"))
            return

        req_integrity = header.get("integrity")
        if req_integrity is not None:
            try:
                req_integrity = str(req_integrity)
                resolve_integrity(req_integrity)
            except ValueError as exc:
                send_frame(conn, error_response(ERR_BAD_REQUEST, str(exc)))
                return
            incr("serve.integrity_requests")

        try:
            nbytes = sum(
                ArrayRef.from_json(rec).nbytes
                for rec in (header.get("arrays") or {}).values())
            if header.get("out"):
                nbytes += ArrayRef.from_json(header["out"]).nbytes
        except ProtocolError as exc:
            send_frame(conn, error_response(ERR_BAD_REQUEST, str(exc)))
            return
        # verified requests pay for their O(n²) checksum work
        nbytes = protocol.charged_bytes(nbytes, req_integrity)

        try:
            self.quotas.admit(client, nbytes)
        except QuotaRejected as exc:
            incr("serve.rejected_quota")
            send_frame(conn, error_response(
                exc.code, str(exc), retry_after_ms=cfg.retry_after_ms))
            return

        deadline_ms = int(header.get("deadline_ms", 1000))
        request = _Request(header, client, routine,
                           deadline=time.monotonic() + deadline_ms / 1000.0,
                           index=index, nbytes=nbytes)
        try:
            self.queue.put_nowait(request)
        except queue.Full:
            self.quotas.unadmit(client, nbytes)
            self.quotas.note_busy(client)
            incr("serve.rejected_busy")
            send_frame(conn, error_response(
                ERR_BUSY,
                f"admission queue full ({self.queue.maxsize})",
                retry_after_ms=cfg.retry_after_ms))
            return
        incr("serve.request")
        with self._state_lock:
            depth = self.queue.qsize()
            if depth > self._queue_peak:
                # additive counters flush once at trace close, so keep
                # the running total equal to the high-water mark
                incr("serve.queue_depth", depth - self._queue_peak)
                self._queue_peak = depth

        grace = 0.25
        finished = request.done.wait(
            max(0.0, request.deadline - time.monotonic()) + grace)
        if not finished or request.response is None:
            request.abandoned = True
            incr("serve.deadline_expired")
            self.quotas.release(client, "deadline")
            send_frame(conn, error_response(
                ERR_DEADLINE, f"deadline of {deadline_ms}ms expired"))
            return
        response = request.response
        if response.get("ok"):
            self.quotas.release(client, "ok")
        elif response.get("error", {}).get("code") == ERR_DEADLINE:
            self.quotas.release(client, "deadline")
        else:
            self.quotas.release(client, "failed")
        send_frame(conn, response)

    # -- compute -----------------------------------------------------------

    def _compute_loop(self) -> None:
        while True:
            request = self.queue.get()
            if request is _SENTINEL:
                return
            if request.abandoned:
                continue
            with span("serve.request", routine=request.routine,
                      client=request.client, index=request.index,
                      queue_depth=self.queue.qsize()) as sp:
                if time.monotonic() > request.deadline:
                    # cancelled while queued: never runs
                    request.response = error_response(
                        ERR_DEADLINE, "deadline expired while queued")
                    sp.set(status="cancelled")
                else:
                    request.response = self._execute(request)
                    sp.set(status="ok" if request.response.get("ok")
                           else request.response["error"]["code"])
            # persist before acknowledging: a demotion this request
            # triggered must be durable by the time its reply (which
            # reports the quarantine) reaches the client
            self._persist_verdicts()
            request.done.set()

    def _execute(self, request: _Request) -> Dict[str, Any]:
        header = request.header
        spec = ROUTINES[request.routine]
        try:
            driver = self._driver_for(request.routine)
        except Exception as exc:  # noqa: BLE001 - construction failure
            return error_response(ERR_INTERNAL,
                                  f"driver unavailable: {exc}")
        try:
            with AttachedSet() as attached:
                arrays: Dict[str, np.ndarray] = {}
                raw = header.get("arrays") or {}
                for name in spec.arrays:
                    if name not in raw:
                        return error_response(
                            ERR_BAD_REQUEST, f"missing operand {name!r}")
                    arrays[name] = attached.attach(ArrayRef.from_json(
                        raw[name]))
                for name in spec.optional:
                    if raw.get(name):
                        arrays[name] = attached.attach(ArrayRef.from_json(
                            raw[name]))
                scalars = {name: float((header.get("scalars") or {})
                                       .get(name, 0.0))
                           for name in spec.scalars}
                flags = {name: bool((header.get("flags") or {})
                                    .get(name, False))
                         for name in spec.flags}
                return self._run_routine(request.routine, driver, spec,
                                         arrays, scalars, flags, header,
                                         attached)
        except ProtocolError as exc:
            return error_response(ERR_BAD_REQUEST, str(exc))
        except FileNotFoundError as exc:
            return error_response(ERR_BAD_REQUEST,
                                  f"operand segment vanished: {exc}")
        except Exception as exc:  # noqa: BLE001 - routine blew up
            incr("serve.internal_error")
            return error_response(ERR_INTERNAL,
                                  f"{type(exc).__name__}: {exc}")

    def _run_routine(self, routine: str, driver, spec, arrays, scalars,
                     flags, header, attached: AttachedSet) -> Dict[str, Any]:
        # Per-request ABFT: a flagged request runs the driver in the
        # requested mode and gets the verdict back in the response, so
        # clients can audit correction/quarantine activity per call.
        req_integrity = header.get("integrity")
        report: Optional[IntegrityReport] = None
        kwargs: Dict[str, Any] = {}
        if (req_integrity is not None
                and getattr(driver, "supports_integrity", False)):
            report = IntegrityReport()
            kwargs = {"integrity": str(req_integrity),
                      "integrity_report": report}

        def done(response: Dict[str, Any]) -> Dict[str, Any]:
            if report is not None:
                response["integrity"] = report.to_json()
            return response

        if routine == "gemm":
            result = driver(arrays["a"], arrays["b"], arrays.get("c"),
                            alpha=scalars["alpha"], beta=scalars["beta"],
                            **kwargs)
        elif routine == "gemv":
            result = driver(arrays["a"], arrays["x"], arrays.get("y"),
                            alpha=scalars["alpha"], beta=scalars["beta"],
                            trans=flags["trans"], **kwargs)
        elif routine == "axpy":
            driver(scalars["alpha"], arrays["x"], arrays["y"], **kwargs)
            return done(ok_response(result="y"))
        elif routine == "dot":
            return done(ok_response(value=float(driver(arrays["x"],
                                                       arrays["y"],
                                                       **kwargs))))
        elif routine == "scal":
            driver(scalars["alpha"], arrays["x"], **kwargs)
            return done(ok_response(result="x"))
        else:  # unreachable: admission validated the routine
            return error_response(ERR_BAD_REQUEST,
                                  f"unservable routine {routine!r}")
        out_rec = header.get("out")
        if not out_rec:
            return error_response(ERR_BAD_REQUEST,
                                  f"{routine} needs an 'out' segment")
        out_view = attached.attach(ArrayRef.from_json(out_rec))
        result = np.asarray(result, dtype=np.float64)
        if result.shape != out_view.shape:
            return error_response(
                ERR_BAD_REQUEST,
                f"result shape {result.shape} does not fit out segment "
                f"{out_view.shape}")
        out_view[...] = result
        return done(ok_response(result="out"))

    # -- introspection -----------------------------------------------------

    def status(self) -> Dict[str, Any]:
        routines: Dict[str, str] = {}
        if self._blas is not None:
            routines = {name: info.tier for name, info
                        in self._blas.dispatch_report().items()}
        return {
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self._started_at, 3),
            "draining": self._draining.is_set(),
            "queue": {"depth": self.queue.qsize(),
                      "capacity": self.queue.maxsize,
                      "peak": self._queue_peak},
            "requests": self.quotas.totals(),
            "clients": self.quotas.snapshot(),
            "probes_run": dispatch.probes_executed(),
            "verdicts_preloaded": self.verdicts_preloaded,
            "disk_degraded": fsio.disk_degraded(),
            "routines": routines,
            "calls": self._call_index,
            "gemm_threads": self.config.gemm_threads,
            "integrity": {
                "mode": resolve_integrity(self.config.integrity)[0],
                **integrity_stats.snapshot(),
            },
        }


def run_worker(config: ServeConfig) -> int:
    """CLI entry: run one worker in the foreground with signal handling."""
    worker = ServeWorker(config, install_signal_handlers=True)
    return worker.run()
