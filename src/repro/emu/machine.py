"""x86-64 subset interpreter.

Executes the instruction streams produced by the Assembly Kernel Generator
— the exact IR that is also printed as GAS — against numpy-backed memory.
This gives the test suite an oracle for *any* architecture spec (including
FMA4/Piledriver code the host cannot run) and validates instruction
semantics independently of the native toolchain.

Supported: the GP/SSE/AVX/FMA vocabulary in
:data:`repro.isa.instructions.INSTR_INFO`.  Vector registers are modelled
as four float64 lanes; VEX-encoded 128-bit writes zero the upper lanes,
legacy SSE writes preserve them, matching hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from ..isa.instructions import Instr, Item, Label
from ..isa.operands import Imm, LabelRef, Mem
from ..isa.registers import Register
from .memory import Memory

_U64 = 2 ** 64
_S64_MAX = 2 ** 63 - 1


def _to_signed(v: int) -> int:
    v &= _U64 - 1
    return v - _U64 if v > _S64_MAX else v


class EmuError(RuntimeError):
    """Bad instruction, unmapped label, or runaway execution."""


def _fma(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Fused multiply-add with a *single* rounding, matching hardware FMA.

    numpy has no fma ufunc; exact semantics come from rational arithmetic
    (Fraction -> float conversion rounds correctly once).  Non-finite
    inputs fall back to ordinary float arithmetic.
    """
    from fractions import Fraction

    a = np.atleast_1d(a)
    b = np.atleast_1d(b)
    c = np.atleast_1d(c)
    out = np.empty_like(a)
    for i in range(len(out)):
        ai, bi, ci = float(a[i]), float(b[i]), float(c[i])
        if not (np.isfinite(ai) and np.isfinite(bi) and np.isfinite(ci)):
            out[i] = ai * bi + ci
        else:
            exact = Fraction(ai) * Fraction(bi) + Fraction(ci)
            try:
                out[i] = float(exact)
            except OverflowError:  # rounds past DBL_MAX -> +/-inf
                out[i] = np.inf if exact > 0 else -np.inf
    return out


@dataclass
class MachineState:
    gp: Dict[str, int] = field(default_factory=dict)
    vec: np.ndarray = field(default_factory=lambda: np.zeros((16, 4)))
    # last flag-setting operation, stored as (signed_result_for_zero_cmp)
    cmp_dst: int = 0
    cmp_src: int = 0
    steps: int = 0

    def read_gp(self, reg: Register) -> int:
        return self.gp.get(reg.name, 0)

    def write_gp(self, reg: Register, value: int) -> None:
        self.gp[reg.name] = value & (_U64 - 1)


class Machine:
    """Interprets an item stream as one function activation."""

    def __init__(self, items: List[Item], memory: Memory,
                 max_steps: int = 500_000_000) -> None:
        self.items = list(items)
        self.mem = memory
        self.max_steps = max_steps
        self.state = MachineState()
        self.labels: Dict[str, int] = {}
        for idx, it in enumerate(self.items):
            if isinstance(it, Label):
                if it.name in self.labels:
                    raise EmuError(f"duplicate label {it.name}")
                self.labels[it.name] = idx

    # -- operand access -----------------------------------------------------
    def _mem_addr(self, op: Mem) -> int:
        addr = op.disp
        if op.base is not None:
            addr += self.state.read_gp(op.base)
        if op.index is not None:
            addr += self.state.read_gp(op.index) * op.scale
        return addr & (_U64 - 1)

    def _read_int(self, op) -> int:
        if isinstance(op, Register):
            return self.state.read_gp(op)
        if isinstance(op, Imm):
            return op.value & (_U64 - 1)
        if isinstance(op, Mem):
            return self.mem.read_u64(self._mem_addr(op))
        raise EmuError(f"cannot read integer operand {op}")

    def _write_int(self, op, value: int) -> None:
        if isinstance(op, Register):
            self.state.write_gp(op, value)
        elif isinstance(op, Mem):
            self.mem.write_u64(self._mem_addr(op), value & (_U64 - 1))
        else:
            raise EmuError(f"cannot write integer operand {op}")

    # vector lanes -------------------------------------------------------
    @staticmethod
    def _lanes(reg: Register) -> int:
        return 4 if reg.width == 32 else 2

    def _vreg(self, reg: Register) -> np.ndarray:
        return self.state.vec[reg.index]

    def _read_vec(self, op, lanes: int) -> np.ndarray:
        if isinstance(op, Register):
            return self._vreg(op)[:lanes].copy()
        if isinstance(op, Mem):
            return self.mem.read_f64(self._mem_addr(op), lanes)
        raise EmuError(f"cannot read vector operand {op}")

    def _write_vec(self, op, values: np.ndarray, vex: bool) -> None:
        values = np.atleast_1d(values)
        if isinstance(op, Register):
            v = self._vreg(op)
            v[: len(values)] = values
            if vex:  # VEX write zeroes lanes above the operand width
                v[len(values):] = 0.0
        elif isinstance(op, Mem):
            self.mem.write_f64(self._mem_addr(op), values)
        else:
            raise EmuError(f"cannot write vector operand {op}")

    # -- flag helpers ---------------------------------------------------------
    def _set_cmp(self, dst: int, src: int) -> None:
        self.state.cmp_dst = _to_signed(dst)
        self.state.cmp_src = _to_signed(src)

    def _branch_taken(self, mnemonic: str) -> bool:
        d, s = self.state.cmp_dst, self.state.cmp_src
        return {
            "je": d == s,
            "jne": d != s,
            "jl": d < s,
            "jle": d <= s,
            "jg": d > s,
            "jge": d >= s,
        }[mnemonic]

    # -- main loop -----------------------------------------------------------
    def run(self, entry: int = 0) -> None:
        pc = entry
        n = len(self.items)
        while pc < n:
            self.state.steps += 1
            if self.state.steps > self.max_steps:
                raise EmuError("instruction budget exhausted (runaway loop?)")
            it = self.items[pc]
            if not isinstance(it, Instr):
                pc += 1
                continue
            next_pc = self._exec(it, pc)
            if next_pc is None:
                return  # ret hit the sentinel
            pc = next_pc

    # -- single instruction ------------------------------------------------
    def _exec(self, ins: Instr, pc: int) -> Optional[int]:
        mn = ins.mnemonic
        ops = ins.operands
        st = self.state

        # ---- control flow -------------------------------------------------
        if mn == "jmp":
            return self._label_index(ops[0])
        if mn in ("je", "jne", "jl", "jle", "jg", "jge"):
            return self._label_index(ops[0]) if self._branch_taken(mn) else pc + 1
        if mn == "ret":
            rsp = st.gp.get("rsp", 0)
            ret_addr = self.mem.read_u64(rsp)
            st.gp["rsp"] = rsp + 8
            if ret_addr == self.SENTINEL:
                return None
            raise EmuError("ret to a non-sentinel address")
        if mn == "nop" or mn.startswith("prefetch") or mn == "vzeroupper":
            return pc + 1

        # ---- GP -----------------------------------------------------------
        if mn in ("mov", "movq"):
            self._write_int(ops[1], self._read_int(ops[0]))
            return pc + 1
        if mn == "lea":
            assert isinstance(ops[0], Mem)
            self._write_int(ops[1], self._mem_addr(ops[0]))
            return pc + 1
        if mn in ("add", "sub", "imul", "and", "or", "xor"):
            a = self._read_int(ops[0])
            b = self._read_int(ops[1])
            if mn == "add":
                r = b + a
            elif mn == "sub":
                r = b - a
            elif mn == "imul":
                r = _to_signed(b) * _to_signed(a)
            elif mn == "and":
                r = b & a
            elif mn == "or":
                r = b | a
            else:
                r = b ^ a
            self._write_int(ops[1], r & (_U64 - 1))
            self._set_cmp(r & (_U64 - 1), 0)
            return pc + 1
        if mn in ("sal", "shl", "sar"):
            amount = self._read_int(ops[0]) & 63
            v = self._read_int(ops[1])
            if mn == "sar":
                r = _to_signed(v) >> amount
            else:
                r = v << amount
            self._write_int(ops[1], r & (_U64 - 1))
            self._set_cmp(r & (_U64 - 1), 0)
            return pc + 1
        if mn == "neg":
            v = self._read_int(ops[0])
            self._write_int(ops[0], (-_to_signed(v)) & (_U64 - 1))
            return pc + 1
        if mn in ("inc", "dec"):
            v = self._read_int(ops[0])
            r = v + (1 if mn == "inc" else -1)
            self._write_int(ops[0], r & (_U64 - 1))
            self._set_cmp(r & (_U64 - 1), 0)
            return pc + 1
        if mn == "cmp":
            self._set_cmp(self._read_int(ops[1]), self._read_int(ops[0]))
            return pc + 1
        if mn == "test":
            self._set_cmp(self._read_int(ops[1]) & self._read_int(ops[0]), 0)
            return pc + 1
        if mn == "push":
            rsp = st.gp.get("rsp", 0) - 8
            st.gp["rsp"] = rsp
            self.mem.write_u64(rsp, self._read_int(ops[0]))
            return pc + 1
        if mn == "pop":
            rsp = st.gp.get("rsp", 0)
            self._write_int(ops[0], self.mem.read_u64(rsp))
            st.gp["rsp"] = rsp + 8
            return pc + 1

        # ---- SSE / AVX ------------------------------------------------------
        vex = mn.startswith("v")
        if mn in ("movsd", "vmovsd"):
            src, dst = ops
            if isinstance(dst, Mem):
                self.mem.write_f64(self._mem_addr(dst),
                                   np.array([self._vreg(src)[0]]))
                return pc + 1
            v = self._vreg(dst)
            if isinstance(src, Mem):
                v[0] = self.mem.read_f64(self._mem_addr(src), 1)[0]
                v[1] = 0.0  # load form zeroes the rest of the register
                if vex:
                    v[2:] = 0.0
            else:
                v[0] = self._vreg(src)[0]  # reg->reg merges the low lane
                if vex:
                    v[2:] = 0.0  # VEX reg-reg merge still zeroes the uppers
            return pc + 1
        if mn in ("movapd", "movupd", "vmovapd", "vmovupd"):
            src, dst = ops
            lanes = self._lanes(dst if isinstance(dst, Register) else src)
            vals = self._read_vec(src, lanes)
            self._write_vec(dst, vals, vex)
            return pc + 1
        if mn in ("movddup", "vmovddup"):
            src, dst = ops
            val = (self.mem.read_f64(self._mem_addr(src), 1)[0]
                   if isinstance(src, Mem) else self._vreg(src)[0])
            self._write_vec(dst, np.array([val, val]), vex)
            return pc + 1
        if mn == "vbroadcastsd":
            src, dst = ops
            val = self.mem.read_f64(self._mem_addr(src), 1)[0]
            self._write_vec(dst, np.full(self._lanes(dst), val), vex)
            return pc + 1
        if mn in ("addsd", "subsd", "mulsd", "divsd"):
            src, dst = ops
            a = (self.mem.read_f64(self._mem_addr(src), 1)[0]
                 if isinstance(src, Mem) else self._vreg(src)[0])
            d = self._vreg(dst)
            if mn == "addsd":
                d[0] = d[0] + a
            elif mn == "subsd":
                d[0] = d[0] - a
            elif mn == "mulsd":
                d[0] = d[0] * a
            else:
                d[0] = d[0] / a
            return pc + 1
        if mn in ("addpd", "subpd", "mulpd"):
            src, dst = ops
            a = self._read_vec(src, 2)
            d = self._vreg(dst)
            if mn == "addpd":
                d[:2] = d[:2] + a
            elif mn == "subpd":
                d[:2] = d[:2] - a
            else:
                d[:2] = d[:2] * a
            return pc + 1
        if mn == "xorpd":
            src, dst = ops
            a = self._read_vec(src, 2)
            d = self._vreg(dst)
            bits = (np.frombuffer(d[:2].tobytes(), np.uint64)
                    ^ np.frombuffer(a.tobytes(), np.uint64))
            d[:2] = np.frombuffer(bits.tobytes(), np.float64)
            return pc + 1
        if mn in ("vaddsd", "vsubsd", "vmulsd"):
            s1, s2, dst = ops
            a = (self.mem.read_f64(self._mem_addr(s1), 1)[0]
                 if isinstance(s1, Mem) else self._vreg(s1)[0])
            b = self._vreg(s2)[0]
            if mn == "vaddsd":
                r = b + a
            elif mn == "vsubsd":
                r = b - a
            else:
                r = b * a
            out = self._vreg(s2).copy()
            out[0] = r
            self._write_vec(dst, out[:2], vex=True)
            return pc + 1
        if mn in ("vaddpd", "vsubpd", "vmulpd"):
            s1, s2, dst = ops
            lanes = self._lanes(dst)
            a = self._read_vec(s1, lanes)
            b = self._read_vec(s2, lanes)
            if mn == "vaddpd":
                r = b + a
            elif mn == "vsubpd":
                r = b - a
            else:
                r = b * a
            self._write_vec(dst, r, vex=True)
            return pc + 1
        if mn == "vxorpd":
            s1, s2, dst = ops
            lanes = self._lanes(dst)
            a = self._read_vec(s1, lanes)
            b = self._read_vec(s2, lanes)
            r = (np.frombuffer(b.tobytes(), np.uint64)
                 ^ np.frombuffer(a.tobytes(), np.uint64))
            self._write_vec(dst, np.frombuffer(r.tobytes(), np.float64), vex=True)
            return pc + 1
        if mn == "shufpd":
            imm, src, dst = ops
            i = imm.value
            d = self._vreg(dst)
            s = self._read_vec(src, 2)
            d[:2] = np.array([d[i & 1], s[(i >> 1) & 1]])
            return pc + 1
        if mn == "vshufpd":
            imm, s2, s1, dst = ops
            i = imm.value
            lanes = self._lanes(dst)
            a = self._read_vec(s1, lanes)
            b = self._read_vec(s2, lanes)
            out = np.empty(lanes)
            for lane_pair in range(lanes // 2):
                base = lane_pair * 2
                out[base] = a[base + ((i >> base) & 1)]
                out[base + 1] = b[base + ((i >> (base + 1)) & 1)]
            self._write_vec(dst, out, vex=True)
            return pc + 1
        if mn == "vblendpd":
            imm, s2, s1, dst = ops
            lanes = self._lanes(dst)
            a = self._read_vec(s1, lanes)
            b = self._read_vec(s2, lanes)
            out = np.array([b[k] if (imm.value >> k) & 1 else a[k]
                            for k in range(lanes)])
            self._write_vec(dst, out, vex=True)
            return pc + 1
        if mn == "vpermilpd":
            imm, src, dst = ops
            i = imm.value
            lanes = self._lanes(dst)
            s = self._read_vec(src, lanes)
            out = np.empty(lanes)
            for k in range(lanes):
                base = (k // 2) * 2
                out[k] = s[base + ((i >> k) & 1)]
            self._write_vec(dst, out, vex=True)
            return pc + 1
        if mn == "vperm2f128":
            imm, s2, s1, dst = ops
            i = imm.value
            a = self._read_vec(s1, 4)
            b = self._read_vec(s2, 4)
            halves = [a[0:2], a[2:4], b[0:2], b[2:4]]
            lo = halves[i & 3] if not (i & 0x8) else np.zeros(2)
            hi = halves[(i >> 4) & 3] if not (i & 0x80) else np.zeros(2)
            self._write_vec(dst, np.concatenate([lo, hi]), vex=True)
            return pc + 1
        if mn == "vextractf128":
            imm, src, dst = ops
            s = self._read_vec(src, 4)
            half = s[2:4] if imm.value & 1 else s[0:2]
            self._write_vec(dst, half, vex=True)
            return pc + 1
        if mn == "vinsertf128":
            imm, s2, s1, dst = ops
            a = self._read_vec(s1, 4)
            b = self._read_vec(s2, 2)
            out = a.copy()
            if imm.value & 1:
                out[2:4] = b
            else:
                out[0:2] = b
            self._write_vec(dst, out, vex=True)
            return pc + 1
        if mn in ("unpcklpd", "unpckhpd"):
            src, dst = ops
            d = self._vreg(dst)
            s = self._read_vec(src, 2)
            k = 0 if mn == "unpcklpd" else 1
            d[:2] = np.array([d[k], s[k]])
            return pc + 1
        if mn in ("vunpcklpd", "vunpckhpd"):
            s2, s1, dst = ops
            lanes = self._lanes(dst)
            a = self._read_vec(s1, lanes)
            b = self._read_vec(s2, lanes)
            k = 0 if mn == "vunpcklpd" else 1
            out = np.empty(lanes)
            for lane_pair in range(lanes // 2):
                base = lane_pair * 2
                out[base] = a[base + k]
                out[base + 1] = b[base + k]
            self._write_vec(dst, out, vex=True)
            return pc + 1
        if mn == "haddpd":
            src, dst = ops
            d = self._vreg(dst)
            s = self._read_vec(src, 2)
            d[:2] = np.array([d[0] + d[1], s[0] + s[1]])
            return pc + 1
        if mn == "vhaddpd":
            s2, s1, dst = ops
            lanes = self._lanes(dst)
            a = self._read_vec(s1, lanes)
            b = self._read_vec(s2, lanes)
            out = np.empty(lanes)
            for lane_pair in range(lanes // 2):
                base = lane_pair * 2
                out[base] = a[base] + a[base + 1]
                out[base + 1] = b[base] + b[base + 1]
            self._write_vec(dst, out, vex=True)
            return pc + 1
        if mn in ("vfmadd231pd", "vfmadd213pd", "vfmadd132pd"):
            s1, s2, dst = ops
            lanes = self._lanes(dst)
            a = self._read_vec(s1, lanes)
            b = self._read_vec(s2, lanes)
            d = self._read_vec(dst, lanes)
            if mn == "vfmadd231pd":  # dst = dst + s2*s1
                r = _fma(b, a, d)
            elif mn == "vfmadd213pd":  # dst = s2*dst + s1
                r = _fma(b, d, a)
            else:  # 132: dst = dst*s1 + s2
                r = _fma(d, a, b)
            self._write_vec(dst, r, vex=True)
            return pc + 1
        if mn == "vfmadd231sd":
            s1, s2, dst = ops
            a = self._vreg(s1)[0]
            b = self._vreg(s2)[0]
            d = self._vreg(dst)
            d[0] = _fma(np.array([b]), np.array([a]), np.array([d[0]]))[0]
            d[2:] = 0.0  # VEX-128 write zeroes the upper lanes
            return pc + 1
        if mn in ("vfmaddpd", "vfmaddsd"):
            # AT&T: vfmaddpd src3, src2, src1, dst -> dst = src1*src2 + src3
            s3, s2, s1, dst = ops
            lanes = self._lanes(dst) if mn == "vfmaddpd" else 1
            a = self._read_vec(s1, lanes)
            b = self._read_vec(s2, lanes)
            c = self._read_vec(s3, lanes)
            r = _fma(a, b, c)
            if mn == "vfmaddsd":
                out = self._vreg(s1).copy()  # lane 1 comes from src1
                out[0] = r[0]
                self._write_vec(dst, out[:2], vex=True)
            else:
                self._write_vec(dst, r, vex=True)
            return pc + 1
        if mn == "ucomisd":
            src, dst = ops
            a = self._vreg(src)[0]
            d = self._vreg(dst)[0]
            self._set_cmp(int(np.sign(d - a)), 0)
            return pc + 1

        raise EmuError(f"unimplemented instruction {ins}")

    SENTINEL = 0xDEADBEEFDEADBEEF

    def _label_index(self, op) -> int:
        if not isinstance(op, LabelRef):
            raise EmuError(f"jump target must be a label, got {op}")
        try:
            return self.labels[op.name]
        except KeyError:
            raise EmuError(f"undefined label {op.name}") from None
