"""GAS (AT&T) assembly text parser.

Parses the subset of GNU assembler syntax the generator emits back into
the instruction IR, enabling:

- round-trip validation (``emit -> parse -> emit`` must be a fixed point),
- running a ``.S`` file under the emulator without access to the original
  :class:`~repro.core.framework.GeneratedKernel` object,
- inspecting/regression-testing externally provided kernels.

Supported syntax: labels, instructions with register / immediate /
``disp(base,index,scale)`` memory operands, label operands on jumps,
``#`` comments, and the directives the emitter produces (kept as
:class:`Directive` items).  The ``q`` size suffix added for
immediate-to-memory forms is stripped back to the canonical mnemonic.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..isa.instructions import (
    INSTR_INFO,
    Comment,
    Directive,
    Instr,
    Item,
    Label,
)
from ..isa.operands import Imm, LabelRef, Mem
from ..isa.registers import GP, XMM, YMM, Register


class AsmParseError(ValueError):
    """Unrecognized assembly syntax."""


_REG_TABLES = {**GP, **XMM, **YMM}

_MEM_RE = re.compile(
    r"^(-?\d+)?\(\s*(%\w+)?\s*(?:,\s*(%\w+)\s*(?:,\s*(\d+))?)?\s*\)$"
)


def _parse_register(text: str) -> Register:
    name = text.lstrip("%")
    try:
        return _REG_TABLES[name]
    except KeyError:
        raise AsmParseError(f"unknown register {text!r}") from None


def parse_operand(text: str):
    text = text.strip()
    if text.startswith("$"):
        try:
            return Imm(int(text[1:], 0))
        except ValueError:
            raise AsmParseError(f"bad immediate {text!r}") from None
    if text.startswith("%"):
        return _parse_register(text)
    m = _MEM_RE.match(text)
    if m:
        disp = int(m.group(1)) if m.group(1) else 0
        base = _parse_register(m.group(2)) if m.group(2) else None
        index = _parse_register(m.group(3)) if m.group(3) else None
        scale = int(m.group(4)) if m.group(4) else 1
        return Mem(base=base, disp=disp, index=index, scale=scale)
    if re.match(r"^[.\w$]+$", text):
        return LabelRef(text)
    raise AsmParseError(f"cannot parse operand {text!r}")


def _split_operands(text: str) -> List[str]:
    """Split on commas that are not inside parentheses."""
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current)
    return [p.strip() for p in parts]


def _canonical_mnemonic(mnemonic: str) -> str:
    if mnemonic in INSTR_INFO:
        return mnemonic
    # strip the size suffix the emitter adds for imm-to-mem forms
    if mnemonic.endswith("q") and mnemonic[:-1] in INSTR_INFO:
        return mnemonic[:-1]
    raise AsmParseError(f"unknown mnemonic {mnemonic!r}")


def parse_line(line: str) -> Optional[Item]:
    """Parse one line of GAS text (None for blank lines)."""
    code = line.split("#", 1)[0].strip() if "#" in line else line.strip()
    if not code:
        stripped = line.strip()
        if stripped.startswith("#"):
            return Comment(stripped[1:].strip())
        return None
    if code.startswith("."):
        if code.endswith(":"):
            return Label(code[:-1])
        first = code.split(None, 1)[0]
        if first.rstrip(":").count(":") == 0 and not code.endswith(":"):
            return Directive(code)
    if code.endswith(":"):
        return Label(code[:-1])
    parts = code.split(None, 1)
    mnemonic = _canonical_mnemonic(parts[0])
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = [parse_operand(t) for t in _split_operands(operand_text)]
    return Instr(mnemonic, tuple(operands))


def parse_gas(text: str) -> List[Item]:
    """Parse GAS text into an item stream (labels, instrs, directives)."""
    items: List[Item] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        try:
            item = parse_line(line)
        except AsmParseError as exc:
            raise AsmParseError(f"line {lineno}: {exc}") from None
        if item is not None:
            items.append(item)
    return items


def parse_gas_function(text: str) -> List[Item]:
    """Parse a complete emitted function, returning only the executable
    body (directives and the function label are dropped, so the result can
    be passed to :func:`repro.emu.run.call_items` directly)."""
    items = parse_gas(text)
    body: List[Item] = []
    seen_code = False
    for it in items:
        if isinstance(it, Directive):
            continue
        if isinstance(it, Label) and not it.name.startswith(".L"):
            continue  # the function symbol itself
        if isinstance(it, (Instr, Label)):
            seen_code = True
            body.append(it)
        elif isinstance(it, Comment) and seen_code:
            body.append(it)
    return body
