"""x86-64 subset emulator — the validation substrate for generated kernels."""

from .loader import AsmParseError, parse_gas, parse_gas_function, parse_line, parse_operand
from .machine import EmuError, Machine, MachineState
from .memory import EmuMemoryError, Memory
from .run import call_items, call_kernel

__all__ = [
    "Machine",
    "MachineState",
    "EmuError",
    "Memory",
    "EmuMemoryError",
    "call_items",
    "call_kernel",
    "parse_gas",
    "parse_gas_function",
    "parse_line",
    "parse_operand",
    "AsmParseError",
]
