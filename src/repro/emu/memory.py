"""Flat byte-addressed memory for the x86-64 subset emulator.

Arrays are *bound* into the address space at 64-byte-aligned offsets; their
addresses are plain Python ints, so pointer arithmetic in the emulated code
behaves exactly like native pointers.  Doubles are read/written through
numpy scalar views, guaranteeing bit-exact IEEE-754 behaviour.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class EmuMemoryError(RuntimeError):
    """Out-of-bounds or unmapped access in the emulator."""


class Memory:
    """A single contiguous memory arena."""

    #: arbitrary non-zero base so null-ish pointers fault loudly
    BASE = 0x10000

    def __init__(self, size: int = 1 << 22) -> None:
        self._buf = np.zeros(size, dtype=np.uint8)
        self._next = 64  # arena-relative allocation cursor
        self._bindings: Dict[int, Tuple[np.ndarray, int]] = {}

    # -- binding numpy arrays -----------------------------------------------
    def bind(self, array: np.ndarray) -> int:
        """Copy ``array`` into the arena; returns its emulated address.

        Call :meth:`sync_back` after the run to copy mutated bytes out.
        """
        if not array.flags.c_contiguous:
            raise EmuMemoryError("only C-contiguous arrays can be bound")
        nbytes = array.nbytes
        offset = (self._next + 63) & ~63
        if offset + nbytes > len(self._buf):
            raise EmuMemoryError("emulated memory arena exhausted")
        self._buf[offset:offset + nbytes] = np.frombuffer(
            array.tobytes(), dtype=np.uint8
        )
        self._next = offset + nbytes
        addr = self.BASE + offset
        self._bindings[addr] = (array, nbytes)
        return addr

    def alloc(self, nbytes: int) -> int:
        """Reserve zeroed space (for stack or scratch) and return its address."""
        offset = (self._next + 63) & ~63
        if offset + nbytes > len(self._buf):
            raise EmuMemoryError("emulated memory arena exhausted")
        self._next = offset + nbytes
        return self.BASE + offset

    def sync_back(self) -> None:
        """Copy every bound array's bytes from the arena back out."""
        for addr, (array, nbytes) in self._bindings.items():
            off = addr - self.BASE
            raw = self._buf[off:off + nbytes].tobytes()
            flat = np.frombuffer(raw, dtype=array.dtype).reshape(array.shape)
            array[...] = flat

    # -- access -----------------------------------------------------------
    def _off(self, addr: int, size: int) -> int:
        off = addr - self.BASE
        if off < 0 or off + size > len(self._buf):
            raise EmuMemoryError(f"access at {addr:#x} (size {size}) out of range")
        return off

    def read_u64(self, addr: int) -> int:
        off = self._off(addr, 8)
        return int(self._buf[off:off + 8].view(np.uint64)[0])

    def write_u64(self, addr: int, value: int) -> None:
        off = self._off(addr, 8)
        self._buf[off:off + 8].view(np.uint64)[0] = np.uint64(value & (2**64 - 1))

    def read_f64(self, addr: int, count: int = 1) -> np.ndarray:
        off = self._off(addr, 8 * count)
        return self._buf[off:off + 8 * count].view(np.float64).copy()

    def write_f64(self, addr: int, values: np.ndarray) -> None:
        values = np.atleast_1d(np.asarray(values, dtype=np.float64))
        off = self._off(addr, 8 * len(values))
        self._buf[off:off + 8 * len(values)].view(np.float64)[:] = values
