"""Call emulated kernels with the System V calling convention.

``call_kernel`` stands in for the native ctypes runners: numpy arrays are
bound into emulated memory, scalar arguments land in the ABI registers
(or the stack for the 7th+ integer argument), and mutated arrays are synced
back after ``ret``.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..core.framework import GeneratedKernel
from ..isa.instructions import Item
from ..isa.registers import SysVABI
from .machine import Machine
from .memory import Memory

Arg = Union[int, float, np.ndarray]


def call_items(items: Sequence[Item], args: Sequence[Arg],
               max_steps: int = 500_000_000,
               stack_bytes: int = 1 << 16) -> float:
    """Execute an instruction stream as a function call.

    :param args: ints (long), floats (double) or float64 numpy arrays
        (passed by reference; mutations are synced back).
    :returns: the value of xmm0's low lane after return (the double return
        value, if the kernel has one).
    """
    mem = Memory()
    machine = Machine(list(items), mem, max_steps=max_steps)

    kinds: List[str] = []
    values: List[Union[int, float]] = []
    for a in args:
        if isinstance(a, np.ndarray):
            if a.dtype != np.float64:
                raise TypeError("array arguments must be float64")
            kinds.append("int")
            values.append(mem.bind(a))
        elif isinstance(a, float):
            kinds.append("float")
            values.append(a)
        elif isinstance(a, (int, np.integer)):
            kinds.append("int")
            values.append(int(a))
        else:
            raise TypeError(f"unsupported argument type {type(a).__name__}")

    # stack: sentinel return address on top, stack args above it
    locs = SysVABI.classify_args(kinds)
    stack_base = mem.alloc(stack_bytes)
    rsp = stack_base + stack_bytes - 256  # room for stack-passed args
    mem.write_u64(rsp, Machine.SENTINEL)
    for loc, value in zip(locs, values):
        if isinstance(loc, int):
            mem.write_u64(rsp + loc, int(value))
        elif loc.kind == "vec":
            machine.state.vec[loc.index][0] = float(value)
        else:
            machine.state.write_gp(loc, int(value))
    machine.state.gp["rsp"] = rsp

    machine.run()
    mem.sync_back()
    return float(machine.state.vec[0][0])


def call_kernel(generated: GeneratedKernel, args: Sequence[Arg],
                max_steps: int = 500_000_000) -> float:
    """Run a generated kernel under the emulator."""
    return call_items(generated.items, args, max_steps=max_steps)
