"""Table drivers: regenerate Tables 5 and 6 of the paper's §5."""

from __future__ import annotations

import platform
import re
from typing import List, Optional, Sequence

import numpy as np

from ..backend.timer import measure
from ..isa.arch import detect_host
from .harness import Library, standard_lineup
from .report import TableResult

#: Table 6 sweeps m=n with k (or the B column count) fixed at 256
TABLE6_K = 256
DEFAULT_TABLE6_SIZES = [256, 512, 768, 1024]
PAPER_TABLE6_SIZES = list(range(1024, 6145, 512))
DEFAULT_GER_SIZES = [512, 1024, 1536, 2048]
PAPER_GER_SIZES = list(range(2048, 5121, 512))


def table5_platform() -> TableResult:
    """Table 5: platform configuration (host + modelled arch specs)."""
    host = detect_host()
    cpu_model = "unknown"
    try:
        text = open("/proc/cpuinfo").read()
        m = re.search(r"^model name\s*:\s*(.*)$", text, re.M)
        if m:
            cpu_model = m.group(1)
    except OSError:
        pass
    rows = [
        ["CPU", cpu_model],
        ["detected arch spec", str(host)],
        ["SIMD", f"{host.simd} {host.vector_bytes * 8}-bit"],
        ["FMA", host.fma or "none"],
        ["L1d", f"{host.l1d_bytes // 1024} KB"],
        ["L2", f"{host.l2_bytes // 1024} KB"],
        ["python", platform.python_version()],
        ["numpy BLAS", _numpy_blas_name()],
    ]
    return TableResult("table5", "Platform configuration",
                       ["field", "value"], rows)


def _numpy_blas_name() -> str:
    try:
        cfg = np.show_config(mode="dicts")  # numpy >= 1.25
        return cfg["Build Dependencies"]["blas"]["name"]
    except Exception:
        return "unknown"


# flop counts per routine for an m x m problem with inner dim TABLE6_K
def _routine_flops(routine: str, m: int) -> float:
    k = TABLE6_K
    return {
        "SYMM": 2.0 * m * m * k,  # sym(A) (m x m) @ B (m x k)
        "SYRK": 1.0 * m * m * k,  # lower triangle of A@A^T, A (m x k)
        "SYR2K": 2.0 * m * m * k,
        "TRMM": 1.0 * m * m * k,  # L (m x m) @ B (m x k)
        "TRSM": 1.0 * m * m * k,
        "GER": 2.0 * m * m,
    }[routine]


def _routine_workload(routine: str, m: int, rng):
    k = TABLE6_K
    if routine == "SYMM":
        a = rng.standard_normal((m, m))
        b = rng.standard_normal((m, k))
        return lambda lib: (lambda: lib.dsymm(a, b)) if lib.dsymm else None
    if routine == "SYRK":
        a = rng.standard_normal((m, k))
        return lambda lib: (lambda: lib.dsyrk(a)) if lib.dsyrk else None
    if routine == "SYR2K":
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((m, k))
        return lambda lib: (lambda: lib.dsyr2k(a, b)) if lib.dsyr2k else None
    if routine == "TRMM":
        l = np.tril(rng.standard_normal((m, m))) + 4.0 * np.eye(m)
        b = rng.standard_normal((m, k))
        return lambda lib: (lambda: lib.dtrmm(l, b)) if lib.dtrmm else None
    if routine == "TRSM":
        l = np.tril(rng.standard_normal((m, m))) + 4.0 * np.eye(m)
        b = rng.standard_normal((m, k))
        return lambda lib: (lambda: lib.dtrsm(l, b)) if lib.dtrsm else None
    if routine == "GER":
        a = rng.standard_normal((m, m))
        x = rng.standard_normal(m)
        y = rng.standard_normal(m)
        return lambda lib: (lambda: lib.dger(1.000001, x, y, a)) if lib.dger else None
    raise KeyError(routine)


ROUTINES = ("SYMM", "SYRK", "SYR2K", "TRMM", "TRSM", "GER")


def table6_level3(libraries: Optional[List[Library]] = None,
                  sizes: Optional[Sequence[int]] = None,
                  ger_sizes: Optional[Sequence[int]] = None,
                  paper_sizes: bool = False,
                  batches: int = 3) -> TableResult:
    """Table 6: average Mflops of the six higher-level DLA routines."""
    libraries = libraries or standard_lineup()
    libraries = [lib for lib in libraries if lib.dsymm is not None]
    sizes = sizes or (PAPER_TABLE6_SIZES if paper_sizes
                      else DEFAULT_TABLE6_SIZES)
    ger_sizes = ger_sizes or (PAPER_GER_SIZES if paper_sizes
                              else DEFAULT_GER_SIZES)
    rng = np.random.default_rng(6)
    rows = []
    for routine in ROUTINES:
        sweep = ger_sizes if routine == "GER" else sizes
        averages = []
        for lib in libraries:
            mflops_vals = []
            for m in sweep:
                runner_factory = _routine_workload(routine, m, rng)
                fn = runner_factory(lib)
                if fn is None:
                    mflops_vals = []
                    break
                meas = measure(fn, batches=batches)
                mflops_vals.append(meas.mflops(_routine_flops(routine, m)))
            averages.append(
                f"{sum(mflops_vals) / len(mflops_vals):.1f}"
                if mflops_vals else "-"
            )
        rows.append([routine] + averages)
    return TableResult(
        "table6",
        f"Higher-level DLA routines, avg Mflops (m=n in {list(sizes)}, "
        f"k={TABLE6_K})",
        ["Routine"] + [lib.name for lib in libraries],
        rows,
    )
