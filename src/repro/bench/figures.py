"""Figure drivers: regenerate Figs. 18, 19, 20, 21 of the paper's §5.

Each driver sweeps problem sizes for every library in the lineup and
reports Mflops per point plus the average-advantage summary the paper
quotes.  Default sizes are scaled for a laptop-class single core; pass
``paper_sizes=True`` for the full sweeps (Fig. 18: m=n from 1024 to 6144,
k=256; Fig. 19: 2048-5120; Figs. 20/21: vectors of 1e5-2e5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..backend.timer import measure
from .harness import Library, standard_lineup
from .report import FigureResult, Series

# paper sweeps (Fig. 18: 20 sizes 1024..6144; Fig. 19: 2048..5120 step 256;
# Figs. 20/21: 1e5..2e5 step 5e3)
PAPER_GEMM_SIZES = list(range(1024, 6145, 256))
PAPER_GEMV_SIZES = list(range(2048, 5121, 256))
PAPER_VECTOR_SIZES = list(range(100_000, 200_001, 5_000))

# scaled defaults: same shape, laptop-budget runtimes
DEFAULT_GEMM_SIZES = [256, 384, 512, 640, 768, 896, 1024, 1280]
DEFAULT_GEMV_SIZES = [512, 768, 1024, 1280, 1536, 1792, 2048]
DEFAULT_VECTOR_SIZES = list(range(100_000, 200_001, 20_000))

GEMM_K = 256  # the paper fixes k = 256


def _sweep(figure_id: str, title: str, x_label: str, xs: Sequence[int],
           libraries: List[Library], make_runner, flops_of,
           batches: int = 3) -> FigureResult:
    series = [Series(lib.name) for lib in libraries]
    for x in xs:
        runners = make_runner(x)
        for lib, s in zip(libraries, series):
            fn = runners(lib)
            if fn is None:
                continue
            m = measure(fn, batches=batches)
            s.points[x] = m.mflops(flops_of(x))
    return FigureResult(figure_id=figure_id, title=title, x_label=x_label,
                        xs=list(xs), series=series)


def fig18_dgemm(libraries: Optional[List[Library]] = None,
                sizes: Optional[Sequence[int]] = None,
                paper_sizes: bool = False, batches: int = 3) -> FigureResult:
    """Fig. 18: DGEMM Mflops vs m=n (k=256)."""
    libraries = libraries or standard_lineup()
    xs = sizes or (PAPER_GEMM_SIZES if paper_sizes else DEFAULT_GEMM_SIZES)
    rng = np.random.default_rng(0)

    def make_runner(m):
        a = rng.standard_normal((m, GEMM_K))
        b = rng.standard_normal((GEMM_K, m))

        def runner(lib):
            return lambda: lib.dgemm(a, b)

        return runner

    return _sweep("fig18", "DGEMM (m=n, k=256)", "m=n", xs, libraries,
                  make_runner, lambda m: 2.0 * m * m * GEMM_K, batches)


def fig19_dgemv(libraries: Optional[List[Library]] = None,
                sizes: Optional[Sequence[int]] = None,
                paper_sizes: bool = False, batches: int = 3) -> FigureResult:
    """Fig. 19: DGEMV Mflops vs m=n (y = Aᵀx on row-major A)."""
    libraries = libraries or standard_lineup()
    xs = sizes or (PAPER_GEMV_SIZES if paper_sizes else DEFAULT_GEMV_SIZES)
    rng = np.random.default_rng(1)

    def make_runner(m):
        a = rng.standard_normal((m, m))
        x = rng.standard_normal(m)

        def runner(lib):
            return lambda: lib.dgemv_t(a, x)

        return runner

    return _sweep("fig19", "DGEMV (m=n)", "m=n", xs, libraries,
                  make_runner, lambda m: 2.0 * m * m, batches)


def fig20_daxpy(libraries: Optional[List[Library]] = None,
                sizes: Optional[Sequence[int]] = None,
                paper_sizes: bool = False, batches: int = 3) -> FigureResult:
    """Fig. 20: DAXPY Mflops vs vector size."""
    libraries = libraries or standard_lineup()
    xs = sizes or (PAPER_VECTOR_SIZES if paper_sizes else DEFAULT_VECTOR_SIZES)
    rng = np.random.default_rng(2)

    def make_runner(n):
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)

        def runner(lib):
            return lambda: lib.daxpy(1.000001, x, y)

        return runner

    return _sweep("fig20", "DAXPY", "vector size", xs, libraries,
                  make_runner, lambda n: 2.0 * n, batches)


def fig21_ddot(libraries: Optional[List[Library]] = None,
               sizes: Optional[Sequence[int]] = None,
               paper_sizes: bool = False, batches: int = 3) -> FigureResult:
    """Fig. 21: DDOT Mflops vs vector size."""
    libraries = libraries or standard_lineup()
    xs = sizes or (PAPER_VECTOR_SIZES if paper_sizes else DEFAULT_VECTOR_SIZES)
    rng = np.random.default_rng(3)

    def make_runner(n):
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)

        def runner(lib):
            return lambda: lib.ddot(x, y)

        return runner

    return _sweep("fig21", "DDOT", "vector size", xs, libraries,
                  make_runner, lambda n: 2.0 * n, batches)


ALL_FIGURES = {
    "fig18": fig18_dgemm,
    "fig19": fig19_dgemv,
    "fig20": fig20_daxpy,
    "fig21": fig21_ddot,
}
