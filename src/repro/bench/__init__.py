"""Benchmark harness: regenerates every figure and table of paper §5."""

from .figures import (
    ALL_FIGURES,
    fig18_dgemm,
    fig19_dgemv,
    fig20_daxpy,
    fig21_ddot,
)
from .harness import (
    Library,
    make_atlas_proxy_library,
    make_augem_library,
    make_goto_proxy_library,
    make_naive_library,
    make_vendor_library,
    standard_lineup,
)
from .microkernel import microkernel_table
from .report import FigureResult, Series, TableResult
from .tables import ROUTINES, table5_platform, table6_level3

__all__ = [
    "Library",
    "standard_lineup",
    "make_augem_library",
    "make_vendor_library",
    "make_atlas_proxy_library",
    "make_goto_proxy_library",
    "make_naive_library",
    "fig18_dgemm",
    "fig19_dgemv",
    "fig20_daxpy",
    "fig21_ddot",
    "ALL_FIGURES",
    "table5_platform",
    "microkernel_table",
    "table6_level3",
    "ROUTINES",
    "FigureResult",
    "Series",
    "TableResult",
]
