"""Micro-kernel-level comparison (no Python driver in the loop).

The paper's libraries are all-native: their packing/blocking drivers cost
a few percent. Our drivers run in Python, so library-level numbers mix
kernel quality with interpreter overhead. This benchmark isolates the
generated kernel: one ctypes call computes an entire L2-resident block
(the same granularity at which the paper's GEBP kernel runs), compared
against OpenBLAS on an identical problem, interleaved round-robin so host
frequency drift cancels.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..backend.runner import load_kernel
from ..core.framework import Augem
from ..isa.arch import ArchSpec, GENERIC_SSE, detect_host
from ..obs import event, span
from .report import TableResult

MC, NC, KC = 96, 192, 256


def microkernel_table(rounds: int = 12,
                      arch: Optional[ArchSpec] = None) -> TableResult:
    """GFLOPS of the AUGEM micro-kernel vs OpenBLAS, frequency-paired."""
    arch = arch or detect_host()
    rng = np.random.default_rng(99)
    flops = 2.0 * MC * NC * KC

    a = rng.standard_normal(KC * MC)
    b = rng.standard_normal(NC * KC)
    c = np.zeros(MC * NC)
    am = rng.standard_normal((MC, KC))
    bm = rng.standard_normal((KC, NC))
    cm = am @ bm

    contenders: Dict[str, callable] = {}
    # build phase is traced; the frequency-paired timing loop below is
    # deliberately not (docs/observability.md: nothing inside timed loops)
    with span("bench.microkernel_setup", arch=arch.name, rounds=rounds):
        gk = Augem(arch=arch).generate_named("gemm", name="ukern_host")
        host_kernel = load_kernel("gemm", gk)
        contenders[f"AUGEM kernel ({arch.name})"] = (
            lambda: host_kernel(MC, NC, KC, a, b, c, MC)
        )
        gk_sse = Augem(arch=GENERIC_SSE).generate_named("gemm",
                                                        name="ukern_sse")
        sse_kernel = load_kernel("gemm", gk_sse)
        contenders["AUGEM kernel (generic_sse)"] = (
            lambda: sse_kernel(MC, NC, KC, a, b, c, MC)
        )
        contenders["OpenBLAS dgemm"] = lambda: np.dot(am, bm, out=cm)

        for fn in contenders.values():
            fn()
    times: Dict[str, List[float]] = {k: [] for k in contenders}
    inner = 8
    for _ in range(rounds):
        for key, fn in contenders.items():
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            times[key].append((time.perf_counter() - t0) / inner)

    base = times["OpenBLAS dgemm"]
    rows = []
    for key, ts in times.items():
        best_gf = flops / min(ts) / 1e9
        ratios = sorted(base[i] / ts[i] for i in range(len(ts)))
        median_ratio = ratios[len(ratios) // 2]
        event("bench.microkernel", contender=key,
              best_gflops=round(best_gf, 4),
              vs_openblas=round(median_ratio, 4))
        rows.append([key, f"{best_gf:.2f}", f"{median_ratio:.3f}"])
    return TableResult(
        "microkernel",
        f"GEBP micro-kernel GFLOPS, block {MC}x{NC}x{KC} "
        "(frequency-paired; ratio is speed vs OpenBLAS)",
        ["kernel", "best GFLOPS", "speed vs OpenBLAS"],
        rows,
    )
