"""Result containers and text rendering for the figure/table drivers."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence


def _atomic_write_text(path: Path, text: str) -> None:
    """Publish via tempfile + ``os.replace`` so a concurrent reader (or a
    crash mid-write) can never observe a half-written result file."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


@dataclass
class Series:
    """One performance curve: (x value -> Mflops) for one library."""

    library: str
    points: Dict[int, float] = field(default_factory=dict)

    def mean(self) -> float:
        vals = list(self.points.values())
        return sum(vals) / len(vals) if vals else 0.0


@dataclass
class FigureResult:
    """A reproduced figure: several series over a shared x axis."""

    figure_id: str
    title: str
    x_label: str
    xs: List[int]
    series: List[Series]

    def render(self) -> str:
        header = [self.x_label.rjust(10)] + [
            s.library.rjust(22) for s in self.series
        ]
        lines = [f"== {self.figure_id}: {self.title} (Mflops) ==",
                 " ".join(header)]
        for x in self.xs:
            row = [f"{x:10d}"]
            for s in self.series:
                v = s.points.get(x)
                row.append(f"{v:22.1f}" if v is not None else " " * 21 + "-")
            lines.append(" ".join(row))
        lines.append("")
        lines.append(self.render_summary())
        return "\n".join(lines)

    def render_summary(self) -> str:
        """Average speedup of the first series (AUGEM) vs. the others —
        the percentages the paper quotes in §5."""
        if not self.series:
            return ""
        base = self.series[0]
        out = [f"-- average {base.library} advantage --"]
        for other in self.series[1:]:
            shared = [x for x in self.xs
                      if x in base.points and x in other.points]
            if not shared:
                continue
            ratios = [base.points[x] / other.points[x] for x in shared
                      if other.points[x] > 0]
            avg = sum(ratios) / len(ratios)
            out.append(f"  vs {other.library:24s}: {100 * (avg - 1):+7.1f}%")
        return "\n".join(out)

    def to_json(self) -> str:
        return json.dumps(
            {
                "figure": self.figure_id,
                "title": self.title,
                "x_label": self.x_label,
                "xs": self.xs,
                "series": {s.library: s.points for s in self.series},
            },
            indent=2,
        )

    def save(self, directory: Path) -> Path:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.figure_id}.json"
        _atomic_write_text(path, self.to_json())
        return path


@dataclass
class TableResult:
    """A reproduced table: rows of labelled values."""

    table_id: str
    title: str
    columns: List[str]
    rows: List[List[str]]

    def render(self) -> str:
        widths = [max(len(str(r[i])) for r in [self.columns] + self.rows)
                  for i in range(len(self.columns))]
        def fmt(row):
            return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
        lines = [f"== {self.table_id}: {self.title} ==", fmt(self.columns)]
        lines.extend(fmt(r) for r in self.rows)
        return "\n".join(lines)

    def save(self, directory: Path) -> Path:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.table_id}.json"
        _atomic_write_text(path, json.dumps(
            {"table": self.table_id, "title": self.title,
             "columns": self.columns, "rows": self.rows}, indent=2))
        return path
