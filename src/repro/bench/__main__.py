"""CLI: regenerate the paper's evaluation.

Usage::

    python -m repro.bench fig18 [--paper-sizes] [--quick] [--naive]
    python -m repro.bench table6
    python -m repro.bench all --out results/

``--tune`` runs the empirical tuner first and uses the winning
configurations (paper §2.1's search); otherwise the defaults are used.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .figures import ALL_FIGURES
from .harness import standard_lineup
from .tables import table5_platform, table6_level3


def _tuned_configs(verbose: bool, jobs: int = 1) -> dict:
    from ..tuning.search import tune_kernel

    configs = {}
    for kernel in ("gemm", "gemv", "axpy", "dot"):
        result = tune_kernel(kernel, verbose=verbose, jobs=jobs)
        configs[kernel] = result.best.config
        print(f"[tune] {kernel}: best = {result.best.describe()} "
              f"({result.best_gflops:.2f} GFLOPS)")
    return configs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench",
                                     description=__doc__)
    parser.add_argument("target", choices=list(ALL_FIGURES)
                        + ["table5", "table6", "microkernel", "all"])
    parser.add_argument("--paper-sizes", action="store_true",
                        help="full paper-scale sweeps (slow)")
    parser.add_argument("--quick", action="store_true",
                        help="single timing batch per point")
    parser.add_argument("--naive", action="store_true",
                        help="include the naive C -O2 floor curve")
    parser.add_argument("--tune", action="store_true",
                        help="run the empirical tuner first")
    parser.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="parallel tuner build workers (with --tune)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for JSON results")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a JSONL trace of the run "
                             "('-' = stderr; see docs/observability.md)")
    args = parser.parse_args(argv)

    if args.trace:
        from ..obs import start_trace

        start_trace(args.trace)

    batches = 1 if args.quick else 3
    configs = (_tuned_configs(verbose=False, jobs=args.jobs)
               if args.tune else None)
    libraries = standard_lineup(include_naive=args.naive, configs=configs)

    results = []
    if args.target == "table5" or args.target == "all":
        results.append(table5_platform())
    fig_ids = ([args.target] if args.target in ALL_FIGURES
               else list(ALL_FIGURES) if args.target == "all" else [])
    for fig_id in fig_ids:
        results.append(ALL_FIGURES[fig_id](
            libraries=libraries, paper_sizes=args.paper_sizes,
            batches=batches))
    if args.target == "table6" or args.target == "all":
        results.append(table6_level3(libraries=libraries,
                                     paper_sizes=args.paper_sizes,
                                     batches=batches))
    if args.target in ("microkernel", "all"):
        from .microkernel import microkernel_table

        results.append(microkernel_table())

    for r in results:
        print(r.render())
        print()
        if args.out is not None:
            path = r.save(args.out)
            print(f"[saved {path}]")

    from ..backend.cache import get_cache

    cache = get_cache()
    where = cache.root if cache.enabled else "disabled"
    print(f"[cache] {cache.stats.describe()} (store: {where})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
