"""Library adapters for the §5 evaluation.

Five "libraries" are compared, mirroring the paper's lineup under the
substitutions documented in DESIGN.md §3:

==============  =====================================================
paper           this reproduction
==============  =====================================================
AUGEM           AUGEM-generated kernels for the host arch (this repo)
Intel MKL /     numpy + scipy BLAS (OpenBLAS Haswell hand-tuned
AMD ACML        assembly — the vendor-quality comparator)
ATLAS 3.11.8    the same blocked algorithm in C, gcc -O3 -march=native
GotoBLAS 1.13   AUGEM kernels restricted to SSE2 (no AVX/FMA), which
                is precisely why GotoBLAS trails in Figs. 18-21
naive C -O2     an extra floor curve (not in the paper)
==============  =====================================================

Each adapter exposes the same routine surface; the figure/table drivers in
:mod:`repro.bench.figures` / :mod:`repro.bench.tables` sweep them.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

# keep the vendor proxy single-threaded (the paper's per-core comparison;
# this container has one core anyway)
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")

from ..backend.baselines import BaselineLibrary, baseline_native, baseline_o2
from ..blas.api import AugemBLAS
from ..blas.level3 import Level3
from ..isa.arch import GENERIC_SSE, detect_host
from ..obs import event, span


class _CGemmAdapter:
    """Duck-typed GemmDriver built on a compiled-C baseline dgemm."""

    def __init__(self, lib: BaselineLibrary) -> None:
        self.lib = lib

    def __call__(self, a, b, c=None, alpha=1.0, beta=0.0):
        a = np.ascontiguousarray(a, dtype=np.float64)
        b = np.ascontiguousarray(b, dtype=np.float64)
        m, k = a.shape
        _, n = b.shape
        out = np.zeros((m, n)) if c is None else np.array(c, dtype=np.float64)
        if beta == 0.0:
            out[:] = 0.0
        elif beta != 1.0:
            out *= beta
        if alpha != 1.0:
            a = alpha * a
        self.lib.blocked_dgemm(a, b, out)
        return out


@dataclass
class Library:
    """One comparison library: a name plus routine callables."""

    name: str
    dgemm: Callable  # (a, b) -> c
    dgemv_t: Callable  # (a, x) -> y = A^T x
    daxpy: Callable  # (alpha, x, y) -> mutates y
    ddot: Callable  # (x, y) -> float
    dsymm: Optional[Callable] = None  # (a, b) -> c
    dsyrk: Optional[Callable] = None  # (a,) -> c
    dsyr2k: Optional[Callable] = None  # (a, b) -> c
    dtrmm: Optional[Callable] = None  # (l, b) -> b'
    dtrsm: Optional[Callable] = None  # (l, b) -> b'
    dger: Optional[Callable] = None  # (alpha, x, y, a) -> mutates a


def make_augem_library(arch=None, configs=None, name="AUGEM") -> Library:
    blas = AugemBLAS(arch=arch, configs=configs)
    return Library(
        name=name,
        dgemm=lambda a, b: blas.dgemm(a, b),
        dgemv_t=lambda a, x: blas.dgemv(a, x, trans=True),
        daxpy=lambda alpha, x, y: blas.daxpy(alpha, x, y),
        ddot=lambda x, y: blas.ddot(x, y),
        dsymm=lambda a, b: blas.dsymm(a, b),
        dsyrk=lambda a: blas.dsyrk(a),
        dsyr2k=lambda a, b: blas.dsyr2k(a, b),
        dtrmm=lambda l, b: blas.dtrmm(l, b),
        dtrsm=lambda l, b: blas.dtrsm(l, b),
        dger=lambda alpha, x, y, a: blas.dger(alpha, x, y, a),
    )


def make_goto_proxy_library() -> Library:
    """AUGEM restricted to SSE2 — the GotoBLAS (pre-AVX) stand-in."""
    return make_augem_library(arch=GENERIC_SSE, name="GotoBLAS-proxy(SSE2)")


def make_vendor_library() -> Library:
    """numpy + scipy BLAS — the MKL/ACML stand-in (OpenBLAS assembly)."""
    from scipy.linalg import blas as sblas

    def dger(alpha, x, y, a):
        a += alpha * np.outer(x, y)
        return a

    return Library(
        name="OpenBLAS(vendor-proxy)",
        dgemm=lambda a, b: a @ b,
        dgemv_t=lambda a, x: a.T @ x,
        daxpy=lambda alpha, x, y: sblas.daxpy(x, y, a=alpha),
        ddot=lambda x, y: sblas.ddot(x, y),
        dsymm=lambda a, b: sblas.dsymm(1.0, a, b, lower=1),
        dsyrk=lambda a: sblas.dsyrk(1.0, a, lower=1),
        dsyr2k=lambda a, b: sblas.dsyr2k(1.0, a, b, lower=1),
        dtrmm=lambda l, b: sblas.dtrmm(1.0, l, b, lower=1),
        dtrsm=lambda l, b: sblas.dtrsm(1.0, l, b, lower=1),
        dger=dger,
    )


def make_atlas_proxy_library() -> Library:
    """Blocked C + gcc -O3 -march=native — the ATLAS-methodology proxy."""
    lib = baseline_native()
    gemm = _CGemmAdapter(lib)
    level3 = Level3(gemm)

    def daxpy(alpha, x, y):
        lib.daxpy(alpha, x, y)
        return y

    def dger(alpha, x, y, a):
        for i in range(a.shape[0]):
            lib.daxpy(alpha * float(x[i]), y, a[i])
        return a

    def dgemv_t(a, x):
        y = np.zeros(a.shape[1])
        lib.dgemv_t(a, x, y)
        return y

    return Library(
        name="ATLAS-proxy(C -O3)",
        dgemm=lambda a, b: gemm(a, b),
        dgemv_t=dgemv_t,
        daxpy=daxpy,
        ddot=lambda x, y: lib.ddot(x, y),
        dsymm=lambda a, b: level3.symm(a, b),
        dsyrk=lambda a: level3.syrk(a),
        dsyr2k=lambda a, b: level3.syr2k(a, b),
        dtrmm=lambda l, b: level3.trmm(l, b),
        dtrsm=lambda l, b: level3.trsm(l, b),
        dger=dger,
    )


def make_naive_library() -> Library:
    """Plain 3-loop C at -O2 — a floor curve (not in the paper)."""
    lib = baseline_o2()

    def dgemm(a, b):
        c = np.zeros((a.shape[0], b.shape[1]))
        lib.naive_dgemm(np.ascontiguousarray(a), np.ascontiguousarray(b), c)
        return c

    def dgemv_t(a, x):
        y = np.zeros(a.shape[1])
        lib.dgemv_t(a, x, y)
        return y

    def daxpy(alpha, x, y):
        lib.daxpy(alpha, x, y)
        return y

    return Library(
        name="naive C -O2",
        dgemm=dgemm,
        dgemv_t=dgemv_t,
        daxpy=daxpy,
        ddot=lambda x, y: lib.ddot(x, y),
    )


def standard_lineup(include_naive: bool = False,
                    configs: Optional[Dict] = None,
                    strict: bool = False) -> List[Library]:
    """The Fig. 18-21 / Table 6 library lineup.

    A library whose construction fails — no assembler on the host
    (:class:`~repro.backend.compiler.ToolchainUnavailable`), scipy absent
    for the vendor proxy, an injected toolchain fault — is *skipped with
    a warning* rather than aborting the whole evaluation, so one broken
    adapter costs one curve, not the run.  ``strict=True`` restores the
    fail-fast behavior for CI environments that require every curve.
    """
    from ..backend.compiler import ToolchainError

    makers = [
        ("AUGEM", lambda: make_augem_library(configs=configs)),
        ("OpenBLAS(vendor-proxy)", make_vendor_library),
        ("ATLAS-proxy(C -O3)", make_atlas_proxy_library),
        ("GotoBLAS-proxy(SSE2)", make_goto_proxy_library),
    ]
    if include_naive:
        makers.append(("naive C -O2", make_naive_library))
    libs: List[Library] = []
    for name, make in makers:
        try:
            with span("bench.build_library", library=name):
                libs.append(make())
        except (ToolchainError, ImportError, OSError) as exc:
            if strict:
                raise
            event("bench.library_skipped", library=name,
                  reason=f"{type(exc).__name__}: {exc}"[:200])
            print(f"[bench] skipping {name}: {type(exc).__name__}: {exc}",
                  file=sys.stderr)
    return libs
