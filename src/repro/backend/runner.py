"""ctypes runners for the generated kernels.

Each runner wraps a compiled symbol with the argument signature of the
corresponding simple-C kernel and numpy-array marshalling.  These are the
*micro-kernel* entry points; the packing/blocking drivers in
:mod:`repro.blas` compose them into full BLAS routines.

Loading raises :class:`~repro.backend.compiler.ToolchainUnavailable` when
the host has no assembler; callers that can degrade (the tuner, test skip
markers) catch that subclass specifically.  *Executing* a loaded kernel
is only crash-safe inside the fault-isolated worker of
:mod:`repro.backend.sandbox` — a bad candidate run in-process takes the
interpreter down with it.
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.framework import GeneratedKernel
from .compiler import SharedObject, assemble_kernel

_DP = ctypes.POINTER(ctypes.c_double)


def _ptr(a: np.ndarray) -> "ctypes._Pointer":
    # explicit checks, not asserts: handing a native kernel a pointer to
    # the wrong dtype or a strided view corrupts memory instead of
    # raising, and asserts vanish under ``python -O``
    if a.dtype != np.float64:
        raise TypeError(f"kernel buffers must be float64, got {a.dtype}")
    if not a.flags.c_contiguous:
        raise ValueError("kernel buffers must be C-contiguous "
                         "(pass a copy of the strided view)")
    return a.ctypes.data_as(_DP)


@dataclass
class NativeKernel:
    """A generated kernel loaded as native code."""

    generated: GeneratedKernel
    so: SharedObject
    fn: Callable

    @classmethod
    def load(cls, generated: GeneratedKernel) -> "NativeKernel":
        so = assemble_kernel(generated.asm_text, tag=generated.name)
        try:
            fn = so.symbol(generated.name)
        except AttributeError:
            # a persisted cache entry that dlopens but lacks the symbol
            # (e.g. written by an older build): evict it and rebuild
            so = assemble_kernel(generated.asm_text, tag=generated.name,
                                 force=True)
            fn = so.symbol(generated.name)
        return cls(generated=generated, so=so, fn=fn)


class GemmKernel(NativeKernel):
    """``dgemm_kernel(Mc, Nc, Kc, A, B, C, LDC)`` on packed panels.

    A is packed Kc x Mc (``A[l*Mc+i]``); B packed per the kernel layout
    (``B[j*Kc+l]`` for the Vdup layout, ``B[l*Nc+j]`` for Shuf); C is a
    column-major Mc x Nc tile with leading dimension LDC.
    """

    @classmethod
    def load(cls, generated: GeneratedKernel) -> "GemmKernel":
        self = super().load(generated)
        self.fn.restype = None
        self.fn.argtypes = [ctypes.c_long, ctypes.c_long, ctypes.c_long,
                            _DP, _DP, _DP, ctypes.c_long]
        return self

    def __call__(self, mc: int, nc: int, kc: int, a: np.ndarray,
                 b: np.ndarray, c: np.ndarray, ldc: int) -> None:
        self.fn(mc, nc, kc, _ptr(a), _ptr(b), _ptr(c), ldc)


class GemvKernel(NativeKernel):
    """``dgemv_kernel(M, N, A, LDA, X, Y)``: y += A(:, :) @ x, column sweep."""

    @classmethod
    def load(cls, generated: GeneratedKernel) -> "GemvKernel":
        self = super().load(generated)
        self.fn.restype = None
        self.fn.argtypes = [ctypes.c_long, ctypes.c_long, _DP,
                            ctypes.c_long, _DP, _DP]
        return self

    def __call__(self, m: int, n: int, a: np.ndarray, lda: int,
                 x: np.ndarray, y: np.ndarray) -> None:
        self.fn(m, n, _ptr(a), lda, _ptr(x), _ptr(y))


class AxpyKernel(NativeKernel):
    """``daxpy_kernel(N, alpha, X, Y)``: y += alpha * x."""

    @classmethod
    def load(cls, generated: GeneratedKernel) -> "AxpyKernel":
        self = super().load(generated)
        self.fn.restype = None
        self.fn.argtypes = [ctypes.c_long, ctypes.c_double, _DP, _DP]
        return self

    def __call__(self, n: int, alpha: float, x: np.ndarray,
                 y: np.ndarray) -> None:
        self.fn(n, alpha, _ptr(x), _ptr(y))


class ScalKernel(NativeKernel):
    """``dscal_kernel(N, alpha, X)``: x *= alpha."""

    @classmethod
    def load(cls, generated: GeneratedKernel) -> "ScalKernel":
        self = super().load(generated)
        self.fn.restype = None
        self.fn.argtypes = [ctypes.c_long, ctypes.c_double, _DP]
        return self

    def __call__(self, n: int, alpha: float, x: np.ndarray) -> None:
        self.fn(n, alpha, _ptr(x))


class DotKernel(NativeKernel):
    """``ddot_kernel(N, X, Y) -> double``."""

    @classmethod
    def load(cls, generated: GeneratedKernel) -> "DotKernel":
        self = super().load(generated)
        self.fn.restype = ctypes.c_double
        self.fn.argtypes = [ctypes.c_long, _DP, _DP]
        return self

    def __call__(self, n: int, x: np.ndarray, y: np.ndarray) -> float:
        return self.fn(n, _ptr(x), _ptr(y))


KERNEL_RUNNERS = {
    "gemm": GemmKernel,
    "gemm_shuf": GemmKernel,
    "gemv": GemvKernel,
    "gemv_n": GemvKernel,  # same (M, N, A, LDA, X, Y) signature
    "axpy": AxpyKernel,
    "dot": DotKernel,
    "scal": ScalKernel,
}


def load_kernel(kernel_family: str, generated: GeneratedKernel) -> NativeKernel:
    """Load a generated kernel with the right signature for its family."""
    return KERNEL_RUNNERS[kernel_family].load(generated)
