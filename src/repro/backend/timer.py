"""Robust micro-benchmark timing.

Single-core containers show large run-to-run variance (frequency scaling,
host noise), so every measurement is min-of-R batches of N calls — the
standard defense recommended by the profiling literature ("No optimization
without measuring!").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class Measurement:
    """Best batch-average seconds per call plus dispersion info."""

    best: float  # seconds per call, best batch
    median: float
    worst: float
    batches: int
    calls_per_batch: int

    def mflops(self, flops: float) -> float:
        return flops / self.best / 1e6

    def gflops(self, flops: float) -> float:
        return flops / self.best / 1e9


def measure(fn: Callable[[], None], batches: int = 7,
            calls_per_batch: Optional[int] = None,
            target_batch_seconds: float = 0.05,
            warmup: int = 1) -> Measurement:
    """Time ``fn`` with min-of-batches; auto-sizes the batch if not given.

    The warmup calls run before anything is timed so the first batch does
    not absorb one-off costs (dlopen relocation, first-touch page faults,
    cold caches).
    """
    if batches <= 0:
        raise ValueError(f"batches must be >= 1, got {batches}")
    if calls_per_batch is not None and calls_per_batch <= 0:
        raise ValueError(
            f"calls_per_batch must be >= 1, got {calls_per_batch}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    if calls_per_batch is None:
        t0 = time.perf_counter()
        fn()
        once = max(time.perf_counter() - t0, 1e-9)
        calls_per_batch = max(1, int(target_batch_seconds / once))
    samples = []
    for _ in range(batches):
        t0 = time.perf_counter()
        for _ in range(calls_per_batch):
            fn()
        samples.append((time.perf_counter() - t0) / calls_per_batch)
    samples.sort()
    return Measurement(
        best=samples[0],
        median=samples[len(samples) // 2],
        worst=samples[-1],
        batches=batches,
        calls_per_batch=calls_per_batch,
    )
