"""Durable disk writes and process-wide disk-health degradation.

Every persistent artifact this runtime leans on — cache ``meta.json``
records, tuning/quarantine JSON, session manifests and journals, the
serve ``state.json``/``accounting.json`` pair, the dispatch verdict
store, ``results/baseline.json`` — used to roll its own
tempfile-and-``os.replace`` publish, with no fsync and no shared answer
to ENOSPC.  This module centralizes both:

- :func:`atomic_write_bytes` / :func:`atomic_write_text` /
  :func:`atomic_write_json` — pid+uuid-suffixed temp file in the target
  directory, flush + ``fsync`` of the file, one ``os.replace``, then
  ``fsync`` of the parent directory, so the record is durable (not just
  atomic) when the call returns, and a crash at any instant leaves
  either the old file or the new one — never a partial;

- **disk-health degradation** — an ENOSPC/EDQUOT/EIO failure on any
  durable write flips a process-wide flag (:func:`disk_degraded`).  The
  kernel cache reads the flag in its ``enabled`` property, so the whole
  process demotes to in-memory-only operation: builds, tuning, serving,
  and dispatch keep working, nothing durable is attempted again, and
  no user call ever fails because the disk is full.  The demotion is
  counted (``disk.degraded``), traced, and logged to stderr exactly
  once.  Permission and layout errors (EACCES, ENOTDIR, …) do *not*
  degrade — those are per-path problems the per-site handlers already
  absorb.

Every durable write passes **checkpoints** that consult the fault plan
(:mod:`repro.backend.faults`, stage ``disk``): ``diskfull`` raises
ENOSPC, ``torn``/``bitrot`` mangle the payload before it lands, and
``kill`` SIGKILLs the process mid-publish — the torture harness in
``tests/backend/test_torture.py`` drives all four.  Checkpoints are
numbered per process in execution order, so ``kill@#7`` deterministically
dies at the 7th durable-write step no matter which subsystem issues it.
"""

from __future__ import annotations

import errno
import itertools
import json
import os
import signal
import sys
import threading
import uuid
from pathlib import Path
from typing import Any, Optional, Union

from ..obs import event, incr
from .faults import take_fault

#: errno values that mean "the disk itself is sick" — these degrade the
#: process to in-memory-only operation; anything else is a per-path
#: problem left to the caller
DEGRADING_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT, errno.EIO})

_LOCK = threading.Lock()
_DEGRADED: Optional[str] = None
_WARNED = False
_CHECKPOINTS = itertools.count()


class InjectedDiskFull(OSError):
    """The planned ``diskfull`` fault, indistinguishable from real ENOSPC
    to every handler (``.errno`` is ``ENOSPC``)."""

    def __init__(self, tag: str) -> None:
        super().__init__(errno.ENOSPC,
                         f"injected diskfull at durable write {tag!r}")


def disk_degraded() -> Optional[str]:
    """The degradation reason, or ``None`` while the disk looks healthy."""
    return _DEGRADED


def reset_disk_health() -> None:
    """Test hook: forget degradation and restart checkpoint numbering."""
    global _DEGRADED, _WARNED, _CHECKPOINTS
    with _LOCK:
        _DEGRADED = None
        _WARNED = False
        _CHECKPOINTS = itertools.count()


def note_disk_error(exc: BaseException, where: str) -> bool:
    """Record a durable-write failure; returns True if it degraded us.

    ENOSPC/EDQUOT/EIO demote the process to in-memory-only operation
    (see module docstring); the first demotion is counted, traced, and
    logged.  Other errors are the caller's to absorb.
    """
    global _DEGRADED, _WARNED
    if not isinstance(exc, OSError) or exc.errno not in DEGRADING_ERRNOS:
        return False
    with _LOCK:
        first = _DEGRADED is None
        if first:
            _DEGRADED = (f"{errno.errorcode.get(exc.errno, exc.errno)} "
                         f"at {where}")
        warn = not _WARNED
        _WARNED = True
    if first:
        incr("disk.degraded")
        event("disk.degraded", where=where, error=str(exc)[:200])
    if warn:
        print(f"repro: disk degraded ({_DEGRADED}); continuing with "
              f"in-memory caching only", file=sys.stderr)
    return True


def disk_checkpoint(tag: str) -> Optional[str]:
    """One numbered durable-write step; realizes planned disk faults.

    ``kill`` and ``diskfull`` are realized here (SIGKILL / raise);
    ``torn``/``bitrot`` are returned to the caller, which owns the
    payload bytes.  Returns ``None`` when no fault is armed.
    """
    with _LOCK:
        index = next(_CHECKPOINTS)
    kind = take_fault("disk", tag, index)
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if kind == "diskfull":
        exc = InjectedDiskFull(tag)
        note_disk_error(exc, tag)
        raise exc
    return kind


def _mangle(data: bytes, kind: Optional[str]) -> bytes:
    """Realize a payload-corrupting fault on the bytes about to land."""
    if kind == "torn":
        return data[:max(1, len(data) // 2)]
    if kind == "bitrot" and data:
        mid = len(data) // 2
        return data[:mid] + bytes([data[mid] ^ 0x10]) + data[mid + 1:]
    return data


def fsync_dir(path: Union[str, Path]) -> None:
    """Flush a directory's entry table (rename durability); best effort."""
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes,
                       tag: str = "write") -> None:
    """Durably publish ``data`` at ``path``; raises OSError on failure.

    A failure never leaves a partial file at ``path`` (the temp file is
    unlinked best-effort), and a degrading failure (ENOSPC/EDQUOT/EIO)
    flips the process-wide disk-health flag before the raise.
    """
    path = Path(path)
    data = _mangle(data, disk_checkpoint(tag))
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}"
                         f".tmp")
    try:
        fd = os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        disk_checkpoint(f"{tag}.replace")
        os.replace(tmp, path)
        fsync_dir(path.parent)
        disk_checkpoint(f"{tag}.done")
    except OSError as exc:
        note_disk_error(exc, tag)
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str,
                      tag: str = "write") -> None:
    atomic_write_bytes(path, text.encode("utf-8"), tag=tag)


def atomic_write_json(path: Union[str, Path], record: Any,
                      tag: str = "write", indent: int = 2) -> None:
    atomic_write_bytes(path, json.dumps(record, indent=indent).encode(),
                       tag=tag)
