"""Store-wide integrity scrub: verify every persisted artifact, evict rot.

The persistent store accumulates artifacts that the rest of the runtime
trusts for months: compiled ``.so`` entries, tuning measurements,
quarantine records, durable tuning sessions, the serve worker's
ISA-verdict store, and the cumulative stats ledger.  Bit-rot, torn
writes, and kill-during-publish leftovers are only caught lazily today —
``lookup_so`` self-heals the entry it happens to touch.  The scrub walks
the *whole* store eagerly:

- **objects** — ``meta.json`` must parse, carry the current schema
  version, and name a shared object whose size *and* SHA-256 digest
  (recorded at publish) match the bytes on disk;
- **tuning / quarantine** — every record must parse as JSON;
- **sessions** — every manifest must load (a torn *final* journal line
  is tolerated by design — replay drops it — and is not flagged);
- **verdict store** — ``serve_verdicts.json`` must parse and carry the
  current schema revision;
- **stats** — ``stats.json`` must parse;
- **strays** — orphaned ``*.tmp`` files and scratch directories under
  ``tmp/`` older than ``tmp_age`` (a killed publisher's leftovers).

``repair=True`` evicts what cannot be verified (under the store's
publish lock, so a concurrent builder never races the eviction) — a
corrupt compiled entry just rebuilds from source on next use, which is
the cache's normal self-healing contract applied eagerly.  Quarantine
records are the one artifact the quota GC must never touch; the scrub
*does* remove one that no longer parses, because an unreadable record
protects nothing.

Everything is reported in a machine-readable verdict (see
:func:`scrub_store`) surfaced by ``python -m repro cache scrub
[--repair] [--json]``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..obs import incr, span
from .cache import ENTRY_VERSION, KernelCache

#: seconds after which a scratch dir / stray tmp file counts as abandoned
DEFAULT_TMP_AGE = 3600.0

#: ``cache scrub`` exit status when unrepaired corruption remains
EXIT_CORRUPT = 5


@dataclass
class Problem:
    """One artifact the scrub could not verify."""

    kind: str            # object|tuning|quarantine|session|verdicts|stats|stray
    path: str            # store-relative path
    error: str           # what failed to verify
    key: Optional[str] = None   # content key, when the artifact has one
    action: str = "kept"        # kept|repaired

    def describe(self) -> str:
        return f"{self.kind:<10} {self.path}  [{self.action}]  {self.error}"


def _age(path: Path) -> float:
    try:
        return time.time() - path.stat().st_mtime
    except OSError:
        return 0.0


def _unlink(path: Path, cache: KernelCache) -> bool:
    try:
        path.unlink()
        return True
    except OSError as exc:
        cache._io_error(exc, "cache.scrub")
        return False


def _rmtree(path: Path, cache: KernelCache) -> bool:
    import shutil
    try:
        shutil.rmtree(path)
        return True
    except OSError as exc:
        cache._io_error(exc, "cache.scrub")
        return False


def _check_entry(entry: Path) -> Optional[str]:
    """Verify one compiled-object entry; returns the defect, or None."""
    meta_path = entry / "meta.json"
    try:
        meta = json.loads(meta_path.read_text())
    except FileNotFoundError:
        return "meta.json missing"
    except (OSError, ValueError) as exc:
        return f"meta.json unreadable: {exc}"
    if not isinstance(meta, dict):
        return "meta.json is not an object"
    if meta.get("version") != ENTRY_VERSION:
        return f"entry version {meta.get('version')!r}"
    so_name = meta.get("so")
    if not isinstance(so_name, str) or not so_name:
        return "meta.json names no shared object"
    so_path = entry / so_name
    try:
        so_bytes = so_path.read_bytes()
    except OSError as exc:
        return f"shared object unreadable: {exc}"
    if len(so_bytes) != meta.get("so_size") or not so_bytes:
        return (f"shared object truncated "
                f"({len(so_bytes)} != {meta.get('so_size')} bytes)")
    digest = meta.get("so_sha256")
    if not isinstance(digest, str) or len(digest) != 64:
        # every current-version entry records a digest at publish: an
        # absent or malformed one means the *meta* itself rotted
        return f"meta.json digest field invalid: {digest!r}"
    found = hashlib.sha256(so_bytes).hexdigest()
    if found != digest:
        return f"shared object digest mismatch ({found[:12]}…)"
    return None


def _check_json_file(path: Path) -> Optional[str]:
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return f"unreadable: {exc}"
    if not isinstance(record, dict):
        return "not a JSON object"
    return None


def _check_verdict_store(path: Path) -> Optional[str]:
    defect = _check_json_file(path)
    if defect is not None:
        return defect
    record = json.loads(path.read_text())
    try:
        from ..blas.dispatch import VERDICT_STORE_VERSION
    except ImportError:  # scrub must not depend on the BLAS stack loading
        return None
    if record.get("version") != VERDICT_STORE_VERSION:
        return (f"stale store revision {record.get('version')!r} "
                f"(current {VERDICT_STORE_VERSION})")
    if not isinstance(record.get("verdicts"), dict):
        return "no verdicts object"
    return None


def scrub_store(cache: KernelCache, repair: bool = False,
                tmp_age: float = DEFAULT_TMP_AGE) -> Dict[str, Any]:
    """Verify every artifact in the store; optionally evict what fails.

    Returns a machine-readable verdict::

        {"root": ..., "repair": bool, "ok": bool,
         "checked": {"objects": N, "tuning": N, ...},
         "problems": [{"kind", "path", "key", "error", "action"}, ...],
         "corrupt": M, "repaired": K}

    ``ok`` means no *unrepaired* problem remains.  Deterministic: two
    scrubs of the same store report the identical verdict.
    """
    root = cache.root
    checked = {"objects": 0, "tuning": 0, "quarantine": 0, "sessions": 0,
               "verdicts": 0, "stats": 0}
    problems: List[Problem] = []
    verdict: Dict[str, Any] = {
        "root": str(root) if root is not None else "(disabled)",
        "repair": repair, "checked": checked, "problems": [],
        "corrupt": 0, "repaired": 0, "ok": True,
    }
    if not cache.enabled or not root.exists():
        return verdict

    def flag(kind: str, path: Path, error: str,
             key: Optional[str] = None) -> Problem:
        problem = Problem(kind=kind, key=key, error=error,
                          path=str(path.relative_to(root)))
        problems.append(problem)
        incr("cache.scrub.corrupt")
        return problem

    with span("cache.scrub", repair=repair) as sp:
        # the publish lock serializes the scrub against concurrent
        # builders: an entry is never evicted mid-rename under us
        with cache._locked("publish"):
            objects = root / "objects"
            for shard in sorted(objects.iterdir()) \
                    if objects.exists() else ():
                if not shard.is_dir():
                    continue
                for entry in sorted(shard.iterdir()):
                    if not entry.is_dir():
                        if _age(entry) > tmp_age:
                            problem = flag("stray", entry, "orphaned file")
                            if repair and _unlink(entry, cache):
                                problem.action = "repaired"
                        continue
                    checked["objects"] += 1
                    defect = _check_entry(entry)
                    if defect is None:
                        continue
                    problem = flag("object", entry, defect, key=entry.name)
                    if repair:
                        cache.evict(entry.name)
                        if not entry.exists():
                            problem.action = "repaired"

            for kind in ("tuning", "quarantine"):
                tree = root / kind
                for record in sorted(tree.rglob("*")) \
                        if tree.exists() else ():
                    if not record.is_file():
                        continue
                    if record.suffix != ".json":
                        if _age(record) > tmp_age:
                            problem = flag("stray", record, "orphaned file")
                            if repair and _unlink(record, cache):
                                problem.action = "repaired"
                        continue
                    checked[kind] += 1
                    defect = _check_json_file(record)
                    if defect is not None:
                        problem = flag(kind, record, defect,
                                       key=record.stem)
                        if repair and _unlink(record, cache):
                            problem.action = "repaired"

            sessions = root / "sessions"
            for sdir in sorted(sessions.iterdir()) \
                    if sessions.exists() else ():
                if not sdir.is_dir():
                    continue
                checked["sessions"] += 1
                from ..tuning.session import TuningSession
                if TuningSession.open(sdir) is None:
                    problem = flag("session", sdir,
                                   "manifest unreadable or foreign version")
                    if repair and _rmtree(sdir, cache):
                        problem.action = "repaired"

            verdicts_path = root / "serve_verdicts.json"
            if verdicts_path.exists():
                checked["verdicts"] += 1
                defect = _check_verdict_store(verdicts_path)
                if defect is not None:
                    problem = flag("verdicts", verdicts_path, defect)
                    if repair and _unlink(verdicts_path, cache):
                        problem.action = "repaired"

            stats_path = root / "stats.json"
            if stats_path.exists():
                checked["stats"] += 1
                defect = _check_json_file(stats_path)
                if defect is not None:
                    problem = flag("stats", stats_path, defect)
                    if repair and _unlink(stats_path, cache):
                        problem.action = "repaired"

            tmp = root / "tmp"
            for scratch in sorted(tmp.iterdir()) if tmp.exists() else ():
                if _age(scratch) <= tmp_age:
                    continue
                problem = flag("stray", scratch,
                               "abandoned publish scratch")
                if repair:
                    removed = (_rmtree(scratch, cache) if scratch.is_dir()
                               else _unlink(scratch, cache))
                    if removed:
                        problem.action = "repaired"

        total_checked = sum(checked.values())
        incr("cache.scrub.checked", total_checked)
        repaired = sum(1 for p in problems if p.action == "repaired")
        incr("cache.scrub.repaired", repaired)
        problems.sort(key=lambda p: (p.kind, p.path))
        verdict["problems"] = [asdict(p) for p in problems]
        verdict["corrupt"] = len(problems)
        verdict["repaired"] = repaired
        verdict["ok"] = all(p.action == "repaired" for p in problems)
        sp.set(checked=total_checked, corrupt=len(problems),
               repaired=repaired)
    return verdict


def render_verdict(verdict: Dict[str, Any]) -> str:
    """Human-readable rendering of a scrub verdict for the CLI."""
    checked = verdict["checked"]
    lines = [f"scrubbed {verdict['root']}",
             f"checked:  " + "  ".join(f"{k}={v}"
                                       for k, v in checked.items())]
    for problem in verdict["problems"]:
        lines.append(f"  {problem['kind']:<10} {problem['path']}  "
                     f"[{problem['action']}]  {problem['error']}")
    if verdict["corrupt"]:
        lines.append(f"{verdict['corrupt']} corrupt artifact"
                     f"{'' if verdict['corrupt'] == 1 else 's'}, "
                     f"{verdict['repaired']} repaired")
    else:
        lines.append("store is clean")
    return "\n".join(lines)
