"""Advisory inter-process file locks for the shared kernel cache.

Two tuners (or a tuner and a bench run) pointed at one
``$REPRO_CACHE_DIR`` used to mutate the store's JSON records with no
coordination at all: every individual write is atomic
(tempfile + ``os.replace``), but read-modify-write sequences — the
``stats.json`` merge, publish-vs-lookup races — could silently lose
updates.  This module provides the missing coordination primitive.

Design: a *lock file* created with ``O_CREAT | O_EXCL`` (atomic on every
POSIX filesystem, including NFS since v3) whose content identifies the
holder — PID, hostname, acquisition time — as one JSON object.  Waiters
poll with capped exponential backoff plus jitter.

Crashed holders must never wedge the store, so waiters apply two
**stale-lock heuristics** before giving up:

- **dead PID** — the holder recorded a PID on *this* host and that
  process no longer exists (``os.kill(pid, 0)`` raises
  ``ProcessLookupError``);
- **age** — the lock is older than ``stale_after`` seconds (covers
  holders on other hosts, unreadable lock files, and PID reuse).

Breaking is race-safe: the breaker atomically *renames* the lock file to
a unique tombstone and unlinks that.  If two waiters race to break the
same stale lock, exactly one rename succeeds; the loser simply retries
acquisition.  A fresh lock created between the staleness check and the
rename is re-validated by inode, so a live holder is never evicted.

Locks degrade like the rest of the cache: acquisition failure raises
:class:`LockTimeout` and callers that treat their writes as best-effort
proceed unlocked (each file write stays individually atomic).
"""

from __future__ import annotations

import errno
import json
import os
import random
import socket
import time
from pathlib import Path
from typing import Any, Dict, Optional

from ..obs import incr

#: default seconds a waiter polls before raising :class:`LockTimeout`
DEFAULT_TIMEOUT = 10.0

#: default lock age (seconds) after which it is presumed abandoned
DEFAULT_STALE_AFTER = 300.0

_POLL_INITIAL = 0.005  # seconds; doubles per poll, capped below
_POLL_MAX = 0.25


class LockTimeout(OSError):
    """The lock stayed held (by a live process) past the waiter's budget."""


def pid_alive(pid: int) -> Optional[bool]:
    """Liveness of ``pid`` on this host; ``None`` when undeterminable."""
    if pid <= 0:
        return None
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return None
    return True


class FileLock:
    """One advisory lock file; usable as a context manager.

    Not reentrant and not thread-safe per instance — create one instance
    per acquisition site (they are cheap).
    """

    def __init__(self, path: Path, timeout: float = DEFAULT_TIMEOUT,
                 stale_after: float = DEFAULT_STALE_AFTER) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.stale_after = stale_after
        self._held = False

    # -- holder metadata ---------------------------------------------------

    def _payload(self) -> str:
        return json.dumps({"pid": os.getpid(),
                           "host": socket.gethostname(),
                           "time": time.time()})

    def _read_holder(self) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self.path.read_text())
        except (OSError, ValueError):
            return None

    def _lock_age(self, holder: Optional[Dict[str, Any]]) -> float:
        """Age in seconds, preferring the recorded time over mtime."""
        if holder is not None and isinstance(holder.get("time"), (int, float)):
            return time.time() - holder["time"]
        try:
            return time.time() - self.path.stat().st_mtime
        except OSError:
            return 0.0

    def _is_stale(self) -> bool:
        holder = self._read_holder()
        age = self._lock_age(holder)
        if holder is not None and holder.get("host") == socket.gethostname():
            alive = pid_alive(int(holder.get("pid", 0) or 0))
            if alive is False:
                return True
            if alive is True:
                return age > self.stale_after
        # unreadable payload or foreign host: only age can decide, with a
        # short grace period so a lock mid-write is not broken instantly
        return age > (self.stale_after if holder is not None
                      else max(1.0, min(self.stale_after, 5.0)))

    def _break_lock(self) -> bool:
        """Atomically remove a stale lock; ``True`` if *we* removed it."""
        tombstone = self.path.with_name(
            f"{self.path.name}.broken.{os.getpid()}.{random.randrange(1 << 30):08x}")
        try:
            os.rename(self.path, tombstone)
        except OSError:
            return False  # another breaker (or the holder's release) won
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        incr("lock.broken")
        return True

    # -- acquire / release -------------------------------------------------

    def acquire(self) -> "FileLock":
        deadline = time.monotonic() + max(self.timeout, 0.0)
        delay = _POLL_INITIAL
        contended = False
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            except OSError as exc:
                if exc.errno in (errno.ENOENT, errno.ENOTDIR):
                    # parent vanished (concurrent cache clear): recreate
                    try:
                        self.path.parent.mkdir(parents=True, exist_ok=True)
                        continue
                    except OSError:
                        pass
                raise
            else:
                try:
                    os.write(fd, self._payload().encode())
                finally:
                    os.close(fd)
                self._held = True
                incr("lock.acquired")
                if contended:
                    incr("lock.contended")
                return self
            if self._is_stale():
                self._break_lock()
                continue  # retry immediately — the holder is gone
            contended = True
            if time.monotonic() >= deadline:
                incr("lock.timeout")
                holder = self._read_holder() or {}
                raise LockTimeout(
                    f"lock {self.path} held past {self.timeout:g}s by "
                    f"pid={holder.get('pid')} host={holder.get('host')}")
            # capped exponential backoff with jitter so two waiters do not
            # poll in lockstep
            time.sleep(delay * (0.5 + random.random()))
            delay = min(delay * 2, _POLL_MAX)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass  # broken by a (mistaken) waiter; nothing left to release

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


class _NullLock:
    """Disabled-store stand-in: every operation is a no-op."""

    __slots__ = ()

    def acquire(self) -> "_NullLock":
        return self

    def release(self) -> None:
        pass

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_LOCK = _NullLock()


def cache_lock(root: Optional[Path], name: str = "cache",
               timeout: float = DEFAULT_TIMEOUT,
               stale_after: float = DEFAULT_STALE_AFTER):
    """A lock under ``<root>/locks/``; the null lock when ``root is None``.

    Returns an *unacquired* lock — use it as a context manager.  When the
    locks directory cannot be created (read-only store) the null lock is
    returned: the caller's writes will degrade on their own.
    """
    if root is None:
        return NULL_LOCK
    lock_dir = Path(root) / "locks"
    try:
        lock_dir.mkdir(parents=True, exist_ok=True)
    except OSError:
        return NULL_LOCK
    return FileLock(lock_dir / f"{name}.lock", timeout=timeout,
                    stale_after=stale_after)
