"""Native execution backend: toolchain driver, kernel runners, baselines,
and robust timing."""

from .baselines import (
    BaselineLibrary,
    FLAGS_NATIVE,
    FLAGS_O2,
    baseline_native,
    baseline_o2,
)
from .compiler import (
    SharedObject,
    ToolchainError,
    assemble_kernel,
    build_shared,
    find_cc,
    have_native_toolchain,
)
from .runner import (
    AxpyKernel,
    DotKernel,
    GemmKernel,
    GemvKernel,
    KERNEL_RUNNERS,
    NativeKernel,
    load_kernel,
)
from .timer import Measurement, measure

__all__ = [
    "ToolchainError",
    "SharedObject",
    "find_cc",
    "have_native_toolchain",
    "build_shared",
    "assemble_kernel",
    "NativeKernel",
    "GemmKernel",
    "GemvKernel",
    "AxpyKernel",
    "DotKernel",
    "KERNEL_RUNNERS",
    "load_kernel",
    "BaselineLibrary",
    "baseline_o2",
    "baseline_native",
    "FLAGS_O2",
    "FLAGS_NATIVE",
    "Measurement",
    "measure",
]
