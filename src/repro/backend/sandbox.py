"""Fault-isolated execution of candidate kernels.

The tuner probes exactly the configurations where generated code is most
likely to be wrong — extreme unroll factors, register-allocation edge
cases — so a candidate that SIGSEGVs, executes an illegal instruction, or
spins forever is an *expected* outcome of the search, not an exceptional
one.  Running candidates in the tuner's own process (dlopen + ctypes)
turns any such candidate into the death of the whole search.

This module runs a trial closure in a **forked worker subprocess** with a
wall-clock timeout.  The fork inherits the dlopened shared object and the
prepared numpy buffers copy-on-write, so no pickling of the kernel is
needed; only the (small) result travels back over a pipe.  Whatever the
candidate does — crash, hang, exit, raise — the parent receives a
structured :class:`SandboxResult` and the search continues.

The child exits with :func:`os._exit`, never ``sys.exit``: atexit handlers
(cache-stats flush, scratch-dir cleanup) belong to the parent and must not
run — or worse, *remove shared state* — in the worker.
"""

from __future__ import annotations

import os
import pickle
import select
import signal
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..obs import span

#: trial outcome categories (mirrored in ``TrialResult.category``)
CATEGORIES = ("ok", "failed", "crashed", "timeout")


@dataclass
class SandboxResult:
    """Structured outcome of one isolated trial."""

    category: str  # "ok" | "failed" | "crashed" | "timeout"
    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.category == "ok"


def fork_supported() -> bool:
    """Whether POSIX fork-based isolation is available on this host."""
    return hasattr(os, "fork") and sys.platform != "win32"


def resolve_isolation(requested: Optional[str]) -> str:
    """Map a user-facing isolation request to a concrete mode.

    ``None``/``"auto"`` selects ``"fork"`` when the platform supports it
    and degrades to ``"none"`` otherwise (isolation by default: a crashy
    candidate should never be able to kill a search that never asked to
    live dangerously).
    """
    if requested in (None, "auto"):
        return "fork" if fork_supported() else "none"
    if requested not in ("fork", "none"):
        raise ValueError(f"unknown isolation mode {requested!r}; "
                         f"expected 'fork', 'none', or 'auto'")
    if requested == "fork" and not fork_supported():
        raise RuntimeError("isolation='fork' requested but os.fork is "
                           "unavailable on this platform")
    return requested


def _signal_name(signum: int) -> str:
    try:
        return signal.Signals(signum).name
    except ValueError:
        return f"signal {signum}"


def _format_exc(exc: BaseException, limit: int = 200) -> str:
    return f"{type(exc).__name__}: {exc}"[:limit]


def run_sandboxed(fn: Callable[[], Any], timeout: Optional[float] = None,
                  tag: str = "candidate") -> SandboxResult:
    """Run ``fn`` in a forked child; classify crash/hang/raise/return.

    :param timeout: wall-clock seconds the child may run (``None`` = no
        limit); on expiry the child is SIGKILLed and the result category
        is ``"timeout"``.
    :param tag: human-readable trial identity for error messages.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # ---- child: run, report, _exit (never unwind further)
        try:
            os.close(read_fd)
            try:
                # a crashing candidate is an *expected* outcome here; the
                # parent reports the signal, so suppress the inherited
                # faulthandler dump (pytest enables it by default)
                import faulthandler
                faulthandler.disable()
            except Exception:
                pass
            try:
                payload = pickle.dumps(("ok", fn()))
            except BaseException as exc:  # noqa: BLE001 - classified in parent
                try:
                    payload = pickle.dumps(("exc", _format_exc(exc)))
                except Exception:
                    payload = pickle.dumps(("exc", type(exc).__name__))
            off = 0
            while off < len(payload):
                off += os.write(write_fd, payload[off:])
            os.close(write_fd)
        finally:
            os._exit(0)

    # ---- parent: read until EOF or deadline, then reap
    os.close(write_fd)
    deadline = None if timeout is None else time.monotonic() + timeout
    chunks = []
    timed_out = False
    try:
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    timed_out = True
                    break
            ready, _, _ = select.select([read_fd], [], [], remaining)
            if not ready:
                timed_out = True
                break
            data = os.read(read_fd, 1 << 16)
            if not data:
                break
            chunks.append(data)
    finally:
        os.close(read_fd)

    if timed_out:
        os.kill(pid, signal.SIGKILL)
        os.waitpid(pid, 0)
        return SandboxResult(
            "timeout",
            error=f"timeout after {timeout:g}s in candidate {tag} "
                  f"(isolated worker killed)")

    _, status = os.waitpid(pid, 0)
    if os.WIFSIGNALED(status):
        name = _signal_name(os.WTERMSIG(status))
        return SandboxResult(
            "crashed", error=f"{name} in candidate {tag} (isolated worker)")
    if not chunks:
        code = os.WEXITSTATUS(status) if os.WIFEXITED(status) else status
        return SandboxResult(
            "crashed",
            error=f"worker for candidate {tag} died without a result "
                  f"(exit status {code})")
    try:
        kind, value = pickle.loads(b"".join(chunks))
    except Exception as exc:  # truncated/garbled pipe payload
        return SandboxResult(
            "crashed",
            error=f"unreadable result from candidate {tag} worker "
                  f"({_format_exc(exc)})")
    if kind == "exc":
        return SandboxResult("failed", error=value)
    return SandboxResult("ok", value=value)


def run_trial(fn: Callable[[], Any], isolation: str = "fork",
              timeout: Optional[float] = None,
              tag: str = "candidate") -> SandboxResult:
    """Run one trial under the given isolation mode.

    ``"fork"`` gives full crash/hang protection via :func:`run_sandboxed`;
    ``"none"`` runs inline (no protection against native crashes or hangs,
    but Python-level exceptions are still converted into structured
    failures so both modes report identically for well-behaved faults).
    """
    with span("sandbox.trial", tag=tag, isolation=isolation) as sp:
        if isolation == "fork":
            res = run_sandboxed(fn, timeout=timeout, tag=tag)
        else:
            try:
                res = SandboxResult("ok", value=fn())
            except Exception as exc:  # noqa: BLE001 - structured failure
                res = SandboxResult("failed", error=_format_exc(exc))
        sp.set(category=res.category, error=res.error)
    return res
