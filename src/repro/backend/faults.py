"""Deterministic fault injection for robustness testing.

The empirical tuner must survive candidates that crash, hang, compute
garbage, or fail to build — but such candidates appear nondeterministically
in real searches, which makes the failure paths untestable by accident
alone.  This module lets tests and the bench harness *plan* faults at
chosen candidates so the isolation machinery can be proven end-to-end.

A plan is a list of specs, each ``kind@match[:count]``:

``kind``
    ``segv``  — dereference a null pointer at kernel entry (SIGSEGV)
    ``ill``   — execute ``ud2`` at kernel entry (SIGILL)
    ``hang``  — spin forever at kernel entry (trips the trial timeout)
    ``wrong`` — return immediately, producing wrong results (fails
    validation, but never crashes)
    ``toolchain`` — make one assembler/compiler invocation fail (exercises
    the bounded-retry path in :mod:`repro.backend.compiler`)
    ``interrupt`` — raise :class:`KeyboardInterrupt` in the tuning loop
    just before the matching candidate's trial (exercises the durable
    session / crash-resume path in :mod:`repro.tuning.session`)
    ``serve_crash`` — the serve worker (:mod:`repro.serve.server`) dies
    with ``os._exit`` mid-request, after admission and before any
    response (exercises supervisor restart and the client fallback)
    ``serve_stall`` — the worker sleeps past the request deadline before
    answering (exercises client timeouts and the degradation chain)
    ``serve_reject`` — the worker answers the request with a
    backpressure rejection even though the queue has room (exercises
    the client's retry-with-backoff path)

    ``worker_die`` — a GEMM worker thread raises
    :class:`InjectedWorkerFault` just before computing the matching
    macro-tile (exercises the parallel driver's whole-call failure
    path: no partial C writes reach the caller, packing buffers return
    to the pool)
    ``corrupt`` — flip one high mantissa/exponent bit in the matching
    macro-tile's C scratch after the kernel computes it (silent data
    corruption; exercises the ABFT detect→retry→recompute→quarantine
    ladder in :mod:`repro.blas.integrity`).  Without a ``:count`` the
    corruption is *persistent* — the tile's retry corrupts again,
    forcing the reference-recompute path; ``corrupt@#0:1`` models a
    transient bit-flip the retry heals
    ``diskfull`` — the matching durable write fails with
    ``OSError(ENOSPC)`` (exercises the in-memory-only degradation in
    :mod:`repro.backend.fsio`: the process keeps serving with the
    persistent cache off instead of failing user calls)
    ``torn`` — the matching durable write lands truncated to half its
    bytes (models a torn write surfaced after a crash; exercises
    ``cache scrub`` and the self-healing lookup paths)
    ``bitrot`` — one bit of the matching durable write's payload is
    flipped before it lands (models media decay; exercises the digest
    verification in ``cache scrub``)
    ``kill`` — the process SIGKILLs itself at the matching durable-write
    checkpoint (the kill-during-publish torture harness: the store must
    afterwards read as entry-absent or entry-fully-valid, never partial)

``match``
    ``#N`` fires at candidate index ``N`` (asm- and interrupt-stage
    faults), request index ``N`` (serve-stage faults, counted per
    worker process), macro-tile index ``N`` (thread-stage faults,
    counted per GEMM call), or durable-write checkpoint ``N``
    (disk-stage faults, counted per process in
    :mod:`repro.backend.fsio`); any other string fires when it is a
    substring of the stage tag (the kernel symbol name for asm/
    interrupt faults, the source tag for toolchain faults, the routine
    family for serve faults, ``gemm``/``gemm_shuf`` for thread faults,
    the write-site tag like ``cache.meta``/``journal.append`` for disk
    faults).

``count``
    optional; the fault fires at most this many times, then disarms
    (models *transient* toolchain failures: ``toolchain@k:2`` fails the
    first two attempts and lets the retry loop succeed on the third).

Specs are separated by ``;`` or ``,``.  Plans come from the
``REPRO_FAULT_INJECT`` environment variable (re-read whenever it changes,
so a monkeypatched env takes effect immediately) or are installed
programmatically with :func:`install_fault_plan`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

#: kinds realized by rewriting the generated assembly
ASM_KINDS = frozenset({"segv", "ill", "hang", "wrong"})
#: kinds realized inside the toolchain driver
TOOLCHAIN_KINDS = frozenset({"toolchain"})
#: kinds realized in the tuning loop (simulated operator interrupt)
INTERRUPT_KINDS = frozenset({"interrupt"})
#: kinds realized in the serve worker (BLAS-as-a-service degradations)
SERVE_KINDS = frozenset({"serve_crash", "serve_stall", "serve_reject"})
#: kinds realized inside a GEMM worker thread (parallel-driver failures)
THREAD_KINDS = frozenset({"worker_die", "corrupt"})
#: kinds realized at durable-write checkpoints (disk-state torture)
DISK_KINDS = frozenset({"diskfull", "torn", "bitrot", "kill"})
ALL_KINDS = (ASM_KINDS | TOOLCHAIN_KINDS | INTERRUPT_KINDS | SERVE_KINDS
             | THREAD_KINDS | DISK_KINDS)


class FaultPlanError(ValueError):
    """A malformed ``REPRO_FAULT_INJECT`` / plan spec."""


class InjectedWorkerFault(RuntimeError):
    """The planned ``worker_die`` failure raised inside a GEMM worker."""


@dataclass
class FaultSpec:
    """One planned fault: what to inject, where, and how many times."""

    kind: str
    match: str
    remaining: Optional[int] = None  # None = fires every time it matches

    @property
    def stage(self) -> str:
        if self.kind in TOOLCHAIN_KINDS:
            return "toolchain"
        if self.kind in INTERRUPT_KINDS:
            return "interrupt"
        if self.kind in SERVE_KINDS:
            return "serve"
        if self.kind in THREAD_KINDS:
            return "thread"
        if self.kind in DISK_KINDS:
            return "disk"
        return "asm"

    def matches(self, tag: str, index: Optional[int]) -> bool:
        if self.match.startswith("#"):
            return index is not None and index == int(self.match[1:])
        return bool(self.match) and self.match in (tag or "")


class FaultPlan:
    """An ordered set of :class:`FaultSpec` with firing-count state."""

    def __init__(self, specs: List[FaultSpec]) -> None:
        self.specs = list(specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs: List[FaultSpec] = []
        for chunk in text.replace(";", ",").split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, sep, rest = chunk.partition("@")
            kind = kind.strip()
            if not sep or kind not in ALL_KINDS:
                raise FaultPlanError(
                    f"bad fault spec {chunk!r}; expected kind@match[:count] "
                    f"with kind in {sorted(ALL_KINDS)}")
            match, _, count = rest.partition(":")
            match = match.strip()
            if not match:
                raise FaultPlanError(f"fault spec {chunk!r} has empty match")
            if match.startswith("#") and not match[1:].isdigit():
                raise FaultPlanError(
                    f"fault spec {chunk!r}: index match must be #<int>")
            remaining: Optional[int] = None
            if count:
                try:
                    remaining = int(count)
                except ValueError:
                    raise FaultPlanError(
                        f"fault spec {chunk!r}: count must be an int") from None
                if remaining <= 0:
                    raise FaultPlanError(
                        f"fault spec {chunk!r}: count must be positive")
            specs.append(FaultSpec(kind=kind, match=match,
                                   remaining=remaining))
        return cls(specs)

    def take(self, stage: str, tag: str = "",
             index: Optional[int] = None) -> Optional[str]:
        """Fire (and consume one shot of) the first matching spec."""
        for spec in self.specs:
            if spec.stage != stage or not spec.matches(tag, index):
                continue
            if spec.remaining is not None:
                if spec.remaining <= 0:
                    continue
                spec.remaining -= 1
            return spec.kind
        return None


_INSTALLED: Optional[FaultPlan] = None
_ENV_RAW: Optional[str] = None
_ENV_PLAN: Optional[FaultPlan] = None


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Programmatic override (tests); ``None`` restores env-driven plans."""
    global _INSTALLED
    _INSTALLED = plan


def clear_fault_plan() -> None:
    """Drop any installed plan and forget the parsed-env cache."""
    global _INSTALLED, _ENV_RAW, _ENV_PLAN
    _INSTALLED = None
    _ENV_RAW = None
    _ENV_PLAN = None


def get_fault_plan() -> Optional[FaultPlan]:
    """The active plan: installed > ``$REPRO_FAULT_INJECT`` > none."""
    global _ENV_RAW, _ENV_PLAN
    if _INSTALLED is not None:
        return _INSTALLED
    raw = os.environ.get("REPRO_FAULT_INJECT", "").strip()
    if not raw:
        _ENV_RAW, _ENV_PLAN = None, None
        return None
    if raw != _ENV_RAW:
        _ENV_RAW, _ENV_PLAN = raw, FaultPlan.parse(raw)
    return _ENV_PLAN


def take_fault(stage: str, tag: str = "",
               index: Optional[int] = None) -> Optional[str]:
    """Consume a planned fault for ``stage``/``tag``; ``None`` if unarmed."""
    plan = get_fault_plan()
    return plan.take(stage, tag, index) if plan is not None else None


def corrupt_tile(buf) -> None:
    """Realize a ``corrupt`` fault: flip bit 62 of the first element.

    XOR-ing the top exponent bit turns 0.0 into 2.0 and scales any
    other finite value by a huge power of two — always far outside any
    checksum tolerance.  When the flip would land in the all-ones
    exponent (values in ``[1, 2)`` become Inf/NaN), bit 61 is flipped
    too, keeping the corruption finite — *silent* wrong bits, not a
    NaN any consumer would notice on its own.
    """
    import numpy as np

    view = np.asarray(buf).view(np.uint64)
    view.flat[0] ^= np.uint64(1 << 62)
    if not np.isfinite(np.asarray(buf).flat[0]):
        view.flat[0] ^= np.uint64(1 << 61)


#: instruction payloads inserted at function entry, by fault kind
_ASM_PAYLOADS = {
    "segv": "\txorq\t%rax, %rax\n\tmovq\t(%rax), %rax\t# injected fault",
    "ill": "\tud2\t# injected fault",
    "hang": "1:\tjmp\t1b\t# injected fault",
    "wrong": "\tret\t# injected fault",
}


def inject_asm_fault(kind: str, asm_text: str, symbol: str) -> str:
    """Rewrite a generated kernel so it misbehaves at entry.

    The payload lands immediately after the ``symbol:`` label, before the
    prologue, so ``wrong`` (an early ``ret``) leaves the stack balanced.
    """
    payload = _ASM_PAYLOADS.get(kind)
    if payload is None:
        raise FaultPlanError(f"unknown asm fault kind {kind!r}")
    label = f"{symbol}:"
    lines = asm_text.splitlines()
    for i, line in enumerate(lines):
        if line.strip() == label:
            lines.insert(i + 1, payload)
            return "\n".join(lines) + ("\n" if asm_text.endswith("\n") else "")
    raise FaultPlanError(f"symbol label {label!r} not found in assembly")
