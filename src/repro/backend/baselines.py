"""Compiled C baseline kernels — the comparator libraries of §5.

The paper compares AUGEM against four BLAS libraries that are not
redistributable / not installable here; per DESIGN.md each is replaced by
a methodological stand-in:

- **"ATLAS" proxy** — the same blocked, packed GEMM algorithm written in
  plain C and handed to the general-purpose compiler at ``-O3
  -march=native -funroll-loops`` (generated C + vendor compiler is exactly
  the ATLAS methodology the paper contrasts against);
- **"GotoBLAS" proxy** — AUGEM's own SSE2-only generated kernel (GotoBLAS
  1.13's hand assembly predates AVX/FMA, the reason it trails in Fig. 18),
  plus a plain ``-O2`` naive C curve as a floor;
- **vendor proxy (MKL/ACML)** — numpy's OpenBLAS, hand-tuned assembly from
  the very lineage AUGEM's kernels were merged into.

This module also provides the small triangular diagonal-block routines
(naive C) used by the blocked TRMM/TRSM drivers, so no numpy/OpenBLAS
cycles leak into the Level-3 measurements.
"""

from __future__ import annotations

import ctypes
from typing import Callable

import numpy as np

from .compiler import build_shared

_DP = ctypes.POINTER(ctypes.c_double)


def _ptr(a: np.ndarray):
    return a.ctypes.data_as(_DP)


NAIVE_DGEMM_C = r"""
void naive_dgemm(long m, long n, long k,
                 const double* A, const double* B, double* C) {
    /* C (m x n, row-major) += A (m x k) @ B (k x n) */
    for (long i = 0; i < m; i++) {
        for (long l = 0; l < k; l++) {
            double a = A[i*k + l];
            for (long j = 0; j < n; j++) {
                C[i*n + j] += a * B[l*n + j];
            }
        }
    }
}
"""

BLOCKED_DGEMM_C = r"""
#define MC 64
#define KC 256
#define NC 512

static double Apack[MC*KC];
static double Bpack[KC*NC];

static void pack_a(long mc, long kc, const double* restrict A, long lda,
                   double* restrict out) {
    for (long l = 0; l < kc; l++)
        for (long i = 0; i < mc; i++)
            out[l*mc + i] = A[i*lda + l];
}

static void pack_b(long kc, long nc, const double* restrict B, long ldb,
                   double* restrict out) {
    for (long l = 0; l < kc; l++)
        for (long j = 0; j < nc; j++)
            out[l*nc + j] = B[l*ldb + j];
}

static void kernel(long mc, long nc, long kc,
                   const double* restrict A, const double* restrict B,
                   double* restrict C, long ldc) {
    /* C row-major tile (mc x nc): same packed operands the generated
       kernel uses, restructured so the compiler's auto-vectorizer gets a
       clean unit-stride inner loop (the ATLAS-methodology best case) */
    double acc[NC];
    for (long i = 0; i < mc; i++) {
        for (long j = 0; j < nc; j++) acc[j] = 0.0;
        for (long l = 0; l < kc; l++) {
            double a = A[l*mc + i];
            for (long j = 0; j < nc; j++)
                acc[j] += a * B[l*nc + j];
        }
        for (long j = 0; j < nc; j++) C[i*ldc + j] += acc[j];
    }
}

void blocked_dgemm(long m, long n, long k,
                   const double* A, const double* B, double* C) {
    for (long j0 = 0; j0 < n; j0 += NC) {
        long nc = n - j0 < NC ? n - j0 : NC;
        for (long l0 = 0; l0 < k; l0 += KC) {
            long kc = k - l0 < KC ? k - l0 : KC;
            pack_b(kc, nc, B + l0*n + j0, n, Bpack);
            for (long i0 = 0; i0 < m; i0 += MC) {
                long mc = m - i0 < MC ? m - i0 : MC;
                pack_a(mc, kc, A + i0*k + l0, k, Apack);
                kernel(mc, nc, kc, Apack, Bpack, C + i0*n + j0, n);
            }
        }
    }
}
"""

NAIVE_VECTOR_C = r"""
void naive_dgemv_t(long m, long n, const double* A, const double* x,
                   double* y) {
    /* y (n) += A^T (n x m) @ x: A row-major (m x n) */
    for (long i = 0; i < m; i++) {
        double s = x[i];
        for (long j = 0; j < n; j++)
            y[j] += A[i*n + j] * s;
    }
}

void naive_daxpy(long n, double alpha, const double* x, double* y) {
    for (long i = 0; i < n; i++)
        y[i] += alpha * x[i];
}

double naive_ddot(long n, const double* x, const double* y) {
    double s = 0.0;
    for (long i = 0; i < n; i++)
        s += x[i] * y[i];
    return s;
}
"""

TRIANGULAR_DIAG_C = r"""
void trmm_lower_diag(long nb, long ncols, const double* L, double* B,
                     long ldb) {
    /* B (nb x ncols, row-major, leading dim ldb) = L (nb x nb lower) @ B */
    for (long i = nb - 1; i >= 0; i--) {
        for (long j = 0; j < ncols; j++) {
            double s = 0.0;
            for (long l = 0; l <= i; l++)
                s += L[i*nb + l] * B[l*ldb + j];
            B[i*ldb + j] = s;
        }
    }
}

void trsm_lower_diag(long nb, long ncols, const double* L, double* B,
                     long ldb) {
    /* B = L^{-1} B by forward substitution */
    for (long i = 0; i < nb; i++) {
        for (long l = 0; l < i; l++) {
            double c = L[i*nb + l];
            for (long j = 0; j < ncols; j++)
                B[i*ldb + j] -= c * B[l*ldb + j];
        }
        double d = 1.0 / L[i*nb + i];
        for (long j = 0; j < ncols; j++)
            B[i*ldb + j] *= d;
    }
}
"""

#: gcc flag sets for the two baseline tiers
FLAGS_O2 = ("-O2",)
FLAGS_NATIVE = ("-O3", "-march=native", "-funroll-loops", "-ffast-math")


class BaselineLibrary:
    """Lazy-compiled bundle of every baseline routine at one flag tier."""

    def __init__(self, flags=FLAGS_NATIVE, tag: str = "baseline") -> None:
        self.flags = tuple(flags)
        self.tag = tag
        self._so = None

    @property
    def so(self):
        if self._so is None:
            self._so = build_shared(
                {
                    "gemm_naive.c": NAIVE_DGEMM_C,
                    "gemm_blocked.c": BLOCKED_DGEMM_C,
                    "vector.c": NAIVE_VECTOR_C,
                    "triangular.c": TRIANGULAR_DIAG_C,
                },
                extra_flags=self.flags,
                tag=self.tag,
            )
        return self._so

    def _sig(self, name: str, restype, argtypes) -> Callable:
        fn = self.so.symbol(name)
        fn.restype = restype
        fn.argtypes = argtypes
        return fn

    # -- GEMM -------------------------------------------------------------
    def naive_dgemm(self, a: np.ndarray, b: np.ndarray,
                    c: np.ndarray) -> np.ndarray:
        m, k = a.shape
        _, n = b.shape
        fn = self._sig("naive_dgemm", None,
                       [ctypes.c_long] * 3 + [_DP] * 3)
        fn(m, n, k, _ptr(a), _ptr(b), _ptr(c))
        return c

    def blocked_dgemm(self, a: np.ndarray, b: np.ndarray,
                      c: np.ndarray) -> np.ndarray:
        m, k = a.shape
        _, n = b.shape
        fn = self._sig("blocked_dgemm", None,
                       [ctypes.c_long] * 3 + [_DP] * 3)
        fn(m, n, k, _ptr(a), _ptr(b), _ptr(c))
        return c

    # -- vector -----------------------------------------------------------
    def dgemv_t(self, a: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        m, n = a.shape
        fn = self._sig("naive_dgemv_t", None,
                       [ctypes.c_long] * 2 + [_DP] * 3)
        fn(m, n, _ptr(a), _ptr(x), _ptr(y))
        return y

    def daxpy(self, alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        fn = self._sig("naive_daxpy", None,
                       [ctypes.c_long, ctypes.c_double, _DP, _DP])
        fn(len(x), alpha, _ptr(x), _ptr(y))
        return y

    def ddot(self, x: np.ndarray, y: np.ndarray) -> float:
        fn = self._sig("naive_ddot", ctypes.c_double,
                       [ctypes.c_long, _DP, _DP])
        return fn(len(x), _ptr(x), _ptr(y))

    # -- triangular diagonal blocks ------------------------------------------
    def trmm_diag(self, l_block: np.ndarray, b_rows: np.ndarray,
                  ldb: int) -> None:
        nb = l_block.shape[0]
        ncols = b_rows.shape[1] if b_rows.ndim == 2 else ldb
        fn = self._sig("trmm_lower_diag", None,
                       [ctypes.c_long, ctypes.c_long, _DP, _DP, ctypes.c_long])
        fn(nb, ncols, _ptr(l_block), _ptr(b_rows), ldb)

    def trsm_diag(self, l_block: np.ndarray, b_rows: np.ndarray,
                  ldb: int) -> None:
        nb = l_block.shape[0]
        ncols = b_rows.shape[1] if b_rows.ndim == 2 else ldb
        fn = self._sig("trsm_lower_diag", None,
                       [ctypes.c_long, ctypes.c_long, _DP, _DP, ctypes.c_long])
        fn(nb, ncols, _ptr(l_block), _ptr(b_rows), ldb)


_default_o2 = None
_default_native = None


def baseline_o2() -> BaselineLibrary:
    """Naive-compilation tier (``-O2``)."""
    global _default_o2
    if _default_o2 is None:
        _default_o2 = BaselineLibrary(FLAGS_O2, tag="base-o2")
    return _default_o2


def baseline_native() -> BaselineLibrary:
    """Auto-vectorized tier (``-O3 -march=native``) — the ATLAS proxy."""
    global _default_native
    if _default_native is None:
        _default_native = BaselineLibrary(FLAGS_NATIVE, tag="base-nat")
    return _default_native
