"""Persistent, content-addressed kernel cache.

Compiled shared objects (and tuning measurements) are stored on disk under
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-augem``), keyed by a content
hash that covers the sources, the compile flags, and the compiler
identity/version, so entries survive process restarts and are shared by
every benchmark/test/tuning run on the machine.

Design points:

- **two-level**: callers keep their own in-process dict (the hot layer);
  this module is the cross-process disk layer.
- **atomic publish**: entries are built in a scratch directory and moved
  into place with a single ``rename``, so a crashed or concurrent writer
  can never leave a half-written entry visible.
- **self-healing**: a corrupted or truncated entry fails closed — it is
  evicted and the caller rebuilds from source.
- **instrumented**: a :class:`CacheStats` counter object records hits,
  misses, evictions, and toolchain time; cumulative totals are merged
  into ``stats.json`` at interpreter exit and surfaced through
  ``python -m repro cache stats``.

Setting ``REPRO_CACHE_DIR`` to ``off`` / ``none`` / ``0`` / ``disabled``
turns the disk layer off entirely (hermetic test mode): all lookups miss,
all publishes are no-ops, and nothing outside the process temp dir is
touched.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import shutil
import tempfile
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..obs import event, incr
from . import fsio
from .locks import NULL_LOCK, LockTimeout, cache_lock

_DISABLED_VALUES = {"off", "none", "0", "disabled", "false"}

#: meta.json schema version; bump to invalidate every existing entry.
#: v2 added the mandatory ``so_size``/``so_sha256`` integrity fields.
ENTRY_VERSION = 2

_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def parse_bytes(text: str) -> Optional[int]:
    """``"512m"``/``"2g"``/``"1048576"`` -> bytes; ``None`` if malformed.

    Malformed values degrade (no budget) rather than fail a build —
    matching how ``REPRO_THREADS`` handles garbage.
    """
    text = (text or "").strip().lower()
    if not text:
        return None
    scale = 1
    if text[-1] in _SIZE_SUFFIXES:
        scale = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = int(float(text) * scale)
    except ValueError:
        return None
    return value if value >= 0 else None


def cache_max_bytes() -> Optional[int]:
    """The configured size budget (``REPRO_CACHE_MAX_BYTES``), if any."""
    return parse_bytes(os.environ.get("REPRO_CACHE_MAX_BYTES", ""))


@dataclass
class CacheStats:
    """Hit/miss/evict counters plus toolchain-time accounting (seconds)."""

    mem_hits: int = 0        # served from the in-process dict
    disk_hits: int = 0       # served from the persistent store
    misses: int = 0          # nothing cached; toolchain invoked
    evictions: int = 0       # corrupt/cleared entries removed
    errors: int = 0          # load failures (each also evicts)
    puts: int = 0            # entries published to disk
    tuning_hits: int = 0     # persisted tuning measurements reused
    tuning_puts: int = 0     # tuning measurements persisted
    quarantine_hits: int = 0  # known-crashing candidates skipped
    quarantine_puts: int = 0  # candidates newly quarantined
    io_errors: int = 0       # OSErrors absorbed by store maintenance
    gc_evictions: int = 0    # healthy entries evicted by the quota GC
    lock_timeouts: int = 0   # cache-lock waits that gave up (wrote unlocked)
    toolchain_invocations: int = 0
    toolchain_retries: int = 0  # transient-failure retry attempts
    build_seconds: float = 0.0  # wall time spent inside the toolchain

    @property
    def hits(self) -> int:
        return self.mem_hits + self.disk_hits

    def merge(self, other: Dict[str, Any]) -> None:
        for key, value in other.items():
            if hasattr(self, key) and isinstance(value, (int, float)):
                setattr(self, key, getattr(self, key) + value)

    def describe(self) -> str:
        return (
            f"hits={self.hits} (mem={self.mem_hits} disk={self.disk_hits}) "
            f"misses={self.misses} evictions={self.evictions} "
            f"errors={self.errors} puts={self.puts} "
            f"tuning hits={self.tuning_hits} puts={self.tuning_puts} "
            f"quarantine hits={self.quarantine_hits} "
            f"puts={self.quarantine_puts} "
            f"io errors={self.io_errors} gc evictions={self.gc_evictions} "
            f"lock timeouts={self.lock_timeouts} "
            f"toolchain calls={self.toolchain_invocations} "
            f"retries={self.toolchain_retries} "
            f"build time={self.build_seconds:.2f}s"
        )


def cache_root() -> Optional[Path]:
    """Resolve the store root from the environment; ``None`` = disabled."""
    raw = os.environ.get("REPRO_CACHE_DIR")
    if raw is not None and raw.strip().lower() in _DISABLED_VALUES:
        return None
    if raw:
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "repro-augem"


class KernelCache:
    """The on-disk half of the two-level cache.

    Layout under the root::

        objects/<k0:2>/<key>/   one compiled entry: meta.json + *.so
        tuning/<k0:2>/<key>.json   one persisted tuning measurement
        quarantine/<k0:2>/<key>.json   one known-crashing candidate
        sessions/<id>/          durable tuning sessions (manifest + journal)
        locks/                  advisory lock files (see backend.locks)
        tmp/                    scratch for atomic publishes
        stats.json              cumulative counters across processes

    Mutations of shared JSON records run under an advisory file lock
    (:mod:`repro.backend.locks`) so concurrent tuners on one store never
    interleave read-modify-write sequences.  A lock that cannot be
    acquired within its budget degrades to an unlocked (still
    individually atomic) write — the cache never deadlocks a build.
    """

    def __init__(self, root: Optional[Path]) -> None:
        self.root = root
        self.stats = CacheStats()
        self._flushed = False

    @property
    def enabled(self) -> bool:
        # a sick disk (ENOSPC/EIO on any durable write, anywhere in the
        # process) demotes the whole store to in-memory-only operation
        return self.root is not None and fsio.disk_degraded() is None

    # -- error accounting --------------------------------------------------

    def _io_error(self, exc: OSError, where: str) -> None:
        """Count an absorbed maintenance OSError instead of hiding it."""
        self.stats.io_errors += 1
        incr("cache.io_error")
        fsio.note_disk_error(exc, where)

    def _rmtree(self, path: Path, where: str) -> None:
        """``shutil.rmtree`` that counts failures rather than lying."""
        try:
            shutil.rmtree(path)
        except FileNotFoundError:
            pass
        except OSError as exc:
            self._io_error(exc, where)
            shutil.rmtree(path, ignore_errors=True)  # salvage what we can

    # -- paths ------------------------------------------------------------

    def _entry_dir(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / key

    def _tuning_path(self, key: str) -> Path:
        return self.root / "tuning" / key[:2] / f"{key}.json"

    def _quarantine_path(self, key: str) -> Path:
        return self.root / "quarantine" / key[:2] / f"{key}.json"

    def _scratch(self) -> Path:
        tmp = self.root / "tmp"
        tmp.mkdir(parents=True, exist_ok=True)
        return Path(tempfile.mkdtemp(dir=tmp))

    # -- inter-process locking --------------------------------------------

    @contextmanager
    def _locked(self, name: str = "cache"):
        """Best-effort advisory lock around one store mutation.

        A timed-out wait is counted and the mutation proceeds unlocked:
        every write below is individually atomic, so the worst case of
        losing the lock race is a lost *merge* (stats), never a corrupt
        record.
        """
        lock = cache_lock(self.root if self.enabled else None, name=name)
        try:
            lock.acquire()
        except LockTimeout:
            self.stats.lock_timeouts += 1
            incr("cache.lock_timeout")
            lock = NULL_LOCK
        except OSError as exc:
            # the lock *file* could not be created (disk full, store
            # yanked): degrade to an unlocked write, never crash the
            # mutation — and let a sick disk flip the health flag
            self._io_error(exc, f"cache.lock.{name}")
            lock = NULL_LOCK
        try:
            yield
        finally:
            lock.release()

    # -- compiled-object entries ------------------------------------------

    def lookup_so(self, key: str) -> Optional[Path]:
        """Return the cached ``.so`` path for ``key``, or ``None``.

        Any malformed entry (missing meta, wrong version, missing or
        truncated object) is evicted so the caller rebuilds cleanly.
        """
        if not self.enabled:
            return None
        entry = self._entry_dir(key)
        meta_path = entry / "meta.json"
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("version") != ENTRY_VERSION:
                raise ValueError(f"entry version {meta.get('version')!r}")
            so_path = entry / meta["so"]
            size = so_path.stat().st_size
            if size != meta["so_size"] or size == 0:
                raise ValueError("shared object truncated")
            try:
                # LRU stamp for the quota GC: a disk hit refreshes the
                # entry's meta mtime, so eviction order tracks last use
                os.utime(meta_path)
            except OSError:
                pass
            return so_path
        except (FileNotFoundError, NotADirectoryError):
            return None
        except Exception:
            self.stats.errors += 1
            self.evict(key)
            return None

    def publish_so(self, key: str, workdir: Path, so_name: str,
                   meta: Optional[Dict[str, Any]] = None) -> Optional[Path]:
        """Atomically move a finished build directory into the store.

        ``workdir`` must contain ``so_name``; sources/objects alongside it
        are kept for debuggability. Returns the published ``.so`` path (or
        ``None`` when the store is disabled / publish raced and lost).
        """
        if not self.enabled:
            return None
        entry = self._entry_dir(key)
        try:
            so_src = workdir / so_name
            so_bytes = so_src.read_bytes()
            record = dict(meta or {})
            record.update(version=ENTRY_VERSION, so=so_name,
                          so_size=len(so_bytes),
                          so_sha256=hashlib.sha256(so_bytes).hexdigest())
            # make the object itself durable, then write meta last inside
            # the scratch dir (fsynced), then one atomic rename below
            fd = os.open(so_src, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
            fsio.atomic_write_json(workdir / "meta.json", record,
                                   tag="cache.meta")
            entry.parent.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            # store unusable (permissions, bad $REPRO_CACHE_DIR, disk
            # full): the build in ``workdir`` is still valid, just never
            # becomes shared — degrade instead of failing the build
            self.stats.errors += 1
            fsio.note_disk_error(exc, "cache.publish")
            return None
        try:
            with self._locked("publish"):
                fsio.disk_checkpoint("cache.publish.rename")
                workdir.rename(entry)
                fsio.fsync_dir(entry.parent)
                fsio.disk_checkpoint("cache.publish.done")
        except OSError as exc:
            # a concurrent builder published first (or the disk died
            # mid-rename); use theirs if there is one
            fsio.note_disk_error(exc, "cache.publish")
            shutil.rmtree(workdir, ignore_errors=True)
            return self.lookup_so(key)
        self.stats.puts += 1
        incr("cache.put")
        self.maybe_gc()
        return entry / so_name

    def evict(self, key: str) -> None:
        if not self.enabled:
            return
        entry = self._entry_dir(key)
        if entry.exists():
            self._rmtree(entry, "cache.evict")
            self.stats.evictions += 1
            incr("cache.eviction")

    # -- tuning measurements ----------------------------------------------

    def load_tuning(self, key: str) -> Optional[Dict[str, Any]]:
        if not self.enabled:
            return None
        try:
            record = json.loads(self._tuning_path(key).read_text())
        except (FileNotFoundError, NotADirectoryError):
            return None
        except Exception:
            self.stats.errors += 1
            try:
                self._tuning_path(key).unlink()
                self.stats.evictions += 1
            except OSError as exc:
                self._io_error(exc, "cache.tuning.evict")
            return None
        self.stats.tuning_hits += 1
        incr("cache.tuning_hit")
        return record

    def store_tuning(self, key: str, record: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        path = self._tuning_path(key)
        try:
            with self._locked("tuning"):
                path.parent.mkdir(parents=True, exist_ok=True)
                fsio.atomic_write_json(path, record, tag="cache.tuning")
        except OSError:
            self.stats.errors += 1  # measurements are best-effort too
            return
        self.stats.tuning_puts += 1
        incr("cache.tuning_put")

    # -- candidate quarantine ----------------------------------------------
    #
    # A candidate that crashed or hung in the isolated worker is recorded
    # here (keyed like the tuning measurements, by the generated kernel's
    # content hash) so a re-tuning run skips it without re-executing the
    # crash.  ``clear()`` resets the quarantine along with everything else.

    def load_quarantine(self, key: str) -> Optional[Dict[str, Any]]:
        if not self.enabled:
            return None
        try:
            record = json.loads(self._quarantine_path(key).read_text())
        except (FileNotFoundError, NotADirectoryError):
            return None
        except Exception:
            self.stats.errors += 1
            try:
                self._quarantine_path(key).unlink()
                self.stats.evictions += 1
            except OSError as exc:
                self._io_error(exc, "cache.quarantine.evict")
            return None
        self.stats.quarantine_hits += 1
        incr("cache.quarantine_hit")
        return record

    def store_quarantine(self, key: str, record: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        path = self._quarantine_path(key)
        try:
            with self._locked("quarantine"):
                path.parent.mkdir(parents=True, exist_ok=True)
                fsio.atomic_write_json(path, record, tag="cache.quarantine")
        except OSError:
            self.stats.errors += 1  # quarantine is best-effort too
            return
        self.stats.quarantine_puts += 1
        incr("cache.quarantine_put")

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Remove every entry; returns how many were evicted."""
        if not self.enabled or not self.root.exists():
            return 0
        removed = 0
        objects = self.root / "objects"
        if objects.exists():
            for shard in objects.iterdir():
                for entry in (shard.iterdir() if shard.is_dir() else ()):
                    self._rmtree(entry, "cache.clear")
                    removed += 1
            self._rmtree(objects, "cache.clear")
        tuning = self.root / "tuning"
        if tuning.exists():
            removed += sum(1 for p in tuning.rglob("*.json"))
            self._rmtree(tuning, "cache.clear")
        quarantine = self.root / "quarantine"
        if quarantine.exists():
            removed += sum(1 for p in quarantine.rglob("*.json"))
            self._rmtree(quarantine, "cache.clear")
        sessions = self.root / "sessions"
        if sessions.exists():
            removed += sum(1 for p in sessions.iterdir() if p.is_dir())
            self._rmtree(sessions, "cache.clear")
        self._rmtree(self.root / "tmp", "cache.clear")
        self._rmtree(self.root / "locks", "cache.clear")
        stats_path = self.root / "stats.json"
        try:
            stats_path.unlink()
        except FileNotFoundError:
            pass
        except OSError as exc:
            self._io_error(exc, "cache.clear")
        self.stats.evictions += removed
        return removed

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, Any]:
        """Evict least-recently-used compiled entries down to a budget.

        LRU order comes from each entry's ``meta.json`` mtime, refreshed
        on every disk hit by :meth:`lookup_so`.  Only ``objects/``
        entries are eligible: quarantine records are *never* evicted (a
        known-crashing candidate must stay known), and tuning records /
        sessions have their own lifecycles.  Returns a report dict.
        """
        budget = cache_max_bytes() if max_bytes is None else max_bytes
        report: Dict[str, Any] = {
            "budget_bytes": budget, "before_bytes": 0, "after_bytes": 0,
            "evicted": 0, "kept": 0,
        }
        if not self.enabled or budget is None or not self.root.exists():
            return report
        entries: List[Tuple[float, int, str]] = []  # (atime, bytes, key)
        for meta in (self.root / "objects").glob("*/*/meta.json"):
            entry = meta.parent
            try:
                stamp = meta.stat().st_mtime
                size = sum(f.stat().st_size for f in entry.iterdir()
                           if f.is_file())
            except OSError:
                stamp, size = 0.0, 0
            entries.append((stamp, size, entry.name))
        total = sum(size for _, size, _ in entries)
        report["before_bytes"] = total
        with self._locked("gc"):
            for stamp, size, key in sorted(entries):
                if total <= budget:
                    break
                self.evict(key)
                self.stats.gc_evictions += 1
                incr("cache.gc_eviction")
                total -= size
                report["evicted"] += 1
        report["after_bytes"] = total
        report["kept"] = len(entries) - report["evicted"]
        if report["evicted"]:
            event("cache.gc", evicted=report["evicted"],
                  before=report["before_bytes"], after=total, budget=budget)
        return report

    def maybe_gc(self) -> None:
        """Opportunistic quota enforcement after a publish (env budget)."""
        if cache_max_bytes() is not None:
            try:
                self.gc()
            except OSError as exc:
                self._io_error(exc, "cache.gc")

    def inventory(self) -> Dict[str, Any]:
        """Store-wide entry counts and byte totals (for ``cache stats``)."""
        budget = cache_max_bytes()
        info: Dict[str, Any] = {
            "root": str(self.root) if self.enabled else "(disabled)",
            "entries": 0, "bytes": 0, "tuning_records": 0, "quarantined": 0,
            "sessions": 0, "max_bytes": budget, "headroom_bytes": None,
        }
        if budget is not None:
            info["headroom_bytes"] = budget
        if not self.enabled or not self.root.exists():
            return info
        objects = self.root / "objects"
        if objects.exists():
            for meta in objects.glob("*/*/meta.json"):
                info["entries"] += 1
                info["bytes"] += sum(
                    f.stat().st_size for f in meta.parent.iterdir()
                    if f.is_file())
        tuning = self.root / "tuning"
        if tuning.exists():
            info["tuning_records"] = sum(1 for _ in tuning.rglob("*.json"))
        quarantine = self.root / "quarantine"
        if quarantine.exists():
            info["quarantined"] = sum(1 for _ in quarantine.rglob("*.json"))
        sessions = self.root / "sessions"
        if sessions.exists():
            info["sessions"] = sum(1 for p in sessions.iterdir()
                                   if p.is_dir())
        if budget is not None:
            info["headroom_bytes"] = budget - info["bytes"]
        return info

    # -- cumulative stats --------------------------------------------------

    def cumulative_stats(self) -> CacheStats:
        """Persisted totals across all processes, plus this process."""
        total = CacheStats()
        if self.enabled:
            try:
                total.merge(json.loads((self.root / "stats.json").read_text()))
            except (OSError, ValueError):
                pass
        total.merge(asdict(self.stats))
        return total

    def flush_stats(self) -> None:
        """Merge this process's counters into ``stats.json`` (idempotent)."""
        if not self.enabled or self._flushed:
            return
        live = asdict(self.stats)
        if not any(live.values()):
            return
        self._flushed = True
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.root / "stats.json"
            # read-merge-write must be serialized across processes, or a
            # concurrent tuner's counters are silently dropped
            with self._locked("stats"):
                merged = CacheStats()
                try:
                    merged.merge(json.loads(path.read_text()))
                except (OSError, ValueError):
                    pass
                merged.merge(live)
                fsio.atomic_write_json(path, asdict(merged),
                                       tag="cache.stats")
        except OSError as exc:
            # stats are best-effort; never fail the build over them —
            # but a swallowed failure is still counted and surfaced
            self._io_error(exc, "cache.stats")


_CACHE: Optional[KernelCache] = None


def get_cache() -> KernelCache:
    """The process-wide cache, bound to the current ``$REPRO_CACHE_DIR``."""
    global _CACHE
    if _CACHE is None:
        _CACHE = KernelCache(cache_root())
        atexit.register(_CACHE.flush_stats)
    return _CACHE


def reset_cache() -> None:
    """Drop the singleton so the next ``get_cache`` re-reads the env.

    Test hook: lets a test repoint ``REPRO_CACHE_DIR`` at a tmp dir.
    (The in-process ``.so`` dict in :mod:`repro.backend.compiler` is
    reset separately by its own test hook.)
    """
    global _CACHE
    if _CACHE is not None:
        _CACHE.flush_stats()
    _CACHE = None
