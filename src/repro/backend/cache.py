"""Persistent, content-addressed kernel cache.

Compiled shared objects (and tuning measurements) are stored on disk under
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-augem``), keyed by a content
hash that covers the sources, the compile flags, and the compiler
identity/version, so entries survive process restarts and are shared by
every benchmark/test/tuning run on the machine.

Design points:

- **two-level**: callers keep their own in-process dict (the hot layer);
  this module is the cross-process disk layer.
- **atomic publish**: entries are built in a scratch directory and moved
  into place with a single ``rename``, so a crashed or concurrent writer
  can never leave a half-written entry visible.
- **self-healing**: a corrupted or truncated entry fails closed — it is
  evicted and the caller rebuilds from source.
- **instrumented**: a :class:`CacheStats` counter object records hits,
  misses, evictions, and toolchain time; cumulative totals are merged
  into ``stats.json`` at interpreter exit and surfaced through
  ``python -m repro cache stats``.

Setting ``REPRO_CACHE_DIR`` to ``off`` / ``none`` / ``0`` / ``disabled``
turns the disk layer off entirely (hermetic test mode): all lookups miss,
all publishes are no-ops, and nothing outside the process temp dir is
touched.
"""

from __future__ import annotations

import atexit
import json
import os
import shutil
import tempfile
import uuid
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from ..obs import incr
from .locks import NULL_LOCK, LockTimeout, cache_lock

_DISABLED_VALUES = {"off", "none", "0", "disabled", "false"}

#: meta.json schema version; bump to invalidate every existing entry.
ENTRY_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss/evict counters plus toolchain-time accounting (seconds)."""

    mem_hits: int = 0        # served from the in-process dict
    disk_hits: int = 0       # served from the persistent store
    misses: int = 0          # nothing cached; toolchain invoked
    evictions: int = 0       # corrupt/cleared entries removed
    errors: int = 0          # load failures (each also evicts)
    puts: int = 0            # entries published to disk
    tuning_hits: int = 0     # persisted tuning measurements reused
    tuning_puts: int = 0     # tuning measurements persisted
    quarantine_hits: int = 0  # known-crashing candidates skipped
    quarantine_puts: int = 0  # candidates newly quarantined
    lock_timeouts: int = 0   # cache-lock waits that gave up (wrote unlocked)
    toolchain_invocations: int = 0
    toolchain_retries: int = 0  # transient-failure retry attempts
    build_seconds: float = 0.0  # wall time spent inside the toolchain

    @property
    def hits(self) -> int:
        return self.mem_hits + self.disk_hits

    def merge(self, other: Dict[str, Any]) -> None:
        for key, value in other.items():
            if hasattr(self, key) and isinstance(value, (int, float)):
                setattr(self, key, getattr(self, key) + value)

    def describe(self) -> str:
        return (
            f"hits={self.hits} (mem={self.mem_hits} disk={self.disk_hits}) "
            f"misses={self.misses} evictions={self.evictions} "
            f"errors={self.errors} puts={self.puts} "
            f"tuning hits={self.tuning_hits} puts={self.tuning_puts} "
            f"quarantine hits={self.quarantine_hits} "
            f"puts={self.quarantine_puts} "
            f"lock timeouts={self.lock_timeouts} "
            f"toolchain calls={self.toolchain_invocations} "
            f"retries={self.toolchain_retries} "
            f"build time={self.build_seconds:.2f}s"
        )


def cache_root() -> Optional[Path]:
    """Resolve the store root from the environment; ``None`` = disabled."""
    raw = os.environ.get("REPRO_CACHE_DIR")
    if raw is not None and raw.strip().lower() in _DISABLED_VALUES:
        return None
    if raw:
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "repro-augem"


class KernelCache:
    """The on-disk half of the two-level cache.

    Layout under the root::

        objects/<k0:2>/<key>/   one compiled entry: meta.json + *.so
        tuning/<k0:2>/<key>.json   one persisted tuning measurement
        quarantine/<k0:2>/<key>.json   one known-crashing candidate
        sessions/<id>/          durable tuning sessions (manifest + journal)
        locks/                  advisory lock files (see backend.locks)
        tmp/                    scratch for atomic publishes
        stats.json              cumulative counters across processes

    Mutations of shared JSON records run under an advisory file lock
    (:mod:`repro.backend.locks`) so concurrent tuners on one store never
    interleave read-modify-write sequences.  A lock that cannot be
    acquired within its budget degrades to an unlocked (still
    individually atomic) write — the cache never deadlocks a build.
    """

    def __init__(self, root: Optional[Path]) -> None:
        self.root = root
        self.stats = CacheStats()
        self._flushed = False

    @property
    def enabled(self) -> bool:
        return self.root is not None

    # -- paths ------------------------------------------------------------

    def _entry_dir(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / key

    def _tuning_path(self, key: str) -> Path:
        return self.root / "tuning" / key[:2] / f"{key}.json"

    def _quarantine_path(self, key: str) -> Path:
        return self.root / "quarantine" / key[:2] / f"{key}.json"

    def _scratch(self) -> Path:
        tmp = self.root / "tmp"
        tmp.mkdir(parents=True, exist_ok=True)
        return Path(tempfile.mkdtemp(dir=tmp))

    # -- inter-process locking --------------------------------------------

    @contextmanager
    def _locked(self, name: str = "cache"):
        """Best-effort advisory lock around one store mutation.

        A timed-out wait is counted and the mutation proceeds unlocked:
        every write below is individually atomic, so the worst case of
        losing the lock race is a lost *merge* (stats), never a corrupt
        record.
        """
        lock = cache_lock(self.root if self.enabled else None, name=name)
        try:
            lock.acquire()
        except LockTimeout:
            self.stats.lock_timeouts += 1
            incr("cache.lock_timeout")
            lock = NULL_LOCK
        try:
            yield
        finally:
            lock.release()

    # -- compiled-object entries ------------------------------------------

    def lookup_so(self, key: str) -> Optional[Path]:
        """Return the cached ``.so`` path for ``key``, or ``None``.

        Any malformed entry (missing meta, wrong version, missing or
        truncated object) is evicted so the caller rebuilds cleanly.
        """
        if not self.enabled:
            return None
        entry = self._entry_dir(key)
        meta_path = entry / "meta.json"
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("version") != ENTRY_VERSION:
                raise ValueError(f"entry version {meta.get('version')!r}")
            so_path = entry / meta["so"]
            size = so_path.stat().st_size
            if size != meta["so_size"] or size == 0:
                raise ValueError("shared object truncated")
            return so_path
        except (FileNotFoundError, NotADirectoryError):
            return None
        except Exception:
            self.stats.errors += 1
            self.evict(key)
            return None

    def publish_so(self, key: str, workdir: Path, so_name: str,
                   meta: Optional[Dict[str, Any]] = None) -> Optional[Path]:
        """Atomically move a finished build directory into the store.

        ``workdir`` must contain ``so_name``; sources/objects alongside it
        are kept for debuggability. Returns the published ``.so`` path (or
        ``None`` when the store is disabled / publish raced and lost).
        """
        if not self.enabled:
            return None
        entry = self._entry_dir(key)
        try:
            so_src = workdir / so_name
            record = dict(meta or {})
            record.update(version=ENTRY_VERSION, so=so_name,
                          so_size=so_src.stat().st_size)
            # write meta last inside the scratch dir, then one atomic rename
            (workdir / "meta.json").write_text(json.dumps(record, indent=2))
            entry.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            # store unusable (permissions, bad $REPRO_CACHE_DIR, disk
            # full): the build in ``workdir`` is still valid, just never
            # becomes shared — degrade instead of failing the build
            self.stats.errors += 1
            return None
        try:
            with self._locked("publish"):
                workdir.rename(entry)
        except OSError:
            # a concurrent builder published first; use theirs
            shutil.rmtree(workdir, ignore_errors=True)
            return self.lookup_so(key)
        self.stats.puts += 1
        incr("cache.put")
        return entry / so_name

    def evict(self, key: str) -> None:
        if not self.enabled:
            return
        entry = self._entry_dir(key)
        if entry.exists():
            shutil.rmtree(entry, ignore_errors=True)
            self.stats.evictions += 1
            incr("cache.eviction")

    # -- tuning measurements ----------------------------------------------

    def load_tuning(self, key: str) -> Optional[Dict[str, Any]]:
        if not self.enabled:
            return None
        try:
            record = json.loads(self._tuning_path(key).read_text())
        except (FileNotFoundError, NotADirectoryError):
            return None
        except Exception:
            self.stats.errors += 1
            try:
                self._tuning_path(key).unlink()
                self.stats.evictions += 1
            except OSError:
                pass
            return None
        self.stats.tuning_hits += 1
        incr("cache.tuning_hit")
        return record

    def store_tuning(self, key: str, record: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        path = self._tuning_path(key)
        try:
            with self._locked("tuning"):
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
                tmp.write_text(json.dumps(record, indent=2))
                os.replace(tmp, path)
        except OSError:
            self.stats.errors += 1  # measurements are best-effort too
            return
        self.stats.tuning_puts += 1
        incr("cache.tuning_put")

    # -- candidate quarantine ----------------------------------------------
    #
    # A candidate that crashed or hung in the isolated worker is recorded
    # here (keyed like the tuning measurements, by the generated kernel's
    # content hash) so a re-tuning run skips it without re-executing the
    # crash.  ``clear()`` resets the quarantine along with everything else.

    def load_quarantine(self, key: str) -> Optional[Dict[str, Any]]:
        if not self.enabled:
            return None
        try:
            record = json.loads(self._quarantine_path(key).read_text())
        except (FileNotFoundError, NotADirectoryError):
            return None
        except Exception:
            self.stats.errors += 1
            try:
                self._quarantine_path(key).unlink()
                self.stats.evictions += 1
            except OSError:
                pass
            return None
        self.stats.quarantine_hits += 1
        incr("cache.quarantine_hit")
        return record

    def store_quarantine(self, key: str, record: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        path = self._quarantine_path(key)
        try:
            with self._locked("quarantine"):
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
                tmp.write_text(json.dumps(record, indent=2))
                os.replace(tmp, path)
        except OSError:
            self.stats.errors += 1  # quarantine is best-effort too
            return
        self.stats.quarantine_puts += 1
        incr("cache.quarantine_put")

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Remove every entry; returns how many were evicted."""
        if not self.enabled or not self.root.exists():
            return 0
        removed = 0
        objects = self.root / "objects"
        if objects.exists():
            for shard in objects.iterdir():
                for entry in (shard.iterdir() if shard.is_dir() else ()):
                    shutil.rmtree(entry, ignore_errors=True)
                    removed += 1
            shutil.rmtree(objects, ignore_errors=True)
        tuning = self.root / "tuning"
        if tuning.exists():
            removed += sum(1 for p in tuning.rglob("*.json"))
            shutil.rmtree(tuning, ignore_errors=True)
        quarantine = self.root / "quarantine"
        if quarantine.exists():
            removed += sum(1 for p in quarantine.rglob("*.json"))
            shutil.rmtree(quarantine, ignore_errors=True)
        sessions = self.root / "sessions"
        if sessions.exists():
            removed += sum(1 for p in sessions.iterdir() if p.is_dir())
            shutil.rmtree(sessions, ignore_errors=True)
        shutil.rmtree(self.root / "tmp", ignore_errors=True)
        shutil.rmtree(self.root / "locks", ignore_errors=True)
        stats_path = self.root / "stats.json"
        if stats_path.exists():
            stats_path.unlink()
        self.stats.evictions += removed
        return removed

    def inventory(self) -> Dict[str, Any]:
        """Store-wide entry counts and byte totals (for ``cache stats``)."""
        info: Dict[str, Any] = {
            "root": str(self.root) if self.enabled else "(disabled)",
            "entries": 0, "bytes": 0, "tuning_records": 0, "quarantined": 0,
            "sessions": 0,
        }
        if not self.enabled or not self.root.exists():
            return info
        objects = self.root / "objects"
        if objects.exists():
            for meta in objects.glob("*/*/meta.json"):
                info["entries"] += 1
                info["bytes"] += sum(
                    f.stat().st_size for f in meta.parent.iterdir()
                    if f.is_file())
        tuning = self.root / "tuning"
        if tuning.exists():
            info["tuning_records"] = sum(1 for _ in tuning.rglob("*.json"))
        quarantine = self.root / "quarantine"
        if quarantine.exists():
            info["quarantined"] = sum(1 for _ in quarantine.rglob("*.json"))
        sessions = self.root / "sessions"
        if sessions.exists():
            info["sessions"] = sum(1 for p in sessions.iterdir()
                                   if p.is_dir())
        return info

    # -- cumulative stats --------------------------------------------------

    def cumulative_stats(self) -> CacheStats:
        """Persisted totals across all processes, plus this process."""
        total = CacheStats()
        if self.enabled:
            try:
                total.merge(json.loads((self.root / "stats.json").read_text()))
            except (OSError, ValueError):
                pass
        total.merge(asdict(self.stats))
        return total

    def flush_stats(self) -> None:
        """Merge this process's counters into ``stats.json`` (idempotent)."""
        if not self.enabled or self._flushed:
            return
        live = asdict(self.stats)
        if not any(live.values()):
            return
        self._flushed = True
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.root / "stats.json"
            # read-merge-write must be serialized across processes, or a
            # concurrent tuner's counters are silently dropped
            with self._locked("stats"):
                merged = CacheStats()
                try:
                    merged.merge(json.loads(path.read_text()))
                except (OSError, ValueError):
                    pass
                merged.merge(live)
                tmp = path.with_name(f".stats.{uuid.uuid4().hex}.tmp")
                tmp.write_text(json.dumps(asdict(merged), indent=2))
                os.replace(tmp, path)
        except OSError:
            pass  # stats are best-effort; never fail the build over them


_CACHE: Optional[KernelCache] = None


def get_cache() -> KernelCache:
    """The process-wide cache, bound to the current ``$REPRO_CACHE_DIR``."""
    global _CACHE
    if _CACHE is None:
        _CACHE = KernelCache(cache_root())
        atexit.register(_CACHE.flush_stats)
    return _CACHE


def reset_cache() -> None:
    """Drop the singleton so the next ``get_cache`` re-reads the env.

    Test hook: lets a test repoint ``REPRO_CACHE_DIR`` at a tmp dir.
    (The in-process ``.so`` dict in :mod:`repro.backend.compiler` is
    reset separately by its own test hook.)
    """
    global _CACHE
    if _CACHE is not None:
        _CACHE.flush_stats()
    _CACHE = None
