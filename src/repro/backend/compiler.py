"""Native toolchain driver: assemble/compile sources into shared objects.

Used for the generated GAS kernels (assembled with ``gcc -c``) and the C
baseline kernels (the "ATLAS-proxy" path: C + general-purpose compiler).
Artifacts are cached in a per-process temp directory keyed by content hash,
so repeated benchmark runs don't re-invoke the toolchain.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence


class ToolchainError(RuntimeError):
    """Compilation or assembly failed; message carries the tool output."""


def find_cc() -> str:
    """Locate a C compiler (honors $CC)."""
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for cand in ("gcc", "cc", "clang"):
        if shutil.which(cand):
            return cand
    raise ToolchainError("no C compiler found (set $CC)")


def have_native_toolchain() -> bool:
    try:
        find_cc()
        return True
    except ToolchainError:
        return False


_CACHE_DIR: Optional[Path] = None


def _cache_dir() -> Path:
    global _CACHE_DIR
    if _CACHE_DIR is None:
        _CACHE_DIR = Path(tempfile.mkdtemp(prefix="repro-augem-"))
    return _CACHE_DIR


def _run(cmd: Sequence[str]) -> None:
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise ToolchainError(
            f"command failed: {' '.join(cmd)}\n{proc.stdout}\n{proc.stderr}"
        )


@dataclass
class SharedObject:
    """A compiled shared object plus its ctypes handle."""

    path: Path
    lib: ctypes.CDLL

    def symbol(self, name: str):
        return getattr(self.lib, name)


_SO_CACHE: Dict[str, SharedObject] = {}


def build_shared(sources: Dict[str, str], extra_flags: Sequence[str] = (),
                 tag: str = "kernel") -> SharedObject:
    """Compile ``sources`` (filename -> content) into one shared object.

    ``.S`` files are assembled, ``.c`` files compiled; everything is linked
    with ``-shared``.  Results are content-hash cached.
    """
    cc = find_cc()
    key_src = "\x00".join(f"{n}\x01{s}" for n, s in sorted(sources.items()))
    key = hashlib.sha256(
        (key_src + "\x02" + " ".join(extra_flags)).encode()
    ).hexdigest()[:24]
    if key in _SO_CACHE:
        return _SO_CACHE[key]

    workdir = _cache_dir() / f"{tag}-{key}"
    workdir.mkdir(parents=True, exist_ok=True)
    objects: List[str] = []
    for fname, content in sources.items():
        src_path = workdir / fname
        src_path.write_text(content)
        obj_path = workdir / (src_path.stem + ".o")
        flags = ["-O2", "-fPIC"]
        if fname.endswith(".c"):
            flags += list(extra_flags)
        _run([cc, "-c", str(src_path), "-o", str(obj_path)] + flags)
        objects.append(str(obj_path))
    so_path = workdir / f"lib{tag}.so"
    _run([cc, "-shared", "-o", str(so_path)] + objects)
    lib = ctypes.CDLL(str(so_path))
    so = SharedObject(path=so_path, lib=lib)
    _SO_CACHE[key] = so
    return so


def assemble_kernel(asm_text: str, tag: str = "kernel") -> SharedObject:
    """Assemble one GAS kernel into a loadable shared object."""
    return build_shared({f"{tag}.S": asm_text}, tag=tag)
