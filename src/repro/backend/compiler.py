"""Native toolchain driver: assemble/compile sources into shared objects.

Used for the generated GAS kernels (assembled with ``gcc -c``) and the C
baseline kernels (the "ATLAS-proxy" path: C + general-purpose compiler).

Artifacts go through a two-level, content-addressed cache: an in-process
dict over the persistent on-disk store of :mod:`repro.backend.cache`
(``$REPRO_CACHE_DIR``, default ``~/.cache/repro-augem``). The key covers
the sources, the flags, and the compiler identity/version, so a cached
``.so`` is reused across processes but never across toolchains. When the
store is disabled (``REPRO_CACHE_DIR=off``) builds land in a process
scratch directory that is removed at interpreter exit.
"""

from __future__ import annotations

import atexit
import ctypes
import hashlib
import os
import random
import shutil
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..obs import incr, span
from .cache import get_cache
from .faults import take_fault


class ToolchainError(RuntimeError):
    """Compilation or assembly failed; message carries the tool output."""


class ToolchainUnavailable(ToolchainError):
    """No usable compiler/assembler on this host.

    A distinct subclass so callers (the tuner, test skip markers, the
    bench harness) can degrade gracefully — skip the native path with a
    clear message — instead of treating it like a broken build.
    """


def find_cc() -> str:
    """Locate a C compiler (honors $CC)."""
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for cand in ("gcc", "cc", "clang"):
        if shutil.which(cand):
            return cand
    raise ToolchainUnavailable(
        "no C compiler/assembler found on PATH (set $CC); native kernel "
        "execution is unavailable on this host")


def have_native_toolchain() -> bool:
    try:
        find_cc()
        return True
    except ToolchainError:
        return False


_CC_FINGERPRINTS: Dict[str, str] = {}


def cc_fingerprint(cc: str) -> str:
    """Compiler identity for the cache key: resolved path + version line.

    Artifacts built by one toolchain must never be served to another, so
    this participates in every content hash.
    """
    cached = _CC_FINGERPRINTS.get(cc)
    if cached is not None:
        return cached
    path = shutil.which(cc) or cc
    try:
        proc = subprocess.run([cc, "--version"], capture_output=True,
                              text=True, timeout=10)
        version = (proc.stdout or proc.stderr).splitlines()[0].strip()
    except (OSError, subprocess.TimeoutExpired, IndexError):
        version = "unknown"
    fp = f"{path}\x1f{version}"
    _CC_FINGERPRINTS[cc] = fp
    return fp


_SCRATCH_DIR: Optional[Path] = None


def _scratch_dir() -> Path:
    """Process-local build scratch, removed at interpreter exit.

    (The pre-cache implementation leaked one ``repro-augem-*`` temp
    directory per process; cleanup is now registered the moment the
    directory is created.)
    """
    global _SCRATCH_DIR
    if _SCRATCH_DIR is None:
        _SCRATCH_DIR = Path(tempfile.mkdtemp(prefix="repro-augem-"))
        atexit.register(shutil.rmtree, str(_SCRATCH_DIR),
                        ignore_errors=True)
    return _SCRATCH_DIR


#: per-invocation wall-clock ceiling (seconds); $REPRO_TOOLCHAIN_TIMEOUT
_DEFAULT_TOOL_TIMEOUT = 120.0
#: total attempts per invocation for transient failures; $REPRO_TOOLCHAIN_RETRIES
_DEFAULT_TOOL_ATTEMPTS = 3
_RETRY_BACKOFF = 0.05  # seconds; doubles per retry, capped at 1s


def _tool_limits() -> tuple:
    try:
        timeout = float(os.environ.get("REPRO_TOOLCHAIN_TIMEOUT",
                                       _DEFAULT_TOOL_TIMEOUT))
    except ValueError:
        timeout = _DEFAULT_TOOL_TIMEOUT
    try:
        attempts = int(os.environ.get("REPRO_TOOLCHAIN_RETRIES",
                                      _DEFAULT_TOOL_ATTEMPTS))
    except ValueError:
        attempts = _DEFAULT_TOOL_ATTEMPTS
    return max(timeout, 1.0), max(attempts, 1)


def _account_build(stats, seconds: float) -> None:
    """Attribute toolchain wall time to the cache stats and the trace."""
    stats.build_seconds += seconds
    incr("toolchain.build_seconds", seconds)


def _run(cmd: Sequence[str], tag: str = "") -> None:
    """Run one toolchain command with timeout and bounded retry.

    Transient failures (a hung or OOM-killed tool, exec errors, injected
    faults) are retried with exponential backoff; a *diagnostic* failure
    (nonzero exit with compiler output — a genuinely bad source) is
    raised immediately, since retrying a deterministic error only wastes
    the attempt budget.
    """
    stats = get_cache().stats
    timeout, attempts = _tool_limits()
    last = "unknown transient failure"
    for attempt in range(attempts):
        if attempt:
            stats.toolchain_retries += 1
            incr("toolchain.retries")
            # jitter the exponential backoff so N tuners that hit the same
            # transient failure (an OOM-killed assembler, a busy NFS
            # server) do not retry in lockstep and re-collide
            delay = min(_RETRY_BACKOFF * (2 ** (attempt - 1)), 1.0)
            time.sleep(delay * (0.5 + random.random()))
        if take_fault("toolchain", tag=tag):
            last = f"injected toolchain fault (tag {tag!r})"
            continue
        stats.toolchain_invocations += 1
        incr("toolchain.invocations")
        t0 = time.perf_counter()
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=timeout)
        except subprocess.TimeoutExpired:
            _account_build(stats, time.perf_counter() - t0)
            last = f"timed out after {timeout:g}s"
            continue
        except OSError as exc:
            _account_build(stats, time.perf_counter() - t0)
            last = f"{type(exc).__name__}: {exc}"
            continue
        _account_build(stats, time.perf_counter() - t0)
        if proc.returncode == 0:
            return
        raise ToolchainError(
            f"command failed: {' '.join(cmd)}\n{proc.stdout}\n{proc.stderr}"
        )
    raise ToolchainError(
        f"command failed after {attempts} attempts: {' '.join(cmd)} "
        f"(last error: {last})")


@dataclass
class SharedObject:
    """A compiled shared object plus its ctypes handle."""

    path: Path
    lib: ctypes.CDLL

    def symbol(self, name: str):
        return getattr(self.lib, name)


_SO_CACHE: Dict[str, SharedObject] = {}
_SO_LOCK = threading.Lock()  # parallel tuning builds from worker threads


def _content_key(cc: str, sources: Dict[str, str],
                 extra_flags: Sequence[str]) -> str:
    key_src = "\x00".join(f"{n}\x01{s}" for n, s in sorted(sources.items()))
    return hashlib.sha256(
        (key_src + "\x02" + " ".join(extra_flags)
         + "\x03" + cc_fingerprint(cc)).encode()
    ).hexdigest()[:24]


def _compile_into(cc: str, workdir: Path, sources: Dict[str, str],
                  extra_flags: Sequence[str], tag: str) -> str:
    """Run the toolchain in ``workdir``; returns the ``.so`` file name."""
    objects: List[str] = []
    for fname, content in sources.items():
        src_path = workdir / fname
        src_path.write_text(content)
        obj_path = workdir / (src_path.stem + ".o")
        flags = ["-O2", "-fPIC"]
        if fname.endswith(".c"):
            flags += list(extra_flags)
        _run([cc, "-c", str(src_path), "-o", str(obj_path)] + flags,
             tag=tag)
        objects.append(str(obj_path))
    so_name = f"lib{tag}.so"
    _run([cc, "-shared", "-o", str(workdir / so_name)] + objects, tag=tag)
    return so_name


def build_shared(sources: Dict[str, str], extra_flags: Sequence[str] = (),
                 tag: str = "kernel", force: bool = False) -> SharedObject:
    """Compile ``sources`` (filename -> content) into one shared object.

    ``.S`` files are assembled, ``.c`` files compiled; everything is linked
    with ``-shared``. Lookup order: in-process dict, persistent store,
    toolchain. ``force=True`` evicts any cached entry first (recovery path
    for a cached object that loads but is otherwise unusable).
    """
    cc = find_cc()
    cache = get_cache()
    key = _content_key(cc, sources, extra_flags)

    with _SO_LOCK:
        if force:
            _SO_CACHE.pop(key, None)
            cache.evict(key)
        elif key in _SO_CACHE:
            cache.stats.mem_hits += 1
            incr("cache.mem_hit")
            return _SO_CACHE[key]

    so = None if force else _load_from_store(cache, key)
    if so is None:
        cache.stats.misses += 1
        incr("cache.miss")
        with span("toolchain.build", tag=tag, key=key):
            so = _build_and_publish(cc, cache, key, sources, extra_flags,
                                    tag)
    with _SO_LOCK:
        # a concurrent thread may have raced us; first one in wins so every
        # caller shares one CDLL handle per key
        existing = _SO_CACHE.setdefault(key, so)
    return existing


def _load_from_store(cache, key: str) -> Optional[SharedObject]:
    so_path = cache.lookup_so(key)
    if so_path is None:
        return None
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError:
        # corrupt enough to pass the size check but not dlopen
        cache.stats.errors += 1
        cache.evict(key)
        return None
    cache.stats.disk_hits += 1
    incr("cache.disk_hit")
    return SharedObject(path=so_path, lib=lib)


def _build_and_publish(cc: str, cache, key: str, sources: Dict[str, str],
                       extra_flags: Sequence[str],
                       tag: str) -> SharedObject:
    store_workdir: Optional[Path] = None
    if cache.enabled:
        try:
            # build inside the store so the publish rename below stays on
            # one filesystem (a /tmp scratch could sit on another device)
            store_workdir = cache._scratch()
        except OSError:
            # store root unusable (bad $REPRO_CACHE_DIR, permissions):
            # fall back to an unpublished process-scratch build
            cache.stats.errors += 1
    workdir = store_workdir
    if workdir is None:
        workdir = _scratch_dir() / f"{tag}-{key}"
        workdir.mkdir(parents=True, exist_ok=True)
    so_name = _compile_into(cc, workdir, sources, extra_flags, tag)
    so_path = workdir / so_name
    # dlopen from the (unique) scratch path *before* publishing: glibc
    # caches handles by pathname, so loading the store path here would
    # alias a stale mapping if this key was ever evicted and rebuilt
    # within one process. The mapping survives the rename below.
    lib = ctypes.CDLL(str(so_path))
    if store_workdir is not None:
        published = cache.publish_so(
            key, workdir, so_name,
            meta={"tag": tag, "flags": list(extra_flags),
                  "sources": sorted(sources)})
        if published is not None:
            so_path = published
    return SharedObject(path=so_path, lib=lib)


def assemble_kernel(asm_text: str, tag: str = "kernel",
                    force: bool = False) -> SharedObject:
    """Assemble one GAS kernel into a loadable shared object."""
    return build_shared({f"{tag}.S": asm_text}, tag=tag, force=force)


def reset_so_cache() -> None:
    """Test hook: drop every in-process handle (disk store untouched)."""
    with _SO_LOCK:
        _SO_CACHE.clear()
