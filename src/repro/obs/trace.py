"""Structured tracing: spans + events + counters serialized to JSONL.

The tracer is the pipeline's flight recorder.  When enabled it captures

- **spans** — timed, nestable regions (``with span("pipeline.c_opt"):``)
  with start offset, duration, and free-form attributes;
- **events** — point-in-time records (one tuning trial, one sandbox
  verdict) attached to the enclosing span;
- **counters** — cheap accumulators (cache hits, toolchain retries)
  flushed as one record per counter when the trace closes.

Everything lands in one JSON-Lines file: one self-describing JSON object
per line, so traces are greppable, diffable, and parseable with nothing
but the standard library (``repro.obs.report`` renders them).

Tracing is **off by default** and designed to cost one global read plus a
falsy check per call site when disabled — nothing in a timed hot loop is
instrumented, so benchmarks are unaffected (see docs/observability.md).
Enable it with the ``REPRO_TRACE=<path>`` environment variable, the
``--trace <path>`` CLI flag, or programmatically::

    from repro import obs
    obs.start_trace("run.jsonl")
    ...
    obs.stop_trace()
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
import time
from typing import Any, Dict, Optional, TextIO

#: ``REPRO_TRACE`` values that mean "disabled" (mirrors REPRO_CACHE_DIR)
_OFF_VALUES = {"", "0", "off", "none", "false", "disabled"}

#: trace format version, stamped in the header record
TRACE_VERSION = 1


def _clean(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe attribute dict (drop Nones, stringify exotic values)."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if value is None:
            continue
        if isinstance(value, (str, int, float, bool)):
            out[key] = value
        else:
            out[key] = str(value)
    return out


class Span:
    """One timed region; use as a context manager.

    Attributes may be attached at creation or discovered mid-flight with
    :meth:`set`.  The record is written once, at exit, so a span carries
    its full duration and final attribute set.
    """

    __slots__ = ("_tracer", "name", "attrs", "id", "parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = _clean(attrs)
        self.id: Optional[int] = None
        self.parent: Optional[int] = None
        self._t0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(_clean(attrs))
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.id = tracer._next_id()
        stack = tracer._stack()
        self.parent = stack[-1] if stack else None
        stack.append(self.id)
        self._t0 = tracer._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        dur = tracer._now() - self._t0
        stack = tracer._stack()
        if stack and stack[-1] == self.id:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}"[:200])
        record = {"ev": "span", "name": self.name, "id": self.id,
                  "t0": round(self._t0, 6), "dur": round(dur, 6)}
        if self.parent is not None:
            record["parent"] = self.parent
        if self.attrs:
            record["attrs"] = self.attrs
        tracer._write(record)
        return False  # never swallow exceptions


class _NullSpan:
    """The disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Serializes spans/events/counters to one JSONL sink (thread-safe)."""

    def __init__(self, sink: TextIO, path: Optional[str] = None,
                 clock=time.perf_counter) -> None:
        self._sink = sink
        self.path = path
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = iter(range(1, 1 << 62)).__next__
        self._counters: Dict[str, float] = {}
        self.closed = False
        self._write({"ev": "start", "version": TRACE_VERSION,
                     "pid": os.getpid(), "unix_time": time.time()})

    # -- internals ---------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _next_id(self) -> int:
        with self._lock:
            return self._ids()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self.closed:
                return
            self._sink.write(line + "\n")

    # -- recording API -----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        record: Dict[str, Any] = {"ev": "event", "name": name,
                                  "t": round(self._now(), 6)}
        stack = self._stack()
        if stack:
            record["span"] = stack[-1]
        clean = _clean(attrs)
        if clean:
            record["attrs"] = clean
        self._write(record)

    def incr(self, name: str, n: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def close(self) -> None:
        """Flush counters, emit the end record, and close the sink."""
        if self.closed:
            return
        with self._lock:
            counters = sorted(self._counters.items())
        for name, value in counters:
            self._write({"ev": "counter", "name": name,
                         "value": round(value, 6)})
        self._write({"ev": "end", "t": round(self._now(), 6)})
        with self._lock:
            self.closed = True
            if self._sink not in (sys.stdout, sys.stderr):
                try:
                    self._sink.close()
                except OSError:
                    pass


# ---------------------------------------------------------------------------
# Module-level switchboard: one optional active tracer per process.
# ---------------------------------------------------------------------------

_TRACER: Optional[Tracer] = None


def enabled() -> bool:
    """Whether a trace is being recorded right now."""
    return _TRACER is not None


def current_tracer() -> Optional[Tracer]:
    return _TRACER


def start_trace(path: str) -> Tracer:
    """Begin recording to ``path`` (``-`` = stderr); replaces any active
    trace.  Registered for atexit flush, so a crashed run still leaves a
    parseable (if truncated) artifact."""
    global _TRACER
    stop_trace()
    if path == "-":
        sink: TextIO = sys.stderr
        tracer = Tracer(sink, path=None)
    else:
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        sink = open(path, "w", buffering=1)  # line-buffered: crash-durable
        tracer = Tracer(sink, path=path)
    _TRACER = tracer
    return tracer


def stop_trace() -> None:
    """Close the active trace (no-op when none is recording)."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    if tracer is not None:
        tracer.close()


def init_from_env(environ=os.environ) -> Optional[Tracer]:
    """Honor ``REPRO_TRACE=<path>`` (called once on package import)."""
    raw = environ.get("REPRO_TRACE")
    if raw is None or raw.strip().lower() in _OFF_VALUES:
        return None
    return start_trace(raw.strip())


atexit.register(stop_trace)


# -- the call-site API (one global read when disabled) -----------------------

def span(name: str, **attrs: Any):
    """A timed region; no-op context manager when tracing is disabled."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """A point-in-time record; dropped when tracing is disabled."""
    tracer = _TRACER
    if tracer is not None:
        tracer.event(name, **attrs)


def incr(name: str, n: float = 1) -> None:
    """Bump a named counter; dropped when tracing is disabled."""
    tracer = _TRACER
    if tracer is not None:
        tracer.incr(name, n)


def progress(message: str, stream: Optional[TextIO] = None) -> None:
    """Verbose-mode progress line: stderr (never stdout) + trace event.

    This replaces the tuner's historical raw ``print`` — machine-readable
    output (reports, generated assembly) owns stdout; human progress
    narration belongs on stderr, and is mirrored into the trace when one
    is recording.
    """
    out = stream if stream is not None else sys.stderr
    out.write(message + "\n")
    tracer = _TRACER
    if tracer is not None:
        tracer.event("progress", message=message)
