"""Pipeline observability: structured tracing, counters, perf baselines.

Three pieces, all zero-dependency and off by default:

- :mod:`repro.obs.trace` — spans + events + counters serialized to JSONL
  (``REPRO_TRACE=<path>``, ``--trace <path>``, or :func:`start_trace`);
- :mod:`repro.obs.report` — renders a recorded trace
  (``python -m repro trace report <file>``);
- :mod:`repro.obs.baseline` — records/checks per-kernel GFLOPS baselines
  (``python -m repro bench baseline {record,check}``; check exits 3 on
  a >15% regression).

The call-site API is re-exported here so instrumented modules write
``from ..obs import span, event, incr``.  When no trace is active every
call is a single global read — safe to leave in production paths (hot
timed loops are deliberately not instrumented at all).
"""

from .trace import (
    NULL_SPAN,
    Span,
    Tracer,
    current_tracer,
    enabled,
    event,
    incr,
    init_from_env,
    progress,
    span,
    start_trace,
    stop_trace,
)

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_tracer",
    "enabled",
    "event",
    "incr",
    "init_from_env",
    "progress",
    "span",
    "start_trace",
    "stop_trace",
]

# Honor REPRO_TRACE the moment observability is first imported, so any
# entry point (CLI, pytest, a bare script) records without extra wiring.
init_from_env()
