"""Render a recorded JSONL trace as a human-readable report.

``python -m repro trace report run.jsonl`` prints three sections:

- **per-stage timing** — every span name aggregated: call count, total /
  mean / max wall time (the four pipeline stages, transforms, toolchain
  invocations, sandbox trials...);
- **per-kernel trial summary** — the tuner's ``tune.trial`` events rolled
  up by kernel: trial counts by category, cache-replay and quarantine
  dispositions, and the best GFLOPS observed;
- **dispatch** — the hardened-runtime rollup: ISA probe and admission
  verdicts per tier (``dispatch.probe`` / ``dispatch.admit`` spans) plus
  the ``dispatch.*`` counters (admissions, demotions, fallback serves,
  argument-guard coercions/rejections);
- **serve** — the BLAS service rollup: ``serve.request`` spans grouped
  by routine and outcome, the peak admission-queue depth observed, and
  the ``serve.*`` / ``client.*`` counters (requests, rejections, drains,
  client fallbacks);
- **integrity** — the ABFT verification rollup: mismatch events grouped
  by routine family, quarantine events with the kernel they retired,
  and the ``integrity.*`` counters (checks, mismatches, retries,
  reference recomputes, quarantines, overhead);
- **counters** — the accumulated cache/toolchain counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class TraceError(ValueError):
    """The trace file is not valid JSONL (or not a repro trace)."""


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse one record per line; raise :class:`TraceError` on bad lines."""
    records: List[Dict[str, Any]] = []
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(
                f"{path}:{lineno}: invalid JSON ({exc.msg})") from None
        if not isinstance(record, dict) or "ev" not in record:
            raise TraceError(
                f"{path}:{lineno}: not a trace record (missing 'ev')")
        records.append(record)
    if not records:
        raise TraceError(f"{path}: empty trace")
    return records


@dataclass
class _StageAgg:
    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def add(self, dur: float) -> None:
        self.count += 1
        self.total += dur
        self.max = max(self.max, dur)


@dataclass
class _KernelAgg:
    trials: int = 0
    categories: Dict[str, int] = field(default_factory=dict)
    cached: int = 0
    best_gflops: float = -1.0
    best_candidate: str = ""

    def add(self, attrs: Dict[str, Any]) -> None:
        self.trials += 1
        category = str(attrs.get("category", "ok"))
        self.categories[category] = self.categories.get(category, 0) + 1
        if attrs.get("cached"):
            self.cached += 1
        gflops = attrs.get("gflops")
        if isinstance(gflops, (int, float)) and gflops > self.best_gflops:
            self.best_gflops = float(gflops)
            self.best_candidate = str(attrs.get("candidate", ""))


def render_report(records: List[Dict[str, Any]]) -> str:
    """The text report (see module docstring) for parsed trace records."""
    stages: Dict[str, _StageAgg] = {}
    kernels: Dict[str, _KernelAgg] = {}
    counters: Dict[str, float] = {}
    events = 0
    probes: Dict[str, Dict[str, int]] = {}   # tier -> verdict -> count
    admits: Dict[str, Dict[str, int]] = {}   # family/tier -> verdict -> n
    serve_reqs: Dict[str, Dict[str, int]] = {}  # routine -> status -> n
    serve_queue_peak = -1
    integrity_mismatches: Dict[str, int] = {}   # family -> count
    integrity_quarantines: List[str] = []       # "family/kernel" labels
    for record in records:
        ev = record.get("ev")
        attrs = record.get("attrs", {}) or {}
        if ev == "span":
            name = record.get("name", "?")
            agg = stages.setdefault(name, _StageAgg())
            agg.add(float(record.get("dur", 0.0)))
            if name == "dispatch.probe":
                verdicts = probes.setdefault(str(attrs.get("tier", "?")), {})
                v = str(attrs.get("verdict", "?"))
                verdicts[v] = verdicts.get(v, 0) + 1
            elif name == "dispatch.admit":
                key = (f"{attrs.get('family', '?')}@"
                       f"{attrs.get('tier', '?')}")
                verdicts = admits.setdefault(key, {})
                v = str(attrs.get("verdict", "?"))
                verdicts[v] = verdicts.get(v, 0) + 1
            elif name == "serve.request":
                statuses = serve_reqs.setdefault(
                    str(attrs.get("routine", "?")), {})
                s = str(attrs.get("status", "?"))
                statuses[s] = statuses.get(s, 0) + 1
                depth = attrs.get("queue_depth")
                if isinstance(depth, (int, float)):
                    serve_queue_peak = max(serve_queue_peak, int(depth))
        elif ev == "event":
            events += 1
            name = record.get("name")
            if name == "tune.trial":
                key = str(attrs.get("kernel", "?"))
                kernels.setdefault(key, _KernelAgg()).add(attrs)
            elif name == "integrity.mismatch":
                family = str(attrs.get("family", "?"))
                integrity_mismatches[family] = \
                    integrity_mismatches.get(family, 0) + 1
            elif name == "integrity.quarantine":
                integrity_quarantines.append(
                    f"{attrs.get('family', '?')}/"
                    f"{attrs.get('kernel', '?')}")
        elif ev == "counter":
            counters[str(record.get("name", "?"))] = float(
                record.get("value", 0.0))

    lines: List[str] = []
    n_spans = sum(a.count for a in stages.values())
    lines.append(f"trace: {n_spans} spans, {events} events, "
                 f"{len(counters)} counters")

    lines.append("")
    lines.append("-- per-stage timing --")
    if stages:
        width = max(len(n) for n in stages)
        lines.append(f"{'span':<{width}}  {'count':>6}  {'total s':>9}  "
                     f"{'mean ms':>9}  {'max ms':>9}")
        for name in sorted(stages, key=lambda n: -stages[n].total):
            agg = stages[name]
            lines.append(
                f"{name:<{width}}  {agg.count:>6}  {agg.total:>9.4f}  "
                f"{1e3 * agg.total / agg.count:>9.3f}  "
                f"{1e3 * agg.max:>9.3f}")
    else:
        lines.append("(no spans recorded)")

    lines.append("")
    lines.append("-- per-kernel trials --")
    if kernels:
        for name in sorted(kernels):
            agg = kernels[name]
            cats = " ".join(f"{c}={agg.categories[c]}"
                            for c in sorted(agg.categories))
            lines.append(f"{name}: {agg.trials} trials ({cats}), "
                         f"{agg.cached} cached")
            if agg.best_gflops >= 0:
                lines.append(f"  best {agg.best_gflops:.2f} GFLOPS"
                             + (f"  {agg.best_candidate}"
                                if agg.best_candidate else ""))
    else:
        lines.append("(no tuning trials recorded)")

    dispatch_counters = {n: v for n, v in counters.items()
                         if n.startswith("dispatch.")}
    if probes or admits or dispatch_counters:
        lines.append("")
        lines.append("-- dispatch --")
        for tier in sorted(probes):
            verdicts = " ".join(f"{v}={probes[tier][v]}"
                                for v in sorted(probes[tier]))
            lines.append(f"probe {tier}: {verdicts}")
        for key in sorted(admits):
            verdicts = " ".join(f"{v}={admits[key][v]}"
                                for v in sorted(admits[key]))
            lines.append(f"admit {key}: {verdicts}")
        if dispatch_counters:
            shown = []
            for name in sorted(dispatch_counters):
                value = dispatch_counters[name]
                shown.append(f"{name.removeprefix('dispatch.')}="
                             f"{int(value) if value == int(value) else value}")
            lines.append("counters: " + " ".join(shown))

    serve_counters = {n: v for n, v in counters.items()
                      if n.startswith(("serve.", "client."))}
    if serve_reqs or serve_counters:
        lines.append("")
        lines.append("-- serve --")
        for routine in sorted(serve_reqs):
            statuses = " ".join(f"{s}={serve_reqs[routine][s]}"
                                for s in sorted(serve_reqs[routine]))
            lines.append(f"request {routine}: {statuses}")
        if serve_queue_peak >= 0:
            lines.append(f"queue depth peak: {serve_queue_peak}")
        if serve_counters:
            shown = []
            for name in sorted(serve_counters):
                value = serve_counters[name]
                shown.append(f"{name}="
                             f"{int(value) if value == int(value) else value}")
            lines.append("counters: " + " ".join(shown))

    integrity_counters = {n: v for n, v in counters.items()
                          if n.startswith("integrity.")}
    if integrity_mismatches or integrity_quarantines or integrity_counters:
        lines.append("")
        lines.append("-- integrity --")
        for family in sorted(integrity_mismatches):
            lines.append(f"mismatch {family}: "
                         f"{integrity_mismatches[family]}")
        for label in integrity_quarantines:
            lines.append(f"quarantined {label}")
        if integrity_counters:
            shown = []
            for name in sorted(integrity_counters):
                value = integrity_counters[name]
                shown.append(f"{name.removeprefix('integrity.')}="
                             f"{int(value) if value == int(value) else value}")
            lines.append("counters: " + " ".join(shown))

    if counters:
        lines.append("")
        lines.append("-- counters --")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            value = counters[name]
            shown = int(value) if value == int(value) else round(value, 4)
            lines.append(f"{name:<{width}}  {shown}")
    return "\n".join(lines)


def report_file(path: Union[str, Path]) -> str:
    return render_report(load_trace(path))
