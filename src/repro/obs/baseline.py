"""Performance baselines: record GFLOPS per kernel, fail on regression.

``python -m repro bench baseline record`` measures the default-config
generated kernel of each family on a fixed workload and files the numbers
in ``results/baseline.json``; ``... baseline check`` re-measures and exits
with status :data:`EXIT_REGRESSION` (3) when any kernel lost more than
``--threshold`` (default 15%) of its recorded GFLOPS.  This turns the
bench trajectory into an enforced time series: every PR can prove it did
not slow the generator's output down.

The workloads mirror the tuner's measurement problems (L2-resident, fixed
seeds) so baseline numbers and tuning trials are comparable.  Bump
:data:`WORKLOAD_VERSION` whenever a workload changes shape — a recorded
baseline is only comparable to a check run on the identical problem.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..backend import fsio
from ..backend.runner import load_kernel
from ..backend.timer import measure
from ..core.framework import Augem
from ..isa.arch import ArchSpec, detect_host
from . import trace as obs

#: bump when any workload below changes shape/size
WORKLOAD_VERSION = 1

#: baseline.json schema version
BASELINE_VERSION = 1

#: default location of the recorded baseline
DEFAULT_PATH = Path("results") / "baseline.json"

#: default tolerated fractional GFLOPS loss before check fails
DEFAULT_THRESHOLD = 0.15

#: kernel families covered by default
DEFAULT_KERNELS = ("gemm", "gemv", "axpy", "dot")

#: ``baseline check`` exit status on regression
EXIT_REGRESSION = 3


def _workload(kernel: str, native, rng,
              gk=None) -> Tuple[Callable[[], None], float]:
    """A timed closure plus its flop count for one kernel family."""
    if kernel == "gemm":
        # the generated kernel assumes divisible trip counts, so the tile
        # must honor its (mu, nu, ku) multiples (e.g. mu=12 on FMA archs)
        from ..blas.gemm import _round_up, kernel_multiples

        mu, nu, ku = kernel_multiples(gk) if gk is not None else (1, 1, 1)
        mc = _round_up(64, mu)
        nc = _round_up(64, nu)
        kc = _round_up(256, ku)
        a = rng.standard_normal(kc * mc)
        b = rng.standard_normal(nc * kc)
        c = np.zeros(mc * nc)
        return (lambda: native(mc, nc, kc, a, b, c, mc)), 2.0 * mc * nc * kc
    if kernel == "gemv":
        m, n = 1 << 10, 64
        a = rng.standard_normal(n * m)
        x = rng.standard_normal(n)
        y = np.zeros(m)
        return (lambda: native(m, n, a, m, x, y)), 2.0 * m * n
    if kernel == "axpy":
        n = 1 << 16
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        return (lambda: native(n, 1.5, x, y)), 2.0 * n
    if kernel == "dot":
        n = 1 << 16
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        return (lambda: native(n, x, y)), 2.0 * n
    raise KeyError(f"no baseline workload for kernel {kernel!r}")


def _gemm_threaded_workload(native, rng,
                            threads: int) -> Tuple[Callable[[], None], float]:
    """A full GemmDriver workload (packing + macro loops + N threads).

    Used only when a ``threads`` axis is requested: unlike the raw
    micro-kernel workload above, it exercises the whole parallel GEBP
    path, so 1-vs-N recordings measure actual end-to-end scaling.
    """
    from ..blas.gemm import GemmDriver

    driver = GemmDriver(native, threads=threads)
    m = n = k = 256
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    return (lambda: driver(a, b)), 2.0 * m * n * k


def measure_kernel(kernel: str, arch: Optional[ArchSpec] = None,
                   batches: int = 5,
                   threads: Optional[int] = None) -> float:
    """Best-batch GFLOPS of the default-config kernel for one family.

    ``threads`` (gemm only) switches from the raw micro-kernel workload
    to the driver-level workload run at that thread count; ``None``
    keeps the historical micro-kernel measurement.
    """
    arch = arch or detect_host()
    with obs.span("baseline.measure", kernel=kernel, arch=arch.name,
                  threads=threads) as sp:
        gk = Augem(arch=arch).generate_named(kernel)
        native = load_kernel(kernel, gk)
        rng = np.random.default_rng(7)
        if kernel == "gemm" and threads is not None:
            timed, flops = _gemm_threaded_workload(native, rng, threads)
        else:
            timed, flops = _workload(kernel, native, rng, gk=gk)
        m = measure(timed, batches=batches)
        gflops = m.gflops(flops)
        sp.set(gflops=round(gflops, 4))
    return gflops


def measure_suite(kernels=DEFAULT_KERNELS, arch: Optional[ArchSpec] = None,
                  batches: int = 5,
                  threads: Optional[int] = None) -> Dict[str, float]:
    arch = arch or detect_host()
    with obs.span("baseline.suite", arch=arch.name, batches=batches,
                  threads=threads):
        return {k: measure_kernel(k, arch=arch, batches=batches,
                                  threads=threads)
                for k in kernels}


def record_baseline(path: Path = DEFAULT_PATH, kernels=DEFAULT_KERNELS,
                    arch: Optional[ArchSpec] = None,
                    batches: int = 5,
                    threads: Optional[int] = None) -> Dict:
    """Measure every kernel and write the baseline file atomically."""
    arch = arch or detect_host()
    gflops = measure_suite(kernels, arch=arch, batches=batches,
                           threads=threads)
    record = {
        "version": BASELINE_VERSION,
        "workload_version": WORKLOAD_VERSION,
        "arch": arch.name,
        "batches": batches,
        "recorded_unix_time": time.time(),
        "kernels": {k: {"gflops": round(v, 4)} for k, v in gflops.items()},
    }
    if threads is not None:
        record["threads"] = threads
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # durable publish (pid-suffixed tmp + replace + fsync): concurrent
    # recorders never collide and a crash never leaves a torn baseline
    fsio.atomic_write_text(path, json.dumps(record, indent=2) + "\n",
                           tag="baseline")
    return record


class BaselineError(RuntimeError):
    """The baseline file is missing, unreadable, or incomparable."""


def _axis_mismatch(path: Path, axis: str, recorded, found,
                   hint: str = "re-record it") -> "BaselineError":
    """A comparability failure, uniformly naming the mismatched axis.

    Every incomparable-baseline error (``bench baseline check`` exit 2)
    goes through here so the message always answers both questions the
    operator has: which axis diverged, and what each side's value was.
    """
    return BaselineError(
        f"baseline {path} axis mismatch: {axis} — recorded {recorded!r}, "
        f"found {found!r}; {hint}")


def load_baseline(path: Path = DEFAULT_PATH) -> Dict:
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except FileNotFoundError:
        raise BaselineError(
            f"no baseline at {path}; run 'python -m repro bench baseline "
            f"record' first") from None
    except (OSError, ValueError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from None
    if record.get("workload_version") != WORKLOAD_VERSION:
        raise _axis_mismatch(path, "workload_version",
                             record.get("workload_version"),
                             WORKLOAD_VERSION)
    return record


@dataclass
class CheckRow:
    """One kernel's baseline-vs-now comparison."""

    kernel: str
    baseline_gflops: Optional[float]
    current_gflops: float
    regressed: bool

    @property
    def delta(self) -> Optional[float]:
        if not self.baseline_gflops:
            return None
        return self.current_gflops / self.baseline_gflops - 1.0


def check_baseline(path: Path = DEFAULT_PATH,
                   arch: Optional[ArchSpec] = None, batches: int = 5,
                   threshold: float = DEFAULT_THRESHOLD,
                   threads: Optional[int] = None) -> List[CheckRow]:
    """Re-measure the recorded kernels and compare against the baseline.

    A kernel present in the baseline but more than ``threshold`` slower
    now is flagged ``regressed``; a kernel missing from the baseline is
    reported un-flagged (record again to start tracking it).  The
    ``threads`` axis must match the recording — a 4-thread check against
    a single-thread baseline would compare different workloads.
    """
    record = load_baseline(path)
    arch = arch or detect_host()
    if record.get("arch") != arch.name:
        raise _axis_mismatch(path, "arch", record.get("arch"), arch.name)
    if record.get("threads") != threads:
        raise _axis_mismatch(
            path, "threads", record.get("threads"), threads,
            hint="re-record it (or pass the matching --threads)")
    kernels = list(record.get("kernels", {}))
    rows: List[CheckRow] = []
    for kernel in kernels:
        base = record["kernels"][kernel].get("gflops")
        now = measure_kernel(kernel, arch=arch, batches=batches,
                             threads=threads)
        regressed = bool(base) and now < base * (1.0 - threshold)
        rows.append(CheckRow(kernel, base, now, regressed))
        obs.event("baseline.check", kernel=kernel, baseline=base,
                  current=round(now, 4), regressed=regressed,
                  threads=threads)
    return rows


def render_check(rows: List[CheckRow], threshold: float) -> str:
    lines = [f"{'kernel':<8} {'baseline':>10} {'current':>10} "
             f"{'delta':>8}  verdict"]
    for row in rows:
        base = (f"{row.baseline_gflops:.2f}"
                if row.baseline_gflops else "-")
        delta = f"{100 * row.delta:+.1f}%" if row.delta is not None else "-"
        verdict = "REGRESSED" if row.regressed else "ok"
        lines.append(f"{row.kernel:<8} {base:>10} "
                     f"{row.current_gflops:>10.2f} {delta:>8}  {verdict}")
    bad = [r.kernel for r in rows if r.regressed]
    if bad:
        lines.append(f"regression (> {100 * threshold:.0f}% GFLOPS loss): "
                     + ", ".join(bad))
    else:
        lines.append(f"all kernels within {100 * threshold:.0f}% "
                     f"of the recorded baseline")
    return "\n".join(lines)
