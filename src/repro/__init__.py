"""AUGEM reproduction — template-based automatic generation of
high-performance dense linear algebra kernels for x86-64.

Reproduces *AUGEM: Automatically Generate High Performance Dense Linear
Algebra Kernels on x86 CPUs* (Wang, Zhang, Zhang, Yi — SC '13).

Quick start::

    from repro import Augem, AugemBLAS

    # the framework: simple C in, tuned assembly out
    kernel = Augem().generate_named("gemm")
    asm = kernel.asm_text  # complete GAS function text

    # the BLAS built from generated kernels
    import numpy as np
    blas = AugemBLAS()
    c = blas.dgemm(np.random.rand(256, 256), np.random.rand(256, 256))

Packages:

- :mod:`repro.poet` — mini program-transformation engine (C parser, AST,
  pattern matching) standing in for the POET language;
- :mod:`repro.transforms` — the Optimized C Kernel Generator (unroll&jam,
  unrolling, strength reduction, scalar replacement, prefetching);
- :mod:`repro.core` — templates, Template Identifier, Template Optimizer
  (Vdup/Shuf vectorization, per-array register queues, Tables 1-4
  instruction selection), Assembly Kernel Generator;
- :mod:`repro.isa` — x86-64 model, arch specs, GAS emission;
- :mod:`repro.emu` — x86-64 subset emulator (validation oracle);
- :mod:`repro.backend` — gcc/ctypes native execution, baselines, timing;
- :mod:`repro.blas` — packing, blocked GEMM, GEMV/AXPY/DOT, Level-3;
- :mod:`repro.tuning` — empirical configuration search;
- :mod:`repro.bench` — regenerates every figure/table of the paper's §5;
- :mod:`repro.obs` — structured tracing, counters, and perf baselines.
"""

from .blas.api import AugemBLAS, default_blas
from .blas.guard import BlasArgumentError
from .core.framework import Augem, GeneratedKernel, default_config
from .isa.arch import (
    ALL_ARCHS,
    GENERIC_SSE,
    HASWELL,
    PILEDRIVER,
    SANDYBRIDGE,
    ArchSpec,
    detect_host,
    get_arch,
)
from .transforms.pipeline import OptimizationConfig

__version__ = "1.0.0"

__all__ = [
    "Augem",
    "GeneratedKernel",
    "default_config",
    "AugemBLAS",
    "default_blas",
    "BlasArgumentError",
    "OptimizationConfig",
    "ArchSpec",
    "detect_host",
    "get_arch",
    "ALL_ARCHS",
    "SANDYBRIDGE",
    "PILEDRIVER",
    "HASWELL",
    "GENERIC_SSE",
    "__version__",
]
