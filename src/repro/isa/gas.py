"""GNU assembler (AT&T syntax) emission of instruction streams."""

from __future__ import annotations

from typing import Iterable, List

from .instructions import Comment, Directive, Instr, Item, Label
from .operands import Mem
from .registers import Register


def _render(ins: Instr) -> str:
    """Render one instruction, adding the ``q`` size suffix when an
    immediate-to-memory form would otherwise be ambiguous for GAS."""
    mnemonic = ins.mnemonic
    has_mem = any(isinstance(op, Mem) for op in ins.operands)
    has_reg = any(isinstance(op, Register) for op in ins.operands)
    if (
        has_mem
        and not has_reg
        and not mnemonic.startswith(("v", "prefetch"))
        and mnemonic not in ("jmp",)
    ):
        mnemonic += "q"
    ops = ", ".join(str(o) for o in ins.operands)
    text = f"{mnemonic}\t{ops}" if ops else mnemonic
    if ins.comment:
        text += f"\t# {ins.comment}"
    return text


def emit_items(items: Iterable[Item]) -> str:
    """Render an item stream as GAS text (one item per line)."""
    lines: List[str] = []
    for it in items:
        if isinstance(it, Label):
            lines.append(f"{it.name}:")
        elif isinstance(it, Directive):
            lines.append(f"\t{it.text}")
        elif isinstance(it, Comment):
            lines.append(f"\t# {it.text}")
        elif isinstance(it, Instr):
            lines.append(f"\t{_render(it)}")
        else:
            raise TypeError(f"not an instruction-stream item: {type(it).__name__}")
    return "\n".join(lines) + "\n"


def emit_function(name: str, items: Iterable[Item]) -> str:
    """Wrap an instruction stream in a complete GAS function definition.

    The output assembles standalone with ``gcc -c`` and exports ``name``
    with default visibility, a GNU-stack note (non-executable stack) and
    ``.type``/``.size`` annotations for sane tooling.
    """
    body = emit_items(items)
    return (
        '\t.section .note.GNU-stack,"",@progbits\n'
        "\t.text\n"
        f"\t.globl {name}\n"
        f"\t.type {name}, @function\n"
        "\t.p2align 4\n"
        f"{name}:\n"
        f"{body}"
        f"\t.size {name}, .-{name}\n"
    )
