"""x86-64 register files and the System V AMD64 calling convention."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Register:
    """A machine register.

    :param name: canonical name (``rax``, ``xmm3``, ``ymm3``).
    :param kind: ``"gp"`` or ``"vec"``.
    :param width: width in bytes (8 for GP, 16 for xmm, 32 for ymm).
    """

    name: str
    kind: str
    width: int

    def __str__(self) -> str:
        return f"%{self.name}"

    @property
    def index(self) -> int:
        """Hardware encoding index (xmm3 and ymm3 share index 3)."""
        if self.kind == "vec":
            return int(self.name[3:])
        return GP_ORDER.index(self.name)

    def as_width(self, width: int) -> "Register":
        """Same physical vector register at a different width."""
        if self.kind != "vec":
            raise ValueError("as_width applies to vector registers")
        prefix = "xmm" if width == 16 else "ymm"
        return Register(f"{prefix}{self.index}", "vec", width)

    @property
    def xmm(self) -> "Register":
        return self.as_width(16)

    @property
    def ymm(self) -> "Register":
        return self.as_width(32)


GP_ORDER = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
]

GP = {n: Register(n, "gp", 8) for n in GP_ORDER}
XMM = {f"xmm{i}": Register(f"xmm{i}", "vec", 16) for i in range(16)}
YMM = {f"ymm{i}": Register(f"ymm{i}", "vec", 32) for i in range(16)}

RAX, RCX, RDX, RBX = GP["rax"], GP["rcx"], GP["rdx"], GP["rbx"]
RSP, RBP, RSI, RDI = GP["rsp"], GP["rbp"], GP["rsi"], GP["rdi"]
R8, R9, R10, R11 = GP["r8"], GP["r9"], GP["r10"], GP["r11"]
R12, R13, R14, R15 = GP["r12"], GP["r13"], GP["r14"], GP["r15"]


def xmm(i: int) -> Register:
    return XMM[f"xmm{i}"]


def ymm(i: int) -> Register:
    return YMM[f"ymm{i}"]


def vec(i: int, width: int) -> Register:
    """Vector register ``i`` at the given width (16 -> xmm, 32 -> ymm)."""
    if width == 16:
        return xmm(i)
    if width == 32:
        return ymm(i)
    raise ValueError(f"unsupported vector width {width}")


class SysVABI:
    """System V AMD64 calling convention facts used by the code generator."""

    INT_ARG_REGS: Tuple[Register, ...] = (RDI, RSI, RDX, RCX, R8, R9)
    FLOAT_ARG_REGS: Tuple[Register, ...] = tuple(xmm(i) for i in range(8))
    CALLEE_SAVED: Tuple[Register, ...] = (RBX, RBP, R12, R13, R14, R15)
    CALLER_SAVED: Tuple[Register, ...] = (RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11)
    RETURN_INT: Register = RAX
    RETURN_FLOAT: Register = xmm(0)

    @classmethod
    def is_callee_saved(cls, reg: Register) -> bool:
        return reg.kind == "gp" and reg.name in {r.name for r in cls.CALLEE_SAVED}

    @classmethod
    def classify_args(cls, arg_kinds: List[str]):
        """Map ``"int"``/``"float"`` argument kinds to locations.

        Returns a list whose entries are either a :class:`Register` or an
        ``int`` — the positive byte offset of a stack-passed argument
        relative to the stack pointer *at function entry* (the first stack
        argument is at entry-rsp+8, just above the return address).
        """
        out = []
        ints = floats = 0
        stack_off = 8
        for kind in arg_kinds:
            if kind == "float" and floats < len(cls.FLOAT_ARG_REGS):
                out.append(cls.FLOAT_ARG_REGS[floats])
                floats += 1
            elif kind != "float" and ints < len(cls.INT_ARG_REGS):
                out.append(cls.INT_ARG_REGS[ints])
                ints += 1
            else:
                out.append(stack_off)
                stack_off += 8
        return out


#: GP registers the code generator may allocate to C variables.  ``rsp`` is
#: the stack pointer; ``rax`` and ``r11`` are reserved as scratch.
ALLOCATABLE_GP: Tuple[Register, ...] = (
    RDI, RSI, RDX, RCX, R8, R9, R10, RBX, RBP, R12, R13, R14, R15,
)

SCRATCH_GP: Tuple[Register, ...] = (RAX, R11)
