"""Architecture specifications (the ``arch`` input of paper Fig. 2).

An :class:`ArchSpec` tells the template optimizers which SIMD mode to use
(SSE / AVX), whether fused multiply-add is available and in which flavour
(FMA3 / FMA4 — paper Table 1 rows 2-4), the vector width, and the register
budget used by the per-array register-queue allocator (§3.1).

The two evaluation platforms of the paper (Table 5) are modelled, along
with a generic SSE2 target (standing in for the pre-AVX GotoBLAS code path)
and Haswell (this container's host, AVX2+FMA3).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ArchSpec:
    """Everything the generator needs to know about a target CPU."""

    name: str
    simd: str  # "sse" or "avx"
    fma: Optional[str] = None  # None, "fma3", "fma4"
    vector_bytes: int = 16  # SIMD register width
    n_vector_regs: int = 16
    cache_line: int = 64
    l1d_bytes: int = 32 * 1024
    l2_bytes: int = 256 * 1024
    #: default prefetch distance in *elements* (doubles) for tuning seeds
    prefetch_distance: int = 64
    #: human description for reports
    description: str = ""

    def __post_init__(self) -> None:
        if self.simd not in ("sse", "avx"):
            raise ValueError(f"simd must be 'sse' or 'avx', got {self.simd!r}")
        if self.fma not in (None, "fma3", "fma4"):
            raise ValueError(f"bad fma flavour {self.fma!r}")
        if self.simd == "sse" and self.vector_bytes != 16:
            raise ValueError("SSE vector width is 16 bytes")
        if self.simd == "avx" and self.vector_bytes not in (16, 32):
            raise ValueError("AVX vector width is 16 or 32 bytes")

    @property
    def doubles_per_vector(self) -> int:
        """n in the paper's vectorization discussion (§3.4)."""
        return self.vector_bytes // 8

    @property
    def has_fma(self) -> bool:
        return self.fma is not None

    def __str__(self) -> str:
        fma = self.fma or "no-fma"
        return f"{self.name}({self.simd}{self.vector_bytes * 8},{fma})"


#: Intel Sandy Bridge E5-2680 (paper Table 5): AVX 256-bit, no FMA.
SANDYBRIDGE = ArchSpec(
    name="sandybridge",
    simd="avx",
    vector_bytes=32,
    l1d_bytes=32 * 1024,
    l2_bytes=256 * 1024,
    prefetch_distance=64,
    description="Intel Sandy Bridge (AVX, no FMA) — paper Table 5 column 1",
)

#: AMD Piledriver 6380 (paper Table 5): AVX 256-bit with FMA4 (and FMA3).
PILEDRIVER = ArchSpec(
    name="piledriver",
    simd="avx",
    fma="fma4",
    vector_bytes=32,
    l1d_bytes=16 * 1024,
    l2_bytes=2048 * 1024,
    prefetch_distance=96,
    description="AMD Piledriver (AVX + FMA4) — paper Table 5 column 2",
)

#: Intel Haswell and later: AVX2 with FMA3 (this container's host CPU).
HASWELL = ArchSpec(
    name="haswell",
    simd="avx",
    fma="fma3",
    vector_bytes=32,
    l1d_bytes=32 * 1024,
    l2_bytes=256 * 1024,
    prefetch_distance=64,
    description="Intel Haswell-class (AVX2 + FMA3)",
)

#: Generic SSE2 x86-64 — the pre-AVX code path (GotoBLAS-era hardware).
GENERIC_SSE = ArchSpec(
    name="generic_sse",
    simd="sse",
    vector_bytes=16,
    prefetch_distance=32,
    description="Generic x86-64 SSE2 (GotoBLAS-era, no AVX/FMA)",
)

ALL_ARCHS = {
    a.name: a for a in (SANDYBRIDGE, PILEDRIVER, HASWELL, GENERIC_SSE)
}


def get_arch(name: str) -> ArchSpec:
    try:
        return ALL_ARCHS[name]
    except KeyError:
        raise KeyError(
            f"unknown arch {name!r}; available: {sorted(ALL_ARCHS)}"
        ) from None


#: env var forcing the detected host arch (any ``ALL_ARCHS`` name, or
#: ``reference`` — which the dispatch layer maps to the pure-numpy tier).
FORCE_ARCH_ENV = "REPRO_FORCE_ARCH"

#: values of the env var that mean "no override"
_FORCE_OFF = frozenset({"", "0", "off", "none", "auto"})

_DEFAULT_CPUINFO = "/proc/cpuinfo"

#: per-process memo for the default-path detection only; explicit paths
#: (tests feeding synthetic cpuinfo files) are always re-read
_HOST_CACHE: Dict[str, ArchSpec] = {}


def forced_arch_name() -> Optional[str]:
    """Normalized ``$REPRO_FORCE_ARCH`` value, or ``None`` when unset.

    Returns an ``ALL_ARCHS`` name or the literal ``"reference"``; any
    other value raises with the list of choices.
    """
    raw = os.environ.get(FORCE_ARCH_ENV)
    if raw is None:
        return None
    name = raw.strip().lower()
    if name in _FORCE_OFF:
        return None
    if name in ALL_ARCHS or name == "reference":
        return name
    raise KeyError(
        f"${FORCE_ARCH_ENV}={raw!r} is not a modelled architecture; "
        f"available: {sorted(ALL_ARCHS) + ['reference']}")


def reset_host_cache() -> None:
    """Forget the memoized default-path host detection (tests)."""
    _HOST_CACHE.clear()


def detect_host(cpuinfo_path: str = _DEFAULT_CPUINFO) -> ArchSpec:
    """Pick the best spec the *host* CPU can execute natively.

    ``$REPRO_FORCE_ARCH`` overrides detection entirely (``reference``
    resolves to GENERIC_SSE here; the dispatch layer additionally pins
    the whole fallback chain to the pure-numpy tier).  The default-path
    result is memoized per process — ``/proc/cpuinfo`` cannot change
    under a running interpreter, and ``AugemBLAS()`` constructs call this
    eagerly.  Explicit paths are always re-read (tests feed variants).

    Falls back to GENERIC_SSE when cpuinfo is unavailable (every x86-64
    CPU has SSE2).  FMA4 is never selected for native execution — Intel
    hosts cannot run it; Piledriver code is validated in the emulator.
    """
    forced = forced_arch_name()
    if forced is not None:
        return GENERIC_SSE if forced == "reference" else ALL_ARCHS[forced]
    cached = _HOST_CACHE.get(cpuinfo_path) if cpuinfo_path == _DEFAULT_CPUINFO else None
    if cached is not None:
        return cached
    try:
        with open(cpuinfo_path) as f:
            text = f.read()
    except OSError:
        return GENERIC_SSE
    flags_match = re.search(r"^flags\s*:\s*(.*)$", text, re.M)
    flags = set(flags_match.group(1).split()) if flags_match else set()
    if "avx2" in flags and "fma" in flags:
        spec = HASWELL
    elif "avx" in flags:
        spec = SANDYBRIDGE
    else:
        spec = GENERIC_SSE
    if cpuinfo_path == _DEFAULT_CPUINFO:
        _HOST_CACHE[cpuinfo_path] = spec
    return spec
