"""Instruction mapping rules — paper Tables 1, 2, 3 and 4.

The template optimizers emit three-address *pseudo* operations (Load, Mul,
Add, Store, Vld, Vdup, Shuf, Vmul, Vadd, Vst).  This module lowers each of
them to concrete machine instructions according to the target
:class:`~repro.isa.arch.ArchSpec`:

- SSE mode: two-operand destructive instructions, so ``Mul+Add`` becomes
  ``Mov r1,r2; Mul r0,r2; Add r2,r3`` (Table 1 line 2, left column).
- AVX mode: non-destructive three-operand ``vmulpd``/``vaddpd``.
- FMA3: ``Mul+Add`` collapses to ``vfmadd231pd r0,r1,r3`` (Table 1 line 3).
- FMA4: ``vfmaddpd r0,r1,r3,r3`` (Table 1 line 4; four-operand AMD form).

All methods return ``List[Instr]`` so multi-instruction lowerings compose
uniformly.
"""

from __future__ import annotations

from typing import List, Optional

from .arch import ArchSpec
from .instructions import Instr, instr
from .operands import Imm, Mem
from .registers import Register


class MappingRules:
    """Arch-parameterized lowering of the paper's pseudo instructions."""

    def __init__(self, arch: ArchSpec) -> None:
        self.arch = arch
        self.avx = arch.simd == "avx"

    # ------------------------------------------------------------------
    # scalar double operations (mmCOMP / mmSTORE / mvCOMP, Tables 1-3)
    # ------------------------------------------------------------------
    def load_scalar(self, src: Mem, dst: Register, comment: str = None) -> List[Instr]:
        """``Load arr,idx,r1`` -> ``Load idx*SIZE(arr),r1``."""
        mn = "vmovsd" if self.avx else "movsd"
        return [instr(mn, src, dst.xmm, comment=comment)]

    def store_scalar(self, src: Register, dst: Mem, comment: str = None) -> List[Instr]:
        mn = "vmovsd" if self.avx else "movsd"
        return [instr(mn, src.xmm, dst, comment=comment)]

    def mov_scalar(self, src: Register, dst: Register) -> List[Instr]:
        if self.avx:
            return [instr("vmovapd", src.xmm, dst.xmm)]
        return [instr("movapd", src.xmm, dst.xmm)]

    def zero_scalar(self, reg: Register) -> List[Instr]:
        if self.avx:
            return [instr("vxorpd", reg.xmm, reg.xmm, reg.xmm)]
        return [instr("xorpd", reg.xmm, reg.xmm)]

    def add_scalar(self, src: Register, acc: Register) -> List[Instr]:
        """acc += src (scalar double)."""
        if self.avx:
            return [instr("vaddsd", src.xmm, acc.xmm, acc.xmm)]
        return [instr("addsd", src.xmm, acc.xmm)]

    def mul_scalar(self, src: Register, acc: Register) -> List[Instr]:
        """acc *= src (scalar double)."""
        if self.avx:
            return [instr("vmulsd", src.xmm, acc.xmm, acc.xmm)]
        return [instr("mulsd", src.xmm, acc.xmm)]

    def mul_add_scalar(self, a: Register, b: Register, acc: Register,
                       tmp: Optional[Register] = None,
                       comment: str = None) -> List[Instr]:
        """acc += a*b — Table 1 lines 2-4, scalar (sd) forms."""
        if self.arch.fma == "fma3":
            return [instr("vfmadd231sd", a.xmm, b.xmm, acc.xmm, comment=comment)]
        if self.arch.fma == "fma4":
            return [instr("vfmaddsd", acc.xmm, b.xmm, a.xmm, acc.xmm, comment=comment)]
        if self.avx:
            assert tmp is not None, "AVX non-FMA mul+add needs a temp register"
            return [
                instr("vmulsd", a.xmm, b.xmm, tmp.xmm, comment=comment),
                instr("vaddsd", tmp.xmm, acc.xmm, acc.xmm),
            ]
        assert tmp is not None, "SSE mul+add needs a temp register"
        return [
            instr("movapd", a.xmm, tmp.xmm, comment=comment),  # Mov r1,r2
            instr("mulsd", b.xmm, tmp.xmm),                    # Mul r0,r2
            instr("addsd", tmp.xmm, acc.xmm),                  # Add r2,r3
        ]

    # ------------------------------------------------------------------
    # vector operations (mmUnrolledCOMP / mmUnrolledSTORE / mvUnrolledCOMP,
    # Tables 1-4 packed forms)
    # ------------------------------------------------------------------
    def _v(self, reg: Register) -> Register:
        """Vector register at the arch's full width."""
        return reg.as_width(self.arch.vector_bytes)

    def vload(self, src: Mem, dst: Register, comment: str = None,
              aligned: bool = False) -> List[Instr]:
        """``Vld idx*SIZE(arr),r1`` — Table 4 line 1."""
        if self.avx:
            mn = "vmovapd" if aligned else "vmovupd"
        else:
            mn = "movapd" if aligned else "movupd"
        return [instr(mn, src, self._v(dst), comment=comment)]

    def vstore(self, src: Register, dst: Mem, comment: str = None,
               aligned: bool = False) -> List[Instr]:
        if self.avx:
            mn = "vmovapd" if aligned else "vmovupd"
        else:
            mn = "movapd" if aligned else "movupd"
        return [instr(mn, self._v(src), dst, comment=comment)]

    def vmov(self, src: Register, dst: Register) -> List[Instr]:
        mn = "vmovapd" if self.avx else "movapd"
        return [instr(mn, self._v(src), self._v(dst))]

    def vzero(self, reg: Register) -> List[Instr]:
        v = self._v(reg)
        if self.avx:
            return [instr("vxorpd", v, v, v)]
        return [instr("xorpd", v, v)]

    def vdup(self, src: Mem, dst: Register, comment: str = None) -> List[Instr]:
        """``Vdup``: load one element and replicate it across all lanes.

        SSE(3): ``movddup``; AVX-256: ``vbroadcastsd`` (memory source —
        the only form Sandy Bridge supports); AVX-128: ``vmovddup``.
        """
        if self.avx and self.arch.vector_bytes == 32:
            return [instr("vbroadcastsd", src, self._v(dst), comment=comment)]
        if self.avx:
            return [instr("vmovddup", src, dst.xmm, comment=comment)]
        return [instr("movddup", src, dst.xmm, comment=comment)]

    def vadd(self, src: Register, acc: Register) -> List[Instr]:
        if self.avx:
            v = self.arch.vector_bytes
            return [instr("vaddpd", src.as_width(v), acc.as_width(v), acc.as_width(v))]
        return [instr("addpd", src.xmm, acc.xmm)]

    def vmul_into(self, a: Register, b: Register, dst: Register) -> List[Instr]:
        """dst = a*b (dst may alias a or b only in AVX mode)."""
        if self.avx:
            v = self.arch.vector_bytes
            return [instr("vmulpd", a.as_width(v), b.as_width(v), dst.as_width(v))]
        out = []
        if dst.index != a.index:
            out.append(instr("movapd", a.xmm, dst.xmm))
        out.append(instr("mulpd", b.xmm, dst.xmm))
        return out

    def vmul_add(self, a: Register, b: Register, acc: Register,
                 tmp: Optional[Register] = None,
                 comment: str = None) -> List[Instr]:
        """acc += a*b, packed — Table 1 lines 2-4 (the heart of the paper)."""
        v = self.arch.vector_bytes
        if self.arch.fma == "fma3":
            return [
                instr("vfmadd231pd", a.as_width(v), b.as_width(v),
                      acc.as_width(v), comment=comment)
            ]
        if self.arch.fma == "fma4":
            return [
                instr("vfmaddpd", acc.as_width(v), b.as_width(v),
                      a.as_width(v), acc.as_width(v), comment=comment)
            ]
        if self.avx:
            assert tmp is not None
            return [
                instr("vmulpd", a.as_width(v), b.as_width(v),
                      tmp.as_width(v), comment=comment),
                instr("vaddpd", tmp.as_width(v), acc.as_width(v), acc.as_width(v)),
            ]
        assert tmp is not None
        return [
            instr("movapd", a.xmm, tmp.xmm, comment=comment),
            instr("mulpd", b.xmm, tmp.xmm),
            instr("addpd", tmp.xmm, acc.xmm),
        ]

    # -- shuffles (Table 4 line 2) -------------------------------------------
    def shuf_swap_adjacent(self, src: Register, dst: Register) -> List[Instr]:
        """Swap each adjacent pair of lanes: (b0,b1,b2,b3)->(b1,b0,b3,b2).

        This is the paper's ``Shuf imm0`` for n=2 (SSE: ``shufpd $1``) and
        the in-lane half of the AVX Shuf method (``vpermilpd $5``).
        """
        if self.avx:
            imm = 5 if self.arch.vector_bytes == 32 else 1
            return [instr("vpermilpd", Imm(imm), self._v(src), self._v(dst))]
        out = []
        if dst.index != src.index:
            out.append(instr("movapd", src.xmm, dst.xmm))
        out.append(instr("shufpd", Imm(1), dst.xmm, dst.xmm))
        return out

    def shuf_swap_lanes(self, src: Register, dst: Register) -> List[Instr]:
        """Swap the two 128-bit halves of a 256-bit register (AVX only)."""
        if not (self.avx and self.arch.vector_bytes == 32):
            raise ValueError("lane swap requires 256-bit AVX")
        v = self._v(src)
        return [instr("vperm2f128", Imm(1), v, v, self._v(dst))]

    def vblend(self, imm: int, a: Register, b: Register,
               dst: Register) -> List[Instr]:
        """dst[k] = b[k] if imm bit k else a[k] (AVX only)."""
        if not self.avx:
            raise ValueError("vblendpd requires AVX")
        v = self.arch.vector_bytes
        return [instr("vblendpd", Imm(imm), b.as_width(v), a.as_width(v),
                      dst.as_width(v))]

    def vperm128_lo_hi(self, lo_src: Register, hi_src: Register,
                       dst: Register) -> List[Instr]:
        """dst = (low half of lo_src, high half of hi_src) — 256-bit AVX."""
        if not (self.avx and self.arch.vector_bytes == 32):
            raise ValueError("vperm2f128 requires 256-bit AVX")
        return [instr("vperm2f128", Imm(0x30), hi_src.ymm, lo_src.ymm,
                      dst.ymm)]

    def shufpd_combine(self, imm: int, a: Register, b: Register,
                       dst: Register) -> List[Instr]:
        """dst = shufpd(a, b, imm): dst[0]=a[imm&1], dst[1]=b[(imm>>1)&1].

        128-bit only (used by the Shuf-method store un-permutation).
        """
        if self.avx:
            return [instr("vshufpd", Imm(imm), b.xmm, a.xmm, dst.xmm)]
        out = []
        if dst.index != a.index:
            out.append(instr("movapd", a.xmm, dst.xmm))
        out.append(instr("shufpd", Imm(imm), b.xmm, dst.xmm))
        return out

    # -- horizontal reduction (DOT epilogue) ----------------------------------
    def hreduce_to_scalar(self, acc: Register, tmp: Register,
                          comment: str = None) -> List[Instr]:
        """Sum all lanes of ``acc`` into its low scalar lane.

        256-bit: extract high half, add, then fold the remaining pair;
        128-bit: fold the pair with an unpack + add.
        """
        out: List[Instr] = []
        if self.avx and self.arch.vector_bytes == 32:
            out.append(
                instr("vextractf128", Imm(1), acc.ymm, tmp.xmm, comment=comment)
            )
            out.append(instr("vaddpd", tmp.xmm, acc.xmm, acc.xmm))
            out.append(instr("vunpckhpd", acc.xmm, acc.xmm, tmp.xmm))
            out.append(instr("vaddsd", tmp.xmm, acc.xmm, acc.xmm))
            return out
        if self.avx:
            out.append(instr("vunpckhpd", acc.xmm, acc.xmm, tmp.xmm, comment=comment))
            out.append(instr("vaddsd", tmp.xmm, acc.xmm, acc.xmm))
            return out
        out.append(instr("movapd", acc.xmm, tmp.xmm, comment=comment))
        out.append(instr("unpckhpd", tmp.xmm, tmp.xmm))
        out.append(instr("addsd", tmp.xmm, acc.xmm))
        return out
