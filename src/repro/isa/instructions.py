"""Machine-instruction IR.

Instructions use **AT&T operand order** (sources first, destination last),
matching both the GAS emitter and the emulator.  Each mnemonic has a small
metadata entry describing operand roles so the scheduler and the emulator
can compute reads/writes without special-casing.

Roles (one letter per operand position):

- ``R``  read
- ``W``  write (register or memory destination)
- ``M``  read-modify-write destination
- ``I``  immediate (read)

An instruction stream is a list of :class:`Item` (instructions, labels,
directives, comments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

from .operands import Imm, LabelRef, Mem, Operand
from .registers import RSP, Register


@dataclass(frozen=True)
class InstrInfo:
    roles: Tuple[str, ...]
    writes_flags: bool = False
    reads_flags: bool = False
    is_branch: bool = False
    latency: int = 1  # generic scheduling weight


_I = InstrInfo

#: mnemonic -> operand roles in AT&T order.
INSTR_INFO = {
    # -- GP ----------------------------------------------------------------
    "mov":   _I(("R", "W")),
    "movq":  _I(("R", "W")),
    "lea":   _I(("R", "W")),
    "add":   _I(("R", "M"), writes_flags=True),
    "sub":   _I(("R", "M"), writes_flags=True),
    "imul":  _I(("R", "M"), writes_flags=True, latency=3),
    "neg":   _I(("M",), writes_flags=True),
    "xor":   _I(("R", "M"), writes_flags=True),
    "and":   _I(("R", "M"), writes_flags=True),
    "or":    _I(("R", "M"), writes_flags=True),
    "sal":   _I(("I", "M"), writes_flags=True),
    "shl":   _I(("I", "M"), writes_flags=True),
    "sar":   _I(("I", "M"), writes_flags=True),
    "inc":   _I(("M",), writes_flags=True),
    "dec":   _I(("M",), writes_flags=True),
    "cmp":   _I(("R", "R"), writes_flags=True),
    "test":  _I(("R", "R"), writes_flags=True),
    "push":  _I(("R",)),
    "pop":   _I(("W",)),
    "jmp":   _I(("R",), is_branch=True),
    "je":    _I(("R",), is_branch=True, reads_flags=True),
    "jne":   _I(("R",), is_branch=True, reads_flags=True),
    "jl":    _I(("R",), is_branch=True, reads_flags=True),
    "jle":   _I(("R",), is_branch=True, reads_flags=True),
    "jg":    _I(("R",), is_branch=True, reads_flags=True),
    "jge":   _I(("R",), is_branch=True, reads_flags=True),
    "ret":   _I((), is_branch=True),
    "nop":   _I(()),
    # -- SSE scalar double ---------------------------------------------------
    "movsd":  _I(("R", "W"), latency=3),
    "addsd":  _I(("R", "M"), latency=3),
    "subsd":  _I(("R", "M"), latency=3),
    "mulsd":  _I(("R", "M"), latency=5),
    "divsd":  _I(("R", "M"), latency=14),
    "ucomisd": _I(("R", "R"), writes_flags=True),
    # -- SSE packed double -----------------------------------------------------
    "movupd":  _I(("R", "W"), latency=3),
    "movapd":  _I(("R", "W"), latency=3),
    "movddup": _I(("R", "W"), latency=3),
    "addpd":   _I(("R", "M"), latency=3),
    "subpd":   _I(("R", "M"), latency=3),
    "mulpd":   _I(("R", "M"), latency=5),
    "xorpd":   _I(("R", "M")),
    "shufpd":  _I(("I", "R", "M")),
    "unpcklpd": _I(("R", "M")),
    "unpckhpd": _I(("R", "M")),
    "haddpd":  _I(("R", "M"), latency=5),
    # -- AVX ----------------------------------------------------------------
    "vmovsd":       _I(("R", "W"), latency=3),
    "vmovupd":      _I(("R", "W"), latency=3),
    "vmovapd":      _I(("R", "W"), latency=3),
    "vmovddup":     _I(("R", "W")),
    "vbroadcastsd": _I(("R", "W"), latency=3),
    "vaddpd":  _I(("R", "R", "W"), latency=3),
    "vsubpd":  _I(("R", "R", "W"), latency=3),
    "vmulpd":  _I(("R", "R", "W"), latency=5),
    "vaddsd":  _I(("R", "R", "W"), latency=3),
    "vsubsd":  _I(("R", "R", "W"), latency=3),
    "vmulsd":  _I(("R", "R", "W"), latency=5),
    "vxorpd":  _I(("R", "R", "W")),
    "vshufpd": _I(("I", "R", "R", "W")),
    "vblendpd": _I(("I", "R", "R", "W")),
    "vpermilpd": _I(("I", "R", "W")),
    "vperm2f128": _I(("I", "R", "R", "W"), latency=3),
    "vextractf128": _I(("I", "R", "W"), latency=3),
    "vinsertf128": _I(("I", "R", "R", "W"), latency=3),
    "vunpcklpd": _I(("R", "R", "W")),
    "vunpckhpd": _I(("R", "R", "W")),
    "vhaddpd":  _I(("R", "R", "W"), latency=5),
    "vzeroupper": _I(()),
    # -- FMA -------------------------------------------------------------------
    "vfmadd231pd": _I(("R", "R", "M"), latency=5),
    "vfmadd231sd": _I(("R", "R", "M"), latency=5),
    "vfmadd213pd": _I(("R", "R", "M"), latency=5),
    "vfmadd132pd": _I(("R", "R", "M"), latency=5),
    # FMA4 (AMD): vfmaddpd dst, src3, src2, src1  (AT&T: src1,src2,src3,dst)
    "vfmaddpd": _I(("R", "R", "R", "W"), latency=6),
    "vfmaddsd": _I(("R", "R", "R", "W"), latency=6),
    # -- prefetch -------------------------------------------------------------
    "prefetcht0":  _I(("R",)),
    "prefetcht1":  _I(("R",)),
    "prefetcht2":  _I(("R",)),
    "prefetchnta": _I(("R",)),
}


@dataclass
class Instr:
    """A machine instruction: mnemonic + operands (AT&T order) + comment."""

    mnemonic: str
    operands: Tuple[Operand, ...] = ()
    comment: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mnemonic not in INSTR_INFO:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")
        self.operands = tuple(self.operands)
        roles = INSTR_INFO[self.mnemonic].roles
        if len(roles) != len(self.operands):
            raise ValueError(
                f"{self.mnemonic} expects {len(roles)} operands, "
                f"got {len(self.operands)}"
            )

    @property
    def info(self) -> InstrInfo:
        return INSTR_INFO[self.mnemonic]

    # -- dependence analysis -------------------------------------------------
    def reg_reads(self) -> List[Register]:
        out: List[Register] = []
        for role, op in zip(self.info.roles, self.operands):
            if isinstance(op, Mem):
                if op.base is not None:
                    out.append(op.base)
                if op.index is not None:
                    out.append(op.index)
            elif isinstance(op, Register) and role in ("R", "M"):
                out.append(op)
        if self.mnemonic in ("push", "pop", "ret"):
            out.append(RSP)  # implicit stack-pointer use
        return out

    def reg_writes(self) -> List[Register]:
        out: List[Register] = []
        for role, op in zip(self.info.roles, self.operands):
            if isinstance(op, Register) and role in ("W", "M"):
                out.append(op)
        if self.mnemonic in ("push", "pop"):
            out.append(RSP)  # implicit stack-pointer update
        return out

    def loads_mem(self) -> List[Mem]:
        if self.mnemonic.startswith("prefetch"):
            return []
        out = [
            op
            for role, op in zip(self.info.roles, self.operands)
            if isinstance(op, Mem) and role == "R"
        ]
        if self.mnemonic in ("pop", "ret"):
            out.append(Mem(base=RSP))  # implicit stack read
        return out

    def stores_mem(self) -> List[Mem]:
        out = [
            op
            for role, op in zip(self.info.roles, self.operands)
            if isinstance(op, Mem) and role in ("W", "M")
        ]
        if self.mnemonic == "push":
            out.append(Mem(base=RSP, disp=-8))  # implicit stack write
        return out

    def __str__(self) -> str:
        ops = ", ".join(str(o) for o in self.operands)
        text = f"{self.mnemonic}\t{ops}" if ops else self.mnemonic
        if self.comment:
            text += f"\t# {self.comment}"
        return text


@dataclass
class Label:
    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass
class Directive:
    text: str

    def __str__(self) -> str:
        return self.text


@dataclass
class Comment:
    text: str

    def __str__(self) -> str:
        return f"# {self.text}"


Item = Union[Instr, Label, Directive, Comment]


def instr(mnemonic: str, *operands: Operand, comment: Optional[str] = None) -> Instr:
    """Convenience constructor."""
    return Instr(mnemonic, tuple(operands), comment)


def instructions_of(items: Iterable[Item]) -> List[Instr]:
    """Filter an item stream down to the executable instructions."""
    return [it for it in items if isinstance(it, Instr)]
