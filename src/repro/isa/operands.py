"""Instruction operands: immediates, memory references, labels."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .registers import Register


@dataclass(frozen=True)
class Imm:
    """Immediate integer operand."""

    value: int

    def __str__(self) -> str:
        return f"${self.value}"


@dataclass(frozen=True)
class Mem:
    """Memory operand ``disp(base, index, scale)``."""

    base: Optional[Register] = None
    disp: int = 0
    index: Optional[Register] = None
    scale: int = 1

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}")
        if self.base is None and self.index is None:
            raise ValueError("memory operand needs a base or an index")

    def __str__(self) -> str:
        parts = ""
        if self.base is not None:
            parts += str(self.base)
        if self.index is not None:
            parts += f",{self.index},{self.scale}"
        disp = str(self.disp) if self.disp else ""
        return f"{disp}({parts})"


@dataclass(frozen=True)
class LabelRef:
    """Reference to a code label (jump target)."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Register, Imm, Mem, LabelRef]


def mem(base: Register, disp: int = 0,
        index: Optional[Register] = None, scale: int = 1) -> Mem:
    """Convenience constructor for memory operands."""
    return Mem(base=base, disp=disp, index=index, scale=scale)
