"""Empirical tuning: candidate spaces and the measurement-driven search."""

from .search import TrialResult, TuningResult, tune_kernel
from .space import (
    CANDIDATE_SPACES,
    Candidate,
    axpy_candidates,
    candidates_for,
    dot_candidates,
    gemm_candidates,
    gemv_candidates,
)

__all__ = [
    "Candidate",
    "candidates_for",
    "CANDIDATE_SPACES",
    "gemm_candidates",
    "gemv_candidates",
    "axpy_candidates",
    "dot_candidates",
    "tune_kernel",
    "TuningResult",
    "TrialResult",
]
