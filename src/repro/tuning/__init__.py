"""Empirical tuning: candidate spaces, the measurement-driven search,
and durable crash-resumable search sessions."""

from .search import (
    EXIT_INTERRUPTED,
    TrialResult,
    TuningInterrupted,
    TuningResult,
    tune_kernel,
)
from .session import (
    TrialRecord,
    TuningSession,
    find_resumable,
    gc_sessions,
    get_session,
    list_sessions,
    sessions_root,
)
from .space import (
    CANDIDATE_SPACES,
    Candidate,
    axpy_candidates,
    candidates_for,
    dot_candidates,
    gemm_candidates,
    gemv_candidates,
)

__all__ = [
    "Candidate",
    "candidates_for",
    "CANDIDATE_SPACES",
    "gemm_candidates",
    "gemv_candidates",
    "axpy_candidates",
    "dot_candidates",
    "tune_kernel",
    "TuningResult",
    "TrialResult",
    "TuningInterrupted",
    "EXIT_INTERRUPTED",
    "TuningSession",
    "TrialRecord",
    "sessions_root",
    "list_sessions",
    "get_session",
    "find_resumable",
    "gc_sessions",
]
