"""Empirical tuning driver (paper §2.1).

Generates each candidate configuration, assembles it natively, validates
it against the numpy reference on a small problem (a wrong kernel must
never win the search), measures it with min-of-batches timing, and keeps
the fastest.  Candidates that fail generation (e.g. register-file
overflow at extreme unroll factors) are skipped and recorded.

Three layers make repeated searches cheap *and* crash-proof:

- **parallel preparation** — with ``jobs > 1`` the generate+assemble work
  fans out across a thread pool (assembly shells out to the toolchain, so
  workers overlap cleanly); *timing stays serialized on the main thread*
  so measurements are never co-scheduled with builds or each other.
- **persistent measurements** — each successful trial is filed in the
  kernel cache keyed by the generated kernel's content hash, so
  re-tuning in a fresh process replays prior measurements instead of
  rebuilding and re-timing candidates that have not changed.
- **fault isolation** — validation and first-touch execution of every
  candidate run in a forked worker with a wall-clock timeout
  (:mod:`repro.backend.sandbox`), so a candidate that SIGSEGVs, executes
  an illegal instruction, or spins forever becomes a categorized failed
  trial instead of killing the search.  Candidates that crash or hang
  are **quarantined** in the persistent cache and skipped on re-tuning
  without being re-executed (``repro cache clear`` resets this).

A fourth layer makes the search itself *durable*: every completed trial
is appended to a per-session write-ahead journal
(:mod:`repro.tuning.session`), SIGINT/SIGTERM finish the in-flight trial
and seal the session instead of discarding it, and ``resume=True``
replays the journal and continues where a killed process stopped.
"""

from __future__ import annotations

import hashlib
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..backend.cache import get_cache
from ..backend.faults import inject_asm_fault, take_fault
from ..backend.runner import NativeKernel, load_kernel
from ..backend.sandbox import resolve_isolation, run_trial
from ..backend.timer import measure
from ..core.framework import (Augem, GeneratedKernel, quarantine_key,
                              stable_kernel_name)
from ..isa.arch import ArchSpec, detect_host
from ..obs import event, incr, progress, span
from . import session as sessions
from .space import Candidate, candidates_for

#: bump when any benchmark workload below changes shape/size, so stale
#: persisted measurements are not replayed against a different problem
_WORKLOAD_VERSION = 1

#: trial outcome categories surfaced in reports (beyond "ok")
FAILURE_CATEGORIES = ("failed", "crashed", "timeout", "quarantined")

#: ``python -m repro tune`` exit status for a graceful interruption
EXIT_INTERRUPTED = 4


class TuningInterrupted(RuntimeError):
    """The search stopped early (SIGINT/SIGTERM or an injected
    ``interrupt`` fault) after sealing its session.

    Carries everything a caller needs to print a resume hint and exit
    with :data:`EXIT_INTERRUPTED`.
    """

    def __init__(self, kernel: str, reason: str,
                 session_id: Optional[str], done: int, total: int) -> None:
        self.kernel = kernel
        self.reason = reason
        self.session_id = session_id
        self.done = done
        self.total = total
        hint = (f"; resume with: python -m repro tune {kernel} --resume"
                if session_id else
                "; no session journal (cache disabled), progress lost")
        super().__init__(
            f"tuning {kernel} interrupted by {reason} after {done}/{total} "
            f"trials{hint}")


def _fmt_exc(exc: BaseException, limit: int = 200) -> str:
    """``"RuntimeError: validation failed"`` — keep the class for triage."""
    return f"{type(exc).__name__}: {exc}"[:limit]


@dataclass
class TrialResult:
    candidate: Candidate
    gflops: float  # -1.0 when the candidate failed
    error: Optional[str] = None
    cached: bool = False  # replayed from a persisted measurement
    #: "ok" | "failed" (generation/toolchain/validation) | "crashed"
    #: (signal death in the worker) | "timeout" | "quarantined"
    category: str = "ok"
    resumed: bool = False  # replayed from a session journal, not re-run


@dataclass
class TuningResult:
    kernel: str
    arch: ArchSpec
    best: Candidate
    best_gflops: float
    trials: List[TrialResult] = field(default_factory=list)

    def failure_counts(self) -> dict:
        counts = {c: 0 for c in FAILURE_CATEGORIES}
        for t in self.trials:
            if t.category in counts:
                counts[t.category] += 1
        return counts

    def report(self) -> str:
        lines = [f"tuning {self.kernel} on {self.arch}:"]
        for t in sorted(self.trials, key=lambda t: -t.gflops):
            status = (f"{t.gflops:7.2f} GF" if t.gflops >= 0
                      else f"{t.category}: {t.error}")
            marker = " <== best" if t.candidate is self.best else ""
            cached = (" (resumed)" if t.resumed
                      else " (cached)" if t.cached else "")
            lines.append(
                f"  {t.candidate.describe():55s} {status}{cached}{marker}")
        counts = self.failure_counts()
        ok = sum(1 for t in self.trials if t.category == "ok")
        lines.append(
            f"  {len(self.trials)} trials: ok={ok} "
            + " ".join(f"{c}={counts[c]}" for c in FAILURE_CATEGORIES))
        return "\n".join(lines)


def _gemm_workload(rng):
    mc, nc, kc = 64, 64, 256
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    # C += A@B accumulates in place across timed calls by design (that is
    # the kernel's contract). The tile is allocated fresh per candidate and
    # grows only linearly in the call count, so it can neither overflow nor
    # leak into another candidate's validation buffers (unlike the shared
    # vector-workload buffers, which timing must never mutate).
    c = np.zeros(mc * nc)
    flops = 2.0 * mc * nc * kc

    def run(k):
        k(mc, nc, kc, a, b, c, mc)

    return run, flops


def _validate_gemm(kernel, layout: str, rng) -> bool:
    import math

    from ..blas.gemm import kernel_multiples

    mu, nu, ku = kernel_multiples(kernel.generated)
    mc = 2 * math.lcm(mu, 4)
    nc = 2 * math.lcm(nu, 2)
    kc = 2 * math.lcm(ku, 8)
    ldc = mc
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = np.zeros(ldc * nc)
    ref = c.copy()
    kernel(mc, nc, kc, a, b, c, ldc)
    am = a.reshape(kc, mc)
    for j in range(nc):
        col = (b.reshape(nc, kc)[j, :] if layout == "dup"
               else b.reshape(kc, nc)[:, j])
        for i in range(mc):
            ref[j * ldc + i] += am[:, i] @ col
    return np.allclose(c, ref)


@dataclass
class _Prepared:
    """One candidate after the (possibly parallel) generate+assemble phase."""

    candidate: Candidate
    generated: Optional[GeneratedKernel] = None
    native: Optional[NativeKernel] = None
    cached_gflops: Optional[float] = None
    error: Optional[str] = None
    category: str = "failed"  # classification when ``error`` is set
    quarantined: bool = False
    qkey: Optional[str] = None  # quarantine address of this candidate


def _measurement_key(kernel_key: str, arch: ArchSpec,
                     gk: GeneratedKernel, batches: int) -> str:
    """Content address of one (kernel, arch, candidate, workload) trial."""
    return hashlib.sha256(
        f"tune\x1f{kernel_key}\x1f{arch.name}\x1f{gk.content_hash}"
        f"\x1fbatches={batches}\x1fwl={_WORKLOAD_VERSION}".encode()
    ).hexdigest()[:24]


def _prepare(aug: Augem, kernel: str, kernel_key: str, arch: ArchSpec,
             cand: Candidate, batches: int, reuse: bool,
             index: Optional[int] = None) -> _Prepared:
    """Generate and assemble one candidate (thread-pool friendly).

    Generation is pure Python; assembly shells out to the toolchain (and
    through the persistent compile cache). Quarantined candidates stop
    here — no assembly, no execution. If a persisted measurement for
    this exact generated kernel exists, assembly is skipped entirely —
    the warm path touches no toolchain at all.
    """
    cache = get_cache()
    try:
        name = stable_kernel_name(kernel_key, arch, cand.config,
                                  cand.strategy)
        gk = aug.generate_named(kernel_key, config=cand.config,
                                strategy=cand.strategy, name=name)
        fault = take_fault("asm", tag=gk.name, index=index)
        if fault is not None:
            gk = replace(gk, asm_text=inject_asm_fault(fault, gk.asm_text,
                                                       gk.name))
        qkey = quarantine_key(kernel_key, arch, gk)
        qrec = cache.load_quarantine(qkey)
        if qrec is not None:
            why = qrec.get("error") or "known-crashing candidate"
            return _Prepared(cand, generated=gk, qkey=qkey, quarantined=True,
                             error=f"quarantined: {why}"[:200])
        if reuse:
            record = cache.load_tuning(_measurement_key(kernel_key, arch,
                                                        gk, batches))
            if record is not None:
                return _Prepared(cand, generated=gk, qkey=qkey,
                                 cached_gflops=float(record["gflops"]))
        native = load_kernel(kernel_key, gk)
        return _Prepared(cand, generated=gk, native=native, qkey=qkey)
    except Exception as exc:  # noqa: BLE001 - record class + message, move on
        return _Prepared(cand, error=_fmt_exc(exc))


def _trial_closures(kernel: str, native: NativeKernel, layout: str, rng,
                    n_vec: int, x: np.ndarray, y: np.ndarray
                    ) -> Tuple[Callable[[], bool],
                               Callable[[], Tuple[Callable[[], None], float]]]:
    """Build the two halves of one trial.

    ``validate`` is self-contained (runs the kernel and checks the
    result, raising on mismatch) so it can execute in the forked worker;
    every buffer it mutates is allocated inside the closure or in the
    child's copy-on-write address space, never shared state the parent
    reads later.  ``make_timed`` is called in the parent only after the
    sandbox proves the candidate safe, and allocates fresh scratch for
    the accumulating timing target.
    """
    if kernel == "gemm":
        def validate() -> bool:
            if not _validate_gemm(native, layout, rng):
                raise RuntimeError("validation failed")
            return True

        def make_timed():
            run, flops = _gemm_workload(rng)
            return (lambda: run(native)), flops

    elif kernel == "gemv":
        mdim, ncols = 1 << 10, 64
        a = rng.standard_normal(ncols * mdim)
        xv = rng.standard_normal(ncols)

        def validate() -> bool:
            yv = np.zeros(mdim)
            ref = a.reshape(ncols, mdim).T @ xv
            native(mdim, ncols, a, mdim, xv, yv)
            if not np.allclose(yv, ref):
                raise RuntimeError("validation failed")
            return True

        def make_timed():
            # time against a per-candidate accumulator, not a buffer any
            # later validation compares against
            yt = np.zeros(mdim)
            return (lambda: native(mdim, ncols, a, mdim, xv, yt)), \
                2.0 * mdim * ncols

    elif kernel == "axpy":
        def validate() -> bool:
            yv = y.copy()
            native(n_vec, 1.5, x, yv)
            if not np.allclose(yv, y + 1.5 * x):
                raise RuntimeError("validation failed")
            return True

        def make_timed():
            # y += alpha*x mutates in place: timing thousands of calls
            # against the shared ``y`` used to blow up the very vector
            # later candidates validate against — time against a scratch
            # copy instead
            yt = y.copy()
            return (lambda: native(n_vec, 1.5, x, yt)), 2.0 * n_vec

    elif kernel == "dot":
        def validate() -> bool:
            r = native(n_vec, x, y)
            if not np.isclose(r, x @ y):
                raise RuntimeError("validation failed")
            return True

        def make_timed():
            return (lambda: native(n_vec, x, y)), 2.0 * n_vec

    else:
        raise KeyError(f"unknown kernel {kernel!r}")

    return validate, make_timed


def tune_kernel(kernel: str, arch: Optional[ArchSpec] = None,
                layout: str = "dup",
                candidates: Optional[List[Candidate]] = None,
                batches: int = 5,
                jobs: int = 1,
                reuse: bool = True,
                isolation: Optional[str] = None,
                trial_timeout: Optional[float] = 30.0,
                resume: bool = False,
                verbose: bool = False) -> TuningResult:
    """Exhaustively evaluate the candidate space; return the winner.

    :param jobs: worker threads for the generate+assemble phase. Timing is
        always serialized on the calling thread regardless of ``jobs``, so
        parallelism never perturbs the measurements.
    :param reuse: replay persisted measurements for unchanged candidates
        (set ``False`` to force fresh timing of every candidate).
    :param isolation: ``"fork"`` runs validation/first-touch of each
        candidate in a sandboxed subprocess (crash/hang-proof),
        ``"none"`` runs in-process, ``None``/``"auto"`` picks ``"fork"``
        when the platform supports it.
    :param trial_timeout: wall-clock seconds one isolated trial may run
        before being killed and quarantined (``None`` or <= 0 disables).
    :param resume: continue the most recent interrupted/abandoned session
        for this exact search (kernel, arch, candidate list, batches):
        journaled trials are replayed verbatim — no generation, assembly,
        or re-timing — and the search picks up at the first unjournaled
        candidate.  No matching session simply starts fresh.

    When the persistent cache is enabled, every search records a durable
    session (:mod:`repro.tuning.session`); a search stopped by SIGINT /
    SIGTERM / an injected ``interrupt`` fault finishes its in-flight
    trial, seals the journal, and raises :class:`TuningInterrupted`.
    """
    arch = arch or detect_host()
    aug = Augem(arch=arch)
    kernel_key = "gemm_shuf" if (kernel == "gemm" and layout == "shuf") else kernel
    if candidates is None:
        candidates = candidates_for(kernel, arch,
                                    **({"layout": layout} if kernel == "gemm" else {}))
    iso = resolve_isolation(isolation)
    if trial_timeout is not None and trial_timeout <= 0:
        trial_timeout = None

    key = sessions.search_key(kernel_key, arch.name, batches,
                              [c.describe() for c in candidates],
                              _WORKLOAD_VERSION)
    sess, replay = _open_session(kernel, kernel_key, layout, arch,
                                 candidates, batches, key, resume)

    with span("tune.kernel", kernel=kernel_key, arch=arch.name,
              candidates=len(candidates), jobs=jobs, isolation=iso,
              session=(sess.id if sess is not None else None),
              replayed=len(replay)) as tune_span:
        try:
            result = _search(aug, kernel, kernel_key, layout, arch,
                             candidates, batches, jobs, reuse, iso,
                             trial_timeout, verbose, tune_span, sess,
                             replay)
        except TuningInterrupted:
            raise  # the search already sealed the session
        except BaseException:
            if sess is not None:
                sess.finish(sessions.FAILED)
            raise
        if sess is not None:
            sess.finish(sessions.COMPLETE,
                        best=result.best.describe(),
                        best_gflops=round(result.best_gflops, 4))
        return result


def _open_session(kernel: str, kernel_key: str, layout: str,
                  arch: ArchSpec, candidates: List[Candidate],
                  batches: int, key: str, resume: bool
                  ) -> Tuple[Optional[sessions.TuningSession],
                             Dict[int, sessions.TrialRecord]]:
    """Create (or, for ``resume``, re-open) the durable session.

    Returns the session plus the replay map: candidate index -> journaled
    trial.  Journal entries whose candidate description no longer matches
    the index (a changed space) are discarded rather than replayed.
    """
    sroot = sessions.sessions_root()
    if sroot is None:
        return None, {}
    replay: Dict[int, sessions.TrialRecord] = {}
    if resume:
        prior = sessions.find_resumable(key)
        if prior is not None:
            for rec in prior.journal_entries():
                if (0 <= rec.index < len(candidates)
                        and candidates[rec.index].describe()
                        == rec.candidate):
                    replay[rec.index] = rec
            prior.adopt()
            incr("session.trials_replayed", len(replay))
            progress(f"resuming session {prior.id}: replaying "
                     f"{len(replay)}/{len(candidates)} journaled trials")
            return prior, replay
        progress(f"no resumable session for this {kernel_key} search; "
                 f"starting fresh")
    try:
        sess = sessions.TuningSession.create(
            sroot, kernel, kernel_key, layout, arch.name, batches,
            [c.describe() for c in candidates], key)
    except OSError:
        return None, {}  # store unusable: search still runs, un-journaled
    return sess, replay


class _StopRequest:
    """SIGINT/SIGTERM latch: first signal asks for a graceful stop, a
    second one force-raises ``KeyboardInterrupt`` in the main thread."""

    def __init__(self) -> None:
        self.reason: Optional[str] = None
        self._previous: List[Tuple[int, object]] = []

    def _handler(self, signum, frame) -> None:
        name = signal.Signals(signum).name
        if self.reason is not None:
            raise KeyboardInterrupt(f"second {name}; stopping now")
        self.reason = name
        progress(f"{name} received: finishing the in-flight trial, then "
                 f"sealing the session (signal again to stop immediately)")

    def install(self) -> None:
        # signal handlers are a main-thread privilege; a tuner driven from
        # a worker thread simply keeps the process's existing handlers
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous.append(
                    (signum, signal.signal(signum, self._handler)))
            except (ValueError, OSError):
                pass

    def restore(self) -> None:
        for signum, previous in self._previous:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError, TypeError):
                pass
        self._previous.clear()


def _search(aug: Augem, kernel: str, kernel_key: str, layout: str,
            arch: ArchSpec, candidates: List[Candidate], batches: int,
            jobs: int, reuse: bool, iso: str,
            trial_timeout: Optional[float], verbose: bool,
            tune_span, sess: Optional[sessions.TuningSession],
            replay: Dict[int, sessions.TrialRecord]) -> TuningResult:
    """The body of :func:`tune_kernel` (runs inside its ``tune.kernel``
    span, so a search that dies mid-flight still closes the span)."""
    rng = np.random.default_rng(42)
    n_vec = 1 << 16  # vector-kernel benchmark length (L2 resident)
    x = rng.standard_normal(n_vec)
    y = rng.standard_normal(n_vec)

    stop = _StopRequest()
    stop.install()
    try:
        try:
            prepared = _prepare_all(aug, kernel, kernel_key, arch,
                                    candidates, batches, jobs, reuse,
                                    replay)
            interrupted = None
        except KeyboardInterrupt as exc:
            prepared, interrupted = [], (stop.reason or _fmt_exc(exc))

        # phase 2: validate (isolated) + time (in-process), serial here
        cache = get_cache()
        trials: List[TrialResult] = []
        best: Optional[Candidate] = None
        best_gf = -1.0

        def record(index: int, trial: TrialResult) -> None:
            nonlocal best, best_gf
            trials.append(trial)
            if trial.gflops > best_gf:
                best, best_gf = trial.candidate, trial.gflops
            event("tune.trial", kernel=kernel_key, arch=arch.name,
                  candidate=trial.candidate.describe(),
                  category=trial.category, cached=trial.cached,
                  resumed=trial.resumed,
                  gflops=(round(trial.gflops, 4) if trial.gflops >= 0
                          else None),
                  error=trial.error)
            if sess is not None and not trial.resumed:
                sess.record_trial(sessions.TrialRecord(
                    index=index, candidate=trial.candidate.describe(),
                    gflops=trial.gflops, category=trial.category,
                    error=trial.error, cached=trial.cached))
            if verbose:
                status = (f"{trial.gflops:.2f}" if trial.gflops >= 0
                          else f"{trial.category}: {trial.error}")
                progress(f"{trial.candidate.describe()} -> {status}")

        try:
            if interrupted is None:
                for i, prep in enumerate(prepared):
                    if stop.reason is not None:
                        interrupted = stop.reason
                        break
                    _run_one_trial(i, prep, candidates, replay, record,
                                   kernel, kernel_key, layout, arch,
                                   batches, reuse, iso, trial_timeout,
                                   cache, rng, n_vec, x, y)
        except KeyboardInterrupt as exc:
            interrupted = stop.reason or _fmt_exc(exc)
    finally:
        stop.restore()

    done = len(trials)
    tune_span.set(
        trials=done,
        cached=sum(1 for t in trials if t.cached),
        resumed=sum(1 for t in trials if t.resumed),
        failed=sum(1 for t in trials if t.gflops < 0),
        interrupted=interrupted,
        best=(best.describe() if best is not None else None),
        best_gflops=(round(best_gf, 4) if best is not None else None))
    if interrupted is not None:
        if sess is not None:
            sess.finish(sessions.INTERRUPTED, interrupted_by=interrupted)
        incr("session.interrupted")
        err = TuningInterrupted(kernel, interrupted,
                                sess.id if sess is not None else None,
                                done, len(candidates))
        progress(str(err))
        raise err
    if best is None:
        raise RuntimeError(f"every candidate failed for kernel {kernel!r}")
    return TuningResult(kernel=kernel, arch=arch, best=best,
                        best_gflops=best_gf, trials=trials)


def _prepare_all(aug: Augem, kernel: str, kernel_key: str, arch: ArchSpec,
                 candidates: List[Candidate], batches: int, jobs: int,
                 reuse: bool,
                 replay: Dict[int, sessions.TrialRecord]
                 ) -> List[Optional[_Prepared]]:
    """Phase 1: generate + assemble every *unjournaled* candidate.

    Journal-replayed indices get ``None`` placeholders — resumed trials
    touch neither the generator nor the toolchain.
    """
    def prep_one(i: int, cand: Candidate) -> Optional[_Prepared]:
        if i in replay:
            return None
        return _prepare(aug, kernel, kernel_key, arch, cand, batches,
                        reuse, index=i)

    with span("tune.prepare", jobs=jobs, skipped=len(replay)):
        if jobs > 1 and len(candidates) - len(replay) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                return list(pool.map(lambda ic: prep_one(*ic),
                                     enumerate(candidates)))
        return [prep_one(i, c) for i, c in enumerate(candidates)]


def _run_one_trial(i: int, prep: Optional[_Prepared],
                   candidates: List[Candidate],
                   replay: Dict[int, sessions.TrialRecord],
                   record, kernel: str, kernel_key: str, layout: str,
                   arch: ArchSpec, batches: int, reuse: bool, iso: str,
                   trial_timeout: Optional[float], cache, rng,
                   n_vec: int, x, y) -> None:
    """Evaluate (or replay) candidate ``i`` and record its trial."""
    cand = candidates[i]
    if i in replay:
        rec = replay[i]
        record(i, TrialResult(cand, rec.gflops, error=rec.error,
                              cached=rec.cached, category=rec.category,
                              resumed=True))
        return
    if take_fault("interrupt",
                  tag=(prep.generated.name
                       if prep is not None and prep.generated is not None
                       else cand.describe()),
                  index=i):
        raise KeyboardInterrupt(f"injected interrupt at candidate #{i}")
    if prep.quarantined:
        record(i, TrialResult(cand, -1.0, error=prep.error,
                              category="quarantined"))
        return
    if prep.error is not None:
        record(i, TrialResult(cand, -1.0, error=prep.error,
                              category=prep.category))
        return
    if prep.cached_gflops is not None:
        record(i, TrialResult(cand, prep.cached_gflops, cached=True))
        return

    tag = prep.generated.name if prep.generated is not None \
        else cand.describe()
    try:
        validate, make_timed = _trial_closures(kernel, prep.native,
                                               layout, rng, n_vec, x, y)
    except Exception as exc:  # noqa: BLE001 - e.g. unknown kernel family
        record(i, TrialResult(cand, -1.0, error=_fmt_exc(exc),
                              category="failed"))
        return

    sres = run_trial(validate, isolation=iso, timeout=trial_timeout,
                     tag=tag)
    if not sres.ok:
        record(i, TrialResult(cand, -1.0, error=sres.error,
                              category=sres.category))
        if sres.category in ("crashed", "timeout") and prep.qkey:
            cache.store_quarantine(
                prep.qkey,
                {"kernel": kernel_key, "arch": arch.name,
                 "candidate": cand.describe(),
                 "category": sres.category, "error": sres.error})
        return

    try:
        timed, flops = make_timed()
        m = measure(timed, batches=batches)
        gf = m.gflops(flops)
        record(i, TrialResult(cand, gf))
        if reuse and prep.generated is not None:
            cache.store_tuning(
                _measurement_key(kernel_key, arch, prep.generated,
                                 batches),
                {"kernel": kernel_key, "arch": arch.name,
                 "candidate": cand.describe(), "gflops": gf,
                 "best_seconds": m.best, "batches": batches})
    except Exception as exc:  # noqa: BLE001 - record and move on
        record(i, TrialResult(cand, -1.0, error=_fmt_exc(exc),
                              category="failed"))
