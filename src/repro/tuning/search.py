"""Empirical tuning driver (paper §2.1).

Generates each candidate configuration, assembles it natively, validates
it against the numpy reference on a small problem (a wrong kernel must
never win the search), measures it with min-of-batches timing, and keeps
the fastest.  Candidates that fail generation (e.g. register-file
overflow at extreme unroll factors) are skipped and recorded.

Three layers make repeated searches cheap *and* crash-proof:

- **parallel preparation** — with ``jobs > 1`` the generate+assemble work
  fans out across a thread pool (assembly shells out to the toolchain, so
  workers overlap cleanly); *timing stays serialized on the main thread*
  so measurements are never co-scheduled with builds or each other.
- **persistent measurements** — each successful trial is filed in the
  kernel cache keyed by the generated kernel's content hash, so
  re-tuning in a fresh process replays prior measurements instead of
  rebuilding and re-timing candidates that have not changed.
- **fault isolation** — validation and first-touch execution of every
  candidate run in a forked worker with a wall-clock timeout
  (:mod:`repro.backend.sandbox`), so a candidate that SIGSEGVs, executes
  an illegal instruction, or spins forever becomes a categorized failed
  trial instead of killing the search.  Candidates that crash or hang
  are **quarantined** in the persistent cache and skipped on re-tuning
  without being re-executed (``repro cache clear`` resets this).
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..backend.cache import get_cache
from ..backend.faults import inject_asm_fault, take_fault
from ..backend.runner import NativeKernel, load_kernel
from ..backend.sandbox import resolve_isolation, run_trial
from ..backend.timer import measure
from ..core.framework import Augem, GeneratedKernel, stable_kernel_name
from ..isa.arch import ArchSpec, detect_host
from ..obs import event, progress, span
from .space import Candidate, candidates_for

#: bump when any benchmark workload below changes shape/size, so stale
#: persisted measurements are not replayed against a different problem
_WORKLOAD_VERSION = 1

#: trial outcome categories surfaced in reports (beyond "ok")
FAILURE_CATEGORIES = ("failed", "crashed", "timeout", "quarantined")


def _fmt_exc(exc: BaseException, limit: int = 200) -> str:
    """``"RuntimeError: validation failed"`` — keep the class for triage."""
    return f"{type(exc).__name__}: {exc}"[:limit]


@dataclass
class TrialResult:
    candidate: Candidate
    gflops: float  # -1.0 when the candidate failed
    error: Optional[str] = None
    cached: bool = False  # replayed from a persisted measurement
    #: "ok" | "failed" (generation/toolchain/validation) | "crashed"
    #: (signal death in the worker) | "timeout" | "quarantined"
    category: str = "ok"


@dataclass
class TuningResult:
    kernel: str
    arch: ArchSpec
    best: Candidate
    best_gflops: float
    trials: List[TrialResult] = field(default_factory=list)

    def failure_counts(self) -> dict:
        counts = {c: 0 for c in FAILURE_CATEGORIES}
        for t in self.trials:
            if t.category in counts:
                counts[t.category] += 1
        return counts

    def report(self) -> str:
        lines = [f"tuning {self.kernel} on {self.arch}:"]
        for t in sorted(self.trials, key=lambda t: -t.gflops):
            status = (f"{t.gflops:7.2f} GF" if t.gflops >= 0
                      else f"{t.category}: {t.error}")
            marker = " <== best" if t.candidate is self.best else ""
            cached = " (cached)" if t.cached else ""
            lines.append(
                f"  {t.candidate.describe():55s} {status}{cached}{marker}")
        counts = self.failure_counts()
        ok = sum(1 for t in self.trials if t.category == "ok")
        lines.append(
            f"  {len(self.trials)} trials: ok={ok} "
            + " ".join(f"{c}={counts[c]}" for c in FAILURE_CATEGORIES))
        return "\n".join(lines)


def _gemm_workload(rng):
    mc, nc, kc = 64, 64, 256
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    # C += A@B accumulates in place across timed calls by design (that is
    # the kernel's contract). The tile is allocated fresh per candidate and
    # grows only linearly in the call count, so it can neither overflow nor
    # leak into another candidate's validation buffers (unlike the shared
    # vector-workload buffers, which timing must never mutate).
    c = np.zeros(mc * nc)
    flops = 2.0 * mc * nc * kc

    def run(k):
        k(mc, nc, kc, a, b, c, mc)

    return run, flops


def _validate_gemm(kernel, layout: str, rng) -> bool:
    import math

    from ..blas.gemm import kernel_multiples

    mu, nu, ku = kernel_multiples(kernel.generated)
    mc = 2 * math.lcm(mu, 4)
    nc = 2 * math.lcm(nu, 2)
    kc = 2 * math.lcm(ku, 8)
    ldc = mc
    a = rng.standard_normal(kc * mc)
    b = rng.standard_normal(nc * kc)
    c = np.zeros(ldc * nc)
    ref = c.copy()
    kernel(mc, nc, kc, a, b, c, ldc)
    am = a.reshape(kc, mc)
    for j in range(nc):
        col = (b.reshape(nc, kc)[j, :] if layout == "dup"
               else b.reshape(kc, nc)[:, j])
        for i in range(mc):
            ref[j * ldc + i] += am[:, i] @ col
    return np.allclose(c, ref)


@dataclass
class _Prepared:
    """One candidate after the (possibly parallel) generate+assemble phase."""

    candidate: Candidate
    generated: Optional[GeneratedKernel] = None
    native: Optional[NativeKernel] = None
    cached_gflops: Optional[float] = None
    error: Optional[str] = None
    category: str = "failed"  # classification when ``error`` is set
    quarantined: bool = False
    qkey: Optional[str] = None  # quarantine address of this candidate


def _measurement_key(kernel_key: str, arch: ArchSpec,
                     gk: GeneratedKernel, batches: int) -> str:
    """Content address of one (kernel, arch, candidate, workload) trial."""
    return hashlib.sha256(
        f"tune\x1f{kernel_key}\x1f{arch.name}\x1f{gk.content_hash}"
        f"\x1fbatches={batches}\x1fwl={_WORKLOAD_VERSION}".encode()
    ).hexdigest()[:24]


def _quarantine_key(kernel_key: str, arch: ArchSpec,
                    gk: GeneratedKernel) -> str:
    """Content address of a known-crashing candidate (same scheme as the
    measurement records: keyed by the generated kernel's content hash)."""
    return hashlib.sha256(
        f"quar\x1f{kernel_key}\x1f{arch.name}\x1f{gk.content_hash}".encode()
    ).hexdigest()[:24]


def _prepare(aug: Augem, kernel: str, kernel_key: str, arch: ArchSpec,
             cand: Candidate, batches: int, reuse: bool,
             index: Optional[int] = None) -> _Prepared:
    """Generate and assemble one candidate (thread-pool friendly).

    Generation is pure Python; assembly shells out to the toolchain (and
    through the persistent compile cache). Quarantined candidates stop
    here — no assembly, no execution. If a persisted measurement for
    this exact generated kernel exists, assembly is skipped entirely —
    the warm path touches no toolchain at all.
    """
    cache = get_cache()
    try:
        name = stable_kernel_name(kernel_key, arch, cand.config,
                                  cand.strategy)
        gk = aug.generate_named(kernel_key, config=cand.config,
                                strategy=cand.strategy, name=name)
        fault = take_fault("asm", tag=gk.name, index=index)
        if fault is not None:
            gk = replace(gk, asm_text=inject_asm_fault(fault, gk.asm_text,
                                                       gk.name))
        qkey = _quarantine_key(kernel_key, arch, gk)
        qrec = cache.load_quarantine(qkey)
        if qrec is not None:
            why = qrec.get("error") or "known-crashing candidate"
            return _Prepared(cand, generated=gk, qkey=qkey, quarantined=True,
                             error=f"quarantined: {why}"[:200])
        if reuse:
            record = cache.load_tuning(_measurement_key(kernel_key, arch,
                                                        gk, batches))
            if record is not None:
                return _Prepared(cand, generated=gk, qkey=qkey,
                                 cached_gflops=float(record["gflops"]))
        native = load_kernel(kernel_key, gk)
        return _Prepared(cand, generated=gk, native=native, qkey=qkey)
    except Exception as exc:  # noqa: BLE001 - record class + message, move on
        return _Prepared(cand, error=_fmt_exc(exc))


def _trial_closures(kernel: str, native: NativeKernel, layout: str, rng,
                    n_vec: int, x: np.ndarray, y: np.ndarray
                    ) -> Tuple[Callable[[], bool],
                               Callable[[], Tuple[Callable[[], None], float]]]:
    """Build the two halves of one trial.

    ``validate`` is self-contained (runs the kernel and checks the
    result, raising on mismatch) so it can execute in the forked worker;
    every buffer it mutates is allocated inside the closure or in the
    child's copy-on-write address space, never shared state the parent
    reads later.  ``make_timed`` is called in the parent only after the
    sandbox proves the candidate safe, and allocates fresh scratch for
    the accumulating timing target.
    """
    if kernel == "gemm":
        def validate() -> bool:
            if not _validate_gemm(native, layout, rng):
                raise RuntimeError("validation failed")
            return True

        def make_timed():
            run, flops = _gemm_workload(rng)
            return (lambda: run(native)), flops

    elif kernel == "gemv":
        mdim, ncols = 1 << 10, 64
        a = rng.standard_normal(ncols * mdim)
        xv = rng.standard_normal(ncols)

        def validate() -> bool:
            yv = np.zeros(mdim)
            ref = a.reshape(ncols, mdim).T @ xv
            native(mdim, ncols, a, mdim, xv, yv)
            if not np.allclose(yv, ref):
                raise RuntimeError("validation failed")
            return True

        def make_timed():
            # time against a per-candidate accumulator, not a buffer any
            # later validation compares against
            yt = np.zeros(mdim)
            return (lambda: native(mdim, ncols, a, mdim, xv, yt)), \
                2.0 * mdim * ncols

    elif kernel == "axpy":
        def validate() -> bool:
            yv = y.copy()
            native(n_vec, 1.5, x, yv)
            if not np.allclose(yv, y + 1.5 * x):
                raise RuntimeError("validation failed")
            return True

        def make_timed():
            # y += alpha*x mutates in place: timing thousands of calls
            # against the shared ``y`` used to blow up the very vector
            # later candidates validate against — time against a scratch
            # copy instead
            yt = y.copy()
            return (lambda: native(n_vec, 1.5, x, yt)), 2.0 * n_vec

    elif kernel == "dot":
        def validate() -> bool:
            r = native(n_vec, x, y)
            if not np.isclose(r, x @ y):
                raise RuntimeError("validation failed")
            return True

        def make_timed():
            return (lambda: native(n_vec, x, y)), 2.0 * n_vec

    else:
        raise KeyError(f"unknown kernel {kernel!r}")

    return validate, make_timed


def tune_kernel(kernel: str, arch: Optional[ArchSpec] = None,
                layout: str = "dup",
                candidates: Optional[List[Candidate]] = None,
                batches: int = 5,
                jobs: int = 1,
                reuse: bool = True,
                isolation: Optional[str] = None,
                trial_timeout: Optional[float] = 30.0,
                verbose: bool = False) -> TuningResult:
    """Exhaustively evaluate the candidate space; return the winner.

    :param jobs: worker threads for the generate+assemble phase. Timing is
        always serialized on the calling thread regardless of ``jobs``, so
        parallelism never perturbs the measurements.
    :param reuse: replay persisted measurements for unchanged candidates
        (set ``False`` to force fresh timing of every candidate).
    :param isolation: ``"fork"`` runs validation/first-touch of each
        candidate in a sandboxed subprocess (crash/hang-proof),
        ``"none"`` runs in-process, ``None``/``"auto"`` picks ``"fork"``
        when the platform supports it.
    :param trial_timeout: wall-clock seconds one isolated trial may run
        before being killed and quarantined (``None`` or <= 0 disables).
    """
    arch = arch or detect_host()
    aug = Augem(arch=arch)
    kernel_key = "gemm_shuf" if (kernel == "gemm" and layout == "shuf") else kernel
    if candidates is None:
        candidates = candidates_for(kernel, arch,
                                    **({"layout": layout} if kernel == "gemm" else {}))
    iso = resolve_isolation(isolation)
    if trial_timeout is not None and trial_timeout <= 0:
        trial_timeout = None

    with span("tune.kernel", kernel=kernel_key, arch=arch.name,
              candidates=len(candidates), jobs=jobs,
              isolation=iso) as tune_span:
        return _search(aug, kernel, kernel_key, layout, arch, candidates,
                       batches, jobs, reuse, iso, trial_timeout, verbose,
                       tune_span)


def _search(aug: Augem, kernel: str, kernel_key: str, layout: str,
            arch: ArchSpec, candidates: List[Candidate], batches: int,
            jobs: int, reuse: bool, iso: str,
            trial_timeout: Optional[float], verbose: bool,
            tune_span) -> TuningResult:
    """The body of :func:`tune_kernel` (runs inside its ``tune.kernel``
    span, so a search that dies mid-flight still closes the span)."""
    rng = np.random.default_rng(42)
    n_vec = 1 << 16  # vector-kernel benchmark length (L2 resident)
    x = rng.standard_normal(n_vec)
    y = rng.standard_normal(n_vec)

    # phase 1: generate + assemble every candidate (parallel when jobs > 1)
    with span("tune.prepare", jobs=jobs):
        if jobs > 1 and len(candidates) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                prepared = list(pool.map(
                    lambda ic: _prepare(aug, kernel, kernel_key, arch, ic[1],
                                        batches, reuse, index=ic[0]),
                    enumerate(candidates)))
        else:
            prepared = [_prepare(aug, kernel, kernel_key, arch, c, batches,
                                 reuse, index=i)
                        for i, c in enumerate(candidates)]

    # phase 2: validate (isolated) + time (in-process), serial on this thread
    cache = get_cache()
    trials: List[TrialResult] = []
    best: Optional[Candidate] = None
    best_gf = -1.0

    def record(trial: TrialResult) -> None:
        nonlocal best, best_gf
        trials.append(trial)
        if trial.gflops > best_gf:
            best, best_gf = trial.candidate, trial.gflops
        event("tune.trial", kernel=kernel_key, arch=arch.name,
              candidate=trial.candidate.describe(),
              category=trial.category, cached=trial.cached,
              gflops=(round(trial.gflops, 4) if trial.gflops >= 0
                      else None),
              error=trial.error)
        if verbose:
            status = (f"{trial.gflops:.2f}" if trial.gflops >= 0
                      else f"{trial.category}: {trial.error}")
            progress(f"{trial.candidate.describe()} -> {status}")

    for prep in prepared:
        cand = prep.candidate
        if prep.quarantined:
            record(TrialResult(cand, -1.0, error=prep.error,
                               category="quarantined"))
            continue
        if prep.error is not None:
            record(TrialResult(cand, -1.0, error=prep.error,
                               category=prep.category))
            continue
        if prep.cached_gflops is not None:
            record(TrialResult(cand, prep.cached_gflops, cached=True))
            continue

        tag = prep.generated.name if prep.generated is not None \
            else cand.describe()
        try:
            validate, make_timed = _trial_closures(kernel, prep.native,
                                                   layout, rng, n_vec, x, y)
        except Exception as exc:  # noqa: BLE001 - e.g. unknown kernel family
            record(TrialResult(cand, -1.0, error=_fmt_exc(exc),
                               category="failed"))
            continue

        sres = run_trial(validate, isolation=iso, timeout=trial_timeout,
                         tag=tag)
        if not sres.ok:
            record(TrialResult(cand, -1.0, error=sres.error,
                               category=sres.category))
            if sres.category in ("crashed", "timeout") and prep.qkey:
                cache.store_quarantine(
                    prep.qkey,
                    {"kernel": kernel_key, "arch": arch.name,
                     "candidate": cand.describe(),
                     "category": sres.category, "error": sres.error})
            continue

        try:
            timed, flops = make_timed()
            m = measure(timed, batches=batches)
            gf = m.gflops(flops)
            record(TrialResult(cand, gf))
            if reuse and prep.generated is not None:
                cache.store_tuning(
                    _measurement_key(kernel_key, arch, prep.generated,
                                     batches),
                    {"kernel": kernel_key, "arch": arch.name,
                     "candidate": cand.describe(), "gflops": gf,
                     "best_seconds": m.best, "batches": batches})
        except Exception as exc:  # noqa: BLE001 - record and move on
            record(TrialResult(cand, -1.0, error=_fmt_exc(exc),
                               category="failed"))

    tune_span.set(
        trials=len(trials),
        cached=sum(1 for t in trials if t.cached),
        failed=sum(1 for t in trials if t.gflops < 0),
        best=(best.describe() if best is not None else None),
        best_gflops=(round(best_gf, 4) if best is not None else None))
    if best is None:
        raise RuntimeError(f"every candidate failed for kernel {kernel!r}")
    return TuningResult(kernel=kernel, arch=arch, best=best,
                        best_gflops=best_gf, trials=trials)
